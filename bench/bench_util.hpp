// Shared helpers for the bench binaries.  Each bench regenerates one
// experiment from DESIGN.md's index (EXP-1..EXP-13): it prints a
// paper-style table of rows to stdout and registers google-benchmark
// timings for the underlying simulations.
//
// Trial execution lives in the src/exp harness (multi-threaded, with
// deterministic per-trial seeding); the measure* wrappers here keep the
// older benches' call sites small.  Failed (non-converged) trials are
// counted and must be surfaced in every table — never silently averaged
// away.
#ifndef SSNO_BENCH_BENCH_UTIL_HPP
#define SSNO_BENCH_BENCH_UTIL_HPP

#include <cstdio>
#include <string>
#include <vector>

#include "core/daemon.hpp"
#include "core/graph.hpp"
#include "core/rng.hpp"
#include "core/scheduler.hpp"
#include "obs/stats.hpp"
#include "exp/runner.hpp"
#include "orientation/dftno.hpp"
#include "orientation/stno.hpp"

namespace ssno::bench {

/// Cost of stabilizing DFTNO split at the substrate boundary, averaged
/// over the trials that converged within budget; `failedTrials` counts
/// the rest.
struct DftnoCost {
  Summary substrateMoves;  ///< moves until L_TC
  Summary overlayMoves;    ///< further moves until L_NO
  Summary overlayRounds;
  int trials = 0;
  int failedTrials = 0;
};

inline DftnoCost measureDftno(const Graph& g, DaemonKind kind, int trials,
                              std::uint64_t seed,
                              StepCount budget = 200'000'000) {
  exp::Scenario s;
  s.protocol = exp::ProtocolKind::kDftno;
  s.daemon = kind;
  s.trials = trials;
  s.seed = seed;
  s.budget = budget;
  const exp::ScenarioResult r = exp::ExperimentRunner().runOnGraph(s, g);
  DftnoCost cost;
  cost.substrateMoves = r.metric("substrate_moves");
  cost.overlayMoves = r.metric("overlay_moves");
  cost.overlayRounds = r.metric("overlay_rounds");
  cost.trials = r.trials;
  cost.failedTrials = r.failedTrials;
  return cost;
}

/// Cost of stabilizing STNO split at the tree boundary.
struct StnoCost {
  Summary treeMoves;      ///< moves until L_ST
  Summary overlayMoves;   ///< further moves until silent
  Summary overlayRounds;  ///< further rounds until silent
  int trials = 0;
  int failedTrials = 0;
};

inline StnoCost measureStno(const Graph& g, DaemonKind kind, int trials,
                            std::uint64_t seed,
                            StepCount budget = 200'000'000) {
  exp::Scenario s;
  s.protocol = exp::ProtocolKind::kStno;
  s.daemon = kind;
  s.trials = trials;
  s.seed = seed;
  s.budget = budget;
  const exp::ScenarioResult r = exp::ExperimentRunner().runOnGraph(s, g);
  StnoCost cost;
  cost.treeMoves = r.metric("tree_moves");
  cost.overlayMoves = r.metric("overlay_moves");
  cost.overlayRounds = r.metric("overlay_rounds");
  cost.trials = r.trials;
  cost.failedTrials = r.failedTrials;
  return cost;
}

/// "10/10" | "7/10" convergence column used by the tables.
using exp::convergedLabel;

inline void printHeader(const std::string& experiment,
                        const std::string& claim) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", experiment.c_str());
  std::printf("paper claim: %s\n", claim.c_str());
  std::printf("================================================================\n");
}

inline void printFit(const char* label, const LinearFit& fit) {
  std::printf("  fit[%s]: y = %.3f x + %.1f   (R^2 = %.4f)\n", label,
              fit.slope, fit.intercept, fit.r2);
}

}  // namespace ssno::bench

#endif  // SSNO_BENCH_BENCH_UTIL_HPP
