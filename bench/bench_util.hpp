// Shared helpers for the experiment harness.  Each bench binary
// regenerates one experiment from DESIGN.md's index (EXP-1..EXP-12):
// it prints a paper-style table of rows to stdout and registers
// google-benchmark timings for the underlying simulations.
#ifndef SSNO_BENCH_BENCH_UTIL_HPP
#define SSNO_BENCH_BENCH_UTIL_HPP

#include <cstdio>
#include <string>
#include <vector>

#include "core/daemon.hpp"
#include "core/graph.hpp"
#include "core/rng.hpp"
#include "core/scheduler.hpp"
#include "core/stats.hpp"
#include "orientation/dftno.hpp"
#include "orientation/stno.hpp"

namespace ssno::bench {

/// Cost of stabilizing DFTNO split at the substrate boundary, averaged
/// over `trials` scrambled starts.
struct DftnoCost {
  Summary substrateMoves;  ///< moves until L_TC
  Summary overlayMoves;    ///< further moves until L_NO
  Summary overlayRounds;
  bool allConverged = true;
};

inline DftnoCost measureDftno(const Graph& g, DaemonKind kind, int trials,
                              std::uint64_t seed,
                              StepCount budget = 200'000'000) {
  DftnoCost cost;
  std::vector<double> sub, over, rounds;
  for (int t = 0; t < trials; ++t) {
    Dftno dftno(g);
    Rng rng(seed + static_cast<std::uint64_t>(t) * 101);
    dftno.randomize(rng);
    auto daemon = makeDaemon(kind);
    Simulator sim(dftno, *daemon, rng);
    const RunStats s1 = sim.runUntil(
        [&dftno] { return dftno.substrateLegitimate(); }, budget);
    const RunStats s2 =
        sim.runUntil([&dftno] { return dftno.isLegitimate(); }, budget);
    if (!s1.converged || !s2.converged) {
      cost.allConverged = false;
      continue;
    }
    sub.push_back(static_cast<double>(s1.moves));
    over.push_back(static_cast<double>(s2.moves));
    rounds.push_back(static_cast<double>(s2.rounds));
  }
  cost.substrateMoves = summarize(std::move(sub));
  cost.overlayMoves = summarize(std::move(over));
  cost.overlayRounds = summarize(std::move(rounds));
  return cost;
}

/// Cost of stabilizing STNO split at the tree boundary.
struct StnoCost {
  Summary treeMoves;      ///< moves until L_ST
  Summary overlayMoves;   ///< further moves until silent
  Summary overlayRounds;  ///< further rounds until silent
  bool allConverged = true;
};

inline StnoCost measureStno(const Graph& g, DaemonKind kind, int trials,
                            std::uint64_t seed,
                            StepCount budget = 200'000'000) {
  StnoCost cost;
  std::vector<double> tree, over, rounds;
  for (int t = 0; t < trials; ++t) {
    Stno stno(g);
    Rng rng(seed + static_cast<std::uint64_t>(t) * 77);
    stno.randomize(rng);
    auto daemon = makeDaemon(kind);
    Simulator sim(stno, *daemon, rng);
    const RunStats s1 = sim.runUntil(
        [&stno] { return stno.substrateLegitimate(); }, budget);
    const RunStats s2 = sim.runToQuiescence(budget);
    if (!s1.converged || !s2.terminal) {
      cost.allConverged = false;
      continue;
    }
    tree.push_back(static_cast<double>(s1.moves));
    over.push_back(static_cast<double>(s2.moves));
    rounds.push_back(static_cast<double>(s2.rounds));
  }
  cost.treeMoves = summarize(std::move(tree));
  cost.overlayMoves = summarize(std::move(over));
  cost.overlayRounds = summarize(std::move(rounds));
  return cost;
}

inline void printHeader(const std::string& experiment,
                        const std::string& claim) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", experiment.c_str());
  std::printf("paper claim: %s\n", claim.c_str());
  std::printf("================================================================\n");
}

inline void printFit(const char* label, const LinearFit& fit) {
  std::printf("  fit[%s]: y = %.3f x + %.1f   (R^2 = %.4f)\n", label,
              fit.slope, fit.intercept, fit.r2);
}

}  // namespace ssno::bench

#endif  // SSNO_BENCH_BENCH_UTIL_HPP
