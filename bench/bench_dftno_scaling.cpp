// EXP-1 — §3.2.3: "After the token circulation protocol stabilizes, the
// DFTNO takes O(n) steps to stabilize."
//
// Regenerates the scaling series: orientation-layer moves (and rounds)
// from the moment L_TC first holds until the composed system is
// legitimate, as a function of n, on bounded-degree families (ring,
// path, binary tree, caterpillar) and on denser families where the cost
// is Θ(m) = Θ(n·Δ) (the token walks every edge once per round; on
// bounded degree that is still O(n)).  A least-squares fit against n
// checks linearity (R² close to 1, per-node cost flat).
//
// Trial execution is delegated to the src/exp harness (the
// "dftno-scaling" preset); this file only renders tables and fits.
#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "exp/scenario.hpp"

namespace ssno::bench {
namespace {

/// The preset's scenarios for one topology family, in preset order.
std::vector<exp::ScenarioResult> familyRows(
    const std::vector<exp::ScenarioResult>& all, exp::TopologyFamily family) {
  std::vector<exp::ScenarioResult> rows;
  for (const exp::ScenarioResult& r : all)
    if (r.scenario.topology.family == family) rows.push_back(r);
  return rows;
}

void printSeries(const char* label,
                 const std::vector<exp::ScenarioResult>& rows) {
  std::vector<double> xs, ys;
  std::printf("%-12s %6s %8s %14s %14s %12s %8s\n", "family", "n", "m",
              "subst.moves", "orient.moves", "moves/n", "ok");
  for (const exp::ScenarioResult& r : rows) {
    const double orient = r.metric("overlay_moves").mean;
    std::printf("%-12s %6d %8d %14.1f %14.1f %12.2f %8s\n", label,
                r.nodeCount, r.edgeCount, r.metric("substrate_moves").mean,
                orient, orient / r.nodeCount,
                convergedLabel(r.trials, r.failedTrials).c_str());
    xs.push_back(r.nodeCount);
    ys.push_back(orient);
  }
  printFit("orient.moves vs n", fitLinear(xs, ys));
}

void tables() {
  printHeader("EXP-1  DFTNO stabilization after L_TC vs n",
              "O(n) steps after the token circulation stabilizes");
  const exp::ExperimentRunner runner;
  const std::vector<exp::ScenarioResult> all =
      runner.runAll(exp::makePreset("dftno-scaling"));

  printSeries("ring", familyRows(all, exp::TopologyFamily::kRing));
  printSeries("path", familyRows(all, exp::TopologyFamily::kPath));
  printSeries("binarytree", familyRows(all, exp::TopologyFamily::kKAryTree));
  printSeries("caterpillar",
              familyRows(all, exp::TopologyFamily::kCaterpillar));

  // Dense family: cost is Θ(m); report m-normalized to show the token-
  // walk origin of the constant.
  std::printf("\ndense families (cost tracks m = |E|):\n");
  std::printf("%-12s %6s %8s %14s %12s %8s\n", "family", "n", "m",
              "orient.moves", "moves/m", "ok");
  std::vector<double> xs, ys;
  for (const exp::ScenarioResult& r :
       familyRows(all, exp::TopologyFamily::kComplete)) {
    const double orient = r.metric("overlay_moves").mean;
    std::printf("%-12s %6d %8d %14.1f %12.2f %8s\n", "complete", r.nodeCount,
                r.edgeCount, orient, orient / r.edgeCount,
                convergedLabel(r.trials, r.failedTrials).c_str());
    xs.push_back(r.edgeCount);
    ys.push_back(orient);
  }
  printFit("orient.moves vs m", fitLinear(xs, ys));
}

void BM_DftnoStabilizeRing(::benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const Graph g = Graph::ring(n);
  std::uint64_t seed = 1;
  for (auto _ : state) {
    Dftno dftno(g);
    Rng rng(seed++);
    dftno.randomize(rng);
    RoundRobinDaemon daemon;
    Simulator sim(dftno, daemon, rng);
    const RunStats stats =
        sim.runUntil([&dftno] { return dftno.isLegitimate(); },
                     200'000'000);
    if (!stats.converged) state.SkipWithError("did not converge");
    state.counters["moves"] = static_cast<double>(stats.moves);
  }
}
BENCHMARK(BM_DftnoStabilizeRing)->Arg(16)->Arg(64)->Arg(256)
    ->Unit(::benchmark::kMillisecond);

}  // namespace
}  // namespace ssno::bench

int main(int argc, char** argv) {
  ssno::bench::tables();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
