// EXP-1 — §3.2.3: "After the token circulation protocol stabilizes, the
// DFTNO takes O(n) steps to stabilize."
//
// Regenerates the scaling series: orientation-layer moves (and rounds)
// from the moment L_TC first holds until the composed system is
// legitimate, as a function of n, on bounded-degree families (ring,
// path, binary tree, caterpillar) and on denser families where the cost
// is Θ(m) = Θ(n·Δ) (the token walks every edge once per round; on
// bounded degree that is still O(n)).  A least-squares fit against n
// checks linearity (R² close to 1, per-node cost flat).
#include <benchmark/benchmark.h>

#include "bench_util.hpp"

namespace ssno::bench {
namespace {

constexpr int kTrials = 10;

void runSeries(const char* family, const std::vector<int>& sizes,
               const std::function<Graph(int)>& make) {
  std::vector<double> xs, ys, rys;
  std::printf("%-12s %6s %8s %14s %14s %12s\n", "family", "n", "m",
              "subst.moves", "orient.moves", "moves/n");
  for (int n : sizes) {
    const Graph g = make(n);
    const DftnoCost cost =
        measureDftno(g, DaemonKind::kRoundRobin, kTrials, 0xA11CE);
    std::printf("%-12s %6d %8d %14.1f %14.1f %12.2f\n", family, n,
                g.edgeCount(), cost.substrateMoves.mean,
                cost.overlayMoves.mean, cost.overlayMoves.mean / n);
    xs.push_back(n);
    ys.push_back(cost.overlayMoves.mean);
  }
  printFit("orient.moves vs n", fitLinear(xs, ys));
}

void tables() {
  printHeader("EXP-1  DFTNO stabilization after L_TC vs n",
              "O(n) steps after the token circulation stabilizes");
  runSeries("ring", {8, 16, 32, 64, 128},
            [](int n) { return Graph::ring(n); });
  runSeries("path", {8, 16, 32, 64, 128},
            [](int n) { return Graph::path(n); });
  runSeries("binarytree", {7, 15, 31, 63, 127},
            [](int n) { return Graph::kAryTree(n, 2); });
  runSeries("caterpillar", {9, 18, 36, 72},
            [](int n) { return Graph::caterpillar(n / 3, 2); });
  // Dense family: cost is Θ(m); report m-normalized to show the token-
  // walk origin of the constant.
  std::printf("\ndense families (cost tracks m = |E|):\n");
  std::printf("%-12s %6s %8s %14s %12s\n", "family", "n", "m",
              "orient.moves", "moves/m");
  std::vector<double> xs, ys;
  for (int n : {6, 9, 12, 16, 20}) {
    const Graph g = Graph::complete(n);
    const DftnoCost cost =
        measureDftno(g, DaemonKind::kRoundRobin, kTrials, 0xA11CE);
    std::printf("%-12s %6d %8d %14.1f %12.2f\n", "complete", n,
                g.edgeCount(), cost.overlayMoves.mean,
                cost.overlayMoves.mean / g.edgeCount());
    xs.push_back(g.edgeCount());
    ys.push_back(cost.overlayMoves.mean);
  }
  printFit("orient.moves vs m", fitLinear(xs, ys));
}

void BM_DftnoStabilizeRing(::benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const Graph g = Graph::ring(n);
  std::uint64_t seed = 1;
  for (auto _ : state) {
    Dftno dftno(g);
    Rng rng(seed++);
    dftno.randomize(rng);
    RoundRobinDaemon daemon;
    Simulator sim(dftno, daemon, rng);
    const RunStats stats =
        sim.runUntil([&dftno] { return dftno.isLegitimate(); },
                     200'000'000);
    if (!stats.converged) state.SkipWithError("did not converge");
    state.counters["moves"] = static_cast<double>(stats.moves);
  }
}
BENCHMARK(BM_DftnoStabilizeRing)->Arg(16)->Arg(64)->Arg(256)
    ->Unit(::benchmark::kMillisecond);

}  // namespace
}  // namespace ssno::bench

int main(int argc, char** argv) {
  ssno::bench::tables();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
