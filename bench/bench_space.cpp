// EXP-3 — §3.2.3, §4.2.3, Chapter 5: space complexity comparison.
//
//   "Both the DFTNO and STNO algorithms require the same amount of
//    space which is O(Δ × log N) bits.  But, the STNO is required to
//    maintain the descendants in the spanning tree which requires an
//    extra space of O(Δ × log N) bits.  The DFTNO, on the other hand,
//    requires only O(log N) bits as it does not maintain the spanning
//    tree."
//
// Regenerates the exact bits-per-node table for both protocols across N
// and Δ, split into orientation layer vs substrate, and fits the growth
// against Δ·log N.
#include <benchmark/benchmark.h>

#include <cmath>

#include "bench_util.hpp"

namespace ssno::bench {
namespace {

double maxNodeBits(const Dftno& p, bool substrateOnly) {
  double bits = 0;
  for (NodeId q = 0; q < p.graph().nodeCount(); ++q)
    bits = std::max(bits, substrateOnly ? p.substrate().stateBits(q)
                                        : p.orientationBits(q));
  return bits;
}

double maxNodeBits(const Stno& p, bool substrateOnly) {
  double bits = 0;
  for (NodeId q = 0; q < p.graph().nodeCount(); ++q)
    bits = std::max(bits, substrateOnly ? p.substrateBits(q)
                                        : p.orientationBits(q));
  return bits;
}

void tables() {
  printHeader(
      "EXP-3  per-node space (bits) vs N and Δ",
      "both protocols O(Δ·log N); substrate overhead: DFTNO O(log N), "
      "STNO O(Δ·log N)");

  std::printf("%-14s %6s %4s | %12s %12s | %12s %12s\n", "graph", "N",
              "Δ", "DFTNO orie.", "DFTNO subst.", "STNO orie.",
              "STNO subst.");
  struct Case {
    const char* name;
    Graph g;
  };
  std::vector<Case> cases;
  for (int n : {8, 16, 32, 64}) cases.push_back({"ring", Graph::ring(n)});
  for (int n : {8, 16, 32, 64}) cases.push_back({"star", Graph::star(n)});
  for (int n : {8, 16, 32}) cases.push_back({"complete", Graph::complete(n)});
  for (int d : {3, 4, 5}) cases.push_back({"hypercube", Graph::hypercube(d)});

  std::vector<double> dlogn, dftnoBits, stnoBits;
  for (const Case& c : cases) {
    Dftno dftno(c.g);
    Stno stno(c.g);
    const double dOrie = maxNodeBits(dftno, false);
    const double dSub = maxNodeBits(dftno, true);
    const double sOrie = maxNodeBits(stno, false);
    const double sSub = maxNodeBits(stno, true);
    std::printf("%-14s %6d %4d | %12.1f %12.1f | %12.1f %12.1f\n", c.name,
                c.g.nodeCount(), c.g.maxDegree(), dOrie, dSub, sOrie, sSub);
    dlogn.push_back(c.g.maxDegree() *
                    std::log2(static_cast<double>(c.g.nodeCount())));
    dftnoBits.push_back(dOrie);
    stnoBits.push_back(sOrie);
  }
  printFit("DFTNO orientation bits vs Δ·logN", fitLinear(dlogn, dftnoBits));
  printFit("STNO  orientation bits vs Δ·logN", fitLinear(dlogn, stnoBits));

  // Chapter-5 table: substrate overhead comparison on stars (Δ = N−1).
  std::printf("\nsubstrate overhead on stars (hub node):\n");
  std::printf("%6s %6s | %16s %16s\n", "N", "Δ", "DFTNO substrate",
              "STNO substrate");
  for (int n : {8, 16, 32, 64, 128}) {
    const Graph g = Graph::star(n);
    Dftno dftno(g);
    Stno stno(g);
    std::printf("%6d %6d | %16.1f %16.1f\n", n, n - 1,
                dftno.substrate().stateBits(0), stno.substrateBits(1));
  }
  std::printf(
      "  (DFTNO's token substrate grows with log N only; STNO's tree\n"
      "   knowledge is charged per child — O(Δ·log N) in Chapter 5's\n"
      "   accounting, realized here as parent+dist per node.)\n");
}

void BM_SpaceAccounting(::benchmark::State& state) {
  const Graph g = Graph::complete(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    Dftno dftno(g);
    double bits = 0;
    for (NodeId p = 0; p < g.nodeCount(); ++p) bits += dftno.stateBits(p);
    ::benchmark::DoNotOptimize(bits);
  }
}
BENCHMARK(BM_SpaceAccounting)->Arg(16)->Arg(64);

}  // namespace
}  // namespace ssno::bench

int main(int argc, char** argv) {
  ssno::bench::tables();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
