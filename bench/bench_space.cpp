// EXP-3 — §3.2.3, §4.2.3, Chapter 5: space complexity comparison.
//
//   "Both the DFTNO and STNO algorithms require the same amount of
//    space which is O(Δ × log N) bits.  But, the STNO is required to
//    maintain the descendants in the spanning tree which requires an
//    extra space of O(Δ × log N) bits.  The DFTNO, on the other hand,
//    requires only O(log N) bits as it does not maintain the spanning
//    tree."
//
// Regenerates the exact bits-per-node table for both protocols across N
// and Δ, split into orientation layer vs substrate, and fits the growth
// against Δ·log N.  The accounting runs through the src/exp harness (the
// "space" preset), so the table is also available as CSV/JSON.
#include <benchmark/benchmark.h>

#include <cmath>

#include "bench_util.hpp"
#include "exp/scenario.hpp"

namespace ssno::bench {
namespace {

void tables() {
  printHeader(
      "EXP-3  per-node space (bits) vs N and Δ",
      "both protocols O(Δ·log N); substrate overhead: DFTNO O(log N), "
      "STNO O(Δ·log N)");

  std::printf("%-14s %6s %4s | %12s %12s | %12s %12s\n", "graph", "N",
              "Δ", "DFTNO orie.", "DFTNO subst.", "STNO orie.",
              "STNO subst.");
  const exp::ExperimentRunner runner;
  const auto all = runner.runAll(exp::makePreset("space"));
  std::vector<double> dlogn, dftnoBits, stnoBits;
  for (const exp::ScenarioResult& r : all) {
    const int maxDeg = static_cast<int>(r.metric("max_degree").mean);
    const double dOrie = r.metric("dftno_orientation_bits").mean;
    std::printf("%-14s %6d %4d | %12.1f %12.1f | %12.1f %12.1f\n",
                r.scenario.topology.name().c_str(), r.nodeCount, maxDeg,
                dOrie, r.metric("dftno_substrate_bits").mean,
                r.metric("stno_orientation_bits").mean,
                r.metric("stno_substrate_bits").mean);
    dlogn.push_back(maxDeg * std::log2(static_cast<double>(r.nodeCount)));
    dftnoBits.push_back(dOrie);
    stnoBits.push_back(r.metric("stno_orientation_bits").mean);
  }
  printFit("DFTNO orientation bits vs Δ·logN", fitLinear(dlogn, dftnoBits));
  printFit("STNO  orientation bits vs Δ·logN", fitLinear(dlogn, stnoBits));

  // Chapter-5 table: substrate overhead comparison on stars (Δ = N−1).
  std::printf("\nsubstrate overhead on stars (hub node):\n");
  std::printf("%6s %6s | %16s %16s\n", "N", "Δ", "DFTNO substrate",
              "STNO substrate");
  for (const exp::ScenarioResult& r : all) {
    if (r.scenario.topology.family != exp::TopologyFamily::kStar) continue;
    std::printf("%6d %6d | %16.1f %16.1f\n", r.nodeCount, r.nodeCount - 1,
                r.metric("dftno_substrate_bits").mean,
                r.metric("stno_substrate_bits").mean);
  }
  std::printf(
      "  (DFTNO's token substrate grows with log N only; STNO's tree\n"
      "   knowledge is charged per child — O(Δ·log N) in Chapter 5's\n"
      "   accounting, realized here as parent+dist per node.)\n");
}

void BM_SpaceAccounting(::benchmark::State& state) {
  const Graph g = Graph::complete(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    Dftno dftno(g);
    double bits = 0;
    for (NodeId p = 0; p < g.nodeCount(); ++p) bits += dftno.stateBits(p);
    ::benchmark::DoNotOptimize(bits);
  }
}
BENCHMARK(BM_SpaceAccounting)->Arg(16)->Arg(64);

}  // namespace
}  // namespace ssno::bench

int main(int argc, char** argv) {
  ssno::bench::tables();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
