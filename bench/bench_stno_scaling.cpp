// EXP-2 — §4.2.3 / Lemma 4.2.1: "After the spanning tree protocol
// stabilizes, the STNO takes another O(h) steps to stabilize", h the
// height of the spanning tree.
//
// Regenerates the height series: orientation-layer rounds (parallel
// time, measured under the synchronous daemon) from the moment the tree
// is stable until STNO is silent, as a function of the tree height at
// (near-)fixed n.  Tree families spanning the height spectrum at n≈40:
// star (h=1), k-ary trees (h=log_k n .. ), caterpillar, path (h=n−1).
// A fit of rounds against h checks the O(h) claim; a fit against n on
// the star family shows the cost does NOT scale with n.
#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "core/graph_algo.hpp"
#include "sptree/dfs_tree.hpp"

namespace ssno::bench {
namespace {

constexpr int kTrials = 10;

/// Rounds from (fixed legitimate tree, scrambled overlay) to silence —
/// isolating the paper's "after the spanning tree stabilizes" phase.
Summary overlayRoundsOnFixedTree(const Graph& g,
                                 const std::vector<NodeId>& parents,
                                 int trials, std::uint64_t seed) {
  std::vector<double> rounds;
  for (int t = 0; t < trials; ++t) {
    Stno stno(g, parents);
    Rng rng(seed + static_cast<std::uint64_t>(t) * 17);
    stno.randomize(rng);
    SynchronousDaemon daemon;
    Simulator sim(stno, daemon, rng);
    const RunStats stats = sim.runToQuiescence(200'000'000);
    if (!stats.terminal) continue;
    rounds.push_back(static_cast<double>(stats.rounds));
  }
  return summarize(std::move(rounds));
}

void tables() {
  printHeader("EXP-2  STNO stabilization after L_ST vs tree height h",
              "O(h) steps after the spanning tree stabilizes");
  struct Row {
    const char* family;
    Graph g;
  };
  std::vector<Row> rows;
  rows.push_back({"star(40)", Graph::star(40)});
  rows.push_back({"3ary(40)", Graph::kAryTree(40, 3)});
  rows.push_back({"binary(40)", Graph::kAryTree(40, 2)});
  rows.push_back({"caterpillar", Graph::caterpillar(13, 2)});
  rows.push_back({"path(40)", Graph::path(40)});

  std::printf("%-14s %6s %6s %14s %14s\n", "tree", "n", "h",
              "overlay rounds", "rounds/h");
  std::vector<double> hs, rs;
  for (const Row& row : rows) {
    const auto parents = portOrderDfsTree(row.g);
    const int h = treeHeight(row.g, parents);
    const Summary rounds =
        overlayRoundsOnFixedTree(row.g, parents, kTrials, 0xBEE);
    std::printf("%-14s %6d %6d %14.1f %14.2f\n", row.family,
                row.g.nodeCount(), h, rounds.mean,
                rounds.mean / std::max(1, h));
    hs.push_back(h);
    rs.push_back(rounds.mean);
  }
  printFit("overlay rounds vs h", fitLinear(hs, rs));

  // Control: growing n at fixed height (stars) must NOT grow the cost.
  std::printf("\ncontrol: stars of increasing n (h = 1 throughout):\n");
  std::printf("%-10s %6s %14s\n", "tree", "n", "overlay rounds");
  for (int n : {10, 20, 40, 80, 160}) {
    const Graph g = Graph::star(n);
    const auto parents = portOrderDfsTree(g);
    const Summary rounds =
        overlayRoundsOnFixedTree(g, parents, kTrials, 0xBEE);
    std::printf("%-10s %6d %14.1f\n", "star", n, rounds.mean);
  }

  // Composed run (self-stabilizing BFS substrate): total split.
  std::printf("\ncomposed (BFS-tree substrate), distributed daemon:\n");
  std::printf("%-12s %6s %6s %12s %14s %14s\n", "graph", "n", "h(bfs)",
              "tree moves", "orient.moves", "orient.rounds");
  for (int n : {10, 20, 40}) {
    const Graph g = Graph::path(n);
    const StnoCost cost =
        measureStno(g, DaemonKind::kDistributed, kTrials, 0xFACE);
    std::printf("%-12s %6d %6d %12.1f %14.1f %14.1f\n", "path", n, n - 1,
                cost.treeMoves.mean, cost.overlayMoves.mean,
                cost.overlayRounds.mean);
  }
}

void BM_StnoStabilizePath(::benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const Graph g = Graph::path(n);
  const auto parents = portOrderDfsTree(g);
  std::uint64_t seed = 1;
  for (auto _ : state) {
    Stno stno(g, parents);
    Rng rng(seed++);
    stno.randomize(rng);
    SynchronousDaemon daemon;
    Simulator sim(stno, daemon, rng);
    const RunStats stats = sim.runToQuiescence(200'000'000);
    if (!stats.terminal) state.SkipWithError("did not converge");
    state.counters["rounds"] = static_cast<double>(stats.rounds);
  }
}
BENCHMARK(BM_StnoStabilizePath)->Arg(16)->Arg(64)->Arg(256)
    ->Unit(::benchmark::kMillisecond);

}  // namespace
}  // namespace ssno::bench

int main(int argc, char** argv) {
  ssno::bench::tables();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
