// EXP-2 — §4.2.3 / Lemma 4.2.1: "After the spanning tree protocol
// stabilizes, the STNO takes another O(h) steps to stabilize", h the
// height of the spanning tree.
//
// Regenerates the height series: orientation-layer rounds (parallel
// time, measured under the synchronous daemon) from the moment the tree
// is stable until STNO is silent, as a function of the tree height at
// (near-)fixed n.  Tree families spanning the height spectrum at n≈40:
// star (h=1), k-ary trees (h=log_k n .. ), caterpillar, path (h=n−1).
// A fit of rounds against h checks the O(h) claim; a fit against n on
// the star family shows the cost does NOT scale with n.
//
// Trial execution is delegated to the src/exp harness (the fixed-tree
// "stno-height" / "stno-star-control" presets and the composed
// "stno-scaling" preset); this file only renders tables and fits.
#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "core/graph_algo.hpp"
#include "exp/scenario.hpp"
#include "sptree/dfs_tree.hpp"

namespace ssno::bench {
namespace {

/// Height of the port-order DFS tree the kStnoFixedTree scenarios run on.
int fixedTreeHeight(const exp::ScenarioResult& r) {
  const Graph g = r.scenario.topology.build();
  return treeHeight(g, portOrderDfsTree(g));
}

void tables() {
  printHeader("EXP-2  STNO stabilization after L_ST vs tree height h",
              "O(h) steps after the spanning tree stabilizes");
  const exp::ExperimentRunner runner;

  std::printf("%-16s %6s %6s %14s %14s %8s\n", "tree", "n", "h",
              "overlay rounds", "rounds/h", "ok");
  std::vector<double> hs, rs;
  for (const exp::ScenarioResult& r :
       runner.runAll(exp::makePreset("stno-height"))) {
    const int h = fixedTreeHeight(r);
    const double rounds = r.metric("overlay_rounds").mean;
    std::printf("%-16s %6d %6d %14.1f %14.2f %8s\n",
                r.scenario.topology.name().c_str(), r.nodeCount, h, rounds,
                rounds / std::max(1, h),
                convergedLabel(r.trials, r.failedTrials).c_str());
    hs.push_back(h);
    rs.push_back(rounds);
  }
  printFit("overlay rounds vs h", fitLinear(hs, rs));

  // Control: growing n at fixed height (stars) must NOT grow the cost.
  std::printf("\ncontrol: stars of increasing n (h = 1 throughout):\n");
  std::printf("%-16s %6s %14s %8s\n", "tree", "n", "overlay rounds", "ok");
  for (const exp::ScenarioResult& r :
       runner.runAll(exp::makePreset("stno-star-control"))) {
    std::printf("%-16s %6d %14.1f %8s\n", "star", r.nodeCount,
                r.metric("overlay_rounds").mean,
                convergedLabel(r.trials, r.failedTrials).c_str());
  }

  // Composed run (self-stabilizing BFS substrate): total split.
  std::printf("\ncomposed (BFS-tree substrate), distributed daemon:\n");
  std::printf("%-12s %6s %6s %12s %14s %14s %8s\n", "graph", "n", "h(bfs)",
              "tree moves", "orient.moves", "orient.rounds", "ok");
  for (const exp::ScenarioResult& r :
       runner.runAll(exp::makePreset("stno-scaling"))) {
    std::printf("%-12s %6d %6d %12.1f %14.1f %14.1f %8s\n", "path",
                r.nodeCount, r.nodeCount - 1, r.metric("tree_moves").mean,
                r.metric("overlay_moves").mean,
                r.metric("overlay_rounds").mean,
                convergedLabel(r.trials, r.failedTrials).c_str());
  }
}

void BM_StnoStabilizePath(::benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const Graph g = Graph::path(n);
  const auto parents = portOrderDfsTree(g);
  std::uint64_t seed = 1;
  for (auto _ : state) {
    Stno stno(g, parents);
    Rng rng(seed++);
    stno.randomize(rng);
    SynchronousDaemon daemon;
    Simulator sim(stno, daemon, rng);
    const RunStats stats = sim.runToQuiescence(200'000'000);
    if (!stats.terminal) state.SkipWithError("did not converge");
    state.counters["rounds"] = static_cast<double>(stats.rounds);
  }
}
BENCHMARK(BM_StnoStabilizePath)->Arg(16)->Arg(64)->Arg(256)
    ->Unit(::benchmark::kMillisecond);

}  // namespace
}  // namespace ssno::bench

int main(int argc, char** argv) {
  ssno::bench::tables();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
