// EXP-12 — §1.3/§1.4 motivation (Santoro [21], Flocchini et al.):
//   "the availability of an orientation decreases the message
//    complexity of important computations" / "the labels can be used in
//    many applications, such as routing and traversal in networks."
//
// Regenerates the message-complexity comparison: traversal/broadcast
// with the chordal sense of direction (2(n−1) messages) vs without
// (2m), with the gap growing with edge density; unicast routing message
// counts (greedy chordal vs flooding an unoriented network); routing
// stretch tables.
#include <benchmark/benchmark.h>

#include "apps/broadcast.hpp"
#include "apps/routing.hpp"
#include "bench_util.hpp"
#include "sptree/dfs_tree.hpp"

namespace ssno::bench {
namespace {

Orientation canonical(const Graph& g) {
  return inducedChordalOrientation(g, portOrderDfsPreorder(g),
                                   g.nodeCount());
}

void tables() {
  printHeader("EXP-12  message complexity with vs without orientation",
              "an orientation decreases communication complexity "
              "(traversal: 2(n−1) vs 2m messages)");

  std::printf("traversal (token visits all nodes):\n");
  std::printf("%-16s %6s %7s | %12s %12s %8s\n", "graph", "n", "m",
              "with SoD", "without", "ratio");
  Rng topo(51);
  struct Case { const char* name; Graph g; };
  std::vector<Case> cases;
  cases.push_back({"tree(31)", Graph::kAryTree(31, 2)});
  cases.push_back({"ring(32)", Graph::ring(32)});
  cases.push_back({"grid(6x6)", Graph::grid(6, 6)});
  cases.push_back({"torus(6x6)", Graph::torus(6, 6)});
  cases.push_back({"hypercube(6)", Graph::hypercube(6)});
  cases.push_back({"random(32,.3)", Graph::randomConnected(32, 0.3, topo)});
  cases.push_back({"complete(32)", Graph::complete(32)});
  for (const Case& c : cases) {
    const Orientation o = canonical(c.g);
    const int with = traverseWithOrientation(o, c.g.root()).messages;
    const int without = traverseWithoutOrientation(c.g, c.g.root()).messages;
    std::printf("%-16s %6d %7d | %12d %12d %8.2f\n", c.name,
                c.g.nodeCount(), c.g.edgeCount(), with, without,
                static_cast<double>(without) / with);
  }

  std::printf("\nunicast: greedy chordal routing vs flooding "
              "(messages to reach one destination):\n");
  std::printf("%-16s | %10s %10s %10s | %10s\n", "graph", "delivered",
              "meanHops", "maxStretch", "flood");
  for (const Case& c : cases) {
    const Orientation o = canonical(c.g);
    const RoutingStats rs = evaluateRouting(o, 2);
    std::printf("%-16s | %9.1f%% %10.2f %10.2f | %10d\n", c.name,
                100.0 * rs.delivered / rs.pairs, rs.meanHops, rs.maxStretch,
                floodMessages(c.g, c.g.root()));
  }
  std::printf("  (greedy uses path-length messages when it delivers; an\n"
              "   unoriented network must flood: Θ(m) messages per query)\n");
}

void BM_TraverseWithSoD(::benchmark::State& state) {
  const Graph g = Graph::complete(static_cast<int>(state.range(0)));
  const Orientation o = canonical(g);
  for (auto _ : state)
    ::benchmark::DoNotOptimize(traverseWithOrientation(o, 0).messages);
}
BENCHMARK(BM_TraverseWithSoD)->Arg(16)->Arg(64);

void BM_TraverseWithoutSoD(::benchmark::State& state) {
  const Graph g = Graph::complete(static_cast<int>(state.range(0)));
  for (auto _ : state)
    ::benchmark::DoNotOptimize(traverseWithoutOrientation(g, 0).messages);
}
BENCHMARK(BM_TraverseWithoutSoD)->Arg(16)->Arg(64);

}  // namespace
}  // namespace ssno::bench

int main(int argc, char** argv) {
  ssno::bench::tables();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
