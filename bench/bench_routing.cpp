// EXP-12 — §1.3/§1.4 motivation (Santoro [21], Flocchini et al.):
//   "the availability of an orientation decreases the message
//    complexity of important computations" / "the labels can be used in
//    many applications, such as routing and traversal in networks."
//
// Regenerates the message-complexity comparison: traversal/broadcast
// with the chordal sense of direction (2(n−1) messages) vs without
// (2m), with the gap growing with edge density; unicast routing message
// counts (greedy chordal vs flooding an unoriented network); routing
// stretch tables.  Measurement runs through the src/exp harness (the
// "routing" preset), so the numbers are also available as CSV/JSON.
#include <benchmark/benchmark.h>

#include "apps/broadcast.hpp"
#include "apps/routing.hpp"
#include "bench_util.hpp"
#include "exp/scenario.hpp"
#include "sptree/dfs_tree.hpp"

namespace ssno::bench {
namespace {

void tables() {
  printHeader("EXP-12  message complexity with vs without orientation",
              "an orientation decreases communication complexity "
              "(traversal: 2(n−1) vs 2m messages)");
  const exp::ExperimentRunner runner;
  const auto all = runner.runAll(exp::makePreset("routing"));

  std::printf("traversal (token visits all nodes):\n");
  std::printf("%-16s %6s %7s | %12s %12s %8s\n", "graph", "n", "m",
              "with SoD", "without", "ratio");
  for (const exp::ScenarioResult& r : all) {
    const double with = r.metric("traversal_with_sod").mean;
    const double without = r.metric("traversal_without_sod").mean;
    std::printf("%-16s %6d %7d | %12.0f %12.0f %8.2f\n",
                r.scenario.topology.name().c_str(), r.nodeCount, r.edgeCount,
                with, without, without / with);
  }

  std::printf("\nunicast: greedy chordal routing vs flooding "
              "(messages to reach one destination):\n");
  std::printf("%-16s | %10s %10s %10s | %10s\n", "graph", "delivered",
              "meanHops", "maxStretch", "flood");
  for (const exp::ScenarioResult& r : all) {
    std::printf("%-16s | %9.1f%% %10.2f %10.2f | %10.0f\n",
                r.scenario.topology.name().c_str(),
                r.metric("unicast_delivered_pct").mean,
                r.metric("unicast_mean_hops").mean,
                r.metric("unicast_max_stretch").mean,
                r.metric("flood_messages").mean);
  }
  std::printf("  (greedy uses path-length messages when it delivers; an\n"
              "   unoriented network must flood: Θ(m) messages per query)\n");
}

void BM_TraverseWithSoD(::benchmark::State& state) {
  const Graph g = Graph::complete(static_cast<int>(state.range(0)));
  const Orientation o = inducedChordalOrientation(
      g, portOrderDfsPreorder(g), g.nodeCount());
  for (auto _ : state)
    ::benchmark::DoNotOptimize(traverseWithOrientation(o, 0).messages);
}
BENCHMARK(BM_TraverseWithSoD)->Arg(16)->Arg(64);

void BM_TraverseWithoutSoD(::benchmark::State& state) {
  const Graph g = Graph::complete(static_cast<int>(state.range(0)));
  for (auto _ : state)
    ::benchmark::DoNotOptimize(traverseWithoutOrientation(g, 0).messages);
}
BENCHMARK(BM_TraverseWithoutSoD)->Arg(16)->Arg(64);

}  // namespace
}  // namespace ssno::bench

int main(int argc, char** argv) {
  ssno::bench::tables();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
