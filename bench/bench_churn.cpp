// EXP-13 (extension) — sustained availability under fault churn.
//
// §1.2: "A fault occurring at a process may cause an illegal global
// state, but the system will detect such a state, and correct itself in
// finite time."  This experiment quantifies the steady-state consequence:
// with transient faults arriving at rate λ (probability of one random
// processor being corrupted per move), what fraction of time does the
// network have a valid orientation?  Contrasted with the init-based
// baseline, which drops to zero availability after the first fault and
// never recovers (its availability column measures time until first
// corruption only).
#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "core/fault.hpp"
#include "orientation/baseline.hpp"

namespace ssno::bench {
namespace {

struct ChurnResult {
  double availability = 0;  ///< fraction of moves with valid orientation
  double faults = 0;
};

ChurnResult churnDftno(const Graph& g, double rate, StepCount horizon,
                       std::uint64_t seed) {
  Dftno dftno(g);
  Rng rng(seed);
  dftno.randomize(rng);
  RoundRobinDaemon daemon;
  Simulator sim(dftno, daemon, rng);
  FaultInjector inj(dftno);
  ChurnResult res;
  StepCount legitMoves = 0;
  for (StepCount t = 0; t < horizon; ++t) {
    if (rng.chance(rate)) {
      inj.corruptK(1, rng);
      res.faults += 1;
    }
    (void)sim.stepOnce();
    if (dftno.isLegitimate()) ++legitMoves;
  }
  res.availability = static_cast<double>(legitMoves) /
                     static_cast<double>(horizon);
  return res;
}

ChurnResult churnBaseline(const Graph& g, double rate, StepCount horizon,
                          std::uint64_t seed) {
  InitBasedOrientation base(g);
  Rng rng(seed);
  base.initializeAll();
  RoundRobinDaemon daemon;
  Simulator sim(base, daemon, rng);
  FaultInjector inj(base);
  ChurnResult res;
  StepCount okMoves = 0;
  for (StepCount t = 0; t < horizon; ++t) {
    if (rng.chance(rate)) {
      inj.corruptK(1, rng);
      res.faults += 1;
    }
    (void)sim.stepOnce();
    if (base.isCorrect()) ++okMoves;
  }
  res.availability = static_cast<double>(okMoves) /
                     static_cast<double>(horizon);
  return res;
}

void tables() {
  printHeader("EXP-13  availability under fault churn (extension)",
              "self-stabilization turns transient faults into bounded "
              "unavailability; init-based systems never recover");
  const Graph g = Graph::grid(3, 4);
  constexpr StepCount kHorizon = 40'000;
  std::printf("grid(3x4), horizon %lld moves, 1-node faults at rate λ:\n",
              static_cast<long long>(kHorizon));
  std::printf("%-10s | %14s %8s | %14s %8s\n", "λ", "DFTNO avail.",
              "faults", "baseline avail.", "faults");
  for (double rate : {0.0001, 0.0005, 0.002, 0.01}) {
    const ChurnResult d = churnDftno(g, rate, kHorizon, 0xC0DE);
    const ChurnResult b = churnBaseline(g, rate, kHorizon, 0xC0DE);
    std::printf("%-10g | %13.1f%% %8.0f | %13.1f%% %8.0f\n", rate,
                100 * d.availability, d.faults, 100 * b.availability,
                b.faults);
  }
  std::printf("  (baseline availability ≈ time before its first fault "
              "only; it stays broken afterwards)\n");
}

void BM_ChurnStep(::benchmark::State& state) {
  const Graph g = Graph::grid(3, 4);
  Dftno dftno(g);
  Rng rng(1);
  dftno.randomize(rng);
  RoundRobinDaemon daemon;
  Simulator sim(dftno, daemon, rng);
  FaultInjector inj(dftno);
  for (auto _ : state) {
    if (rng.chance(0.01)) inj.corruptK(1, rng);
    (void)sim.stepOnce();
    ::benchmark::DoNotOptimize(dftno.isLegitimate());
  }
}
BENCHMARK(BM_ChurnStep);

}  // namespace
}  // namespace ssno::bench

int main(int argc, char** argv) {
  ssno::bench::tables();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
