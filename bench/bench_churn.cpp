// EXP-13 (extension) — sustained availability under fault churn.
//
// §1.2: "A fault occurring at a process may cause an illegal global
// state, but the system will detect such a state, and correct itself in
// finite time."  This experiment quantifies the steady-state consequence:
// with transient faults arriving at rate λ (probability of one random
// processor being corrupted per move), what fraction of time does the
// network have a valid orientation?  Contrasted with the init-based
// baseline, which drops to zero availability after the first fault and
// never recovers (its availability column measures time until first
// corruption only).
//
// Trial execution is delegated to the src/exp harness (the "churn"
// preset: dftno-churn and baseline-churn at each rate); this file only
// renders the comparison table.
#include <benchmark/benchmark.h>

#include <map>

#include "bench_util.hpp"
#include "core/fault.hpp"
#include "exp/scenario.hpp"

namespace ssno::bench {
namespace {

void tables() {
  printHeader("EXP-13  availability under fault churn (extension)",
              "self-stabilization turns transient faults into bounded "
              "unavailability; init-based systems never recover");
  const std::vector<exp::Scenario> scenarios = exp::makePreset("churn");
  const std::vector<exp::ScenarioResult> results =
      exp::ExperimentRunner().runAll(scenarios);

  // Pair the dftno / baseline runs of each rate.
  std::map<double, const exp::ScenarioResult*> dftno, baseline;
  for (const exp::ScenarioResult& r : results) {
    (r.scenario.protocol == exp::ProtocolKind::kDftnoChurn
         ? dftno
         : baseline)[r.scenario.faultRate] = &r;
  }

  std::printf("grid(3x4), horizon %lld moves, 1-node faults at rate λ:\n",
              static_cast<long long>(scenarios.front().budget));
  std::printf("%-10s | %14s %8s | %14s %8s\n", "λ", "DFTNO avail.",
              "faults", "baseline avail.", "faults");
  for (const auto& [rate, d] : dftno) {
    const exp::ScenarioResult* b = baseline.at(rate);
    std::printf("%-10g | %13.1f%% %8.0f | %13.1f%% %8.0f\n", rate,
                100 * d->metric("availability").mean,
                d->metric("faults").mean,
                100 * b->metric("availability").mean,
                b->metric("faults").mean);
  }
  std::printf("  (baseline availability ≈ time before its first fault "
              "only; it stays broken afterwards)\n");
}

void BM_ChurnStep(::benchmark::State& state) {
  const Graph g = Graph::grid(3, 4);
  Dftno dftno(g);
  Rng rng(1);
  dftno.randomize(rng);
  RoundRobinDaemon daemon;
  Simulator sim(dftno, daemon, rng);
  FaultInjector inj(dftno);
  for (auto _ : state) {
    if (rng.chance(0.01)) inj.corruptK(1, rng);
    (void)sim.stepOnce();
    ::benchmark::DoNotOptimize(dftno.isLegitimate());
  }
}
BENCHMARK(BM_ChurnStep);

}  // namespace
}  // namespace ssno::bench

int main(int argc, char** argv) {
  ssno::bench::tables();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
