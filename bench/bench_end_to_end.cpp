// EXP-7 — Theorems 3.2.3 / 4.2.3 (and the abstract): end-to-end
// self-stabilization.  From FULLY arbitrary configurations (substrate
// and orientation layer both scrambled), both protocols reach a
// legitimate orientation with probability 1; total cost split per layer.
#include <benchmark/benchmark.h>

#include "bench_util.hpp"

namespace ssno::bench {
namespace {

constexpr int kTrials = 10;

void tables() {
  printHeader("EXP-7  end-to-end stabilization from arbitrary states",
              "starting from an arbitrary state, a legitimate "
              "orientation is reached in finite time (Thm 3.2.3/4.2.3)");

  Rng topo(21);
  struct Case { const char* name; Graph g; };
  std::vector<Case> cases;
  cases.push_back({"ring(24)", Graph::ring(24)});
  cases.push_back({"grid(4x6)", Graph::grid(4, 6)});
  cases.push_back({"complete(10)", Graph::complete(10)});
  cases.push_back({"lollipop(6,12)", Graph::lollipop(6, 12)});
  cases.push_back({"random(24,.15)", Graph::randomConnected(24, 0.15, topo)});
  cases.push_back({"hypercube(4)", Graph::hypercube(4)});

  std::printf("DFTNO (round-robin daemon):\n");
  std::printf("%-16s %6s | %12s %12s | %10s\n", "graph", "n", "subst.moves",
              "orient.moves", "converged");
  for (const Case& c : cases) {
    const DftnoCost cost =
        measureDftno(c.g, DaemonKind::kRoundRobin, kTrials, 0xE2E);
    std::printf("%-16s %6d | %12.1f %12.1f | %10s\n", c.name,
                c.g.nodeCount(), cost.substrateMoves.mean,
                cost.overlayMoves.mean,
                convergedLabel(cost.trials, cost.failedTrials).c_str());
  }

  std::printf("\nSTNO (distributed daemon):\n");
  std::printf("%-16s %6s | %12s %12s | %10s\n", "graph", "n", "tree moves",
              "orient.moves", "converged");
  for (const Case& c : cases) {
    const StnoCost cost =
        measureStno(c.g, DaemonKind::kDistributed, kTrials, 0xE2E);
    std::printf("%-16s %6d | %12.1f %12.1f | %10s\n", c.name,
                c.g.nodeCount(), cost.treeMoves.mean,
                cost.overlayMoves.mean,
                convergedLabel(cost.trials, cost.failedTrials).c_str());
  }
}

void BM_EndToEndDftno(::benchmark::State& state) {
  const Graph g = Graph::grid(4, static_cast<int>(state.range(0)) / 4);
  std::uint64_t seed = 3;
  for (auto _ : state) {
    Dftno dftno(g);
    Rng rng(seed++);
    dftno.randomize(rng);
    RoundRobinDaemon daemon;
    Simulator sim(dftno, daemon, rng);
    const RunStats stats =
        sim.runUntil([&dftno] { return dftno.isLegitimate(); },
                     200'000'000);
    if (!stats.converged) state.SkipWithError("no convergence");
  }
}
BENCHMARK(BM_EndToEndDftno)->Arg(16)->Arg(32)
    ->Unit(::benchmark::kMillisecond);

void BM_EndToEndStno(::benchmark::State& state) {
  const Graph g = Graph::grid(4, static_cast<int>(state.range(0)) / 4);
  std::uint64_t seed = 5;
  for (auto _ : state) {
    Stno stno(g);
    Rng rng(seed++);
    stno.randomize(rng);
    DistributedDaemon daemon;
    Simulator sim(stno, daemon, rng);
    const RunStats stats = sim.runToQuiescence(200'000'000);
    if (!stats.terminal) state.SkipWithError("no convergence");
  }
}
BENCHMARK(BM_EndToEndStno)->Arg(16)->Arg(32)
    ->Unit(::benchmark::kMillisecond);

}  // namespace
}  // namespace ssno::bench

int main(int argc, char** argv) {
  ssno::bench::tables();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
