// EXP-9 — Chapter 5: daemon sensitivity.
//   "DFTNO ... assumes an underlying depth-first token circulation
//    protocol which runs using a fair daemon.  STNO, on the other hand,
//    requires an underlying protocol which maintains a spanning tree of
//    the network with an unfair daemon."
//
// Regenerates the comparison: stabilization cost of both protocols under
// central / distributed / synchronous / round-robin daemons, and the
// unfair adversarial daemon for STNO (DFTNO is exempt there — see the
// model-checked fairness analysis in tests/dftc_modelcheck_test.cpp).
#include <benchmark/benchmark.h>

#include "bench_util.hpp"

namespace ssno::bench {
namespace {

constexpr int kTrials = 10;

void tables() {
  printHeader("EXP-9  stabilization cost by daemon",
              "DFTNO needs a fair daemon; STNO tolerates an unfair one");
  const Graph g = Graph::grid(4, 5);

  std::printf("DFTNO on grid(4x5), moves to L_NO (mean / p95):\n");
  std::printf("%-14s %14s %14s %10s\n", "daemon", "mean", "p95", "ok");
  for (DaemonKind kind :
       {DaemonKind::kCentral, DaemonKind::kDistributed,
        DaemonKind::kSynchronous, DaemonKind::kRoundRobin}) {
    const DftnoCost cost = measureDftno(g, kind, kTrials, 0xDAE);
    std::printf("%-14s %14.1f %14.1f %10s\n",
                daemonKindName(kind).c_str(),
                cost.substrateMoves.mean + cost.overlayMoves.mean,
                cost.substrateMoves.p95 + cost.overlayMoves.p95,
                convergedLabel(cost.trials, cost.failedTrials).c_str());
  }
  std::printf("  (adversarial daemon omitted: weak fairness is required "
              "— proven by exhaustive model checking)\n");

  std::printf("\nSTNO on grid(4x5), moves to silence (mean / p95):\n");
  std::printf("%-14s %14s %14s %10s\n", "daemon", "mean", "p95", "ok");
  for (DaemonKind kind :
       {DaemonKind::kCentral, DaemonKind::kDistributed,
        DaemonKind::kSynchronous, DaemonKind::kRoundRobin,
        DaemonKind::kAdversarial}) {
    const StnoCost cost = measureStno(g, kind, kTrials, 0xDAE);
    std::printf("%-14s %14.1f %14.1f %10s\n",
                daemonKindName(kind).c_str(),
                cost.treeMoves.mean + cost.overlayMoves.mean,
                cost.treeMoves.p95 + cost.overlayMoves.p95,
                convergedLabel(cost.trials, cost.failedTrials).c_str());
  }
}

void BM_DftnoByDaemon(::benchmark::State& state) {
  const Graph g = Graph::ring(32);
  const auto kind = static_cast<DaemonKind>(state.range(0));
  std::uint64_t seed = 7;
  for (auto _ : state) {
    Dftno dftno(g);
    Rng rng(seed++);
    dftno.randomize(rng);
    auto daemon = makeDaemon(kind);
    Simulator sim(dftno, *daemon, rng);
    const RunStats stats = sim.runUntil(
        [&dftno] { return dftno.isLegitimate(); }, 200'000'000);
    if (!stats.converged) state.SkipWithError("no convergence");
  }
}
BENCHMARK(BM_DftnoByDaemon)
    ->Arg(static_cast<int>(ssno::DaemonKind::kCentral))
    ->Arg(static_cast<int>(ssno::DaemonKind::kDistributed))
    ->Arg(static_cast<int>(ssno::DaemonKind::kSynchronous))
    ->Arg(static_cast<int>(ssno::DaemonKind::kRoundRobin))
    ->Unit(::benchmark::kMillisecond);

}  // namespace
}  // namespace ssno::bench

int main(int argc, char** argv) {
  ssno::bench::tables();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
