// EXP-11 — Chapter 3 substrate contract: the depth-first token
// circulation visits every node exactly once per round in deterministic
// order ("No node gets the token more than once during a round ...
// every node has to get the token exactly once").
//
// Regenerates: round length decomposition (Forwards = n−1, Advances ≈
// tree+non-tree backtracks), substrate stabilization cost from scrambled
// states, and the BFS-tree substrate's round cost — the two "assumed"
// protocols measured head to head.
//
// Trial execution is delegated to the src/exp harness (the "substrate"
// preset); this file only renders tables.  The clean-round decomposition
// is a deterministic single pass with hooks, not a trial loop.
#include <benchmark/benchmark.h>

#include <map>

#include "bench_util.hpp"
#include "exp/scenario.hpp"
#include "sptree/bfs_tree.hpp"

namespace ssno::bench {
namespace {

struct RoundProfile {
  int forwards = 0;
  int advances = 0;
  int total = 0;
};

RoundProfile profileOneCleanRound(const Graph& g) {
  Dftc dftc(g);
  dftc.resetClean();
  RoundProfile prof;
  int rounds = 0;
  TokenHooks hooks;
  hooks.onRoundStart = [&rounds](NodeId) { ++rounds; };
  hooks.onForward = [&](NodeId, NodeId) {
    if (rounds == 1) ++prof.forwards;
  };
  hooks.onBacktrack = [&](NodeId, NodeId) {
    if (rounds == 1) ++prof.advances;
  };
  dftc.setHooks(std::move(hooks));
  while (rounds < 2) {
    const auto moves = dftc.enabledMoves();
    dftc.execute(moves.front().node, moves.front().action);
    if (rounds == 1) ++prof.total;
  }
  --prof.total;  // the Start of round 2 was counted
  return prof;
}

void tables() {
  printHeader("EXP-11  substrate costs (token circulation & BFS tree)",
              "each node receives the token exactly once per round; "
              "circulation order is deterministic DFS");

  std::printf("clean round decomposition:\n");
  std::printf("%-14s %6s %6s | %9s %9s %9s\n", "graph", "n", "m",
              "forwards", "advances", "total");
  for (const exp::Scenario& s : exp::makePreset("substrate")) {
    if (s.protocol != exp::ProtocolKind::kDftc) continue;
    const Graph g = s.topology.build();
    const RoundProfile prof = profileOneCleanRound(g);
    std::printf("%-14s %6d %6d | %9d %9d %9d\n", s.topology.name().c_str(),
                g.nodeCount(), g.edgeCount(), prof.forwards, prof.advances,
                prof.total);
  }
  std::printf("  (forwards = n−1 always; the token walk is linear in m)\n");

  std::printf("\nsubstrate stabilization from scrambled states "
              "(round-robin daemon, 10 trials):\n");
  std::printf("%-14s %6s | %14s %8s | %14s %8s\n", "graph", "n",
              "DFTC moves", "ok", "BFS-tree moves", "ok");
  const exp::ExperimentRunner runner;
  const auto all = runner.runAll(exp::makePreset("substrate"));
  // The preset interleaves dftc/bfs-tree per topology; pair them up.
  std::map<std::string, const exp::ScenarioResult*> bfsRows;
  for (const exp::ScenarioResult& r : all)
    if (r.scenario.protocol == exp::ProtocolKind::kBfsTree)
      bfsRows[r.scenario.topology.name()] = &r;
  for (const exp::ScenarioResult& r : all) {
    if (r.scenario.protocol != exp::ProtocolKind::kDftc) continue;
    const std::string topo = r.scenario.topology.name();
    const auto bfs = bfsRows.find(topo);
    if (bfs == bfsRows.end()) continue;  // unpaired topology in the preset
    std::printf("%-14s %6d | %14.1f %8s | %14.1f %8s\n", topo.c_str(),
                r.nodeCount, r.metric("substrate_moves").mean,
                convergedLabel(r.trials, r.failedTrials).c_str(),
                bfs->second->metric("tree_moves").mean,
                convergedLabel(bfs->second->trials,
                               bfs->second->failedTrials).c_str());
  }
}

void BM_TokenRound(::benchmark::State& state) {
  const Graph g = Graph::ring(static_cast<int>(state.range(0)));
  Dftc dftc(g);
  dftc.resetClean();
  for (auto _ : state) {
    // Execute one full round of the legitimate circulation.
    int starts = 0;
    TokenHooks hooks;
    hooks.onRoundStart = [&starts](NodeId) { ++starts; };
    dftc.setHooks(std::move(hooks));
    while (starts < 2) {
      const auto moves = dftc.enabledMoves();
      dftc.execute(moves.front().node, moves.front().action);
    }
    dftc.setHooks(TokenHooks{});
  }
}
BENCHMARK(BM_TokenRound)->Arg(16)->Arg(64)->Arg(256);

}  // namespace
}  // namespace ssno::bench

int main(int argc, char** argv) {
  ssno::bench::tables();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
