// EXP-11 — Chapter 3 substrate contract: the depth-first token
// circulation visits every node exactly once per round in deterministic
// order ("No node gets the token more than once during a round ...
// every node has to get the token exactly once").
//
// Regenerates: round length decomposition (Forwards = n−1, Advances ≈
// tree+non-tree backtracks), substrate stabilization cost from scrambled
// states, and the BFS-tree substrate's round cost — the two "assumed"
// protocols measured head to head.
#include <benchmark/benchmark.h>

#include <map>

#include "bench_util.hpp"
#include "sptree/bfs_tree.hpp"

namespace ssno::bench {
namespace {

struct RoundProfile {
  int forwards = 0;
  int advances = 0;
  int total = 0;
};

RoundProfile profileOneCleanRound(const Graph& g) {
  Dftc dftc(g);
  dftc.resetClean();
  RoundProfile prof;
  int rounds = 0;
  TokenHooks hooks;
  hooks.onRoundStart = [&rounds](NodeId) { ++rounds; };
  hooks.onForward = [&](NodeId, NodeId) {
    if (rounds == 1) ++prof.forwards;
  };
  hooks.onBacktrack = [&](NodeId, NodeId) {
    if (rounds == 1) ++prof.advances;
  };
  dftc.setHooks(std::move(hooks));
  while (rounds < 2) {
    const auto moves = dftc.enabledMoves();
    dftc.execute(moves.front().node, moves.front().action);
    if (rounds == 1) ++prof.total;
  }
  --prof.total;  // the Start of round 2 was counted
  return prof;
}

void tables() {
  printHeader("EXP-11  substrate costs (token circulation & BFS tree)",
              "each node receives the token exactly once per round; "
              "circulation order is deterministic DFS");

  std::printf("clean round decomposition:\n");
  std::printf("%-14s %6s %6s | %9s %9s %9s\n", "graph", "n", "m",
              "forwards", "advances", "total");
  Rng topo(41);
  struct Case { const char* name; Graph g; };
  std::vector<Case> cases;
  cases.push_back({"ring(16)", Graph::ring(16)});
  cases.push_back({"path(16)", Graph::path(16)});
  cases.push_back({"complete(8)", Graph::complete(8)});
  cases.push_back({"grid(4x4)", Graph::grid(4, 4)});
  cases.push_back({"random(16)", Graph::randomConnected(16, 0.3, topo)});
  for (const Case& c : cases) {
    const RoundProfile prof = profileOneCleanRound(c.g);
    std::printf("%-14s %6d %6d | %9d %9d %9d\n", c.name, c.g.nodeCount(),
                c.g.edgeCount(), prof.forwards, prof.advances, prof.total);
  }
  std::printf("  (forwards = n−1 always; the token walk is linear in m)\n");

  std::printf("\nsubstrate stabilization from scrambled states "
              "(round-robin daemon, 10 trials):\n");
  std::printf("%-14s %6s | %14s %14s\n", "graph", "n", "DFTC moves",
              "BFS-tree moves");
  for (const Case& c : cases) {
    std::vector<double> dftcMoves, bfsMoves;
    for (int t = 0; t < 10; ++t) {
      {
        Dftc dftc(c.g);
        Rng rng(100 + static_cast<std::uint64_t>(t));
        dftc.randomize(rng);
        RoundRobinDaemon daemon;
        Simulator sim(dftc, daemon, rng);
        const RunStats stats = sim.runUntil(
            [&dftc] { return dftc.isLegitimate(); }, 200'000'000);
        if (stats.converged)
          dftcMoves.push_back(static_cast<double>(stats.moves));
      }
      {
        BfsTree tree(c.g);
        Rng rng(200 + static_cast<std::uint64_t>(t));
        tree.randomize(rng);
        RoundRobinDaemon daemon;
        Simulator sim(tree, daemon, rng);
        const RunStats stats = sim.runToQuiescence(200'000'000);
        if (stats.terminal)
          bfsMoves.push_back(static_cast<double>(stats.moves));
      }
    }
    std::printf("%-14s %6d | %14.1f %14.1f\n", c.name, c.g.nodeCount(),
                summarize(dftcMoves).mean, summarize(bfsMoves).mean);
  }
}

void BM_TokenRound(::benchmark::State& state) {
  const Graph g = Graph::ring(static_cast<int>(state.range(0)));
  Dftc dftc(g);
  dftc.resetClean();
  for (auto _ : state) {
    // Execute one full round of the legitimate circulation.
    int starts = 0;
    TokenHooks hooks;
    hooks.onRoundStart = [&starts](NodeId) { ++starts; };
    dftc.setHooks(std::move(hooks));
    while (starts < 2) {
      const auto moves = dftc.enabledMoves();
      dftc.execute(moves.front().node, moves.front().action);
    }
    dftc.setHooks(TokenHooks{});
  }
}
BENCHMARK(BM_TokenRound)->Arg(16)->Arg(64)->Arg(256);

}  // namespace
}  // namespace ssno::bench

int main(int argc, char** argv) {
  ssno::bench::tables();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
