// EXP-8 — Chapter 5 ablation: "if the spanning tree maintained in the
// STNO is a DFS tree of the graph, then the naming could be similar for
// both algorithms, provided the respective ordering at individual nodes
// is the same."
//
// Regenerates the comparison: name vectors from DFTNO vs STNO-over-DFS-
// tree vs STNO-over-BFS-tree vs the fully self-stabilizing
// LexDfsTree→STNO stack.  Trial execution is delegated to the src/exp
// harness ("ablation-naming" preset, plus runOnGraph for the figure
// graphs that have no TopologySpec); this file only renders tables.
#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "core/graph_algo.hpp"
#include "exp/scenario.hpp"
#include "sptree/dfs_tree.hpp"

namespace ssno::bench {
namespace {

void printNamingRow(const char* name, const exp::ScenarioResult& r) {
  auto yes = [&r](const char* metric) {
    if (r.failedTrials == r.trials) return "n/a";
    return r.metric(metric).min >= 1.0 ? "yes" : "NO";
  };
  std::printf("%-14s %6d | %14s %14s %14s | %10.1f %10.1f\n", name,
              r.nodeCount, yes("dfs_names_equal"), yes("bfs_names_equal"),
              yes("lex_names_equal"), r.metric("lex_tree_bits").mean,
              r.metric("token_substrate_bits").mean);
}

void tables() {
  printHeader("EXP-8  DFS-tree STNO vs DFTNO naming (Chapter 5 ablation)",
              "over a DFS tree with port order, STNO's interval naming "
              "equals DFTNO's token naming");
  const exp::ExperimentRunner runner;

  std::printf("%-14s %6s | %14s %14s %14s | %10s %10s\n", "graph", "n",
              "DFS==DFTNO", "BFS==DFTNO", "Lex==DFTNO", "lex b/n",
              "token b/n");
  // Figure graphs first (no TopologySpec grammar — run on the raw graph).
  {
    exp::Scenario s;
    s.protocol = exp::ProtocolKind::kAblationNaming;
    s.daemon = DaemonKind::kRoundRobin;
    s.trials = 3;
    s.seed = 0x5EED;
    printNamingRow("figure311", runner.runOnGraph(s, Graph::figure311()));
    printNamingRow("figure221", runner.runOnGraph(s, Graph::figure221()));
  }
  for (const exp::ScenarioResult& r :
       runner.runAll(exp::makePreset("ablation-naming")))
    printNamingRow(r.scenario.topology.name().c_str(), r);
  std::printf(
      "  (expected: DFS/Lex equal everywhere, BFS rarely; the DFS-tree\n"
      "   substrate costs Θ(n·logΔ) bits vs the token substrate's\n"
      "   O(log n) — why the paper's DFTNO is the cheap route to DFS\n"
      "   naming)\n");
}

Orientation runDftno(const Graph& g, std::uint64_t seed) {
  Dftno dftno(g);
  Rng rng(seed);
  dftno.randomize(rng);
  RoundRobinDaemon daemon;
  Simulator sim(dftno, daemon, rng);
  (void)sim.runUntil([&dftno] { return dftno.isLegitimate(); }, 200'000'000);
  return dftno.orientation();
}

Orientation runStnoFixed(const Graph& g, const std::vector<NodeId>& parents,
                         std::uint64_t seed) {
  Stno stno(g, parents);
  Rng rng(seed);
  stno.randomize(rng);
  RoundRobinDaemon daemon;
  Simulator sim(stno, daemon, rng);
  (void)sim.runToQuiescence(200'000'000);
  return stno.orientation();
}

void BM_OrientViaDftno(::benchmark::State& state) {
  const Graph g = Graph::grid(4, 4);
  std::uint64_t seed = 11;
  for (auto _ : state)
    ::benchmark::DoNotOptimize(runDftno(g, seed++));
}
BENCHMARK(BM_OrientViaDftno)->Unit(::benchmark::kMillisecond);

void BM_OrientViaStnoDfsTree(::benchmark::State& state) {
  const Graph g = Graph::grid(4, 4);
  const auto parents = portOrderDfsTree(g);
  std::uint64_t seed = 13;
  for (auto _ : state)
    ::benchmark::DoNotOptimize(runStnoFixed(g, parents, seed++));
}
BENCHMARK(BM_OrientViaStnoDfsTree)->Unit(::benchmark::kMillisecond);

}  // namespace
}  // namespace ssno::bench

int main(int argc, char** argv) {
  ssno::bench::tables();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
