// EXP-8 — Chapter 5 ablation: "if the spanning tree maintained in the
// STNO is a DFS tree of the graph, then the naming could be similar for
// both algorithms, provided the respective ordering at individual nodes
// is the same."
//
// Regenerates the comparison: name vectors from DFTNO vs STNO-over-DFS-
// tree vs STNO-over-BFS-tree across topologies, with equality counts,
// plus the relative cost of getting the orientation each way.
#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "core/graph_algo.hpp"
#include "sptree/dfs_tree.hpp"
#include "sptree/lex_dfs_tree.hpp"

namespace ssno::bench {
namespace {

Orientation runDftno(const Graph& g, std::uint64_t seed) {
  Dftno dftno(g);
  Rng rng(seed);
  dftno.randomize(rng);
  RoundRobinDaemon daemon;
  Simulator sim(dftno, daemon, rng);
  (void)sim.runUntil([&dftno] { return dftno.isLegitimate(); }, 200'000'000);
  return dftno.orientation();
}

Orientation runStnoFixed(const Graph& g, const std::vector<NodeId>& parents,
                         std::uint64_t seed) {
  Stno stno(g, parents);
  Rng rng(seed);
  stno.randomize(rng);
  RoundRobinDaemon daemon;
  Simulator sim(stno, daemon, rng);
  (void)sim.runToQuiescence(200'000'000);
  return stno.orientation();
}

Orientation runStnoBfs(const Graph& g, std::uint64_t seed) {
  Stno stno(g);
  Rng rng(seed);
  stno.randomize(rng);
  RoundRobinDaemon daemon;
  Simulator sim(stno, daemon, rng);
  (void)sim.runToQuiescence(200'000'000);
  return stno.orientation();
}

void tables() {
  printHeader("EXP-8  DFS-tree STNO vs DFTNO naming (Chapter 5 ablation)",
              "over a DFS tree with port order, STNO's interval naming "
              "equals DFTNO's token naming");
  Rng topo(31);
  struct Case { const char* name; Graph g; };
  std::vector<Case> cases;
  cases.push_back({"figure311", Graph::figure311()});
  cases.push_back({"figure221", Graph::figure221()});
  cases.push_back({"ring(12)", Graph::ring(12)});
  cases.push_back({"grid(3x4)", Graph::grid(3, 4)});
  cases.push_back({"complete(8)", Graph::complete(8)});
  cases.push_back({"random(14)", Graph::randomConnected(14, 0.3, topo)});

  std::printf("%-12s %6s | %14s %14s\n", "graph", "n",
              "DFS-tree==DFTNO", "BFS-tree==DFTNO");
  int dfsEqual = 0, bfsEqual = 0;
  for (const Case& c : cases) {
    const Orientation viaToken = runDftno(c.g, 0x5EED);
    const Orientation viaDfs =
        runStnoFixed(c.g, portOrderDfsTree(c.g), 0x5EED + 1);
    const Orientation viaBfs = runStnoBfs(c.g, 0x5EED + 2);
    const bool dEq = viaToken.name == viaDfs.name;
    const bool bEq = viaToken.name == viaBfs.name;
    dfsEqual += dEq;
    bfsEqual += bEq;
    std::printf("%-12s %6d | %14s %14s\n", c.name, c.g.nodeCount(),
                dEq ? "yes" : "NO", bEq ? "yes" : "no");
  }
  std::printf("summary: DFS-tree naming equal on %d/%zu graphs; "
              "BFS-tree equal on %d/%zu (expected: all / few)\n",
              dfsEqual, cases.size(), bfsEqual, cases.size());

  // Fully self-stabilizing variant: the DFS tree itself produced by the
  // LexDfsTree protocol from a scrambled state (no fixed tree anywhere).
  std::printf("\nboth layers self-stabilizing "
              "(LexDfsTree substrate -> STNO):\n");
  std::printf("%-12s %6s | %14s | %14s %16s\n", "graph", "n",
              "LexTree==DFTNO", "tree bits/node", "token bits/node");
  for (const Case& c : cases) {
    LexDfsTree lex(c.g);
    Rng rng(0x1E1);
    lex.randomize(rng);
    RoundRobinDaemon daemon;
    Simulator sim(lex, daemon, rng);
    (void)sim.runToQuiescence(200'000'000);
    std::vector<NodeId> parents(
        static_cast<std::size_t>(c.g.nodeCount()));
    for (NodeId p = 0; p < c.g.nodeCount(); ++p)
      parents[static_cast<std::size_t>(p)] = lex.parentOf(p);
    const Orientation viaLex = runStnoFixed(c.g, parents, 0x1E2);
    const Orientation viaToken = runDftno(c.g, 0x1E3);
    double lexBits = 0, tokenBits = 0;
    Dftno dftnoBits(c.g);
    for (NodeId p = 0; p < c.g.nodeCount(); ++p) {
      lexBits = std::max(lexBits, lex.stateBits(p));
      tokenBits =
          std::max(tokenBits, dftnoBits.substrate().stateBits(p));
    }
    std::printf("%-12s %6d | %14s | %14.1f %16.1f\n", c.name,
                c.g.nodeCount(),
                viaLex.name == viaToken.name ? "yes" : "NO", lexBits,
                tokenBits);
  }
  std::printf("  (the DFS-tree substrate costs Θ(n·logΔ) bits vs the\n"
              "   token substrate's O(log n) — why the paper's DFTNO is\n"
              "   the cheap route to DFS naming)\n");
}

void BM_OrientViaDftno(::benchmark::State& state) {
  const Graph g = Graph::grid(4, 4);
  std::uint64_t seed = 11;
  for (auto _ : state)
    ::benchmark::DoNotOptimize(runDftno(g, seed++));
}
BENCHMARK(BM_OrientViaDftno)->Unit(::benchmark::kMillisecond);

void BM_OrientViaStnoDfsTree(::benchmark::State& state) {
  const Graph g = Graph::grid(4, 4);
  const auto parents = portOrderDfsTree(g);
  std::uint64_t seed = 13;
  for (auto _ : state)
    ::benchmark::DoNotOptimize(runStnoFixed(g, parents, seed++));
}
BENCHMARK(BM_OrientViaStnoDfsTree)->Unit(::benchmark::kMillisecond);

}  // namespace
}  // namespace ssno::bench

int main(int argc, char** argv) {
  ssno::bench::tables();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
