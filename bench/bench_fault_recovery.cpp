// EXP-10 — §1.2 motivation: self-stabilization as fault tolerance.
//   "A fault occurring at a process may cause an illegal global state,
//    but the system will detect such a state, and correct itself in
//    finite time" — without restart or external intervention.
//
// Regenerates fault-containment curves: moves to re-stabilize after
// corrupting k of n processors, for both protocols; plus crash-and-reset
// recovery.  Trial execution is delegated to the src/exp harness (the
// "fault-recovery" preset); this file only renders tables.
#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "core/fault.hpp"
#include "exp/scenario.hpp"

namespace ssno::bench {
namespace {

void printRecoveryTable(const std::vector<exp::ScenarioResult>& all,
                        exp::ProtocolKind kind, const char* title) {
  std::printf("%s:\n", title);
  std::printf("%4s %14s %14s %14s %8s\n", "k", "mean moves", "p50", "p95",
              "ok");
  for (const exp::ScenarioResult& r : all) {
    if (r.scenario.protocol != kind) continue;
    const Summary s = r.metric("recovery_moves");
    std::printf("%4d %14.1f %14.1f %14.1f %8s\n", r.scenario.faultK, s.mean,
                s.p50, s.p95,
                convergedLabel(r.trials, r.failedTrials).c_str());
  }
}

void tables() {
  printHeader("EXP-10  recovery cost vs number of corrupted processors",
              "recovery from any transient fault in finite time, no "
              "restart procedure (§1.2)");
  const exp::ExperimentRunner runner;
  const auto all = runner.runAll(exp::makePreset("fault-recovery"));

  printRecoveryTable(all, exp::ProtocolKind::kDftnoRecovery,
                     "DFTNO on grid(4x4)");
  std::printf("\n");
  printRecoveryTable(all, exp::ProtocolKind::kStnoRecovery,
                     "STNO on grid(4x4)");

  std::printf("\ncrash-and-reset of a single processor (all-zero local "
              "state), STNO on grid(4x4):\n");
  for (const exp::ScenarioResult& r : all) {
    if (r.scenario.protocol != exp::ProtocolKind::kStnoCrashReset) continue;
    const Summary s = r.metric("recovery_moves");
    std::printf("  trials=%s  mean=%.1f  max=%.1f moves\n",
                convergedLabel(r.trials, r.failedTrials).c_str(), s.mean,
                s.max);
  }
}

void BM_RecoverOneFault(::benchmark::State& state) {
  const Graph g = Graph::grid(4, 4);
  Dftno dftno(g);
  Rng rng(0xFA20);
  RoundRobinDaemon daemon;
  Simulator sim(dftno, daemon, rng);
  auto legit = [&dftno] { return dftno.isLegitimate(); };
  (void)sim.runUntil(legit, 200'000'000);
  FaultInjector inj(dftno);
  for (auto _ : state) {
    inj.corruptK(1, rng);
    const RunStats stats = sim.runUntil(legit, 200'000'000);
    if (!stats.converged) state.SkipWithError("no recovery");
  }
}
BENCHMARK(BM_RecoverOneFault)->Unit(::benchmark::kMillisecond);

}  // namespace
}  // namespace ssno::bench

int main(int argc, char** argv) {
  ssno::bench::tables();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
