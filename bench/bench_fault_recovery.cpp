// EXP-10 — §1.2 motivation: self-stabilization as fault tolerance.
//   "A fault occurring at a process may cause an illegal global state,
//    but the system will detect such a state, and correct itself in
//    finite time" — without restart or external intervention.
//
// Regenerates fault-containment curves: moves to re-stabilize after
// corrupting k of n processors, for k = 1..n, for both protocols; plus
// crash-and-reset recovery.
#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "core/fault.hpp"

namespace ssno::bench {
namespace {

constexpr int kTrials = 12;

template <typename Protocol, typename LegitFn>
Summary recoveryCost(Protocol& proto, LegitFn legit, int k, Rng& rng) {
  std::vector<double> moves;
  RoundRobinDaemon daemon;
  Simulator sim(proto, daemon, rng);
  for (int t = 0; t < kTrials; ++t) {
    // Ensure we start legitimate, inject, then measure recovery.
    (void)sim.runUntil(legit, 200'000'000);
    FaultInjector inj(proto);
    inj.corruptK(k, rng);
    const RunStats stats = sim.runUntil(legit, 200'000'000);
    if (stats.converged) moves.push_back(static_cast<double>(stats.moves));
  }
  return summarize(std::move(moves));
}

void tables() {
  printHeader("EXP-10  recovery cost vs number of corrupted processors",
              "recovery from any transient fault in finite time, no "
              "restart procedure (§1.2)");
  const Graph g = Graph::grid(4, 4);

  std::printf("DFTNO on grid(4x4):\n");
  std::printf("%4s %14s %14s %14s\n", "k", "mean moves", "p50", "p95");
  {
    Dftno dftno(g);
    Rng rng(0xFA17);
    auto legit = [&dftno] { return dftno.isLegitimate(); };
    for (int k : {1, 2, 4, 8, 16}) {
      const Summary s = recoveryCost(dftno, legit, k, rng);
      std::printf("%4d %14.1f %14.1f %14.1f\n", k, s.mean, s.p50, s.p95);
    }
  }

  std::printf("\nSTNO on grid(4x4):\n");
  std::printf("%4s %14s %14s %14s\n", "k", "mean moves", "p50", "p95");
  {
    Stno stno(g);
    Rng rng(0xFA18);
    auto legit = [&stno] { return stno.isLegitimate(); };
    for (int k : {1, 2, 4, 8, 16}) {
      const Summary s = recoveryCost(stno, legit, k, rng);
      std::printf("%4d %14.1f %14.1f %14.1f\n", k, s.mean, s.p50, s.p95);
    }
  }

  std::printf("\ncrash-and-reset of a single processor (all-zero local "
              "state), STNO on grid(4x4):\n");
  {
    Stno stno(g);
    Rng rng(0xFA19);
    RoundRobinDaemon daemon;
    Simulator sim(stno, daemon, rng);
    (void)sim.runToQuiescence(200'000'000);
    std::vector<double> moves;
    FaultInjector inj(stno);
    for (NodeId victim = 0; victim < g.nodeCount(); ++victim) {
      inj.crashReset(victim);
      const RunStats stats = sim.runToQuiescence(200'000'000);
      if (stats.terminal) moves.push_back(static_cast<double>(stats.moves));
    }
    const Summary s = summarize(std::move(moves));
    std::printf("  victims=%d  mean=%.1f  max=%.1f moves\n", s.count,
                s.mean, s.max);
  }
}

void BM_RecoverOneFault(::benchmark::State& state) {
  const Graph g = Graph::grid(4, 4);
  Dftno dftno(g);
  Rng rng(0xFA20);
  RoundRobinDaemon daemon;
  Simulator sim(dftno, daemon, rng);
  auto legit = [&dftno] { return dftno.isLegitimate(); };
  (void)sim.runUntil(legit, 200'000'000);
  FaultInjector inj(dftno);
  for (auto _ : state) {
    inj.corruptK(1, rng);
    const RunStats stats = sim.runUntil(legit, 200'000'000);
    if (!stats.converged) state.SkipWithError("no recovery");
  }
}
BENCHMARK(BM_RecoverOneFault)->Unit(::benchmark::kMillisecond);

}  // namespace
}  // namespace ssno::bench

int main(int argc, char** argv) {
  ssno::bench::tables();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
