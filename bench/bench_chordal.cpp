// EXP-4 — Figure 2.2.1: the chordal sense of direction.
//
// Regenerates the figure's labeling on its 5-node example and validates
// the §2.2 properties (ψ/δ consistency, edge inversion, local
// orientation) across topologies; benchmarks the label verification
// throughput.  The property sweep runs through the src/exp harness (the
// "chordal-props" preset).
#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "exp/scenario.hpp"
#include "orientation/chordal.hpp"
#include "sptree/dfs_tree.hpp"

namespace ssno::bench {
namespace {

void tables() {
  printHeader("EXP-4  chordal sense of direction (Figure 2.2.1)",
              "links labeled by cyclic distance; label at q is the "
              "inverse mod N of the label at p");
  const Graph g = Graph::figure221();
  const Orientation o =
      inducedChordalOrientation(g, {0, 1, 2, 3, 4}, g.nodeCount());
  std::printf("%s", renderOrientation(o).c_str());
  std::printf("checks: SP1=%d SP2=%d locallyOriented=%d edgeSymmetry=%d\n",
              satisfiesSP1(o), satisfiesSP2(o), isLocallyOriented(o),
              hasEdgeSymmetry(o));

  std::printf("\nedge inversion table (chord 0-2):\n");
  const Port p02 = g.portOf(0, 2);
  const Port p20 = g.portOf(2, 0);
  std::printf("  label at 0 -> 2: %d;  label at 2 -> 0: %d;  sum mod 5 = %d\n",
              o.labelAt(0, p02), o.labelAt(2, p20),
              (o.labelAt(0, p02) + o.labelAt(2, p20)) % 5);

  std::printf("\nproperty sweep over topologies:\n");
  std::printf("%-12s %6s %8s %8s %8s\n", "graph", "n", "SP1&2", "local",
              "symm");
  const exp::ExperimentRunner runner;
  for (const exp::ScenarioResult& r :
       runner.runAll(exp::makePreset("chordal-props"))) {
    const bool spec =
        r.metric("sp1").min >= 1.0 && r.metric("sp2").min >= 1.0;
    std::printf("%-12s %6d %8d %8d %8d\n",
                r.scenario.topology.name().c_str(), r.nodeCount, spec,
                r.metric("locally_oriented").min >= 1.0,
                r.metric("edge_symmetry").min >= 1.0);
  }
}

void BM_VerifyChordal(::benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(1);
  const Graph g = Graph::randomConnected(n, 0.1, rng);
  const Orientation o = inducedChordalOrientation(
      g, portOrderDfsPreorder(g), g.nodeCount());
  for (auto _ : state) {
    const bool ok = satisfiesSpec(o) && isLocallySymmetric(o);
    ::benchmark::DoNotOptimize(ok);
  }
}
BENCHMARK(BM_VerifyChordal)->Arg(64)->Arg(256)->Arg(1024);

}  // namespace
}  // namespace ssno::bench

int main(int argc, char** argv) {
  ssno::bench::tables();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
