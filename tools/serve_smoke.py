#!/usr/bin/env python3
"""Serve smoke: drive exp_serve over its unix socket with a mixed,
repeating workload and prove the service's two load-bearing claims:

  1. Byte identity — the CSV reassembled from served `result` rows
     (header + per-unit rows in submit order) is byte-for-byte the file
     a direct `exp_cli run --scenarios ... --cache-dir ... --csv` run
     writes, and a repeat submission is served entirely from the cache
     (hits > 0) with identical bytes.
  2. Crash durability — a checkpointed sweep whose server is SIGKILLed
     mid-flight resumes on a fresh server process and its final report
     is byte-identical to an uninterrupted run computed without any
     cache at all.

Also exercises the telemetry surface: the `metrics` verb must return a
parseable Prometheus exposition with a live serve_requests_total and
cache counters that agree with the `stats` verb, and a malformed
request must answer ok:false without killing the session.

A concurrent-socket slice then runs N parallel clients submitting one
identical fresh sweep with an interleaved partial `result`/`cancel`,
asserting the sweep computes exactly once (cross-connection dedup), no
connection ever observes a malformed response, and every client's
reassembled CSV is byte-identical to a direct CLI run.

Emits a BENCH_serve.json row (scenario "serve/smoke") whose gated
metrics are correctness flags only — cache_hits, byte_identity,
resume_identity, metrics_ok, concurrent_ok — timing fields ride along
for the trajectory but are never gated (see check_perf_regression.py).

Usage: serve_smoke.py --exp-serve BIN --exp-cli BIN --scenarios FILE
                      [--workdir DIR] [--json OUT]
"""
import argparse
import json
import os
import signal
import socket
import subprocess
import sys
import tempfile
import threading
import time

RESUME_SWEEP = [
    "dftc central ring:72 trials=2",
    "dftc central ring:88 trials=2",
    "dftc central ring:104 trials=2",
    "space central ring:96 trials=1",
]

# Fresh scenarios for the concurrent-socket slice: disjoint from the
# scenario file and RESUME_SWEEP so the dedup assertion (computed ==
# len(CONCURRENT_SWEEP) across all clients) is airtight.
CONCURRENT_SWEEP = [
    "dftc central ring:120 trials=2",
    "dftc central ring:136 trials=2",
    "space central ring:80 trials=1",
]
CONCURRENT_CLIENTS = 4


class Client:
    def __init__(self, path, retries=10, backoff=0.05):
        # Connect with retry-and-backoff: a freshly exec'd server may
        # have created the socket file but not called listen() yet, and
        # a loaded runner can delay the accept thread.  Each failure
        # doubles the wait (capped at 1s); the last error propagates.
        delay = backoff
        for attempt in range(retries):
            self.sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            try:
                self.sock.connect(path)
                break
            except OSError:
                self.sock.close()
                if attempt == retries - 1:
                    raise
                time.sleep(delay)
                delay = min(delay * 2, 1.0)
        self.f = self.sock.makefile("rw", encoding="utf-8", newline="\n")

    def call(self, **req):
        self.f.write(json.dumps(req) + "\n")
        self.f.flush()
        return json.loads(self.f.readline())

    def raw_call(self, line):
        """Send `line` verbatim (deliberately malformed requests)."""
        self.f.write(line + "\n")
        self.f.flush()
        return json.loads(self.f.readline())

    def stream_result(self, job):
        """All `result` lines for `job`: rows then the summary line."""
        self.f.write(json.dumps({"verb": "result", "job": job}) + "\n")
        self.f.flush()
        lines = []
        while True:
            line = json.loads(self.f.readline())
            lines.append(line)
            if "complete" in line or not line.get("ok"):
                return lines

    def close(self):
        self.f.close()
        self.sock.close()


def start_server(exp_serve, sock_path, cache_dir):
    proc = subprocess.Popen(
        [exp_serve, "--socket", sock_path, "--cache-dir", cache_dir,
         "--workers", "1"])
    for _ in range(200):
        if os.path.exists(sock_path):
            try:
                Client(sock_path).close()
                return proc
            except OSError:
                pass
        if proc.poll() is not None:
            raise SystemExit("exp_serve exited during startup")
        time.sleep(0.05)
    raise SystemExit(f"exp_serve never created {sock_path}")


def parse_prometheus(text):
    """Prometheus text exposition -> {metric_name: float}.  Series with
    labels (histogram buckets) keep the label suffix in the key; a line
    that fails to parse is a hard error (the exposition must be valid).
    """
    values = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        name, _, value = line.rpartition(" ")
        if not name:
            raise SystemExit(f"unparseable exposition line: {line!r}")
        values[name] = float(value)
    return values


def reassemble_csv(lines, header):
    rows = sorted((l["unit"], l["csv"]) for l in lines if "csv" in l)
    for l in lines:
        if l.get("failed"):
            raise SystemExit(f"served unit failed: {l}")
    return header + "\n" + "".join(csv for _, csv in rows)


def run_cli_csv(exp_cli, scenarios_file, cache_dir, workdir):
    out = os.path.join(workdir, "cli.csv")
    cmd = [exp_cli, "run", "--scenarios", scenarios_file, "--threads", "1",
           "--quiet", "--csv", out]
    if cache_dir:
        cmd += ["--cache-dir", cache_dir]
    subprocess.run(cmd, check=True)
    with open(out) as f:
        return f.read()


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--exp-serve", required=True)
    ap.add_argument("--exp-cli", required=True)
    ap.add_argument("--scenarios", required=True,
                    help="mixed-workload scenario file (the recorded load)")
    ap.add_argument("--workdir", default=None)
    ap.add_argument("--json", default=None, help="write BENCH row here")
    args = ap.parse_args()

    workdir = args.workdir or tempfile.mkdtemp(prefix="ssno-serve-smoke-")
    os.makedirs(workdir, exist_ok=True)
    sock_path = os.path.join(workdir, "serve.sock")
    cache_dir = os.path.join(workdir, "cache")
    with open(args.scenarios) as f:
        sweep_lines = [l.strip() for l in f
                       if l.strip() and not l.startswith("#")]
    header = ("scenario,protocol,daemon,topology,nodes,edges,trials,"
              "failed_trials,fault_rate,metric,count,min,max,mean,stddev,"
              "p50,p95")

    t0 = time.time()
    server = start_server(args.exp_serve, sock_path, cache_dir)
    try:
        # --- Phase 1: cold sweep, then an immediate repeat. ---------------
        c = Client(sock_path)
        ack = c.call(verb="submit", scenarios=sweep_lines,
                     checkpoint="smoke")
        assert ack["ok"] and ack["units"] == len(sweep_lines), ack
        cold = reassemble_csv(c.stream_result(ack["job"]), header)

        ack2 = c.call(verb="submit", scenarios=sweep_lines)
        warm_lines = c.stream_result(ack2["job"])
        warm = reassemble_csv(warm_lines, header)
        cached_rows = sum(1 for l in warm_lines if l.get("cached"))
        stats = c.call(verb="stats")
        assert stats["ok"], stats
        hits = stats["hits"]

        # --- Telemetry: the metrics verb must return a parseable
        # Prometheus exposition whose serve counters are live, and whose
        # cache series agree with the stats verb; a malformed metrics
        # request answers ok:false without killing the session. --------
        met = c.call(verb="metrics")
        assert met["ok"], met
        exposition = parse_prometheus(met["metrics"])
        requests_total = exposition.get("serve_requests_total", 0)
        metrics_ok = int(
            requests_total > 0
            and exposition.get("serve_cache_hits_total") == stats["hits"]
            and exposition.get("serve_cache_misses_total") == stats["misses"])
        bad = c.raw_call('{"verb":"metrics", this is not json}')
        again = c.call(verb="metrics")
        metrics_ok = int(metrics_ok
                         and not bad.get("ok", True)   # malformed -> ok:false
                         and again["ok"])              # session survived
        print(f"serve_smoke: metrics verb requests_total {requests_total}, "
              f"metrics_ok {metrics_ok}")

        # Direct CLI over the same cache: warm, byte-identical.
        cli_csv = run_cli_csv(args.exp_cli, args.scenarios, cache_dir,
                              workdir)
        byte_identity = int(cold == warm == cli_csv)
        print(f"serve_smoke: {len(sweep_lines)} units, cache hits {hits}, "
              f"repeat rows cached {cached_rows}/{len(sweep_lines)}, "
              f"byte_identity {byte_identity}")

        # --- Phase 2: SIGKILL mid-sweep, restart, resume. -----------------
        resume_file = os.path.join(workdir, "resume.scenarios")
        with open(resume_file, "w") as f:
            f.write("\n".join(RESUME_SWEEP) + "\n")
        ack3 = c.call(verb="submit", scenarios=RESUME_SWEEP,
                      checkpoint="resume-sweep")
        assert ack3["ok"], ack3
        server.send_signal(signal.SIGKILL)
        server.wait()
        c.close()
        print("serve_smoke: server SIGKILLed mid-sweep, restarting")

        server = start_server(args.exp_serve, sock_path, cache_dir)
        c = Client(sock_path)
        ack4 = c.call(verb="resume", checkpoint="resume-sweep")
        assert ack4["ok"] and ack4["units"] == len(RESUME_SWEEP), ack4
        resumed = reassemble_csv(c.stream_result(ack4["job"]), header)
        # Uninterrupted reference computed WITHOUT any cache: determinism
        # alone must make the resumed report identical.
        reference = run_cli_csv(args.exp_cli, resume_file, None, workdir)
        resume_identity = int(resumed == reference)
        print(f"serve_smoke: resume_identity {resume_identity}")

        # --- Phase 3: concurrent sockets (ROADMAP 4c). --------------------
        # N parallel clients submit the SAME fresh sweep; one of them also
        # interleaves a partial `result` read with a `cancel`.  Claims:
        # every connection sees only well-formed responses, the sweep is
        # computed once (cross-connection dedup), and every client's
        # reassembled CSV is byte-identical.
        computed_before = c.call(verb="stats")["computed"]
        results = [None] * CONCURRENT_CLIENTS
        errors = []

        def concurrent_client(slot):
            try:
                cc = Client(sock_path)
                ack = cc.call(verb="submit", scenarios=CONCURRENT_SWEEP)
                assert ack["ok"] and ack["units"] == len(CONCURRENT_SWEEP), ack
                if slot == 0:
                    # Interleaved cancel: submit a duplicate job, queue a
                    # partial result read and a cancel behind it, then
                    # consume both streams — each line must still be a
                    # complete, well-formed response.
                    extra = cc.call(verb="submit",
                                    scenarios=CONCURRENT_SWEEP[:2])
                    assert extra["ok"], extra
                    cancel = cc.call(verb="cancel", job=extra["job"])
                    assert cancel["ok"], cancel
                    tail = cc.stream_result(extra["job"])
                    assert all("ok" in l for l in tail), tail
                lines = cc.stream_result(ack["job"])
                assert all("ok" in l and l["ok"] for l in lines), lines
                results[slot] = reassemble_csv(lines, header)
                cc.close()
            except Exception as e:  # surfaced after join
                errors.append(f"client {slot}: {e!r}")

        threads = [threading.Thread(target=concurrent_client, args=(i,))
                   for i in range(CONCURRENT_CLIENTS)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        computed_after = c.call(verb="stats")["computed"]
        computed_delta = computed_after - computed_before
        conc_file = os.path.join(workdir, "concurrent.scenarios")
        with open(conc_file, "w") as f:
            f.write("\n".join(CONCURRENT_SWEEP) + "\n")
        conc_reference = run_cli_csv(args.exp_cli, conc_file, cache_dir,
                                     workdir)
        concurrent_ok = int(
            not errors
            and all(r == conc_reference for r in results)
            and computed_delta == len(CONCURRENT_SWEEP))
        for e in errors:
            print(f"serve_smoke: concurrent client error: {e}")
        print(f"serve_smoke: {CONCURRENT_CLIENTS} concurrent clients, "
              f"computed {computed_delta}/{len(CONCURRENT_SWEEP)} "
              f"(deduped), concurrent_ok {concurrent_ok}")

        c.call(verb="shutdown")
        c.close()
        server.wait(timeout=30)
    finally:
        if server.poll() is None:
            server.kill()
            server.wait()

    elapsed = time.time() - t0
    row = {
        "scenario": "serve/smoke",
        "failed_trials": 0,
        "metrics": {
            "cache_hits": {"mean": float(hits)},
            "byte_identity": {"mean": float(byte_identity)},
            "resume_identity": {"mean": float(resume_identity)},
            "metrics_ok": {"mean": float(metrics_ok)},
            "concurrent_ok": {"mean": float(concurrent_ok)},
            "smoke_seconds": {"mean": elapsed},  # trajectory only
        },
    }
    if args.json:
        with open(args.json, "w") as f:
            json.dump([row], f, indent=2)
            f.write("\n")
        print(f"wrote {args.json}")

    ok = (byte_identity and resume_identity and hits > 0 and metrics_ok
          and concurrent_ok)
    print("serve_smoke:", "PASSED" if ok else "FAILED")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
