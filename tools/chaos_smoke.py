#!/usr/bin/env python3
"""Chaos smoke: crash-point certification for every durable-state path.

Sweeps the deterministic I/O fault schedule (src/io/fault.hpp) across
all fault sites the durable-state writers issue — cache record stores,
scheduler checkpoint writes/appends, mc/spill run files — killing or
failing the process at each site, restarting, and asserting the
recovery invariants:

  cache    a crash at ANY store site leaves the next (fault-free) run
           byte-identical to the uninterrupted reference: a torn record
           is a counted miss, never a throw or wrong bytes
  ckpt     a crash at ANY checkpoint write/append site leaves a file
           that either resumes byte-identically or fails with a clean
           error a client recovers from by resubmitting
  spill    every injected fault yields exit 0 (exact drain), 3 (named
           error — detected loss), or 86 (the injected crash); never a
           silent mismatch (4)
  enospc   a server whose cache writes all hit ENOSPC serves degraded
           (serve_degraded=1, io_faults_injected_total>0 in the metrics
           verb), survives a real SIGKILL mid-sweep, and resumes
           byte-identically from its still-writable checkpoint
  dir      an unusable cache DIRECTORY degrades startup to cacheless
           (stats cache:false, serve_degraded=1) instead of dying

Fault-site counts are read from the io_<op>_total counters of an
instrumented clean run, so the sweep can't silently under-cover: every
counted call gets a crash injected at exactly its index (exit code 86,
src/io/fault.hpp kCrashExitCode).

Emits a BENCH_chaos.json row (scenario "chaos/smoke") of correctness
flags gated by check_perf_regression.py's chaos/ branch.

Usage: chaos_smoke.py --exp-serve BIN --exp-cli BIN --scenarios FILE
                      [--workdir DIR] [--json OUT]
"""
import argparse
import json
import os
import shutil
import signal
import socket
import subprocess
import sys
import tempfile
import time

CRASH_EXIT = 86          # io::kCrashExitCode
SPILL_NAMED_ERROR = 3    # exp_cli spill-probe detected-loss exit
# Ops the cache-store sweep crashes at (order matches one store()).
CACHE_OPS = ["mkdir", "open", "write", "fsync", "rename", "close"]


def parse_prometheus(text):
    values = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        name, _, value = line.rpartition(" ")
        if not name:
            raise SystemExit(f"unparseable exposition line: {line!r}")
        values[name] = float(value)
    return values


def read_metrics_file(path):
    with open(path) as f:
        return parse_prometheus(f.read())


class Check:
    """Tallies assertions without dying on the first failure, so one
    run reports every broken invariant at once."""

    def __init__(self):
        self.failures = []
        self.sites_swept = 0
        self.unclean_exits = 0

    def expect(self, cond, what):
        if not cond:
            self.failures.append(what)
            print(f"chaos_smoke: FAIL {what}")
        return bool(cond)

    def flag(self, *failures_matching):
        """1 when no recorded failure mentions any of the substrings."""
        return int(not any(any(m in f for m in failures_matching)
                           for f in self.failures))


# --------------------------------------------------------------------------
# Phase 1: cache store crash-point sweep (exp_cli runs)

def run_cli(exp_cli, scenarios, workdir, cache_dir=None, io_faults=None,
            metrics=None, csv=None):
    cmd = [exp_cli, "run", "--scenarios", scenarios, "--threads", "1",
           "--quiet"]
    if cache_dir:
        cmd += ["--cache-dir", cache_dir]
    if io_faults:
        cmd += ["--io-faults", io_faults]
    if metrics:
        cmd += ["--metrics", metrics]
    if csv:
        cmd += ["--csv", csv]
    return subprocess.run(cmd, cwd=workdir, capture_output=True, text=True)


def read_csv(path):
    with open(path) as f:
        return f.read()


def cache_sweep(args, workdir, check):
    ref_csv_path = os.path.join(workdir, "ref.csv")
    r = run_cli(args.exp_cli, args.scenarios, workdir, csv=ref_csv_path)
    check.expect(r.returncode == 0, f"reference run failed: {r.stderr}")
    reference = read_csv(ref_csv_path)

    # Instrumented clean run on a cold cache: the per-op counters tell
    # us exactly how many fault sites the store path has.
    met_path = os.path.join(workdir, "clean.metrics")
    clean_dir = os.path.join(workdir, "cache-clean")
    r = run_cli(args.exp_cli, args.scenarios, workdir, cache_dir=clean_dir,
                metrics=met_path, csv=os.path.join(workdir, "clean.csv"))
    check.expect(r.returncode == 0, f"instrumented run failed: {r.stderr}")
    counts = read_metrics_file(met_path)

    for op in CACHE_OPS:
        sites = int(counts.get(f"io_{op}_total", 0))
        check.expect(sites > 0, f"cache sweep: no {op} sites counted")
        for n in range(1, sites + 1):
            site = f"crash@{op}:{n}"
            site_dir = os.path.join(workdir, f"cache-{op}-{n}")
            out_csv = os.path.join(workdir, "site.csv")
            r = run_cli(args.exp_cli, args.scenarios, workdir,
                        cache_dir=site_dir, io_faults=site, csv=out_csv)
            check.sites_swept += 1
            check.expect(r.returncode == CRASH_EXIT,
                         f"cache {site}: expected crash exit {CRASH_EXIT}, "
                         f"got {r.returncode}")
            # Recovery: a fault-free rerun over the crashed cache dir
            # must be byte-identical to the uninterrupted reference.
            r = run_cli(args.exp_cli, args.scenarios, workdir,
                        cache_dir=site_dir, csv=out_csv)
            if not check.expect(r.returncode == 0,
                                f"cache {site}: recovery exited "
                                f"{r.returncode}: {r.stderr}"):
                check.unclean_exits += 1
                continue
            check.expect(read_csv(out_csv) == reference,
                         f"cache {site}: recovery CSV differs")

    # Non-crash faults: ENOSPC on record writes and a torn rename are
    # absorbed in-run — exit 0, identical bytes, and (for torn) the
    # damaged record reads as a counted bad-record miss on reuse.
    for spec, name in [("enospc@write:path=.rec", "enospc-rec"),
                       ("torn@rename:1", "torn-rename")]:
        site_dir = os.path.join(workdir, f"cache-{name}")
        out_csv = os.path.join(workdir, "site.csv")
        met = os.path.join(workdir, f"{name}.metrics")
        r = run_cli(args.exp_cli, args.scenarios, workdir,
                    cache_dir=site_dir, io_faults=spec, csv=out_csv,
                    metrics=met)
        check.sites_swept += 1
        check.expect(r.returncode == 0,
                     f"cache {spec}: exited {r.returncode}: {r.stderr}")
        check.expect(read_csv(out_csv) == reference,
                     f"cache {spec}: CSV differs under injected faults")
        check.expect(read_metrics_file(met).get(
            "io_faults_injected_total", 0) > 0,
            f"cache {spec}: no fault actually injected")
        r = run_cli(args.exp_cli, args.scenarios, workdir,
                    cache_dir=site_dir, csv=out_csv, metrics=met)
        check.expect(r.returncode == 0 and read_csv(out_csv) == reference,
                     f"cache {spec}: recovery differs")
        if spec.startswith("torn@rename"):
            check.expect(read_metrics_file(met).get(
                "serve_cache_bad_records_total", 0) > 0,
                f"cache {spec}: torn record not counted as bad")
    return reference


# --------------------------------------------------------------------------
# Phase 2: checkpoint crash-point sweep (exp_serve pipe runs)

def run_pipe(args, workdir, requests, io_faults=None):
    cache_dir = os.path.join(workdir, "cache")
    cmd = [args.exp_serve, "--pipe", "--cache-dir", cache_dir,
           "--workers", "1"]
    if io_faults:
        cmd += ["--io-faults", io_faults]
    lines_in = "".join(json.dumps(r) + "\n" for r in requests)
    r = subprocess.run(cmd, input=lines_in, capture_output=True, text=True)
    lines = []
    for line in r.stdout.splitlines():
        if line.strip():
            lines.append(json.loads(line))
    return r.returncode, lines


def reassemble(lines, header):
    rows = sorted((l["unit"], l["csv"]) for l in lines if "csv" in l)
    return header + "\n" + "".join(csv for _, csv in rows)


CKPT_SWEEP = [
    "dftc central ring:16 trials=2",
    "dftc central ring:24 trials=2",
]
SUBMIT = {"verb": "submit", "scenarios": CKPT_SWEEP, "checkpoint": "sweep"}
RESUME = {"verb": "resume", "checkpoint": "sweep"}
RESULT = {"verb": "result", "job": 1}


def ckpt_sweep(args, workdir, header, check):
    code, lines = run_pipe(args, os.path.join(workdir, "ckpt-ref"),
                           [SUBMIT, RESULT])
    check.expect(code == 0, f"ckpt reference run exited {code}")
    reference = reassemble(lines, header)

    # Sweep each op until a site index never fires (exit 0): that index
    # is past the last real site, so coverage is complete by
    # construction.  path=.ckpt scopes the crashes to checkpoint I/O.
    for op in ["write", "fsync", "rename"]:
        n = 0
        while True:
            n += 1
            site = f"crash@{op}:{n}:path=.ckpt"
            site_dir = os.path.join(workdir, f"ckpt-{op}-{n}")
            code, _ = run_pipe(args, site_dir, [SUBMIT, RESULT],
                               io_faults=site)
            if code == 0:
                break  # site n doesn't exist; ops 1..n-1 all swept
            check.sites_swept += 1
            if not check.expect(code == CRASH_EXIT,
                                f"ckpt {site}: expected {CRASH_EXIT}, "
                                f"got {code}"):
                check.unclean_exits += 1
                break
            # Recovery: resume if the checkpoint landed, else resubmit.
            code, lines = run_pipe(args, site_dir, [RESUME, RESULT])
            check.expect(code == 0, f"ckpt {site}: recovery exited {code}")
            if lines and lines[0].get("ok"):
                check.expect(reassemble(lines, header) == reference,
                             f"ckpt {site}: resumed CSV differs")
            else:
                # Clean refusal (checkpoint never written): the client
                # recovers by resubmitting.
                code, lines = run_pipe(args, site_dir, [SUBMIT, RESULT])
                check.expect(
                    code == 0 and reassemble(lines, header) == reference,
                    f"ckpt {site}: resubmit after clean refusal differs")
            if n > 32:
                check.expect(False, f"ckpt {op}: runaway sweep (>32 sites)")
                break
    return reference


# --------------------------------------------------------------------------
# Phase 3: SIGKILL under injected ENOSPC (socket server), degraded metrics

class Client:
    def __init__(self, path, retries=10, backoff=0.05):
        delay = backoff
        for attempt in range(retries):
            self.sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            try:
                self.sock.connect(path)
                break
            except OSError:
                self.sock.close()
                if attempt == retries - 1:
                    raise
                time.sleep(delay)
                delay = min(delay * 2, 1.0)
        self.f = self.sock.makefile("rw", encoding="utf-8", newline="\n")

    def call(self, **req):
        self.f.write(json.dumps(req) + "\n")
        self.f.flush()
        return json.loads(self.f.readline())

    def stream_result(self, job):
        self.f.write(json.dumps({"verb": "result", "job": job}) + "\n")
        self.f.flush()
        lines = []
        while True:
            line = json.loads(self.f.readline())
            lines.append(line)
            if "complete" in line or not line.get("ok"):
                return lines

    def close(self):
        self.f.close()
        self.sock.close()


def start_server(exp_serve, sock_path, cache_dir, io_faults=None):
    cmd = [exp_serve, "--socket", sock_path, "--cache-dir", cache_dir,
           "--workers", "1"]
    if io_faults:
        cmd += ["--io-faults", io_faults]
    proc = subprocess.Popen(cmd, stderr=subprocess.PIPE, text=True)
    for _ in range(200):
        if os.path.exists(sock_path):
            try:
                Client(sock_path).close()
                return proc
            except OSError:
                pass
        if proc.poll() is not None:
            raise SystemExit(
                f"exp_serve exited during startup: {proc.stderr.read()}")
        time.sleep(0.05)
    raise SystemExit(f"exp_serve never created {sock_path}")


ENOSPC_SWEEP = [
    "dftc central ring:32 trials=2",
    "dftc central ring:40 trials=2",
    "space central ring:32 trials=1",
]


def enospc_sigkill_resume(args, workdir, header, check):
    # Reference computed cacheless and uninterrupted.
    ref_file = os.path.join(workdir, "enospc.scenarios")
    with open(ref_file, "w") as f:
        f.write("\n".join(ENOSPC_SWEEP) + "\n")
    ref_csv = os.path.join(workdir, "enospc-ref.csv")
    r = run_cli(args.exp_cli, ref_file, workdir, csv=ref_csv)
    check.expect(r.returncode == 0, "enospc reference run failed")
    reference = read_csv(ref_csv)

    sock = os.path.join(workdir, "chaos.sock")
    cache_dir = os.path.join(workdir, "enospc-cache")
    # Every cache RECORD write hits ENOSPC; checkpoint appends (no .rec
    # in their paths) keep working — exactly a full data disk whose
    # metadata partition survives.
    server = start_server(args.exp_serve, sock, cache_dir,
                          io_faults="enospc@write:path=.rec")
    try:
        c = Client(sock)
        ack = c.call(verb="submit", scenarios=ENOSPC_SWEEP,
                     checkpoint="enospc")
        check.expect(ack.get("ok"), f"enospc submit failed: {ack}")
        # Wait for at least one unit (=> one failed store) so the
        # degraded gauge is observably set before we sample metrics.
        for _ in range(200):
            st = c.call(verb="status", job=ack["job"])
            if st.get("done", 0) >= 1:
                break
            time.sleep(0.05)
        met = c.call(verb="metrics")
        exposition = parse_prometheus(met.get("metrics", ""))
        check.expect(exposition.get("serve_degraded") == 1,
                     "enospc: serve_degraded gauge not raised")
        check.expect(exposition.get("io_faults_injected_total", 0) > 0,
                     "enospc: no faults counted as injected")
        check.expect(exposition.get(
            "serve_cache_store_failures_total", 0) > 0,
            "enospc: store failures not counted")
        server.send_signal(signal.SIGKILL)
        server.wait()
        c.close()
        print("chaos_smoke: SIGKILLed server under injected ENOSPC")

        # Restart with a healthy "disk": resume must be byte-identical.
        server = start_server(args.exp_serve, sock, cache_dir)
        c = Client(sock)
        ack = c.call(verb="resume", checkpoint="enospc")
        check.expect(ack.get("ok") and ack.get("units") == len(ENOSPC_SWEEP),
                     f"enospc resume refused: {ack}")
        resumed = reassemble(c.stream_result(ack["job"]), header)
        check.expect(resumed == reference,
                     "enospc: resumed CSV differs from reference")
        c.call(verb="shutdown")
        c.close()
        server.wait(timeout=30)
    finally:
        if server.poll() is None:
            server.kill()
            server.wait()


def degraded_dir_startup(args, workdir, header, check):
    # The cache dir path is occupied by a FILE: create_directories can
    # never succeed, so startup must degrade to cacheless, not die.
    cache_dir = os.path.join(workdir, "not-a-dir")
    with open(cache_dir, "w") as f:
        f.write("occupied\n")
    sock = os.path.join(workdir, "degraded.sock")
    server = start_server(args.exp_serve, sock, cache_dir)
    try:
        c = Client(sock)
        stats = c.call(verb="stats")
        check.expect(stats.get("ok") and stats.get("cache") is False,
                     f"degraded: server still claims a cache: {stats}")
        met = c.call(verb="metrics")
        exposition = parse_prometheus(met.get("metrics", ""))
        check.expect(exposition.get("serve_degraded") == 1,
                     "degraded: serve_degraded gauge not set at startup")
        ack = c.call(verb="submit", scenarios=CKPT_SWEEP)
        check.expect(ack.get("ok"), f"degraded submit failed: {ack}")
        lines = c.stream_result(ack["job"])
        check.expect(all(l.get("ok") for l in lines),
                     "degraded: malformed response while cacheless")
        c.call(verb="shutdown")
        c.close()
        server.wait(timeout=30)
    finally:
        if server.poll() is None:
            server.kill()
            server.wait()


# --------------------------------------------------------------------------
# Phase 4: spill run-file sweep (exp_cli spill-probe)

def run_probe(args, workdir, io_faults=None, metrics=None):
    cmd = [args.exp_cli, "spill-probe", "--ids", "300", "--capacity", "100",
           "--dir", os.path.join(workdir, "spill")]
    if io_faults:
        cmd += ["--io-faults", io_faults]
    if metrics:
        cmd += ["--metrics", metrics]
    return subprocess.run(cmd, capture_output=True, text=True)


def spill_sweep(args, workdir, check):
    met = os.path.join(workdir, "spill.metrics")
    r = run_probe(args, workdir, metrics=met)
    check.expect(r.returncode == 0, f"clean spill probe failed: {r.stderr}")
    writes = int(read_metrics_file(met).get("io_write_total", 0))
    check.expect(writes > 0, "spill probe counted no writes")

    for n in range(1, writes + 1):
        site = f"crash@write:{n}"
        r = run_probe(args, workdir, io_faults=site)
        check.sites_swept += 1
        check.expect(r.returncode == CRASH_EXIT,
                     f"spill {site}: expected {CRASH_EXIT}, "
                     f"got {r.returncode}")
        # Restart invariant: a fresh probe over the same dir (with the
        # crashed run's orphan files still present) drains exactly.
        r = run_probe(args, workdir)
        if not check.expect(r.returncode == 0,
                            f"spill {site}: recovery probe exited "
                            f"{r.returncode}: {r.stderr}"):
            check.unclean_exits += 1

    # Non-crash faults: detected loss must be the NAMED error exit,
    # never the silent-mismatch exit (4).
    for spec in ["enospc@write:2", "torn@write:4", "eio@open:2"]:
        r = run_probe(args, workdir, io_faults=spec)
        check.sites_swept += 1
        check.expect(r.returncode == SPILL_NAMED_ERROR,
                     f"spill {spec}: expected named-error exit "
                     f"{SPILL_NAMED_ERROR}, got {r.returncode}")
    # EINTR is absorbed by the retry loops: exact drain.
    r = run_probe(args, workdir, io_faults="eintr:p=0.2; seed=11")
    check.sites_swept += 1
    check.expect(r.returncode == 0,
                 f"spill eintr: expected clean exit, got {r.returncode}")


# --------------------------------------------------------------------------

def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--exp-serve", required=True)
    ap.add_argument("--exp-cli", required=True)
    ap.add_argument("--scenarios", required=True)
    ap.add_argument("--workdir", default=None)
    ap.add_argument("--json", default=None, help="write BENCH row here")
    args = ap.parse_args()
    # Child runs use cwd=workdir, so every path argument must survive
    # the directory change.
    args.exp_serve = os.path.abspath(args.exp_serve)
    args.exp_cli = os.path.abspath(args.exp_cli)
    args.scenarios = os.path.abspath(args.scenarios)

    workdir = args.workdir or tempfile.mkdtemp(prefix="ssno-chaos-smoke-")
    os.makedirs(workdir, exist_ok=True)
    header = ("scenario,protocol,daemon,topology,nodes,edges,trials,"
              "failed_trials,fault_rate,metric,count,min,max,mean,stddev,"
              "p50,p95")
    check = Check()
    t0 = time.time()

    cache_sweep(args, workdir, check)
    print(f"chaos_smoke: cache sweep done ({check.sites_swept} sites)")
    ckpt_sweep(args, workdir, header, check)
    print(f"chaos_smoke: checkpoint sweep done ({check.sites_swept} sites)")
    spill_sweep(args, workdir, check)
    print(f"chaos_smoke: spill sweep done ({check.sites_swept} sites)")
    enospc_sigkill_resume(args, workdir, header, check)
    degraded_dir_startup(args, workdir, header, check)
    elapsed = time.time() - t0

    row = {
        "scenario": "chaos/smoke",
        "failed_trials": 0,
        "metrics": {
            "sites_swept": {"mean": float(check.sites_swept)},
            "unclean_exits": {"mean": float(check.unclean_exits)},
            "cache_identity": {"mean": float(check.flag("cache "))},
            "resume_identity": {"mean": float(check.flag("ckpt "))},
            "spill_ok": {"mean": float(check.flag("spill "))},
            "enospc_resume_identity": {"mean": float(check.flag("enospc"))},
            "degraded_ok": {"mean": float(check.flag("degraded"))},
            "chaos_seconds": {"mean": elapsed},  # trajectory only
        },
    }
    if args.json:
        with open(args.json, "w") as f:
            json.dump([row], f, indent=2)
            f.write("\n")
        print(f"wrote {args.json}")

    print(f"chaos_smoke: {check.sites_swept} fault sites swept, "
          f"{len(check.failures)} invariant failures, "
          f"{check.unclean_exits} unclean exits, {elapsed:.1f}s")
    print("chaos_smoke:", "PASSED" if not check.failures else "FAILED")
    return 0 if not check.failures else 1


if __name__ == "__main__":
    sys.exit(main())
