#!/usr/bin/env python3
"""Perf smoke check: compare a fresh scheduler-preset JSON against the
committed baseline (BENCH_scheduler.json).

Scheduler rows carry up to two gated ratios, both measured within the
same trial on the same machine and therefore hardware-independent:

  * ``speedup``          — incremental-cache (bitmask) steps/sec over a
    forced naive full-rescan (absent on large-n rows, where a naive
    trial would take minutes);
  * ``bitmask_speedup``  — bitmask EnabledView selection over the
    legacy materialized-move-vector pipeline (same incremental cache);
  * ``sync_speedup``     — (synchronous rows) the columnar
    simultaneous-step engine over the legacy per-node-vector
    snapshot/restore pipeline on dense LexDfsTree stepping, whose
    padded raw vectors are Theta(n) ints per actor — the engine's
    headline ratio;
  * ``dftno_sync_speedup`` — the same engine ratio on DFTNO's thin
    8-int state.  The "before" side runs the full pre-batch-kernel
    stack (scalar virtual guard evaluation + per-node-vector
    simultaneous pipeline), so this now measures the columnar
    evaluateGuards kernels and the batched doExecuteSimultaneous path
    together;
  * ``guard_batch_speedup`` — (guard-kernel rows) batch evaluateGuards
    kernels over the scalar per-node virtual enabled() loop on
    identical state, a paired within-trial median ratio;
  * ``guard_evals_per_sec`` — (guard-kernel rows) absolute batch-kernel
    guard evaluations per second, gated as a ratio to the committed
    baseline like the rest.

The gate set is DECLARATIVE per row: a row is gated on exactly the
RATIO_GATES fields its committed baseline row records (plus a loud
failure when the fresh run records a gate the baseline lacks — the fix
is to re-record the baseline), so kernel rows carry only their own
fields and never need dummy speedup entries.  An accidental
O(n)-per-step reintroduction on the simulator hot path collapses the
ratios toward 1x regardless of runner speed; each gated field fails
(exit 1) if the fresh value drops below --min-ratio (default 0.5, i.e.
a >2x regression) of the committed value.  Ungated absolutes are
printed for the trajectory.

``model-check/...`` rows also carry a ``speedup`` (parallel explorer
states/sec over the naive sequential checker), but that ratio scales
with the runner's CORE COUNT.  Rows now record the detected core count
(``cores``); the model-check speedup is gated ONLY when both the
baseline and the fresh run saw more than one core — a cores=1
measurement (speedup ~1x by construction) is printed for the
trajectory and skipped, so a single-core baseline cannot mask a real
thread-scaling regression once a multi-core runner re-records it.
What is always gated for model-check rows is ``verdicts_agree`` (the
parallel and sequential checkers must return the same verdict) and the
failed-trial count.

``serve/...`` rows (BENCH_serve.json, from tools/serve_smoke.py) are
gated on CORRECTNESS fields only — ``byte_identity``,
``resume_identity``, ``metrics_ok`` and ``concurrent_ok`` (N parallel
clients with interleaved cancels see only well-formed responses and
deduplicated computation) must be exactly 1 and ``cache_hits`` nonzero
in the fresh run; timing fields like ``smoke_seconds`` are
trajectory-only, so a slow runner can never fail the serve smoke.

``chaos/...`` rows (BENCH_chaos.json, from tools/chaos_smoke.py) are
the crash-point certification: every correctness flag
(``cache_identity``, ``resume_identity``, ``spill_ok``,
``enospc_resume_identity``, ``degraded_ok``) must be exactly 1,
``unclean_exits`` exactly 0, and ``sites_swept`` must not shrink below
the committed baseline (a smaller sweep means fault sites silently
lost coverage).  ``chaos_seconds`` is trajectory-only.

``resilience/...`` rows (BENCH_resilience.json, the adversarial
campaign preset) are likewise correctness-gated, hardware-independent:
``rerun_identity`` and ``replay_identity`` must be exactly 1 (same seed
reproduces the same schedule bit-for-bit; a recorded schedule replays
to the identical outcome), ``search_converged`` must be 1 (the
adversary may delay convergence, never defeat it within budget), and
``search_gain`` — searching-daemon moves over the random-daemon
average on the same instance — must stay at or above the ADVERSARY
FLOOR of 2x on rows where the committed baseline reached 2x (a
collapse toward 1x means the worst-case search degenerated into a
random walk).  Raw move counts ride along for the trajectory.

``obs/...`` rows (BENCH_obs.json, the telemetry-overhead preset) gate
the always-on telemetry budget: ``obs_overhead_pct`` — how much faster
the same ring:1e5 hot loop runs with telemetry disabled, in percent —
must stay below the OVERHEAD CEILING (--max-obs-overhead, default 2.0).
The on/off absolute rates ride along for the trajectory.

A malformed BENCH file — a row without "scenario"/"metrics", or a
committed baseline that lacks a gated field the fresh run records —
fails with a clear message naming the file and field instead of a
KeyError traceback; the fix for a stale baseline is to re-record it.

Usage: check_perf_regression.py BASELINE.json FRESH.json [--min-ratio R]
"""
import argparse
import json
import sys

# Per-row info metric: the first of these the fresh row records rides
# along in the gate printout (trajectory only, never gated).
INFO_FIELDS = ("incremental_moves_per_sec", "scalar_guard_evals_per_sec")
RATIO_GATES = ("speedup", "bitmask_speedup", "sync_speedup",
               "dftno_sync_speedup", "guard_batch_speedup",
               "guard_evals_per_sec")


def by_scenario(path):
    """{scenario name: row}, validating the shape every branch below
    relies on — a malformed file must die with the path and the problem,
    not a KeyError traceback deep inside a gate."""
    with open(path) as f:
        rows = json.load(f)
    if not isinstance(rows, list):
        raise SystemExit(f"{path}: expected a JSON array of scenario rows")
    out = {}
    for i, row in enumerate(rows):
        if not isinstance(row, dict) or "scenario" not in row:
            raise SystemExit(f"{path}: row {i} has no \"scenario\" field")
        if not isinstance(row.get("metrics"), dict):
            raise SystemExit(
                f"{path}: row \"{row['scenario']}\" has no \"metrics\" object")
        out[row["scenario"]] = row
    return out


def mean(row, metric):
    m = row["metrics"].get(metric)
    return None if m is None else m.get("mean")


def fmt(v, spec=".0f"):
    """Format a possibly-missing number without a TypeError."""
    return "missing" if v is None else format(v, spec)


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("baseline")
    ap.add_argument("fresh")
    ap.add_argument("--min-ratio", type=float, default=0.5)
    ap.add_argument("--max-obs-overhead", type=float, default=2.0,
                    help="ceiling for obs_overhead_pct on obs/ rows")
    args = ap.parse_args()

    baseline = by_scenario(args.baseline)
    fresh = by_scenario(args.fresh)
    failures = []
    for name, base_row in sorted(baseline.items()):
        if name not in fresh:
            failures.append(f"{name}: missing from fresh run")
            continue
        fresh_row = fresh[name]
        if fresh_row.get("failed_trials", 0):
            failures.append(f"{name}: {fresh_row['failed_trials']} failed trials")
        if name.startswith("serve/"):
            hits = mean(fresh_row, "cache_hits") or 0
            byte_id = mean(fresh_row, "byte_identity")
            resume_id = mean(fresh_row, "resume_identity")
            metrics_ok = mean(fresh_row, "metrics_ok")
            concurrent_ok = mean(fresh_row, "concurrent_ok")
            print(f"{name}: cache_hits {hits:.0f}  "
                  f"byte_identity {byte_id}  resume_identity {resume_id}  "
                  f"metrics_ok {metrics_ok}  concurrent_ok {concurrent_ok}  "
                  f"(correctness-gated; timing trajectory-only)")
            if hits < 1:
                failures.append(f"{name}: no cache hits in the smoke load")
            if byte_id != 1:
                failures.append(f"{name}: served bytes differ from exp_cli")
            if resume_id != 1:
                failures.append(
                    f"{name}: SIGKILL-resumed report differs from reference")
            if metrics_ok != 1:
                failures.append(
                    f"{name}: metrics verb exposition missing or inconsistent "
                    "with the stats verb")
            if concurrent_ok != 1:
                failures.append(
                    f"{name}: concurrent clients saw malformed responses or "
                    "non-deduplicated computation")
            continue
        if name.startswith("chaos/"):
            swept = mean(fresh_row, "sites_swept") or 0
            base_swept = mean(base_row, "sites_swept") or 0
            unclean = mean(fresh_row, "unclean_exits")
            flags = ("cache_identity", "resume_identity", "spill_ok",
                     "enospc_resume_identity", "degraded_ok")
            shown = "  ".join(f"{f} {mean(fresh_row, f)}" for f in flags)
            print(f"{name}: sites_swept {swept:.0f} (baseline "
                  f"{base_swept:.0f})  unclean_exits {fmt(unclean)}  {shown}  "
                  f"(correctness-gated; timing trajectory-only)")
            if swept < base_swept:
                failures.append(
                    f"{name}: sites_swept shrank {base_swept:.0f} -> "
                    f"{swept:.0f} — fault sites lost certification coverage")
            if unclean != 0:
                failures.append(
                    f"{name}: {fmt(unclean)} unclean exits during recovery "
                    "from injected faults")
            for f in flags:
                if mean(fresh_row, f) != 1:
                    failures.append(
                        f"{name}: {f} invariant violated under fault "
                        "injection")
            continue
        if name.startswith("obs/"):
            pct = mean(fresh_row, "obs_overhead_pct")
            on = mean(fresh_row, "telemetry_on_moves_per_sec")
            off = mean(fresh_row, "telemetry_off_moves_per_sec")
            print(f"{name}: telemetry on {fmt(on)} moves/s, "
                  f"off {fmt(off)} moves/s, overhead {fmt(pct, '.2f')}% "
                  f"(ceiling {args.max_obs_overhead}%)")
            if pct is None:
                failures.append(
                    f"{name}: obs_overhead_pct missing from fresh run")
            elif pct > args.max_obs_overhead:
                failures.append(
                    f"{name}: telemetry overhead {pct:.2f}% exceeds the "
                    f"{args.max_obs_overhead}% ceiling")
            continue
        if name.startswith("resilience/"):
            rerun = mean(fresh_row, "rerun_identity")
            replay = mean(fresh_row, "replay_identity")
            conv = mean(fresh_row, "search_converged")
            gain = mean(fresh_row, "search_gain") or 0.0
            base_gain = mean(base_row, "search_gain") or 0.0
            gate_gain = base_gain >= 2.0
            note = ("gain gated >= 2x" if gate_gain else
                    f"baseline gain x{base_gain:.2f} < 2, gain not gated")
            print(f"{name}: rerun_identity {rerun}  replay_identity {replay}  "
                  f"search_converged {conv}  search_gain x{gain:.2f} ({note})")
            if rerun != 1:
                failures.append(f"{name}: same-seed rerun not bit-identical")
            if replay != 1:
                failures.append(f"{name}: recorded schedule failed to replay")
            if conv != 1:
                failures.append(f"{name}: adversarial run did not converge")
            if gate_gain and gain < 2.0:
                failures.append(
                    f"{name}: search_gain x{gain:.2f} below the 2x floor")
            continue
        if name.startswith("model-check"):
            agree = fresh_row["metrics"].get("verdicts_agree", {}).get("mean", 0)
            rate = mean(fresh_row, "mc_states_per_sec")
            ratio = mean(fresh_row, "speedup")
            base_cores = base_row.get("cores", 0)
            fresh_cores = fresh_row.get("cores", 0)
            multi_core = base_cores > 1 and fresh_cores > 1
            note = ("gated" if multi_core else
                    f"cores={base_cores or '?'}->{fresh_cores or '?'}: "
                    "single-core, speedup not gated")
            print(f"{name}: verdicts_agree {agree:.0f}  "
                  f"mc_states_per_sec {fmt(rate)}  "
                  f"speedup x{fmt(ratio, '.2f')} ({note})")
            if agree < 1:
                failures.append(f"{name}: parallel/sequential verdicts disagree")
            if multi_core:
                base = mean(base_row, "speedup")
                if ratio is None:
                    failures.append(f"{name}: speedup missing from fresh run")
                elif base is None:
                    failures.append(
                        f"{name}: committed baseline lacks \"speedup\", which "
                        "the fresh run records — re-record the baseline")
                else:
                    r = ratio / base if base else float("inf")
                    if r < args.min_ratio:
                        failures.append(
                            f"{name}: model-check speedup regressed to x{r:.2f}")
            continue
        info = next((f for f in INFO_FIELDS
                     if mean(fresh_row, f) is not None), INFO_FIELDS[0])
        for gate in RATIO_GATES:
            base = mean(base_row, gate)
            new = mean(fresh_row, gate)
            if base is None and new is None:
                continue  # gate not declared by this row
            if base is None:
                # The fresh build records a gate the committed baseline
                # never saw: a silent skip here would leave the new gate
                # permanently ungated.  Fail loudly instead.
                failures.append(
                    f"{name}: committed baseline lacks \"{gate}\", which the "
                    "fresh run records — re-record the baseline")
                continue
            if new is None:
                failures.append(f"{name}: {gate} missing from fresh run")
                continue
            ratio = new / base if base > 0 else float("inf")
            status = "OK" if ratio >= args.min_ratio else "REGRESSION"
            print(f"{name}: {gate} {fmt(base, '.4g')} -> {fmt(new, '.4g')} "
                  f"(x{ratio:.2f} of baseline, floor x{args.min_ratio})  "
                  f"{status};  {info} {fmt(mean(fresh_row, info))}")
            if ratio < args.min_ratio:
                failures.append(f"{name}: {gate} regressed to x{ratio:.2f}")
    if failures:
        print("\nperf smoke FAILED:", file=sys.stderr)
        for f in failures:
            print(f"  - {f}", file=sys.stderr)
        return 1
    print("\nperf smoke passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
