#!/usr/bin/env python3
"""Perf smoke check: compare a fresh scheduler-preset JSON against the
committed baseline (BENCH_scheduler.json).

The gated metric is `speedup` — incremental-cache steps/sec divided by
forced-naive-rescan steps/sec, both measured within the same trial on
the same machine — so the check is hardware-independent: an accidental
O(n^2) reintroduction on the simulator hot path collapses the speedup
toward 1x regardless of runner speed.  Fails (exit 1) if any scenario's
speedup dropped below --min-ratio (default 0.5, i.e. a >2x regression)
of the committed value.  Absolute steps/sec are printed for the
trajectory but not gated.

Exception: `model-check/...` scenarios also carry a `speedup` metric
(parallel explorer states/sec over the naive sequential checker), but
that ratio scales with the runner's CORE COUNT, so it is printed for
the trajectory and NOT gated; what IS gated for those rows is
`verdicts_agree` (the parallel and sequential checkers must return the
same verdict) and the failed-trial count.

Usage: check_perf_regression.py BASELINE.json FRESH.json [--min-ratio R]
"""
import argparse
import json
import sys

GATED = "speedup"
INFO = "incremental_moves_per_sec"


def by_scenario(path):
    with open(path) as f:
        return {row["scenario"]: row for row in json.load(f)}


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("baseline")
    ap.add_argument("fresh")
    ap.add_argument("--min-ratio", type=float, default=0.5)
    args = ap.parse_args()

    baseline = by_scenario(args.baseline)
    fresh = by_scenario(args.fresh)
    failures = []
    for name, base_row in sorted(baseline.items()):
        if name not in fresh:
            failures.append(f"{name}: missing from fresh run")
            continue
        fresh_row = fresh[name]
        if fresh_row.get("failed_trials", 0):
            failures.append(f"{name}: {fresh_row['failed_trials']} failed trials")
        if name.startswith("model-check"):
            agree = fresh_row["metrics"].get("verdicts_agree", {}).get("mean", 0)
            rate = fresh_row["metrics"]["mc_states_per_sec"]["mean"]
            ratio = fresh_row["metrics"][GATED]["mean"]
            print(f"{name}: verdicts_agree {agree:.0f}  "
                  f"mc_states_per_sec {rate:.0f}  speedup x{ratio:.2f} "
                  f"(core-count dependent, not gated)")
            if agree < 1:
                failures.append(f"{name}: parallel/sequential verdicts disagree")
            continue
        base = base_row["metrics"][GATED]["mean"]
        new = fresh_row["metrics"][GATED]["mean"]
        ratio = new / base if base > 0 else float("inf")
        status = "OK" if ratio >= args.min_ratio else "REGRESSION"
        print(f"{name}: {GATED} {base:.1f}x -> {new:.1f}x "
              f"(x{ratio:.2f} of baseline, floor x{args.min_ratio})  {status};"
              f"  {INFO} {fresh_row['metrics'][INFO]['mean']:.0f}")
        if ratio < args.min_ratio:
            failures.append(f"{name}: {GATED} regressed to x{ratio:.2f}")
    if failures:
        print("\nperf smoke FAILED:", file=sys.stderr)
        for f in failures:
            print(f"  - {f}", file=sys.stderr)
        return 1
    print("\nperf smoke passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
