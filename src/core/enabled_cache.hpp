// EnabledCache — incremental maintenance of the enabled-move set.
//
// Protocol::enabledMoves() rescans all n processors × all actions; the
// simulator needs the enabled set twice per step, so a run of m moves
// costs O(m·n·Δ·actions) guard evaluations even though a guarded-command
// move at p can only change the guards of p ∪ N(p).  This cache consumes
// the Protocol's dirty set instead: refresh() re-evaluates only dirty
// processors' guards and patches the cached set, dropping the steady-state
// per-step cost to O(Δ²·actions) guard evaluations, and reuses its buffers
// so steady-state refreshes perform no heap allocations.
//
// The cached move list is bit-identical to Protocol::enabledMoves()
// (node-major, ascending action) — asserted against the naive scan after
// every refresh in debug builds — so daemon RNG draws, traces, and all
// results are unchanged.  setForceNaive(true) bypasses the incremental
// path entirely (used by the equivalence test suite and the scheduler
// bench's before/after measurement).
//
// Exactly one EnabledCache may drain a Protocol at a time (draining
// clears the dirty set); the Simulator owns one per run.
#ifndef SSNO_CORE_ENABLED_CACHE_HPP
#define SSNO_CORE_ENABLED_CACHE_HPP

#include <cstdint>
#include <vector>

#include "core/protocol.hpp"
#include "core/types.hpp"

namespace ssno {

class EnabledCache {
 public:
  explicit EnabledCache(Protocol& protocol);

  /// Brings the cache up to date with the protocol's dirty set and
  /// returns the enabled moves (valid until the next refresh/mutation).
  [[nodiscard]] const std::vector<Move>& refresh();

  /// Replaces the incremental path with a full naive rescan per refresh
  /// (for equivalence testing and before/after benchmarking).
  void setForceNaive(bool force) { force_naive_ = force; }

 private:
  void rebuildAll();
  void updateNode(NodeId p);
  [[nodiscard]] std::uint64_t guardMask(NodeId p) const;

  Protocol& protocol_;
  int actions_;
  std::vector<std::uint64_t> mask_;   // enabled-action bitmask per node
  std::vector<NodeId> enabledNodes_;  // ascending nodes with mask != 0
  std::vector<Move> moves_;           // node-major, ascending action
  bool movesStale_ = true;
  bool primed_ = false;  // first refresh always rescans everything
  bool force_naive_ = false;
};

}  // namespace ssno

#endif  // SSNO_CORE_ENABLED_CACHE_HPP
