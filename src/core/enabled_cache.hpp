// EnabledCache — incremental maintenance of the enabled-move set.
//
// Protocol::enabledMoves() rescans all n processors × all actions; the
// simulator needs the enabled set twice per step, so a run of m moves
// costs O(m·n·Δ·actions) guard evaluations even though a guarded-command
// move at p can only change the guards of p ∪ N(p).  This cache consumes
// the Protocol's dirty set instead: a refresh re-evaluates only dirty
// processors' guards and patches the cached set, dropping the
// steady-state per-step cost to O(Δ²·actions) guard evaluations, and
// reuses its buffers so steady-state refreshes perform no allocations.
//
// The cache's native representation is bitmask SoA: one action mask per
// node, a WordBitset of enabled nodes, popcount-maintained move/node
// totals, and a Fenwick tree of per-node move counts.  refreshView()
// exposes it as an EnabledView — the hot path; daemons select directly
// on the masks and nothing proportional to #enabled is materialized.
// refresh() additionally builds the legacy node-major Move vector
// (bit-identical to Protocol::enabledMoves(); asserted against the
// naive scan after every refresh in debug builds) for the shim path,
// tests, and before/after benchmarks.  setForceNaive(true) replaces the
// incremental update with a full rescan per refresh.
//
// Exactly one EnabledCache may drain a Protocol at a time (draining
// clears the dirty set); the Simulator owns one per run.
#ifndef SSNO_CORE_ENABLED_CACHE_HPP
#define SSNO_CORE_ENABLED_CACHE_HPP

#include <cstdint>
#include <span>
#include <vector>

#include "core/bitwords.hpp"
#include "core/enabled_view.hpp"
#include "core/protocol.hpp"
#include "core/types.hpp"

namespace ssno {

class EnabledCache {
 public:
  explicit EnabledCache(Protocol& protocol);

  /// Brings the bitmask representation up to date with the protocol's
  /// dirty set and returns a view of it (valid until the next
  /// refresh/mutation).  The hot path: no move vector is built.
  [[nodiscard]] const EnabledView& refreshView();

  /// Same, plus the materialized legacy move list (valid until the next
  /// refresh/mutation).
  [[nodiscard]] const std::vector<Move>& refresh();

  /// View of the representation as of the last refresh (no update).
  [[nodiscard]] const EnabledView& view() const { return view_; }

  /// Replaces the incremental path with a full naive rescan per refresh
  /// (for equivalence testing and before/after benchmarking).  The
  /// bitmask view stays valid — it is rebuilt from the scan.
  void setForceNaive(bool force) { force_naive_ = force; }

  /// Forces guard evaluation through the scalar virtual enabled() loop
  /// instead of the protocol's batch evaluateGuards kernel (the pre-
  /// batch-kernel behavior; equivalence testing, before/after benches).
  void setScalarGuardEval(bool scalar) { scalar_guard_eval_ = scalar; }

  /// ---- Enabled-status change feed (single consumer) -----------------
  /// When enabled, refreshes record every node whose ANY-action-enabled
  /// status flipped, letting a consumer (the Simulator's round
  /// accounting) react to O(#changed) nodes instead of rescanning its
  /// whole working set per step.  A full rebuild (whole-configuration
  /// write, naive mode) is reported via fullInvalidate instead of
  /// per-node entries.  Off by default so checker-style consumers that
  /// never drain the feed pay nothing.
  void setTrackStatusChanges(bool on) {
    track_changes_ = on;
    changed_.clear();
    full_invalidate_ = true;  // force the consumer to resynchronize
  }
  /// Nodes whose status flipped since the last clearStatusChanges()
  /// (may contain duplicates; meaningless after a full invalidate).
  [[nodiscard]] const std::vector<NodeId>& statusChanges() const {
    return changed_;
  }
  /// True if any refresh since the last consume rebuilt everything.
  [[nodiscard]] bool consumeFullInvalidate() {
    const bool was = full_invalidate_;
    full_invalidate_ = false;
    return was;
  }
  void clearStatusChanges() { changed_.clear(); }

  /// Publishes locally accumulated guard/refresh telemetry to the obs
  /// registry.  Refresh counts are batched in plain members (a relaxed
  /// atomic per working refresh is measurable at 3M moves/s) and flushed
  /// every ~1K refreshes, at destruction, and whenever the owner calls
  /// this — so live introspection lags by at most the batch window.
  void flushStats();

  ~EnabledCache() { flushStats(); }

 private:
  void rebuildAll();
  void applyMask(NodeId p, std::uint64_t mask);
  void evaluateBatch(std::span<const NodeId> nodes, std::uint64_t* masks);
  void rebuildFenwick();
  void fenwickAdd(NodeId p, int delta);
  void makeView();
  [[nodiscard]] std::uint64_t guardMask(NodeId p) const;

  Protocol& protocol_;
  int n_;
  int actions_;
  std::vector<std::uint64_t> mask_;  // enabled-action bitmask per node
  bits::WordBitset nodeBits_;        // bit p set iff mask_[p] != 0
  std::vector<std::int32_t> fen_;    // Fenwick over per-node move counts
  int fenTop_ = 0;                   // largest power of two <= n
  int moveCount_ = 0;
  int nodeCount_ = 0;
  EnabledView view_;
  std::vector<Move> moves_;  // legacy materialization (refresh() only)
  bool movesStale_ = true;
  bool primed_ = false;  // first refresh always rescans everything
  bool force_naive_ = false;
  bool scalar_guard_eval_ = false;  // bypass batch kernels (old path)
  bool deferFenwick_ = false;  // dense refresh: one O(n) rebuild instead
  bool track_changes_ = false;
  bool full_invalidate_ = true;
  std::vector<NodeId> changed_;  // status flips since last clear

  // Reused batch-evaluation buffers (no allocations in steady state).
  std::vector<NodeId> batch_;            // sorted dirty nodes per refresh
  std::vector<std::uint64_t> batchMasks_;
  std::vector<NodeId> allNodes_;         // identity list for rebuildAll

  // Telemetry accumulators (flushed to obs counters by flushStats()).
  std::uint64_t statRefreshes_ = 0;
  std::uint64_t statRebuilds_ = 0;
  std::uint64_t statEvals_ = 0;
};

}  // namespace ssno

#endif  // SSNO_CORE_ENABLED_CACHE_HPP
