// EnabledView — the bitmask-native window onto the enabled-move set.
//
// PR 2/3 made guard evaluation incremental; at n >= 1e5 the per-step
// cost was then dominated by re-materializing the O(#enabled) node-major
// Move vector just to hand it to Daemon::selectInto.  The EnabledCache
// already *maintains* the enabled relation as per-node action bitmasks;
// this view exposes that representation directly so daemons can select
// without any vector being built:
//
//   * word-level iteration — enabled nodes are a WordBitset, so runs of
//     disabled processors are skipped 64 at a time;
//   * popcount-based counts — moveCount()/enabledNodeCount() are O(1)
//     (maintained incrementally by the cache);
//   * O(1) membership — anyEnabled(p) / enabled(p, a) are bit tests;
//   * O(log n) uniform selection — kthMove() descends a Fenwick tree of
//     per-node move counts (the central daemon's draw);
//   * O(1)-amortized cyclic successor — nextPairAfter() serves the
//     round-robin daemon with mask arithmetic + word skips.
//
// Iteration order is exactly the node-major, ascending-action order of
// Protocol::enabledMoves(), so daemons that consume the view draw from
// the RNG in the same sequence as the legacy vector path (pinned by
// tests/daemon_test.cpp and the Simulator's debug cross-check).
//
// A view is a non-owning snapshot of its EnabledCache: valid until the
// next refresh or protocol mutation, like the legacy move vector.
#ifndef SSNO_CORE_ENABLED_VIEW_HPP
#define SSNO_CORE_ENABLED_VIEW_HPP

#include <cstdint>
#include <span>
#include <type_traits>
#include <utility>
#include <vector>

#include "core/bitwords.hpp"
#include "core/protocol.hpp"
#include "core/types.hpp"

namespace ssno {

class EnabledView {
 public:
  EnabledView() = default;

  [[nodiscard]] int actionCount() const { return actions_; }
  [[nodiscard]] int nodeCountTotal() const { return n_; }

  /// Total enabled (processor, action) pairs — O(1).
  [[nodiscard]] int moveCount() const { return moveCount_; }
  /// Processors with at least one enabled action — O(1).
  [[nodiscard]] int enabledNodeCount() const { return nodeCount_; }
  [[nodiscard]] bool empty() const { return moveCount_ == 0; }

  /// Enabled-action bitmask of p (bit a set iff action a enabled).
  [[nodiscard]] std::uint64_t actionMask(NodeId p) const {
    return masks_[static_cast<std::size_t>(p)];
  }
  [[nodiscard]] bool anyEnabled(NodeId p) const {
    return masks_[static_cast<std::size_t>(p)] != 0;
  }
  [[nodiscard]] bool enabled(NodeId p, int action) const {
    return (masks_[static_cast<std::size_t>(p)] >> action) & 1;
  }

  /// First enabled node, or kNoNode.  Word-skip scan.
  [[nodiscard]] NodeId firstNode() const { return scanFrom(0); }
  /// First enabled node strictly after p, or kNoNode.
  [[nodiscard]] NodeId nextNode(NodeId p) const { return scanFrom(p + 1); }

  /// Lexicographically first enabled move.  Precondition: !empty().
  [[nodiscard]] Move firstMove() const {
    const NodeId p = firstNode();
    SSNO_ASSERT(p != kNoNode);
    return Move{p, bits::lowestBit(actionMask(p))};
  }

  /// The k-th enabled move in node-major order, k in [0, moveCount()).
  /// O(log n) via the cache's Fenwick tree of per-node move counts.
  [[nodiscard]] Move kthMove(int k) const {
    SSNO_EXPECTS(k >= 0 && k < moveCount_);
    // Find the smallest node whose prefix move count exceeds k.
    int rem = k + 1;
    int pos = 0;  // 1-based Fenwick position
    for (int bit = fenTop_; bit != 0; bit >>= 1) {
      const int next = pos + bit;
      if (next <= n_ && fen_[static_cast<std::size_t>(next)] < rem) {
        pos = next;
        rem -= fen_[static_cast<std::size_t>(next)];
      }
    }
    const NodeId p = pos;  // 0-based node index == count of nodes before it
    SSNO_ASSERT(p < n_ && actionMask(p) != 0);
    return Move{p, bits::selectBit(actionMask(p), rem - 1)};
  }

  /// The enabled pair that follows `last` in cyclic lexicographic order
  /// (the round-robin daemon's draw): first the same node's higher
  /// actions, then the next enabled node's lowest action, wrapping to
  /// firstMove().  `last` need not be enabled or even a valid pair (the
  /// round-robin sentinel precedes every real pair).
  /// Precondition: !empty().
  [[nodiscard]] Move nextPairAfter(const Move& last) const {
    if (last.node >= 0 && last.node < n_ && last.action >= 0 &&
        last.action < bits::kWordBits) {
      const std::uint64_t higher =
          actionMask(last.node) & bits::bitsAbove(last.action);
      if (higher != 0) return Move{last.node, bits::lowestBit(higher)};
    }
    const NodeId p = last.node < 0 ? firstNode() : nextNode(last.node);
    if (p != kNoNode) return Move{p, bits::lowestBit(actionMask(p))};
    return firstMove();  // wrap-around
  }

  /// Visits enabled nodes in ascending order.
  template <class Fn>
  void forEachNode(Fn&& fn) const {
    for (std::size_t wi = 0; wi < words_; ++wi) {
      std::uint64_t w = nodeWords_[wi];
      while (w != 0) {
        const int b = bits::lowestBit(w);
        w &= w - 1;
        fn(static_cast<NodeId>(wi * bits::kWordBits +
                               static_cast<std::size_t>(b)));
      }
    }
  }

  /// Visits enabled moves in node-major, ascending-action order — the
  /// exact order of Protocol::enabledMoves().
  template <class Fn>
  void forEachMove(Fn&& fn) const {
    forEachNode([&](NodeId p) {
      std::uint64_t mask = actionMask(p);
      while (mask != 0) {
        fn(Move{p, bits::lowestBit(mask)});
        mask &= mask - 1;
      }
    });
  }

  /// Materializes the legacy node-major move vector (shim/debug path).
  void appendMoves(std::vector<Move>& out) const {
    forEachMove([&out](const Move& m) { out.push_back(m); });
  }

  /// Snapshots (node, mask) pairs for enabled nodes — the compact
  /// expansion buffer the model checkers iterate while mutating the
  /// protocol (at most one entry per enabled node instead of one Move
  /// per enabled action).  Iterate a snapshot with the free
  /// forEachMove(const NodeMasks&, fn) below.
  void appendNodeMasks(
      std::vector<std::pair<NodeId, std::uint64_t>>& out) const {
    forEachNode([&](NodeId p) { out.emplace_back(p, actionMask(p)); });
  }

 private:
  friend class EnabledCache;
  EnabledView(int n, int actions, const std::uint64_t* masks,
              const std::uint64_t* nodeWords, std::size_t words,
              const std::int32_t* fen, int fenTop, int moveCount,
              int nodeCount)
      : n_(n),
        actions_(actions),
        masks_(masks),
        nodeWords_(nodeWords),
        words_(words),
        fen_(fen),
        fenTop_(fenTop),
        moveCount_(moveCount),
        nodeCount_(nodeCount) {}

  [[nodiscard]] NodeId scanFrom(NodeId from) const {
    const long hit =
        bits::findFrom(nodeWords_, static_cast<std::size_t>(n_),
                       static_cast<std::size_t>(from < 0 ? 0 : from));
    return hit < 0 ? kNoNode : static_cast<NodeId>(hit);
  }

  int n_ = 0;
  int actions_ = 0;
  const std::uint64_t* masks_ = nullptr;      // per-node action masks
  const std::uint64_t* nodeWords_ = nullptr;  // enabled-node bitset words
  std::size_t words_ = 0;
  const std::int32_t* fen_ = nullptr;  // Fenwick tree of per-node counts
  int fenTop_ = 0;                     // largest power of two <= n
  int moveCount_ = 0;
  int nodeCount_ = 0;
};

/// A stable (node, action-mask) snapshot of an EnabledView, as produced
/// by appendNodeMasks — the expansion buffer both model checkers copy
/// before mutating the protocol invalidates the live view.
using NodeMasks = std::vector<std::pair<NodeId, std::uint64_t>>;

/// Visits a snapshot's moves in node-major, ascending-action order
/// (the Protocol::enabledMoves() order).
template <class Fn>
void forEachMove(const NodeMasks& snapshot, Fn&& fn) {
  for (const auto& [p, mask] : snapshot) {
    std::uint64_t m = mask;
    while (m != 0) {
      fn(Move{p, bits::lowestBit(m)});
      m &= m - 1;
    }
  }
}

/// Enumerates every synchronous-daemon selection of `snapshot`: each
/// enabled processor acts, choosing one of its enabled actions — the
/// cartesian product of per-node choices, visited in lexicographic
/// order (the last node's action varies fastest).  `fn` receives each
/// selection as a node-ascending span valid for the duration of the
/// call; a bool-returning `fn` stops the enumeration by returning
/// false (the checkers' closure early-exit).  `scratch` is the reused
/// backing buffer.  This is the checkers' synchronous-successor
/// move-set enumeration; at model-checking scale the product is small
/// (most processors have at most one enabled action).  No calls for an
/// empty snapshot.
template <class Fn>
void forEachSimultaneousSelection(const NodeMasks& snapshot,
                                  std::vector<Move>& scratch, Fn&& fn) {
  if (snapshot.empty()) return;
  scratch.clear();
  for (const auto& [p, mask] : snapshot)
    scratch.push_back(Move{p, bits::lowestBit(mask)});
  auto visit = [&]() -> bool {
    if constexpr (std::is_void_v<std::invoke_result_t<
                      Fn&, std::span<const Move>>>) {
      fn(std::span<const Move>(scratch));
      return true;
    } else {
      return fn(std::span<const Move>(scratch));
    }
  };
  while (true) {
    if (!visit()) return;
    // Odometer advance: bump the last node that still has a higher
    // enabled action, resetting everything after it.
    std::size_t i = snapshot.size();
    bool advanced = false;
    while (i > 0) {
      --i;
      const std::uint64_t mask = snapshot[i].second;
      const std::uint64_t higher =
          mask & bits::bitsAbove(scratch[i].action);
      if (higher != 0) {
        scratch[i].action = bits::lowestBit(higher);
        advanced = true;
        break;
      }
      scratch[i].action = bits::lowestBit(mask);
    }
    if (!advanced) return;
  }
}

}  // namespace ssno

#endif  // SSNO_CORE_ENABLED_VIEW_HPP
