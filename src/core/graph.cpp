#include "core/graph.hpp"

#include <algorithm>
#include <numeric>
#include <set>
#include <stdexcept>

#include "core/assert.hpp"

namespace ssno {

Graph::Graph(int n, const std::vector<std::pair<NodeId, NodeId>>& edges,
             NodeId root)
    : root_(root) {
  if (n <= 0) throw std::invalid_argument("Graph: need at least one node");
  if (root < 0 || root >= n) throw std::invalid_argument("Graph: bad root");
  // Two passes over the edge list: degrees first, then CSR fill.  Port
  // numbering at each endpoint is edge-list insertion order, exactly as
  // the nested-vector representation produced.
  std::vector<int> degree(static_cast<std::size_t>(n), 0);
  std::set<std::pair<NodeId, NodeId>> seen;
  for (const auto& [u, v] : edges) {
    if (u < 0 || u >= n || v < 0 || v >= n)
      throw std::invalid_argument("Graph: edge endpoint out of range");
    if (u == v) throw std::invalid_argument("Graph: self-loop");
    const auto key = std::minmax(u, v);
    if (!seen.insert({key.first, key.second}).second)
      throw std::invalid_argument("Graph: duplicate edge");
    ++degree[static_cast<std::size_t>(u)];
    ++degree[static_cast<std::size_t>(v)];
    ++edge_count_;
  }
  offsets_.assign(static_cast<std::size_t>(n) + 1, 0);
  for (int p = 0; p < n; ++p) {
    offsets_[static_cast<std::size_t>(p) + 1] =
        offsets_[static_cast<std::size_t>(p)] +
        static_cast<std::size_t>(degree[static_cast<std::size_t>(p)]);
    max_degree_ = std::max(max_degree_, degree[static_cast<std::size_t>(p)]);
  }
  nbrs_.resize(offsets_.back());
  ports_.reserve(nbrs_.size());
  std::vector<std::size_t> fill(offsets_.begin(), offsets_.end() - 1);
  auto addDirected = [this, &fill](NodeId u, NodeId v) {
    const Port port = static_cast<Port>(
        fill[static_cast<std::size_t>(u)] - offsets_[static_cast<std::size_t>(u)]);
    nbrs_[fill[static_cast<std::size_t>(u)]++] = v;
    ports_.emplace(edgeKey(u, v), port);
  };
  for (const auto& [u, v] : edges) {
    addDirected(u, v);
    addDirected(v, u);
  }
}

bool Graph::isConnected() const {
  std::vector<bool> seen(static_cast<std::size_t>(nodeCount()), false);
  std::vector<NodeId> stack{root_};
  seen[static_cast<std::size_t>(root_)] = true;
  int visited = 0;
  while (!stack.empty()) {
    const NodeId p = stack.back();
    stack.pop_back();
    ++visited;
    for (NodeId q : neighbors(p)) {
      if (!seen[static_cast<std::size_t>(q)]) {
        seen[static_cast<std::size_t>(q)] = true;
        stack.push_back(q);
      }
    }
  }
  return visited == nodeCount();
}

Graph Graph::ring(int n) {
  SSNO_EXPECTS(n >= 3);
  std::vector<std::pair<NodeId, NodeId>> e;
  e.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) e.emplace_back(i, (i + 1) % n);
  return Graph(n, e);
}

Graph Graph::path(int n) {
  SSNO_EXPECTS(n >= 1);
  std::vector<std::pair<NodeId, NodeId>> e;
  for (int i = 0; i + 1 < n; ++i) e.emplace_back(i, i + 1);
  return Graph(n, e);
}

Graph Graph::star(int n) {
  SSNO_EXPECTS(n >= 2);
  std::vector<std::pair<NodeId, NodeId>> e;
  for (int i = 1; i < n; ++i) e.emplace_back(0, i);
  return Graph(n, e);
}

Graph Graph::complete(int n) {
  SSNO_EXPECTS(n >= 2);
  std::vector<std::pair<NodeId, NodeId>> e;
  for (int i = 0; i < n; ++i)
    for (int j = i + 1; j < n; ++j) e.emplace_back(i, j);
  return Graph(n, e);
}

Graph Graph::grid(int rows, int cols) {
  SSNO_EXPECTS(rows >= 1 && cols >= 1 && rows * cols >= 2);
  auto id = [cols](int r, int c) { return r * cols + c; };
  std::vector<std::pair<NodeId, NodeId>> e;
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      if (c + 1 < cols) e.emplace_back(id(r, c), id(r, c + 1));
      if (r + 1 < rows) e.emplace_back(id(r, c), id(r + 1, c));
    }
  }
  return Graph(rows * cols, e);
}

Graph Graph::torus(int rows, int cols) {
  SSNO_EXPECTS(rows >= 3 && cols >= 3);
  auto id = [cols](int r, int c) { return r * cols + c; };
  std::vector<std::pair<NodeId, NodeId>> e;
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      e.emplace_back(id(r, c), id(r, (c + 1) % cols));
      e.emplace_back(id(r, c), id((r + 1) % rows, c));
    }
  }
  return Graph(rows * cols, e);
}

Graph Graph::hypercube(int dim) {
  SSNO_EXPECTS(dim >= 1 && dim <= 20);
  const int n = 1 << dim;
  std::vector<std::pair<NodeId, NodeId>> e;
  for (int u = 0; u < n; ++u)
    for (int b = 0; b < dim; ++b)
      if (const int v = u ^ (1 << b); u < v) e.emplace_back(u, v);
  return Graph(n, e);
}

Graph Graph::lollipop(int cliqueSize, int tailLen) {
  SSNO_EXPECTS(cliqueSize >= 2 && tailLen >= 1);
  std::vector<std::pair<NodeId, NodeId>> e;
  for (int i = 0; i < cliqueSize; ++i)
    for (int j = i + 1; j < cliqueSize; ++j) e.emplace_back(i, j);
  // Tail hangs off the last clique node.
  int prev = cliqueSize - 1;
  for (int t = 0; t < tailLen; ++t) {
    e.emplace_back(prev, cliqueSize + t);
    prev = cliqueSize + t;
  }
  return Graph(cliqueSize + tailLen, e);
}

Graph Graph::kAryTree(int n, int k) {
  SSNO_EXPECTS(n >= 1 && k >= 1);
  std::vector<std::pair<NodeId, NodeId>> e;
  for (int i = 1; i < n; ++i) e.emplace_back((i - 1) / k, i);
  return Graph(n, e);
}

Graph Graph::caterpillar(int spine, int legs) {
  SSNO_EXPECTS(spine >= 1 && legs >= 0);
  std::vector<std::pair<NodeId, NodeId>> e;
  for (int i = 0; i + 1 < spine; ++i) e.emplace_back(i, i + 1);
  int next = spine;
  for (int i = 0; i < spine; ++i)
    for (int l = 0; l < legs; ++l) e.emplace_back(i, next++);
  return Graph(spine + spine * legs, e);
}

Graph Graph::randomTree(int n, Rng& rng) {
  SSNO_EXPECTS(n >= 1);
  if (n == 1) return Graph(1, {});
  if (n == 2) return Graph(2, {{0, 1}});
  // Prüfer decoding yields a uniform random labelled tree.
  std::vector<int> pruefer(static_cast<std::size_t>(n - 2));
  for (auto& x : pruefer) x = rng.below(n);
  std::vector<int> deg(static_cast<std::size_t>(n), 1);
  for (int x : pruefer) ++deg[static_cast<std::size_t>(x)];
  std::set<int> leaves;
  for (int i = 0; i < n; ++i)
    if (deg[static_cast<std::size_t>(i)] == 1) leaves.insert(i);
  std::vector<std::pair<NodeId, NodeId>> e;
  for (int x : pruefer) {
    const int leaf = *leaves.begin();
    leaves.erase(leaves.begin());
    e.emplace_back(leaf, x);
    if (--deg[static_cast<std::size_t>(x)] == 1) leaves.insert(x);
  }
  SSNO_ASSERT(leaves.size() == 2);
  const int a = *leaves.begin();
  const int b = *std::next(leaves.begin());
  e.emplace_back(a, b);
  return Graph(n, e);
}

Graph Graph::randomConnected(int n, double extraEdgeProb, Rng& rng) {
  SSNO_EXPECTS(n >= 1);
  if (n == 1) return Graph(1, {});
  // Random recursive spanning tree for connectivity...
  std::set<std::pair<NodeId, NodeId>> edges;
  for (int i = 1; i < n; ++i) {
    const int j = rng.below(i);
    edges.insert(std::minmax(i, j));
  }
  // ...plus independent extra edges.
  for (int i = 0; i < n; ++i)
    for (int j = i + 1; j < n; ++j)
      if (rng.chance(extraEdgeProb)) edges.insert({i, j});
  std::vector<std::pair<NodeId, NodeId>> e(edges.begin(), edges.end());
  return Graph(n, e);
}

Graph Graph::figure311() {
  // r=0, a=1, b=2, c=3, d=4.  Port order at the root lists b before a so
  // that the deterministic DFS reproduces the visit order of Figure 3.1.1:
  // r(0), b(1), d(2), c(3), backtrack to r, a(4).
  return Graph(5, {{0, 2}, {0, 1}, {2, 4}, {4, 3}});
}

Graph Graph::figure221() {
  // A 5-node cycle with one chord, as in the chordal-sense-of-direction
  // illustration: edge labels are distances along the cyclic order 0..4.
  return Graph(5, {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}, {0, 2}});
}

}  // namespace ssno
