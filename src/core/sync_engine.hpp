// SimultaneousEngine — the columnar simultaneous-step executor.
//
// A simultaneous step (distributed / synchronous daemon) executes a set
// of moves, at most one per processor, under shared-memory semantics:
// every guard and statement right-hand side reads the configuration at
// the beginning of the step.  Since a statement writes only its own
// processor's variables, it suffices to snapshot the acting processors,
// roll already-executed actors inside each mover's closed neighborhood
// back to their pre-step values before it executes, and leave every
// actor at its post state when the step ends.
//
// PR 4 left this path per-node: each actor round-tripped through
// rawNode()/setRawNode() std::vector<int> copies (for DFTNO, two heap
// allocations per rawNode call), and every rollback fired an immediate
// dirty notification — a dense synchronous step at n = 1e5 allocated
// ~n small vectors and produced ~n·Δ redundant dirty events.  This
// engine rebuilds the path on three primitives:
//
//   * column-batched snapshot/restore — the acting set's pre-step state
//     is captured through StateArena::snapshotNodes (one tight loop per
//     registered column, no per-node vectors) for protocols that opt in
//     via Protocol::collectArenas; single-actor rollbacks restore one
//     scratch slice per column;
//   * a WordBitset actor set — neighborhood-rollback membership tests
//     are O(1) bit probes (moves arrive node-ascending, so "q acted
//     before p" is just q < p);
//   * the Protocol simultaneous-step bracket — dirty notifications are
//     deferred for the whole step and expanded once, deduplicated, over
//     actors ∪ N(actors), so the EnabledCache refresh that follows does
//     O(|dirty set|) work instead of absorbing per-rollback events.
//
// Post states are captured lazily: an actor's post state is saved (flat
// append, no per-node vector) only the first time a later-acting
// neighbor rolls it back, and re-applied at the end of the step —
// actors without later-acting neighbors are never copied at all.
//
// Protocols that implement Protocol::doExecuteSimultaneous skip the
// rollback machinery entirely: after the actor snapshot (kept so undo()
// works unchanged) the whole move set is handed to the protocol, which
// computes every outcome against the pre-step columns and commits them
// in a second phase — no neighborhood rollbacks, no post captures.
//
// Protocols whose guards read beyond N[p] (guardsAreNeighborhoodLocal()
// == false) take the full-configuration path instead.  Columnar
// protocols write-log the acting set: snapshot the actors once, and
// after each move capture the actor's post state and put its pre state
// back — the configuration is inductively pre-step before every
// execution — then re-apply the logged post states at the end (O(k·
// state) instead of snapshotting and restoring every column per move).
// Protocols without arenas use the reused raw-vector scratch.
//
// executeLegacy() preserves the PR 4 per-node-vector pipeline with
// immediate dirtying — the "before" side of the sync_speedup benchmark
// and the Simulator's setLegacySimultaneous knob; in Debug builds
// execute() cross-checks the columnar post-step configuration against
// it bit for bit.  undo() restores the pre-step configuration of the
// last step (with dirty notifications), which is what lets the model
// checkers expand synchronous successors in place.
#ifndef SSNO_CORE_SYNC_ENGINE_HPP
#define SSNO_CORE_SYNC_ENGINE_HPP

#include <span>
#include <vector>

#include "core/bitwords.hpp"
#include "core/protocol.hpp"
#include "core/state_arena.hpp"
#include "core/types.hpp"

namespace ssno {

class SimultaneousEngine {
 public:
  /// Collects the protocol's columnar arenas once; protocols that do
  /// not opt in run on the raw-vector paths.
  explicit SimultaneousEngine(Protocol& protocol);

  [[nodiscard]] bool columnar() const { return !arenas_.empty(); }

  /// Executes `moves` (node-ascending, at most one per processor, all
  /// enabled) as one simultaneous step.  Dispatches to the columnar
  /// fast path, the full-configuration path for non-neighborhood-local
  /// guards, or the raw-vector path for protocols without arenas.
  void execute(std::span<const Move> moves);

  /// The historical per-node-vector pipeline (immediate dirtying):
  /// results are bit-identical to execute(), costs are the PR 4 ones.
  void executeLegacy(std::span<const Move> moves);

  /// Restores the configuration from before the last execute*() call,
  /// with dirty notifications — the checkers' in-place successor
  /// rollback.  Valid once per step.
  void undo();

  /// When off, the batched fast path skips the actor pre-state snapshot
  /// it keeps only for undo() — the rollback and write-logging paths
  /// still capture, since they read pre_ for correctness.  undo() after
  /// an uncaptured step traps.  The Simulator turns this off for its
  /// internal engine (it never exposes undo); standalone engines — the
  /// model checkers' in-place successor expansion — keep the default.
  void setUndoCapture(bool on) { undoCapture_ = on; }

 private:
  enum class Mode { kNone, kColumnar, kLegacy, kLegacyFull };

  void executeColumnar(std::span<const Move> moves);
  void executeColumnarFull(std::span<const Move> moves);
  void executeLegacyNeighborhood(std::span<const Move> moves);
  void executeLegacyFull(std::span<const Move> moves);

  /// Appends `p`'s current (post) state to the flat capture buffers.
  void capturePost(NodeId p);
  /// Restores capture index `ci` into its node's columns.
  void restoreCapture(std::size_t ci);

  Protocol& protocol_;
  std::vector<StateArena*> arenas_;
  Mode last_ = Mode::kNone;
  bool undoCapture_ = true;

  // Columnar-path scratch (reused; no steady-state allocations).
  std::vector<NodeId> actors_;
  bits::WordBitset actorBits_;
  std::vector<std::int32_t> actorSlot_;  // node -> index in actors_, or -1
  std::vector<StateArena::Scratch> pre_;  // per arena, actors' pre state
  std::vector<std::vector<int>> postData_;    // per arena, flat captures
  std::vector<std::size_t> postOff_;          // capture ci, arena a ->
                                              // postData_[a] start offset
  std::vector<NodeId> captured_;              // capture order
  std::vector<std::uint8_t> capturedFlag_;    // per actor slot

  // Full-configuration raw-vector fallback scratch.
  std::vector<int> preConfig_;
  std::vector<int> postFlat_;   // raw-vector fallback post states

  // Legacy-path scratch (the historical buffers).
  std::vector<std::vector<int>> preVec_;
  std::vector<std::vector<int>> postVec_;
  std::vector<int> actingIndex_;  // node -> move index, or -1
  std::vector<Move> lastMoves_;   // for undo()
};

}  // namespace ssno

#endif  // SSNO_CORE_SYNC_ENGINE_HPP
