#include "core/graph_algo.hpp"

#include <algorithm>
#include <deque>
#include <sstream>

#include "core/assert.hpp"

namespace ssno {

std::vector<int> bfsDistances(const Graph& g, NodeId src) {
  std::vector<int> dist(static_cast<std::size_t>(g.nodeCount()), -1);
  std::deque<NodeId> q{src};
  dist[static_cast<std::size_t>(src)] = 0;
  while (!q.empty()) {
    const NodeId p = q.front();
    q.pop_front();
    for (NodeId nb : g.neighbors(p)) {
      if (dist[static_cast<std::size_t>(nb)] < 0) {
        dist[static_cast<std::size_t>(nb)] =
            dist[static_cast<std::size_t>(p)] + 1;
        q.push_back(nb);
      }
    }
  }
  return dist;
}

int eccentricity(const Graph& g, NodeId src) {
  const auto dist = bfsDistances(g, src);
  int ecc = 0;
  for (int d : dist) {
    SSNO_EXPECTS(d >= 0);
    ecc = std::max(ecc, d);
  }
  return ecc;
}

int diameter(const Graph& g) {
  int dia = 0;
  for (NodeId p = 0; p < g.nodeCount(); ++p)
    dia = std::max(dia, eccentricity(g, p));
  return dia;
}

std::vector<NodeId> shortestPath(const Graph& g, NodeId src, NodeId dst) {
  std::vector<NodeId> pred(static_cast<std::size_t>(g.nodeCount()), kNoNode);
  std::vector<bool> seen(static_cast<std::size_t>(g.nodeCount()), false);
  std::deque<NodeId> q{src};
  seen[static_cast<std::size_t>(src)] = true;
  while (!q.empty()) {
    const NodeId p = q.front();
    q.pop_front();
    if (p == dst) break;
    for (NodeId nb : g.neighbors(p)) {
      if (!seen[static_cast<std::size_t>(nb)]) {
        seen[static_cast<std::size_t>(nb)] = true;
        pred[static_cast<std::size_t>(nb)] = p;
        q.push_back(nb);
      }
    }
  }
  if (!seen[static_cast<std::size_t>(dst)]) return {};
  std::vector<NodeId> rev;
  for (NodeId cur = dst; cur != kNoNode; cur = pred[static_cast<std::size_t>(cur)])
    rev.push_back(cur);
  std::reverse(rev.begin(), rev.end());
  SSNO_ENSURES(rev.front() == src && rev.back() == dst);
  return rev;
}

bool isSpanningTree(const Graph& g, const std::vector<NodeId>& parent) {
  const int n = g.nodeCount();
  if (static_cast<int>(parent.size()) != n) return false;
  if (parent[static_cast<std::size_t>(g.root())] != kNoNode) return false;
  for (NodeId p = 0; p < n; ++p) {
    if (p == g.root()) continue;
    const NodeId par = parent[static_cast<std::size_t>(p)];
    if (par == kNoNode || !g.adjacent(p, par)) return false;
    // Walk to the root; more than n hops means a cycle.
    NodeId cur = p;
    for (int hops = 0; cur != g.root(); ++hops) {
      if (hops > n) return false;
      cur = parent[static_cast<std::size_t>(cur)];
      if (cur == kNoNode) return false;
    }
  }
  return true;
}

int treeHeight(const Graph& g, const std::vector<NodeId>& parent) {
  if (!isSpanningTree(g, parent)) return -1;
  int height = 0;
  for (NodeId p = 0; p < g.nodeCount(); ++p) {
    int depth = 0;
    for (NodeId cur = p; cur != g.root();
         cur = parent[static_cast<std::size_t>(cur)])
      ++depth;
    height = std::max(height, depth);
  }
  return height;
}

std::string toDot(const Graph& g, const std::vector<std::string>& nodeLabels) {
  std::ostringstream out;
  out << "graph S {\n";
  for (NodeId p = 0; p < g.nodeCount(); ++p) {
    out << "  n" << p;
    if (p == g.root()) {
      out << " [shape=doublecircle";
      if (static_cast<int>(nodeLabels.size()) > p)
        out << ",label=\"" << nodeLabels[static_cast<std::size_t>(p)] << "\"";
      out << "]";
    } else if (static_cast<int>(nodeLabels.size()) > p) {
      out << " [label=\"" << nodeLabels[static_cast<std::size_t>(p)] << "\"]";
    }
    out << ";\n";
  }
  for (NodeId p = 0; p < g.nodeCount(); ++p)
    for (NodeId q : g.neighbors(p))
      if (p < q) out << "  n" << p << " -- n" << q << ";\n";
  out << "}\n";
  return out.str();
}

}  // namespace ssno
