// StateArena — SoA storage for per-node protocol state.
//
// Every protocol keeps each of its variables as a *column*: one
// contiguous int array over all processors (node columns), over all
// CSR port slots (port columns, indexed by Graph::portBase(p) + l), or
// a variable-length row per processor in a shared paged pool (var
// columns).  Compared to per-object fields and vector<vector<int>>
// per-port tables, columns keep guard evaluation cache-friendly at
// n >= 1e5 (neighbor reads of one variable walk one array instead of
// hopping across per-node heap blocks) and give every protocol the
// same raw snapshot machinery for free.
//
// Usage pattern (see Dftc for the canonical example):
//
//   class MyProtocol : public Protocol {
//     StateArena arena_;
//     NodeColumn x_;   // one int per processor
//     PortColumn y_;   // one int per (processor, port)
//    public:
//     explicit MyProtocol(Graph g)
//         : Protocol(std::move(g)),
//           arena_(graph()),
//           x_(arena_.nodeColumn()),
//           y_(arena_.portColumn()) {}
//   };
//
// Registration order is the raw layout: StateArena::rawNode(p)
// concatenates, per column in registration order, one value (node
// column), degree(p) values (port column), or a length-prefixed row
// (var column) — exactly the layouts the protocols' hand-written
// rawNode() used to produce.  Protocols with extra invariants (e.g.
// the root's depth pinned to 0) normalize after StateArena::setRawNode.
// Note a var column makes rawLength(p) state-dependent; protocols using
// one either keep a fixed-width rawNode of their own (LexDfsTree) or
// accept the self-describing [len, entries...] raw form.
//
// Batched multi-node snapshot/restore (the simultaneous-step engine's
// fast path): snapshotNodes copies the listed processors' values into a
// flat per-column scratch — one tight loop per column over one backing
// array, no per-node vector<int> — and restoreNodes/restoreNode invert
// it.  The scratch's bounds table records each (column, node) slice, so
// single-node rollbacks during a simultaneous step are O(slice) copies.
//
// Dirtying rules are unchanged: columns are plain storage, so ALL
// writes must still go through the Protocol mutation hooks (doExecute /
// doSetRawNode / ...) or be followed by explicit dirty calls — the
// arena does not notify anyone.  In particular restoreNodes bypasses
// the hooks; drivers (core/sync_engine) dirty the restored region
// themselves.
#ifndef SSNO_CORE_STATE_ARENA_HPP
#define SSNO_CORE_STATE_ARENA_HPP

#include <algorithm>
#include <memory>
#include <span>
#include <vector>

#include "core/assert.hpp"
#include "core/graph.hpp"
#include "core/types.hpp"

namespace ssno {

/// One int per processor, contiguous over all processors.
class NodeColumn {
 public:
  NodeColumn() = default;
  [[nodiscard]] int& operator[](NodeId p) {
    return (*data_)[static_cast<std::size_t>(p)];
  }
  [[nodiscard]] const int& operator[](NodeId p) const {
    return (*data_)[static_cast<std::size_t>(p)];
  }
  void fill(int value) { std::fill(data_->begin(), data_->end(), value); }
  [[nodiscard]] const std::vector<int>& data() const { return *data_; }

 private:
  friend class StateArena;
  explicit NodeColumn(std::vector<int>* data) : data_(data) {}
  std::vector<int>* data_ = nullptr;
};

/// One int per (processor, port) slot, flat CSR layout.
class PortColumn {
 public:
  PortColumn() = default;
  [[nodiscard]] int& at(NodeId p, Port l) {
    return (*data_)[graph_->portBase(p) + static_cast<std::size_t>(l)];
  }
  [[nodiscard]] const int& at(NodeId p, Port l) const {
    return (*data_)[graph_->portBase(p) + static_cast<std::size_t>(l)];
  }
  [[nodiscard]] std::span<int> row(NodeId p) {
    return {data_->data() + graph_->portBase(p),
            static_cast<std::size_t>(graph_->degree(p))};
  }
  [[nodiscard]] std::span<const int> row(NodeId p) const {
    return {data_->data() + graph_->portBase(p),
            static_cast<std::size_t>(graph_->degree(p))};
  }
  void fill(int value) { std::fill(data_->begin(), data_->end(), value); }
  /// The whole flat column (the Orientation::label snapshot format).
  [[nodiscard]] const std::vector<int>& data() const { return *data_; }

 private:
  friend class StateArena;
  PortColumn(std::vector<int>* data, const Graph* graph)
      : data_(data), graph_(graph) {}
  std::vector<int>* data_ = nullptr;
  const Graph* graph_ = nullptr;
};

/// Variable-length int row per processor, stored in a shared paged pool
/// (offset/length/capacity per processor).  A row that outgrows its
/// slot relocates to a fresh power-of-two slot at the pool tail; the
/// pool compacts once dead space exceeds the live size, so memory stays
/// O(live) without per-node heap blocks.  This is how LexDfsTree's
/// path words finished their SoA conversion: guard evaluation reads
/// neighbor rows as spans of one shared array, allocation-free.
///
/// row() spans are invalidated by ANY setRow on the same column
/// (relocation/compaction may move the pool) — read-compare first,
/// write last, or copy out.
class VarColumn {
 public:
  VarColumn() = default;

  [[nodiscard]] std::span<const int> row(NodeId p) const {
    const Slot& s = (*slots_)[static_cast<std::size_t>(p)];
    return {pool_->data() + s.off, static_cast<std::size_t>(s.len)};
  }
  [[nodiscard]] int length(NodeId p) const {
    return (*slots_)[static_cast<std::size_t>(p)].len;
  }

  /// Replaces p's row.  Safe even when `values` aliases this column's
  /// own pool (e.g. a neighbor's row plus an extension).
  void setRow(NodeId p, std::span<const int> values) {
    Slot& s = (*slots_)[static_cast<std::size_t>(p)];
    if (static_cast<int>(values.size()) <= s.cap) {
      // In-place: relocation impossible, aliasing (even self) is fine
      // because copy regions are either identical or disjoint slots.
      std::copy(values.begin(), values.end(),
                pool_->begin() + static_cast<long>(s.off));
      s.len = static_cast<int>(values.size());
      return;
    }
    relocate(p, values);
  }

  [[nodiscard]] std::size_t poolSize() const { return pool_->size(); }

 private:
  friend class StateArena;
  struct Slot {
    std::size_t off = 0;
    int len = 0;
    int cap = 0;
  };
  struct Store {
    std::vector<int> pool;
    std::vector<Slot> slots;
    std::vector<int> scratch;   // aliasing guard for relocating writes
    std::size_t deadInts = 0;   // capacity abandoned by relocations
  };
  explicit VarColumn(Store* store)
      : pool_(&store->pool), slots_(&store->slots), store_(store) {}

  void relocate(NodeId p, std::span<const int> values) {
    Slot& s = (*slots_)[static_cast<std::size_t>(p)];
    // The pool may grow or compact below; stash aliasing sources first.
    std::vector<int>& scratch = store_->scratch;
    scratch.assign(values.begin(), values.end());
    store_->deadInts += static_cast<std::size_t>(s.cap);
    int cap = 4;
    while (cap < static_cast<int>(scratch.size())) cap *= 2;
    if (store_->deadInts > pool_->size() / 2 && pool_->size() > 1024)
      compact();
    s.off = pool_->size();
    s.cap = cap;
    s.len = static_cast<int>(scratch.size());
    pool_->resize(pool_->size() + static_cast<std::size_t>(cap), 0);
    std::copy(scratch.begin(), scratch.end(),
              pool_->begin() + static_cast<long>(s.off));
  }

  /// Rewrites the pool with only live slots (capacities preserved, so
  /// the growth amortization argument survives compaction).
  void compact() {
    std::vector<int> fresh;
    std::size_t live = 0;
    for (const Slot& s : *slots_) live += static_cast<std::size_t>(s.cap);
    fresh.reserve(live);
    for (Slot& s : *slots_) {
      const std::size_t off = fresh.size();
      fresh.insert(fresh.end(),
                   pool_->begin() + static_cast<long>(s.off),
                   pool_->begin() + static_cast<long>(s.off) +
                       static_cast<long>(s.cap));
      s.off = off;
    }
    *pool_ = std::move(fresh);
    store_->deadInts = 0;
  }

  std::vector<int>* pool_ = nullptr;
  std::vector<Slot>* slots_ = nullptr;
  Store* store_ = nullptr;
};

class StateArena {
 public:
  explicit StateArena(const Graph& graph) : graph_(&graph) {}

  StateArena(const StateArena&) = delete;
  StateArena& operator=(const StateArena&) = delete;

  [[nodiscard]] NodeColumn nodeColumn(int init = 0) {
    Col c;
    c.kind = Kind::kNode;
    c.data = std::make_unique<std::vector<int>>(
        static_cast<std::size_t>(graph_->nodeCount()), init);
    cols_.push_back(std::move(c));
    return NodeColumn(cols_.back().data.get());
  }

  [[nodiscard]] PortColumn portColumn(int init = 0) {
    Col c;
    c.kind = Kind::kPort;
    c.data =
        std::make_unique<std::vector<int>>(graph_->portSlotCount(), init);
    cols_.push_back(std::move(c));
    return PortColumn(cols_.back().data.get(), graph_);
  }

  /// Registers a variable-length column; every processor starts with an
  /// empty row.
  [[nodiscard]] VarColumn varColumn() {
    Col c;
    c.kind = Kind::kVar;
    c.var = std::make_unique<VarColumn::Store>();
    c.var->slots.assign(static_cast<std::size_t>(graph_->nodeCount()), {});
    cols_.push_back(std::move(c));
    return VarColumn(cols_.back().var.get());
  }

  /// Values in processor p's raw snapshot (columns in registration
  /// order; a port column contributes degree(p) values, a var column a
  /// length-prefixed row — i.e. state-dependent, see header comment).
  [[nodiscard]] std::size_t rawLength(NodeId p) const {
    std::size_t len = 0;
    for (const Col& c : cols_) {
      switch (c.kind) {
        case Kind::kNode: len += 1; break;
        case Kind::kPort:
          len += static_cast<std::size_t>(graph_->degree(p));
          break;
        case Kind::kVar:
          len += 1 + static_cast<std::size_t>(
                         c.var->slots[static_cast<std::size_t>(p)].len);
          break;
      }
    }
    return len;
  }

  void appendRawNode(NodeId p, std::vector<int>& out) const {
    for (const Col& c : cols_) {
      switch (c.kind) {
        case Kind::kNode:
          out.push_back((*c.data)[static_cast<std::size_t>(p)]);
          break;
        case Kind::kPort: {
          const std::size_t base = graph_->portBase(p);
          const auto deg = static_cast<std::size_t>(graph_->degree(p));
          out.insert(out.end(), c.data->begin() + static_cast<long>(base),
                     c.data->begin() + static_cast<long>(base + deg));
          break;
        }
        case Kind::kVar: {
          const auto& s = c.var->slots[static_cast<std::size_t>(p)];
          out.push_back(s.len);
          out.insert(out.end(),
                     c.var->pool.begin() + static_cast<long>(s.off),
                     c.var->pool.begin() + static_cast<long>(s.off) +
                         s.len);
          break;
        }
      }
    }
  }

  [[nodiscard]] std::vector<int> rawNode(NodeId p) const {
    std::vector<int> out;
    out.reserve(rawLength(p));
    appendRawNode(p, out);
    return out;
  }

  /// Inverse of rawNode.  Does NOT dirty anything (see header comment).
  void setRawNode(NodeId p, std::span<const int> values) {
    std::size_t at = 0;
    for (Col& c : cols_) {
      switch (c.kind) {
        case Kind::kNode:
          SSNO_EXPECTS(at < values.size());
          (*c.data)[static_cast<std::size_t>(p)] = values[at++];
          break;
        case Kind::kPort: {
          const std::size_t base = graph_->portBase(p);
          const auto deg = static_cast<std::size_t>(graph_->degree(p));
          SSNO_EXPECTS(at + deg <= values.size());
          for (std::size_t l = 0; l < deg; ++l)
            (*c.data)[base + l] = values[at++];
          break;
        }
        case Kind::kVar: {
          SSNO_EXPECTS(at < values.size());
          const auto len = static_cast<std::size_t>(values[at++]);
          SSNO_EXPECTS(at + len <= values.size());
          VarColumn(c.var.get()).setRow(p, values.subspan(at, len));
          at += len;
          break;
        }
      }
    }
    SSNO_EXPECTS(at == values.size());
  }

  /// ---- Column-batched multi-node snapshot/restore ---------------------
  /// Reusable scratch: `data` holds the listed processors' values
  /// column-major (all of column 0's slices, then column 1's, ...);
  /// `bounds[c * (nodes + 1) + j]` is the start of processor j's slice
  /// of column c in `data` (entry `nodes` is the column segment's end).
  struct Scratch {
    std::vector<int> data;
    std::vector<std::size_t> bounds;
    std::size_t nodes = 0;
  };

  /// Copies the listed processors' state into `out`, one tight loop per
  /// column (no per-node vectors, no virtual dispatch).
  void snapshotNodes(std::span<const NodeId> nodes, Scratch& out) const {
    const std::size_t k = nodes.size();
    out.nodes = k;
    out.bounds.resize(cols_.size() * (k + 1));
    // Pass 1: prefix bounds only, so a single resize sizes the data
    // buffer and the copy loops write through raw pointers — the
    // per-element push_back/insert capacity checks otherwise dominate
    // the snapshot on dense synchronous steps.
    std::size_t total = 0;
    for (std::size_t ci = 0; ci < cols_.size(); ++ci) {
      const Col& c = cols_[ci];
      std::size_t* bounds = out.bounds.data() + ci * (k + 1);
      switch (c.kind) {
        case Kind::kNode:
          for (std::size_t j = 0; j < k; ++j) bounds[j] = total++;
          break;
        case Kind::kPort:
          for (std::size_t j = 0; j < k; ++j) {
            bounds[j] = total;
            total += static_cast<std::size_t>(graph_->degree(nodes[j]));
          }
          break;
        case Kind::kVar:
          for (std::size_t j = 0; j < k; ++j) {
            bounds[j] = total;
            total += static_cast<std::size_t>(
                c.var->slots[static_cast<std::size_t>(nodes[j])].len);
          }
          break;
      }
      bounds[k] = total;
    }
    out.data.resize(total);
    int* dst = out.data.data();
    for (std::size_t ci = 0; ci < cols_.size(); ++ci) {
      const Col& c = cols_[ci];
      const std::size_t* bounds = out.bounds.data() + ci * (k + 1);
      switch (c.kind) {
        case Kind::kNode: {
          const int* src = c.data->data();
          int* d = dst + bounds[0];
          for (std::size_t j = 0; j < k; ++j)
            d[j] = src[static_cast<std::size_t>(nodes[j])];
          break;
        }
        case Kind::kPort: {
          const int* src = c.data->data();
          for (std::size_t j = 0; j < k; ++j)
            std::copy_n(src + graph_->portBase(nodes[j]),
                        bounds[j + 1] - bounds[j], dst + bounds[j]);
          break;
        }
        case Kind::kVar: {
          const int* pool = c.var->pool.data();
          for (std::size_t j = 0; j < k; ++j) {
            const auto& s = c.var->slots[static_cast<std::size_t>(nodes[j])];
            std::copy_n(pool + s.off, bounds[j + 1] - bounds[j],
                        dst + bounds[j]);
          }
          break;
        }
      }
    }
  }

  /// Restores every listed processor from `snap` (the inverse of
  /// snapshotNodes with the same `nodes` list).
  void restoreNodes(std::span<const NodeId> nodes, const Scratch& snap) {
    SSNO_EXPECTS(nodes.size() == snap.nodes);
    for (std::size_t j = 0; j < nodes.size(); ++j)
      restoreNode(j, nodes[j], snap);
  }

  /// Restores a single listed processor (`p == nodes[j]` of the
  /// snapshotNodes call that filled `snap`) — the simultaneous-step
  /// rollback primitive.
  void restoreNode(std::size_t j, NodeId p, const Scratch& snap) {
    SSNO_EXPECTS(j < snap.nodes);
    const std::size_t k = snap.nodes;
    for (std::size_t ci = 0; ci < cols_.size(); ++ci) {
      Col& c = cols_[ci];
      const std::size_t* bounds = snap.bounds.data() + ci * (k + 1);
      const int* from = snap.data.data() + bounds[j];
      const std::size_t len = bounds[j + 1] - bounds[j];
      switch (c.kind) {
        case Kind::kNode:
          (*c.data)[static_cast<std::size_t>(p)] = *from;
          break;
        case Kind::kPort:
          std::copy(from, from + len,
                    c.data->begin() +
                        static_cast<long>(graph_->portBase(p)));
          break;
        case Kind::kVar:
          VarColumn(c.var.get()).setRow(p, {from, len});
          break;
      }
    }
  }

  [[nodiscard]] const Graph& graph() const { return *graph_; }

 private:
  enum class Kind { kNode, kPort, kVar };
  struct Col {
    Kind kind = Kind::kNode;
    std::unique_ptr<std::vector<int>> data;     // node/port columns
    std::unique_ptr<VarColumn::Store> var;      // var columns
  };
  const Graph* graph_;
  std::vector<Col> cols_;
};

}  // namespace ssno

#endif  // SSNO_CORE_STATE_ARENA_HPP
