// StateArena — SoA storage for per-node protocol state.
//
// Every protocol keeps each of its variables as a *column*: one
// contiguous int array over all processors (node columns) or over all
// CSR port slots (port columns, indexed by Graph::portBase(p) + l).
// Compared to per-object fields and vector<vector<int>> per-port
// tables, columns keep guard evaluation cache-friendly at n >= 1e5
// (neighbor reads of one variable walk one array instead of hopping
// across per-node heap blocks) and give every protocol the same raw
// snapshot machinery for free.
//
// Usage pattern (see Dftc for the canonical example):
//
//   class MyProtocol : public Protocol {
//     StateArena arena_;
//     NodeColumn x_;   // one int per processor
//     PortColumn y_;   // one int per (processor, port)
//    public:
//     explicit MyProtocol(Graph g)
//         : Protocol(std::move(g)),
//           arena_(graph()),
//           x_(arena_.nodeColumn()),
//           y_(arena_.portColumn()) {}
//   };
//
// Registration order is the raw layout: StateArena::rawNode(p)
// concatenates, per column in registration order, one value (node
// column) or degree(p) values (port column) — exactly the layouts the
// protocols' hand-written rawNode() used to produce.  Protocols with
// extra invariants (e.g. the root's depth pinned to 0) normalize after
// StateArena::setRawNode.
//
// Dirtying rules are unchanged: columns are plain storage, so ALL
// writes must still go through the Protocol mutation hooks (doExecute /
// doSetRawNode / ...) or be followed by explicit dirty calls — the
// arena does not notify anyone.
#ifndef SSNO_CORE_STATE_ARENA_HPP
#define SSNO_CORE_STATE_ARENA_HPP

#include <algorithm>
#include <memory>
#include <span>
#include <vector>

#include "core/assert.hpp"
#include "core/graph.hpp"
#include "core/types.hpp"

namespace ssno {

/// One int per processor, contiguous over all processors.
class NodeColumn {
 public:
  NodeColumn() = default;
  [[nodiscard]] int& operator[](NodeId p) {
    return (*data_)[static_cast<std::size_t>(p)];
  }
  [[nodiscard]] const int& operator[](NodeId p) const {
    return (*data_)[static_cast<std::size_t>(p)];
  }
  void fill(int value) { std::fill(data_->begin(), data_->end(), value); }
  [[nodiscard]] const std::vector<int>& data() const { return *data_; }

 private:
  friend class StateArena;
  explicit NodeColumn(std::vector<int>* data) : data_(data) {}
  std::vector<int>* data_ = nullptr;
};

/// One int per (processor, port) slot, flat CSR layout.
class PortColumn {
 public:
  PortColumn() = default;
  [[nodiscard]] int& at(NodeId p, Port l) {
    return (*data_)[graph_->portBase(p) + static_cast<std::size_t>(l)];
  }
  [[nodiscard]] const int& at(NodeId p, Port l) const {
    return (*data_)[graph_->portBase(p) + static_cast<std::size_t>(l)];
  }
  [[nodiscard]] std::span<int> row(NodeId p) {
    return {data_->data() + graph_->portBase(p),
            static_cast<std::size_t>(graph_->degree(p))};
  }
  [[nodiscard]] std::span<const int> row(NodeId p) const {
    return {data_->data() + graph_->portBase(p),
            static_cast<std::size_t>(graph_->degree(p))};
  }
  void fill(int value) { std::fill(data_->begin(), data_->end(), value); }
  /// The whole flat column (the Orientation::label snapshot format).
  [[nodiscard]] const std::vector<int>& data() const { return *data_; }

 private:
  friend class StateArena;
  PortColumn(std::vector<int>* data, const Graph* graph)
      : data_(data), graph_(graph) {}
  std::vector<int>* data_ = nullptr;
  const Graph* graph_ = nullptr;
};

class StateArena {
 public:
  explicit StateArena(const Graph& graph) : graph_(&graph) {}

  StateArena(const StateArena&) = delete;
  StateArena& operator=(const StateArena&) = delete;

  [[nodiscard]] NodeColumn nodeColumn(int init = 0) {
    cols_.push_back(Col{false, std::make_unique<std::vector<int>>(
                               static_cast<std::size_t>(graph_->nodeCount()),
                               init)});
    return NodeColumn(cols_.back().data.get());
  }

  [[nodiscard]] PortColumn portColumn(int init = 0) {
    cols_.push_back(Col{true, std::make_unique<std::vector<int>>(
                              graph_->portSlotCount(), init)});
    return PortColumn(cols_.back().data.get(), graph_);
  }

  /// Values in processor p's raw snapshot (columns in registration
  /// order; a port column contributes degree(p) values).
  [[nodiscard]] std::size_t rawLength(NodeId p) const {
    std::size_t len = 0;
    for (const Col& c : cols_)
      len += c.perPort ? static_cast<std::size_t>(graph_->degree(p)) : 1;
    return len;
  }

  void appendRawNode(NodeId p, std::vector<int>& out) const {
    for (const Col& c : cols_) {
      if (!c.perPort) {
        out.push_back((*c.data)[static_cast<std::size_t>(p)]);
      } else {
        const std::size_t base = graph_->portBase(p);
        const auto deg = static_cast<std::size_t>(graph_->degree(p));
        out.insert(out.end(), c.data->begin() + static_cast<long>(base),
                   c.data->begin() + static_cast<long>(base + deg));
      }
    }
  }

  [[nodiscard]] std::vector<int> rawNode(NodeId p) const {
    std::vector<int> out;
    out.reserve(rawLength(p));
    appendRawNode(p, out);
    return out;
  }

  /// Inverse of rawNode.  Does NOT dirty anything (see header comment).
  void setRawNode(NodeId p, std::span<const int> values) {
    SSNO_EXPECTS(values.size() == rawLength(p));
    std::size_t at = 0;
    for (Col& c : cols_) {
      if (!c.perPort) {
        (*c.data)[static_cast<std::size_t>(p)] = values[at++];
      } else {
        const std::size_t base = graph_->portBase(p);
        const auto deg = static_cast<std::size_t>(graph_->degree(p));
        for (std::size_t l = 0; l < deg; ++l)
          (*c.data)[base + l] = values[at++];
      }
    }
  }

  [[nodiscard]] const Graph& graph() const { return *graph_; }

 private:
  struct Col {
    bool perPort;
    std::unique_ptr<std::vector<int>> data;  // stable address
  };
  const Graph* graph_;
  std::vector<Col> cols_;
};

}  // namespace ssno

#endif  // SSNO_CORE_STATE_ARENA_HPP
