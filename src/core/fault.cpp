#include "core/fault.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>
#include <string>

#include "core/assert.hpp"

namespace ssno {

std::vector<NodeId> FaultInjector::corruptK(int k, Rng& rng) {
  const int n = protocol_.graph().nodeCount();
  if (k < 0 || k > n)
    throw std::invalid_argument("corruptK: k=" + std::to_string(k) +
                                " out of range [0, n=" + std::to_string(n) +
                                "]");
  std::vector<NodeId> ids(static_cast<std::size_t>(n));
  std::iota(ids.begin(), ids.end(), 0);
  // Partial Fisher-Yates: the first k entries become the victim set.
  for (int i = 0; i < k; ++i)
    std::swap(ids[static_cast<std::size_t>(i)],
              ids[static_cast<std::size_t>(rng.between(i, n - 1))]);
  ids.resize(static_cast<std::size_t>(k));
  // Corruption happens in selection order — reordering it would change
  // the RNG stream and with it every recorded recovery benchmark — but
  // the *returned* victim list is sorted for deterministic reporting.
  for (NodeId p : ids) protocol_.randomizeNode(p, rng);
  std::sort(ids.begin(), ids.end());
  return ids;
}

}  // namespace ssno
