#include "core/fault.hpp"

#include <algorithm>
#include <numeric>

#include "core/assert.hpp"

namespace ssno {

std::vector<NodeId> FaultInjector::corruptK(int k, Rng& rng) {
  const int n = protocol_.graph().nodeCount();
  SSNO_EXPECTS(k >= 0 && k <= n);
  std::vector<NodeId> ids(static_cast<std::size_t>(n));
  std::iota(ids.begin(), ids.end(), 0);
  // Partial Fisher-Yates: the first k entries become the victim set.
  for (int i = 0; i < k; ++i)
    std::swap(ids[static_cast<std::size_t>(i)],
              ids[static_cast<std::size_t>(rng.between(i, n - 1))]);
  ids.resize(static_cast<std::size_t>(k));
  for (NodeId p : ids) protocol_.randomizeNode(p, rng);
  return ids;
}

}  // namespace ssno
