#include "core/protocol.hpp"

#include "core/assert.hpp"

namespace ssno {

std::vector<Move> Protocol::enabledMoves() const {
  std::vector<Move> moves;
  const int actions = actionCount();
  for (NodeId p = 0; p < graph().nodeCount(); ++p)
    for (int a = 0; a < actions; ++a)
      if (enabled(p, a)) moves.push_back(Move{p, a});
  return moves;
}

double Protocol::potentialHint() const {
  // Default adversarial potential: the enabled-move count.
  int count = 0;
  const int actions = actionCount();
  for (NodeId p = 0; p < graph().nodeCount(); ++p)
    for (int a = 0; a < actions; ++a)
      if (enabled(p, a)) ++count;
  return static_cast<double>(count);
}

std::vector<std::uint64_t> Protocol::encodeConfiguration() const {
  std::vector<std::uint64_t> codes;
  codes.reserve(static_cast<std::size_t>(graph().nodeCount()));
  for (NodeId p = 0; p < graph().nodeCount(); ++p)
    codes.push_back(encodeNode(p));
  return codes;
}

void Protocol::decodeConfiguration(const std::vector<std::uint64_t>& codes) {
  SSNO_EXPECTS(static_cast<int>(codes.size()) == graph().nodeCount());
  for (NodeId p = 0; p < graph().nodeCount(); ++p)
    doDecodeNode(p, codes[static_cast<std::size_t>(p)]);
  dirtyAll();
}

void Protocol::decodeConfigurationDelta(
    const std::vector<std::uint64_t>& codes,
    std::vector<std::uint64_t>& prev) {
  SSNO_EXPECTS(static_cast<int>(codes.size()) == graph().nodeCount());
  if (prev.size() != codes.size()) {
    decodeConfiguration(codes);
    prev = codes;
    return;
  }
  for (NodeId p = 0; p < graph().nodeCount(); ++p) {
    const auto i = static_cast<std::size_t>(p);
    if (codes[i] == prev[i]) continue;
    doDecodeNode(p, codes[i]);
    noteWrite(p);
    prev[i] = codes[i];
  }
}

std::vector<int> Protocol::rawConfiguration() const {
  std::vector<int> out;
  for (NodeId p = 0; p < graph().nodeCount(); ++p) {
    const std::vector<int> node = rawNode(p);
    out.insert(out.end(), node.begin(), node.end());
  }
  return out;
}

void Protocol::setRawConfiguration(const std::vector<int>& values) {
  std::size_t offset = 0;
  for (NodeId p = 0; p < graph().nodeCount(); ++p) {
    const std::size_t len = rawNodeLength(p);
    SSNO_EXPECTS(offset + len <= values.size());
    doSetRawNode(p, std::span<const int>(values).subspan(offset, len));
    offset += len;
  }
  SSNO_EXPECTS(offset == values.size());
  dirtyAll();
}

std::uint64_t Protocol::configurationHash() const {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (NodeId p = 0; p < graph().nodeCount(); ++p) {
    std::uint64_t code = encodeNode(p);
    for (int byte = 0; byte < 8; ++byte) {
      h ^= (code >> (8 * byte)) & 0xFF;
      h *= 0x100000001B3ULL;
    }
  }
  return h;
}

}  // namespace ssno
