// Multi-word bitmask utilities shared by the enabled-move pipeline
// (EnabledCache / EnabledView word iteration) and the model checkers'
// fairness masks (mc/properties, which outgrew a single uint64_t once
// node·actions > 64 instances became checkable).
//
// Two layers:
//  * free word-level helpers (popcount, lowest set bit, select-k),
//  * WordBitset, a dynamic multi-word bitset with word access for
//    skip-scanning, and flat *mask-arena* helpers for storing many
//    fixed-width masks contiguously (one allocation for all states).
#ifndef SSNO_CORE_BITWORDS_HPP
#define SSNO_CORE_BITWORDS_HPP

#include <algorithm>
#include <bit>
#include <cstdint>
#include <vector>

#include "core/assert.hpp"

namespace ssno::bits {

inline constexpr int kWordBits = 64;

[[nodiscard]] inline int popcount(std::uint64_t w) {
  return std::popcount(w);
}

/// Index of the lowest set bit.  Precondition: w != 0.
[[nodiscard]] inline int lowestBit(std::uint64_t w) {
  return std::countr_zero(w);
}

/// Index of the k-th (0-based) set bit of w.  Precondition: k < popcount.
[[nodiscard]] inline int selectBit(std::uint64_t w, int k) {
  for (int i = 0; i < k; ++i) w &= w - 1;  // clear k lowest set bits
  return std::countr_zero(w);
}

/// Mask of all bits strictly above position `b` (b in 0..63).
[[nodiscard]] inline std::uint64_t bitsAbove(int b) {
  return b >= 63 ? 0 : ~std::uint64_t{0} << (b + 1);
}

[[nodiscard]] inline std::size_t wordsFor(std::size_t nbits) {
  return (nbits + kWordBits - 1) / kWordBits;
}

/// First set position >= from in a `nbits`-wide word array, or -1 —
/// the word-skip scan shared by WordBitset::findFrom and
/// EnabledView's enabled-node iteration.
[[nodiscard]] inline long findFrom(const std::uint64_t* words,
                                   std::size_t nbits, std::size_t from) {
  if (from >= nbits) return -1;
  std::size_t wi = from / kWordBits;
  const std::size_t wordCount = wordsFor(nbits);
  std::uint64_t w = words[wi] & (~std::uint64_t{0} << (from % kWordBits));
  while (true) {
    if (w != 0)
      return static_cast<long>(wi * kWordBits +
                               static_cast<std::size_t>(lowestBit(w)));
    if (++wi >= wordCount) return -1;
    w = words[wi];
  }
}

/// Dynamic multi-word bitset.  Unlike std::vector<bool> it exposes its
/// words, so consumers can skip runs of zeros 64 positions at a time
/// (the whole point for enabled-node iteration at n >= 1e5).
class WordBitset {
 public:
  WordBitset() = default;
  explicit WordBitset(std::size_t nbits) { resize(nbits); }

  void resize(std::size_t nbits) {
    size_ = nbits;
    words_.assign(wordsFor(nbits), 0);
  }
  void reset() { std::fill(words_.begin(), words_.end(), 0); }

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] std::size_t wordCount() const { return words_.size(); }
  [[nodiscard]] const std::uint64_t* words() const { return words_.data(); }

  void set(std::size_t i) {
    words_[i / kWordBits] |= std::uint64_t{1} << (i % kWordBits);
  }
  void clear(std::size_t i) {
    words_[i / kWordBits] &= ~(std::uint64_t{1} << (i % kWordBits));
  }
  [[nodiscard]] bool test(std::size_t i) const {
    return (words_[i / kWordBits] >> (i % kWordBits)) & 1;
  }

  [[nodiscard]] std::size_t count() const {
    std::size_t c = 0;
    for (std::uint64_t w : words_) c += static_cast<std::size_t>(popcount(w));
    return c;
  }
  [[nodiscard]] bool any() const {
    for (std::uint64_t w : words_)
      if (w != 0) return true;
    return false;
  }

  /// First set position, or -1.
  [[nodiscard]] long findFirst() const { return findFrom(0); }

  /// First set position >= i, or -1.
  [[nodiscard]] long findFrom(std::size_t i) const {
    return bits::findFrom(words_.data(), size_, i);
  }

  /// First set position strictly after i, or -1.
  [[nodiscard]] long findNext(std::size_t i) const { return findFrom(i + 1); }

 private:
  std::vector<std::uint64_t> words_;
  std::size_t size_ = 0;
};

/// ---- Flat mask arenas ----------------------------------------------
/// Many fixed-width masks stored back to back: mask i occupies words
/// [i*stride, (i+1)*stride).  Used for per-state enabled-pair masks in
/// the fairness analysis, where one allocation covers every state.

inline void maskSet(std::uint64_t* mask, std::size_t bit) {
  mask[bit / kWordBits] |= std::uint64_t{1} << (bit % kWordBits);
}

[[nodiscard]] inline bool maskTest(const std::uint64_t* mask,
                                   std::size_t bit) {
  return (mask[bit / kWordBits] >> (bit % kWordBits)) & 1;
}

inline void maskAndInto(std::uint64_t* acc, const std::uint64_t* mask,
                        std::size_t words) {
  for (std::size_t w = 0; w < words; ++w) acc[w] &= mask[w];
}

inline void maskOrInto(std::uint64_t* acc, const std::uint64_t* mask,
                       std::size_t words) {
  for (std::size_t w = 0; w < words; ++w) acc[w] |= mask[w];
}

/// acc & ~mask == 0, i.e. every bit of acc is also set in mask.
[[nodiscard]] inline bool maskSubsetOf(const std::uint64_t* acc,
                                       const std::uint64_t* mask,
                                       std::size_t words) {
  for (std::size_t w = 0; w < words; ++w)
    if ((acc[w] & ~mask[w]) != 0) return false;
  return true;
}

}  // namespace ssno::bits

#endif  // SSNO_CORE_BITWORDS_HPP
