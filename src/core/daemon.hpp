// Daemons (schedulers / adversaries) — paper §2.1.2.
//
// A computation step takes the set of enabled moves and selects a
// non-empty subset, at most one move per processor (the *distributed
// daemon*).  Special cases: the central daemon picks exactly one move; the
// synchronous daemon picks one move at every enabled processor.  The
// paper's DFTNO assumes a weakly fair daemon; STNO tolerates an unfair
// one.  RoundRobinDaemon realizes weak fairness deterministically;
// AdversarialDaemon greedily tries to starve progress (it prefers moves
// that keep the system away from quiescence) and is *unfair*.
//
// Selection is bitmask-native: the primary selectInto overload consumes
// an EnabledView (the EnabledCache's per-node action masks) and never
// materializes a move vector — the central daemon draws in O(log n),
// round-robin/adversarial in O(1) amortized, and the subset daemons
// touch only enabled processors via word skips.  legacySelect is the
// historical shim over a node-major materialized vector; both paths
// draw from the RNG in the same order and return bit-identical
// selections (asserted by the Simulator's debug cross-check and pinned
// by tests/daemon_test.cpp across randomized configurations).
#ifndef SSNO_CORE_DAEMON_HPP
#define SSNO_CORE_DAEMON_HPP

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/enabled_view.hpp"
#include "core/protocol.hpp"
#include "core/rng.hpp"

namespace ssno {

class Daemon {
 public:
  virtual ~Daemon() = default;

  /// Selects the moves to execute this computation step into `out`
  /// (cleared first; callers reuse the buffer so steady-state stepping
  /// performs no heap allocations).
  /// Precondition: `enabled` is non-empty.  Postcondition: `out`
  /// non-empty, at most one move per processor, every move enabled.
  virtual void selectInto(const EnabledView& enabled, Rng& rng,
                          std::vector<Move>& out) = 0;

  /// Legacy shim: selection over the materialized move vector.
  /// Precondition: `enabled` is non-empty, node-major (all moves of a
  /// node contiguous, nodes ascending — the order Protocol::enabledMoves
  /// and EnabledCache::refresh produce), with at most actionCount()
  /// moves per node.  Draw-order and result identical to the bitmask
  /// overload on the same enabled set.
  virtual void legacySelect(std::span<const Move> enabled, Rng& rng,
                            std::vector<Move>& out) = 0;

  /// Deep copy including fairness state (round-robin's cursor), so a
  /// cross-check can replay a selection without disturbing the daemon.
  [[nodiscard]] virtual std::unique_ptr<Daemon> clone() const = 0;

  /// Convenience wrapper for tests and one-off callers (legacy path).
  [[nodiscard]] std::vector<Move> select(const std::vector<Move>& enabled,
                                         Rng& rng) {
    std::vector<Move> out;
    legacySelect(enabled, rng, out);
    return out;
  }

  [[nodiscard]] virtual std::string name() const = 0;

 protected:
  /// Utility: keep at most one (uniformly chosen) move per processor.
  /// Both overloads visit moves in node-major order, so per-node
  /// reservoir sampling draws from the RNG in the identical sequence.
  static void onePerNode(std::span<const Move> enabled, Rng& rng,
                         std::vector<Move>& out);
  static void onePerNode(const EnabledView& enabled, Rng& rng,
                         std::vector<Move>& out);
};

/// Central daemon: exactly one enabled processor acts per step.
class CentralDaemon final : public Daemon {
 public:
  void selectInto(const EnabledView& enabled, Rng& rng,
                  std::vector<Move>& out) override;
  void legacySelect(std::span<const Move> enabled, Rng& rng,
                    std::vector<Move>& out) override;
  [[nodiscard]] std::unique_ptr<Daemon> clone() const override {
    return std::make_unique<CentralDaemon>(*this);
  }
  [[nodiscard]] std::string name() const override { return "central"; }
};

/// Distributed daemon: a uniformly random non-empty subset of processors,
/// one enabled action each.
class DistributedDaemon final : public Daemon {
 public:
  void selectInto(const EnabledView& enabled, Rng& rng,
                  std::vector<Move>& out) override;
  void legacySelect(std::span<const Move> enabled, Rng& rng,
                    std::vector<Move>& out) override;
  [[nodiscard]] std::unique_ptr<Daemon> clone() const override {
    return std::make_unique<DistributedDaemon>(*this);
  }
  [[nodiscard]] std::string name() const override { return "distributed"; }

 private:
  void pickSubset(Rng& rng, std::vector<Move>& out);

  std::vector<Move> perNode_;  // reusable scratch
};

/// Synchronous daemon: every enabled processor acts (one action each).
class SynchronousDaemon final : public Daemon {
 public:
  void selectInto(const EnabledView& enabled, Rng& rng,
                  std::vector<Move>& out) override;
  void legacySelect(std::span<const Move> enabled, Rng& rng,
                    std::vector<Move>& out) override;
  [[nodiscard]] std::unique_ptr<Daemon> clone() const override {
    return std::make_unique<SynchronousDaemon>(*this);
  }
  [[nodiscard]] std::string name() const override { return "synchronous"; }
};

/// Deterministic weakly fair central daemon: cycles through (processor,
/// action) pairs in lexicographic order and serves the next enabled pair
/// after the last served.  Fairness at action granularity matters: a
/// node-level rotation that picks the lowest enabled action can starve a
/// continuously enabled correction action behind a busy substrate action
/// (e.g. DFTNO's EdgeLabel at a star hub behind token moves).
class RoundRobinDaemon final : public Daemon {
 public:
  void selectInto(const EnabledView& enabled, Rng& rng,
                  std::vector<Move>& out) override;
  void legacySelect(std::span<const Move> enabled, Rng& rng,
                    std::vector<Move>& out) override;
  [[nodiscard]] std::unique_ptr<Daemon> clone() const override {
    return std::make_unique<RoundRobinDaemon>(*this);
  }
  [[nodiscard]] std::string name() const override { return "round-robin"; }

 private:
  Move last_{-1, 1 << 20};  // sentinel: before every real pair
};

/// Unfair adversary: repeatedly serves the lowest-numbered enabled
/// processor (so a continuously enabled high-numbered processor can be
/// starved for as long as others stay enabled).
class AdversarialDaemon final : public Daemon {
 public:
  void selectInto(const EnabledView& enabled, Rng& rng,
                  std::vector<Move>& out) override;
  void legacySelect(std::span<const Move> enabled, Rng& rng,
                    std::vector<Move>& out) override;
  [[nodiscard]] std::unique_ptr<Daemon> clone() const override {
    return std::make_unique<AdversarialDaemon>(*this);
  }
  [[nodiscard]] std::string name() const override { return "adversarial"; }
};

/// Factory used by parameterized tests and benches.
enum class DaemonKind {
  kCentral,
  kDistributed,
  kSynchronous,
  kRoundRobin,
  kAdversarial,
};

[[nodiscard]] std::unique_ptr<Daemon> makeDaemon(DaemonKind kind);
[[nodiscard]] std::string daemonKindName(DaemonKind kind);

}  // namespace ssno

#endif  // SSNO_CORE_DAEMON_HPP
