// Daemons (schedulers / adversaries) — paper §2.1.2.
//
// A computation step takes the set of enabled moves and selects a
// non-empty subset, at most one move per processor (the *distributed
// daemon*).  Special cases: the central daemon picks exactly one move; the
// synchronous daemon picks one move at every enabled processor.  The
// paper's DFTNO assumes a weakly fair daemon; STNO tolerates an unfair
// one.  RoundRobinDaemon realizes weak fairness deterministically;
// AdversarialDaemon greedily tries to starve progress (it prefers moves
// that keep the system away from quiescence) and is *unfair*.
#ifndef SSNO_CORE_DAEMON_HPP
#define SSNO_CORE_DAEMON_HPP

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/protocol.hpp"
#include "core/rng.hpp"

namespace ssno {

class Daemon {
 public:
  virtual ~Daemon() = default;

  /// Selects the moves to execute this computation step into `out`
  /// (cleared first; callers reuse the buffer so steady-state stepping
  /// performs no heap allocations).
  /// Precondition: `enabled` is non-empty, node-major (all moves of a
  /// node contiguous, nodes ascending — the order Protocol::enabledMoves
  /// and the EnabledCache produce), with at most actionCount() moves per
  /// node.  Postcondition: `out` non-empty, at most one move per
  /// processor, a subset of `enabled`.
  virtual void selectInto(std::span<const Move> enabled, Rng& rng,
                          std::vector<Move>& out) = 0;

  /// Convenience wrapper for tests and one-off callers.
  [[nodiscard]] std::vector<Move> select(const std::vector<Move>& enabled,
                                         Rng& rng) {
    std::vector<Move> out;
    selectInto(enabled, rng, out);
    return out;
  }

  [[nodiscard]] virtual std::string name() const = 0;

 protected:
  /// Utility: keep at most one (uniformly chosen) move per processor.
  /// Relies on the node-major precondition: each node's moves form one
  /// contiguous run, so per-node reservoir sampling needs no map and the
  /// RNG draw order matches the historical map-based implementation.
  static void onePerNode(std::span<const Move> enabled, Rng& rng,
                         std::vector<Move>& out);
};

/// Central daemon: exactly one enabled processor acts per step.
class CentralDaemon final : public Daemon {
 public:
  void selectInto(std::span<const Move> enabled, Rng& rng,
                  std::vector<Move>& out) override;
  [[nodiscard]] std::string name() const override { return "central"; }
};

/// Distributed daemon: a uniformly random non-empty subset of processors,
/// one enabled action each.
class DistributedDaemon final : public Daemon {
 public:
  void selectInto(std::span<const Move> enabled, Rng& rng,
                  std::vector<Move>& out) override;
  [[nodiscard]] std::string name() const override { return "distributed"; }

 private:
  std::vector<Move> perNode_;  // reusable scratch
};

/// Synchronous daemon: every enabled processor acts (one action each).
class SynchronousDaemon final : public Daemon {
 public:
  void selectInto(std::span<const Move> enabled, Rng& rng,
                  std::vector<Move>& out) override;
  [[nodiscard]] std::string name() const override { return "synchronous"; }
};

/// Deterministic weakly fair central daemon: cycles through (processor,
/// action) pairs in lexicographic order and serves the next enabled pair
/// after the last served.  Fairness at action granularity matters: a
/// node-level rotation that picks the lowest enabled action can starve a
/// continuously enabled correction action behind a busy substrate action
/// (e.g. DFTNO's EdgeLabel at a star hub behind token moves).
class RoundRobinDaemon final : public Daemon {
 public:
  void selectInto(std::span<const Move> enabled, Rng& rng,
                  std::vector<Move>& out) override;
  [[nodiscard]] std::string name() const override { return "round-robin"; }

 private:
  Move last_{-1, 1 << 20};  // sentinel: before every real pair
};

/// Unfair adversary: repeatedly serves the lowest-numbered enabled
/// processor (so a continuously enabled high-numbered processor can be
/// starved for as long as others stay enabled).
class AdversarialDaemon final : public Daemon {
 public:
  void selectInto(std::span<const Move> enabled, Rng& rng,
                  std::vector<Move>& out) override;
  [[nodiscard]] std::string name() const override { return "adversarial"; }
};

/// Factory used by parameterized tests and benches.
enum class DaemonKind {
  kCentral,
  kDistributed,
  kSynchronous,
  kRoundRobin,
  kAdversarial,
};

[[nodiscard]] std::unique_ptr<Daemon> makeDaemon(DaemonKind kind);
[[nodiscard]] std::string daemonKindName(DaemonKind kind);

}  // namespace ssno

#endif  // SSNO_CORE_DAEMON_HPP
