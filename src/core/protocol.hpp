// The guarded-command protocol abstraction (paper §2.1.2).
//
// A protocol is a finite set of actions per processor, each of the form
//     <label> :: <guard> --> <statement>
// where the guard reads the processor's own variables and those of its
// neighbors, and the statement writes only the processor's own variables.
// Guard evaluation and statement execution are one atomic step.
//
// Implementations expose:
//  * the enabled-action relation (for daemons),
//  * atomic execution,
//  * state randomization (arbitrary initial configurations, Def. 2.1.2),
//  * a canonical per-node state codec so the exhaustive model checker can
//    enumerate and hash the full configuration space C,
//  * human-readable dumps for traces.
//
// Dirty tracking (the simulation hot path).  Guards are local: the guard
// of an action at p reads only p's own variables and its neighbors', so a
// state write at p can change the enabled relation only at p ∪ N(p).  The
// base class exploits this: every mutating entry point (execute,
// setRawNode, decodeNode, randomizeNode — the non-virtual public wrappers
// around the do* hooks below) records the written node's closed
// neighborhood in a dirty set, and whole-configuration writes mark
// everything dirty.  An EnabledCache drains the set and re-evaluates only
// dirty processors' guards instead of rescanning all n each step.
//
// Contract for protocol authors: ALL state writes must go through the
// wrappers (or call dirtyNeighborhood/dirtyAll explicitly for internal
// resets), and a protocol whose guard at p reads state beyond N[p] must
// override dirtyAfterWrite to extend the dirty region (see
// InitBasedOrientation, whose numbering wave follows a global preorder).
#ifndef SSNO_CORE_PROTOCOL_HPP
#define SSNO_CORE_PROTOCOL_HPP

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/assert.hpp"
#include "core/graph.hpp"
#include "core/rng.hpp"
#include "core/types.hpp"

namespace ssno {

class StateArena;

/// One enabled (processor, action) pair, as offered to a daemon.
struct Move {
  NodeId node = kNoNode;
  int action = -1;

  friend bool operator==(const Move&, const Move&) = default;
};

class Protocol {
 public:
  virtual ~Protocol() = default;

  Protocol(const Protocol&) = delete;
  Protocol& operator=(const Protocol&) = delete;

  [[nodiscard]] const Graph& graph() const { return graph_; }

  /// Number of distinct action labels (identifiers 0..actionCount()-1).
  [[nodiscard]] virtual int actionCount() const = 0;
  [[nodiscard]] virtual std::string actionName(int action) const = 0;

  /// Enable(A, p, γ): is action `action` enabled at processor p in the
  /// current configuration?
  [[nodiscard]] virtual bool enabled(NodeId p, int action) const = 0;

  /// Batch guard evaluation: for every nodes[i], set masks[i] bit a iff
  /// enabled(nodes[i], a).  `nodes` is sorted ascending and duplicate-
  /// free; `masks` has nodes.size() writable slots.  The default loops
  /// the virtual enabled() per (node, action); protocols whose guards
  /// are straight column reads override with fused columnar kernels
  /// (one neighborhood walk per node, autovectorizable inner scans) —
  /// see README "Batch guard kernels" for the contract and when NOT to
  /// override (LexDfsTree's VarColumn candidate walks).  Overrides must
  /// be bit-identical to the scalar loop; Debug builds assert this on
  /// every batched refresh (EnabledCache::evaluateBatch).
  virtual void evaluateGuards(std::span<const NodeId> nodes,
                              std::uint64_t* masks) const {
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      std::uint64_t mask = 0;
      for (int a = 0; a < actionCount(); ++a)
        if (enabled(nodes[i], a)) mask |= (std::uint64_t{1} << a);
      masks[i] = mask;
    }
  }

  /// Whether every guard and statement at p reads only N[p] state.  A
  /// protocol that overrides dirtyAfterWrite because a guard reads
  /// non-neighbor state must return false unless a concurrently enabled
  /// actor provably cannot write that state: the simulator's
  /// simultaneous-step path restores only acting closed neighborhoods
  /// when this holds, and falls back to full-configuration snapshots
  /// when it does not.
  [[nodiscard]] virtual bool guardsAreNeighborhoodLocal() const {
    return true;
  }

  /// Atomically executes `action` at p.  Precondition: enabled(p, action).
  /// Dirties p's closed neighborhood (statements write only p's own
  /// variables).
  void execute(NodeId p, int action) {
    doExecute(p, action);
    noteWrite(p);
  }

  /// Batched simultaneous execute: attempts to run a whole synchronous
  /// step's moves with pre-step read semantics (every guard/statement
  /// RHS sees the configuration at the beginning of the step) in one
  /// call, without the engine's per-move snapshot/rollback schedule.
  /// `moves` is node-ascending with all nodes distinct, every move
  /// enabled, and the call must happen inside a simultaneous-step
  /// bracket.  Returns false (the default) if the protocol cannot — the
  /// caller falls back to the rollback pipeline; on true the step has
  /// been fully executed and all writers recorded.  Implementations use
  /// a two-phase compute-then-commit: phase 1 reads the (untouched)
  /// pre-step state and performs no writes, so correctness is by
  /// construction.
  bool executeSimultaneousBatch(std::span<const Move> moves) {
    SSNO_EXPECTS(defer_writes_);
    if (!doExecuteSimultaneous(moves)) return false;
    for (const Move& m : moves) noteWrite(m.node);
    return true;
  }

  /// Replaces every processor's state with a uniformly arbitrary one
  /// (transient-fault model: the adversary may set all variables).
  void randomize(Rng& rng) {
    for (NodeId p = 0; p < graph_.nodeCount(); ++p) doRandomizeNode(p, rng);
    dirtyAll();
  }

  /// Arbitrary state for a single processor (k-fault injection).
  void randomizeNode(NodeId p, Rng& rng) {
    doRandomizeNode(p, rng);
    noteWrite(p);
  }

  /// ---- Canonical state codec (model checking / hashing) ---------------
  /// Size of processor p's local state space; local states are indexed
  /// 0..localStateCount(p)-1.  Only meaningful at model-checking scales:
  /// for high-degree processors the count may exceed 64 bits, in which
  /// case the codec must not be used (the ModelChecker detects overflow;
  /// the simulator and legitimacy orbits use the raw-values API below).
  [[nodiscard]] virtual std::uint64_t localStateCount(NodeId p) const = 0;
  [[nodiscard]] virtual std::uint64_t encodeNode(NodeId p) const = 0;
  void decodeNode(NodeId p, std::uint64_t code) {
    doDecodeNode(p, code);
    noteWrite(p);
  }

  /// ---- Raw state snapshot (overflow-safe, any graph size) -------------
  /// The processor's variables as a flat int vector (protocol-defined
  /// order, fixed length per processor).
  [[nodiscard]] virtual std::vector<int> rawNode(NodeId p) const = 0;
  /// rawNode(p).size() without materializing the vector.  Protocols
  /// with expensive raw vectors (LexDfsTree's is Θ(n) ints) override;
  /// whole-configuration walks use this for their offsets.
  [[nodiscard]] virtual std::size_t rawNodeLength(NodeId p) const {
    return rawNode(p).size();
  }
  void setRawNode(NodeId p, std::span<const int> values) {
    doSetRawNode(p, values);
    noteWrite(p);
  }
  void setRawNode(NodeId p, std::initializer_list<int> values) {
    setRawNode(p, std::span<const int>(values.begin(), values.size()));
  }

  /// Whole-configuration raw snapshot (concatenated per-node vectors).
  [[nodiscard]] std::vector<int> rawConfiguration() const;
  void setRawConfiguration(const std::vector<int>& values);

  /// Debug rendering of p's variables, e.g. "S=->2 col=1 d=3".
  [[nodiscard]] virtual std::string dumpNode(NodeId p) const = 0;

  /// All moves enabled in the current configuration (node-major order).
  [[nodiscard]] std::vector<Move> enabledMoves() const;

  /// Potential the adversarial searching daemon (resil/search_daemon)
  /// maximizes when hunting for slow schedules.  Higher = "further from
  /// quiescence / more ways to stay busy".  The default — the number of
  /// enabled moves — is a protocol-agnostic proxy; protocols with a
  /// natural variant function (token distance, tree disagreement count)
  /// may override with something sharper.  Must be a pure function of
  /// the current configuration (no hidden state, no RNG): the search
  /// replays bit-identically only if re-evaluating the potential on the
  /// same configuration yields the same value.
  [[nodiscard]] virtual double potentialHint() const;

  /// Whole-configuration encode/decode helpers built on the node codec.
  [[nodiscard]] std::vector<std::uint64_t> encodeConfiguration() const;
  void decodeConfiguration(const std::vector<std::uint64_t>& codes);

  /// Delta decode: rewrites only the nodes whose code differs from
  /// `prev`, dirtying just those closed neighborhoods, and updates
  /// `prev` to `codes`.  A caller that threads `prev` through
  /// successive decodes (model-checking exploration, where neighboring
  /// configurations differ in a handful of nodes) keeps the dirty set —
  /// and therefore an EnabledCache consumer — incremental instead of
  /// invalidating everything per configuration.  A `prev` of the wrong
  /// size is treated as unknown and triggers a full decode.
  void decodeConfigurationDelta(const std::vector<std::uint64_t>& codes,
                                std::vector<std::uint64_t>& prev);

  /// FNV-1a hash of the canonical encoding (for visited-set bookkeeping).
  [[nodiscard]] std::uint64_t configurationHash() const;

  /// ---- Simultaneous-step write bracket (deferred dirtying) -----------
  /// Between begin and end, the mutation wrappers above only RECORD the
  /// written processors instead of expanding each write into its dirty
  /// region; endSimultaneousStep then performs one deduplicated
  /// dirtyAfterWrite pass over the recorded writers.  A dense
  /// synchronous step executes + rolls back every actor several times,
  /// so immediate dirtying fires ~n·Δ redundant notifications per step;
  /// the bracket collapses that to one pass over actors ∪ N(actors).
  /// Contract: no dirty-set consumer (EnabledCache refresh) may run
  /// inside the bracket, and brackets do not nest.  The simultaneous-
  /// step engine (core/sync_engine) is the intended driver.
  void beginSimultaneousStep() {
    SSNO_EXPECTS(!defer_writes_);
    if (deferred_flag_.size() !=
        static_cast<std::size_t>(graph_.nodeCount()))
      deferred_flag_.assign(static_cast<std::size_t>(graph_.nodeCount()), 0);
    defer_writes_ = true;
  }
  void endSimultaneousStep() {
    SSNO_EXPECTS(defer_writes_);
    defer_writes_ = false;
    // Dense steps: once a quarter of the processors wrote, the exact
    // dirty region (writers ∪ their dirtyAfterWrite fan-out) covers most
    // of the configuration anyway.  Marking everything dirty is the
    // always-safe over-approximation, skips the per-writer virtual
    // fan-out here, and lets the consumer take its linear full-rescan
    // path instead of patching ~n nodes one by one.
    const auto n = static_cast<std::size_t>(graph_.nodeCount());
    if (deferred_writers_.size() >= n / 4 + 1) {
      for (NodeId p : deferred_writers_)
        deferred_flag_[static_cast<std::size_t>(p)] = 0;
      deferred_writers_.clear();
      dirtyAll();
      return;
    }
    for (NodeId p : deferred_writers_) {
      deferred_flag_[static_cast<std::size_t>(p)] = 0;
      dirtyAfterWrite(p);
    }
    deferred_writers_.clear();
  }
  [[nodiscard]] bool inSimultaneousStep() const { return defer_writes_; }

  /// Dirty notification for a state write performed OUTSIDE the mutation
  /// wrappers — e.g. a snapshot restore through StateArena columns,
  /// which bypasses the do* hooks entirely.  Equivalent to the dirtying
  /// a wrapper-mediated write at p would have produced (deferred inside
  /// a simultaneous-step bracket).
  void noteExternalWrite(NodeId p) { noteWrite(p); }

  /// ---- Columnar state registry (simultaneous-step fast path) ----------
  /// A protocol whose ENTIRE mutable per-node state lives in StateArena
  /// columns appends its arenas here (sub-protocol arenas first).  The
  /// simultaneous-step engine then snapshots/restores acting processors
  /// with column-batched copies instead of per-node rawNode/setRawNode
  /// vector round-trips.  The default — no arenas — keeps the engine on
  /// the raw-vector path; opting in with state outside the registered
  /// columns would make snapshot/restore lossy, so don't.
  virtual void collectArenas(std::vector<StateArena*>& out) { (void)out; }

  /// ---- Dirty-set drain (single active consumer, e.g. EnabledCache) ----
  /// `true` after a whole-configuration write: the consumer must rescan
  /// every processor (dirtyNodes() is meaningless then).
  [[nodiscard]] bool allDirty() const { return all_dirty_; }
  /// Deduplicated nodes whose guards may have changed since clearDirty().
  [[nodiscard]] const std::vector<NodeId>& dirtyNodes() const {
    return dirty_list_;
  }
  /// Per-node dirty flags backing dirtyNodes() (1 = listed).  Lets a
  /// dense consumer recover the dirty set in node order by scanning
  /// instead of sorting the insertion-ordered list.
  [[nodiscard]] const std::vector<std::uint8_t>& dirtyFlags() const {
    return dirty_flag_;
  }
  [[nodiscard]] bool hasDirtyState() const {
    return all_dirty_ || !dirty_list_.empty();
  }
  void clearDirty() {
    for (NodeId p : dirty_list_) dirty_flag_[static_cast<std::size_t>(p)] = 0;
    dirty_list_.clear();
    all_dirty_ = false;
  }

 protected:
  explicit Protocol(Graph graph) : graph_(std::move(graph)) {
    dirty_flag_.assign(static_cast<std::size_t>(graph_.nodeCount()), 0);
  }

  /// ---- Mutation hooks implemented by protocols ------------------------
  virtual void doExecute(NodeId p, int action) = 0;
  /// Batched simultaneous-execute hook (see executeSimultaneousBatch).
  /// Contract: either return false having performed NO writes, or return
  /// true having executed every move with pre-step read semantics.
  virtual bool doExecuteSimultaneous(std::span<const Move> moves) {
    (void)moves;
    return false;
  }
  virtual void doRandomizeNode(NodeId p, Rng& rng) = 0;
  virtual void doDecodeNode(NodeId p, std::uint64_t code) = 0;
  virtual void doSetRawNode(NodeId p, std::span<const int> values) = 0;

  /// Dirty region of a state write at p.  The default — p's closed
  /// neighborhood — is correct whenever guards read only N[p]; protocols
  /// with non-local guard dependencies must widen it.
  virtual void dirtyAfterWrite(NodeId p) { dirtyNeighborhood(p); }

  /// Marks a single node's guards as needing re-evaluation.
  void dirtyNode(NodeId p) {
    if (all_dirty_) return;
    auto& flag = dirty_flag_[static_cast<std::size_t>(p)];
    if (flag) return;
    flag = 1;
    dirty_list_.push_back(p);
  }

  /// Marks p ∪ N(p) dirty (the region a write at p can influence).
  void dirtyNeighborhood(NodeId p) {
    if (all_dirty_) return;
    dirtyNode(p);
    for (NodeId q : graph_.neighbors(p)) dirtyNode(q);
  }

  /// Marks every processor dirty (whole-configuration writes, internal
  /// bulk resets such as Dftc::resetClean).
  void dirtyAll() {
    for (NodeId p : dirty_list_) dirty_flag_[static_cast<std::size_t>(p)] = 0;
    dirty_list_.clear();
    all_dirty_ = true;
  }

 private:
  /// Routes a write notification at p to dirtyAfterWrite, or — inside a
  /// simultaneous-step bracket — into the deduplicated writer record.
  void noteWrite(NodeId p) {
    if (!defer_writes_) {
      dirtyAfterWrite(p);
      return;
    }
    auto& flag = deferred_flag_[static_cast<std::size_t>(p)];
    if (flag) return;
    flag = 1;
    deferred_writers_.push_back(p);
  }

  Graph graph_;
  std::vector<std::uint8_t> dirty_flag_;
  std::vector<NodeId> dirty_list_;
  bool all_dirty_ = true;  // a fresh protocol has never been scanned
  bool defer_writes_ = false;
  std::vector<std::uint8_t> deferred_flag_;
  std::vector<NodeId> deferred_writers_;
};

}  // namespace ssno

#endif  // SSNO_CORE_PROTOCOL_HPP
