// The guarded-command protocol abstraction (paper §2.1.2).
//
// A protocol is a finite set of actions per processor, each of the form
//     <label> :: <guard> --> <statement>
// where the guard reads the processor's own variables and those of its
// neighbors, and the statement writes only the processor's own variables.
// Guard evaluation and statement execution are one atomic step.
//
// Implementations expose:
//  * the enabled-action relation (for daemons),
//  * atomic execution,
//  * state randomization (arbitrary initial configurations, Def. 2.1.2),
//  * a canonical per-node state codec so the exhaustive model checker can
//    enumerate and hash the full configuration space C,
//  * human-readable dumps for traces.
#ifndef SSNO_CORE_PROTOCOL_HPP
#define SSNO_CORE_PROTOCOL_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "core/graph.hpp"
#include "core/rng.hpp"
#include "core/types.hpp"

namespace ssno {

/// One enabled (processor, action) pair, as offered to a daemon.
struct Move {
  NodeId node = kNoNode;
  int action = -1;

  friend bool operator==(const Move&, const Move&) = default;
};

class Protocol {
 public:
  virtual ~Protocol() = default;

  Protocol(const Protocol&) = delete;
  Protocol& operator=(const Protocol&) = delete;

  [[nodiscard]] const Graph& graph() const { return graph_; }

  /// Number of distinct action labels (identifiers 0..actionCount()-1).
  [[nodiscard]] virtual int actionCount() const = 0;
  [[nodiscard]] virtual std::string actionName(int action) const = 0;

  /// Enable(A, p, γ): is action `action` enabled at processor p in the
  /// current configuration?
  [[nodiscard]] virtual bool enabled(NodeId p, int action) const = 0;

  /// Atomically executes `action` at p.  Precondition: enabled(p, action).
  virtual void execute(NodeId p, int action) = 0;

  /// Replaces every processor's state with a uniformly arbitrary one
  /// (transient-fault model: the adversary may set all variables).
  virtual void randomize(Rng& rng) {
    for (NodeId p = 0; p < graph_.nodeCount(); ++p) randomizeNode(p, rng);
  }

  /// Arbitrary state for a single processor (k-fault injection).
  virtual void randomizeNode(NodeId p, Rng& rng) = 0;

  /// ---- Canonical state codec (model checking / hashing) ---------------
  /// Size of processor p's local state space; local states are indexed
  /// 0..localStateCount(p)-1.  Only meaningful at model-checking scales:
  /// for high-degree processors the count may exceed 64 bits, in which
  /// case the codec must not be used (the ModelChecker detects overflow;
  /// the simulator and legitimacy orbits use the raw-values API below).
  [[nodiscard]] virtual std::uint64_t localStateCount(NodeId p) const = 0;
  [[nodiscard]] virtual std::uint64_t encodeNode(NodeId p) const = 0;
  virtual void decodeNode(NodeId p, std::uint64_t code) = 0;

  /// ---- Raw state snapshot (overflow-safe, any graph size) -------------
  /// The processor's variables as a flat int vector (protocol-defined
  /// order, fixed length per processor).
  [[nodiscard]] virtual std::vector<int> rawNode(NodeId p) const = 0;
  virtual void setRawNode(NodeId p, const std::vector<int>& values) = 0;

  /// Whole-configuration raw snapshot (concatenated per-node vectors).
  [[nodiscard]] std::vector<int> rawConfiguration() const;
  void setRawConfiguration(const std::vector<int>& values);

  /// Debug rendering of p's variables, e.g. "S=->2 col=1 d=3".
  [[nodiscard]] virtual std::string dumpNode(NodeId p) const = 0;

  /// All moves enabled in the current configuration (node-major order).
  [[nodiscard]] std::vector<Move> enabledMoves() const;

  /// Whole-configuration encode/decode helpers built on the node codec.
  [[nodiscard]] std::vector<std::uint64_t> encodeConfiguration() const;
  void decodeConfiguration(const std::vector<std::uint64_t>& codes);

  /// FNV-1a hash of the canonical encoding (for visited-set bookkeeping).
  [[nodiscard]] std::uint64_t configurationHash() const;

 protected:
  explicit Protocol(Graph graph) : graph_(std::move(graph)) {}

 private:
  Graph graph_;
};

}  // namespace ssno

#endif  // SSNO_CORE_PROTOCOL_HPP
