#include "core/sync_engine.hpp"

#include <algorithm>

#include "core/assert.hpp"
#include "obs/metrics.hpp"

namespace ssno {

namespace {
// All increments are batched per simultaneous step (O(1) atomics per
// execute call), never per node.
const obs::Counter kSyncSteps =
    obs::Registry::global().counter("sync_steps_total");
const obs::Counter kSyncSnapshotNodes =
    obs::Registry::global().counter("sync_snapshot_nodes_total");
const obs::Counter kSyncRollbacks =
    obs::Registry::global().counter("sync_rollback_nodes_total");
const obs::Counter kSyncUndos =
    obs::Registry::global().counter("sync_undo_total");
}  // namespace

SimultaneousEngine::SimultaneousEngine(Protocol& protocol)
    : protocol_(protocol) {
  protocol.collectArenas(arenas_);
  pre_.resize(arenas_.size());
  postData_.resize(arenas_.size());
}

void SimultaneousEngine::execute(std::span<const Move> moves) {
  SSNO_ASSERT(!moves.empty());
#ifndef NDEBUG
  for (std::size_t i = 1; i < moves.size(); ++i)
    SSNO_ASSERT(moves[i - 1].node < moves[i].node);  // node-ascending
#endif
  if (!protocol_.guardsAreNeighborhoodLocal()) {
    if (columnar()) {
#ifndef NDEBUG
      // Cross-check the write-logging path against the historical
      // full-configuration-snapshot pipeline, same pattern as below.
      const std::vector<int> preCheck = protocol_.rawConfiguration();
      executeLegacyFull(moves);
      const std::vector<int> expected = protocol_.rawConfiguration();
      protocol_.setRawConfiguration(preCheck);
#endif
      executeColumnarFull(moves);
#ifndef NDEBUG
      SSNO_ASSERT(protocol_.rawConfiguration() == expected);
#endif
    } else {
      executeLegacyFull(moves);
    }
    return;
  }
  if (!columnar()) {
    executeLegacyNeighborhood(moves);
    return;
  }
#ifndef NDEBUG
  // Cross-check: the columnar step must be bit-identical to the legacy
  // per-node-vector pipeline.  Run legacy first, note its post-step
  // configuration, rewind, then run the real (columnar) step.  The
  // rewind dirties everything, which only makes the consumer's next
  // refresh a full (still canonical) rebuild.
  const std::vector<int> preCheck = protocol_.rawConfiguration();
  executeLegacyNeighborhood(moves);
  const std::vector<int> expected = protocol_.rawConfiguration();
  protocol_.setRawConfiguration(preCheck);
#endif
  executeColumnar(moves);
#ifndef NDEBUG
  SSNO_ASSERT(protocol_.rawConfiguration() == expected);
#endif
}

void SimultaneousEngine::executeLegacy(std::span<const Move> moves) {
  SSNO_ASSERT(!moves.empty());
  if (!protocol_.guardsAreNeighborhoodLocal()) {
    executeLegacyFull(moves);
    return;
  }
  executeLegacyNeighborhood(moves);
}

void SimultaneousEngine::capturePost(NodeId p) {
  for (std::size_t a = 0; a < arenas_.size(); ++a) {
    postOff_.push_back(postData_[a].size());
    arenas_[a]->appendRawNode(p, postData_[a]);
  }
  captured_.push_back(p);
}

void SimultaneousEngine::restoreCapture(std::size_t ci) {
  const NodeId p = captured_[ci];
  const std::size_t arenaCount = arenas_.size();
  for (std::size_t a = 0; a < arenaCount; ++a) {
    const std::size_t start = postOff_[ci * arenaCount + a];
    const std::size_t end = ci + 1 < captured_.size()
                                ? postOff_[(ci + 1) * arenaCount + a]
                                : postData_[a].size();
    arenas_[a]->setRawNode(
        p, std::span<const int>(postData_[a]).subspan(start, end - start));
  }
}

void SimultaneousEngine::executeColumnar(std::span<const Move> moves) {
  const Graph& g = protocol_.graph();
  const std::size_t k = moves.size();
  const auto n = static_cast<std::size_t>(g.nodeCount());
  actors_.clear();
  for (const Move& m : moves) actors_.push_back(m.node);
  kSyncSteps.inc();
  const auto snapshotActors = [&] {
    for (std::size_t a = 0; a < arenas_.size(); ++a) {
      arenas_[a]->snapshotNodes(actors_, pre_[a]);
      postData_[a].clear();
    }
    postOff_.clear();
    captured_.clear();
    kSyncSnapshotNodes.inc(k);
  };
  // Batched fast path: the protocol executes the whole step itself with
  // two-phase compute/commit semantics (every move reads the pre-step
  // configuration), so no neighborhood rollbacks or post captures are
  // needed.  The actor snapshot exists only for undo() here — skipped
  // entirely when the owner opted out (see setUndoCapture); a false
  // return performed no writes, so snapshotting after the attempt is
  // still pre-step.
  if (undoCapture_) snapshotActors();
  protocol_.beginSimultaneousStep();
  if (protocol_.executeSimultaneousBatch(moves)) {
    protocol_.endSimultaneousStep();
    last_ = undoCapture_ ? Mode::kColumnar : Mode::kNone;
    return;
  }
  // Rollback path: pre_ is read for the neighborhood rollbacks, so the
  // snapshot is required regardless of undo capture.
  if (!undoCapture_) snapshotActors();
  if (actorBits_.size() != n) actorBits_.resize(n);
  if (actorSlot_.size() != n) actorSlot_.assign(n, -1);
  for (std::size_t j = 0; j < k; ++j) {
    actorBits_.set(static_cast<std::size_t>(actors_[j]));
    actorSlot_[static_cast<std::size_t>(actors_[j])] =
        static_cast<std::int32_t>(j);
  }
  capturedFlag_.assign(k, 0);
  for (std::size_t i = 0; i < k; ++i) {
    const NodeId p = moves[i].node;
    // Roll already-executed actors in N(p) back to their pre-step state
    // (ascending order makes "executed before p" just q < p; membership
    // is one bit probe).  The first rollback of an actor saves its post
    // state for the end-of-step re-apply.
    for (const NodeId q : g.neighbors(p)) {
      if (q < p && actorBits_.test(static_cast<std::size_t>(q))) {
        const auto j = static_cast<std::size_t>(
            actorSlot_[static_cast<std::size_t>(q)]);
        if (!capturedFlag_[j]) {
          capturedFlag_[j] = 1;
          capturePost(q);
        }
        for (std::size_t a = 0; a < arenas_.size(); ++a)
          arenas_[a]->restoreNode(j, q, pre_[a]);
      }
    }
    SSNO_DBG_ASSERT(protocol_.enabled(p, moves[i].action));
    protocol_.execute(p, moves[i].action);
  }
  // Every captured actor was rolled back after it executed and never
  // re-executed, so it currently holds its pre state: re-apply the post
  // captures.  Uncaptured actors already hold their post state.
  for (std::size_t ci = 0; ci < captured_.size(); ++ci) restoreCapture(ci);
  kSyncRollbacks.inc(captured_.size());
  protocol_.endSimultaneousStep();

  for (std::size_t j = 0; j < k; ++j) {
    actorBits_.clear(static_cast<std::size_t>(actors_[j]));
    actorSlot_[static_cast<std::size_t>(actors_[j])] = -1;
  }
  last_ = Mode::kColumnar;
}

void SimultaneousEngine::executeColumnarFull(std::span<const Move> moves) {
  // Non-neighborhood-local guards: every move must read the full
  // pre-step configuration.  Statements still write only their own
  // processor's variables, so it suffices to *write-log* the acting
  // set: snapshot the actors once, and after each move log the actor's
  // post state and put its pre state back — the configuration is
  // inductively pre-step before every execution — then re-apply the
  // logged post states at the end of the step.  Cost is O(k·state)
  // instead of the former O(n·columns) full-configuration snapshot
  // plus an O(n·columns) restore before every single move.
  const std::size_t k = moves.size();
  actors_.clear();
  for (const Move& m : moves) actors_.push_back(m.node);
  for (std::size_t a = 0; a < arenas_.size(); ++a) {
    arenas_[a]->snapshotNodes(actors_, pre_[a]);
    postData_[a].clear();
  }
  postOff_.clear();
  captured_.clear();
  kSyncSteps.inc();
  kSyncSnapshotNodes.inc(k);

  protocol_.beginSimultaneousStep();
  for (std::size_t j = 0; j < k; ++j) {
    const Move& m = moves[j];
    SSNO_DBG_ASSERT(protocol_.enabled(m.node, m.action));
    protocol_.execute(m.node, m.action);
    capturePost(m.node);
    for (std::size_t a = 0; a < arenas_.size(); ++a)
      arenas_[a]->restoreNode(j, m.node, pre_[a]);
  }
  for (std::size_t ci = 0; ci < captured_.size(); ++ci) restoreCapture(ci);
  kSyncRollbacks.inc(captured_.size());
  protocol_.endSimultaneousStep();
  last_ = Mode::kColumnar;  // undo() restores the actors from pre_
}

void SimultaneousEngine::executeLegacyNeighborhood(
    std::span<const Move> moves) {
  // The PR 4 pipeline, verbatim: per-actor rawNode/setRawNode vector
  // round-trips with immediate dirty notifications.
  const std::size_t k = moves.size();
  if (preVec_.size() < k) {
    preVec_.resize(k);
    postVec_.resize(k);
  }
  if (actingIndex_.size() !=
      static_cast<std::size_t>(protocol_.graph().nodeCount()))
    actingIndex_.assign(
        static_cast<std::size_t>(protocol_.graph().nodeCount()), -1);
  for (std::size_t i = 0; i < k; ++i) {
    preVec_[i] = protocol_.rawNode(moves[i].node);
    actingIndex_[static_cast<std::size_t>(moves[i].node)] =
        static_cast<int>(i);
  }
  for (std::size_t i = 0; i < k; ++i) {
    const NodeId p = moves[i].node;
    for (const NodeId q : protocol_.graph().neighbors(p)) {
      const int j = actingIndex_[static_cast<std::size_t>(q)];
      if (j >= 0 && static_cast<std::size_t>(j) < i)
        protocol_.setRawNode(q, preVec_[static_cast<std::size_t>(j)]);
    }
    SSNO_DBG_ASSERT(protocol_.enabled(p, moves[i].action));
    protocol_.execute(p, moves[i].action);
    postVec_[i] = protocol_.rawNode(p);
  }
  for (std::size_t i = 0; i < k; ++i) {
    protocol_.setRawNode(moves[i].node, postVec_[i]);
    actingIndex_[static_cast<std::size_t>(moves[i].node)] = -1;
  }
  lastMoves_.assign(moves.begin(), moves.end());
  last_ = Mode::kLegacy;
}

void SimultaneousEngine::executeLegacyFull(std::span<const Move> moves) {
  // Full-configuration snapshots through the raw-vector API; the post
  // states live in one reused flat buffer (postOff_ records extents)
  // instead of a fresh vector<vector<int>> per step.
  preConfig_ = protocol_.rawConfiguration();
  std::vector<int>& post = postFlat_;
  post.clear();
  postOff_.clear();
  for (const Move& m : moves) {
    protocol_.setRawConfiguration(preConfig_);
    SSNO_DBG_ASSERT(protocol_.enabled(m.node, m.action));
    protocol_.execute(m.node, m.action);
    postOff_.push_back(post.size());
    const std::vector<int> node = protocol_.rawNode(m.node);
    post.insert(post.end(), node.begin(), node.end());
  }
  postOff_.push_back(post.size());
  protocol_.setRawConfiguration(preConfig_);
  for (std::size_t i = 0; i < moves.size(); ++i) {
    protocol_.setRawNode(
        moves[i].node,
        std::span<const int>(post).subspan(postOff_[i],
                                           postOff_[i + 1] - postOff_[i]));
  }
  last_ = Mode::kLegacyFull;
}

void SimultaneousEngine::undo() {
  kSyncUndos.inc();
  switch (last_) {
    case Mode::kColumnar:
      // Covers the neighborhood-local, batched, and full-configuration
      // columnar paths alike: statements write only their own
      // processor's variables, so restoring the acting set from pre_
      // rewinds the whole step.
      for (std::size_t a = 0; a < arenas_.size(); ++a)
        arenas_[a]->restoreNodes(actors_, pre_[a]);
      for (const NodeId p : actors_) protocol_.noteExternalWrite(p);
      break;
    case Mode::kLegacy:
      for (std::size_t i = 0; i < lastMoves_.size(); ++i)
        protocol_.setRawNode(lastMoves_[i].node, preVec_[i]);
      break;
    case Mode::kLegacyFull:
      protocol_.setRawConfiguration(preConfig_);
      break;
    case Mode::kNone:
      SSNO_ASSERT(false);
      break;
  }
  last_ = Mode::kNone;
}

}  // namespace ssno
