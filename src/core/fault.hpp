// Transient-fault injection (paper §1.2: self-stabilization as the
// unified fault-tolerance approach — the system must recover from *any*
// state, so faults are modeled as adversarial writes to process memory),
// plus fault-impact bookkeeping driven by the EnabledCache's
// status-change feed.
#ifndef SSNO_CORE_FAULT_HPP
#define SSNO_CORE_FAULT_HPP

#include <span>
#include <vector>

#include "core/bitwords.hpp"
#include "core/enabled_view.hpp"
#include "core/protocol.hpp"
#include "core/rng.hpp"

namespace ssno {

class FaultInjector {
 public:
  explicit FaultInjector(Protocol& protocol) : protocol_(protocol) {}

  /// Sets every processor to a uniformly random local state — the
  /// "arbitrary initial configuration" of Definition 2.1.2.
  void scrambleAll(Rng& rng) { protocol_.randomize(rng); }

  /// Corrupts exactly k distinct processors chosen uniformly; returns the
  /// victims SORTED ascending (for deterministic reporting — the
  /// corruption itself happens in selection order so RNG streams are
  /// unchanged).  Throws std::invalid_argument when k < 0 or k > n.
  std::vector<NodeId> corruptK(int k, Rng& rng);

  /// Corrupts one given processor.
  void corruptNode(NodeId p, Rng& rng) { protocol_.randomizeNode(p, rng); }

  /// Simulates a crash-and-reset of processor p: local state is set to the
  /// all-zero (freshly booted) local state, which is *not* necessarily
  /// consistent with the neighbors — recovery is the protocol's job.
  void crashReset(NodeId p) { protocol_.decodeNode(p, 0); }

 private:
  Protocol& protocol_;
};

/// Fault-impact bookkeeping off the enabled-status change feed.
///
/// After an injected fault, the *disturbance footprint* — which
/// processors were ever activated while recovery ran — measures fault
/// containment.  The historical way to track it walked the enabled
/// move list every step (O(#enabled) per step); this tracker instead
/// consumes the Simulator's status observer (EnabledCache status-change
/// feed), so steady-state maintenance is O(#status flips) per step.
/// tests/status_feed_test.cpp pins bit-identity against the old walk.
///
/// Wire it up with:
///   sim.setStatusObserver([&](auto ch, bool inv, const EnabledView& v) {
///     tracker.onStatusChanges(ch, inv, v);
///   });
class FaultImpactTracker {
 public:
  explicit FaultImpactTracker(int nodeCount)
      : enabled_(static_cast<std::size_t>(nodeCount)),
        ever_(static_cast<std::size_t>(nodeCount)) {}

  /// Simulator::StatusObserver entry point.  A full invalidation
  /// resynchronizes from the view; otherwise only flipped nodes are
  /// touched (feed entries may contain duplicates — updates are
  /// idempotent).
  void onStatusChanges(std::span<const NodeId> changed, bool fullInvalidate,
                       const EnabledView& now) {
    if (fullInvalidate) {
      enabled_.reset();
      now.forEachNode([this](NodeId p) {
        enabled_.set(static_cast<std::size_t>(p));
        ever_.set(static_cast<std::size_t>(p));
      });
      return;
    }
    for (const NodeId p : changed) {
      if (now.anyEnabled(p)) {
        enabled_.set(static_cast<std::size_t>(p));
        ever_.set(static_cast<std::size_t>(p));
      } else {
        enabled_.clear(static_cast<std::size_t>(p));
      }
    }
  }

  /// Processors enabled after the last observed step.
  [[nodiscard]] const bits::WordBitset& enabledNow() const {
    return enabled_;
  }
  /// Processors ever enabled since the last resetFootprint().
  [[nodiscard]] const bits::WordBitset& footprint() const { return ever_; }
  [[nodiscard]] std::size_t enabledCount() const { return enabled_.count(); }
  [[nodiscard]] std::size_t footprintCount() const { return ever_.count(); }

  /// Starts a fresh footprint measurement (typically right after an
  /// injection); currently enabled processors re-enter it immediately.
  void resetFootprint() {
    ever_.reset();
    for (std::size_t w = 0; w < enabled_.wordCount(); ++w)
      if (enabled_.words()[w] != 0) orWordInto(w);
  }

 private:
  void orWordInto(std::size_t w) {
    // WordBitset exposes read-only words; set bit by bit (rare path).
    std::uint64_t bits = enabled_.words()[w];
    while (bits != 0) {
      const int b = bits::lowestBit(bits);
      bits &= bits - 1;
      ever_.set(w * bits::kWordBits + static_cast<std::size_t>(b));
    }
  }

  bits::WordBitset enabled_;
  bits::WordBitset ever_;
};

}  // namespace ssno

#endif  // SSNO_CORE_FAULT_HPP
