// Transient-fault injection (paper §1.2: self-stabilization as the
// unified fault-tolerance approach — the system must recover from *any*
// state, so faults are modeled as adversarial writes to process memory).
#ifndef SSNO_CORE_FAULT_HPP
#define SSNO_CORE_FAULT_HPP

#include <vector>

#include "core/protocol.hpp"
#include "core/rng.hpp"

namespace ssno {

class FaultInjector {
 public:
  explicit FaultInjector(Protocol& protocol) : protocol_(protocol) {}

  /// Sets every processor to a uniformly random local state — the
  /// "arbitrary initial configuration" of Definition 2.1.2.
  void scrambleAll(Rng& rng) { protocol_.randomize(rng); }

  /// Corrupts exactly k distinct processors chosen uniformly; returns the
  /// victims (for fault-containment measurements).
  std::vector<NodeId> corruptK(int k, Rng& rng);

  /// Corrupts one given processor.
  void corruptNode(NodeId p, Rng& rng) { protocol_.randomizeNode(p, rng); }

  /// Simulates a crash-and-reset of processor p: local state is set to the
  /// all-zero (freshly booted) local state, which is *not* necessarily
  /// consistent with the neighbors — recovery is the protocol's job.
  void crashReset(NodeId p) { protocol_.decodeNode(p, 0); }

 private:
  Protocol& protocol_;
};

}  // namespace ssno

#endif  // SSNO_CORE_FAULT_HPP
