// Common scalar types used across the library.
#ifndef SSNO_CORE_TYPES_HPP
#define SSNO_CORE_TYPES_HPP

#include <cstdint>

namespace ssno {

/// Identifier of a processor (index into the Graph's node array).
using NodeId = int;

/// Local port number at a processor: index into its adjacency list.
/// Ports give each processor a stable, local ordering of its incident
/// links; the deterministic DFS order of the token circulation and the
/// child ordering of STNO's Distribute macro are both port order.
using Port = int;

/// Number of individual processor actions executed (paper: "steps").
using StepCount = std::int64_t;

inline constexpr NodeId kNoNode = -1;
inline constexpr Port kNoPort = -1;

}  // namespace ssno

#endif  // SSNO_CORE_TYPES_HPP
