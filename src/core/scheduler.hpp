// Simulator: drives a Protocol under a Daemon and accounts for cost.
//
// Cost metrics:
//  * moves  — individual processor actions executed (the paper's "steps";
//             complexity bounds O(n), O(h) are stated in these units),
//  * steps  — computation steps of the daemon (a step may contain several
//             simultaneous moves under the distributed/synchronous daemon),
//  * rounds — asynchronous rounds: a round ends once every processor that
//             was continuously enabled since the round began has executed
//             or been neutralized (the standard measure of time in
//             self-stabilization).
//
// Simultaneous moves follow the shared-memory distributed-daemon
// semantics: all guards and statement right-hand sides are evaluated
// against the configuration at the beginning of the step.
#ifndef SSNO_CORE_SCHEDULER_HPP
#define SSNO_CORE_SCHEDULER_HPP

#include <functional>
#include <vector>

#include "core/daemon.hpp"
#include "core/protocol.hpp"
#include "core/rng.hpp"
#include "core/types.hpp"

namespace ssno {

struct RunStats {
  StepCount moves = 0;
  StepCount steps = 0;
  StepCount rounds = 0;
  bool converged = false;   ///< predicate became true within the budget
  bool terminal = false;    ///< reached a configuration with no enabled move
};

class Simulator {
 public:
  using Predicate = std::function<bool()>;
  /// Observer invoked after every executed move (for traces/statistics).
  using MoveObserver = std::function<void(const Move&)>;

  Simulator(Protocol& protocol, Daemon& daemon, Rng& rng)
      : protocol_(protocol), daemon_(daemon), rng_(rng) {}

  /// Runs until `goal` holds (checked before every step), the protocol is
  /// terminal, or `maxMoves` moves have executed.
  RunStats runUntil(const Predicate& goal, StepCount maxMoves);

  /// Runs until no action is enabled (silent protocols) or budget spent.
  RunStats runToQuiescence(StepCount maxMoves);

  /// Executes exactly one daemon step (if any move is enabled).
  /// Returns the moves executed.
  std::vector<Move> stepOnce();

  void setMoveObserver(MoveObserver obs) { observer_ = std::move(obs); }

 private:
  void executeSimultaneously(const std::vector<Move>& moves);
  void accountRound(const std::vector<Move>& executed);

  Protocol& protocol_;
  Daemon& daemon_;
  Rng& rng_;
  MoveObserver observer_;

  // Round bookkeeping.
  std::vector<bool> pending_;  // processors owing a move this round
  bool roundActive_ = false;
  StepCount roundsDone_ = 0;
};

}  // namespace ssno

#endif  // SSNO_CORE_SCHEDULER_HPP
