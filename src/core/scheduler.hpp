// Simulator: drives a Protocol under a Daemon and accounts for cost.
//
// Cost metrics:
//  * moves  — individual processor actions executed (the paper's "steps";
//             complexity bounds O(n), O(h) are stated in these units),
//  * steps  — computation steps of the daemon (a step may contain several
//             simultaneous moves under the distributed/synchronous daemon),
//  * rounds — asynchronous rounds: a round ends once every processor that
//             was continuously enabled since the round began has executed
//             or been neutralized (the standard measure of time in
//             self-stabilization).
//
// Simultaneous moves follow the shared-memory distributed-daemon
// semantics: all guards and statement right-hand sides are evaluated
// against the configuration at the beginning of the step — executed by
// the columnar SimultaneousEngine (core/sync_engine): column-batched
// snapshot/restore over the protocol's StateArena columns plus one
// deferred, deduplicated dirty pass per step.  setLegacySimultaneous
// restores the per-node-vector pipeline for before/after benchmarking;
// Debug builds cross-check the columnar post-step configuration against
// it on every step.
//
// Hot path: the simulator maintains the enabled-move set incrementally
// (EnabledCache over the Protocol's dirty notifications) and hands the
// daemon the cache's bitmask EnabledView directly — no O(#enabled) move
// vector is materialized per step, and all buffers are reused, so
// steady-state stepping evaluates only the guards a move could have
// changed and performs no heap allocations.  In debug builds every
// selection is cross-checked for bit-identity against the legacy
// materialized-vector path (cloned daemon + cloned RNG).  A Simulator
// must be the only driver of its Protocol while in use; state writes
// from outside a step (fault injection, restores in goal predicates)
// are picked up through the dirtying API.
#ifndef SSNO_CORE_SCHEDULER_HPP
#define SSNO_CORE_SCHEDULER_HPP

#include <functional>
#include <span>
#include <vector>

#include "core/daemon.hpp"
#include "core/enabled_cache.hpp"
#include "core/protocol.hpp"
#include "core/rng.hpp"
#include "core/sync_engine.hpp"
#include "core/types.hpp"

namespace ssno {

struct RunStats {
  StepCount moves = 0;
  StepCount steps = 0;
  StepCount rounds = 0;
  bool converged = false;   ///< predicate became true within the budget
  bool terminal = false;    ///< reached a configuration with no enabled move
};

class Simulator {
 public:
  using Predicate = std::function<bool()>;
  /// Observer invoked after every executed move (for traces/statistics).
  using MoveObserver = std::function<void(const Move&)>;
  /// Observer of the post-step enabled-status change feed: called once
  /// per step with the nodes whose ANY-action-enabled status may have
  /// flipped (may contain duplicates), whether the cache was fully
  /// rebuilt since the last step (the list is meaningless then — resync
  /// from the view), and the post-step view.  Consumers (fault-impact
  /// tracking, status traces) react to O(#changed) nodes instead of
  /// walking the move list every step.
  using StatusObserver = std::function<void(
      std::span<const NodeId>, bool fullInvalidate, const EnabledView&)>;

  Simulator(Protocol& protocol, Daemon& daemon, Rng& rng)
      : protocol_(protocol),
        daemon_(daemon),
        rng_(rng),
        cache_(protocol),
        engine_(protocol) {
    // Round accounting consumes the cache's status-change feed so
    // neutralization is O(#changed) per step instead of O(#pending).
    cache_.setTrackStatusChanges(true);
    // The Simulator never exposes the engine's undo(), so the batched
    // fast path need not keep a pre-step actor snapshot per dense step.
    engine_.setUndoCapture(false);
  }

  ~Simulator() { flushStats(); }

  /// Publishes batched step/move telemetry (and the cache's) to the obs
  /// registry.  Per-step counts accumulate in plain members — even a
  /// relaxed atomic per step is a measurable fraction of a 3M moves/s
  /// loop — and flush every ~1K steps, at the end of every run, and at
  /// destruction, so live introspection lags by at most the batch.
  void flushStats();

  /// Runs until `goal` holds (checked before every step), the protocol is
  /// terminal, or `maxMoves` moves have executed.
  RunStats runUntil(const Predicate& goal, StepCount maxMoves);

  /// Runs until no action is enabled (silent protocols) or budget spent.
  RunStats runToQuiescence(StepCount maxMoves);

  /// Executes exactly one daemon step (if any move is enabled).
  /// Returns the moves executed (a reference to an internal buffer,
  /// valid until the next step).
  const std::vector<Move>& stepOnce();

  /// Rounds completed since construction / the last resetRound() (the
  /// same counter runUntil reports).  Lets step-at-a-time drivers — the
  /// resilience campaign runner firing fault-plan events at round
  /// boundaries — read round progress without finishing a run.
  [[nodiscard]] StepCount roundsSoFar() const { return roundsDone_; }

  void setMoveObserver(MoveObserver obs) { observer_ = std::move(obs); }
  void setStatusObserver(StatusObserver obs) {
    statusObserver_ = std::move(obs);
  }

  /// Forces a full naive enabled-set rescan every step instead of the
  /// incremental cache, and selection over the materialized vector
  /// (the pre-PR-2 behavior; equivalence testing, before/after benches).
  void setNaiveEnabledScan(bool naive) {
    cache_.setForceNaive(naive);
    naiveScan_ = naive;
  }

  /// Keeps the incremental cache but feeds daemons the materialized
  /// node-major move vector via Daemon::legacySelect — the PR-3-era
  /// pipeline, the "before" side of the bitmask-selection benchmark.
  void setLegacyVectorSelect(bool legacy) { legacySelect_ = legacy; }

  /// Runs simultaneous steps through the PR-4-era per-node-vector
  /// snapshot/restore pipeline with immediate dirtying instead of the
  /// columnar engine — the "before" side of the sync_speedup benchmark.
  /// (Naive-scan mode implies this, matching the historical stack.)
  void setLegacySimultaneous(bool legacy) { legacySim_ = legacy; }

  /// Evaluates guards through the scalar virtual enabled() loop instead
  /// of the protocol's batch evaluateGuards kernels — the pre-batch-
  /// kernel refresh path (equivalence testing, before/after benches).
  void setScalarGuardEval(bool scalar) { cache_.setScalarGuardEval(scalar); }

 private:
  void executeSimultaneously(const std::vector<Move>& moves);
  void accountRound(const std::vector<Move>& executed);
  void resetRound();

  Protocol& protocol_;
  Daemon& daemon_;
  Rng& rng_;
  EnabledCache cache_;
  SimultaneousEngine engine_;
  MoveObserver observer_;
  StatusObserver statusObserver_;
  bool naiveScan_ = false;     // naive rescans imply vector selection
  bool legacySelect_ = false;  // vector selection on the incremental cache
  bool legacySim_ = false;     // per-node-vector simultaneous steps

  // Reused buffers (no allocations in steady state).
  std::vector<Move> selected_;

  // Round bookkeeping.  Invariant between calls: every processor with
  // pending_ set appears in pendingList_ (the list may additionally
  // hold already-served entries — it is only compacted on full cache
  // invalidations and cleared at round end); pendingCount_ counts the
  // set flags (zero when !roundActive_).
  std::vector<bool> pending_;         // processors owing a move this round
  std::vector<NodeId> pendingList_;   // marked this round, in mark order
  std::size_t pendingCount_ = 0;
  bool roundActive_ = false;
  StepCount roundsDone_ = 0;

  // Telemetry accumulators (flushed to obs counters by flushStats()).
  std::uint64_t statSteps_ = 0;
  std::uint64_t statMoves_ = 0;
};

}  // namespace ssno

#endif  // SSNO_CORE_SCHEDULER_HPP
