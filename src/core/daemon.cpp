#include "core/daemon.hpp"

#include <algorithm>

#include "core/assert.hpp"
#include "core/bitwords.hpp"

namespace ssno {

void Daemon::onePerNode(std::span<const Move> enabled, Rng& rng,
                        std::vector<Move>& out) {
  // Reservoir-sample one action per node so that every enabled action has
  // equal probability of representing its processor.  Node-major input
  // means one contiguous run per node; draws happen in input order, the
  // same sequence the historical map-based implementation produced.
  out.clear();
  for (std::size_t i = 0; i < enabled.size();) {
    const NodeId node = enabled[i].node;
    Move chosen = enabled[i];
    int k = 1;
    for (++i; i < enabled.size() && enabled[i].node == node; ++i)
      if (rng.below(++k) == 0) chosen = enabled[i];
    out.push_back(chosen);
  }
}

void Daemon::onePerNode(const EnabledView& enabled, Rng& rng,
                        std::vector<Move>& out) {
  // Same reservoir, driven by the masks: ascending nodes via word skips,
  // ascending actions via bit extraction — the identical draw sequence.
  out.clear();
  enabled.forEachNode([&](NodeId p) {
    std::uint64_t mask = enabled.actionMask(p);
    Move chosen{p, bits::lowestBit(mask)};
    mask &= mask - 1;
    int k = 1;
    while (mask != 0) {
      const int a = bits::lowestBit(mask);
      mask &= mask - 1;
      if (rng.below(++k) == 0) chosen = Move{p, a};
    }
    out.push_back(chosen);
  });
}

void CentralDaemon::selectInto(const EnabledView& enabled, Rng& rng,
                               std::vector<Move>& out) {
  SSNO_EXPECTS(!enabled.empty());
  out.clear();
  out.push_back(enabled.kthMove(rng.below(enabled.moveCount())));
}

void CentralDaemon::legacySelect(std::span<const Move> enabled, Rng& rng,
                                 std::vector<Move>& out) {
  SSNO_EXPECTS(!enabled.empty());
  out.clear();
  out.push_back(enabled[static_cast<std::size_t>(
      rng.below(static_cast<int>(enabled.size())))]);
}

void DistributedDaemon::pickSubset(Rng& rng, std::vector<Move>& out) {
  out.clear();
  for (const Move& m : perNode_)
    if (rng.chance(0.5)) out.push_back(m);
  if (out.empty())
    out.push_back(perNode_[static_cast<std::size_t>(
        rng.below(static_cast<int>(perNode_.size())))]);
}

void DistributedDaemon::selectInto(const EnabledView& enabled, Rng& rng,
                                   std::vector<Move>& out) {
  SSNO_EXPECTS(!enabled.empty());
  onePerNode(enabled, rng, perNode_);
  pickSubset(rng, out);
}

void DistributedDaemon::legacySelect(std::span<const Move> enabled, Rng& rng,
                                     std::vector<Move>& out) {
  SSNO_EXPECTS(!enabled.empty());
  onePerNode(enabled, rng, perNode_);
  pickSubset(rng, out);
}

void SynchronousDaemon::selectInto(const EnabledView& enabled, Rng& rng,
                                   std::vector<Move>& out) {
  SSNO_EXPECTS(!enabled.empty());
  onePerNode(enabled, rng, out);
}

void SynchronousDaemon::legacySelect(std::span<const Move> enabled, Rng& rng,
                                     std::vector<Move>& out) {
  SSNO_EXPECTS(!enabled.empty());
  onePerNode(enabled, rng, out);
}

void RoundRobinDaemon::selectInto(const EnabledView& enabled, Rng& /*rng*/,
                                  std::vector<Move>& out) {
  SSNO_EXPECTS(!enabled.empty());
  // The cyclic successor of the last served pair: mask arithmetic on
  // last_.node, then a word-skip to the next enabled node — no scan of
  // the enabled set.
  last_ = enabled.nextPairAfter(last_);
  out.clear();
  out.push_back(last_);
}

void RoundRobinDaemon::legacySelect(std::span<const Move> enabled,
                                    Rng& /*rng*/, std::vector<Move>& out) {
  SSNO_EXPECTS(!enabled.empty());
  // Serve the enabled (node, action) pair that follows the last served
  // pair in cyclic lexicographic order: every continuously enabled pair
  // is reached within one sweep (weak fairness at action granularity).
  auto follows = [this](const Move& m) {
    return m.node > last_.node ||
           (m.node == last_.node && m.action > last_.action);
  };
  auto lexLess = [](const Move& a, const Move& b) {
    return a.node < b.node || (a.node == b.node && a.action < b.action);
  };
  const Move* best = nullptr;
  const Move* wrap = nullptr;  // smallest pair overall (used on wrap-around)
  for (const Move& m : enabled) {
    if (follows(m) && (best == nullptr || lexLess(m, *best))) best = &m;
    if (wrap == nullptr || lexLess(m, *wrap)) wrap = &m;
  }
  if (best == nullptr) best = wrap;
  last_ = *best;
  out.clear();
  out.push_back(*best);
}

void AdversarialDaemon::selectInto(const EnabledView& enabled, Rng& /*rng*/,
                                   std::vector<Move>& out) {
  SSNO_EXPECTS(!enabled.empty());
  out.clear();
  out.push_back(enabled.firstMove());
}

void AdversarialDaemon::legacySelect(std::span<const Move> enabled,
                                     Rng& /*rng*/, std::vector<Move>& out) {
  SSNO_EXPECTS(!enabled.empty());
  const Move* best = &enabled.front();
  for (const Move& m : enabled)
    if (m.node < best->node ||
        (m.node == best->node && m.action < best->action))
      best = &m;
  out.clear();
  out.push_back(*best);
}

std::unique_ptr<Daemon> makeDaemon(DaemonKind kind) {
  switch (kind) {
    case DaemonKind::kCentral:
      return std::make_unique<CentralDaemon>();
    case DaemonKind::kDistributed:
      return std::make_unique<DistributedDaemon>();
    case DaemonKind::kSynchronous:
      return std::make_unique<SynchronousDaemon>();
    case DaemonKind::kRoundRobin:
      return std::make_unique<RoundRobinDaemon>();
    case DaemonKind::kAdversarial:
      return std::make_unique<AdversarialDaemon>();
  }
  SSNO_ASSERT(false);
  return nullptr;
}

std::string daemonKindName(DaemonKind kind) {
  return makeDaemon(kind)->name();
}

}  // namespace ssno
