#include "core/daemon.hpp"

#include <algorithm>
#include <map>

#include "core/assert.hpp"

namespace ssno {

std::vector<Move> Daemon::onePerNode(const std::vector<Move>& enabled,
                                     Rng& rng) {
  // Reservoir-sample one action per node so that every enabled action has
  // equal probability of representing its processor.
  std::map<NodeId, Move> chosen;
  std::map<NodeId, int> seen;
  for (const Move& m : enabled) {
    const int k = ++seen[m.node];
    if (k == 1 || rng.below(k) == 0) chosen[m.node] = m;
  }
  std::vector<Move> out;
  out.reserve(chosen.size());
  for (const auto& [node, move] : chosen) out.push_back(move);
  return out;
}

std::vector<Move> CentralDaemon::select(const std::vector<Move>& enabled,
                                        Rng& rng) {
  SSNO_EXPECTS(!enabled.empty());
  return {enabled[static_cast<std::size_t>(
      rng.below(static_cast<int>(enabled.size())))]};
}

std::vector<Move> DistributedDaemon::select(const std::vector<Move>& enabled,
                                            Rng& rng) {
  SSNO_EXPECTS(!enabled.empty());
  std::vector<Move> perNode = onePerNode(enabled, rng);
  std::vector<Move> out;
  for (const Move& m : perNode)
    if (rng.chance(0.5)) out.push_back(m);
  if (out.empty())
    out.push_back(perNode[static_cast<std::size_t>(
        rng.below(static_cast<int>(perNode.size())))]);
  return out;
}

std::vector<Move> SynchronousDaemon::select(const std::vector<Move>& enabled,
                                            Rng& rng) {
  SSNO_EXPECTS(!enabled.empty());
  return onePerNode(enabled, rng);
}

std::vector<Move> RoundRobinDaemon::select(const std::vector<Move>& enabled,
                                           Rng& /*rng*/) {
  SSNO_EXPECTS(!enabled.empty());
  // Serve the enabled (node, action) pair that follows the last served
  // pair in cyclic lexicographic order: every continuously enabled pair
  // is reached within one sweep (weak fairness at action granularity).
  auto follows = [this](const Move& m) {
    return m.node > last_.node ||
           (m.node == last_.node && m.action > last_.action);
  };
  auto lexLess = [](const Move& a, const Move& b) {
    return a.node < b.node || (a.node == b.node && a.action < b.action);
  };
  const Move* best = nullptr;
  const Move* wrap = nullptr;  // smallest pair overall (used on wrap-around)
  for (const Move& m : enabled) {
    if (follows(m) && (best == nullptr || lexLess(m, *best))) best = &m;
    if (wrap == nullptr || lexLess(m, *wrap)) wrap = &m;
  }
  if (best == nullptr) best = wrap;
  last_ = *best;
  return {*best};
}

std::vector<Move> AdversarialDaemon::select(const std::vector<Move>& enabled,
                                            Rng& /*rng*/) {
  SSNO_EXPECTS(!enabled.empty());
  const Move* best = &enabled.front();
  for (const Move& m : enabled)
    if (m.node < best->node ||
        (m.node == best->node && m.action < best->action))
      best = &m;
  return {*best};
}

std::unique_ptr<Daemon> makeDaemon(DaemonKind kind) {
  switch (kind) {
    case DaemonKind::kCentral:
      return std::make_unique<CentralDaemon>();
    case DaemonKind::kDistributed:
      return std::make_unique<DistributedDaemon>();
    case DaemonKind::kSynchronous:
      return std::make_unique<SynchronousDaemon>();
    case DaemonKind::kRoundRobin:
      return std::make_unique<RoundRobinDaemon>();
    case DaemonKind::kAdversarial:
      return std::make_unique<AdversarialDaemon>();
  }
  SSNO_ASSERT(false);
  return nullptr;
}

std::string daemonKindName(DaemonKind kind) {
  return makeDaemon(kind)->name();
}

}  // namespace ssno
