#include "core/enabled_cache.hpp"

#include <algorithm>

#include "core/assert.hpp"

namespace ssno {

EnabledCache::EnabledCache(Protocol& protocol)
    : protocol_(protocol), actions_(protocol.actionCount()) {
  SSNO_EXPECTS(actions_ >= 1 && actions_ <= 64);
  mask_.assign(static_cast<std::size_t>(protocol_.graph().nodeCount()), 0);
}

std::uint64_t EnabledCache::guardMask(NodeId p) const {
  std::uint64_t mask = 0;
  for (int a = 0; a < actions_; ++a)
    if (protocol_.enabled(p, a)) mask |= (std::uint64_t{1} << a);
  return mask;
}

void EnabledCache::rebuildAll() {
  enabledNodes_.clear();
  for (NodeId p = 0; p < protocol_.graph().nodeCount(); ++p) {
    const std::uint64_t mask = guardMask(p);
    mask_[static_cast<std::size_t>(p)] = mask;
    if (mask != 0) enabledNodes_.push_back(p);
  }
  movesStale_ = true;
}

void EnabledCache::updateNode(NodeId p) {
  const std::uint64_t mask = guardMask(p);
  auto& cached = mask_[static_cast<std::size_t>(p)];
  if (mask == cached) return;
  const bool was = cached != 0;
  const bool is = mask != 0;
  cached = mask;
  if (was != is) {
    const auto it =
        std::lower_bound(enabledNodes_.begin(), enabledNodes_.end(), p);
    if (is)
      enabledNodes_.insert(it, p);
    else
      enabledNodes_.erase(it);
  }
  movesStale_ = true;
}

const std::vector<Move>& EnabledCache::refresh() {
  if (force_naive_) {
    protocol_.clearDirty();
    primed_ = false;  // a later incremental refresh must rescan
    moves_.clear();
    for (NodeId p = 0; p < protocol_.graph().nodeCount(); ++p)
      for (int a = 0; a < actions_; ++a)
        if (protocol_.enabled(p, a)) moves_.push_back(Move{p, a});
    return moves_;
  }
  if (!primed_ || protocol_.allDirty()) {
    rebuildAll();
    primed_ = true;
  } else {
    for (NodeId p : protocol_.dirtyNodes()) updateNode(p);
  }
  protocol_.clearDirty();
  if (movesStale_) {
    moves_.clear();
    for (NodeId p : enabledNodes_) {
      std::uint64_t mask = mask_[static_cast<std::size_t>(p)];
      for (int a = 0; mask != 0; ++a, mask >>= 1)
        if (mask & 1) moves_.push_back(Move{p, a});
    }
    movesStale_ = false;
  }
#ifndef NDEBUG
  // Cross-check: the incremental set must be bit-identical to the scan.
  SSNO_ASSERT(moves_ == protocol_.enabledMoves());
#endif
  return moves_;
}

}  // namespace ssno
