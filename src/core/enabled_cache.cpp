#include "core/enabled_cache.hpp"

#include <algorithm>

#include "core/assert.hpp"
#include "obs/metrics.hpp"

namespace ssno {

namespace {
// Registry handles touched only by flushStats(): per-refresh telemetry
// accumulates in plain EnabledCache members (even a relaxed atomic per
// working refresh is a measurable fraction of a 3M moves/s hot loop)
// and is published in batches of kStatFlushRefreshes.
const obs::Counter kGuardRefreshes =
    obs::Registry::global().counter("sim_guard_refresh_total");
const obs::Counter kGuardEvals =
    obs::Registry::global().counter("sim_guard_evals_total");
const obs::Counter kCacheRebuilds =
    obs::Registry::global().counter("sim_cache_rebuilds_total");
constexpr std::uint64_t kStatFlushRefreshes = 1024;
}  // namespace

void EnabledCache::flushStats() {
  if (statRefreshes_) kGuardRefreshes.inc(statRefreshes_);
  if (statRebuilds_) kCacheRebuilds.inc(statRebuilds_);
  if (statEvals_) kGuardEvals.inc(statEvals_);
  statRefreshes_ = statRebuilds_ = statEvals_ = 0;
}

EnabledCache::EnabledCache(Protocol& protocol)
    : protocol_(protocol),
      n_(protocol.graph().nodeCount()),
      actions_(protocol.actionCount()) {
  SSNO_EXPECTS(actions_ >= 1 && actions_ <= 64);
  mask_.assign(static_cast<std::size_t>(n_), 0);
  nodeBits_.resize(static_cast<std::size_t>(n_));
  fen_.assign(static_cast<std::size_t>(n_) + 1, 0);
  fenTop_ = 1;
  while (fenTop_ * 2 <= n_) fenTop_ *= 2;
  makeView();
}

std::uint64_t EnabledCache::guardMask(NodeId p) const {
  std::uint64_t mask = 0;
  for (int a = 0; a < actions_; ++a)
    if (protocol_.enabled(p, a)) mask |= (std::uint64_t{1} << a);
  return mask;
}

void EnabledCache::evaluateBatch(std::span<const NodeId> nodes,
                                 std::uint64_t* masks) {
  if (scalar_guard_eval_) {
    for (std::size_t i = 0; i < nodes.size(); ++i)
      masks[i] = guardMask(nodes[i]);
    return;
  }
  protocol_.evaluateGuards(nodes, masks);
#ifndef NDEBUG
  // Cross-check: a protocol's batch kernel must be bit-identical to the
  // scalar virtual path (same pattern as the incremental-vs-naive view
  // cross-check in refreshView).
  for (std::size_t i = 0; i < nodes.size(); ++i)
    SSNO_ASSERT(masks[i] == guardMask(nodes[i]));
#endif
}

void EnabledCache::rebuildFenwick() {
  // Linear build: seed each slot with its node's move count, then fold
  // every slot into its Fenwick parent.
  for (NodeId p = 0; p < n_; ++p)
    fen_[static_cast<std::size_t>(p) + 1] =
        bits::popcount(mask_[static_cast<std::size_t>(p)]);
  for (int i = 1; i <= n_; ++i) {
    const int j = i + (i & -i);
    if (j <= n_) fen_[static_cast<std::size_t>(j)] +=
        fen_[static_cast<std::size_t>(i)];
  }
}

void EnabledCache::fenwickAdd(NodeId p, int delta) {
  for (int i = p + 1; i <= n_; i += i & -i)
    fen_[static_cast<std::size_t>(i)] += delta;
}

void EnabledCache::rebuildAll() {
  statEvals_ += static_cast<std::uint64_t>(n_) *
                static_cast<std::uint64_t>(actions_);
  if (++statRebuilds_ >= kStatFlushRefreshes) flushStats();
  if (track_changes_) {
    full_invalidate_ = true;
    changed_.clear();
  }
  nodeBits_.reset();
  moveCount_ = 0;
  nodeCount_ = 0;
  // Full rescans batch the identity node list straight into mask_ —
  // one evaluateGuards call instead of n virtual guardMask loops.
  if (allNodes_.empty() && n_ > 0) {
    allNodes_.resize(static_cast<std::size_t>(n_));
    for (NodeId p = 0; p < n_; ++p)
      allNodes_[static_cast<std::size_t>(p)] = p;
  }
  evaluateBatch(allNodes_, mask_.data());
  for (NodeId p = 0; p < n_; ++p) {
    const std::uint64_t mask = mask_[static_cast<std::size_t>(p)];
    if (mask != 0) {
      nodeBits_.set(static_cast<std::size_t>(p));
      ++nodeCount_;
      moveCount_ += bits::popcount(mask);
    }
  }
  rebuildFenwick();
  movesStale_ = true;
}

void EnabledCache::applyMask(NodeId p, std::uint64_t mask) {
  auto& cached = mask_[static_cast<std::size_t>(p)];
  if (mask == cached) return;
  const int delta = bits::popcount(mask) - bits::popcount(cached);
  const bool was = cached != 0;
  const bool is = mask != 0;
  cached = mask;
  if (was != is) {
    if (is) {
      nodeBits_.set(static_cast<std::size_t>(p));
      ++nodeCount_;
    } else {
      nodeBits_.clear(static_cast<std::size_t>(p));
      --nodeCount_;
    }
    if (track_changes_ && !full_invalidate_) changed_.push_back(p);
  }
  if (delta != 0) {
    moveCount_ += delta;
    if (!deferFenwick_) fenwickAdd(p, delta);
  }
  movesStale_ = true;
}

void EnabledCache::makeView() {
  view_ = EnabledView(n_, actions_, mask_.data(), nodeBits_.words(),
                      nodeBits_.wordCount(), fen_.data(), fenTop_,
                      moveCount_, nodeCount_);
}

const EnabledView& EnabledCache::refreshView() {
  if (force_naive_ || !primed_ || protocol_.allDirty()) {
    rebuildAll();
    // A later incremental refresh may resume from this full scan unless
    // naive mode is forced, in which case every refresh rescans.
    primed_ = !force_naive_;
  } else {
    // Feed the dirty set through the protocol's batch evaluator in one
    // node-sorted batch (the evaluateGuards ordering contract), then
    // patch the representation mask by mask.
    const std::vector<NodeId>& dirtyNodes = protocol_.dirtyNodes();
    if (dirtyNodes.empty()) {
      // nothing to patch
    } else if (scalar_guard_eval_) {
      // The historical refresh, step for step: an insertion-ordered
      // per-node scalar guardMask loop with immediate Fenwick updates.
      // This is the "before" side of the batch-kernel benchmarks, so it
      // must not inherit the batch path's dense-refresh machinery.
      for (const NodeId p : dirtyNodes) applyMask(p, guardMask(p));
      statEvals_ += static_cast<std::uint64_t>(dirtyNodes.size()) *
                    static_cast<std::uint64_t>(actions_);
      if (++statRefreshes_ >= kStatFlushRefreshes) flushStats();
    } else {
      // Node-sorted batch (the evaluateGuards ordering contract).  A
      // dense dirty set — a synchronous step dirties nearly every
      // processor — recovers the order from the dirty flags with one
      // sequential scan; sorting the insertion-ordered list would cost
      // O(n log n) per step and dominates the refresh at large n.
      const std::size_t n = protocol_.dirtyFlags().size();
      const bool dense = dirtyNodes.size() >= n / 16;
      if (dense) {
        const std::uint8_t* flags = protocol_.dirtyFlags().data();
        batch_.clear();
        batch_.reserve(dirtyNodes.size());
        for (std::size_t p = 0; p < n; ++p)
          if (flags[p]) batch_.push_back(static_cast<NodeId>(p));
      } else {
        batch_.assign(dirtyNodes.begin(), dirtyNodes.end());
        std::sort(batch_.begin(), batch_.end());
      }
      batchMasks_.resize(batch_.size());
      evaluateBatch(batch_, batchMasks_.data());
      // Dense patches rebuild the Fenwick tree once in O(n) instead of
      // paying an O(log n) scattered update per changed node.
      deferFenwick_ = dense;
      for (std::size_t i = 0; i < batch_.size(); ++i)
        applyMask(batch_[i], batchMasks_[i]);
      if (dense) {
        deferFenwick_ = false;
        rebuildFenwick();
      }
      statEvals_ += static_cast<std::uint64_t>(batch_.size()) *
                    static_cast<std::uint64_t>(actions_);
      if (++statRefreshes_ >= kStatFlushRefreshes) flushStats();
    }
  }
  protocol_.clearDirty();
  makeView();
#ifndef NDEBUG
  // Cross-check: the bitmask representation must match the naive scan.
  {
    std::vector<Move> fromView;
    view_.appendMoves(fromView);
    SSNO_ASSERT(fromView == protocol_.enabledMoves());
    SSNO_ASSERT(static_cast<int>(fromView.size()) == view_.moveCount());
  }
#endif
  return view_;
}

const std::vector<Move>& EnabledCache::refresh() {
  (void)refreshView();
  if (movesStale_) {
    moves_.clear();
    view_.appendMoves(moves_);
    movesStale_ = false;
  }
  return moves_;
}

}  // namespace ssno
