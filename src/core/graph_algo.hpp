// Classic centralized graph algorithms used for verification and reporting
// (never by the distributed protocols themselves, which see only their
// local neighborhoods).
#ifndef SSNO_CORE_GRAPH_ALGO_HPP
#define SSNO_CORE_GRAPH_ALGO_HPP

#include <string>
#include <vector>

#include "core/graph.hpp"
#include "core/types.hpp"

namespace ssno {

/// BFS distances from `src`; unreachable nodes get -1.
[[nodiscard]] std::vector<int> bfsDistances(const Graph& g, NodeId src);

/// Eccentricity of `src` (max BFS distance); requires connectivity.
[[nodiscard]] int eccentricity(const Graph& g, NodeId src);

/// Exact diameter via all-pairs BFS (fine at simulator scales).
[[nodiscard]] int diameter(const Graph& g);

/// Hop-by-hop shortest path src -> dst (inclusive); empty if unreachable.
[[nodiscard]] std::vector<NodeId> shortestPath(const Graph& g, NodeId src,
                                               NodeId dst);

/// Height of the tree described by `parent` (parent[root] == kNoNode),
/// i.e. the max root-to-node depth.  Returns -1 if `parent` is not a
/// spanning tree of g rooted at g.root().
[[nodiscard]] int treeHeight(const Graph& g, const std::vector<NodeId>& parent);

/// True iff `parent` encodes a spanning tree of g rooted at g.root():
/// parent[root] == kNoNode, every other node's parent is a neighbor, and
/// following parents reaches the root without cycles.
[[nodiscard]] bool isSpanningTree(const Graph& g,
                                  const std::vector<NodeId>& parent);

/// Graphviz DOT rendering; optional per-node labels (e.g. assigned names).
[[nodiscard]] std::string toDot(const Graph& g,
                                const std::vector<std::string>& nodeLabels = {});

}  // namespace ssno

#endif  // SSNO_CORE_GRAPH_ALGO_HPP
