#include "core/trace.hpp"

#include <algorithm>
#include <sstream>

namespace ssno {

void TraceRecorder::record(const Move& move) {
  TraceEvent ev;
  ev.index = static_cast<StepCount>(events_.size());
  ev.node = move.node;
  ev.action = protocol_.actionName(move.action);
  ev.stateAfter = protocol_.dumpNode(move.node);
  events_.push_back(std::move(ev));
}

std::string TraceRecorder::render() const {
  std::ostringstream out;
  for (const TraceEvent& ev : events_) {
    out << '#' << ev.index << "  node " << ev.node << "  " << ev.action
        << "  " << ev.stateAfter << '\n';
  }
  return out.str();
}

std::string TraceRecorder::renderFiltered(
    const std::vector<std::string>& actions) const {
  std::ostringstream out;
  for (const TraceEvent& ev : events_) {
    if (std::find(actions.begin(), actions.end(), ev.action) != actions.end())
      out << '#' << ev.index << "  node " << ev.node << "  " << ev.action
          << "  " << ev.stateAfter << '\n';
  }
  return out.str();
}

}  // namespace ssno
