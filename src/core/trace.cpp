#include "core/trace.hpp"

#include <algorithm>
#include <sstream>

namespace ssno {

void TraceRecorder::record(const Move& move) {
  TraceEvent ev;
  ev.index = static_cast<StepCount>(events_.size());
  ev.node = move.node;
  ev.action = protocol_.actionName(move.action);
  ev.stateAfter = protocol_.dumpNode(move.node);
  events_.push_back(std::move(ev));
}

void TraceRecorder::recordStatusChanges(std::span<const NodeId> changed,
                                        bool fullInvalidate,
                                        const EnabledView& now) {
  const auto n = static_cast<std::size_t>(now.nodeCountTotal());
  if (statusPrev_.size() != n) statusPrev_.resize(n);  // starts all-clear
  statusScratch_.clear();
  auto flip = [this](NodeId p, bool is) {
    statusScratch_.push_back(p);
    if (is)
      statusPrev_.set(static_cast<std::size_t>(p));
    else
      statusPrev_.clear(static_cast<std::size_t>(p));
  };
  if (fullInvalidate) {
    // Resynchronize: diff the whole view against the recorded set
    // (already in ascending node order).
    for (NodeId p = 0; p < static_cast<NodeId>(n); ++p) {
      const bool is = now.anyEnabled(p);
      if (is != statusPrev_.test(static_cast<std::size_t>(p))) flip(p, is);
    }
  } else {
    // The feed may hold duplicates and arrives in dirty order; the
    // prev-set comparison deduplicates, the sort canonicalizes.
    for (const NodeId p : changed) {
      const bool is = now.anyEnabled(p);
      if (is != statusPrev_.test(static_cast<std::size_t>(p))) flip(p, is);
    }
    std::sort(statusScratch_.begin(), statusScratch_.end());
  }
  for (const NodeId p : statusScratch_) {
    statusEvents_.push_back(
        {statusSteps_, p, statusPrev_.test(static_cast<std::size_t>(p))});
  }
  ++statusSteps_;
}

std::string TraceRecorder::render() const {
  std::ostringstream out;
  for (const TraceEvent& ev : events_) {
    out << '#' << ev.index << "  node " << ev.node << "  " << ev.action
        << "  " << ev.stateAfter << '\n';
  }
  return out.str();
}

std::string TraceRecorder::renderFiltered(
    const std::vector<std::string>& actions) const {
  std::ostringstream out;
  for (const TraceEvent& ev : events_) {
    if (std::find(actions.begin(), actions.end(), ev.action) != actions.end())
      out << '#' << ev.index << "  node " << ev.node << "  " << ev.action
          << "  " << ev.stateAfter << '\n';
  }
  return out.str();
}

std::string TraceRecorder::renderStatus() const {
  std::ostringstream out;
  for (const StatusEvent& ev : statusEvents_) {
    out << "step " << ev.step << "  " << (ev.enabled ? '+' : '-') << "node "
        << ev.node << '\n';
  }
  return out.str();
}

}  // namespace ssno
