// Lightweight contract-checking macros (Core Guidelines I.6/I.8 style).
//
// SSNO_EXPECTS / SSNO_ENSURES abort with a diagnostic on violation; they are
// active in all build types because the simulator's correctness arguments
// (single token, pointer-chain consistency, ...) rely on them during
// development and model checking, and their cost is negligible next to the
// state-space exploration itself.
#ifndef SSNO_CORE_ASSERT_HPP
#define SSNO_CORE_ASSERT_HPP

#include <cstdio>
#include <cstdlib>

namespace ssno::detail {

[[noreturn]] inline void contract_violation(const char* kind, const char* expr,
                                            const char* file, int line) {
  std::fprintf(stderr, "ssno: %s violation: (%s) at %s:%d\n", kind, expr, file,
               line);
  std::abort();
}

}  // namespace ssno::detail

#define SSNO_EXPECTS(cond)                                               \
  ((cond) ? static_cast<void>(0)                                         \
          : ::ssno::detail::contract_violation("precondition", #cond,   \
                                               __FILE__, __LINE__))

#define SSNO_ENSURES(cond)                                               \
  ((cond) ? static_cast<void>(0)                                         \
          : ::ssno::detail::contract_violation("postcondition", #cond,  \
                                               __FILE__, __LINE__))

#define SSNO_ASSERT(cond)                                                \
  ((cond) ? static_cast<void>(0)                                         \
          : ::ssno::detail::contract_violation("invariant", #cond,      \
                                               __FILE__, __LINE__))

// Debug-only variant for checks that are NOT negligible — e.g. a full
// scalar guard re-evaluation per move inside the batched execution
// kernels, where the check would cost more than the code it guards.
// Release builds compile the condition out entirely.
#ifndef NDEBUG
#define SSNO_DBG_ASSERT(cond) SSNO_ASSERT(cond)
#else
#define SSNO_DBG_ASSERT(cond) static_cast<void>(0)
#endif

#endif  // SSNO_CORE_ASSERT_HPP
