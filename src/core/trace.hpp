// Execution trace recording and rendering.  Used by the tests for
// debugging and by examples/figure_traces to regenerate the paper's
// Figures 3.1.1 and 4.1.1 step by step.
//
// Two event streams:
//   * move events    — one per executed move (Simulator move observer);
//   * status events  — enabled-status flips (+p when processor p gains
//     an enabled action, -p when it loses its last one), driven by the
//     Simulator's status observer, i.e. the EnabledCache status-change
//     feed.  The historical way to produce these diffed a full
//     enabledMoves() walk per step; the feed makes recording
//     O(#flips) per step.  tests/status_feed_test.cpp pins
//     bit-identity of the two.
#ifndef SSNO_CORE_TRACE_HPP
#define SSNO_CORE_TRACE_HPP

#include <span>
#include <string>
#include <vector>

#include "core/bitwords.hpp"
#include "core/enabled_view.hpp"
#include "core/protocol.hpp"
#include "core/types.hpp"

namespace ssno {

struct TraceEvent {
  StepCount index = 0;        ///< move sequence number
  NodeId node = kNoNode;
  std::string action;         ///< action label
  std::string stateAfter;     ///< dumpNode(node) after the move
};

/// One enabled-status flip, as observed after a daemon step.
struct StatusEvent {
  StepCount step = 0;  ///< daemon-step sequence number
  NodeId node = kNoNode;
  bool enabled = false;  ///< true: became enabled; false: neutralized
};

class TraceRecorder {
 public:
  explicit TraceRecorder(const Protocol& protocol) : protocol_(protocol) {}

  /// Records one executed move; call from a Simulator move observer.
  void record(const Move& move);

  /// Records the enabled-status flips of one step; call from a
  /// Simulator status observer.  Deduplicates the feed against the
  /// previously recorded enabled set, so each event is a real flip;
  /// flips are recorded in ascending node order per step.
  void recordStatusChanges(std::span<const NodeId> changed,
                           bool fullInvalidate, const EnabledView& now);

  [[nodiscard]] const std::vector<TraceEvent>& events() const {
    return events_;
  }
  [[nodiscard]] const std::vector<StatusEvent>& statusEvents() const {
    return statusEvents_;
  }
  void clear() {
    events_.clear();
    statusEvents_.clear();
    statusPrev_.reset();
    statusSteps_ = 0;
  }

  /// Tabular ASCII rendering ("#12 node 3  Forward   S=->1 col=0 ...").
  [[nodiscard]] std::string render() const;

  /// Renders only events whose action label matches one of `actions`.
  [[nodiscard]] std::string renderFiltered(
      const std::vector<std::string>& actions) const;

  /// Renders the status stream ("step 4  +node 2" / "step 5  -node 7").
  [[nodiscard]] std::string renderStatus() const;

 private:
  const Protocol& protocol_;
  std::vector<TraceEvent> events_;
  std::vector<StatusEvent> statusEvents_;
  bits::WordBitset statusPrev_;  // enabled set at the last recorded step
  std::vector<NodeId> statusScratch_;
  StepCount statusSteps_ = 0;
};

}  // namespace ssno

#endif  // SSNO_CORE_TRACE_HPP
