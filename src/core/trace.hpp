// Execution trace recording and rendering.  Used by the tests for
// debugging and by examples/figure_traces to regenerate the paper's
// Figures 3.1.1 and 4.1.1 step by step.
#ifndef SSNO_CORE_TRACE_HPP
#define SSNO_CORE_TRACE_HPP

#include <string>
#include <vector>

#include "core/protocol.hpp"
#include "core/types.hpp"

namespace ssno {

struct TraceEvent {
  StepCount index = 0;        ///< move sequence number
  NodeId node = kNoNode;
  std::string action;         ///< action label
  std::string stateAfter;     ///< dumpNode(node) after the move
};

class TraceRecorder {
 public:
  explicit TraceRecorder(const Protocol& protocol) : protocol_(protocol) {}

  /// Records one executed move; call from a Simulator move observer.
  void record(const Move& move);

  [[nodiscard]] const std::vector<TraceEvent>& events() const {
    return events_;
  }
  void clear() { events_.clear(); }

  /// Tabular ASCII rendering ("#12 node 3  Forward   S=->1 col=0 ...").
  [[nodiscard]] std::string render() const;

  /// Renders only events whose action label matches one of `actions`.
  [[nodiscard]] std::string renderFiltered(
      const std::vector<std::string>& actions) const;

 private:
  const Protocol& protocol_;
  std::vector<TraceEvent> events_;
};

}  // namespace ssno

#endif  // SSNO_CORE_TRACE_HPP
