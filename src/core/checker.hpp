// Mechanical verification of self-stabilization (Definitions 2.1.1/2.1.2).
//
// For a protocol P with legitimacy predicate L on configuration set C,
// self-stabilization =
//   * closure:     every successor of a configuration satisfying L
//                  satisfies L, and
//   * convergence: every maximal computation from *any* configuration
//                  reaches a configuration satisfying L.
//
// Under the central daemon the transition relation is "execute one enabled
// move"; convergence for *all* central-daemon computations holds iff
//   (1) no illegitimate configuration is terminal, and
//   (2) the sub-digraph induced by illegitimate configurations is acyclic
// (a maximal path confined to finitely many illegitimate configurations
// would have to repeat one).
//
// Protocols that assume a *fair* daemon (the paper's DFTNO / token-
// circulation substrate) are only required to converge on fair
// executions.  Fairness is tracked at the granularity of (processor,
// action) pairs: weak fairness demands that an action enabled at every
// configuration from some point on eventually executes; strong fairness
// demands the same for an action enabled infinitely often.  (Processor-
// level fairness is too weak here: a processor can discharge it with
// token moves while its edge-label correction starves.)  Condition (2)
// is replaced by
//   (2') no illegitimate cycle is fair-feasible,
// checked SCC-wise (Emerson–Lei style): an infinite execution eventually
// stays inside one SCC of the illegitimate region, and a fair infinite
// execution inside an SCC exists iff no protected pair — enabled at
// every SCC configuration (weak) or at some (strong) — fails to act on
// an internal transition (a closed walk covering all of the SCC then
// witnesses feasibility).
//
// ModelChecker verifies exactly these conditions:
//   * verifyFullSpace  — enumerates the complete product state space
//                        (∏_p localStateCount(p)); the strongest check,
//                        feasible for tiny graphs/domains;
//   * verifyReachable  — explores only configurations reachable from a
//                        given seed set (used e.g. to verify the overlay
//                        layer from every overlay state × legitimate
//                        substrate states);
//   * monteCarlo       — randomized convergence stress for sizes beyond
//                        exhaustive reach, under any daemon.
//
// Successor expansion is incremental: configurations are delta-decoded
// (only the nodes that differ from the previously decoded configuration
// are rewritten, see Protocol::decodeConfigurationDelta), and the
// enabled-move set is maintained by an EnabledCache over the protocol's
// dirty notifications instead of a full guard rescan per configuration.
// In Debug builds the cache cross-checks the incremental enabled set
// against the naive scan on every refresh, so exploration itself
// exercises the dirtying contract.  setNaiveExpansion(true) restores
// the pre-incremental behavior (full decode + full rescan per
// expansion) for before/after benchmarking.  The parallel engine in
// src/mc scales these same checks across threads; equivalence of the
// two paths is pinned by tests/mc_equiv_test.cpp.
#ifndef SSNO_CORE_CHECKER_HPP
#define SSNO_CORE_CHECKER_HPP

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/daemon.hpp"
#include "core/protocol.hpp"
#include "core/rng.hpp"

namespace ssno {

struct CheckResult {
  bool ok = false;
  std::string failure;               ///< empty when ok
  std::uint64_t configsExplored = 0;

  explicit operator bool() const { return ok; }
};

/// Which daemons the protocol must converge under.
enum class Fairness {
  kNone,          ///< any daemon: the illegitimate region must be acyclic
  kWeaklyFair,    ///< no illegitimate cycle along which some action is
                  ///< enabled at EVERY configuration yet never executes
  kStronglyFair,  ///< no illegitimate cycle along which some action is
                  ///< enabled at SOME configuration yet never executes
};

class ModelChecker {
 public:
  using LegitPredicate = std::function<bool()>;

  /// `legit` is evaluated against the protocol's *current* configuration;
  /// the checker decodes configurations into the protocol before calling.
  ModelChecker(Protocol& protocol, LegitPredicate legit)
      : protocol_(protocol), legit_(std::move(legit)) {}

  /// Exhaustive check over the full product space.  Fails fast (without
  /// exploring) if the space exceeds `maxConfigs`.  Fairness-aware modes
  /// need nodeCount·actionCount ≤ 64 (enabled-set bitmasks).
  [[nodiscard]] CheckResult verifyFullSpace(
      std::uint64_t maxConfigs, Fairness fairness = Fairness::kNone);

  /// Check over all configurations reachable from `seeds`.
  [[nodiscard]] CheckResult verifyReachable(
      const std::vector<std::vector<std::uint64_t>>& seeds,
      std::uint64_t maxConfigs, Fairness fairness = Fairness::kNone);

  /// Randomized: scrambles the configuration `trials` times, runs under
  /// `daemon` for at most `maxMoves` moves per trial, and requires the
  /// legitimacy predicate to hold at some point of every trial; after it
  /// first holds, additionally requires it to keep holding for
  /// `closureMoves` further moves (closure spot check).
  [[nodiscard]] CheckResult monteCarlo(Daemon& daemon, Rng& rng, int trials,
                                       StepCount maxMoves,
                                       StepCount closureMoves);

  /// Forces full configuration decodes and naive enabled-set rescans
  /// per expansion (the pre-incremental behavior) — the "before" side
  /// of the model-check throughput benchmark.
  void setNaiveExpansion(bool naive) { naive_ = naive; }

  /// Verifies under SYNCHRONOUS-daemon semantics instead of the central
  /// interleaving: a transition executes one simultaneous move set —
  /// every enabled processor acts, each choosing one of its enabled
  /// actions (successors = the cartesian product of per-node choices).
  /// Move sets are executed in place by the columnar simultaneous-step
  /// engine (core/sync_engine) — batched StateArena snapshot/restore of
  /// the acting set with a single deferred dirty pass — instead of
  /// per-node (node, mask) snapshot loops.  Under the synchronous
  /// daemon every enabled processor acts each step, so the fairness-
  /// aware modes are meaningless here: only Fairness::kNone is
  /// accepted (the illegitimate region must be acyclic).
  void setSynchronousSteps(bool sync) { sync_ = sync; }

 private:
  Protocol& protocol_;
  LegitPredicate legit_;
  bool naive_ = false;
  bool sync_ = false;
};

}  // namespace ssno

#endif  // SSNO_CORE_CHECKER_HPP
