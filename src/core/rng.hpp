// Deterministic pseudo-random source for daemons, fault injection and
// topology generation.  A thin wrapper over std::mt19937_64 that provides
// the handful of draw shapes the library needs and supports cheap stream
// splitting so that independent components (daemon vs. fault injector)
// never share a sequence.
#ifndef SSNO_CORE_RNG_HPP
#define SSNO_CORE_RNG_HPP

#include <cstdint>
#include <random>

#include "core/assert.hpp"

namespace ssno {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Uniform integer in [0, bound). Requires bound > 0.
  int below(int bound) {
    SSNO_EXPECTS(bound > 0);
    return static_cast<int>(engine_() % static_cast<std::uint64_t>(bound));
  }

  /// Uniform integer in [lo, hi] inclusive.
  int between(int lo, int hi) {
    SSNO_EXPECTS(lo <= hi);
    return lo + below(hi - lo + 1);
  }

  /// Bernoulli draw.
  bool chance(double p) {
    std::bernoulli_distribution d(p);
    return d(engine_);
  }

  std::uint64_t next() { return engine_(); }

  /// Derive an independent stream; mixing the label keeps sibling streams
  /// decorrelated even for adjacent labels.
  [[nodiscard]] Rng split(std::uint64_t label) {
    const std::uint64_t mixed =
        (engine_() ^ (label * 0x9E3779B97F4A7C15ULL)) + 0xD1B54A32D192ED03ULL;
    return Rng(mixed);
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace ssno

#endif  // SSNO_CORE_RNG_HPP
