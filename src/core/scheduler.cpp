#include "core/scheduler.hpp"

#include <algorithm>

#include "core/assert.hpp"

namespace ssno {

const std::vector<Move>& Simulator::stepOnce() {
  const std::vector<Move>& enabled = cache_.refresh();
  if (enabled.empty()) {
    selected_.clear();
    return selected_;
  }
  daemon_.selectInto(enabled, rng_, selected_);
  SSNO_ASSERT(!selected_.empty());
  if (selected_.size() == 1) {
    protocol_.execute(selected_.front().node, selected_.front().action);
  } else {
    executeSimultaneously(selected_);
  }
  if (observer_) {
    for (const Move& m : selected_) observer_(m);
  }
  accountRound(selected_);
  return selected_;
}

void Simulator::executeSimultaneously(const std::vector<Move>& moves) {
  // Shared-memory semantics: every statement reads the pre-step
  // configuration.  Only the acting processors change state, so it
  // suffices to snapshot the actors and, before executing each move, roll
  // the already-executed actors inside the mover's closed neighborhood
  // back to their pre-step values; all post-states are applied at the end
  // (each processor writes only its own variables, so writes commute).
  //
  // The neighborhood-scoped rollback is only sound when guards and
  // statements read nothing beyond N[p]; protocols with non-local guard
  // dependencies get the full-configuration snapshot instead.
  if (!protocol_.guardsAreNeighborhoodLocal()) {
    const std::vector<int> pre = protocol_.rawConfiguration();
    std::vector<std::vector<int>> post(moves.size());
    for (std::size_t i = 0; i < moves.size(); ++i) {
      protocol_.setRawConfiguration(pre);
      SSNO_ASSERT(protocol_.enabled(moves[i].node, moves[i].action));
      protocol_.execute(moves[i].node, moves[i].action);
      post[i] = protocol_.rawNode(moves[i].node);
    }
    protocol_.setRawConfiguration(pre);
    for (std::size_t i = 0; i < moves.size(); ++i)
      protocol_.setRawNode(moves[i].node, post[i]);
    return;
  }
  const std::size_t k = moves.size();
  if (preState_.size() < k) {
    preState_.resize(k);
    postState_.resize(k);
  }
  if (actingIndex_.size() !=
      static_cast<std::size_t>(protocol_.graph().nodeCount()))
    actingIndex_.assign(static_cast<std::size_t>(protocol_.graph().nodeCount()),
                        -1);
  for (std::size_t i = 0; i < k; ++i) {
    preState_[i] = protocol_.rawNode(moves[i].node);
    actingIndex_[static_cast<std::size_t>(moves[i].node)] =
        static_cast<int>(i);
  }
  for (std::size_t i = 0; i < k; ++i) {
    const NodeId p = moves[i].node;
    for (NodeId q : protocol_.graph().neighbors(p)) {
      const int j = actingIndex_[static_cast<std::size_t>(q)];
      if (j >= 0 && static_cast<std::size_t>(j) < i)
        protocol_.setRawNode(q, preState_[static_cast<std::size_t>(j)]);
    }
    SSNO_ASSERT(protocol_.enabled(p, moves[i].action));
    protocol_.execute(p, moves[i].action);
    postState_[i] = protocol_.rawNode(p);
  }
  for (std::size_t i = 0; i < k; ++i) {
    protocol_.setRawNode(moves[i].node, postState_[i]);
    actingIndex_[static_cast<std::size_t>(moves[i].node)] = -1;
  }
}

void Simulator::accountRound(const std::vector<Move>& executed) {
  // Both the round-opening set and the neutralization test read the
  // post-step enabled set; one cache refresh serves both (the naive
  // implementation called Protocol::enabledMoves() twice here).
  const std::vector<Move>& now = cache_.refresh();
  if (pending_.size() != static_cast<std::size_t>(protocol_.graph().nodeCount()))
    pending_.assign(static_cast<std::size_t>(protocol_.graph().nodeCount()),
                    false);
  auto mark = [this](NodeId p) {
    if (!pending_[static_cast<std::size_t>(p)]) {
      pending_[static_cast<std::size_t>(p)] = true;
      pendingList_.push_back(p);
    }
  };
  if (!roundActive_) {
    // A round opens with the processors that executed or remain enabled
    // now (operational simplification of "continuously enabled since the
    // round began"; see the naive accountRound in the git history).
    for (const Move& m : executed) mark(m.node);
    for (const Move& m : now) mark(m.node);
    roundActive_ = !pendingList_.empty();
  }
  // Processors that executed have served the round.
  for (const Move& m : executed)
    pending_[static_cast<std::size_t>(m.node)] = false;
  // Processors no longer enabled are neutralized.  `now` is node-major,
  // so membership is a binary search — no n-sized scratch set.
  auto enabledNow = [&now](NodeId p) {
    const auto it = std::lower_bound(
        now.begin(), now.end(), p,
        [](const Move& m, NodeId v) { return m.node < v; });
    return it != now.end() && it->node == p;
  };
  std::size_t write = 0;
  for (const NodeId p : pendingList_) {
    if (!pending_[static_cast<std::size_t>(p)]) continue;
    if (!enabledNow(p)) {
      pending_[static_cast<std::size_t>(p)] = false;
      continue;
    }
    pendingList_[write++] = p;
  }
  pendingList_.resize(write);
  if (roundActive_ && pendingList_.empty()) {
    ++roundsDone_;
    roundActive_ = false;
  }
}

void Simulator::resetRound() {
  for (const NodeId p : pendingList_)
    pending_[static_cast<std::size_t>(p)] = false;
  pendingList_.clear();
  roundActive_ = false;
  roundsDone_ = 0;
}

RunStats Simulator::runUntil(const Predicate& goal, StepCount maxMoves) {
  RunStats stats;
  resetRound();
  while (stats.moves < maxMoves) {
    if (goal && goal()) {
      stats.converged = true;
      break;
    }
    const std::vector<Move>& executed = stepOnce();
    if (executed.empty()) {
      stats.terminal = true;
      stats.converged = goal && goal();
      break;
    }
    stats.moves += static_cast<StepCount>(executed.size());
    ++stats.steps;
  }
  if (!stats.converged && !stats.terminal && goal && goal())
    stats.converged = true;
  stats.rounds = roundsDone_;
  return stats;
}

RunStats Simulator::runToQuiescence(StepCount maxMoves) {
  return runUntil(nullptr, maxMoves);
}

}  // namespace ssno
