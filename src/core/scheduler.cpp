#include "core/scheduler.hpp"

#include <algorithm>

#include "core/assert.hpp"

namespace ssno {

std::vector<Move> Simulator::stepOnce() {
  const std::vector<Move> enabled = protocol_.enabledMoves();
  if (enabled.empty()) return {};
  std::vector<Move> selected = daemon_.select(enabled, rng_);
  SSNO_ASSERT(!selected.empty());
  if (selected.size() == 1) {
    protocol_.execute(selected.front().node, selected.front().action);
  } else {
    executeSimultaneously(selected);
  }
  if (observer_) {
    for (const Move& m : selected) observer_(m);
  }
  accountRound(selected);
  return selected;
}

void Simulator::executeSimultaneously(const std::vector<Move>& moves) {
  // Shared-memory semantics: every statement reads the pre-step
  // configuration.  Execute each move against a restored pre-state, collect
  // the post-state of the acting processor, then apply all writes at once
  // (each processor writes only its own variables, so writes commute).
  const std::vector<int> pre = protocol_.rawConfiguration();
  std::vector<std::vector<int>> post(moves.size());
  for (std::size_t i = 0; i < moves.size(); ++i) {
    protocol_.setRawConfiguration(pre);
    SSNO_ASSERT(protocol_.enabled(moves[i].node, moves[i].action));
    protocol_.execute(moves[i].node, moves[i].action);
    post[i] = protocol_.rawNode(moves[i].node);
  }
  protocol_.setRawConfiguration(pre);
  for (std::size_t i = 0; i < moves.size(); ++i)
    protocol_.setRawNode(moves[i].node, post[i]);
}

void Simulator::accountRound(const std::vector<Move>& executed) {
  const int n = protocol_.graph().nodeCount();
  if (!roundActive_) {
    pending_.assign(static_cast<std::size_t>(n), false);
    bool any = false;
    // A round opens with the set of processors currently enabled...
    // (computed lazily below from the enabled moves *before* this step was
    // taken; as an operational simplification we open the round with the
    // processors that executed or remain enabled now).
    for (const Move& m : executed) {
      pending_[static_cast<std::size_t>(m.node)] = true;
      any = true;
    }
    for (const Move& m : protocol_.enabledMoves()) {
      pending_[static_cast<std::size_t>(m.node)] = true;
      any = true;
    }
    roundActive_ = any;
  }
  // Processors that executed have served the round.
  for (const Move& m : executed)
    pending_[static_cast<std::size_t>(m.node)] = false;
  // Processors no longer enabled are neutralized.
  std::vector<bool> enabledNow(static_cast<std::size_t>(n), false);
  for (const Move& m : protocol_.enabledMoves())
    enabledNow[static_cast<std::size_t>(m.node)] = true;
  bool anyPending = false;
  for (int p = 0; p < n; ++p) {
    if (pending_[static_cast<std::size_t>(p)] &&
        !enabledNow[static_cast<std::size_t>(p)])
      pending_[static_cast<std::size_t>(p)] = false;
    anyPending = anyPending || pending_[static_cast<std::size_t>(p)];
  }
  if (roundActive_ && !anyPending) {
    ++roundsDone_;
    roundActive_ = false;
  }
}

RunStats Simulator::runUntil(const Predicate& goal, StepCount maxMoves) {
  RunStats stats;
  roundsDone_ = 0;
  roundActive_ = false;
  while (stats.moves < maxMoves) {
    if (goal && goal()) {
      stats.converged = true;
      break;
    }
    const std::vector<Move> executed = stepOnce();
    if (executed.empty()) {
      stats.terminal = true;
      stats.converged = goal && goal();
      break;
    }
    stats.moves += static_cast<StepCount>(executed.size());
    ++stats.steps;
  }
  if (!stats.converged && !stats.terminal && goal && goal())
    stats.converged = true;
  stats.rounds = roundsDone_;
  return stats;
}

RunStats Simulator::runToQuiescence(StepCount maxMoves) {
  return runUntil(nullptr, maxMoves);
}

}  // namespace ssno
