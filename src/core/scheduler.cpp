#include "core/scheduler.hpp"

#include "core/assert.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace ssno {

namespace {
// Registry handles touched only by flushStats(): per-step counts batch
// in plain Simulator members and publish every kStatFlushSteps steps,
// at run end, and at destruction (see the header's cost note).
const obs::Counter kSimSteps =
    obs::Registry::global().counter("sim_steps_total");
const obs::Counter kSimMoves =
    obs::Registry::global().counter("sim_moves_total");
constexpr std::uint64_t kStatFlushSteps = 1024;
}  // namespace

void Simulator::flushStats() {
  if (statSteps_) kSimSteps.inc(statSteps_);
  if (statMoves_) kSimMoves.inc(statMoves_);
  statSteps_ = statMoves_ = 0;
  cache_.flushStats();
}

const std::vector<Move>& Simulator::stepOnce() {
  obs::TraceSpan stepSpan("sim_step");
  if (naiveScan_ || legacySelect_) {
    const std::vector<Move>* enabledPtr = nullptr;
    {
      obs::TraceSpan refreshSpan("sim_refresh");
      enabledPtr = &cache_.refresh();
    }
    const std::vector<Move>& enabled = *enabledPtr;
    if (enabled.empty()) {
      selected_.clear();
      return selected_;
    }
    obs::TraceSpan selectSpan("sim_select");
    selectSpan.arg("enabled_moves", enabled.size());
    daemon_.legacySelect(enabled, rng_, selected_);
  } else {
    const EnabledView* viewPtr = nullptr;
    {
      obs::TraceSpan refreshSpan("sim_refresh");
      viewPtr = &cache_.refreshView();
    }
    const EnabledView& enabled = *viewPtr;
    if (enabled.empty()) {
      selected_.clear();
      return selected_;
    }
#ifndef NDEBUG
    // Cross-check: the bitmask selection must be bit-identical (moves
    // AND RNG consumption) to the legacy materialized-vector path, for
    // every daemon.  Cloning daemon and RNG keeps the real step's state
    // untouched.
    std::vector<Move> materialized;
    enabled.appendMoves(materialized);
    const std::unique_ptr<Daemon> shadow = daemon_.clone();
    Rng shadowRng = rng_;
    std::vector<Move> shadowOut;
    shadow->legacySelect(materialized, shadowRng, shadowOut);
#endif
    {
      obs::TraceSpan selectSpan("sim_select");
      selectSpan.arg("enabled_moves",
                     static_cast<std::uint64_t>(enabled.moveCount()));
      daemon_.selectInto(enabled, rng_, selected_);
    }
#ifndef NDEBUG
    SSNO_ASSERT(shadowOut == selected_);
    SSNO_ASSERT(shadowRng.engine() == rng_.engine());
#endif
  }
  SSNO_ASSERT(!selected_.empty());
  if (selected_.size() == 1) {
    protocol_.execute(selected_.front().node, selected_.front().action);
  } else {
    executeSimultaneously(selected_);
  }
  if (observer_) {
    for (const Move& m : selected_) observer_(m);
  }
  statMoves_ += selected_.size();
  if (++statSteps_ >= kStatFlushSteps) flushStats();
  stepSpan.arg("moves", selected_.size());
  accountRound(selected_);
  return selected_;
}

void Simulator::executeSimultaneously(const std::vector<Move>& moves) {
  // Shared-memory semantics live in the SimultaneousEngine: the columnar
  // fast path snapshots/restores acting processors column-batched over
  // the protocol's StateArena columns and defers dirtying to one
  // deduplicated pass; the legacy knob (and naive mode, matching the
  // historical stack) keeps the per-node-vector pipeline.
  if (legacySim_ || naiveScan_)
    engine_.executeLegacy(moves);
  else
    engine_.execute(moves);
}

void Simulator::accountRound(const std::vector<Move>& executed) {
  // Both the round-opening set and the neutralization test read the
  // post-step enabled set; one cache refresh serves both, and the
  // bitmask view answers both questions without materializing moves.
  //
  // Steady-state cost is O(#executed + #status-changes): instead of
  // rescanning the whole pending set per step (O(n) when a round opens
  // with Θ(n) enabled processors), neutralization consumes the cache's
  // status-change feed — a pending processor not in the feed was
  // enabled at the last check and still is.  A full cache rebuild
  // (whole-configuration write, naive mode) falls back to the full
  // pending-list compaction, which keeps the naive pipeline's round
  // accounting bit-identical to the historical implementation.
  const EnabledView& now = cache_.refreshView();
  const bool fullInvalidate = cache_.consumeFullInvalidate();
  if (statusObserver_)
    statusObserver_(cache_.statusChanges(), fullInvalidate, now);
  if (pending_.size() != static_cast<std::size_t>(protocol_.graph().nodeCount()))
    pending_.assign(static_cast<std::size_t>(protocol_.graph().nodeCount()),
                    false);
  auto mark = [this](NodeId p) {
    if (!pending_[static_cast<std::size_t>(p)]) {
      pending_[static_cast<std::size_t>(p)] = true;
      pendingList_.push_back(p);
      ++pendingCount_;
    }
  };
  auto serve = [this](NodeId p) {
    if (pending_[static_cast<std::size_t>(p)]) {
      pending_[static_cast<std::size_t>(p)] = false;
      --pendingCount_;
    }
  };
  if (!roundActive_) {
    // A round opens with the processors that executed or remain enabled
    // now (operational simplification of "continuously enabled since the
    // round began"; see the naive accountRound in the git history).
    for (const Move& m : executed) mark(m.node);
    now.forEachNode(mark);
    roundActive_ = pendingCount_ > 0;
    // Processors that executed have served the round; everything else
    // just marked is enabled now by construction, so no further
    // neutralization applies on the opening step.
    for (const Move& m : executed) serve(m.node);
  } else {
    for (const Move& m : executed) serve(m.node);
    if (fullInvalidate) {
      // Resynchronize: compact the pending list against the view.
      std::size_t write = 0;
      for (const NodeId p : pendingList_) {
        if (!pending_[static_cast<std::size_t>(p)]) continue;
        if (!now.anyEnabled(p)) {
          serve(p);
          continue;
        }
        pendingList_[write++] = p;
      }
      pendingList_.resize(write);
    } else {
      // Incremental: only status flips can neutralize a pending node.
      for (const NodeId p : cache_.statusChanges())
        if (pending_[static_cast<std::size_t>(p)] && !now.anyEnabled(p))
          serve(p);
    }
  }
  cache_.clearStatusChanges();
  if (roundActive_ && pendingCount_ == 0) {
    ++roundsDone_;
    roundActive_ = false;
    pendingList_.clear();  // flags are already clear (count hit zero)
  }
}

void Simulator::resetRound() {
  for (const NodeId p : pendingList_)
    pending_[static_cast<std::size_t>(p)] = false;
  pendingList_.clear();
  pendingCount_ = 0;
  roundActive_ = false;
  roundsDone_ = 0;
}

RunStats Simulator::runUntil(const Predicate& goal, StepCount maxMoves) {
  RunStats stats;
  resetRound();
  while (stats.moves < maxMoves) {
    if (goal && goal()) {
      stats.converged = true;
      break;
    }
    const std::vector<Move>& executed = stepOnce();
    if (executed.empty()) {
      stats.terminal = true;
      stats.converged = goal && goal();
      break;
    }
    stats.moves += static_cast<StepCount>(executed.size());
    ++stats.steps;
  }
  if (!stats.converged && !stats.terminal && goal && goal())
    stats.converged = true;
  stats.rounds = roundsDone_;
  flushStats();
  return stats;
}

RunStats Simulator::runToQuiescence(StepCount maxMoves) {
  return runUntil(nullptr, maxMoves);
}

}  // namespace ssno
