// Rooted undirected communication graphs (paper §2.1.1).
//
// A distributed system S = (V, E): V a set of processors, E bidirectional
// communication links.  All processors except the distinguished root are
// anonymous; processors refer to incident links only through local port
// numbers 0..Δp−1.  The Graph is immutable after construction; topology
// builders live in this header as static factories.
//
// Storage is CSR (compressed sparse row): one flat offsets array plus one
// flat neighbor array, so neighbors(p) is a contiguous span and the whole
// structure is two cache-friendly allocations regardless of n.  A hash
// table over directed edges backs portOf/adjacent in O(1); port numbering
// (edge-list insertion order) is unchanged from the nested representation.
#ifndef SSNO_CORE_GRAPH_HPP
#define SSNO_CORE_GRAPH_HPP

#include <cstdint>
#include <span>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/rng.hpp"
#include "core/types.hpp"

namespace ssno {

class Graph {
 public:
  /// Builds a graph from an explicit edge list over nodes 0..n-1.
  /// Duplicate edges and self-loops are rejected.  `root` defaults to 0.
  Graph(int n, const std::vector<std::pair<NodeId, NodeId>>& edges,
        NodeId root = 0);

  [[nodiscard]] int nodeCount() const {
    return static_cast<int>(offsets_.size()) - 1;
  }
  [[nodiscard]] int edgeCount() const { return edge_count_; }
  [[nodiscard]] NodeId root() const { return root_; }

  /// Neighbors of p in port order (a contiguous CSR slice).
  [[nodiscard]] std::span<const NodeId> neighbors(NodeId p) const {
    const std::size_t begin = offsets_[static_cast<std::size_t>(p)];
    const std::size_t end = offsets_[static_cast<std::size_t>(p) + 1];
    return {nbrs_.data() + begin, end - begin};
  }

  [[nodiscard]] int degree(NodeId p) const {
    return static_cast<int>(offsets_[static_cast<std::size_t>(p) + 1] -
                            offsets_[static_cast<std::size_t>(p)]);
  }

  /// Maximum degree Δ.
  [[nodiscard]] int maxDegree() const { return max_degree_; }

  /// The neighbor reached from p through local port `port`.
  [[nodiscard]] NodeId neighborAt(NodeId p, Port port) const {
    return nbrs_[offsets_[static_cast<std::size_t>(p)] +
                 static_cast<std::size_t>(port)];
  }

  /// Flat index of p's port 0 in the CSR layout: (p, l) maps to slot
  /// portBase(p) + l.  This is the indexing scheme shared by all SoA
  /// per-port state columns (core/state_arena, Orientation::label).
  [[nodiscard]] std::size_t portBase(NodeId p) const {
    return offsets_[static_cast<std::size_t>(p)];
  }

  /// Total number of (node, port) slots, i.e. 2m.
  [[nodiscard]] std::size_t portSlotCount() const { return nbrs_.size(); }

  /// The local port of p whose link leads to q; kNoPort if not adjacent.
  /// O(1): one hash lookup in the directed-edge port table.
  [[nodiscard]] Port portOf(NodeId p, NodeId q) const {
    const auto it = ports_.find(edgeKey(p, q));
    return it == ports_.end() ? kNoPort : it->second;
  }

  [[nodiscard]] bool adjacent(NodeId p, NodeId q) const {
    return ports_.contains(edgeKey(p, q));
  }

  [[nodiscard]] bool isConnected() const;

  /// ---- Topology builders ----------------------------------------------
  /// All builders produce connected graphs rooted at node 0.
  static Graph ring(int n);
  static Graph path(int n);
  static Graph star(int n);  ///< node 0 = hub = root
  static Graph complete(int n);
  static Graph grid(int rows, int cols);
  static Graph torus(int rows, int cols);  ///< requires rows,cols >= 3
  static Graph hypercube(int dim);
  /// Complete graph on `cliqueSize` nodes with a path of `tailLen` hanging
  /// off it (the classic "lollipop"); root in the clique.
  static Graph lollipop(int cliqueSize, int tailLen);
  /// Balanced k-ary tree with n nodes (BFS numbering).
  static Graph kAryTree(int n, int k);
  /// Spine of length `spine`, each spine node with `legs` pendant leaves.
  static Graph caterpillar(int spine, int legs);
  /// Uniform random labelled tree (random Prüfer sequence).
  static Graph randomTree(int n, Rng& rng);
  /// Connected G(n, p): a random spanning tree plus independent extra edges.
  static Graph randomConnected(int n, double extraEdgeProb, Rng& rng);

  /// The 5-node example of Figures 3.1.1 (r, a, b, c, d).  Node ids:
  /// r=0, a=1, b=2, c=3, d=4; edges r-b, r-a, b-d, d-c, c-a ordered so the
  /// DFS in port order reproduces the figure's visit sequence
  /// r, b, d, c, (backtrack) then a.
  static Graph figure311();

  /// The 5-node cycle of Figure 2.2.1 used to illustrate the chordal
  /// labeling (ring of 5 with one chord).
  static Graph figure221();

 private:
  [[nodiscard]] static std::uint64_t edgeKey(NodeId p, NodeId q) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(p)) << 32) |
           static_cast<std::uint32_t>(q);
  }

  std::vector<std::size_t> offsets_;  // n+1 entries
  std::vector<NodeId> nbrs_;          // 2m entries, port order per node
  std::unordered_map<std::uint64_t, Port> ports_;  // (p,q) -> port at p
  NodeId root_ = 0;
  int edge_count_ = 0;
  int max_degree_ = 0;
};

}  // namespace ssno

#endif  // SSNO_CORE_GRAPH_HPP
