#include "core/checker.hpp"

#include <algorithm>
#include <sstream>
#include <unordered_map>

#include "core/assert.hpp"
#include "core/bitwords.hpp"
#include "core/enabled_cache.hpp"
#include "core/scheduler.hpp"
#include "core/sync_engine.hpp"
#include "mc/properties.hpp"

namespace ssno {
namespace {

/// Mixed-radix index <-> per-node code vector, with delta decoding:
/// decodeDelta rewrites only the nodes whose code changed since the
/// last decode, so the protocol's dirty set (and the EnabledCache fed
/// from it) stays proportional to the diff.  decodeInto is the naive
/// full decode (invalidates every guard), kept for setNaiveExpansion.
class ConfigIndexer {
 public:
  explicit ConfigIndexer(const Protocol& p) {
    const auto n = static_cast<std::size_t>(p.graph().nodeCount());
    radices_.reserve(n);
    weights_.reserve(n);
    total_ = 1;
    overflow_ = false;
    for (NodeId q = 0; q < p.graph().nodeCount(); ++q) {
      const std::uint64_t r = p.localStateCount(q);
      SSNO_EXPECTS(r >= 1);
      radices_.push_back(r);
      weights_.push_back(total_);  // product of radices before q
      if (total_ > UINT64_MAX / r) overflow_ = true;
      if (!overflow_) total_ *= r;
    }
    codes_.resize(n);
  }

  [[nodiscard]] bool overflow() const { return overflow_; }
  [[nodiscard]] std::uint64_t total() const { return total_; }

  /// Code of node q in the most recently decoded index.
  [[nodiscard]] std::uint64_t code(NodeId q) const {
    return codes_[static_cast<std::size_t>(q)];
  }

  /// Index of the configuration that differs from `index` only at q
  /// (exact in mod-2^64 arithmetic since total() fits 64 bits) — the
  /// O(1) replacement for re-encoding all n nodes per successor.
  [[nodiscard]] std::uint64_t successorIndex(std::uint64_t index, NodeId q,
                                             std::uint64_t oldCode,
                                             std::uint64_t newCode) const {
    return index + (newCode - oldCode) * weights_[static_cast<std::size_t>(q)];
  }

  void decodeInto(Protocol& p, std::uint64_t index) {
    codesOf(index);
    p.decodeConfiguration(codes_);
    prev_ = codes_;
  }

  void decodeDelta(Protocol& p, std::uint64_t index) {
    codesOf(index);
    p.decodeConfigurationDelta(codes_, prev_);
  }

  [[nodiscard]] std::uint64_t encodeFrom(const Protocol& p) const {
    std::uint64_t index = 0;
    for (std::size_t q = radices_.size(); q-- > 0;) {
      index = index * radices_[q] + p.encodeNode(static_cast<NodeId>(q));
    }
    return index;
  }

 private:
  void codesOf(std::uint64_t index) {
    for (std::size_t q = 0; q < radices_.size(); ++q) {
      codes_[q] = index % radices_[q];
      index /= radices_[q];
    }
  }

  std::vector<std::uint64_t> radices_;
  std::vector<std::uint64_t> weights_;
  std::vector<std::uint64_t> codes_;  // last decoded index's codes
  std::vector<std::uint64_t> prev_;   // delta-tracking state
  std::uint64_t total_ = 1;
  bool overflow_ = false;
};

std::string describeConfig(const Protocol& p) {
  return mc::describeConfiguration(p);
}

}  // namespace

CheckResult ModelChecker::verifyFullSpace(std::uint64_t maxConfigs,
                                          Fairness fairness) {
  CheckResult res;
  if (sync_ && fairness != Fairness::kNone) {
    res.failure =
        "fairness-aware modes are not supported under synchronous steps";
    return res;
  }
  ConfigIndexer ix(protocol_);
  if (ix.overflow() || ix.total() > maxConfigs) {
    res.failure = "state space too large for exhaustive check";
    return res;
  }
  const int actions = protocol_.actionCount();
  const std::uint64_t total = ix.total();

  EnabledCache cache(protocol_);
  cache.setForceNaive(naive_);

  std::vector<std::uint8_t> isLegit(total, 0);
  for (std::uint64_t c = 0; c < total; ++c) {
    if (naive_)
      ix.decodeInto(protocol_, c);
    else
      ix.decodeDelta(protocol_, c);
    isLegit[c] = legit_() ? 1 : 0;
  }

  /// Decodes c and snapshots the enabled set as (node, mask) pairs (the
  /// cache's own view is only valid until the next mutation).
  NodeMasks expandBuf;
  auto expand = [&](std::uint64_t c) -> const NodeMasks& {
    if (naive_)
      ix.decodeInto(protocol_, c);
    else
      ix.decodeDelta(protocol_, c);
    expandBuf.clear();
    cache.refreshView().appendNodeMasks(expandBuf);
    return expandBuf;
  };
  /// Successor of the currently decoded c by move m; restores c before
  /// returning.  (A statement writes only its own processor's
  /// variables, so restoring the acted node alone suffices.)
  auto successorOf = [&](std::uint64_t c, const Move& m) {
    const std::uint64_t oldCode = ix.code(m.node);
    protocol_.execute(m.node, m.action);
    const std::uint64_t s =
        naive_ ? ix.encodeFrom(protocol_)
               : ix.successorIndex(c, m.node, oldCode,
                                   protocol_.encodeNode(m.node));
    protocol_.decodeNode(m.node, oldCode);
    return s;
  };
  // Synchronous-successor machinery: a transition executes one
  // simultaneous move set (every enabled processor acts) through the
  // columnar engine — batched snapshot/restore of the acting set, one
  // deferred dirty pass — then patches the mixed-radix index once per
  // actor and rolls the acting set back in place.
  SimultaneousEngine engine(protocol_);
  std::vector<Move> selScratch;
  constexpr int kSyncTag = -1;  // no single actor pair for a sync step
  auto forEachSuccessor = [&](std::uint64_t c, const NodeMasks& enabled,
                              auto&& fn /*(successor, actorPairTag) ->
                                          bool: keep enumerating?*/) {
    bool go = true;
    if (!sync_) {
      forEachMove(enabled, [&](const Move& m) {
        if (!go) return;
        go = fn(successorOf(c, m), m.node * actions + m.action);
      });
      return;
    }
    forEachSimultaneousSelection(
        enabled, selScratch, [&](std::span<const Move> set) -> bool {
          engine.execute(set);
          std::uint64_t s;
          if (naive_) {
            s = ix.encodeFrom(protocol_);
          } else {
            s = c;
            for (const Move& m : set)
              s = ix.successorIndex(s, m.node, ix.code(m.node),
                                    protocol_.encodeNode(m.node));
          }
          engine.undo();
          go = fn(s, kSyncTag);
          return go;
        });
  };
  auto successorsVec = [&](std::uint64_t c) {
    std::vector<std::pair<std::uint64_t, int>> succ;  // (config, actor)
    forEachSuccessor(c, expand(c), [&](std::uint64_t s, int tag) {
      succ.emplace_back(s, tag);
      return true;
    });
    return succ;
  };

  // Pass 1: deadlock + closure; assign dense ids to illegitimate configs.
  std::vector<std::uint64_t> illegitIds(total, UINT64_MAX);
  std::uint64_t illegitCount = 0;
  for (std::uint64_t c = 0; c < total; ++c) {
    ++res.configsExplored;
    const NodeMasks& enabled = expand(c);
    if (isLegit[c]) {
      bool closed = true;
      forEachSuccessor(c, enabled, [&](std::uint64_t s, int) {
        if (!isLegit[s]) {
          closed = false;
          return false;  // violation found: stop enumerating
        }
        return true;
      });
      if (!closed) {
        ix.decodeDelta(protocol_, c);
        res.failure = "closure violated; legitimate configuration:\n" +
                      describeConfig(protocol_);
        return res;
      }
      continue;
    }
    if (enabled.empty()) {
      res.failure = "illegitimate terminal (deadlocked) configuration:\n" +
                    describeConfig(protocol_);
      return res;
    }
    illegitIds[c] = illegitCount++;
  }

  if (fairness != Fairness::kNone) {
    // Materialize the illegitimate sub-digraph with actors and
    // enabled-pair masks (read off the expansion snapshot), then look
    // for a fair-feasible cycle.  Pair masks are multi-word, so there
    // is no node·actions <= 64 cap.
    mc::TransitionGraph g;
    g.adj.resize(illegitCount);
    g.initMasks(illegitCount,
                static_cast<std::size_t>(protocol_.graph().nodeCount()) *
                    static_cast<std::size_t>(actions));
    std::vector<std::uint64_t> localToGlobal(illegitCount);
    for (std::uint64_t c = 0; c < total; ++c) {
      if (isLegit[c]) continue;
      const std::uint64_t id = illegitIds[c];
      localToGlobal[id] = c;
      forEachMove(expand(c), [&](const Move& m) {
        const int pair = m.node * actions + m.action;
        bits::maskSet(g.maskOf(id), static_cast<std::size_t>(pair));
        const std::uint64_t s = successorOf(c, m);
        if (!isLegit[s])
          g.adj[id].push_back({static_cast<int>(illegitIds[s]), pair});
      });
    }
    const int bad = mc::findFairCycle(g, fairness);
    if (bad >= 0) {
      ix.decodeDelta(protocol_,
                     localToGlobal[static_cast<std::size_t>(bad)]);
      res.failure =
          "convergence violated: fair-feasible cycle through "
          "illegitimate configuration:\n" +
          describeConfig(protocol_);
      return res;
    }
    res.ok = true;
    return res;
  }

  // Strict mode: the illegitimate sub-digraph must be acyclic.
  // (0=white, 1=gray, 2=black; successors recomputed on demand to keep
  // memory at one byte per configuration.)
  std::vector<std::uint8_t> color(total, 0);
  std::vector<std::uint64_t> stack;
  std::vector<std::size_t> stackPos;
  std::vector<std::vector<std::pair<std::uint64_t, int>>> stackSucc;
  for (std::uint64_t start = 0; start < total; ++start) {
    if (isLegit[start] || color[start] != 0) continue;
    stack.assign(1, start);
    stackSucc.assign(1, successorsVec(start));
    stackPos.assign(1, 0);
    color[start] = 1;
    while (!stack.empty()) {
      bool descended = false;
      while (stackPos.back() < stackSucc.back().size()) {
        const std::uint64_t next = stackSucc.back()[stackPos.back()++].first;
        if (isLegit[next]) continue;
        if (color[next] == 1) {
          ix.decodeDelta(protocol_, next);
          res.failure =
              "convergence violated: cycle through illegitimate "
              "configuration:\n" +
              describeConfig(protocol_);
          return res;
        }
        if (color[next] == 0) {
          color[next] = 1;
          stack.push_back(next);
          stackSucc.push_back(successorsVec(next));
          stackPos.push_back(0);
          descended = true;
          break;
        }
      }
      if (!descended && stackPos.back() >= stackSucc.back().size()) {
        color[stack.back()] = 2;
        stack.pop_back();
        stackSucc.pop_back();
        stackPos.pop_back();
      }
    }
  }
  res.ok = true;
  return res;
}

CheckResult ModelChecker::verifyReachable(
    const std::vector<std::vector<std::uint64_t>>& seeds,
    std::uint64_t maxConfigs, Fairness fairness) {
  CheckResult res;
  if (sync_ && fairness != Fairness::kNone) {
    res.failure =
        "fairness-aware modes are not supported under synchronous steps";
    return res;
  }
  const int actions = protocol_.actionCount();
  const std::size_t pairBits =
      static_cast<std::size_t>(protocol_.graph().nodeCount()) *
      static_cast<std::size_t>(actions);
  const std::size_t maskWords =
      fairness != Fairness::kNone ? std::max<std::size_t>(
                                        1, bits::wordsFor(pairBits))
                                  : 1;
  struct VecHash {
    std::size_t operator()(const std::vector<std::uint64_t>& v) const {
      std::uint64_t h = 0xCBF29CE484222325ULL;
      for (std::uint64_t x : v) {
        h ^= x;
        h *= 0x100000001B3ULL;
      }
      return static_cast<std::size_t>(h);
    }
  };
  std::unordered_map<std::vector<std::uint64_t>, int, VecHash> id;
  std::vector<std::vector<std::uint64_t>> configs;
  std::vector<std::uint8_t> isLegit;
  // Per-config multi-word enabled-pair masks, flat arena (filled at
  // expansion; maskWords words per config).
  std::vector<std::uint64_t> enabledMask;

  EnabledCache cache(protocol_);
  cache.setForceNaive(naive_);
  std::vector<std::uint64_t> cur;  // codes currently decoded in protocol_
  NodeMasks enabledBuf;            // stable snapshot of each refresh
  SimultaneousEngine engine(protocol_);  // synchronous move-set execution
  std::vector<Move> selScratch;
  constexpr int kSyncTag = -1;

  /// Interns the configuration the protocol currently holds (legitimacy
  /// is evaluated in place — no re-decode).
  auto internCurrent = [&]() -> int {
    auto [it, inserted] = id.try_emplace(protocol_.encodeConfiguration(),
                                         static_cast<int>(configs.size()));
    if (inserted) {
      configs.push_back(it->first);
      isLegit.push_back(legit_() ? 1 : 0);
      enabledMask.resize(enabledMask.size() + maskWords, 0);
    }
    return it->second;
  };

  struct OutEdge {
    int to;
    int actorPair;
  };
  std::vector<std::vector<OutEdge>> adj;
  std::vector<std::uint8_t> explored;

  std::vector<int> frontier;
  for (const auto& s : seeds) {
    protocol_.decodeConfigurationDelta(s, cur);
    frontier.push_back(internCurrent());
  }
  for (std::size_t head = 0; head < frontier.size(); ++head) {
    const int c = frontier[head];
    while (static_cast<int>(adj.size()) <= c) {
      adj.emplace_back();
      explored.push_back(0);
    }
    if (explored[static_cast<std::size_t>(c)]) continue;
    explored[static_cast<std::size_t>(c)] = 1;
    if (naive_) {
      protocol_.decodeConfiguration(configs[static_cast<std::size_t>(c)]);
      cur = configs[static_cast<std::size_t>(c)];
    } else {
      protocol_.decodeConfigurationDelta(configs[static_cast<std::size_t>(c)],
                                         cur);
    }
    enabledBuf.clear();
    cache.refreshView().appendNodeMasks(enabledBuf);
    if (enabledBuf.empty() && !isLegit[static_cast<std::size_t>(c)]) {
      res.failure = "illegitimate terminal (deadlocked) configuration:\n" +
                    describeConfig(protocol_);
      return res;
    }
    if (fairness != Fairness::kNone) {
      std::uint64_t* mask =
          enabledMask.data() + static_cast<std::size_t>(c) * maskWords;
      forEachMove(enabledBuf, [&](const Move& m) {
        bits::maskSet(mask,
                      static_cast<std::size_t>(m.node * actions + m.action));
      });
    }
    bool failed = false;
    auto visitChild = [&](int s, int pair) {
      // Called with the protocol restored to c (cur still describes c).
      if (configs.size() > maxConfigs) {
        res.failure = "reachable space exceeded maxConfigs";
        failed = true;
        return;
      }
      if (isLegit[static_cast<std::size_t>(c)] &&
          !isLegit[static_cast<std::size_t>(s)]) {
        res.failure = "closure violated; legitimate configuration:\n" +
                      describeConfig(protocol_);
        failed = true;
        return;
      }
      adj[static_cast<std::size_t>(c)].push_back({s, pair});
      frontier.push_back(s);
    };
    if (sync_) {
      // One successor per simultaneous selection, executed in place by
      // the columnar engine and rolled back via its batched restore.
      forEachSimultaneousSelection(
          enabledBuf, selScratch, [&](std::span<const Move> set) {
            if (failed) return;
            engine.execute(set);
            const int s = internCurrent();
            engine.undo();
            visitChild(s, kSyncTag);
          });
    } else {
      forEachMove(enabledBuf, [&](const Move& m) {
        if (failed) return;
        protocol_.execute(m.node, m.action);
        const int s = internCurrent();
        // Only m.node's variables differ from c, so restoring that one
        // node returns to c for the next move (cur still describes c).
        protocol_.decodeNode(
            m.node,
            configs[static_cast<std::size_t>(c)][static_cast<std::size_t>(
                m.node)]);
        visitChild(s, m.node * actions + m.action);
      });
    }
    if (failed) return res;
  }
  res.configsExplored = configs.size();
  const int total = static_cast<int>(configs.size());

  if (fairness != Fairness::kNone) {
    // Project to the illegitimate sub-digraph.
    std::vector<int> localId(static_cast<std::size_t>(total), -1);
    mc::TransitionGraph g;
    std::vector<int> localToGlobal;
    for (int c = 0; c < total; ++c) {
      if (isLegit[static_cast<std::size_t>(c)]) continue;
      localId[static_cast<std::size_t>(c)] =
          static_cast<int>(localToGlobal.size());
      localToGlobal.push_back(c);
    }
    g.adj.resize(localToGlobal.size());
    g.initMasks(localToGlobal.size(), pairBits);
    for (int c = 0; c < total; ++c) {
      const int lc = localId[static_cast<std::size_t>(c)];
      if (lc < 0) continue;
      std::copy_n(enabledMask.data() + static_cast<std::size_t>(c) * maskWords,
                  maskWords, g.maskOf(static_cast<std::size_t>(lc)));
      for (const auto& e : adj[static_cast<std::size_t>(c)]) {
        const int lt = localId[static_cast<std::size_t>(e.to)];
        if (lt >= 0)
          g.adj[static_cast<std::size_t>(lc)].push_back({lt, e.actorPair});
      }
    }
    const int bad = mc::findFairCycle(g, fairness);
    if (bad >= 0) {
      protocol_.decodeConfigurationDelta(
          configs[static_cast<std::size_t>(
              localToGlobal[static_cast<std::size_t>(bad)])],
          cur);
      res.failure =
          "convergence violated: fair-feasible cycle through "
          "illegitimate configuration:\n" +
          describeConfig(protocol_);
      return res;
    }
    res.ok = true;
    return res;
  }

  // Strict mode: cycle detection on the illegitimate subgraph.
  std::vector<std::uint8_t> color(static_cast<std::size_t>(total), 0);
  std::vector<int> stack, pos;
  for (int start = 0; start < total; ++start) {
    if (isLegit[static_cast<std::size_t>(start)] ||
        color[static_cast<std::size_t>(start)] != 0)
      continue;
    stack.assign(1, start);
    pos.assign(1, 0);
    color[static_cast<std::size_t>(start)] = 1;
    while (!stack.empty()) {
      const int curState = stack.back();
      const auto& succ = adj[static_cast<std::size_t>(curState)];
      bool descended = false;
      while (pos.back() < static_cast<int>(succ.size())) {
        const int next = succ[static_cast<std::size_t>(pos.back()++)].to;
        if (isLegit[static_cast<std::size_t>(next)]) continue;
        if (color[static_cast<std::size_t>(next)] == 1) {
          protocol_.decodeConfigurationDelta(
              configs[static_cast<std::size_t>(next)], cur);
          res.failure =
              "convergence violated: cycle through illegitimate "
              "configuration:\n" +
              describeConfig(protocol_);
          return res;
        }
        if (color[static_cast<std::size_t>(next)] == 0) {
          color[static_cast<std::size_t>(next)] = 1;
          stack.push_back(next);
          pos.push_back(0);
          descended = true;
          break;
        }
      }
      if (!descended && pos.back() >= static_cast<int>(succ.size())) {
        color[stack.back()] = 2;
        stack.pop_back();
        pos.pop_back();
      }
    }
  }
  res.ok = true;
  return res;
}

CheckResult ModelChecker::monteCarlo(Daemon& daemon, Rng& rng, int trials,
                                     StepCount maxMoves,
                                     StepCount closureMoves) {
  CheckResult res;
  for (int t = 0; t < trials; ++t) {
    protocol_.randomize(rng);
    Simulator sim(protocol_, daemon, rng);
    const RunStats stats = sim.runUntil([this] { return legit_(); }, maxMoves);
    ++res.configsExplored;
    if (!stats.converged) {
      std::ostringstream msg;
      msg << "trial " << t << " failed to converge within " << maxMoves
          << " moves under " << daemon.name() << " daemon; configuration:\n"
          << describeConfig(protocol_);
      res.failure = msg.str();
      return res;
    }
    // Closure spot check: legitimacy persists.
    StepCount done = 0;
    while (done < closureMoves) {
      const std::vector<Move>& executed = sim.stepOnce();
      if (executed.empty()) break;
      done += static_cast<StepCount>(executed.size());
      if (!legit_()) {
        std::ostringstream msg;
        msg << "trial " << t << ": closure violated after convergence under "
            << daemon.name() << " daemon; configuration:\n"
            << describeConfig(protocol_);
        res.failure = msg.str();
        return res;
      }
    }
  }
  res.ok = true;
  return res;
}

}  // namespace ssno
