#include "core/checker.hpp"

#include <algorithm>
#include <sstream>
#include <unordered_map>

#include "core/assert.hpp"
#include "core/scheduler.hpp"

namespace ssno {
namespace {

/// Mixed-radix index <-> per-node code vector.
class ConfigIndexer {
 public:
  explicit ConfigIndexer(const Protocol& p) {
    radices_.reserve(static_cast<std::size_t>(p.graph().nodeCount()));
    total_ = 1;
    overflow_ = false;
    for (NodeId q = 0; q < p.graph().nodeCount(); ++q) {
      const std::uint64_t r = p.localStateCount(q);
      SSNO_EXPECTS(r >= 1);
      radices_.push_back(r);
      if (total_ > UINT64_MAX / r) overflow_ = true;
      if (!overflow_) total_ *= r;
    }
  }

  [[nodiscard]] bool overflow() const { return overflow_; }
  [[nodiscard]] std::uint64_t total() const { return total_; }

  void decodeInto(Protocol& p, std::uint64_t index,
                  std::vector<std::uint64_t>* codes = nullptr) const {
    if (codes) codes->resize(radices_.size());
    for (std::size_t q = 0; q < radices_.size(); ++q) {
      const std::uint64_t code = index % radices_[q];
      p.decodeNode(static_cast<NodeId>(q), code);
      if (codes) (*codes)[q] = code;
      index /= radices_[q];
    }
  }

  [[nodiscard]] std::uint64_t encodeFrom(const Protocol& p) const {
    std::uint64_t index = 0;
    for (std::size_t q = radices_.size(); q-- > 0;) {
      index = index * radices_[q] + p.encodeNode(static_cast<NodeId>(q));
    }
    return index;
  }

 private:
  std::vector<std::uint64_t> radices_;
  std::uint64_t total_ = 1;
  bool overflow_ = false;
};

std::string describeConfig(const Protocol& p) {
  std::ostringstream out;
  for (NodeId q = 0; q < p.graph().nodeCount(); ++q)
    out << "  node " << q << ": " << p.dumpNode(q) << '\n';
  return out.str();
}

/// Bitmask of enabled (processor, action) pairs: bit = node·A + action.
/// Fairness constraints are tracked at action granularity — a processor
/// serving one action does not discharge the obligation to eventually
/// serve another that stays enabled.
std::uint64_t enabledPairMask(const Protocol& p) {
  std::uint64_t mask = 0;
  const int actions = p.actionCount();
  for (NodeId q = 0; q < p.graph().nodeCount(); ++q)
    for (int a = 0; a < actions; ++a)
      if (p.enabled(q, a))
        mask |= (1ULL << (q * actions + a));
  return mask;
}

/// Transition system over an explicit set of (illegitimate) states.
/// States are dense local ids; edges carry the acting (node, action) pair.
struct IllegitGraph {
  struct Edge {
    int to;
    int actorPair;  // node·actionCount + action
  };
  std::vector<std::vector<Edge>> adj;     // per illegit state
  std::vector<std::uint64_t> enabledMask; // per illegit state
};

/// SCC-wise fairness feasibility (see header).  Returns the local id of a
/// state inside a fair-feasible illegitimate cycle, or -1 if none.
/// Weak fairness forbids cycles starving an ALWAYS-enabled action;
/// strong fairness forbids cycles starving an EVER-enabled action.
int findFairCycle(const IllegitGraph& g, Fairness fairness) {
  const int n = static_cast<int>(g.adj.size());
  // Iterative Tarjan.
  std::vector<int> index(static_cast<std::size_t>(n), -1);
  std::vector<int> low(static_cast<std::size_t>(n), 0);
  std::vector<int> sccOf(static_cast<std::size_t>(n), -1);
  std::vector<bool> onStack(static_cast<std::size_t>(n), false);
  std::vector<int> tarjanStack;
  int nextIndex = 0;
  int sccCount = 0;

  struct Frame {
    int v;
    std::size_t child;
  };
  std::vector<Frame> callStack;
  for (int start = 0; start < n; ++start) {
    if (index[static_cast<std::size_t>(start)] != -1) continue;
    callStack.push_back({start, 0});
    index[static_cast<std::size_t>(start)] =
        low[static_cast<std::size_t>(start)] = nextIndex++;
    tarjanStack.push_back(start);
    onStack[static_cast<std::size_t>(start)] = true;
    while (!callStack.empty()) {
      Frame& f = callStack.back();
      const auto& edges = g.adj[static_cast<std::size_t>(f.v)];
      if (f.child < edges.size()) {
        const int w = edges[f.child++].to;
        if (index[static_cast<std::size_t>(w)] == -1) {
          index[static_cast<std::size_t>(w)] =
              low[static_cast<std::size_t>(w)] = nextIndex++;
          tarjanStack.push_back(w);
          onStack[static_cast<std::size_t>(w)] = true;
          callStack.push_back({w, 0});
        } else if (onStack[static_cast<std::size_t>(w)]) {
          low[static_cast<std::size_t>(f.v)] =
              std::min(low[static_cast<std::size_t>(f.v)],
                       index[static_cast<std::size_t>(w)]);
        }
      } else {
        const int v = f.v;
        callStack.pop_back();
        if (!callStack.empty()) {
          const int parent = callStack.back().v;
          low[static_cast<std::size_t>(parent)] =
              std::min(low[static_cast<std::size_t>(parent)],
                       low[static_cast<std::size_t>(v)]);
        }
        if (low[static_cast<std::size_t>(v)] ==
            index[static_cast<std::size_t>(v)]) {
          while (true) {
            const int w = tarjanStack.back();
            tarjanStack.pop_back();
            onStack[static_cast<std::size_t>(w)] = false;
            sccOf[static_cast<std::size_t>(w)] = sccCount;
            if (w == v) break;
          }
          ++sccCount;
        }
      }
    }
  }

  // Per-SCC aggregates.
  std::vector<std::uint64_t> enabledAll(static_cast<std::size_t>(sccCount),
                                        ~0ULL);
  std::vector<std::uint64_t> enabledAny(static_cast<std::size_t>(sccCount), 0);
  std::vector<std::uint64_t> actsInside(static_cast<std::size_t>(sccCount), 0);
  std::vector<bool> hasInternalEdge(static_cast<std::size_t>(sccCount), false);
  std::vector<int> representative(static_cast<std::size_t>(sccCount), -1);
  for (int v = 0; v < n; ++v) {
    const int s = sccOf[static_cast<std::size_t>(v)];
    enabledAll[static_cast<std::size_t>(s)] &=
        g.enabledMask[static_cast<std::size_t>(v)];
    enabledAny[static_cast<std::size_t>(s)] |=
        g.enabledMask[static_cast<std::size_t>(v)];
    representative[static_cast<std::size_t>(s)] = v;
    for (const auto& e : g.adj[static_cast<std::size_t>(v)]) {
      if (sccOf[static_cast<std::size_t>(e.to)] == s) {
        hasInternalEdge[static_cast<std::size_t>(s)] = true;
        actsInside[static_cast<std::size_t>(s)] |= (1ULL << e.actorPair);
      }
    }
  }

  for (int s = 0; s < sccCount; ++s) {
    if (!hasInternalEdge[static_cast<std::size_t>(s)]) continue;
    // The SCC hosts a fair infinite execution iff no action that the
    // fairness notion protects is starved inside it.  (enabledAll is an
    // AND over configuration masks, so stray high bits vanish.)
    const std::uint64_t protectedPairs =
        fairness == Fairness::kStronglyFair
            ? enabledAny[static_cast<std::size_t>(s)]
            : enabledAll[static_cast<std::size_t>(s)];
    const std::uint64_t starved =
        protectedPairs & ~actsInside[static_cast<std::size_t>(s)];
    if (starved == 0) return representative[static_cast<std::size_t>(s)];
  }
  return -1;
}

}  // namespace

CheckResult ModelChecker::verifyFullSpace(std::uint64_t maxConfigs,
                                          Fairness fairness) {
  CheckResult res;
  const ConfigIndexer ix(protocol_);
  if (ix.overflow() || ix.total() > maxConfigs) {
    res.failure = "state space too large for exhaustive check";
    return res;
  }
  if (fairness != Fairness::kNone &&
      protocol_.graph().nodeCount() * protocol_.actionCount() > 64) {
    res.failure = "fairness-aware check limited to 64 (node, action) pairs";
    return res;
  }
  const std::uint64_t total = ix.total();

  std::vector<std::uint8_t> isLegit(total, 0);
  for (std::uint64_t c = 0; c < total; ++c) {
    ix.decodeInto(protocol_, c);
    isLegit[c] = legit_() ? 1 : 0;
  }

  std::vector<std::uint64_t> nodeCodes;
  auto successors = [&](std::uint64_t c) {
    std::vector<std::pair<std::uint64_t, int>> succ;  // (config, actor)
    ix.decodeInto(protocol_, c, &nodeCodes);
    const std::vector<Move> moves = protocol_.enabledMoves();
    succ.reserve(moves.size());
    const int actions = protocol_.actionCount();
    for (const Move& m : moves) {
      protocol_.execute(m.node, m.action);
      succ.emplace_back(ix.encodeFrom(protocol_), m.node * actions + m.action);
      // A statement writes only its own processor's variables, so
      // restoring the acted node alone returns the protocol to c.
      protocol_.decodeNode(m.node,
                           nodeCodes[static_cast<std::size_t>(m.node)]);
    }
    return succ;
  };

  // Pass 1: deadlock + closure; assign dense ids to illegitimate configs.
  std::vector<std::uint64_t> illegitIds(total, UINT64_MAX);
  std::uint64_t illegitCount = 0;
  for (std::uint64_t c = 0; c < total; ++c) {
    ++res.configsExplored;
    const auto succ = successors(c);
    if (isLegit[c]) {
      for (const auto& [s, actor] : succ) {
        if (!isLegit[s]) {
          ix.decodeInto(protocol_, c);
          res.failure = "closure violated; legitimate configuration:\n" +
                        describeConfig(protocol_);
          return res;
        }
      }
      continue;
    }
    if (succ.empty()) {
      ix.decodeInto(protocol_, c);
      res.failure = "illegitimate terminal (deadlocked) configuration:\n" +
                    describeConfig(protocol_);
      return res;
    }
    illegitIds[c] = illegitCount++;
  }

  if (fairness != Fairness::kNone) {
    // Materialize the illegitimate sub-digraph with actors and
    // enabled-processor masks, then look for a fair-feasible cycle.
    IllegitGraph g;
    g.adj.resize(illegitCount);
    g.enabledMask.resize(illegitCount);
    std::vector<std::uint64_t> localToGlobal(illegitCount);
    for (std::uint64_t c = 0; c < total; ++c) {
      if (isLegit[c]) continue;
      const std::uint64_t id = illegitIds[c];
      localToGlobal[id] = c;
      for (const auto& [s, actor] : successors(c)) {
        if (!isLegit[s])
          g.adj[id].push_back({static_cast<int>(illegitIds[s]), actor});
      }
      ix.decodeInto(protocol_, c);
      g.enabledMask[id] = enabledPairMask(protocol_);
    }
    const int bad = findFairCycle(g, fairness);
    if (bad >= 0) {
      ix.decodeInto(protocol_, localToGlobal[static_cast<std::size_t>(bad)]);
      res.failure =
          "convergence violated: fair-feasible cycle through "
          "illegitimate configuration:\n" +
          describeConfig(protocol_);
      return res;
    }
    res.ok = true;
    return res;
  }

  // Strict mode: the illegitimate sub-digraph must be acyclic.
  // (0=white, 1=gray, 2=black; successors recomputed on demand to keep
  // memory at one byte per configuration.)
  std::vector<std::uint8_t> color(total, 0);
  std::vector<std::uint64_t> stack;
  std::vector<std::size_t> stackPos;
  std::vector<std::vector<std::pair<std::uint64_t, int>>> stackSucc;
  for (std::uint64_t start = 0; start < total; ++start) {
    if (isLegit[start] || color[start] != 0) continue;
    stack.assign(1, start);
    stackSucc.assign(1, successors(start));
    stackPos.assign(1, 0);
    color[start] = 1;
    while (!stack.empty()) {
      bool descended = false;
      while (stackPos.back() < stackSucc.back().size()) {
        const std::uint64_t next = stackSucc.back()[stackPos.back()++].first;
        if (isLegit[next]) continue;
        if (color[next] == 1) {
          ix.decodeInto(protocol_, next);
          res.failure =
              "convergence violated: cycle through illegitimate "
              "configuration:\n" +
              describeConfig(protocol_);
          return res;
        }
        if (color[next] == 0) {
          color[next] = 1;
          stack.push_back(next);
          stackSucc.push_back(successors(next));
          stackPos.push_back(0);
          descended = true;
          break;
        }
      }
      if (!descended && stackPos.back() >= stackSucc.back().size()) {
        color[stack.back()] = 2;
        stack.pop_back();
        stackSucc.pop_back();
        stackPos.pop_back();
      }
    }
  }
  res.ok = true;
  return res;
}

CheckResult ModelChecker::verifyReachable(
    const std::vector<std::vector<std::uint64_t>>& seeds,
    std::uint64_t maxConfigs, Fairness fairness) {
  CheckResult res;
  if (fairness != Fairness::kNone &&
      protocol_.graph().nodeCount() * protocol_.actionCount() > 64) {
    res.failure = "fairness-aware check limited to 64 (node, action) pairs";
    return res;
  }
  struct VecHash {
    std::size_t operator()(const std::vector<std::uint64_t>& v) const {
      std::uint64_t h = 0xCBF29CE484222325ULL;
      for (std::uint64_t x : v) {
        h ^= x;
        h *= 0x100000001B3ULL;
      }
      return static_cast<std::size_t>(h);
    }
  };
  std::unordered_map<std::vector<std::uint64_t>, int, VecHash> id;
  std::vector<std::vector<std::uint64_t>> configs;
  std::vector<std::uint8_t> isLegit;
  std::vector<std::uint64_t> enabledMask;

  auto intern = [&](const std::vector<std::uint64_t>& code) -> int {
    auto [it, inserted] =
        id.try_emplace(code, static_cast<int>(configs.size()));
    if (inserted) {
      configs.push_back(code);
      protocol_.decodeConfiguration(code);
      isLegit.push_back(legit_() ? 1 : 0);
      enabledMask.push_back(enabledPairMask(protocol_));
    }
    return it->second;
  };

  struct OutEdge {
    int to;
    int actorPair;
  };
  std::vector<std::vector<OutEdge>> adj;
  std::vector<std::uint8_t> explored;

  std::vector<int> frontier;
  for (const auto& s : seeds) frontier.push_back(intern(s));
  for (std::size_t head = 0; head < frontier.size(); ++head) {
    const int c = frontier[head];
    while (static_cast<int>(adj.size()) <= c) {
      adj.emplace_back();
      explored.push_back(0);
    }
    if (explored[static_cast<std::size_t>(c)]) continue;
    explored[static_cast<std::size_t>(c)] = 1;
    protocol_.decodeConfiguration(configs[static_cast<std::size_t>(c)]);
    const std::vector<Move> moves = protocol_.enabledMoves();
    if (moves.empty() && !isLegit[static_cast<std::size_t>(c)]) {
      res.failure = "illegitimate terminal (deadlocked) configuration:\n" +
                    describeConfig(protocol_);
      return res;
    }
    for (const Move& m : moves) {
      protocol_.execute(m.node, m.action);
      const int s = intern(protocol_.encodeConfiguration());
      // intern() may leave the protocol decoded to the successor; either
      // way only m.node's variables differ from c, so restoring that one
      // node returns to c for the next move.
      protocol_.decodeNode(
          m.node,
          configs[static_cast<std::size_t>(c)][static_cast<std::size_t>(
              m.node)]);
      if (configs.size() > maxConfigs) {
        res.failure = "reachable space exceeded maxConfigs";
        return res;
      }
      if (isLegit[static_cast<std::size_t>(c)] &&
          !isLegit[static_cast<std::size_t>(s)]) {
        protocol_.decodeConfiguration(configs[static_cast<std::size_t>(c)]);
        res.failure = "closure violated; legitimate configuration:\n" +
                      describeConfig(protocol_);
        return res;
      }
      adj[static_cast<std::size_t>(c)].push_back(
          {s, m.node * protocol_.actionCount() + m.action});
      frontier.push_back(s);
    }
  }
  res.configsExplored = configs.size();
  const int total = static_cast<int>(configs.size());

  if (fairness != Fairness::kNone) {
    // Project to the illegitimate sub-digraph.
    std::vector<int> localId(static_cast<std::size_t>(total), -1);
    IllegitGraph g;
    std::vector<int> localToGlobal;
    for (int c = 0; c < total; ++c) {
      if (isLegit[static_cast<std::size_t>(c)]) continue;
      localId[static_cast<std::size_t>(c)] =
          static_cast<int>(localToGlobal.size());
      localToGlobal.push_back(c);
    }
    g.adj.resize(localToGlobal.size());
    g.enabledMask.resize(localToGlobal.size());
    for (int c = 0; c < total; ++c) {
      const int lc = localId[static_cast<std::size_t>(c)];
      if (lc < 0) continue;
      g.enabledMask[static_cast<std::size_t>(lc)] =
          enabledMask[static_cast<std::size_t>(c)];
      for (const auto& e : adj[static_cast<std::size_t>(c)]) {
        const int lt = localId[static_cast<std::size_t>(e.to)];
        if (lt >= 0)
          g.adj[static_cast<std::size_t>(lc)].push_back({lt, e.actorPair});
      }
    }
    const int bad = findFairCycle(g, fairness);
    if (bad >= 0) {
      protocol_.decodeConfiguration(
          configs[static_cast<std::size_t>(
              localToGlobal[static_cast<std::size_t>(bad)])]);
      res.failure =
          "convergence violated: fair-feasible cycle through "
          "illegitimate configuration:\n" +
          describeConfig(protocol_);
      return res;
    }
    res.ok = true;
    return res;
  }

  // Strict mode: cycle detection on the illegitimate subgraph.
  std::vector<std::uint8_t> color(static_cast<std::size_t>(total), 0);
  std::vector<int> stack, pos;
  for (int start = 0; start < total; ++start) {
    if (isLegit[static_cast<std::size_t>(start)] ||
        color[static_cast<std::size_t>(start)] != 0)
      continue;
    stack.assign(1, start);
    pos.assign(1, 0);
    color[static_cast<std::size_t>(start)] = 1;
    while (!stack.empty()) {
      const int cur = stack.back();
      const auto& succ = adj[static_cast<std::size_t>(cur)];
      bool descended = false;
      while (pos.back() < static_cast<int>(succ.size())) {
        const int next = succ[static_cast<std::size_t>(pos.back()++)].to;
        if (isLegit[static_cast<std::size_t>(next)]) continue;
        if (color[static_cast<std::size_t>(next)] == 1) {
          protocol_.decodeConfiguration(
              configs[static_cast<std::size_t>(next)]);
          res.failure =
              "convergence violated: cycle through illegitimate "
              "configuration:\n" +
              describeConfig(protocol_);
          return res;
        }
        if (color[static_cast<std::size_t>(next)] == 0) {
          color[static_cast<std::size_t>(next)] = 1;
          stack.push_back(next);
          pos.push_back(0);
          descended = true;
          break;
        }
      }
      if (!descended && pos.back() >= static_cast<int>(succ.size())) {
        color[static_cast<std::size_t>(cur)] = 2;
        stack.pop_back();
        pos.pop_back();
      }
    }
  }
  res.ok = true;
  return res;
}

CheckResult ModelChecker::monteCarlo(Daemon& daemon, Rng& rng, int trials,
                                     StepCount maxMoves,
                                     StepCount closureMoves) {
  CheckResult res;
  for (int t = 0; t < trials; ++t) {
    protocol_.randomize(rng);
    Simulator sim(protocol_, daemon, rng);
    const RunStats stats = sim.runUntil([this] { return legit_(); }, maxMoves);
    ++res.configsExplored;
    if (!stats.converged) {
      std::ostringstream msg;
      msg << "trial " << t << " failed to converge within " << maxMoves
          << " moves under " << daemon.name() << " daemon; configuration:\n"
          << describeConfig(protocol_);
      res.failure = msg.str();
      return res;
    }
    // Closure spot check: legitimacy persists.
    StepCount done = 0;
    while (done < closureMoves) {
      const std::vector<Move>& executed = sim.stepOnce();
      if (executed.empty()) break;
      done += static_cast<StepCount>(executed.size());
      if (!legit_()) {
        std::ostringstream msg;
        msg << "trial " << t << ": closure violated after convergence under "
            << daemon.name() << " daemon; configuration:\n"
            << describeConfig(protocol_);
        res.failure = msg.str();
        return res;
      }
    }
  }
  res.ok = true;
  return res;
}

}  // namespace ssno
