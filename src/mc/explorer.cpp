#include "mc/explorer.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <exception>
#include <limits>
#include <mutex>
#include <optional>
#include <sstream>
#include <thread>

#include "core/assert.hpp"
#include "core/bitwords.hpp"
#include "core/enabled_cache.hpp"
#include "core/sync_engine.hpp"
#include "mc/properties.hpp"
#include "mc/spill.hpp"
#include "mc/state_codec.hpp"
#include "mc/store.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace ssno::mc {
namespace {

constexpr std::size_t kFrontierBatch = 1024;  // worker -> spill flush size
constexpr std::size_t kWorkChunk = 64;        // frontier ids per claim

// Batched per run / per level — never touched inside expand().
const obs::Counter kMcStates =
    obs::Registry::global().counter("mc_states_total");
const obs::Counter kMcTransitions =
    obs::Registry::global().counter("mc_transitions_total");
const obs::Counter kMcLevels =
    obs::Registry::global().counter("mc_levels_total");
const obs::Histogram kMcLevelNs =
    obs::Registry::global().histogram("mc_level_ns");
const obs::Histogram kMcConvergenceNs =
    obs::Registry::global().histogram("mc_convergence_ns");
const obs::Gauge kMcStoreLoadPct =
    obs::Registry::global().gauge("mc_store_load_pct");
const obs::Gauge kMcStatesPerSec =
    obs::Registry::global().gauge("mc_states_per_sec");

/// Violation kinds, ranked for the canonical-min selection (the rank
/// only breaks ties between different kinds at the same level; any
/// fixed order gives deterministic verdicts).
enum ViolationKind : int { kClosure = 0, kDeadlock = 1, kFairCycle = 2 };

/// Parent-move sentinel for synchronous steps (no single actor pair).
constexpr std::uint32_t kSyncMove = 0xFFFFFFFFu;

struct Violation {
  int kind = kClosure;
  std::vector<std::uint64_t> key;  // reported configuration
  std::uint32_t move = 0;          // closure: the offending actor pair

  [[nodiscard]] bool precedes(const Violation& o) const {
    if (kind != o.kind) return kind < o.kind;
    if (key != o.key) return key < o.key;
    return move < o.move;
  }
};

/// Runs fn(0..threads-1) on `threads` threads (inline when 1) and
/// rethrows the first worker exception after the join barrier.
void runWorkers(int threads, const std::function<void(int)>& fn) {
  if (threads <= 1) {
    fn(0);
    return;
  }
  std::mutex mu;
  std::exception_ptr error;
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(threads));
  for (int t = 0; t < threads; ++t) {
    pool.emplace_back([&, t] {
      try {
        fn(t);
      } catch (...) {
        std::lock_guard<std::mutex> lock(mu);
        if (!error) error = std::current_exception();
      }
    });
  }
  for (std::thread& th : pool) th.join();
  if (error) std::rethrow_exception(error);
}


/// One exploration worker: its own protocol instance, incremental
/// enabled cache, and the key it currently has decoded.
struct Worker {
  std::unique_ptr<Protocol> protocol;
  std::unique_ptr<EnabledCache> cache;
  std::function<bool()> legitNow;  // legit_ bound to this protocol
  std::vector<std::uint64_t> cur;  // decoded key (valid iff curValid)
  bool curValid = false;
  /// Stable (node, action-mask) snapshot of a refresh — one entry per
  /// enabled node; no per-move vector is materialized on the hot path
  /// (iterated with ssno::forEachMove).
  NodeMasks enabled;
  std::vector<std::uint64_t> childKey;  // successor scratch
  std::vector<std::uint64_t> nextBuf;   // local next-frontier batch
  /// Synchronous mode: per-worker columnar move-set executor + the
  /// reused selection buffer for the cartesian-product enumeration.
  std::unique_ptr<SimultaneousEngine> engine;
  std::vector<Move> selScratch;
};

/// Shared state of one checkFullSpace/checkReachable run.
class Run {
 public:
  Run(const ParallelChecker::Factory& factory,
      const ParallelChecker::Legit& legit, const Options& opt,
      std::uint64_t capacity)
      : legit_(legit),
        opt_(opt),
        threads_(opt.threads > 0
                     ? opt.threads
                     : static_cast<int>(std::max(
                           1u, std::thread::hardware_concurrency()))) {
    workers_.resize(static_cast<std::size_t>(threads_));
    for (Worker& w : workers_) {
      w.protocol = factory();
      w.cache = std::make_unique<EnabledCache>(*w.protocol);
      w.legitNow = [this, protocol = w.protocol.get()] {
        return legit_(*protocol);
      };
      if (opt.synchronousSteps)
        w.engine = std::make_unique<SimultaneousEngine>(*w.protocol);
    }
    codec_ = std::make_unique<StateCodec>(*workers_[0].protocol);
    actions_ = workers_[0].protocol->actionCount();
    store_ = std::make_unique<StateStore>(codec_->words(), capacity);
    for (Worker& w : workers_) {
      w.cur.resize(static_cast<std::size_t>(codec_->words()));
      w.childKey.resize(static_cast<std::size_t>(codec_->words()));
    }
    current_ = std::make_unique<FrontierSpill>(opt.spillCapacity, opt.spillDir);
    next_ = std::make_unique<FrontierSpill>(opt.spillCapacity, opt.spillDir);
  }

  [[nodiscard]] const StateCodec& codec() const { return *codec_; }
  [[nodiscard]] StateStore& store() { return *store_; }
  [[nodiscard]] int threads() const { return threads_; }
  [[nodiscard]] Worker& worker(int t) {
    return workers_[static_cast<std::size_t>(t)];
  }

  /// Decodes `key` into worker t's protocol, touching only nodes that
  /// differ from what the worker currently holds.
  void decodeTo(Worker& w, const std::uint64_t* key) {
    codec_->decodeDelta(key, w.curValid ? w.cur.data() : nullptr,
                        *w.protocol);
    std::memcpy(w.cur.data(), key,
                static_cast<std::size_t>(codec_->words()) * 8);
    w.curValid = true;
  }

  void pushNext(Worker& w, std::uint64_t id) {
    w.nextBuf.push_back(id);
    if (w.nextBuf.size() >= kFrontierBatch) flushNext(w);
  }
  void flushNext(Worker& w) {
    if (w.nextBuf.empty()) return;
    next_->append(w.nextBuf.data(), w.nextBuf.size());
    w.nextBuf.clear();
  }

  void offer(Violation v) {
    std::lock_guard<std::mutex> lock(violationMu_);
    if (!best_ || v.precedes(*best_)) best_ = std::move(v);
  }
  [[nodiscard]] const std::optional<Violation>& best() const { return best_; }

  /// Interns the configuration currently decoded in w's protocol,
  /// whose key is `key`; parentKey == nullptr marks a seed.
  StateStore::Ref intern(Worker& w, const std::uint64_t* key,
                         std::uint32_t depth,
                         const std::uint64_t* parentKey = nullptr,
                         std::uint64_t parentId = StateStore::kNoId,
                         std::uint32_t parentMove = 0) {
    return store_->intern(key, codec_->hash(key), depth, w.legitNow,
                          parentKey, parentId, parentMove);
  }

  /// Expands one frontier state: enumerate enabled moves from the
  /// incremental cache, patch each successor key in O(1), intern it,
  /// and restore the acted node.  Closure and deadlock candidates are
  /// offered to the canonical-min selector.
  void expand(Worker& w, std::uint64_t id, std::uint32_t depth) {
    const std::uint64_t* key = store_->keyOf(id);
    decodeTo(w, key);
    const EnabledView& view = w.cache->refreshView();
    w.enabled.clear();
    view.appendNodeMasks(w.enabled);
    transitions_.fetch_add(static_cast<std::uint64_t>(view.moveCount()),
                           std::memory_order_relaxed);
    const bool parentLegit = store_->legit(id);
    if (w.enabled.empty() && !parentLegit) {
      offer({kDeadlock,
             std::vector<std::uint64_t>(key, key + codec_->words()), 0});
      return;
    }
    if (opt_.synchronousSteps) {
      // Synchronous semantics: one successor per simultaneous selection
      // (every enabled node acts), executed in place by the columnar
      // engine and rolled back via its batched snapshot restore.
      forEachSimultaneousSelection(
          w.enabled, w.selScratch, [&](std::span<const Move> set) {
            w.engine->execute(set);
            std::memcpy(w.childKey.data(), w.cur.data(),
                        static_cast<std::size_t>(codec_->words()) * 8);
            for (const Move& m : set)
              codec_->setNodeCode(w.childKey.data(), m.node,
                                  w.protocol->encodeNode(m.node));
            const StateStore::Ref r =
                intern(w, w.childKey.data(), depth + 1, key, id, kSyncMove);
            w.engine->undo();
            if (r.inserted) pushNext(w, r.id);
            if (parentLegit && !r.legit)
              offer({kClosure,
                     std::vector<std::uint64_t>(key, key + codec_->words()),
                     kSyncMove});
          });
      return;
    }
    forEachMove(w.enabled, [&](const Move& m) {
      w.protocol->execute(m.node, m.action);
      std::memcpy(w.childKey.data(), w.cur.data(),
                  static_cast<std::size_t>(codec_->words()) * 8);
      codec_->setNodeCode(w.childKey.data(), m.node,
                          w.protocol->encodeNode(m.node));
      const auto pair =
          static_cast<std::uint32_t>(m.node * actions_ + m.action);
      const StateStore::Ref r =
          intern(w, w.childKey.data(), depth + 1, key, id, pair);
      if (r.inserted) pushNext(w, r.id);
      if (parentLegit && !r.legit)
        offer({kClosure,
               std::vector<std::uint64_t>(key, key + codec_->words()), pair});
      // A statement writes only its own processor's variables, so
      // restoring the acted node alone returns the protocol to `key`.
      w.protocol->decodeNode(m.node, codec_->nodeCode(key, m.node));
    });
  }

  /// Runs BFS levels until the frontier dries up, a violation level
  /// completes, or the store overflows.  Seeds must already be in
  /// next_.  Returns false on overflow.
  bool exploreLevels(Result& res) {
    std::uint32_t depth = 0;
    std::vector<std::uint64_t> wave;
    const std::size_t waveCap =
        opt_.spillCapacity > 0
            ? static_cast<std::size_t>(opt_.spillCapacity)
            : std::numeric_limits<std::size_t>::max();
    for (Worker& w : workers_) flushNext(w);
    if (store_->overflowed() || store_->size() > opt_.maxStates) return false;
    while (next_->size() > 0) {
      std::swap(current_, next_);
      next_->reset();
      obs::TraceSpan levelSpan("mc_level");
      obs::ScopedTimer levelTimer(kMcLevelNs);
      const std::uint64_t statesBefore = store_->size();
      levelSpan.arg("depth", depth);
      levelSpan.arg("frontier", current_->size());
      res.peakFrontier = std::max(res.peakFrontier, current_->size());
      res.depthReached = static_cast<int>(depth);
      while (current_->drainChunk(wave, waveCap)) {
        std::atomic<std::size_t> cursor{0};
        runWorkers(threads_, [&](int t) {
          Worker& w = worker(t);
          for (std::size_t base = cursor.fetch_add(kWorkChunk);
               base < wave.size(); base = cursor.fetch_add(kWorkChunk)) {
            const std::size_t end =
                std::min(base + kWorkChunk, wave.size());
            for (std::size_t i = base; i < end; ++i)
              expand(w, wave[i], depth);
          }
          flushNext(w);
        });
      }
      res.spillRuns = current_->runsWritten() + next_->runsWritten();
      current_->reset();
      kMcLevels.inc();
      kMcStates.inc(store_->size() - statesBefore);
      kMcStoreLoadPct.set(
          static_cast<std::int64_t>(store_->loadFactor() * 100.0));
      levelSpan.arg("states_added", store_->size() - statesBefore);
      if (store_->overflowed() || store_->size() > opt_.maxStates)
        return false;
      if (best_) break;  // violation level completed: canonical min final
      ++depth;
    }
    return true;
  }

  /// Canonical trace from a seed to `id` along parent pointers.
  std::vector<std::string> traceTo(std::uint64_t id) {
    std::vector<std::uint64_t> chain;
    for (std::uint64_t at = id; at != StateStore::kNoId;
         at = store_->parentOf(at))
      chain.push_back(at);
    std::reverse(chain.begin(), chain.end());
    std::vector<std::string> out;
    Worker& w = workers_[0];
    for (std::size_t i = 0; i < chain.size(); ++i) {
      decodeTo(w, store_->keyOf(chain[i]));
      std::ostringstream line;
      if (i == 0) {
        line << "initial configuration:\n";
      } else if (const std::uint32_t pair = store_->parentMoveOf(chain[i]);
                 pair == kSyncMove) {
        line << "synchronous step:\n";
      } else {
        line << "node " << (pair / static_cast<std::uint32_t>(actions_))
             << " executes "
             << w.protocol->actionName(
                    static_cast<int>(pair % static_cast<std::uint32_t>(
                                                actions_)))
             << ":\n";
      }
      line << describeConfiguration(*w.protocol);
      out.push_back(line.str());
    }
    return out;
  }

  /// Renders the selected violation into res (failure text mirrors the
  /// sequential ModelChecker's messages; trace is mc-only).
  void report(Result& res) {
    const Violation& v = *best_;
    const std::uint64_t id =
        store_->find(v.key.data(), codec_->hash(v.key.data()));
    SSNO_ASSERT(id != StateStore::kNoId);
    res.trace = traceTo(id);
    Worker& w = workers_[0];
    decodeTo(w, v.key.data());
    const std::string config = describeConfiguration(*w.protocol);
    switch (v.kind) {
      case kClosure: {
        res.failure =
            "closure violated; legitimate configuration:\n" + config;
        if (v.move == kSyncMove) break;  // no single move to replay
        // Append the offending transition to the trace.
        const NodeId node =
            static_cast<NodeId>(v.move / static_cast<std::uint32_t>(actions_));
        const int action =
            static_cast<int>(v.move % static_cast<std::uint32_t>(actions_));
        w.protocol->execute(node, action);
        res.trace.push_back("node " + std::to_string(node) + " executes " +
                            w.protocol->actionName(action) +
                            " (closure violation):\n" +
                            describeConfiguration(*w.protocol));
        w.curValid = false;  // protocol no longer matches w.cur
        break;
      }
      case kDeadlock:
        res.failure =
            "illegitimate terminal (deadlocked) configuration:\n" + config;
        break;
      case kFairCycle:
        res.failure =
            opt_.fairness == Fairness::kNone
                ? "convergence violated: cycle through illegitimate "
                  "configuration:\n" + config
                : "convergence violated: fair-feasible cycle through "
                  "illegitimate configuration:\n" + config;
        break;
    }
  }

  /// Convergence: rebuild the illegitimate sub-digraph in canonical
  /// (key-sorted) order and look for a (fair-feasible) cycle.
  void checkConvergence() {
    obs::TraceSpan span("mc_convergence");
    obs::ScopedTimer timer(kMcConvergenceNs);
    std::vector<std::uint64_t> illegit;
    store_->forEach([&](std::uint64_t id) {
      if (!store_->legit(id)) illegit.push_back(id);
    });
    std::sort(illegit.begin(), illegit.end(),
              [&](std::uint64_t a, std::uint64_t b) {
                const std::uint64_t* ka = store_->keyOf(a);
                const std::uint64_t* kb = store_->keyOf(b);
                for (int wd = 0; wd < codec_->words(); ++wd)
                  if (ka[wd] != kb[wd]) return ka[wd] < kb[wd];
                return false;
              });
    std::vector<std::int32_t> localIdx(
        static_cast<std::size_t>(store_->idBound()), -1);
    for (std::size_t i = 0; i < illegit.size(); ++i)
      localIdx[static_cast<std::size_t>(illegit[i])] =
          static_cast<std::int32_t>(i);

    TransitionGraph g;
    g.adj.resize(illegit.size());
    const bool useMasks = opt_.fairness != Fairness::kNone;
    const std::size_t pairBits =
        static_cast<std::size_t>(
            workers_[0].protocol->graph().nodeCount()) *
        static_cast<std::size_t>(actions_);
    g.initMasks(illegit.size(), useMasks ? pairBits : 1);
    std::atomic<std::size_t> cursor{0};
    runWorkers(threads_, [&](int t) {
      Worker& w = worker(t);
      for (std::size_t base = cursor.fetch_add(kWorkChunk);
           base < illegit.size(); base = cursor.fetch_add(kWorkChunk)) {
        const std::size_t end = std::min(base + kWorkChunk, illegit.size());
        for (std::size_t i = base; i < end; ++i) {
          const std::uint64_t* key = store_->keyOf(illegit[i]);
          decodeTo(w, key);
          w.enabled.clear();
          w.cache->refreshView().appendNodeMasks(w.enabled);
          if (opt_.synchronousSteps) {
            // Fairness is kNone here (enforced at entry): edges only,
            // pair masks unused.
            forEachSimultaneousSelection(
                w.enabled, w.selScratch, [&](std::span<const Move> set) {
                  w.engine->execute(set);
                  std::memcpy(w.childKey.data(), w.cur.data(),
                              static_cast<std::size_t>(codec_->words()) * 8);
                  for (const Move& m : set)
                    codec_->setNodeCode(w.childKey.data(), m.node,
                                        w.protocol->encodeNode(m.node));
                  w.engine->undo();
                  const std::uint64_t cid =
                      store_->find(w.childKey.data(),
                                   codec_->hash(w.childKey.data()));
                  SSNO_ASSERT(cid != StateStore::kNoId);
                  const std::int32_t ci =
                      localIdx[static_cast<std::size_t>(cid)];
                  if (ci >= 0) g.adj[i].push_back({ci, 0});
                });
            continue;
          }
          forEachMove(w.enabled, [&](const Move& m) {
            const auto pair =
                static_cast<std::uint32_t>(m.node * actions_ + m.action);
            if (useMasks)
              bits::maskSet(g.maskOf(i), static_cast<std::size_t>(pair));
            w.protocol->execute(m.node, m.action);
            std::memcpy(w.childKey.data(), w.cur.data(),
                        static_cast<std::size_t>(codec_->words()) * 8);
            codec_->setNodeCode(w.childKey.data(), m.node,
                                w.protocol->encodeNode(m.node));
            const std::uint64_t cid =
                store_->find(w.childKey.data(),
                             codec_->hash(w.childKey.data()));
            SSNO_ASSERT(cid != StateStore::kNoId);
            const std::int32_t ci =
                localIdx[static_cast<std::size_t>(cid)];
            if (ci >= 0)
              g.adj[i].push_back({ci, static_cast<int>(pair)});
            w.protocol->decodeNode(m.node, codec_->nodeCode(key, m.node));
          });
        }
      }
    });
    const int bad = findFairCycle(g, opt_.fairness);
    if (bad >= 0) {
      const std::uint64_t* key =
          store_->keyOf(illegit[static_cast<std::size_t>(bad)]);
      offer({kFairCycle,
             std::vector<std::uint64_t>(key, key + codec_->words()), 0});
    }
  }

  [[nodiscard]] std::uint64_t transitions() const {
    return transitions_.load(std::memory_order_relaxed);
  }

 private:
  const ParallelChecker::Legit& legit_;
  const Options& opt_;
  int threads_;
  int actions_ = 1;
  std::vector<Worker> workers_;
  std::unique_ptr<StateCodec> codec_;
  std::unique_ptr<StateStore> store_;
  std::unique_ptr<FrontierSpill> current_;
  std::unique_ptr<FrontierSpill> next_;
  std::mutex violationMu_;
  std::optional<Violation> best_;
  std::atomic<std::uint64_t> transitions_{0};
};

Result finish(Run& run, Result res,
              const std::chrono::steady_clock::time_point& start,
              bool overflowOk, const char* overflowMessage) {
  res.statesExplored = run.store().size();
  res.transitions = run.transitions();
  if (!overflowOk) {
    res.failure = overflowMessage;
  } else if (run.best()) {
    run.report(res);
  } else {
    run.checkConvergence();
    if (run.best())
      run.report(res);
    else
      res.ok = true;
  }
  res.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  res.statesPerSec =
      static_cast<double>(res.statesExplored) / std::max(res.seconds, 1e-9);
  kMcTransitions.inc(res.transitions);
  kMcStatesPerSec.set(static_cast<std::int64_t>(res.statesPerSec));
  return res;
}

}  // namespace

Result ParallelChecker::checkFullSpace(const Options& opt) {
  const auto start = std::chrono::steady_clock::now();
  Result res;
  if (opt.synchronousSteps && opt.fairness != Fairness::kNone) {
    res.failure =
        "fairness-aware modes are not supported under synchronous steps";
    return res;
  }
  std::uint64_t total = 0;
  {
    const std::unique_ptr<Protocol> probe = factory_();
    const StateCodec probeCodec(*probe);
    if (!probeCodec.indexable() || probeCodec.totalStates() > opt.maxStates) {
      res.failure = "state space too large for exhaustive check";
      return res;
    }
    total = probeCodec.totalStates();
  }

  Run run(factory_, legit_, opt, total);

  // Seed every configuration at depth 0 (mixed-radix enumeration with
  // delta decoding: consecutive indices differ in a low-radix prefix).
  std::atomic<std::uint64_t> cursor{0};
  constexpr std::uint64_t kSeedChunk = 512;
  runWorkers(run.threads(), [&](int t) {
    Worker& w = run.worker(t);
    for (std::uint64_t base = cursor.fetch_add(kSeedChunk); base < total;
         base = cursor.fetch_add(kSeedChunk)) {
      const std::uint64_t end = std::min(base + kSeedChunk, total);
      for (std::uint64_t i = base; i < end; ++i) {
        run.codec().indexToKey(i, w.childKey.data());
        run.decodeTo(w, w.childKey.data());
        const StateStore::Ref r = run.intern(w, w.childKey.data(), 0);
        if (r.inserted) run.pushNext(w, r.id);
      }
    }
  });

  const bool fit = run.exploreLevels(res);
  return finish(run, std::move(res), start, fit,
                "state space too large for exhaustive check");
}

Result ParallelChecker::checkReachable(
    const std::vector<std::vector<std::uint64_t>>& seeds,
    const Options& opt) {
  const auto start = std::chrono::steady_clock::now();
  Result res;
  if (opt.synchronousSteps && opt.fairness != Fairness::kNone) {
    res.failure =
        "fairness-aware modes are not supported under synchronous steps";
    return res;
  }
  Run run(factory_, legit_, opt, opt.maxStates);
  std::atomic<std::size_t> cursor{0};
  runWorkers(run.threads(), [&](int t) {
    Worker& w = run.worker(t);
    for (std::size_t i = cursor.fetch_add(1); i < seeds.size();
         i = cursor.fetch_add(1)) {
      const std::vector<std::uint64_t>& codes = seeds[i];
      SSNO_EXPECTS(static_cast<int>(codes.size()) == run.codec().nodeCount());
      for (NodeId p = 0; p < run.codec().nodeCount(); ++p)
        run.codec().setNodeCode(w.childKey.data(), p,
                                codes[static_cast<std::size_t>(p)]);
      run.decodeTo(w, w.childKey.data());
      const StateStore::Ref r = run.intern(w, w.childKey.data(), 0);
      if (r.inserted) run.pushNext(w, r.id);
    }
  });

  const bool fit = run.exploreLevels(res);
  return finish(run, std::move(res), start, fit,
                "reachable space exceeded maxConfigs");
}

}  // namespace ssno::mc
