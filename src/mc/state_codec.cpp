#include "mc/state_codec.hpp"

#include <bit>

#include "core/assert.hpp"

namespace ssno::mc {

StateCodec::StateCodec(const Protocol& protocol) {
  const int n = protocol.graph().nodeCount();
  fields_.resize(static_cast<std::size_t>(n));
  std::uint32_t word = 0;
  std::uint32_t used = 0;  // bits consumed in the current word
  for (NodeId p = 0; p < n; ++p) {
    const std::uint64_t radix = protocol.localStateCount(p);
    SSNO_EXPECTS(radix >= 1);
    const std::uint32_t bits =
        radix == 1 ? 0 : static_cast<std::uint32_t>(std::bit_width(radix - 1));
    if (used + bits > 64) {
      ++word;
      used = 0;
    }
    Field& f = fields_[static_cast<std::size_t>(p)];
    f.word = word;
    f.shift = used;
    f.mask = bits == 0 ? 0 : (bits == 64 ? ~0ULL : (1ULL << bits) - 1);
    f.radix = radix;
    used += bits;
    if (total_ > UINT64_MAX / radix) indexable_ = false;
    if (indexable_) total_ *= radix;
  }
  words_ = static_cast<int>(word) + 1;
  wordNodes_.resize(static_cast<std::size_t>(words_));
  for (NodeId p = 0; p < n; ++p)
    wordNodes_[fields_[static_cast<std::size_t>(p)].word].push_back(p);
}

void StateCodec::encode(const Protocol& protocol, std::uint64_t* key) const {
  for (int w = 0; w < words_; ++w) key[w] = 0;
  for (NodeId p = 0; p < nodeCount(); ++p) {
    const Field& f = fields_[static_cast<std::size_t>(p)];
    key[f.word] |= protocol.encodeNode(p) << f.shift;
  }
}

void StateCodec::decode(const std::uint64_t* key, Protocol& protocol) const {
  for (NodeId p = 0; p < nodeCount(); ++p)
    protocol.decodeNode(p, nodeCode(key, p));
}

void StateCodec::decodeDelta(const std::uint64_t* key,
                             const std::uint64_t* prev,
                             Protocol& protocol) const {
  if (prev == nullptr) {
    decode(key, protocol);
    return;
  }
  for (int w = 0; w < words_; ++w) {
    if (key[w] == prev[w]) continue;
    for (NodeId p : wordNodes_[static_cast<std::size_t>(w)]) {
      const Field& f = fields_[static_cast<std::size_t>(p)];
      const std::uint64_t code = (key[w] >> f.shift) & f.mask;
      if (code != ((prev[w] >> f.shift) & f.mask))
        protocol.decodeNode(p, code);
    }
  }
}

void StateCodec::indexToKey(std::uint64_t index, std::uint64_t* key) const {
  SSNO_EXPECTS(indexable_);
  for (int w = 0; w < words_; ++w) key[w] = 0;
  for (NodeId p = 0; p < nodeCount(); ++p) {
    const Field& f = fields_[static_cast<std::size_t>(p)];
    key[f.word] |= (index % f.radix) << f.shift;
    index /= f.radix;
  }
}

}  // namespace ssno::mc
