// Convergence-property analysis on an explicit illegitimate sub-digraph.
//
// Shared by the sequential ModelChecker and the parallel src/mc
// explorer (the SCC fairness logic formerly private to core/checker.cpp
// lives here now).  States are dense local ids; edges carry the acting
// (node, action) pair.  Convergence holds iff the illegitimate region
// admits no infinite execution the daemon model allows:
//
//   * Fairness::kNone — ANY cycle is a violation (an unfair daemon may
//     follow it forever), i.e. the region must be acyclic;
//   * kWeaklyFair / kStronglyFair — only *fair-feasible* cycles count,
//     checked SCC-wise (Emerson–Lei style): an infinite execution
//     eventually stays inside one SCC, and a fair infinite execution
//     inside an SCC exists iff no protected (processor, action) pair —
//     enabled at every SCC configuration (weak) or at some (strong) —
//     fails to act on an internal transition.
//
// findFairCycle returns the local id of a state inside a violating
// cycle, or -1 when convergence holds.  Given the same graph it is
// fully deterministic, so callers that build the graph in a canonical
// order (the explorer sorts illegitimate states by key) get
// deterministic counterexamples.
#ifndef SSNO_MC_PROPERTIES_HPP
#define SSNO_MC_PROPERTIES_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "core/checker.hpp"
#include "core/protocol.hpp"

namespace ssno::mc {

/// Renders the protocol's current configuration, one "  node q: ..."
/// line per processor — the counterexample format shared by the
/// sequential ModelChecker and the parallel explorer (equivalence
/// tests compare these messages across engines).
[[nodiscard]] std::string describeConfiguration(const Protocol& p);

struct TransitionGraph {
  struct Edge {
    int to;
    int actorPair;  // node * actionCount + action
  };
  std::vector<std::vector<Edge>> adj;      // per illegitimate state
  std::vector<std::uint64_t> enabledMask;  // per state; unused for kNone
};

[[nodiscard]] int findFairCycle(const TransitionGraph& g, Fairness fairness);

}  // namespace ssno::mc

#endif  // SSNO_MC_PROPERTIES_HPP
