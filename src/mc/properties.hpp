// Convergence-property analysis on an explicit illegitimate sub-digraph.
//
// Shared by the sequential ModelChecker and the parallel src/mc
// explorer (the SCC fairness logic formerly private to core/checker.cpp
// lives here now).  States are dense local ids; edges carry the acting
// (node, action) pair.  Convergence holds iff the illegitimate region
// admits no infinite execution the daemon model allows:
//
//   * Fairness::kNone — ANY cycle is a violation (an unfair daemon may
//     follow it forever), i.e. the region must be acyclic;
//   * kWeaklyFair / kStronglyFair — only *fair-feasible* cycles count,
//     checked SCC-wise (Emerson–Lei style): an infinite execution
//     eventually stays inside one SCC, and a fair infinite execution
//     inside an SCC exists iff no protected (processor, action) pair —
//     enabled at every SCC configuration (weak) or at some (strong) —
//     fails to act on an internal transition.
//
// findFairCycle returns the local id of a state inside a violating
// cycle, or -1 when convergence holds.  Given the same graph it is
// fully deterministic, so callers that build the graph in a canonical
// order (the explorer sorts illegitimate states by key) get
// deterministic counterexamples.
#ifndef SSNO_MC_PROPERTIES_HPP
#define SSNO_MC_PROPERTIES_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "core/checker.hpp"
#include "core/protocol.hpp"

namespace ssno::mc {

/// Renders the protocol's current configuration, one "  node q: ..."
/// line per processor — the counterexample format shared by the
/// sequential ModelChecker and the parallel explorer (equivalence
/// tests compare these messages across engines).
[[nodiscard]] std::string describeConfiguration(const Protocol& p);

struct TransitionGraph {
  struct Edge {
    int to;
    int actorPair;  // node * actionCount + action
  };
  std::vector<std::vector<Edge>> adj;  // per illegitimate state

  /// Per-state enabled-(node, action)-pair masks, multi-word: state i's
  /// mask occupies words [i*maskWords, (i+1)*maskWords) of enabledMask
  /// (see core/bitwords.hpp mask-arena helpers).  A single uint64_t used
  /// to cap fairness-aware checks at node·actions <= 64 pairs; the flat
  /// multi-word arena lifts that, so e.g. dftc on ring:12 (72 pairs) is
  /// checkable.  Unused for Fairness::kNone.
  int maskWords = 1;
  std::vector<std::uint64_t> enabledMask;

  /// Sizes the mask arena for `states` states of `pairBits` pairs each.
  void initMasks(std::size_t states, std::size_t pairBits);
  /// Pointer to state i's mask words (mutable for the builder).
  [[nodiscard]] std::uint64_t* maskOf(std::size_t i) {
    return enabledMask.data() + i * static_cast<std::size_t>(maskWords);
  }
  [[nodiscard]] const std::uint64_t* maskOf(std::size_t i) const {
    return enabledMask.data() + i * static_cast<std::size_t>(maskWords);
  }
};

[[nodiscard]] int findFairCycle(const TransitionGraph& g, Fairness fairness);

}  // namespace ssno::mc

#endif  // SSNO_MC_PROPERTIES_HPP
