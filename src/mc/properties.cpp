#include "mc/properties.hpp"

#include <algorithm>
#include <sstream>

#include "core/bitwords.hpp"

namespace ssno::mc {

std::string describeConfiguration(const Protocol& p) {
  std::ostringstream out;
  for (NodeId q = 0; q < p.graph().nodeCount(); ++q)
    out << "  node " << q << ": " << p.dumpNode(q) << '\n';
  return out.str();
}

void TransitionGraph::initMasks(std::size_t states, std::size_t pairBits) {
  maskWords = static_cast<int>(std::max<std::size_t>(
      1, bits::wordsFor(pairBits)));
  enabledMask.assign(states * static_cast<std::size_t>(maskWords), 0);
}

int findFairCycle(const TransitionGraph& g, Fairness fairness) {
  const int n = static_cast<int>(g.adj.size());
  // Iterative Tarjan.
  std::vector<int> index(static_cast<std::size_t>(n), -1);
  std::vector<int> low(static_cast<std::size_t>(n), 0);
  std::vector<int> sccOf(static_cast<std::size_t>(n), -1);
  std::vector<bool> onStack(static_cast<std::size_t>(n), false);
  std::vector<int> tarjanStack;
  int nextIndex = 0;
  int sccCount = 0;

  struct Frame {
    int v;
    std::size_t child;
  };
  std::vector<Frame> callStack;
  for (int start = 0; start < n; ++start) {
    if (index[static_cast<std::size_t>(start)] != -1) continue;
    callStack.push_back({start, 0});
    index[static_cast<std::size_t>(start)] =
        low[static_cast<std::size_t>(start)] = nextIndex++;
    tarjanStack.push_back(start);
    onStack[static_cast<std::size_t>(start)] = true;
    while (!callStack.empty()) {
      Frame& f = callStack.back();
      const auto& edges = g.adj[static_cast<std::size_t>(f.v)];
      if (f.child < edges.size()) {
        const int w = edges[f.child++].to;
        if (index[static_cast<std::size_t>(w)] == -1) {
          index[static_cast<std::size_t>(w)] =
              low[static_cast<std::size_t>(w)] = nextIndex++;
          tarjanStack.push_back(w);
          onStack[static_cast<std::size_t>(w)] = true;
          callStack.push_back({w, 0});
        } else if (onStack[static_cast<std::size_t>(w)]) {
          low[static_cast<std::size_t>(f.v)] =
              std::min(low[static_cast<std::size_t>(f.v)],
                       index[static_cast<std::size_t>(w)]);
        }
      } else {
        const int v = f.v;
        callStack.pop_back();
        if (!callStack.empty()) {
          const int parent = callStack.back().v;
          low[static_cast<std::size_t>(parent)] =
              std::min(low[static_cast<std::size_t>(parent)],
                       low[static_cast<std::size_t>(v)]);
        }
        if (low[static_cast<std::size_t>(v)] ==
            index[static_cast<std::size_t>(v)]) {
          while (true) {
            const int w = tarjanStack.back();
            tarjanStack.pop_back();
            onStack[static_cast<std::size_t>(w)] = false;
            sccOf[static_cast<std::size_t>(w)] = sccCount;
            if (w == v) break;
          }
          ++sccCount;
        }
      }
    }
  }

  // Per-SCC aggregates, as flat multi-word mask arenas (one slab per
  // aggregate; no per-SCC allocations even when pair counts are large).
  const bool useMasks = fairness != Fairness::kNone;
  const auto words =
      static_cast<std::size_t>(useMasks ? g.maskWords : 1);
  const std::size_t scc = static_cast<std::size_t>(sccCount);
  std::vector<std::uint64_t> enabledAll(scc * words, ~0ULL);
  std::vector<std::uint64_t> enabledAny(scc * words, 0);
  std::vector<std::uint64_t> actsInside(scc * words, 0);
  std::vector<bool> hasInternalEdge(scc, false);
  std::vector<int> representative(scc, -1);
  for (int v = 0; v < n; ++v) {
    const auto s = static_cast<std::size_t>(sccOf[static_cast<std::size_t>(v)]);
    if (useMasks) {
      bits::maskAndInto(enabledAll.data() + s * words,
                        g.maskOf(static_cast<std::size_t>(v)), words);
      bits::maskOrInto(enabledAny.data() + s * words,
                       g.maskOf(static_cast<std::size_t>(v)), words);
    }
    representative[s] = v;
    for (const auto& e : g.adj[static_cast<std::size_t>(v)]) {
      if (static_cast<std::size_t>(sccOf[static_cast<std::size_t>(e.to)]) ==
          s) {
        hasInternalEdge[s] = true;
        if (useMasks)
          bits::maskSet(actsInside.data() + s * words,
                        static_cast<std::size_t>(e.actorPair));
      }
    }
  }

  for (std::size_t s = 0; s < scc; ++s) {
    if (!hasInternalEdge[s]) continue;
    if (fairness == Fairness::kNone) return representative[s];
    // The SCC hosts a fair infinite execution iff no action that the
    // fairness notion protects is starved inside it.  (enabledAll is an
    // AND over configuration masks, so stray high bits vanish.)
    const std::uint64_t* protectedPairs =
        fairness == Fairness::kStronglyFair ? enabledAny.data() + s * words
                                            : enabledAll.data() + s * words;
    if (bits::maskSubsetOf(protectedPairs, actsInside.data() + s * words,
                           words))
      return representative[s];
  }
  return -1;
}

}  // namespace ssno::mc
