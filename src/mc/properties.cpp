#include "mc/properties.hpp"

#include <algorithm>
#include <sstream>

namespace ssno::mc {

std::string describeConfiguration(const Protocol& p) {
  std::ostringstream out;
  for (NodeId q = 0; q < p.graph().nodeCount(); ++q)
    out << "  node " << q << ": " << p.dumpNode(q) << '\n';
  return out.str();
}

int findFairCycle(const TransitionGraph& g, Fairness fairness) {
  const int n = static_cast<int>(g.adj.size());
  // Iterative Tarjan.
  std::vector<int> index(static_cast<std::size_t>(n), -1);
  std::vector<int> low(static_cast<std::size_t>(n), 0);
  std::vector<int> sccOf(static_cast<std::size_t>(n), -1);
  std::vector<bool> onStack(static_cast<std::size_t>(n), false);
  std::vector<int> tarjanStack;
  int nextIndex = 0;
  int sccCount = 0;

  struct Frame {
    int v;
    std::size_t child;
  };
  std::vector<Frame> callStack;
  for (int start = 0; start < n; ++start) {
    if (index[static_cast<std::size_t>(start)] != -1) continue;
    callStack.push_back({start, 0});
    index[static_cast<std::size_t>(start)] =
        low[static_cast<std::size_t>(start)] = nextIndex++;
    tarjanStack.push_back(start);
    onStack[static_cast<std::size_t>(start)] = true;
    while (!callStack.empty()) {
      Frame& f = callStack.back();
      const auto& edges = g.adj[static_cast<std::size_t>(f.v)];
      if (f.child < edges.size()) {
        const int w = edges[f.child++].to;
        if (index[static_cast<std::size_t>(w)] == -1) {
          index[static_cast<std::size_t>(w)] =
              low[static_cast<std::size_t>(w)] = nextIndex++;
          tarjanStack.push_back(w);
          onStack[static_cast<std::size_t>(w)] = true;
          callStack.push_back({w, 0});
        } else if (onStack[static_cast<std::size_t>(w)]) {
          low[static_cast<std::size_t>(f.v)] =
              std::min(low[static_cast<std::size_t>(f.v)],
                       index[static_cast<std::size_t>(w)]);
        }
      } else {
        const int v = f.v;
        callStack.pop_back();
        if (!callStack.empty()) {
          const int parent = callStack.back().v;
          low[static_cast<std::size_t>(parent)] =
              std::min(low[static_cast<std::size_t>(parent)],
                       low[static_cast<std::size_t>(v)]);
        }
        if (low[static_cast<std::size_t>(v)] ==
            index[static_cast<std::size_t>(v)]) {
          while (true) {
            const int w = tarjanStack.back();
            tarjanStack.pop_back();
            onStack[static_cast<std::size_t>(w)] = false;
            sccOf[static_cast<std::size_t>(w)] = sccCount;
            if (w == v) break;
          }
          ++sccCount;
        }
      }
    }
  }

  // Per-SCC aggregates.
  std::vector<std::uint64_t> enabledAll(static_cast<std::size_t>(sccCount),
                                        ~0ULL);
  std::vector<std::uint64_t> enabledAny(static_cast<std::size_t>(sccCount), 0);
  std::vector<std::uint64_t> actsInside(static_cast<std::size_t>(sccCount), 0);
  std::vector<bool> hasInternalEdge(static_cast<std::size_t>(sccCount), false);
  std::vector<int> representative(static_cast<std::size_t>(sccCount), -1);
  const bool useMasks = fairness != Fairness::kNone;
  for (int v = 0; v < n; ++v) {
    const int s = sccOf[static_cast<std::size_t>(v)];
    if (useMasks) {
      enabledAll[static_cast<std::size_t>(s)] &=
          g.enabledMask[static_cast<std::size_t>(v)];
      enabledAny[static_cast<std::size_t>(s)] |=
          g.enabledMask[static_cast<std::size_t>(v)];
    }
    representative[static_cast<std::size_t>(s)] = v;
    for (const auto& e : g.adj[static_cast<std::size_t>(v)]) {
      if (sccOf[static_cast<std::size_t>(e.to)] == s) {
        hasInternalEdge[static_cast<std::size_t>(s)] = true;
        // Actor-pair bits only exist (and fit 64 bits) in fair modes.
        if (useMasks)
          actsInside[static_cast<std::size_t>(s)] |= (1ULL << e.actorPair);
      }
    }
  }

  for (int s = 0; s < sccCount; ++s) {
    if (!hasInternalEdge[static_cast<std::size_t>(s)]) continue;
    if (fairness == Fairness::kNone)
      return representative[static_cast<std::size_t>(s)];
    // The SCC hosts a fair infinite execution iff no action that the
    // fairness notion protects is starved inside it.  (enabledAll is an
    // AND over configuration masks, so stray high bits vanish.)
    const std::uint64_t protectedPairs =
        fairness == Fairness::kStronglyFair
            ? enabledAny[static_cast<std::size_t>(s)]
            : enabledAll[static_cast<std::size_t>(s)];
    const std::uint64_t starved =
        protectedPairs & ~actsInside[static_cast<std::size_t>(s)];
    if (starved == 0) return representative[static_cast<std::size_t>(s)];
  }
  return -1;
}

}  // namespace ssno::mc
