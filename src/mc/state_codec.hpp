// StateCodec — bit-packed canonical configuration keys.
//
// The sequential ModelChecker hashes configurations as per-node code
// vectors (n × 8 bytes, heap-allocated per successor).  At exploration
// scale that dominates: every successor differs from its parent in ONE
// node, yet encoding rebuilds the whole vector.  The codec instead packs
// every node's canonical code (Protocol::encodeNode, radix
// localStateCount) into a fixed-width key of `words()` 64-bit words using
// per-node bit fields, so
//
//   * a state is a flat fixed-width memcmp/hashable key (no per-state
//     allocation: keys live in the StateStore's arenas),
//   * a successor key is the parent key with ONE field patched
//     (setNodeCode, O(1)),
//   * decoding a state into a Protocol can skip every node whose field
//     is unchanged (decodeDelta compares word-by-word, so runs of
//     untouched nodes cost one 64-bit compare) — this is what keeps the
//     Protocol's dirty set small and the EnabledCache incremental during
//     exploration.
//
// Fields never straddle word boundaries (a field that does not fit in
// the current word's remaining bits starts the next word), so every
// extract/patch is a single shift/mask.  Unused bits are always zero:
// keys are canonical and comparable with memcmp.
#ifndef SSNO_MC_STATE_CODEC_HPP
#define SSNO_MC_STATE_CODEC_HPP

#include <cstdint>
#include <vector>

#include "core/assert.hpp"
#include "core/protocol.hpp"
#include "core/types.hpp"

namespace ssno::mc {

class StateCodec {
 public:
  explicit StateCodec(const Protocol& protocol);

  /// Key width in 64-bit words (>= 1).
  [[nodiscard]] int words() const { return words_; }
  [[nodiscard]] int nodeCount() const {
    return static_cast<int>(fields_.size());
  }

  /// Whether the full product space ∏ localStateCount(p) fits in 64 bits
  /// (required by indexToKey-based full-space enumeration).
  [[nodiscard]] bool indexable() const { return indexable_; }
  /// The product; only meaningful when indexable().
  [[nodiscard]] std::uint64_t totalStates() const { return total_; }

  /// Packs the protocol's current configuration into `key`.
  void encode(const Protocol& protocol, std::uint64_t* key) const;

  /// Extracts node p's canonical code from a key.
  [[nodiscard]] std::uint64_t nodeCode(const std::uint64_t* key,
                                       NodeId p) const {
    const Field& f = fields_[static_cast<std::size_t>(p)];
    return (key[f.word] >> f.shift) & f.mask;
  }

  /// Overwrites node p's field in `key` (the O(1) successor patch).
  void setNodeCode(std::uint64_t* key, NodeId p, std::uint64_t code) const {
    const Field& f = fields_[static_cast<std::size_t>(p)];
    SSNO_ASSERT(code <= f.mask);
    key[f.word] = (key[f.word] & ~(f.mask << f.shift)) | (code << f.shift);
  }

  /// Decodes every node of `key` into the protocol (dirties everything).
  void decode(const std::uint64_t* key, Protocol& protocol) const;

  /// Decodes only the nodes whose fields differ between `key` and `prev`
  /// (the configuration currently held by the protocol).  Words that
  /// compare equal are skipped wholesale.  `prev == nullptr` falls back
  /// to a full decode.
  void decodeDelta(const std::uint64_t* key, const std::uint64_t* prev,
                   Protocol& protocol) const;

  /// Mixed-radix index -> key (full-space enumeration; requires
  /// indexable()).
  void indexToKey(std::uint64_t index, std::uint64_t* key) const;

  /// FNV-1a over the key words.
  [[nodiscard]] std::uint64_t hash(const std::uint64_t* key) const {
    std::uint64_t h = 0xCBF29CE484222325ULL;
    for (int w = 0; w < words_; ++w) {
      h ^= key[w];
      h *= 0x100000001B3ULL;
      h ^= h >> 29;  // fold high bits down for power-of-two tables
    }
    return h;
  }

 private:
  struct Field {
    std::uint32_t word = 0;
    std::uint32_t shift = 0;
    std::uint64_t mask = 0;   // (1 << bits) - 1; 0 for radix-1 nodes
    std::uint64_t radix = 1;
  };

  std::vector<Field> fields_;
  std::vector<std::vector<NodeId>> wordNodes_;  // nodes packed per word
  int words_ = 1;
  bool indexable_ = true;
  std::uint64_t total_ = 1;
};

}  // namespace ssno::mc

#endif  // SSNO_MC_STATE_CODEC_HPP
