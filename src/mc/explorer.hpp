// ParallelChecker — parallel explicit-state verification of
// self-stabilization (the scalable successor of core/checker's
// exhaustive paths; the property theory is documented there).
//
// Architecture: a level-synchronous parallel BFS over bit-packed
// canonical states.
//   * StateCodec packs configurations into fixed-width keys; successor
//     keys are produced by patching the acted node's field (O(1)).
//   * StateStore is the sharded concurrent seen-set; per-state depth,
//     legitimacy, and canonical parent pointers live beside the keys.
//   * Each worker owns a Protocol instance and an EnabledCache;
//     switching the worker to the next frontier state delta-decodes
//     only the differing nodes, so the protocol's dirty set — and
//     therefore guard re-evaluation — stays proportional to the diff,
//     not to n.  In Debug builds the cache cross-checks the incremental
//     enabled set against a naive full scan on every refresh.
//   * Workers claim frontier chunks from a shared cursor (dynamic load
//     balancing); a level barrier separates depths.
//   * The next-level frontier is a FrontierSpill: bounded RAM plus
//     run files on disk, so frontiers beyond Options::spillCapacity
//     degrade to streaming instead of aborting.
//
// Determinism: verdicts, counterexample traces, statesExplored and
// peakFrontier are bit-identical for 1 and N threads.  Exploration
// never stops mid-level on a violation; candidates are collected and
// the canonical minimum — ordered by (kind, state key, move), never by
// discovery order or state id — is reported at the level barrier.
// Counterexample traces follow the store's canonical-min parent
// pointers.  Wall-clock fields (seconds, statesPerSec) are of course
// not deterministic.
//
// Properties checked (matching ModelChecker):
//   * closure    — a legitimate configuration with an illegitimate
//                  successor fails;
//   * no deadlock — an illegitimate terminal configuration fails;
//   * convergence — after exploration, the illegitimate sub-digraph is
//                  rebuilt in canonical (key-sorted) order and analyzed
//                  by mc/properties: acyclicity for Fairness::kNone, no
//                  fair-feasible SCC cycle otherwise.
#ifndef SSNO_MC_EXPLORER_HPP
#define SSNO_MC_EXPLORER_HPP

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/checker.hpp"
#include "core/protocol.hpp"

namespace ssno::mc {

struct Options {
  int threads = 1;  ///< 0 = std::thread::hardware_concurrency()
  std::uint64_t maxStates = std::uint64_t{1} << 22;
  Fairness fairness = Fairness::kNone;
  /// Verify under SYNCHRONOUS-daemon semantics: a transition executes
  /// one simultaneous move set (every enabled processor acts, one
  /// enabled action each; successors = the cartesian product of
  /// per-node choices), run in place by the columnar simultaneous-step
  /// engine (core/sync_engine).  Every enabled processor acts each
  /// step, so the fairness-aware modes are meaningless here — only
  /// Fairness::kNone combines with this flag.
  bool synchronousSteps = false;
  /// Frontier ids kept in RAM before spilling a run file; 0 = unbounded
  /// (no disk tier).
  std::uint64_t spillCapacity = 0;
  std::string spillDir;  ///< "" = std::filesystem::temp_directory_path()
};

struct Result {
  bool ok = false;
  std::string failure;  ///< empty when ok
  std::uint64_t statesExplored = 0;
  std::uint64_t transitions = 0;
  std::uint64_t peakFrontier = 0;
  std::uint64_t spillRuns = 0;  ///< run files written by the disk tier
  int depthReached = 0;
  double seconds = 0;       ///< wall clock (not deterministic)
  double statesPerSec = 0;  ///< statesExplored / seconds
  /// Counterexample: configuration dumps from a seed to the violating
  /// configuration along canonical parent pointers (empty when ok).
  std::vector<std::string> trace;

  explicit operator bool() const { return ok; }
};

class ParallelChecker {
 public:
  /// Builds one Protocol instance per worker (instances must share
  /// nothing mutable; each gets its own Graph copy via construction).
  using Factory = std::function<std::unique_ptr<Protocol>()>;
  /// Legitimacy predicate evaluated against a worker's instance.
  using Legit = std::function<bool(Protocol&)>;

  ParallelChecker(Factory factory, Legit legit)
      : factory_(std::move(factory)), legit_(std::move(legit)) {}

  /// Exhaustive check over the full product space (every configuration
  /// is a BFS seed).  Fails fast when ∏ localStateCount exceeds
  /// maxStates or 64-bit indexing.
  [[nodiscard]] Result checkFullSpace(const Options& opt);

  /// Check over all configurations reachable from `seeds` (per-node
  /// canonical code vectors, as Protocol::encodeConfiguration).
  [[nodiscard]] Result checkReachable(
      const std::vector<std::vector<std::uint64_t>>& seeds,
      const Options& opt);

 private:
  Factory factory_;
  Legit legit_;
};

}  // namespace ssno::mc

#endif  // SSNO_MC_EXPLORER_HPP
