// StateStore — sharded concurrent seen-set for parallel exploration.
//
// Keys are fixed-width StateCodec words.  The store is split into 2^k
// shards selected by key hash; each shard owns
//   * an open-addressing probe table (hash, id) guarded by the shard
//     mutex, and
//   * chunked key/metadata arenas: states live in fixed 4096-state
//     chunks whose addresses never change, published through atomic
//     chunk-pointer slots preallocated at construction.  Readers may
//     therefore dereference any id they legitimately hold (returned by
//     an intern, or taken from a frontier built before a barrier)
//     without locking, while other threads keep inserting.
//
// Determinism.  Ids are assigned in insertion order per shard and are
// NOT deterministic across thread counts — nothing verdict-relevant may
// depend on them.  What IS deterministic:
//   * the set of stored keys (exploration is exhaustive per level),
//   * per-state depth (level-synchronous BFS: a state's depth is the
//     level of first discovery, independent of which worker got there),
//   * the legitimacy flag (evaluated once, on insertion, from the
//     discovering worker's decoded configuration), and
//   * the parent pointer: among all same-depth discoverers of a state,
//     intern() keeps the one with the lexicographically smallest
//     (parent key, move) — a total order on *keys*, not ids — so
//     counterexample traces are bit-identical for 1 and N threads.
//
// Capacity is a hard bound used to size the chunk-pointer arrays (with
// 4x headroom per shard against hash skew); exhausting it sets
// overflowed() instead of reallocating, and the explorer turns that
// into a deterministic "too large" verdict at the next level barrier.
#ifndef SSNO_MC_STORE_HPP
#define SSNO_MC_STORE_HPP

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

namespace ssno::mc {

class StateStore {
 public:
  static constexpr std::uint64_t kNoId = ~0ULL;

  /// `words`: key width; `capacity`: hard state-count bound.
  StateStore(int words, std::uint64_t capacity, int shardsLog2 = 6);
  ~StateStore();

  StateStore(const StateStore&) = delete;
  StateStore& operator=(const StateStore&) = delete;

  struct Ref {
    std::uint64_t id = kNoId;
    bool inserted = false;
    bool legit = false;
    std::uint32_t depth = 0;
  };

  /// Interns `key`.  When the key is new, stores depth and parent and
  /// evaluates `legitNow` (the caller's protocol must currently hold
  /// exactly this configuration) under the shard lock.  When the key
  /// exists at the same depth and `parentKey` is non-null, performs the
  /// canonical-min parent update.  On arena exhaustion returns
  /// {kNoId, false, true, 0} and sets overflowed().
  Ref intern(const std::uint64_t* key, std::uint64_t hash,
             std::uint32_t depth, const std::function<bool()>& legitNow,
             const std::uint64_t* parentKey = nullptr,
             std::uint64_t parentId = kNoId, std::uint32_t parentMove = 0);

  /// Lock-free lookup; only safe while no intern() runs concurrently
  /// (the explorer's read-only property pass).  kNoId if absent.
  [[nodiscard]] std::uint64_t find(const std::uint64_t* key,
                                   std::uint64_t hash) const;

  [[nodiscard]] const std::uint64_t* keyOf(std::uint64_t id) const {
    return keyChunk(id) + (chunkOffset(id) * static_cast<std::size_t>(words_));
  }
  [[nodiscard]] bool legit(std::uint64_t id) const {
    return metaOf(id).legit != 0;
  }
  [[nodiscard]] std::uint32_t depth(std::uint64_t id) const {
    return metaOf(id).depth;
  }
  [[nodiscard]] std::uint64_t parentOf(std::uint64_t id) const {
    return metaOf(id).parent;
  }
  [[nodiscard]] std::uint32_t parentMoveOf(std::uint64_t id) const {
    return metaOf(id).parentMove;
  }

  [[nodiscard]] int words() const { return words_; }
  [[nodiscard]] std::uint64_t size() const {
    return size_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] bool overflowed() const {
    return overflowed_.load(std::memory_order_relaxed);
  }
  /// Exclusive upper bound on assigned ids (for dense side arrays).
  [[nodiscard]] std::uint64_t idBound() const;

  /// Occupancy of the probe tables (states / slots, 0..~0.7).  Takes
  /// every shard lock; call at level barriers, not on the hot path.
  [[nodiscard]] double loadFactor() const;

  /// Visits every stored id (shard-major, insertion order within a
  /// shard — NOT deterministic across thread counts).  Quiescent use
  /// only.
  void forEach(const std::function<void(std::uint64_t)>& fn) const;

 private:
  static constexpr int kChunkLog2 = 12;  // 4096 states per chunk
  static constexpr std::size_t kChunkSize = std::size_t{1} << kChunkLog2;

  struct Meta {
    std::uint64_t parent = kNoId;
    std::uint32_t parentMove = 0;
    std::uint32_t depth = 0;
    std::uint8_t legit = 0;
  };

  struct Slot {
    std::uint64_t hash = 0;
    std::uint64_t id = kNoId;
  };

  struct Shard {
    mutable std::mutex mu;
    std::vector<Slot> table;  // power-of-two open addressing
    std::uint64_t count = 0;
    std::unique_ptr<std::atomic<std::uint64_t*>[]> keyChunks;
    std::unique_ptr<std::atomic<Meta*>[]> metaChunks;
  };

  /// Probe-table home position: the shard already consumed the low
  /// hash bits, so index the table with the bits above them (otherwise
  /// all keys in a shard collide into 1/shards of the home slots).
  [[nodiscard]] std::size_t tableIndex(std::uint64_t hash) const {
    return static_cast<std::size_t>(hash >> shardsLog2_);
  }

  [[nodiscard]] std::size_t shardOf(std::uint64_t id) const {
    return static_cast<std::size_t>(id) & shardMask_;
  }
  [[nodiscard]] std::size_t localOf(std::uint64_t id) const {
    return static_cast<std::size_t>(id >> shardsLog2_);
  }
  [[nodiscard]] std::size_t chunkOffset(std::uint64_t id) const {
    return localOf(id) & (kChunkSize - 1);
  }
  [[nodiscard]] const std::uint64_t* keyChunk(std::uint64_t id) const {
    return shards_[shardOf(id)]
        .keyChunks[localOf(id) >> kChunkLog2]
        .load(std::memory_order_acquire);
  }
  [[nodiscard]] Meta& metaOf(std::uint64_t id) const {
    return shards_[shardOf(id)]
        .metaChunks[localOf(id) >> kChunkLog2]
        .load(std::memory_order_acquire)[chunkOffset(id)];
  }

  /// True iff candidate (keyA, moveA) precedes incumbent (keyB, moveB)
  /// in the canonical order.
  [[nodiscard]] bool parentPrecedes(const std::uint64_t* keyA,
                                    std::uint32_t moveA,
                                    const std::uint64_t* keyB,
                                    std::uint32_t moveB) const;

  void growTable(Shard& sh);

  int words_;
  int shardsLog2_;
  std::size_t shardMask_;
  std::size_t chunksPerShard_;
  std::vector<Shard> shards_;
  std::atomic<std::uint64_t> size_{0};
  std::atomic<bool> overflowed_{false};
};

}  // namespace ssno::mc

#endif  // SSNO_MC_STORE_HPP
