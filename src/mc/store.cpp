#include "mc/store.hpp"

#include <algorithm>
#include <cstring>

#include "core/assert.hpp"
#include "obs/metrics.hpp"

namespace ssno::mc {
namespace {

constexpr std::size_t kInitialTable = 1024;

const obs::Histogram kProbeLen =
    obs::Registry::global().histogram("mc_store_probe_len");

}  // namespace

StateStore::StateStore(int words, std::uint64_t capacity, int shardsLog2)
    : words_(words), shardsLog2_(shardsLog2) {
  SSNO_EXPECTS(words >= 1 && shardsLog2 >= 0 && shardsLog2 <= 16);
  const std::size_t shardCount = std::size_t{1} << shardsLog2_;
  shardMask_ = shardCount - 1;
  // 4x headroom per shard against hash skew, and at least one chunk.
  const std::uint64_t perShard =
      std::max<std::uint64_t>(capacity * 4 / shardCount, 1) + kChunkSize;
  chunksPerShard_ = static_cast<std::size_t>(
      (perShard + kChunkSize - 1) / kChunkSize);
  shards_ = std::vector<Shard>(shardCount);
  for (Shard& sh : shards_) {
    sh.table.assign(kInitialTable, Slot{});
    sh.keyChunks =
        std::make_unique<std::atomic<std::uint64_t*>[]>(chunksPerShard_);
    sh.metaChunks = std::make_unique<std::atomic<Meta*>[]>(chunksPerShard_);
    for (std::size_t c = 0; c < chunksPerShard_; ++c) {
      sh.keyChunks[c].store(nullptr, std::memory_order_relaxed);
      sh.metaChunks[c].store(nullptr, std::memory_order_relaxed);
    }
  }
}

StateStore::~StateStore() {
  for (Shard& sh : shards_) {
    for (std::size_t c = 0; c < chunksPerShard_; ++c) {
      delete[] sh.keyChunks[c].load(std::memory_order_relaxed);
      delete[] sh.metaChunks[c].load(std::memory_order_relaxed);
    }
  }
}

bool StateStore::parentPrecedes(const std::uint64_t* keyA, std::uint32_t moveA,
                                const std::uint64_t* keyB,
                                std::uint32_t moveB) const {
  for (int w = 0; w < words_; ++w) {
    if (keyA[w] != keyB[w]) return keyA[w] < keyB[w];
  }
  return moveA < moveB;
}

void StateStore::growTable(Shard& sh) {
  std::vector<Slot> next(sh.table.size() * 2, Slot{});
  const std::size_t mask = next.size() - 1;
  for (const Slot& s : sh.table) {
    if (s.id == kNoId) continue;
    std::size_t at = tableIndex(s.hash) & mask;
    while (next[at].id != kNoId) at = (at + 1) & mask;
    next[at] = s;
  }
  sh.table = std::move(next);
}

StateStore::Ref StateStore::intern(const std::uint64_t* key,
                                   std::uint64_t hash, std::uint32_t depth,
                                   const std::function<bool()>& legitNow,
                                   const std::uint64_t* parentKey,
                                   std::uint64_t parentId,
                                   std::uint32_t parentMove) {
  Shard& sh = shards_[static_cast<std::size_t>(hash) & shardMask_];
  std::lock_guard<std::mutex> lock(sh.mu);

  std::size_t mask = sh.table.size() - 1;
  std::size_t at = tableIndex(hash) & mask;
  std::uint64_t probes = 0;
  while (sh.table[at].id != kNoId) {
    ++probes;
    if (sh.table[at].hash == hash &&
        std::memcmp(keyOf(sh.table[at].id), key,
                    static_cast<std::size_t>(words_) * 8) == 0) {
      kProbeLen.observe(probes);
      const std::uint64_t id = sh.table[at].id;
      Meta& m = metaOf(id);
      if (parentKey != nullptr && m.depth == depth) {
        // Canonical-min parent among same-depth discoverers: the
        // incumbent's key lives in a stable chunk, safe to read here.
        if (m.parent == kNoId ||
            parentPrecedes(parentKey, parentMove, keyOf(m.parent),
                           m.parentMove)) {
          m.parent = parentId;
          m.parentMove = parentMove;
        }
      }
      return {id, false, m.legit != 0, m.depth};
    }
    at = (at + 1) & mask;
  }

  kProbeLen.observe(probes);

  // New state: claim the next arena slot.
  const std::size_t local = static_cast<std::size_t>(sh.count);
  const std::size_t chunk = local >> kChunkLog2;
  if (chunk >= chunksPerShard_) {
    overflowed_.store(true, std::memory_order_relaxed);
    return {kNoId, false, true, depth};
  }
  if ((local & (kChunkSize - 1)) == 0) {
    sh.keyChunks[chunk].store(
        new std::uint64_t[kChunkSize * static_cast<std::size_t>(words_)],
        std::memory_order_release);
    sh.metaChunks[chunk].store(new Meta[kChunkSize],
                               std::memory_order_release);
  }
  const std::uint64_t id =
      (static_cast<std::uint64_t>(local) << shardsLog2_) |
      (hash & shardMask_);
  std::memcpy(
      sh.keyChunks[chunk].load(std::memory_order_relaxed) +
          (local & (kChunkSize - 1)) * static_cast<std::size_t>(words_),
      key, static_cast<std::size_t>(words_) * 8);
  Meta& m = metaOf(id);
  m.parent = parentKey != nullptr ? parentId : kNoId;
  m.parentMove = parentMove;
  m.depth = depth;
  m.legit = legitNow() ? 1 : 0;

  sh.table[at] = Slot{hash, id};
  ++sh.count;
  size_.fetch_add(1, std::memory_order_relaxed);
  if (sh.count * 10 > sh.table.size() * 7) growTable(sh);
  return {id, true, m.legit != 0, depth};
}

std::uint64_t StateStore::find(const std::uint64_t* key,
                               std::uint64_t hash) const {
  const Shard& sh = shards_[static_cast<std::size_t>(hash) & shardMask_];
  const std::size_t mask = sh.table.size() - 1;
  std::size_t at = tableIndex(hash) & mask;
  while (sh.table[at].id != kNoId) {
    if (sh.table[at].hash == hash &&
        std::memcmp(keyOf(sh.table[at].id), key,
                    static_cast<std::size_t>(words_) * 8) == 0)
      return sh.table[at].id;
    at = (at + 1) & mask;
  }
  return kNoId;
}

double StateStore::loadFactor() const {
  std::uint64_t states = 0;
  std::uint64_t slots = 0;
  for (const Shard& sh : shards_) {
    std::lock_guard<std::mutex> lock(sh.mu);
    states += sh.count;
    slots += sh.table.size();
  }
  return slots == 0 ? 0.0
                    : static_cast<double>(states) / static_cast<double>(slots);
}

std::uint64_t StateStore::idBound() const {
  std::uint64_t maxCount = 0;
  for (const Shard& sh : shards_) maxCount = std::max(maxCount, sh.count);
  return maxCount << shardsLog2_;
}

void StateStore::forEach(const std::function<void(std::uint64_t)>& fn) const {
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    for (std::uint64_t local = 0; local < shards_[s].count; ++local)
      fn((local << shardsLog2_) | static_cast<std::uint64_t>(s));
  }
}

}  // namespace ssno::mc
