// FrontierSpill — capacity-bounded BFS frontier with a disk tier.
//
// The next-level frontier is only a bag of state ids (order is
// irrelevant: verdict determinism comes from canonical-min selection,
// not processing order), so spilling is trivial run-file management in
// the fsais external-memory style: when the in-RAM buffer exceeds the
// capacity, it is flushed as one binary run file, and draining streams
// the runs back chunk by chunk.  With capacity 0 the frontier stays
// entirely in RAM and no files are touched.
//
// Run file format: a 24-byte header — 8-byte magic "SSNORUN1", u64 id
// count, u32 CRC-32 of the payload, u32 zero pad — then `count` raw
// u64 ids.  drainChunk() verifies magic, count, and CRC as it streams;
// any mismatch (torn write, truncation, foreign file) is a NAMED
// std::runtime_error — detected state loss, never a silently shrunken
// frontier.  Runs are written through io/file.hpp (fault-injectable)
// but deliberately NOT fsynced: they are scratch state scoped to one
// checker run — a machine crash loses the whole exploration anyway, so
// durability would buy nothing and cost a sync per run.
//
// append() is thread-safe (workers flush local batches during a level);
// drainChunk() is single-consumer and must not overlap appends to the
// same object — the explorer alternates: fill `next` during level d,
// then drain it as `current` during level d+1 while filling a fresh
// spill.  Run files are deleted as they are consumed and on
// destruction.
#ifndef SSNO_MC_SPILL_HPP
#define SSNO_MC_SPILL_HPP

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "io/file.hpp"

namespace ssno::mc {

class FrontierSpill {
 public:
  /// `memCapacity` ids held in RAM before a run is written (0 = no
  /// bound); `dir` receives the run files ("" = std::filesystem temp).
  explicit FrontierSpill(std::uint64_t memCapacity = 0,
                         const std::string& dir = "");
  ~FrontierSpill();

  FrontierSpill(const FrontierSpill&) = delete;
  FrontierSpill& operator=(const FrontierSpill&) = delete;

  void append(const std::uint64_t* ids, std::size_t count);

  /// Total ids appended (RAM + runs); unchanged by draining.
  [[nodiscard]] std::uint64_t size() const { return total_; }
  [[nodiscard]] std::uint64_t runsWritten() const { return runsWritten_; }

  /// Moves up to `chunk` ids into `out` (cleared first); false once
  /// everything has been drained.  Throws std::runtime_error naming the
  /// run file when a run fails header or CRC validation.
  bool drainChunk(std::vector<std::uint64_t>& out, std::size_t chunk);

  /// Clears all content (drained or not) and deletes remaining runs,
  /// making the object reusable for the next level.
  void reset();

 private:
  void flushLocked();

  std::mutex mu_;
  std::uint64_t memCapacity_;
  std::string dir_;
  std::string prefix_;
  std::vector<std::uint64_t> mem_;
  std::vector<std::string> runs_;
  std::uint64_t total_ = 0;
  std::uint64_t runsWritten_ = 0;
  std::uint64_t runSerial_ = 0;
  // Drain cursor.
  std::size_t memAt_ = 0;
  void* readFile_ = nullptr;  // FILE* of the run currently streamed
  std::size_t readRun_ = 0;
  std::uint64_t runIdsLeft_ = 0;     // ids the current run's header promised
  std::uint32_t runCrcExpected_ = 0;
  io::Crc32 runCrc_;                 // accumulated over streamed payload
};

}  // namespace ssno::mc

#endif  // SSNO_MC_SPILL_HPP
