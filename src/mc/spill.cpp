#include "mc/spill.hpp"

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <stdexcept>

#include "obs/metrics.hpp"

namespace ssno::mc {

namespace {
const obs::Counter kFrontierIds =
    obs::Registry::global().counter("mc_frontier_ids_total");
const obs::Counter kSpillRuns =
    obs::Registry::global().counter("mc_spill_runs_total");
const obs::Counter kSpillBytes =
    obs::Registry::global().counter("mc_spill_bytes_total");
}  // namespace

FrontierSpill::FrontierSpill(std::uint64_t memCapacity,
                             const std::string& dir)
    : memCapacity_(memCapacity), dir_(dir) {
  if (memCapacity_ > 0) {
    if (dir_.empty())
      dir_ = std::filesystem::temp_directory_path().string();
    // A prefix unique enough for concurrent checkers in one process.
    static std::atomic<std::uint64_t> counter{0};
    prefix_ = dir_ + "/ssno_mc_frontier_" +
              std::to_string(static_cast<std::uint64_t>(
                  reinterpret_cast<std::uintptr_t>(this))) +
              "_" + std::to_string(counter.fetch_add(1)) + "_";
  }
}

FrontierSpill::~FrontierSpill() { reset(); }

void FrontierSpill::flushLocked() {
  const std::string path = prefix_ + std::to_string(runSerial_++) + ".run";
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr)
    throw std::runtime_error("FrontierSpill: cannot create run file " + path);
  const std::size_t wrote =
      std::fwrite(mem_.data(), sizeof(std::uint64_t), mem_.size(), f);
  std::fclose(f);
  if (wrote != mem_.size())
    throw std::runtime_error("FrontierSpill: short write to " + path);
  runs_.push_back(path);
  ++runsWritten_;
  kSpillRuns.inc();
  kSpillBytes.inc(mem_.size() * sizeof(std::uint64_t));
  mem_.clear();
}

void FrontierSpill::append(const std::uint64_t* ids, std::size_t count) {
  std::lock_guard<std::mutex> lock(mu_);
  mem_.insert(mem_.end(), ids, ids + count);
  total_ += count;
  kFrontierIds.inc(count);
  if (memCapacity_ > 0 && mem_.size() >= memCapacity_) flushLocked();
}

bool FrontierSpill::drainChunk(std::vector<std::uint64_t>& out,
                               std::size_t chunk) {
  out.clear();
  // Stream run files first, then the RAM tail.
  while (out.size() < chunk) {
    if (readFile_ == nullptr && readRun_ < runs_.size()) {
      readFile_ = std::fopen(runs_[readRun_].c_str(), "rb");
      if (readFile_ == nullptr)
        throw std::runtime_error("FrontierSpill: cannot reopen run " +
                                 runs_[readRun_]);
    }
    if (readFile_ != nullptr) {
      const std::size_t want = chunk - out.size();
      const std::size_t base = out.size();
      out.resize(base + want);
      const std::size_t got =
          std::fread(out.data() + base, sizeof(std::uint64_t), want,
                     static_cast<std::FILE*>(readFile_));
      out.resize(base + got);
      if (got < want) {
        std::fclose(static_cast<std::FILE*>(readFile_));
        std::remove(runs_[readRun_].c_str());
        readFile_ = nullptr;
        ++readRun_;
      }
      continue;
    }
    // RAM tail.
    while (out.size() < chunk && memAt_ < mem_.size())
      out.push_back(mem_[memAt_++]);
    break;
  }
  return !out.empty();
}

void FrontierSpill::reset() {
  if (readFile_ != nullptr) {
    std::fclose(static_cast<std::FILE*>(readFile_));
    readFile_ = nullptr;
  }
  for (std::size_t r = readRun_; r < runs_.size(); ++r)
    std::remove(runs_[r].c_str());
  runs_.clear();
  readRun_ = 0;
  mem_.clear();
  memAt_ = 0;
  total_ = 0;
}

}  // namespace ssno::mc
