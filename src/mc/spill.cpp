#include "mc/spill.hpp"

#include <atomic>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <stdexcept>

#include "obs/metrics.hpp"

namespace ssno::mc {

namespace {
const obs::Counter kFrontierIds =
    obs::Registry::global().counter("mc_frontier_ids_total");
const obs::Counter kSpillRuns =
    obs::Registry::global().counter("mc_spill_runs_total");
const obs::Counter kSpillBytes =
    obs::Registry::global().counter("mc_spill_bytes_total");
const obs::Counter kSpillCorrupt =
    obs::Registry::global().counter("mc_spill_corrupt_runs_total");

constexpr char kRunMagic[8] = {'S', 'S', 'N', 'O', 'R', 'U', 'N', '1'};
constexpr std::size_t kRunHeaderBytes = 24;  // magic + u64 count + u32 crc + pad

[[noreturn]] void failCorrupt(const std::string& run, const char* what) {
  kSpillCorrupt.inc();
  throw std::runtime_error("FrontierSpill: corrupt run " + run + ": " + what);
}
}  // namespace

FrontierSpill::FrontierSpill(std::uint64_t memCapacity,
                             const std::string& dir)
    : memCapacity_(memCapacity), dir_(dir) {
  if (memCapacity_ > 0) {
    if (dir_.empty())
      dir_ = std::filesystem::temp_directory_path().string();
    // A prefix unique enough for concurrent checkers in one process.
    static std::atomic<std::uint64_t> counter{0};
    prefix_ = dir_ + "/ssno_mc_frontier_" +
              std::to_string(static_cast<std::uint64_t>(
                  reinterpret_cast<std::uintptr_t>(this))) +
              "_" + std::to_string(counter.fetch_add(1)) + "_";
  }
}

FrontierSpill::~FrontierSpill() { reset(); }

void FrontierSpill::flushLocked() {
  const std::string path = prefix_ + std::to_string(runSerial_++) + ".run";
  const std::size_t payloadBytes = mem_.size() * sizeof(std::uint64_t);
  io::Crc32 crc;
  crc.update(mem_.data(), payloadBytes);
  char header[kRunHeaderBytes] = {};
  std::memcpy(header, kRunMagic, sizeof(kRunMagic));
  const std::uint64_t count = mem_.size();
  const std::uint32_t sum = crc.value();
  std::memcpy(header + 8, &count, sizeof(count));
  std::memcpy(header + 16, &sum, sizeof(sum));
  io::File f = io::File::createTrunc(path);
  if (!f.valid())
    throw std::runtime_error("FrontierSpill: cannot create run file " + path +
                             ": " + f.error());
  // No sync(): runs are scratch, see the header comment.
  if (!f.writeAll(header, kRunHeaderBytes) ||
      !f.writeAll(mem_.data(), payloadBytes) || !f.close())
    throw std::runtime_error("FrontierSpill: cannot write run file " + path +
                             ": " + f.error());
  runs_.push_back(path);
  ++runsWritten_;
  kSpillRuns.inc();
  kSpillBytes.inc(mem_.size() * sizeof(std::uint64_t));
  mem_.clear();
}

void FrontierSpill::append(const std::uint64_t* ids, std::size_t count) {
  std::lock_guard<std::mutex> lock(mu_);
  mem_.insert(mem_.end(), ids, ids + count);
  total_ += count;
  kFrontierIds.inc(count);
  if (memCapacity_ > 0 && mem_.size() >= memCapacity_) flushLocked();
}

bool FrontierSpill::drainChunk(std::vector<std::uint64_t>& out,
                               std::size_t chunk) {
  out.clear();
  // Stream run files first, then the RAM tail.
  while (out.size() < chunk) {
    if (readFile_ == nullptr && readRun_ < runs_.size()) {
      const std::string& run = runs_[readRun_];
      readFile_ = std::fopen(run.c_str(), "rb");
      if (readFile_ == nullptr)
        throw std::runtime_error("FrontierSpill: cannot reopen run " + run);
      char header[kRunHeaderBytes];
      if (std::fread(header, 1, kRunHeaderBytes,
                     static_cast<std::FILE*>(readFile_)) != kRunHeaderBytes)
        failCorrupt(run, "short header");
      if (std::memcmp(header, kRunMagic, sizeof(kRunMagic)) != 0)
        failCorrupt(run, "bad magic");
      std::memcpy(&runIdsLeft_, header + 8, sizeof(runIdsLeft_));
      std::memcpy(&runCrcExpected_, header + 16, sizeof(runCrcExpected_));
      runCrc_ = io::Crc32();
    }
    if (readFile_ != nullptr) {
      const std::string& run = runs_[readRun_];
      const std::size_t want = std::min<std::size_t>(
          chunk - out.size(), static_cast<std::size_t>(runIdsLeft_));
      const std::size_t base = out.size();
      out.resize(base + want);
      const std::size_t got =
          std::fread(out.data() + base, sizeof(std::uint64_t), want,
                     static_cast<std::FILE*>(readFile_));
      out.resize(base + got);
      runCrc_.update(out.data() + base, got * sizeof(std::uint64_t));
      runIdsLeft_ -= got;
      if (got < want) failCorrupt(run, "truncated payload");
      if (runIdsLeft_ == 0) {
        // Header count satisfied: the payload must check out exactly —
        // no CRC mismatch, no trailing bytes.
        if (runCrc_.value() != runCrcExpected_)
          failCorrupt(run, "crc mismatch");
        if (std::fgetc(static_cast<std::FILE*>(readFile_)) != EOF)
          failCorrupt(run, "trailing bytes");
        std::fclose(static_cast<std::FILE*>(readFile_));
        std::remove(run.c_str());
        readFile_ = nullptr;
        ++readRun_;
      }
      continue;
    }
    // RAM tail.
    while (out.size() < chunk && memAt_ < mem_.size())
      out.push_back(mem_[memAt_++]);
    break;
  }
  return !out.empty();
}

void FrontierSpill::reset() {
  if (readFile_ != nullptr) {
    std::fclose(static_cast<std::FILE*>(readFile_));
    readFile_ = nullptr;
  }
  for (std::size_t r = readRun_; r < runs_.size(); ++r)
    std::remove(runs_[r].c_str());
  runs_.clear();
  readRun_ = 0;
  mem_.clear();
  memAt_ = 0;
  total_ = 0;
}

}  // namespace ssno::mc
