#include "exp/runner.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <mutex>
#include <stdexcept>
#include <thread>

#include "apps/broadcast.hpp"
#include "apps/routing.hpp"
#include "core/checker.hpp"
#include "core/fault.hpp"
#include "core/rng.hpp"
#include "core/scheduler.hpp"
#include "dftc/dftc.hpp"
#include "mc/explorer.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "orientation/baseline.hpp"
#include "orientation/chordal.hpp"
#include "orientation/dftno.hpp"
#include "orientation/stno.hpp"
#include "resil/campaign.hpp"
#include "resil/fault_plan.hpp"
#include "resil/search_daemon.hpp"
#include "sptree/bfs_tree.hpp"
#include "sptree/dfs_tree.hpp"
#include "sptree/lex_dfs_tree.hpp"

namespace ssno::exp {
namespace {

TrialResult dftnoTrial(const Graph& g, const Scenario& s, std::uint64_t seed) {
  Dftno dftno(g);
  Rng rng(seed);
  dftno.randomize(rng);
  auto daemon = makeDaemon(s.daemon);
  Simulator sim(dftno, *daemon, rng);
  const RunStats s1 = sim.runUntil(
      [&dftno] { return dftno.substrateLegitimate(); }, s.budget);
  const RunStats s2 =
      sim.runUntil([&dftno] { return dftno.isLegitimate(); }, s.budget);
  TrialResult r;
  r.converged = s1.converged && s2.converged;
  if (r.converged) {
    r.metrics = {{"substrate_moves", static_cast<double>(s1.moves)},
                 {"overlay_moves", static_cast<double>(s2.moves)},
                 {"overlay_rounds", static_cast<double>(s2.rounds)}};
  }
  return r;
}

TrialResult stnoTrial(const Graph& g, const Scenario& s, std::uint64_t seed) {
  Stno stno(g);
  Rng rng(seed);
  stno.randomize(rng);
  auto daemon = makeDaemon(s.daemon);
  Simulator sim(stno, *daemon, rng);
  const RunStats s1 = sim.runUntil(
      [&stno] { return stno.substrateLegitimate(); }, s.budget);
  const RunStats s2 = sim.runToQuiescence(s.budget);
  TrialResult r;
  r.converged = s1.converged && s2.terminal;
  if (r.converged) {
    r.metrics = {{"tree_moves", static_cast<double>(s1.moves)},
                 {"overlay_moves", static_cast<double>(s2.moves)},
                 {"overlay_rounds", static_cast<double>(s2.rounds)}};
  }
  return r;
}

TrialResult stnoFixedTreeTrial(const Graph& g, const Scenario& s,
                               std::uint64_t seed) {
  Stno stno(g, portOrderDfsTree(g));
  Rng rng(seed);
  stno.randomize(rng);
  auto daemon = makeDaemon(s.daemon);
  Simulator sim(stno, *daemon, rng);
  const RunStats stats = sim.runToQuiescence(s.budget);
  TrialResult r;
  r.converged = stats.terminal;
  if (r.converged) {
    r.metrics = {{"overlay_moves", static_cast<double>(stats.moves)},
                 {"overlay_rounds", static_cast<double>(stats.rounds)}};
  }
  return r;
}

/// Shared churn loop: step the protocol for `budget` moves, corrupting one
/// random node with probability faultRate before each step, and track the
/// fraction of steps spent in a correct configuration.
template <typename Protocol, typename CorrectFn>
TrialResult churnTrial(Protocol& protocol, const Scenario& s,
                       std::uint64_t seed, const CorrectFn& correct) {
  Rng rng(seed);
  auto daemon = makeDaemon(s.daemon);
  Simulator sim(protocol, *daemon, rng);
  FaultInjector inj(protocol);
  StepCount okSteps = 0;
  double faults = 0;
  for (StepCount t = 0; t < s.budget; ++t) {
    if (rng.chance(s.faultRate)) {
      inj.corruptK(1, rng);
      faults += 1;
    }
    (void)sim.stepOnce();
    if (correct()) ++okSteps;
  }
  TrialResult r;
  r.metrics = {{"availability", static_cast<double>(okSteps) /
                                    static_cast<double>(s.budget)},
               {"faults", faults}};
  return r;
}

TrialResult dftnoChurnTrial(const Graph& g, const Scenario& s,
                            std::uint64_t seed) {
  Dftno dftno(g);
  Rng init(seed);
  dftno.randomize(init);
  return churnTrial(dftno, s, init.next(),
                    [&dftno] { return dftno.isLegitimate(); });
}

TrialResult baselineChurnTrial(const Graph& g, const Scenario& s,
                               std::uint64_t seed) {
  InitBasedOrientation base(g);
  base.initializeAll();
  return churnTrial(base, s, seed, [&base] { return base.isCorrect(); });
}

/// Shared "scramble, then stabilize" loop for the bare substrates.
template <typename Protocol, typename DoneFn>
TrialResult substrateTrial(Protocol& protocol, const Scenario& s,
                           std::uint64_t seed, const char* movesName,
                           const char* roundsName, const DoneFn& done) {
  Rng rng(seed);
  protocol.randomize(rng);
  auto daemon = makeDaemon(s.daemon);
  Simulator sim(protocol, *daemon, rng);
  const RunStats stats = sim.runUntil(done, s.budget);
  TrialResult r;
  r.converged = stats.converged || stats.terminal;
  if (r.converged) {
    r.metrics = {{movesName, static_cast<double>(stats.moves)},
                 {roundsName, static_cast<double>(stats.rounds)}};
  }
  return r;
}

TrialResult dftcTrial(const Graph& g, const Scenario& s, std::uint64_t seed) {
  Dftc dftc(g);
  return substrateTrial(dftc, s, seed, "substrate_moves", "substrate_rounds",
                        [&dftc] { return dftc.isLegitimate(); });
}

TrialResult bfsTreeTrial(const Graph& g, const Scenario& s,
                         std::uint64_t seed) {
  BfsTree tree(g);
  return substrateTrial(tree, s, seed, "tree_moves", "tree_rounds",
                        [&tree] { return tree.isLegitimate(); });
}

TrialResult lexDfsTreeTrial(const Graph& g, const Scenario& s,
                            std::uint64_t seed) {
  LexDfsTree tree(g);
  return substrateTrial(tree, s, seed, "tree_moves", "tree_rounds",
                        [&tree] { return tree.isLegitimate(); });
}

/// Fault containment: converge, corrupt faultK processors, re-converge.
template <typename Protocol, typename LegitFn>
TrialResult recoveryTrial(Protocol& protocol, const Scenario& s,
                          std::uint64_t seed, const LegitFn& legit) {
  Rng rng(seed);
  protocol.randomize(rng);
  auto daemon = makeDaemon(s.daemon);
  Simulator sim(protocol, *daemon, rng);
  TrialResult r;
  if (!sim.runUntil(legit, s.budget).converged) {
    r.converged = false;
    return r;
  }
  FaultInjector inj(protocol);
  const int k = std::min(s.faultK, protocol.graph().nodeCount());
  inj.corruptK(k, rng);
  const RunStats stats = sim.runUntil(legit, s.budget);
  r.converged = stats.converged;
  if (r.converged) {
    r.metrics = {{"recovery_moves", static_cast<double>(stats.moves)},
                 {"recovery_rounds", static_cast<double>(stats.rounds)}};
  }
  return r;
}

TrialResult dftnoRecoveryTrial(const Graph& g, const Scenario& s,
                               std::uint64_t seed) {
  Dftno dftno(g);
  return recoveryTrial(dftno, s, seed,
                       [&dftno] { return dftno.isLegitimate(); });
}

TrialResult stnoRecoveryTrial(const Graph& g, const Scenario& s,
                              std::uint64_t seed) {
  Stno stno(g);
  return recoveryTrial(stno, s, seed, [&stno] { return stno.isLegitimate(); });
}

TrialResult stnoCrashResetTrial(const Graph& g, const Scenario& s,
                                std::uint64_t seed) {
  // Crash-and-reset of one processor (all-zero local state); the victim
  // is drawn from the trial seed so a trial sweep covers many victims.
  Stno stno(g);
  Rng rng(seed);
  stno.randomize(rng);
  auto daemon = makeDaemon(s.daemon);
  Simulator sim(stno, *daemon, rng);
  TrialResult r;
  if (!sim.runToQuiescence(s.budget).terminal) {
    r.converged = false;
    return r;
  }
  const NodeId victim = rng.below(g.nodeCount());
  FaultInjector(stno).crashReset(victim);
  const RunStats stats = sim.runToQuiescence(s.budget);
  r.converged = stats.terminal;
  if (r.converged) {
    r.metrics = {{"recovery_moves", static_cast<double>(stats.moves)},
                 {"victim", static_cast<double>(victim)}};
  }
  return r;
}

/// Chapter-5 ablation: do STNO-over-a-DFS-tree names equal DFTNO names?
/// One trial stabilizes four stacks (token, fixed DFS tree, BFS tree,
/// self-stabilizing LexDfsTree feeding STNO) from trial-derived seeds.
TrialResult ablationNamingTrial(const Graph& g, const Scenario& s,
                                std::uint64_t seed) {
  TrialResult r;
  auto fail = [&r] {
    r.converged = false;
    return r;
  };

  Dftno dftno(g);
  {
    Rng rng(seed + 1);
    dftno.randomize(rng);
    auto daemon = makeDaemon(s.daemon);
    Simulator sim(dftno, *daemon, rng);
    if (!sim.runUntil([&dftno] { return dftno.isLegitimate(); }, s.budget)
             .converged)
      return fail();
  }
  const Orientation viaToken = dftno.orientation();

  auto stabilizeStno = [&](Stno& stno, std::uint64_t stnoSeed) {
    Rng rng(stnoSeed);
    stno.randomize(rng);
    auto daemon = makeDaemon(s.daemon);
    Simulator sim(stno, *daemon, rng);
    return sim.runToQuiescence(s.budget).terminal;
  };

  Stno viaDfsStno(g, portOrderDfsTree(g));
  if (!stabilizeStno(viaDfsStno, seed + 2)) return fail();
  Stno viaBfsStno(g);
  if (!stabilizeStno(viaBfsStno, seed + 3)) return fail();

  // Fully self-stabilizing DFS route: LexDfsTree substrate, then STNO.
  LexDfsTree lex(g);
  double lexBits = 0;
  {
    Rng rng(seed + 4);
    lex.randomize(rng);
    auto daemon = makeDaemon(s.daemon);
    Simulator sim(lex, *daemon, rng);
    if (!sim.runToQuiescence(s.budget).terminal) return fail();
  }
  std::vector<NodeId> parents(static_cast<std::size_t>(g.nodeCount()));
  for (NodeId p = 0; p < g.nodeCount(); ++p)
    parents[static_cast<std::size_t>(p)] = lex.parentOf(p);
  Stno viaLexStno(g, std::move(parents));
  if (!stabilizeStno(viaLexStno, seed + 5)) return fail();

  double tokenBits = 0;
  for (NodeId p = 0; p < g.nodeCount(); ++p) {
    lexBits = std::max(lexBits, lex.stateBits(p));
    tokenBits = std::max(tokenBits, dftno.substrate().stateBits(p));
  }
  r.metrics = {
      {"dfs_names_equal",
       viaDfsStno.orientation().name == viaToken.name ? 1.0 : 0.0},
      {"bfs_names_equal",
       viaBfsStno.orientation().name == viaToken.name ? 1.0 : 0.0},
      {"lex_names_equal",
       viaLexStno.orientation().name == viaToken.name ? 1.0 : 0.0},
      {"lex_tree_bits", lexBits},
      {"token_substrate_bits", tokenBits}};
  return r;
}

/// Deterministic per-node space accounting (EXP-3 tables).
TrialResult spaceTrial(const Graph& g, const Scenario&, std::uint64_t) {
  Dftno dftno(g);
  Stno stno(g);
  double dOrie = 0, dSub = 0, sOrie = 0, sSub = 0;
  for (NodeId p = 0; p < g.nodeCount(); ++p) {
    dOrie = std::max(dOrie, dftno.orientationBits(p));
    dSub = std::max(dSub, dftno.substrate().stateBits(p));
    sOrie = std::max(sOrie, stno.orientationBits(p));
    sSub = std::max(sSub, stno.substrateBits(p));
  }
  TrialResult r;
  r.metrics = {{"max_degree", static_cast<double>(g.maxDegree())},
               {"dftno_orientation_bits", dOrie},
               {"dftno_substrate_bits", dSub},
               {"stno_orientation_bits", sOrie},
               {"stno_substrate_bits", sSub}};
  return r;
}

/// Deterministic §2.2 property checks on the canonical orientation.
TrialResult chordalPropsTrial(const Graph& g, const Scenario&,
                              std::uint64_t) {
  const Orientation o =
      inducedChordalOrientation(g, portOrderDfsPreorder(g), g.nodeCount());
  TrialResult r;
  r.metrics = {{"sp1", satisfiesSP1(o) ? 1.0 : 0.0},
               {"sp2", satisfiesSP2(o) ? 1.0 : 0.0},
               {"locally_oriented", isLocallyOriented(o) ? 1.0 : 0.0},
               {"edge_symmetry", hasEdgeSymmetry(o) ? 1.0 : 0.0}};
  return r;
}

/// Deterministic message-complexity comparison (EXP-12 tables).
TrialResult routingTrial(const Graph& g, const Scenario&, std::uint64_t) {
  const Orientation o =
      inducedChordalOrientation(g, portOrderDfsPreorder(g), g.nodeCount());
  const RoutingStats rs = evaluateRouting(o, 2);
  TrialResult r;
  r.metrics = {
      {"traversal_with_sod",
       static_cast<double>(traverseWithOrientation(o, g.root()).messages)},
      {"traversal_without_sod",
       static_cast<double>(traverseWithoutOrientation(g, g.root()).messages)},
      {"flood_messages", static_cast<double>(floodMessages(g, g.root()))},
      {"unicast_delivered_pct",
       rs.pairs == 0 ? 0.0 : 100.0 * rs.delivered / rs.pairs},
      {"unicast_mean_hops", rs.meanHops},
      {"unicast_max_stretch", rs.maxStretch}};
  return r;
}

/// Simulator throughput on DFTNO, up to four pipelines on identical work:
///   * bitmask      — incremental cache + EnabledView daemon selection +
///                    columnar simultaneous steps (the default path;
///                    reported as incremental_moves_per_sec for baseline
///                    continuity),
///   * legacy-sim   — scalar per-node virtual guard evaluation
///                    (setScalarGuardEval) and simultaneous steps on the
///                    PR-4-era per-node-vector snapshot/restore pipeline
///                    (setLegacySimultaneous; measured only under the
///                    synchronous daemon, where executeSimultaneously is
///                    the hot path) — the full pre-batch-kernel stack,
///                    the "before" side of dftno_sync_speedup,
///   * legacy-vector — incremental cache, but the O(#enabled) node-major
///                    move vector is materialized per step and handed to
///                    Daemon::legacySelect (the PR-3-era pipeline),
///   * naive        — full guard rescan per step (the pre-PR-2 baseline;
///                    skipped at n > kNaiveNodeCap, where a single
///                    trial would take minutes).
/// All runs execute exactly s.budget moves from the same scrambled
/// start, so the measured work is identical move for move; in Debug
/// builds the bitmask run cross-checks every selection against the
/// legacy path and every columnar simultaneous step against the
/// per-node-vector pipeline.
TrialResult schedulerTrial(const Graph& g, const Scenario& s,
                           std::uint64_t seed) {
  constexpr int kNaiveNodeCap = 20'000;
  enum class Mode { kBitmask, kLegacySim, kLegacyVector, kNaive };
  auto movesPerSec = [&](Mode mode) {
    Dftno dftno(g);
    Rng rng(seed);
    dftno.randomize(rng);
    auto daemon = makeDaemon(s.daemon);
    Simulator sim(dftno, *daemon, rng);
    if (mode == Mode::kNaive) sim.setNaiveEnabledScan(true);
    if (mode == Mode::kLegacyVector) sim.setLegacyVectorSelect(true);
    if (mode == Mode::kLegacySim) {
      sim.setLegacySimultaneous(true);
      sim.setScalarGuardEval(true);
    }
    const auto start = std::chrono::steady_clock::now();
    const RunStats stats = sim.runToQuiescence(s.budget);
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    return static_cast<double>(stats.moves) / std::max(secs, 1e-9);
  };
  // Dense synchronous stepping on LexDfsTree — the fat-state protocol.
  // Its raw snapshot format is a padded (n+3)-int vector per processor,
  // so the legacy per-node-vector simultaneous pipeline copies Θ(n)
  // ints per actor per step, while the columnar engine copies each
  // actor's actual state (a few ints plus its real path word).  A
  // bounded perturbation keeps the workload memory-feasible at any n:
  // `perturb` distinct non-root processors get short random words, so
  // every synchronous step executes on the order of `perturb`
  // simultaneous moves (the perturbed processors and their activated
  // neighbors) — a dense simultaneous step even at n = 1e5.
  auto lexMovesPerSec = [&](bool legacySim) {
    constexpr int kPerturbCap = 256;
    constexpr int kWordCap = 8;
    LexDfsTree lex(g);
    Rng rng(seed ^ 0x1e0dull);
    const int n = g.nodeCount();
    const int perturb = std::min(n - 1, kPerturbCap);
    // Partial Fisher-Yates over the non-root ids.
    std::vector<NodeId> ids;
    ids.reserve(static_cast<std::size_t>(n - 1));
    for (NodeId p = 0; p < n; ++p)
      if (p != g.root()) ids.push_back(p);
    std::vector<int> raw(static_cast<std::size_t>(n) + 3, 0);
    for (int i = 0; i < perturb; ++i) {
      std::swap(ids[static_cast<std::size_t>(i)],
                ids[static_cast<std::size_t>(
                    rng.between(i, static_cast<int>(ids.size()) - 1))]);
      const NodeId p = ids[static_cast<std::size_t>(i)];
      std::fill(raw.begin(), raw.end(), 0);
      raw[0] = rng.below(g.degree(p));
      raw[1] = 1;
      const int len = 1 + rng.below(kWordCap);
      raw[2] = len;
      for (int k2 = 0; k2 < len; ++k2)
        raw[3 + static_cast<std::size_t>(k2)] =
            rng.below(std::max(1, g.maxDegree()));
      lex.setRawNode(p, raw);
    }
    auto daemon = makeDaemon(s.daemon);
    Simulator sim(lex, *daemon, rng);
    if (legacySim) sim.setLegacySimultaneous(true);
    const StepCount budget = 3 * static_cast<StepCount>(perturb);
    const auto start = std::chrono::steady_clock::now();
    const RunStats stats = sim.runToQuiescence(budget);
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    return static_cast<double>(stats.moves) / std::max(secs, 1e-9);
  };
  TrialResult r;
  const double legacyVector = movesPerSec(Mode::kLegacyVector);
  const double bitmask = movesPerSec(Mode::kBitmask);
  r.metrics = {{"incremental_moves_per_sec", bitmask},
               {"legacy_vector_moves_per_sec", legacyVector},
               {"bitmask_speedup", bitmask / std::max(legacyVector, 1e-9)}};
  if (s.daemon == DaemonKind::kSynchronous) {
    // DFTNO pipeline ratio.  Thin 8-int state means shared guard
    // re-evaluation and statement execution dominate, which is exactly
    // what the batch kernels attack: the default path refreshes guards
    // through the columnar evaluateGuards kernels and executes dense
    // steps through doExecuteSimultaneous, while the legacy-sim side
    // runs the full pre-batch stack (scalar virtual guard evaluation +
    // per-node-vector simultaneous pipeline).
    const double legacySim = movesPerSec(Mode::kLegacySim);
    r.metrics.emplace_back("legacy_sim_moves_per_sec", legacySim);
    r.metrics.emplace_back("dftno_sync_speedup",
                           bitmask / std::max(legacySim, 1e-9));
    // Columnar-engine ratio on the fat-state protocol (the headline:
    // legacy copies Θ(n) ints per actor, the columnar engine does not).
    const double lexLegacy = lexMovesPerSec(true);
    const double lexColumnar = lexMovesPerSec(false);
    r.metrics.emplace_back("lex_sync_moves_per_sec", lexColumnar);
    r.metrics.emplace_back("lex_legacy_sync_moves_per_sec", lexLegacy);
    r.metrics.emplace_back("sync_speedup",
                           lexColumnar / std::max(lexLegacy, 1e-9));
  }
  if (g.nodeCount() <= kNaiveNodeCap) {
    const double naive = movesPerSec(Mode::kNaive);
    r.metrics.emplace_back("naive_moves_per_sec", naive);
    r.metrics.emplace_back("speedup", bitmask / std::max(naive, 1e-9));
  }
  return r;
}

/// Exhaustive model-checking throughput: full-space verification of the
/// target protocol on g, (a) by the sequential ModelChecker with naive
/// expansion (full decode + full guard rescan per configuration — the
/// pre-incremental baseline) and (b) by the src/mc parallel explorer at
/// s.mcThreads workers.  Both must return the same verdict; speedup is
/// parallel states/sec over the naive sequential states/sec.
TrialResult modelCheckTrial(const Graph& g, const Scenario& s,
                            std::uint64_t) {
  const Fairness fairness = Fairness::kWeaklyFair;
  auto factory = [&g, &s]() -> std::unique_ptr<Protocol> {
    switch (s.mcTarget) {
      case McTarget::kDftc:
      case McTarget::kDftcFault: return std::make_unique<Dftc>(g);
      case McTarget::kDftno: return std::make_unique<Dftno>(g);
    }
    throw std::invalid_argument("modelCheckTrial: unknown target");
  };
  auto legit = [&s](Protocol& p) {
    switch (s.mcTarget) {
      case McTarget::kDftc:
      case McTarget::kDftcFault:
        return static_cast<Dftc&>(p).isLegitimate();
      case McTarget::kDftno: return static_cast<Dftno&>(p).isLegitimate();
    }
    throw std::invalid_argument("modelCheckTrial: unknown target");
  };
  const auto maxStates = static_cast<std::uint64_t>(s.budget);
  const bool reachableMode = s.mcTarget == McTarget::kDftcFault;

  // 1-fault seeds: every single-node corruption of the clean
  // configuration (all codes at one node, all nodes).
  std::vector<std::vector<std::uint64_t>> seeds;
  if (reachableMode) {
    Dftc clean(g);
    clean.resetClean();
    const std::vector<std::uint64_t> base = clean.encodeConfiguration();
    for (NodeId p = 0; p < g.nodeCount(); ++p) {
      for (std::uint64_t code = 0; code < clean.localStateCount(p); ++code) {
        std::vector<std::uint64_t> seed = base;
        seed[static_cast<std::size_t>(p)] = code;
        seeds.push_back(std::move(seed));
      }
    }
  }

  const auto t0 = std::chrono::steady_clock::now();
  const std::unique_ptr<Protocol> seq = factory();
  ModelChecker checker(*seq, [&] { return legit(*seq); });
  checker.setNaiveExpansion(true);
  const CheckResult seqRes =
      reachableMode ? checker.verifyReachable(seeds, maxStates, fairness)
                    : checker.verifyFullSpace(maxStates, fairness);
  const double seqSecs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  mc::Options opt;
  opt.threads = s.mcThreads;
  opt.maxStates = maxStates;
  opt.fairness = fairness;
  mc::ParallelChecker parallel(factory, legit);
  const mc::Result mcRes = reachableMode
                               ? parallel.checkReachable(seeds, opt)
                               : parallel.checkFullSpace(opt);

  TrialResult r;
  r.converged = seqRes.ok && mcRes.ok;
  const double naiveRate =
      static_cast<double>(seqRes.configsExplored) / std::max(seqSecs, 1e-9);
  r.metrics = {{"states", static_cast<double>(mcRes.statesExplored)},
               {"naive_states_per_sec", naiveRate},
               {"mc_states_per_sec", mcRes.statesPerSec},
               {"speedup", mcRes.statesPerSec / std::max(naiveRate, 1e-9)},
               {"peak_frontier", static_cast<double>(mcRes.peakFrontier)},
               {"verdicts_agree", seqRes.ok == mcRes.ok ? 1.0 : 0.0}};
  return r;
}

/// Adversarial resilience certification on DFTNO (src/resil).  One trial:
///  * reference episode — the scenario's stock daemon samples a random
///    schedule under the fault plan (the "average case"),
///  * search episode — a SearchingDaemon (greedy or bounded-lookahead
///    per Scenario::adversary) hunts a worst-case schedule on the SAME
///    trial seed (the seed only drives scrambling and injections; the
///    search itself is deterministic),
///  * rerun — the search episode again from the same seed; every count
///    and the schedule itself must be bit-identical,
///  * replay — a ReplayDaemon re-drives the recorded schedule; again
///    everything must reproduce exactly (the certification claim).
/// The trial always "converges" as an experiment — whether the episodes
/// themselves converged is a metric, so budget-exhausted adversarial
/// runs are reported rather than dropped.
TrialResult resilienceTrial(const Graph& g, const Scenario& s,
                            std::uint64_t seed) {
  if (s.adversary != "greedy" && s.adversary != "lookahead")
    throw std::invalid_argument("resilience: unknown adversary '" +
                                s.adversary + "'");
  resil::EpisodeOptions eo;
  eo.budget = s.budget;
  eo.plan = resil::FaultPlan::parse(s.faultPlan);
  const int lookahead = s.adversary == "lookahead" ? s.lookahead : 0;

  const auto searchEpisode = [&] {
    Dftno dftno(g);
    resil::SearchingDaemon daemon(dftno, lookahead);
    Rng rng(seed);
    return resil::runEpisode(dftno, daemon, rng, eo,
                             [&dftno] { return dftno.isLegitimate(); });
  };

  resil::EpisodeResult reference;
  {
    Dftno dftno(g);
    auto daemon = makeDaemon(s.daemon);
    Rng rng(seed);
    reference = resil::runEpisode(dftno, *daemon, rng, eo,
                                  [&dftno] { return dftno.isLegitimate(); });
  }

  const resil::EpisodeResult search = searchEpisode();
  const resil::EpisodeResult rerun = searchEpisode();
  const bool rerunIdentical = rerun.schedule == search.schedule &&
                              rerun.moves == search.moves &&
                              rerun.rounds == search.rounds &&
                              rerun.converged == search.converged;

  bool replayIdentical = false;
  try {
    Dftno dftno(g);
    resil::ReplayDaemon daemon(search.schedule);
    Rng rng(seed);
    const resil::EpisodeResult replay = resil::runEpisode(
        dftno, daemon, rng, eo, [&dftno] { return dftno.isLegitimate(); });
    replayIdentical = replay.schedule == search.schedule &&
                      replay.moves == search.moves &&
                      replay.rounds == search.rounds &&
                      replay.converged == search.converged;
  } catch (const std::runtime_error&) {
    replayIdentical = false;  // replay diverged or over-ran its schedule
  }

  TrialResult r;
  r.metrics = {
      {"random_moves", static_cast<double>(reference.moves)},
      {"random_rounds", static_cast<double>(reference.rounds)},
      {"random_converged", reference.converged ? 1.0 : 0.0},
      {"search_moves", static_cast<double>(search.moves)},
      {"search_rounds", static_cast<double>(search.rounds)},
      {"search_converged", search.converged ? 1.0 : 0.0},
      {"search_gain", static_cast<double>(search.moves) /
                          std::max(1.0, static_cast<double>(reference.moves))},
      {"rerun_identity", rerunIdentical ? 1.0 : 0.0},
      {"replay_identity", replayIdentical ? 1.0 : 0.0},
      {"footprint", static_cast<double>(search.footprintMax)},
      {"injections", static_cast<double>(search.injections)},
      {"schedule_len", static_cast<double>(search.schedule.size())}};
  return r;
}

/// Telemetry overhead proof (the <2% CI gate).  The same DFTNO hot loop
/// as schedulerTrial's bitmask mode runs with obs enabled and disabled.
/// Clock-frequency drift on a shared machine moves the absolute rate by
/// several percent between runs seconds apart — more than the effect
/// being measured — so the estimator is PAIRED: each rep times the two
/// modes back to back (alternating which goes first to cancel ordering
/// bias) and contributes one off/on ratio, and the trial reports the
/// median ratio, which adjacent-in-time pairing plus the median makes
/// robust to drift and scheduling outliers.  Tracing stays off in both
/// modes: the gate certifies the *always-on* cost (batched per-thread
/// counter flushes), not the opt-in trace cost.
TrialResult obsOverheadTrial(const Graph& g, const Scenario& s,
                             std::uint64_t seed) {
  // The measurement toggles the process-wide obs flag, so concurrent
  // overhead trials would flip it underneath each other's timed runs;
  // serialize them (CI additionally runs the obs preset at --threads 1
  // so no other trial kind shares the machine either).
  static std::mutex mu;
  const std::lock_guard<std::mutex> lock(mu);
  constexpr int kReps = 15;
  auto movesPerSec = [&](bool telemetryOn) {
    obs::setEnabled(telemetryOn);
    Dftno dftno(g);
    Rng rng(seed);
    dftno.randomize(rng);
    auto daemon = makeDaemon(s.daemon);
    Simulator sim(dftno, *daemon, rng);
    const auto start = std::chrono::steady_clock::now();
    const RunStats stats = sim.runToQuiescence(s.budget);
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    return static_cast<double>(stats.moves) / std::max(secs, 1e-9);
  };
  const bool wasEnabled = obs::enabled();
  movesPerSec(wasEnabled);  // untimed warmup: page-faults, branch history
  std::vector<double> ratios;
  double bestOn = 0, bestOff = 0;
  for (int rep = 0; rep < kReps; ++rep) {
    const bool onFirst = (rep % 2) == 0;
    const double first = movesPerSec(onFirst);
    const double second = movesPerSec(!onFirst);
    const double on = onFirst ? first : second;
    const double off = onFirst ? second : first;
    bestOn = std::max(bestOn, on);
    bestOff = std::max(bestOff, off);
    ratios.push_back(off / std::max(on, 1e-9));
  }
  obs::setEnabled(wasEnabled);
  std::sort(ratios.begin(), ratios.end());
  const double medianRatio = ratios[ratios.size() / 2];
  TrialResult r;
  r.metrics = {{"telemetry_on_moves_per_sec", bestOn},
               {"telemetry_off_moves_per_sec", bestOff},
               {"obs_overhead_pct", (medianRatio - 1.0) * 100.0}};
  return r;
}

/// Raw guard-kernel throughput on DFTNO: full-configuration batch
/// evaluation through the columnar Protocol::evaluateGuards overrides
/// vs the scalar per-node virtual enabled() loop (the Protocol default,
/// reached by a qualified call), on identical scrambled state.  Rates
/// count node x action guard evaluations, the sim_guard_evals_total
/// convention.  Clock drift on a shared runner moves absolute rates by
/// several percent between runs, so guard_batch_speedup is PAIRED per
/// rep (alternating which side runs first) and reports the median
/// ratio — hardware-independent and CI-gated, like obsOverheadTrial.
/// Best-of absolute rates ride along; guard_evals_per_sec is gated too
/// (ratio-to-baseline with the usual floor).  The budget is the number
/// of per-node evaluations each timed side performs per rep.
TrialResult guardKernelTrial(const Graph& g, const Scenario& s,
                             std::uint64_t seed) {
  constexpr int kReps = 7;
  Dftno dftno(g);
  Rng rng(seed);
  dftno.randomize(rng);
  const int n = g.nodeCount();
  const double evalsPerPass =
      static_cast<double>(n) * static_cast<double>(dftno.actionCount());
  std::vector<NodeId> nodes(static_cast<std::size_t>(n));
  for (NodeId p = 0; p < n; ++p) nodes[static_cast<std::size_t>(p)] = p;
  std::vector<std::uint64_t> masks(nodes.size());
  const int passes = static_cast<int>(
      std::max<StepCount>(1, s.budget / std::max(1, n)));
  auto evalsPerSec = [&](bool scalar) {
    const auto start = std::chrono::steady_clock::now();
    for (int pass = 0; pass < passes; ++pass) {
      if (scalar)
        dftno.Protocol::evaluateGuards(nodes, masks.data());
      else
        dftno.evaluateGuards(nodes, masks.data());
    }
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    return static_cast<double>(passes) * evalsPerPass / std::max(secs, 1e-9);
  };
  evalsPerSec(false);  // untimed warmup: page-faults, branch history
  std::vector<double> ratios;
  double bestBatch = 0, bestScalar = 0;
  for (int rep = 0; rep < kReps; ++rep) {
    const bool batchFirst = (rep % 2) == 0;
    const double first = evalsPerSec(!batchFirst);
    const double second = evalsPerSec(batchFirst);
    const double batch = batchFirst ? first : second;
    const double scalar = batchFirst ? second : first;
    bestBatch = std::max(bestBatch, batch);
    bestScalar = std::max(bestScalar, scalar);
    ratios.push_back(batch / std::max(scalar, 1e-9));
  }
  std::sort(ratios.begin(), ratios.end());
  // Release-mode equivalence signal (Debug builds assert this in the
  // cache on every refresh): the kernel masks must equal the scalar ones.
  std::vector<std::uint64_t> ref(nodes.size());
  dftno.evaluateGuards(nodes, masks.data());
  dftno.Protocol::evaluateGuards(nodes, ref.data());
  TrialResult r;
  r.metrics = {{"guard_evals_per_sec", bestBatch},
               {"scalar_guard_evals_per_sec", bestScalar},
               {"guard_batch_speedup", ratios[ratios.size() / 2]},
               {"kernel_matches_scalar", masks == ref ? 1.0 : 0.0}};
  return r;
}

}  // namespace

std::string protocolKindName(ProtocolKind kind) {
  switch (kind) {
    case ProtocolKind::kDftno: return "dftno";
    case ProtocolKind::kStno: return "stno";
    case ProtocolKind::kStnoFixedTree: return "stno-fixed-tree";
    case ProtocolKind::kDftnoChurn: return "dftno-churn";
    case ProtocolKind::kBaselineChurn: return "baseline-churn";
    case ProtocolKind::kDftc: return "dftc";
    case ProtocolKind::kBfsTree: return "bfs-tree";
    case ProtocolKind::kLexDfsTree: return "lex-dfs-tree";
    case ProtocolKind::kDftnoRecovery: return "dftno-recovery";
    case ProtocolKind::kStnoRecovery: return "stno-recovery";
    case ProtocolKind::kStnoCrashReset: return "stno-crash-reset";
    case ProtocolKind::kAblationNaming: return "ablation-naming";
    case ProtocolKind::kSpace: return "space";
    case ProtocolKind::kChordalProps: return "chordal-props";
    case ProtocolKind::kRouting: return "routing";
    case ProtocolKind::kScheduler: return "scheduler";
    case ProtocolKind::kModelCheck: return "model-check";
    case ProtocolKind::kResilience: return "resilience";
    case ProtocolKind::kObsOverhead: return "obs-overhead";
    case ProtocolKind::kGuardKernel: return "guard-kernel";
  }
  return "?";
}

std::string mcTargetName(McTarget target) {
  switch (target) {
    case McTarget::kDftc: return "dftc";
    case McTarget::kDftno: return "dftno";
    case McTarget::kDftcFault: return "dftc-fault";
  }
  return "?";
}

bool isChurnProtocol(ProtocolKind kind) {
  return kind == ProtocolKind::kDftnoChurn ||
         kind == ProtocolKind::kBaselineChurn;
}

bool usesFaultK(ProtocolKind kind) {
  return kind == ProtocolKind::kDftnoRecovery ||
         kind == ProtocolKind::kStnoRecovery;
}

std::string convergedLabel(int trials, int failedTrials) {
  return std::to_string(trials - failedTrials) + "/" + std::to_string(trials);
}

Summary ScenarioResult::metric(const std::string& name) const {
  const auto it = metrics.find(name);
  return it == metrics.end() ? Summary{} : it->second;
}

std::uint64_t trialSeed(std::uint64_t scenarioSeed, int trial) {
  std::uint64_t z = scenarioSeed +
                    0x9E3779B97F4A7C15ULL *
                        (static_cast<std::uint64_t>(trial) + 1);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

TrialResult runTrial(const Graph& g, const Scenario& s, std::uint64_t seed) {
  switch (s.protocol) {
    case ProtocolKind::kDftno: return dftnoTrial(g, s, seed);
    case ProtocolKind::kStno: return stnoTrial(g, s, seed);
    case ProtocolKind::kStnoFixedTree: return stnoFixedTreeTrial(g, s, seed);
    case ProtocolKind::kDftnoChurn: return dftnoChurnTrial(g, s, seed);
    case ProtocolKind::kBaselineChurn: return baselineChurnTrial(g, s, seed);
    case ProtocolKind::kDftc: return dftcTrial(g, s, seed);
    case ProtocolKind::kBfsTree: return bfsTreeTrial(g, s, seed);
    case ProtocolKind::kLexDfsTree: return lexDfsTreeTrial(g, s, seed);
    case ProtocolKind::kDftnoRecovery: return dftnoRecoveryTrial(g, s, seed);
    case ProtocolKind::kStnoRecovery: return stnoRecoveryTrial(g, s, seed);
    case ProtocolKind::kStnoCrashReset: return stnoCrashResetTrial(g, s, seed);
    case ProtocolKind::kAblationNaming: return ablationNamingTrial(g, s, seed);
    case ProtocolKind::kSpace: return spaceTrial(g, s, seed);
    case ProtocolKind::kChordalProps: return chordalPropsTrial(g, s, seed);
    case ProtocolKind::kRouting: return routingTrial(g, s, seed);
    case ProtocolKind::kScheduler: return schedulerTrial(g, s, seed);
    case ProtocolKind::kModelCheck: return modelCheckTrial(g, s, seed);
    case ProtocolKind::kResilience: return resilienceTrial(g, s, seed);
    case ProtocolKind::kObsOverhead: return obsOverheadTrial(g, s, seed);
    case ProtocolKind::kGuardKernel: return guardKernelTrial(g, s, seed);
  }
  throw std::invalid_argument("runTrial: unknown protocol kind");
}

ExperimentRunner::ExperimentRunner(int threads) : threads_(threads) {
  if (threads_ <= 0)
    threads_ =
        static_cast<int>(std::max(1u, std::thread::hardware_concurrency()));
}

ScenarioResult ExperimentRunner::run(const Scenario& s) const {
  return runOnGraph(s, s.topology.build());
}

namespace {

/// runTrial plus the runner's observability wrapper: a wall-clock stamp
/// (feeding ScenarioResult::timing) and a trace span per trial.  With
/// the opt-in timing breakdown, also the trial's sim_guard_evals_total
/// delta (process-wide counters: meaningful only at --threads 1, and
/// only when obs is enabled).
TrialResult timedTrial(const Graph& g, const Scenario& s, int trial,
                       std::uint64_t seed, bool timingBreakdown) {
  obs::TraceSpan span("exp_trial");
  span.arg("trial", static_cast<std::uint64_t>(trial));
  const std::uint64_t evalsBefore =
      timingBreakdown
          ? obs::Registry::global().counterValue("sim_guard_evals_total")
          : 0;
  const auto start = std::chrono::steady_clock::now();
  TrialResult r = runTrial(g, s, seed);
  r.wallSeconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  if (timingBreakdown)
    r.guardEvals = static_cast<double>(
        obs::Registry::global().counterValue("sim_guard_evals_total") -
        evalsBefore);
  return r;
}

/// Slot-order aggregation: walks trials in index order, so the result is
/// independent of which worker finished which trial first.
ScenarioResult aggregate(const Scenario& s, const Graph& g,
                         std::vector<TrialResult> slots) {
  ScenarioResult res;
  res.scenario = s;
  res.nodeCount = g.nodeCount();
  res.edgeCount = g.edgeCount();
  res.trials = s.trials;
  // Hardware provenance: reports carry the detected core count so a
  // consumer can tell core-count-dependent metrics (model-check
  // speedups) recorded on a single-core runner from real ones.
  res.cores = static_cast<int>(std::max(1u, std::thread::hardware_concurrency()));
  std::map<std::string, std::vector<double>> samples;
  for (const TrialResult& trial : slots) {
    if (!trial.converged) {
      ++res.failedTrials;
      continue;
    }
    for (const auto& [name, value] : trial.metrics)
      samples[name].push_back(value);
  }
  for (auto& [name, values] : samples)
    res.metrics[name] = summarize(std::move(values));
  // Timing breakdown over ALL trials (failed ones included — a trial
  // that exhausted its budget still cost wall-clock time).
  std::vector<double> wall;
  wall.reserve(slots.size());
  for (const TrialResult& trial : slots) wall.push_back(trial.wallSeconds);
  res.timing["trial_seconds"] = summarize(std::move(wall));
  // Opt-in guards-per-second breakdown: present only when the runner's
  // timing breakdown stamped sim_guard_evals_total deltas (guardEvals
  // >= 0), so default reports stay byte-identical.
  std::vector<double> guardRates;
  for (const TrialResult& trial : slots)
    if (trial.guardEvals >= 0 && trial.wallSeconds > 0)
      guardRates.push_back(trial.guardEvals / trial.wallSeconds);
  if (!guardRates.empty())
    res.timing["guard_evals_per_sec"] = summarize(std::move(guardRates));
  return res;
}

}  // namespace

ScenarioResult ExperimentRunner::runOnGraph(const Scenario& s,
                                            const Graph& g) const {
  if (s.trials <= 0)
    throw std::invalid_argument("ExperimentRunner: trials must be positive");

  // Fan trials over the pool; slot `t` belongs to trial `t` alone, so
  // completion order cannot influence the aggregate.
  std::vector<TrialResult> slots(static_cast<std::size_t>(s.trials));
  std::atomic<int> next{0};
  auto worker = [&] {
    for (int t = next.fetch_add(1); t < s.trials; t = next.fetch_add(1))
      slots[static_cast<std::size_t>(t)] =
          timedTrial(g, s, t, trialSeed(s.seed, t), timing_);
  };
  const int workers = std::min(threads_, s.trials);
  if (workers <= 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(workers));
    for (int w = 0; w < workers; ++w) pool.emplace_back(worker);
    for (std::thread& th : pool) th.join();
  }
  return aggregate(s, g, std::move(slots));
}

std::vector<ScenarioResult> ExperimentRunner::runAll(
    const std::vector<Scenario>& scenarios) const {
  // One flattened (scenario, trial) job list over one pool, so trials of
  // different scenarios overlap instead of each scenario's stragglers
  // idling the workers.  Per-trial seeds and the slot-order aggregation
  // are exactly those of the sequential path, so results (order AND
  // values) are unchanged.
  for (const Scenario& s : scenarios)
    if (s.trials <= 0)
      throw std::invalid_argument("ExperimentRunner: trials must be positive");

  std::vector<Graph> graphs;
  graphs.reserve(scenarios.size());
  for (const Scenario& s : scenarios) graphs.push_back(s.topology.build());

  struct Job {
    int scenario;
    int trial;
  };
  std::vector<Job> jobs;
  std::vector<std::vector<TrialResult>> slots(scenarios.size());
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    slots[i].resize(static_cast<std::size_t>(scenarios[i].trials));
    for (int t = 0; t < scenarios[i].trials; ++t)
      jobs.push_back({static_cast<int>(i), t});
  }

  std::atomic<std::size_t> next{0};
  auto worker = [&] {
    for (std::size_t j = next.fetch_add(1); j < jobs.size();
         j = next.fetch_add(1)) {
      const Job& job = jobs[j];
      const Scenario& s = scenarios[static_cast<std::size_t>(job.scenario)];
      slots[static_cast<std::size_t>(job.scenario)]
           [static_cast<std::size_t>(job.trial)] =
               timedTrial(graphs[static_cast<std::size_t>(job.scenario)], s,
                          job.trial, trialSeed(s.seed, job.trial), timing_);
    }
  };
  const int workers = static_cast<int>(
      std::min(static_cast<std::size_t>(threads_), jobs.size()));
  if (workers <= 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(workers));
    for (int w = 0; w < workers; ++w) pool.emplace_back(worker);
    for (std::thread& th : pool) th.join();
  }

  std::vector<ScenarioResult> results;
  results.reserve(scenarios.size());
  for (std::size_t i = 0; i < scenarios.size(); ++i)
    results.push_back(aggregate(scenarios[i], graphs[i], std::move(slots[i])));
  return results;
}

}  // namespace ssno::exp
