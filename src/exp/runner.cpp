#include "exp/runner.hpp"

#include <algorithm>
#include <atomic>
#include <stdexcept>
#include <thread>

#include "core/fault.hpp"
#include "core/rng.hpp"
#include "core/scheduler.hpp"
#include "orientation/baseline.hpp"
#include "orientation/dftno.hpp"
#include "orientation/stno.hpp"
#include "sptree/dfs_tree.hpp"

namespace ssno::exp {
namespace {

TrialResult dftnoTrial(const Graph& g, const Scenario& s, std::uint64_t seed) {
  Dftno dftno(g);
  Rng rng(seed);
  dftno.randomize(rng);
  auto daemon = makeDaemon(s.daemon);
  Simulator sim(dftno, *daemon, rng);
  const RunStats s1 = sim.runUntil(
      [&dftno] { return dftno.substrateLegitimate(); }, s.budget);
  const RunStats s2 =
      sim.runUntil([&dftno] { return dftno.isLegitimate(); }, s.budget);
  TrialResult r;
  r.converged = s1.converged && s2.converged;
  if (r.converged) {
    r.metrics = {{"substrate_moves", static_cast<double>(s1.moves)},
                 {"overlay_moves", static_cast<double>(s2.moves)},
                 {"overlay_rounds", static_cast<double>(s2.rounds)}};
  }
  return r;
}

TrialResult stnoTrial(const Graph& g, const Scenario& s, std::uint64_t seed) {
  Stno stno(g);
  Rng rng(seed);
  stno.randomize(rng);
  auto daemon = makeDaemon(s.daemon);
  Simulator sim(stno, *daemon, rng);
  const RunStats s1 = sim.runUntil(
      [&stno] { return stno.substrateLegitimate(); }, s.budget);
  const RunStats s2 = sim.runToQuiescence(s.budget);
  TrialResult r;
  r.converged = s1.converged && s2.terminal;
  if (r.converged) {
    r.metrics = {{"tree_moves", static_cast<double>(s1.moves)},
                 {"overlay_moves", static_cast<double>(s2.moves)},
                 {"overlay_rounds", static_cast<double>(s2.rounds)}};
  }
  return r;
}

TrialResult stnoFixedTreeTrial(const Graph& g, const Scenario& s,
                               std::uint64_t seed) {
  Stno stno(g, portOrderDfsTree(g));
  Rng rng(seed);
  stno.randomize(rng);
  auto daemon = makeDaemon(s.daemon);
  Simulator sim(stno, *daemon, rng);
  const RunStats stats = sim.runToQuiescence(s.budget);
  TrialResult r;
  r.converged = stats.terminal;
  if (r.converged) {
    r.metrics = {{"overlay_moves", static_cast<double>(stats.moves)},
                 {"overlay_rounds", static_cast<double>(stats.rounds)}};
  }
  return r;
}

/// Shared churn loop: step the protocol for `budget` moves, corrupting one
/// random node with probability faultRate before each step, and track the
/// fraction of steps spent in a correct configuration.
template <typename Protocol, typename CorrectFn>
TrialResult churnTrial(Protocol& protocol, const Scenario& s,
                       std::uint64_t seed, const CorrectFn& correct) {
  Rng rng(seed);
  auto daemon = makeDaemon(s.daemon);
  Simulator sim(protocol, *daemon, rng);
  FaultInjector inj(protocol);
  StepCount okSteps = 0;
  double faults = 0;
  for (StepCount t = 0; t < s.budget; ++t) {
    if (rng.chance(s.faultRate)) {
      inj.corruptK(1, rng);
      faults += 1;
    }
    (void)sim.stepOnce();
    if (correct()) ++okSteps;
  }
  TrialResult r;
  r.metrics = {{"availability", static_cast<double>(okSteps) /
                                    static_cast<double>(s.budget)},
               {"faults", faults}};
  return r;
}

TrialResult dftnoChurnTrial(const Graph& g, const Scenario& s,
                            std::uint64_t seed) {
  Dftno dftno(g);
  Rng init(seed);
  dftno.randomize(init);
  return churnTrial(dftno, s, init.next(),
                    [&dftno] { return dftno.isLegitimate(); });
}

TrialResult baselineChurnTrial(const Graph& g, const Scenario& s,
                               std::uint64_t seed) {
  InitBasedOrientation base(g);
  base.initializeAll();
  return churnTrial(base, s, seed, [&base] { return base.isCorrect(); });
}

}  // namespace

std::string protocolKindName(ProtocolKind kind) {
  switch (kind) {
    case ProtocolKind::kDftno: return "dftno";
    case ProtocolKind::kStno: return "stno";
    case ProtocolKind::kStnoFixedTree: return "stno-fixed-tree";
    case ProtocolKind::kDftnoChurn: return "dftno-churn";
    case ProtocolKind::kBaselineChurn: return "baseline-churn";
  }
  return "?";
}

bool isChurnProtocol(ProtocolKind kind) {
  return kind == ProtocolKind::kDftnoChurn ||
         kind == ProtocolKind::kBaselineChurn;
}

std::string convergedLabel(int trials, int failedTrials) {
  return std::to_string(trials - failedTrials) + "/" + std::to_string(trials);
}

Summary ScenarioResult::metric(const std::string& name) const {
  const auto it = metrics.find(name);
  return it == metrics.end() ? Summary{} : it->second;
}

std::uint64_t trialSeed(std::uint64_t scenarioSeed, int trial) {
  std::uint64_t z = scenarioSeed +
                    0x9E3779B97F4A7C15ULL *
                        (static_cast<std::uint64_t>(trial) + 1);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

TrialResult runTrial(const Graph& g, const Scenario& s, std::uint64_t seed) {
  switch (s.protocol) {
    case ProtocolKind::kDftno: return dftnoTrial(g, s, seed);
    case ProtocolKind::kStno: return stnoTrial(g, s, seed);
    case ProtocolKind::kStnoFixedTree: return stnoFixedTreeTrial(g, s, seed);
    case ProtocolKind::kDftnoChurn: return dftnoChurnTrial(g, s, seed);
    case ProtocolKind::kBaselineChurn: return baselineChurnTrial(g, s, seed);
  }
  throw std::invalid_argument("runTrial: unknown protocol kind");
}

ExperimentRunner::ExperimentRunner(int threads) : threads_(threads) {
  if (threads_ <= 0)
    threads_ =
        static_cast<int>(std::max(1u, std::thread::hardware_concurrency()));
}

ScenarioResult ExperimentRunner::run(const Scenario& s) const {
  return runOnGraph(s, s.topology.build());
}

ScenarioResult ExperimentRunner::runOnGraph(const Scenario& s,
                                            const Graph& g) const {
  if (s.trials <= 0)
    throw std::invalid_argument("ExperimentRunner: trials must be positive");

  // Fan trials over the pool; slot `t` belongs to trial `t` alone, so
  // completion order cannot influence the aggregate.
  std::vector<TrialResult> slots(static_cast<std::size_t>(s.trials));
  std::atomic<int> next{0};
  auto worker = [&] {
    for (int t = next.fetch_add(1); t < s.trials; t = next.fetch_add(1))
      slots[static_cast<std::size_t>(t)] =
          runTrial(g, s, trialSeed(s.seed, t));
  };
  const int workers = std::min(threads_, s.trials);
  if (workers <= 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(workers));
    for (int w = 0; w < workers; ++w) pool.emplace_back(worker);
    for (std::thread& th : pool) th.join();
  }

  ScenarioResult res;
  res.scenario = s;
  res.nodeCount = g.nodeCount();
  res.edgeCount = g.edgeCount();
  res.trials = s.trials;
  std::map<std::string, std::vector<double>> samples;
  for (const TrialResult& trial : slots) {
    if (!trial.converged) {
      ++res.failedTrials;
      continue;
    }
    for (const auto& [name, value] : trial.metrics)
      samples[name].push_back(value);
  }
  for (auto& [name, values] : samples)
    res.metrics[name] = summarize(std::move(values));
  return res;
}

std::vector<ScenarioResult> ExperimentRunner::runAll(
    const std::vector<Scenario>& scenarios) const {
  std::vector<ScenarioResult> results;
  results.reserve(scenarios.size());
  for (const Scenario& s : scenarios) results.push_back(run(s));
  return results;
}

}  // namespace ssno::exp
