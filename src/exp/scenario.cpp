#include "exp/scenario.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace ssno::exp {
namespace {

/// Builds a triple-named scenario with the given sweep-wide settings.
Scenario triple(ProtocolKind protocol, DaemonKind daemon,
                const std::string& topology, int trials, std::uint64_t seed) {
  Scenario s;
  s.protocol = protocol;
  s.daemon = daemon;
  s.topology = TopologySpec::parse(topology);
  s.trials = trials;
  s.seed = seed;
  s.name = protocolKindName(protocol) + "/" + daemonKindName(daemon) + "/" +
           s.topology.name();
  return s;
}

std::vector<Scenario> dftnoScalingPreset() {
  constexpr std::uint64_t kSeed = 0xA11CE;
  std::vector<Scenario> out;
  auto add = [&out](const std::string& topo) {
    out.push_back(
        triple(ProtocolKind::kDftno, DaemonKind::kRoundRobin, topo, 10, kSeed));
  };
  for (int n : {8, 16, 32, 64, 128}) add("ring:" + std::to_string(n));
  for (int n : {8, 16, 32, 64, 128}) add("path:" + std::to_string(n));
  for (int n : {7, 15, 31, 63, 127}) add("kary:" + std::to_string(n) + "x2");
  for (int spine : {3, 6, 12, 24})
    add("caterpillar:" + std::to_string(spine) + "x2");
  for (int n : {6, 9, 12, 16, 20}) add("complete:" + std::to_string(n));
  return out;
}

std::vector<Scenario> stnoHeightPreset() {
  constexpr std::uint64_t kSeed = 0xBEE;
  std::vector<Scenario> out;
  for (const char* topo :
       {"star:40", "kary:40x3", "kary:40x2", "caterpillar:13x2", "path:40"})
    out.push_back(triple(ProtocolKind::kStnoFixedTree,
                         DaemonKind::kSynchronous, topo, 10, kSeed));
  return out;
}

std::vector<Scenario> stnoStarControlPreset() {
  constexpr std::uint64_t kSeed = 0xBEE;
  std::vector<Scenario> out;
  for (int n : {10, 20, 40, 80, 160})
    out.push_back(triple(ProtocolKind::kStnoFixedTree,
                         DaemonKind::kSynchronous,
                         "star:" + std::to_string(n), 10, kSeed));
  return out;
}

std::vector<Scenario> stnoScalingPreset() {
  constexpr std::uint64_t kSeed = 0xFACE;
  std::vector<Scenario> out;
  for (int n : {10, 20, 40})
    out.push_back(triple(ProtocolKind::kStno, DaemonKind::kDistributed,
                         "path:" + std::to_string(n), 10, kSeed));
  return out;
}

std::vector<Scenario> churnPreset() {
  constexpr std::uint64_t kSeed = 0xC0DE;
  std::vector<Scenario> out;
  for (double rate : {0.0001, 0.0005, 0.002, 0.01}) {
    for (ProtocolKind protocol :
         {ProtocolKind::kDftnoChurn, ProtocolKind::kBaselineChurn}) {
      Scenario s = triple(protocol, DaemonKind::kRoundRobin, "grid:3x4", 3,
                          kSeed);
      s.faultRate = rate;
      s.budget = 40'000;  // step horizon, not a convergence budget
      std::ostringstream name;
      name << s.name << "/rate=" << rate;
      s.name = name.str();
      out.push_back(s);
    }
  }
  return out;
}

std::vector<Scenario> substratePreset() {
  // EXP-11: the two "assumed" substrates head to head, from scrambled
  // states (the clean-round decomposition stays in bench_substrate).
  constexpr std::uint64_t kSeed = 0x5B5;
  std::vector<Scenario> out;
  for (const char* topo :
       {"ring:16", "path:16", "complete:8", "grid:4x4", "er:16:0.3:41"}) {
    out.push_back(
        triple(ProtocolKind::kDftc, DaemonKind::kRoundRobin, topo, 10, kSeed));
    out.push_back(triple(ProtocolKind::kBfsTree, DaemonKind::kRoundRobin,
                         topo, 10, kSeed));
  }
  return out;
}

std::vector<Scenario> faultRecoveryPreset() {
  // EXP-10: recovery cost vs number of corrupted processors on grid(4x4),
  // plus per-victim crash-and-reset.
  constexpr std::uint64_t kSeed = 0xFA17;
  std::vector<Scenario> out;
  for (int k : {1, 2, 4, 8, 16}) {
    for (ProtocolKind protocol :
         {ProtocolKind::kDftnoRecovery, ProtocolKind::kStnoRecovery}) {
      Scenario s =
          triple(protocol, DaemonKind::kRoundRobin, "grid:4x4", 12, kSeed);
      s.faultK = k;
      s.name += "/k=" + std::to_string(k);
      out.push_back(s);
    }
  }
  out.push_back(triple(ProtocolKind::kStnoCrashReset, DaemonKind::kRoundRobin,
                       "grid:4x4", 16, kSeed));
  return out;
}

std::vector<Scenario> ablationNamingPreset() {
  // EXP-8 (Chapter 5): DFS-tree STNO naming vs DFTNO naming.
  constexpr std::uint64_t kSeed = 0x5EED;
  std::vector<Scenario> out;
  for (const char* topo :
       {"ring:12", "grid:3x4", "complete:8", "er:14:0.3:31"})
    out.push_back(triple(ProtocolKind::kAblationNaming,
                         DaemonKind::kRoundRobin, topo, 3, kSeed));
  return out;
}

std::vector<Scenario> spacePreset() {
  // EXP-3: per-node bits vs N and Δ (deterministic accounting).
  std::vector<Scenario> out;
  auto add = [&out](const std::string& topo) {
    out.push_back(
        triple(ProtocolKind::kSpace, DaemonKind::kCentral, topo, 1, 0));
  };
  for (int n : {8, 16, 32, 64}) add("ring:" + std::to_string(n));
  for (int n : {8, 16, 32, 64}) add("star:" + std::to_string(n));
  for (int n : {8, 16, 32}) add("complete:" + std::to_string(n));
  for (int d : {3, 4, 5}) add("hypercube:" + std::to_string(d));
  return out;
}

std::vector<Scenario> chordalPropsPreset() {
  // EXP-4: §2.2 property sweep on the canonical orientation.
  std::vector<Scenario> out;
  for (const char* topo : {"ring:32", "torus:4x8", "hypercube:5", "er:40:0.2:5"})
    out.push_back(
        triple(ProtocolKind::kChordalProps, DaemonKind::kCentral, topo, 1, 0));
  return out;
}

std::vector<Scenario> routingPreset() {
  // EXP-12: message complexity with vs without an orientation.
  std::vector<Scenario> out;
  for (const char* topo : {"kary:31x2", "ring:32", "grid:6x6", "torus:6x6",
                           "hypercube:6", "er:32:0.3:51", "complete:32"})
    out.push_back(
        triple(ProtocolKind::kRouting, DaemonKind::kCentral, topo, 1, 0));
  return out;
}

/// A model-check scenario named "model-check:<target>/central/<topo>"
/// (central: the transition relation is one enabled move at a time).
Scenario modelCheckScenario(McTarget target, const std::string& topology,
                            int trials, std::uint64_t maxStates) {
  Scenario s;
  s.protocol = ProtocolKind::kModelCheck;
  s.mcTarget = target;
  s.daemon = DaemonKind::kCentral;
  s.topology = TopologySpec::parse(topology);
  s.trials = trials;
  s.budget = static_cast<StepCount>(maxStates);
  s.name = protocolKindName(ProtocolKind::kModelCheck) + ":" +
           mcTargetName(target) + "/" + daemonKindName(s.daemon) + "/" +
           s.topology.name();
  return s;
}

std::vector<Scenario> schedulerPreset() {
  // Fixed simulator-throughput preset: DFTNO steady-state stepping on
  // ring/grid at n >= 1024, incremental enabled cache vs forced naive
  // rescan — under the round-robin daemon (one move per step) and the
  // synchronous daemon (executeSimultaneously path).  CI emits this as
  // BENCH_scheduler.json and the perf smoke job compares against the
  // committed baseline.  The model-check entry tracks exhaustive-
  // verification throughput: src/mc parallel explorer vs the
  // pre-incremental sequential checker (its speedup depends on the
  // runner's core count, so the perf gate skips it — trajectory only).
  constexpr std::uint64_t kSeed = 0x5CED;
  std::vector<Scenario> out;
  for (const char* topo : {"ring:1024", "grid:32x32"}) {
    Scenario s = triple(ProtocolKind::kScheduler, DaemonKind::kRoundRobin,
                        topo, 3, kSeed);
    s.budget = 20'000;  // moves measured per mode
    out.push_back(s);
  }
  {
    Scenario s = triple(ProtocolKind::kScheduler, DaemonKind::kSynchronous,
                        "grid:32x32", 3, kSeed);
    s.budget = 20'000;
    out.push_back(s);
  }
  {
    // Large-n row: at ring:100000 a randomized DFTNO start keeps
    // Θ(n) processors enabled for the whole run, so materializing the
    // node-major move vector per step is Θ(n) work per move — the cost
    // the bitmask EnabledView pipeline removes.  The naive full-rescan
    // mode is skipped above schedulerTrial's node cap (a single trial
    // would take minutes); the gated ratio for this row is
    // bitmask_speedup (bitmask vs legacy-vector, hardware-independent).
    Scenario s = triple(ProtocolKind::kScheduler, DaemonKind::kRoundRobin,
                        "ring:100000", 3, kSeed);
    s.budget = 4'000;
    out.push_back(s);
  }
  {
    // Dense synchronous large-n row: from a random DFTNO start nearly
    // every processor is enabled, so the first few synchronous steps
    // execute Θ(n) simultaneous moves each; a budget of ~2n keeps the
    // whole run inside that dense transient.  Synchronous rows gate two
    // within-trial (hardware-independent) ratios of the columnar
    // simultaneous-step engine vs the per-node-vector pipeline:
    // dftno_sync_speedup (thin 8-int state — modest, shared guard
    // re-evaluation dominates) and sync_speedup (LexDfsTree's padded
    // Θ(n)-int raw vectors — the engine's headline).  Naive mode is
    // skipped above the node cap, as for the round-robin large-n row.
    Scenario s = triple(ProtocolKind::kScheduler, DaemonKind::kSynchronous,
                        "ring:100000", 3, kSeed);
    s.budget = 200'000;
    out.push_back(s);
  }
  {
    // Guard-kernel row: raw batch-vs-scalar guard evaluation throughput
    // on the same dense ring:1e5 DFTNO state the synchronous row steps.
    // Gated: guard_batch_speedup (paired within-trial median ratio,
    // hardware-independent) and guard_evals_per_sec (ratio to the
    // committed baseline with the usual floor).
    Scenario s = triple(ProtocolKind::kGuardKernel, DaemonKind::kCentral,
                        "ring:100000", 3, kSeed);
    s.budget = 2'000'000;  // per-node evaluations per timed side per rep
    out.push_back(s);
  }
  out.push_back(
      modelCheckScenario(McTarget::kDftcFault, "ring:10", 3, 8'000'000));
  return out;
}

std::vector<Scenario> modelCheckPreset() {
  // Exhaustive self-stabilization proofs at preset scale: the parallel
  // explorer's verdict is cross-checked against the sequential
  // ModelChecker within every trial.  The dftc-fault entry verifies the
  // 1-fault recovery cone (reachable mode) on a ring beyond full-space
  // reach.
  std::vector<Scenario> out;
  for (const char* topo : {"path:3", "ring:3", "path:4", "star:4"})
    out.push_back(modelCheckScenario(McTarget::kDftc, topo, 1, 1ull << 22));
  out.push_back(modelCheckScenario(McTarget::kDftno, "path:2", 1, 1ull << 12));
  out.push_back(
      modelCheckScenario(McTarget::kDftcFault, "ring:10", 1, 8'000'000));
  return out;
}

std::vector<Scenario> resiliencePreset() {
  // Adversarial resilience campaigns (src/resil): the searching daemon
  // hunts worst-case schedules on DFTNO rings — against the uniform
  // central daemon as the random reference — under scripted fault
  // plans.  Every row also certifies determinism: rerunning the search
  // from the same seed and replaying the recorded schedule must both
  // be bit-identical (rerun_identity / replay_identity metrics, gated
  // by tools/check_perf_regression.py).
  constexpr std::uint64_t kSeed = 0xAD7E;
  std::vector<Scenario> out;
  const auto add = [&out](const std::string& topo, const std::string& plan,
                          const std::string& adversary, const char* tag) {
    Scenario s = triple(ProtocolKind::kResilience, DaemonKind::kCentral,
                        topo, 4, kSeed);
    s.budget = 2'000'000;
    s.faultPlan = plan;
    s.adversary = adversary;
    s.name += std::string("/") + tag;
    out.push_back(s);
  };
  add("ring:16", "", "greedy", "adv=greedy");
  add("ring:16", "", "lookahead", "adv=lookahead");
  add("ring:16", "burst:k=4@round=2;burst:k=4@round=6", "greedy",
      "burst/adv=greedy");
  add("ring:24", "scramble@round=2;repeat:2@every=6", "greedy",
      "scramble/adv=greedy");
  add("ring:24", "crash:p=3@round=4", "lookahead", "crash/adv=lookahead");
  return out;
}

std::vector<Scenario> obsPreset() {
  // Telemetry overhead proof (CI gate): the ring:1e5 scheduler hot loop
  // timed with obs enabled vs disabled, same budget and seed as the
  // scheduler preset's large-n row.  The name carries the obs/ prefix
  // so tools/check_perf_regression.py dispatches to its overhead gate
  // (obs_overhead_pct < 2).
  constexpr std::uint64_t kSeed = 0x5CED;
  std::vector<Scenario> out;
  // Budget 200k (not the scheduler row's 4k): a percent-level
  // comparison needs each timed run to be ~60ms, not ~6ms, or scheduler
  // jitter swamps the signal and the 2% gate flakes.
  Scenario s = triple(ProtocolKind::kObsOverhead, DaemonKind::kRoundRobin,
                      "ring:100000", 3, kSeed);
  s.budget = 200'000;
  s.name = "obs/overhead/ring:100000";
  out.push_back(s);
  return out;
}

std::vector<Scenario> daemonSweepPreset() {
  constexpr std::uint64_t kSeed = 0xDAE;
  std::vector<Scenario> out;
  for (DaemonKind daemon :
       {DaemonKind::kCentral, DaemonKind::kDistributed,
        DaemonKind::kSynchronous, DaemonKind::kRoundRobin})
    out.push_back(
        triple(ProtocolKind::kDftno, daemon, "grid:4x5", 10, kSeed));
  for (DaemonKind daemon :
       {DaemonKind::kCentral, DaemonKind::kDistributed,
        DaemonKind::kSynchronous, DaemonKind::kRoundRobin,
        DaemonKind::kAdversarial})
    out.push_back(triple(ProtocolKind::kStno, daemon, "grid:4x5", 10, kSeed));
  return out;
}

}  // namespace

ProtocolKind parseProtocolKind(const std::string& name) {
  for (ProtocolKind kind :
       {ProtocolKind::kDftno, ProtocolKind::kStno,
        ProtocolKind::kStnoFixedTree, ProtocolKind::kDftnoChurn,
        ProtocolKind::kBaselineChurn, ProtocolKind::kDftc,
        ProtocolKind::kBfsTree, ProtocolKind::kLexDfsTree,
        ProtocolKind::kDftnoRecovery, ProtocolKind::kStnoRecovery,
        ProtocolKind::kStnoCrashReset, ProtocolKind::kAblationNaming,
        ProtocolKind::kSpace, ProtocolKind::kChordalProps,
        ProtocolKind::kRouting, ProtocolKind::kScheduler,
        ProtocolKind::kModelCheck, ProtocolKind::kResilience,
        ProtocolKind::kObsOverhead, ProtocolKind::kGuardKernel})
    if (protocolKindName(kind) == name) return kind;
  throw std::invalid_argument("unknown protocol '" + name + "'");
}

DaemonKind parseDaemonKind(const std::string& name) {
  for (DaemonKind kind :
       {DaemonKind::kCentral, DaemonKind::kDistributed,
        DaemonKind::kSynchronous, DaemonKind::kRoundRobin,
        DaemonKind::kAdversarial})
    if (daemonKindName(kind) == name) return kind;
  throw std::invalid_argument("unknown daemon '" + name + "'");
}

McTarget parseMcTarget(const std::string& name) {
  for (McTarget target :
       {McTarget::kDftc, McTarget::kDftno, McTarget::kDftcFault})
    if (mcTargetName(target) == name) return target;
  throw std::invalid_argument("unknown model-check target '" + name + "'");
}

Scenario parseScenario(const std::string& name) {
  const auto first = name.find('/');
  const auto second =
      first == std::string::npos ? std::string::npos : name.find('/', first + 1);
  if (second == std::string::npos || second + 1 == name.size())
    throw std::invalid_argument(
        "scenario '" + name + "' is not protocol/daemon/topology");
  Scenario s;
  // The model-check kind carries its target as a ":"-suffix on the
  // protocol token, e.g. "model-check:dftc/central/path:3".
  std::string protocol = name.substr(0, first);
  if (const auto colon = protocol.find(':'); colon != std::string::npos) {
    s.mcTarget = parseMcTarget(protocol.substr(colon + 1));
    protocol.resize(colon);
    if (protocol != protocolKindName(ProtocolKind::kModelCheck))
      throw std::invalid_argument("only model-check takes a ':target'");
  }
  s.protocol = parseProtocolKind(protocol);
  s.daemon = parseDaemonKind(name.substr(first + 1, second - first - 1));
  s.topology = TopologySpec::parse(name.substr(second + 1));
  s.name = name;
  if (isChurnProtocol(s.protocol)) s.budget = kDefaultChurnHorizon;
  if (s.protocol == ProtocolKind::kModelCheck)
    s.budget = static_cast<StepCount>(1ull << 22);  // maxStates cap
  if (s.protocol == ProtocolKind::kResilience)
    s.budget = 2'000'000;  // per-episode move budget; search steps are
                           // O(#enabled · n · actions), so the default
                           // convergence budget would be far too large
  if (s.protocol == ProtocolKind::kObsOverhead)
    s.budget = 200'000;  // moves measured per telemetry mode per rep
  if (s.protocol == ProtocolKind::kGuardKernel)
    s.budget = 2'000'000;  // per-node guard evaluations per timed side
                           // per rep (the default convergence budget
                           // would make a single rep run for minutes)
  return s;
}

std::vector<std::string> presetNames() {
  return {"dftno-scaling", "stno-height", "stno-star-control",
          "stno-scaling", "churn", "daemon-sweep", "substrate",
          "fault-recovery", "ablation-naming", "space", "chordal-props",
          "routing", "scheduler", "model-check", "resilience", "obs"};
}

std::vector<Scenario> makePreset(const std::string& name) {
  if (name == "dftno-scaling") return dftnoScalingPreset();
  if (name == "stno-height") return stnoHeightPreset();
  if (name == "stno-star-control") return stnoStarControlPreset();
  if (name == "stno-scaling") return stnoScalingPreset();
  if (name == "churn") return churnPreset();
  if (name == "daemon-sweep") return daemonSweepPreset();
  if (name == "substrate") return substratePreset();
  if (name == "fault-recovery") return faultRecoveryPreset();
  if (name == "ablation-naming") return ablationNamingPreset();
  if (name == "space") return spacePreset();
  if (name == "chordal-props") return chordalPropsPreset();
  if (name == "routing") return routingPreset();
  if (name == "scheduler") return schedulerPreset();
  if (name == "model-check") return modelCheckPreset();
  if (name == "resilience") return resiliencePreset();
  if (name == "obs") return obsPreset();
  throw std::invalid_argument("unknown preset '" + name + "'");
}

std::vector<Scenario> resolve(const std::string& name) {
  for (const std::string& preset : presetNames())
    if (name == preset) return makePreset(name);
  return {parseScenario(name)};
}

std::vector<Scenario> filterOnly(std::vector<Scenario> scenarios,
                                 const std::string& only) {
  std::vector<Scenario> all = std::move(scenarios);
  std::vector<Scenario> out;
  for (Scenario& s : all)
    if (s.name == only) out.push_back(std::move(s));
  if (out.empty()) {
    std::string msg = "no scenario named '" + only + "'; valid names:";
    for (const Scenario& s : all) msg += "\n  " + s.name;
    throw std::invalid_argument(msg);
  }
  return out;
}

std::vector<Scenario> loadScenarios(std::istream& in) {
  std::vector<Scenario> out;
  std::string line;
  int lineNo = 0;
  while (std::getline(in, line)) {
    ++lineNo;
    std::istringstream fields(line);
    std::string protocol, daemon, topology;
    if (!(fields >> protocol) || protocol[0] == '#') continue;
    auto fail = [lineNo](const std::string& what) -> std::invalid_argument {
      return std::invalid_argument("scenario file line " +
                                   std::to_string(lineNo) + ": " + what);
    };
    if (!(fields >> daemon >> topology))
      throw fail("expected 'protocol daemon topology [key=value ...]'");
    Scenario s;
    try {
      s = parseScenario(protocol + "/" + daemon + "/" + topology);
    } catch (const std::invalid_argument& e) {
      throw fail(e.what());
    }
    std::string kv;
    while (fields >> kv) {
      const auto eq = kv.find('=');
      if (eq == std::string::npos || eq == 0 || eq + 1 == kv.size())
        throw fail("malformed override '" + kv + "' (want key=value)");
      const std::string key = kv.substr(0, eq);
      const std::string value = kv.substr(eq + 1);
      // Full-consumption parses: "trials=3x" or "budget=1e6" must be
      // rejected, not silently truncated at the first non-numeric char.
      bool known = true;
      std::size_t used = 0;
      try {
        if (key == "trials") s.trials = std::stoi(value, &used);
        else if (key == "seed") s.seed = std::stoull(value, &used);
        else if (key == "budget") s.budget = std::stoll(value, &used);
        else if (key == "rate") s.faultRate = std::stod(value, &used);
        else if (key == "k") s.faultK = std::stoi(value, &used);
        else if (key == "mc-threads") s.mcThreads = std::stoi(value, &used);
        else if (key == "lookahead") s.lookahead = std::stoi(value, &used);
        // String-valued keys consume the whole value by construction.
        // A fault plan must be whitespace-free here (the canonical
        // rendering is): the line is whitespace-tokenized.
        else if (key == "fault-plan") { s.faultPlan = value; used = value.size(); }
        else if (key == "adversary") { s.adversary = value; used = value.size(); }
        else known = false;
      } catch (const std::invalid_argument&) {
        throw fail("bad value in '" + kv + "'");
      } catch (const std::out_of_range&) {
        throw fail("value out of range in '" + kv + "'");
      }
      if (!known) throw fail("unknown key '" + key + "'");
      if (used != value.size())
        throw fail("trailing junk in '" + kv + "'");
    }
    if (s.trials <= 0) throw fail("trials must be positive");
    out.push_back(std::move(s));
  }
  return out;
}

std::vector<Scenario> loadScenarioFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open scenario file " + path);
  return loadScenarios(in);
}

}  // namespace ssno::exp
