#include "exp/topology.hpp"

#include <algorithm>
#include <charconv>
#include <cmath>
#include "exp/fmt.hpp"
#include <set>
#include <sstream>
#include <stdexcept>
#include <tuple>
#include <utility>

#include "core/rng.hpp"

namespace ssno::exp {
namespace {

[[noreturn]] void bad(const std::string& what) {
  throw std::invalid_argument("TopologySpec: " + what);
}

void require(bool ok, const std::string& what) {
  if (!ok) bad(what);
}

int parseInt(const std::string& s, const std::string& ctx) {
  std::size_t pos = 0;
  int v = 0;
  try {
    v = std::stoi(s, &pos);
  } catch (const std::exception&) {
    bad("expected integer in '" + ctx + "'");
  }
  if (pos != s.size()) bad("trailing junk in '" + ctx + "'");
  return v;
}

std::uint64_t parseU64(const std::string& s, const std::string& ctx) {
  std::uint64_t v = 0;
  const auto [end, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc{} || end != s.data() + s.size())
    bad("expected unsigned integer in '" + ctx + "'");
  return v;
}

double parseDouble(const std::string& s, const std::string& ctx) {
  std::size_t pos = 0;
  double v = 0;
  try {
    v = std::stod(s, &pos);
  } catch (const std::exception&) {
    bad("expected number in '" + ctx + "'");
  }
  if (pos != s.size()) bad("trailing junk in '" + ctx + "'");
  return v;
}

std::vector<std::string> splitOn(const std::string& s, char sep) {
  std::vector<std::string> parts;
  std::string cur;
  std::istringstream in(s);
  while (std::getline(in, cur, sep)) parts.push_back(cur);
  if (!s.empty() && s.back() == sep) parts.emplace_back();
  return parts;
}

/// "RxC" as two ints, or a single perfect square "N" as sqrt(N)² sides.
std::pair<int, int> parseDims(const std::string& s, const std::string& ctx) {
  const auto x = s.find('x');
  if (x != std::string::npos) {
    return {parseInt(s.substr(0, x), ctx), parseInt(s.substr(x + 1), ctx)};
  }
  const int n = parseInt(s, ctx);
  if (n < 0) bad("'" + ctx + "': negative size " + s);
  const int side = static_cast<int>(std::lround(std::sqrt(n)));
  if (side * side != n)
    bad("'" + ctx + "': " + s + " is not RxC and not a perfect square");
  return {side, side};
}

void validateChordalRing(int n, const std::vector<int>& chords) {
  require(n >= 3, "chordring needs n >= 3");
  require(!chords.empty(), "chordring needs at least one chord offset");
  for (int c : chords)
    require(c >= 2 && c <= n - 2,
            "chord offset " + std::to_string(c) + " outside 2..n-2");
}

}  // namespace

Graph chordalRing(int n, const std::vector<int>& chords) {
  validateChordalRing(n, chords);
  std::set<std::pair<NodeId, NodeId>> edges;
  for (int i = 0; i < n; ++i) edges.insert(std::minmax(i, (i + 1) % n));
  for (int c : chords)
    for (int i = 0; i < n; ++i) edges.insert(std::minmax(i, (i + c) % n));
  return Graph(n, {edges.begin(), edges.end()});
}

namespace {

void validateDRegular(int n, int d) {
  require(n >= 2, "dreg needs n >= 2");
  require(d >= 1 && d < n, "dreg needs 1 <= d < n");
  require((static_cast<long long>(n) * d) % 2 == 0, "dreg needs n*d even");
  // d == 1 is a perfect matching: connected only as a single edge.
  require(d >= 2 || n == 2, "dreg with d=1 is disconnected unless n=2");
}

void validatePowerLawTree(int n, double alpha) {
  require(n >= 1, "plaw needs n >= 1");
  require(alpha >= 0.0 && alpha <= 8.0, "plaw needs 0 <= alpha <= 8");
  // Attachment uses a linear weight scan per node: O(n^2) total.
  require(n <= 20'000, "plaw needs n <= 20000");
}

}  // namespace

Graph dRegularRandom(int n, int d, std::uint64_t seed) {
  validateDRegular(n, d);
  // Deterministic circulant base: offsets 1..d/2, plus the diameter
  // matching when d is odd (n is even then, since n*d is even).
  std::set<std::pair<NodeId, NodeId>> present;
  std::vector<std::pair<NodeId, NodeId>> edges;
  auto addEdge = [&](int u, int v) {
    const auto e = std::minmax(u, v);
    if (present.insert(e).second) edges.push_back(e);
  };
  for (int k = 1; k <= d / 2; ++k)
    for (int i = 0; i < n; ++i) addEdge(i, (i + k) % n);
  if (d % 2 == 1)
    for (int i = 0; i < n / 2; ++i) addEdge(i, i + n / 2);

  // Degree-preserving randomization: double-edge swaps
  // {a,b},{c,e} -> {a,c},{b,e} on four distinct, non-adjacent-after
  // endpoints.  The edge *set* is what matters; ports are canonicalized
  // by the final sort.
  Rng rng(seed);
  auto swapEdges = [&](std::size_t i, std::size_t j, bool flip) {
    auto [a, b] = edges[i];
    auto [c, e] = edges[j];
    if (flip) std::swap(c, e);
    if (a == c || a == e || b == c || b == e) return;
    if (present.contains(std::minmax(a, c)) ||
        present.contains(std::minmax(b, e)))
      return;
    present.erase(edges[i]);
    present.erase(edges[j]);
    edges[i] = std::minmax(a, c);
    edges[j] = std::minmax(b, e);
    present.insert(edges[i]);
    present.insert(edges[j]);
  };
  const long long mixing = 8LL * static_cast<long long>(edges.size());
  for (long long t = 0; t < mixing; ++t) {
    const auto i = static_cast<std::size_t>(
        rng.below(static_cast<int>(edges.size())));
    const auto j = static_cast<std::size_t>(
        rng.below(static_cast<int>(edges.size())));
    if (i == j) continue;
    swapEdges(i, j, rng.chance(0.5));
  }

  // Connectivity repair: swap a cycle (non-bridge) edge of one
  // component with a cycle edge of another — both components are
  // d-regular (d >= 2), so each contains a cycle; the cross swap keeps
  // degrees, introduces two bridging edges, and removes no cut edge,
  // merging exactly two components per iteration.
  auto componentsOf = [&](std::vector<int>& comp) {
    comp.assign(static_cast<std::size_t>(n), -1);
    std::vector<std::vector<int>> adj(static_cast<std::size_t>(n));
    for (const auto& [u, v] : edges) {
      adj[static_cast<std::size_t>(u)].push_back(v);
      adj[static_cast<std::size_t>(v)].push_back(u);
    }
    int count = 0;
    std::vector<int> stack;
    for (int s = 0; s < n; ++s) {
      if (comp[static_cast<std::size_t>(s)] != -1) continue;
      stack.assign(1, s);
      comp[static_cast<std::size_t>(s)] = count;
      while (!stack.empty()) {
        const int u = stack.back();
        stack.pop_back();
        for (int v : adj[static_cast<std::size_t>(u)]) {
          if (comp[static_cast<std::size_t>(v)] == -1) {
            comp[static_cast<std::size_t>(v)] = count;
            stack.push_back(v);
          }
        }
      }
      ++count;
    }
    return count;
  };
  /// First (deterministic) edge of component `target` that lies on a
  /// cycle: a DFS back edge.  Exists because the component is d-regular
  /// with d >= 2.
  auto cycleEdgeIn = [&](const std::vector<int>& comp,
                         int target) -> std::pair<int, int> {
    std::vector<std::vector<int>> adj(static_cast<std::size_t>(n));
    for (const auto& [u, v] : edges) {
      if (comp[static_cast<std::size_t>(u)] != target) continue;
      adj[static_cast<std::size_t>(u)].push_back(v);
      adj[static_cast<std::size_t>(v)].push_back(u);
    }
    int root = -1;
    for (int s = 0; s < n && root < 0; ++s)
      if (comp[static_cast<std::size_t>(s)] == target) root = s;
    std::vector<int> parent(static_cast<std::size_t>(n), -2);
    std::vector<std::pair<int, int>> stack{{root, -1}};
    parent[static_cast<std::size_t>(root)] = -1;
    while (!stack.empty()) {
      const auto [u, from] = stack.back();
      stack.pop_back();
      for (int v : adj[static_cast<std::size_t>(u)]) {
        if (v == from) continue;
        if (parent[static_cast<std::size_t>(v)] != -2)
          return std::minmax(u, v);  // back edge: lies on a cycle
        parent[static_cast<std::size_t>(v)] = u;
        stack.push_back({v, u});
      }
    }
    bad("dreg internal error: no cycle edge in a d>=2-regular component");
  };
  std::vector<int> comp;
  while (d >= 2 && componentsOf(comp) > 1) {
    const std::pair<int, int> e1 = cycleEdgeIn(comp, 0);
    const std::pair<int, int> e2 =
        cycleEdgeIn(comp, comp[static_cast<std::size_t>(e1.first)] == 0
                              ? 1
                              : 0);
    present.erase(e1);
    present.erase(e2);
    edges.erase(std::find(edges.begin(), edges.end(), e1));
    edges.erase(std::find(edges.begin(), edges.end(), e2));
    addEdge(e1.first, e2.first);
    addEdge(e1.second, e2.second);
  }

  return Graph(n, {present.begin(), present.end()});
}

Graph powerLawTree(int n, double alpha, std::uint64_t seed) {
  validatePowerLawTree(n, alpha);
  Rng rng(seed);
  std::vector<std::pair<NodeId, NodeId>> edges;
  std::vector<int> deg(static_cast<std::size_t>(n), 0);
  std::vector<double> weight(static_cast<std::size_t>(n), 0.0);
  for (int t = 1; t < n; ++t) {
    double total = 0;
    for (int v = 0; v < t; ++v) {
      weight[static_cast<std::size_t>(v)] =
          std::pow(std::max(deg[static_cast<std::size_t>(v)], 1), alpha);
      total += weight[static_cast<std::size_t>(v)];
    }
    // 53-bit uniform draw in [0, total).
    const double u =
        static_cast<double>(rng.next() >> 11) * (1.0 / 9007199254740992.0);
    double x = u * total;
    int chosen = t - 1;
    for (int v = 0; v < t; ++v) {
      x -= weight[static_cast<std::size_t>(v)];
      if (x < 0) {
        chosen = v;
        break;
      }
    }
    edges.emplace_back(chosen, t);
    ++deg[static_cast<std::size_t>(chosen)];
    ++deg[static_cast<std::size_t>(t)];
  }
  return Graph(n, edges);
}

std::string TopologySpec::name() const {
  std::ostringstream out;
  switch (family) {
    case TopologyFamily::kRing: out << "ring:" << a; break;
    case TopologyFamily::kPath: out << "path:" << a; break;
    case TopologyFamily::kStar: out << "star:" << a; break;
    case TopologyFamily::kComplete: out << "complete:" << a; break;
    case TopologyFamily::kGrid: out << "grid:" << a << 'x' << b; break;
    case TopologyFamily::kTorus: out << "torus:" << a << 'x' << b; break;
    case TopologyFamily::kHypercube: out << "hypercube:" << a; break;
    case TopologyFamily::kLollipop: out << "lollipop:" << a << 'x' << b; break;
    case TopologyFamily::kKAryTree: out << "kary:" << a << 'x' << b; break;
    case TopologyFamily::kCaterpillar:
      out << "caterpillar:" << a << 'x' << b;
      break;
    case TopologyFamily::kRandomTree: out << "rtree:" << a << ':' << seed; break;
    case TopologyFamily::kRandomConnected:
      out << "er:" << a << ':' << shortestDouble(p) << ':' << seed;
      break;
    case TopologyFamily::kChordalRing: {
      out << "chordring:" << a << ':';
      for (std::size_t i = 0; i < chords.size(); ++i) {
        if (i) out << ',';
        out << chords[i];
      }
      break;
    }
    case TopologyFamily::kDRegularRandom:
      out << "dreg:" << a << ':' << b << ':' << seed;
      break;
    case TopologyFamily::kPowerLawTree:
      out << "plaw:" << a << ':' << shortestDouble(p) << ':' << seed;
      break;
  }
  return out.str();
}

void TopologySpec::validate() const {
  // Simulator-scale sanity caps: a spec comes from user input, and an
  // absurd size must fail fast instead of allocating tens of GB.
  constexpr long long kMaxNodes = 1'000'000;
  constexpr long long kMaxEdges = 8'000'000;
  const auto requireScale = [](long long nodes, long long edges) {
    require(nodes <= kMaxNodes,
            "too large: " + std::to_string(nodes) + " nodes (cap " +
                std::to_string(kMaxNodes) + ")");
    require(edges <= kMaxEdges,
            "too large: " + std::to_string(edges) + " edges (cap " +
                std::to_string(kMaxEdges) + ")");
  };
  const long long la = a, lb = b;
  switch (family) {
    case TopologyFamily::kRing:
      require(a >= 3, "ring needs n >= 3");
      requireScale(la, la);
      return;
    case TopologyFamily::kPath:
      require(a >= 1, "path needs n >= 1");
      requireScale(la, la);
      return;
    case TopologyFamily::kStar:
      require(a >= 2, "star needs n >= 2");
      requireScale(la, la);
      return;
    case TopologyFamily::kComplete:
      require(a >= 2, "complete needs n >= 2");
      requireScale(la, la * (la - 1) / 2);
      return;
    case TopologyFamily::kGrid:
      // long long arithmetic: user-supplied dimensions must not overflow.
      require(a >= 1 && b >= 1 && la * lb >= 2, "grid needs rows*cols >= 2");
      requireScale(la * lb, 2 * la * lb);
      return;
    case TopologyFamily::kTorus:
      require(a >= 3 && b >= 3, "torus needs rows,cols >= 3");
      requireScale(la * lb, 2 * la * lb);
      return;
    case TopologyFamily::kHypercube:
      require(a >= 1 && a <= 20, "hypercube needs 1 <= dim <= 20");
      return;
    case TopologyFamily::kLollipop:
      require(a >= 2 && b >= 1, "lollipop needs clique >= 2, tail >= 1");
      requireScale(la + lb, la * (la - 1) / 2 + lb);
      return;
    case TopologyFamily::kKAryTree:
      require(a >= 1 && b >= 1, "kary needs n >= 1, k >= 1");
      requireScale(la, la);
      return;
    case TopologyFamily::kCaterpillar:
      require(a >= 1 && b >= 0, "caterpillar needs spine >= 1, legs >= 0");
      requireScale(la + la * lb, la + la * lb);
      return;
    case TopologyFamily::kRandomTree:
      require(a >= 1, "rtree needs n >= 1");
      requireScale(la, la);
      return;
    case TopologyFamily::kRandomConnected:
      require(a >= 1, "er needs n >= 1");
      require(p >= 0.0 && p <= 1.0, "er needs 0 <= p <= 1");
      // randomConnected scans all O(n^2) node pairs.
      require(a <= 20'000, "er needs n <= 20000");
      return;
    case TopologyFamily::kChordalRing:
      validateChordalRing(a, chords);
      requireScale(la, la * (1 + static_cast<long long>(chords.size())));
      return;
    case TopologyFamily::kDRegularRandom:
      validateDRegular(a, b);
      requireScale(la, la * lb / 2);
      return;
    case TopologyFamily::kPowerLawTree:
      validatePowerLawTree(a, p);
      requireScale(la, la);
      return;
  }
  bad("unknown family");
}

Graph TopologySpec::build() const {
  validate();
  switch (family) {
    case TopologyFamily::kRing: return Graph::ring(a);
    case TopologyFamily::kPath: return Graph::path(a);
    case TopologyFamily::kStar: return Graph::star(a);
    case TopologyFamily::kComplete: return Graph::complete(a);
    case TopologyFamily::kGrid: return Graph::grid(a, b);
    case TopologyFamily::kTorus: return Graph::torus(a, b);
    case TopologyFamily::kHypercube: return Graph::hypercube(a);
    case TopologyFamily::kLollipop: return Graph::lollipop(a, b);
    case TopologyFamily::kKAryTree: return Graph::kAryTree(a, b);
    case TopologyFamily::kCaterpillar: return Graph::caterpillar(a, b);
    case TopologyFamily::kRandomTree: {
      Rng rng(seed);
      return Graph::randomTree(a, rng);
    }
    case TopologyFamily::kRandomConnected: {
      Rng rng(seed);
      return Graph::randomConnected(a, p, rng);
    }
    case TopologyFamily::kChordalRing: return chordalRing(a, chords);
    case TopologyFamily::kDRegularRandom: return dRegularRandom(a, b, seed);
    case TopologyFamily::kPowerLawTree: return powerLawTree(a, p, seed);
  }
  bad("unknown family");
}

TopologySpec TopologySpec::parse(const std::string& text) {
  const auto colon = text.find(':');
  if (colon == std::string::npos || colon + 1 == text.size())
    bad("expected 'family:params', got '" + text + "'");
  const std::string fam = text.substr(0, colon);
  const std::vector<std::string> args = splitOn(text.substr(colon + 1), ':');

  TopologySpec spec;
  auto oneInt = [&](TopologyFamily f) {
    require(args.size() == 1, fam + " takes exactly one parameter");
    spec.family = f;
    spec.a = parseInt(args[0], text);
  };
  auto dims = [&](TopologyFamily f) {
    require(args.size() == 1, fam + " takes exactly one parameter");
    spec.family = f;
    std::tie(spec.a, spec.b) = parseDims(args[0], text);
  };
  if (fam == "ring") {
    oneInt(TopologyFamily::kRing);
  } else if (fam == "path") {
    oneInt(TopologyFamily::kPath);
  } else if (fam == "star") {
    oneInt(TopologyFamily::kStar);
  } else if (fam == "complete") {
    oneInt(TopologyFamily::kComplete);
  } else if (fam == "hypercube") {
    oneInt(TopologyFamily::kHypercube);
  } else if (fam == "grid") {
    dims(TopologyFamily::kGrid);
  } else if (fam == "torus") {
    dims(TopologyFamily::kTorus);
  } else if (fam == "kary") {
    dims(TopologyFamily::kKAryTree);
  } else if (fam == "caterpillar") {
    dims(TopologyFamily::kCaterpillar);
  } else if (fam == "lollipop") {
    dims(TopologyFamily::kLollipop);
  } else if (fam == "rtree") {
    require(args.size() == 1 || args.size() == 2,
            "rtree takes N or N:seed");
    spec.family = TopologyFamily::kRandomTree;
    spec.a = parseInt(args[0], text);
    if (args.size() == 2) spec.seed = parseU64(args[1], text);
  } else if (fam == "er") {
    require(args.size() == 2 || args.size() == 3, "er takes N:P or N:P:seed");
    spec.family = TopologyFamily::kRandomConnected;
    spec.a = parseInt(args[0], text);
    spec.p = parseDouble(args[1], text);
    if (args.size() == 3) spec.seed = parseU64(args[2], text);
  } else if (fam == "dreg") {
    require(args.size() == 2 || args.size() == 3,
            "dreg takes N:D or N:D:seed");
    spec.family = TopologyFamily::kDRegularRandom;
    spec.a = parseInt(args[0], text);
    spec.b = parseInt(args[1], text);
    if (args.size() == 3) spec.seed = parseU64(args[2], text);
  } else if (fam == "plaw") {
    require(args.size() == 2 || args.size() == 3,
            "plaw takes N:ALPHA or N:ALPHA:seed");
    spec.family = TopologyFamily::kPowerLawTree;
    spec.a = parseInt(args[0], text);
    spec.p = parseDouble(args[1], text);
    if (args.size() == 3) spec.seed = parseU64(args[2], text);
  } else if (fam == "chordring") {
    require(args.size() == 2, "chordring takes N:c1,c2,...");
    spec.family = TopologyFamily::kChordalRing;
    spec.a = parseInt(args[0], text);
    for (const std::string& c : splitOn(args[1], ','))
      spec.chords.push_back(parseInt(c, text));
  } else {
    bad("unknown family '" + fam + "'");
  }
  // Surface bad parameter domains at parse time, not first build.
  spec.validate();
  return spec;
}

}  // namespace ssno::exp
