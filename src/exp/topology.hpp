// Topology generators for the experiment harness.
//
// A TopologySpec is a small value object that names a graph family plus
// its parameters (including the RNG seed for random families), so that a
// scenario is fully described by data: the same spec always builds the
// same Graph, bit for bit.  Specs round-trip through a compact text
// grammar used by scenario names and the exp_cli:
//
//   ring:N  path:N  star:N  complete:N  hypercube:D
//   grid:RxC | grid:N (perfect square)      torus:RxC | torus:N
//   kary:NxK  caterpillar:SPINExLEGS  lollipop:CLIQUExTAIL
//   rtree:N[:seed]          random Prüfer tree
//   er:N:P[:seed]           connected Erdős–Rényi G(n,p)
//   chordring:N:c1,c2,...   ring of N plus chords at the given offsets
//   dreg:N:D[:seed]         random connected Δ-regular graph (N·D even)
//   plaw:N:A[:seed]         power-law (preferential-attachment) tree,
//                           attachment weight ∝ degree^A
//
// build() validates parameter domains with std::invalid_argument (never
// aborting contract macros — specs come from user input) and guarantees
// the produced graph is connected.
#ifndef SSNO_EXP_TOPOLOGY_HPP
#define SSNO_EXP_TOPOLOGY_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "core/graph.hpp"

namespace ssno::exp {

enum class TopologyFamily {
  kRing,
  kPath,
  kStar,
  kComplete,
  kGrid,
  kTorus,
  kHypercube,
  kLollipop,
  kKAryTree,
  kCaterpillar,
  kRandomTree,
  kRandomConnected,
  kChordalRing,
  kDRegularRandom,
  kPowerLawTree,
};

/// Ring of n nodes plus, for every offset c in `chords`, the chord edges
/// {i, (i+c) mod n}.  Offsets must lie in 2..n-2; duplicate edges arising
/// from complementary offsets (c and n-c) or c == n/2 are deduplicated.
[[nodiscard]] Graph chordalRing(int n, const std::vector<int>& chords);

/// Random connected d-regular graph on n nodes (n·d even; d >= 2 unless
/// n == 2).  Built deterministically from `seed`: a circulant base is
/// randomized by double-edge swaps (degree-preserving), then cross-
/// component swaps restore connectivity, so the result is always
/// d-regular, simple, and connected.
[[nodiscard]] Graph dRegularRandom(int n, int d, std::uint64_t seed);

/// Random preferential-attachment tree: node t attaches to an earlier
/// node with probability proportional to degree^alpha (alpha = 1 is the
/// classic Barabási–Albert tree; larger alpha concentrates hubs,
/// alpha = 0 is a uniform random recursive tree).
[[nodiscard]] Graph powerLawTree(int n, double alpha, std::uint64_t seed);

struct TopologySpec {
  TopologyFamily family = TopologyFamily::kRing;
  int a = 0;                ///< primary size (n, rows, dim, spine, clique)
  int b = 0;                ///< secondary size (cols, arity, legs, tail,
                            ///< degree for dreg)
  double p = 0.0;           ///< extra-edge probability (kRandomConnected)
                            ///< or attachment exponent (kPowerLawTree)
  std::vector<int> chords;  ///< chord offsets (kChordalRing)
  std::uint64_t seed = 0;   ///< generator seed (random families)

  /// Canonical text form; parse(name()) reproduces the spec exactly.
  [[nodiscard]] std::string name() const;

  /// Checks parameter domains without materializing the graph.
  /// Throws std::invalid_argument on a bad spec.
  void validate() const;

  /// Builds the graph, validating parameter domains first.
  /// Throws std::invalid_argument on a bad spec.  Postcondition: the
  /// result is connected and rooted at node 0.
  [[nodiscard]] Graph build() const;

  /// Parses the grammar above; throws std::invalid_argument on errors.
  static TopologySpec parse(const std::string& text);

  friend bool operator==(const TopologySpec&, const TopologySpec&) = default;
};

}  // namespace ssno::exp

#endif  // SSNO_EXP_TOPOLOGY_HPP
