#include "exp/report.hpp"

#include <iomanip>
#include <ostream>
#include <sstream>

#include "exp/fmt.hpp"

namespace ssno::exp {
namespace {

/// Minimal JSON string escaping (quotes, backslashes, control chars).
std::string jsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          std::ostringstream esc;
          esc << "\\u" << std::hex << std::setw(4) << std::setfill('0')
              << static_cast<int>(c);
          out += esc.str();
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string num(double v) { return shortestDouble(v); }

/// RFC-4180 quoting for fields that may contain commas or quotes
/// (chordal-ring names do: "chordring:16:2,5").
std::string csvField(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string quoted = "\"";
  for (char c : s) {
    if (c == '"') quoted += '"';
    quoted += c;
  }
  quoted += '"';
  return quoted;
}

void writeScenarioJson(std::ostream& out, const ScenarioResult& r,
                       const std::string& indent, bool includeTiming) {
  const Scenario& s = r.scenario;
  out << indent << "{\n";
  out << indent << "  \"scenario\": \"" << jsonEscape(s.name) << "\",\n";
  out << indent << "  \"protocol\": \"" << protocolKindName(s.protocol)
      << "\",\n";
  out << indent << "  \"daemon\": \"" << daemonKindName(s.daemon) << "\",\n";
  out << indent << "  \"topology\": \"" << jsonEscape(s.topology.name())
      << "\",\n";
  out << indent << "  \"nodes\": " << r.nodeCount << ",\n";
  out << indent << "  \"edges\": " << r.edgeCount << ",\n";
  out << indent << "  \"seed\": " << s.seed << ",\n";
  out << indent << "  \"budget\": " << s.budget << ",\n";
  out << indent << "  \"cores\": " << r.cores << ",\n";
  if (s.protocol == ProtocolKind::kModelCheck)
    out << indent << "  \"mc_threads\": " << s.mcThreads << ",\n";
  if (s.faultRate > 0)
    out << indent << "  \"fault_rate\": " << num(s.faultRate) << ",\n";
  if (usesFaultK(s.protocol))
    out << indent << "  \"fault_k\": " << s.faultK << ",\n";
  out << indent << "  \"trials\": " << r.trials << ",\n";
  out << indent << "  \"failed_trials\": " << r.failedTrials << ",\n";
  // One "{name: summary, ...}" object; shared by "metrics" and "timing".
  const auto summaryMap =
      [&out, &indent](const std::map<std::string, Summary>& entries) {
        bool first = true;
        for (const auto& [name, m] : entries) {
          if (!first) out << ",";
          first = false;
          out << "\n" << indent << "    \"" << jsonEscape(name) << "\": {"
              << "\"count\": " << m.count << ", \"min\": " << num(m.min)
              << ", \"max\": " << num(m.max) << ", \"mean\": " << num(m.mean)
              << ", \"stddev\": " << num(m.stddev) << ", \"p50\": " << num(m.p50)
              << ", \"p95\": " << num(m.p95) << "}";
        }
        if (!first) out << "\n" << indent << "  ";
      };
  // Timing breakdown (runner-stamped wall clock per trial, and any
  // phase timings a trial kind adds) — JSON-only observability data;
  // CSV rows and cached payloads never carry it.
  if (includeTiming && !r.timing.empty()) {
    out << indent << "  \"timing\": {";
    summaryMap(r.timing);
    out << "},\n";
  }
  out << indent << "  \"metrics\": {";
  summaryMap(r.metrics);
  out << "}\n" << indent << "}";
}

}  // namespace

std::string csvHeader() {
  return "scenario,protocol,daemon,topology,nodes,edges,trials,"
         "failed_trials,fault_rate,metric,count,min,max,mean,stddev,p50,p95";
}

std::string csvRows(const ScenarioResult& r) {
  const Scenario& s = r.scenario;
  const std::string prefix = csvField(s.name) + "," +
                             protocolKindName(s.protocol) + "," +
                             daemonKindName(s.daemon) + "," +
                             csvField(s.topology.name()) + "," +
                             std::to_string(r.nodeCount) + "," +
                             std::to_string(r.edgeCount) + "," +
                             std::to_string(r.trials) + "," +
                             std::to_string(r.failedTrials) + "," +
                             num(s.faultRate);
  std::string out;
  if (r.metrics.empty()) return out + prefix + ",,0,,,,,,\n";
  for (const auto& [name, m] : r.metrics) {
    out += prefix + "," + name + "," + std::to_string(m.count) + "," +
           num(m.min) + "," + num(m.max) + "," + num(m.mean) + "," +
           num(m.stddev) + "," + num(m.p50) + "," + num(m.p95) + "\n";
  }
  return out;
}

void writeCsv(std::ostream& out, const std::vector<ScenarioResult>& results) {
  out << csvHeader() << "\n";
  for (const ScenarioResult& r : results) out << csvRows(r);
}

void writeJson(std::ostream& out, const std::vector<ScenarioResult>& results,
               bool includeTiming) {
  out << "[\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    writeScenarioJson(out, results[i], "  ", includeTiming);
    if (i + 1 < results.size()) out << ",";
    out << "\n";
  }
  out << "]\n";
}

std::string toCsv(const std::vector<ScenarioResult>& results) {
  std::ostringstream out;
  writeCsv(out, results);
  return out.str();
}

std::string toJson(const std::vector<ScenarioResult>& results,
                   bool includeTiming) {
  std::ostringstream out;
  writeJson(out, results, includeTiming);
  return out.str();
}

void printTable(std::ostream& out, const std::vector<ScenarioResult>& results) {
  std::ostringstream line;
  line << std::left << std::setw(36) << "scenario" << std::right
       << std::setw(7) << "n" << std::setw(8) << "m" << std::setw(7) << "ok"
       << std::left << "  " << std::setw(18) << "metric" << std::right
       << std::setw(12) << "mean" << std::setw(12) << "p50" << std::setw(12)
       << "p95" << std::setw(12) << "max";
  out << line.str() << "\n";
  for (const ScenarioResult& r : results) {
    const std::string ok = convergedLabel(r.trials, r.failedTrials);
    bool first = true;
    for (const auto& [name, m] : r.metrics) {
      std::ostringstream row;
      row << std::left << std::setw(36)
          << (first ? r.scenario.name : std::string{}) << std::right
          << std::setw(7) << (first ? std::to_string(r.nodeCount) : "")
          << std::setw(8) << (first ? std::to_string(r.edgeCount) : "")
          << std::setw(7) << (first ? ok : "") << std::left << "  "
          << std::setw(18) << name << std::right << std::fixed
          << std::setprecision(2) << std::setw(12) << m.mean << std::setw(12)
          << m.p50 << std::setw(12) << m.p95 << std::setw(12) << m.max;
      out << row.str() << "\n";
      first = false;
    }
    if (r.metrics.empty()) {
      std::ostringstream row;
      row << std::left << std::setw(36) << r.scenario.name << std::right
          << std::setw(7) << r.nodeCount << std::setw(8) << r.edgeCount
          << std::setw(7) << ok << "  (no converged trials)";
      out << row.str() << "\n";
    }
  }
}

}  // namespace ssno::exp
