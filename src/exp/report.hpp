// Machine-readable emitters for scenario results.
//
// CSV is long-form: one row per (scenario, metric) pair, so the files load
// straight into dataframes without pivoting.  JSON mirrors the full
// ScenarioResult structure (scenario parameters, graph size, failed-trial
// count, per-metric summaries) for the BENCH_*.json trajectory tooling.
#ifndef SSNO_EXP_REPORT_HPP
#define SSNO_EXP_REPORT_HPP

#include <iosfwd>
#include <string>
#include <vector>

#include "exp/runner.hpp"

namespace ssno::exp {

/// The CSV column schema, as the header row (no trailing newline).
[[nodiscard]] std::string csvHeader();

/// One scenario's CSV rows (one per metric, newline-terminated, no
/// header).  writeCsv is header + csvRows in scenario order; the serve
/// protocol streams these per-scenario so a client can reassemble a
/// byte-identical exp_cli CSV.
[[nodiscard]] std::string csvRows(const ScenarioResult& r);

void writeCsv(std::ostream& out, const std::vector<ScenarioResult>& results);

/// `includeTiming` adds each scenario's runner-stamped "timing" object
/// (per-trial wall seconds) to the JSON.  Off by default: wall clock is
/// inherently nondeterministic and cached results carry none, so the
/// default output keeps the thread-count/byte-identity guarantees
/// (runner_test, cache_test) while exp_cli opts in for BENCH files.
void writeJson(std::ostream& out, const std::vector<ScenarioResult>& results,
               bool includeTiming = false);

[[nodiscard]] std::string toCsv(const std::vector<ScenarioResult>& results);
[[nodiscard]] std::string toJson(const std::vector<ScenarioResult>& results,
                                 bool includeTiming = false);

/// Human-readable fixed-width table (one line per scenario × metric),
/// used by exp_cli and the ported benches.
void printTable(std::ostream& out, const std::vector<ScenarioResult>& results);

}  // namespace ssno::exp

#endif  // SSNO_EXP_REPORT_HPP
