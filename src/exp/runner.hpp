// ExperimentRunner — multi-threaded scenario execution with
// thread-count-independent results.
//
// A Scenario is pure data: protocol kind × daemon kind × topology spec ×
// trial count × seed × budget.  The runner fans the trials of a scenario
// out over a worker pool; every trial derives its own RNG stream from
// (scenario seed, trial index) via a splitmix64 mix, writes into its own
// result slot, and aggregation walks the slots in trial order — so the
// aggregated ScenarioResult is bit-identical whether the scenario ran on
// one thread or sixteen (proved by tests/runner_test.cpp).
//
// Trials that exhaust their budget without converging are *counted*, not
// silently dropped: ScenarioResult::failedTrials feeds every report.
#ifndef SSNO_EXP_RUNNER_HPP
#define SSNO_EXP_RUNNER_HPP

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "core/daemon.hpp"
#include "obs/stats.hpp"
#include "core/types.hpp"
#include "exp/topology.hpp"

namespace ssno::exp {

enum class ProtocolKind {
  kDftno,          ///< composed token-circulation orientation (Ch. 3)
  kStno,           ///< composed spanning-tree orientation (Ch. 4)
  kStnoFixedTree,  ///< STNO over the fixed port-order DFS tree
  kDftnoChurn,     ///< DFTNO under sustained fault churn (availability)
  kBaselineChurn,  ///< init-based orientation under the same churn
  kDftc,           ///< token-circulation substrate alone (stabilization)
  kBfsTree,        ///< BFS spanning-tree substrate alone (quiescence)
  kLexDfsTree,     ///< lex-path DFS spanning-tree substrate (quiescence)
  kDftnoRecovery,  ///< DFTNO: converge, corrupt faultK nodes, re-converge
  kStnoRecovery,   ///< STNO: same fault-containment measurement
  kStnoCrashReset, ///< STNO: crash-and-reset one processor, re-converge
  kAblationNaming, ///< Ch. 5 naming comparison (DFTNO vs STNO over trees)
  kSpace,          ///< per-node space accounting (deterministic)
  kChordalProps,   ///< §2.2 chordal-labeling properties (deterministic)
  kRouting,        ///< traversal/routing message complexity (deterministic)
  kScheduler,      ///< simulator throughput, naive vs incremental cache
  kModelCheck,     ///< exhaustive verification throughput: src/mc parallel
                   ///< explorer vs the sequential checker (pre-incremental
                   ///< expansion), plus a verdict-agreement check
  kResilience,     ///< adversarial resilience campaign on DFTNO: worst-case
                   ///< daemon search vs a random reference, fault-plan
                   ///< injection, schedule replay certification (src/resil)
  kObsOverhead,    ///< telemetry overhead proof: the ring:1e5 scheduler
                   ///< hot loop timed with obs enabled vs disabled
                   ///< (interleaved best-of reps; gated < 2% in CI)
  kGuardKernel,    ///< raw guard-evaluation throughput: the columnar
                   ///< Protocol::evaluateGuards kernels vs the scalar
                   ///< per-node virtual enabled() loop on identical
                   ///< DFTNO state (paired reps, median ratio)
};

[[nodiscard]] std::string protocolKindName(ProtocolKind kind);

/// Which protocol a model-check scenario verifies, and over which state
/// set: full product space, or the region reachable from every
/// single-node corruption of the clean configuration (the k=1
/// fault-recovery cone — exhaustive at much larger n than full space).
enum class McTarget {
  kDftc,       ///< substrate, full space, weak fairness
  kDftno,      ///< composed DFTNO system, full space, weak fairness
  kDftcFault,  ///< substrate, 1-fault reachable region, weak fairness
};

[[nodiscard]] std::string mcTargetName(McTarget target);

/// True for the open-ended fault-churn protocols, whose budget is a step
/// horizon rather than a convergence bound.
[[nodiscard]] bool isChurnProtocol(ProtocolKind kind);

/// True for the fault-recovery kinds, which read Scenario::faultK.
[[nodiscard]] bool usesFaultK(ProtocolKind kind);

/// Default step horizon for churn scenarios (a convergence-style budget
/// of 2e8 steps would run for hours).
inline constexpr StepCount kDefaultChurnHorizon = 40'000;

/// "8/10" convergence label shared by tables and reports.
[[nodiscard]] std::string convergedLabel(int trials, int failedTrials);

struct Scenario {
  std::string name;  ///< registry key, e.g. "stno/distributed/torus:4x4"
  ProtocolKind protocol = ProtocolKind::kStno;
  DaemonKind daemon = DaemonKind::kDistributed;
  TopologySpec topology;
  int trials = 10;
  std::uint64_t seed = 0;
  /// Move budget per convergence phase; the churn protocols reuse it as
  /// the step horizon and the scheduler kind as the measured move count.
  StepCount budget = 200'000'000;
  double faultRate = 0.0;  ///< churn protocols: P(one-node fault per move)
  int faultK = 1;          ///< recovery protocols: processors corrupted
  McTarget mcTarget = McTarget::kDftc;  ///< model-check: verified protocol
  int mcThreads = 8;       ///< model-check: explorer worker threads
  /// Resilience scenarios (kResilience) only:
  std::string faultPlan;   ///< resil::FaultPlan grammar text ("" = no faults)
  std::string adversary = "greedy";  ///< "greedy" | "lookahead"
  int lookahead = 2;       ///< rollout depth when adversary == "lookahead"
};

/// One trial's named metric samples, in a protocol-defined fixed order.
struct TrialResult {
  bool converged = true;
  std::vector<std::pair<std::string, double>> metrics;
  /// Wall-clock seconds the trial took, stamped by the runner around
  /// runTrial.  Feeds ScenarioResult::timing — observability data only,
  /// never part of metrics, CSV rows, or cached result payloads.
  double wallSeconds = 0;
  /// sim_guard_evals_total delta across the trial, stamped only when the
  /// runner's timing breakdown is on (-1 = not measured).  Process-wide
  /// counters make the delta meaningful only at --threads 1.
  double guardEvals = -1;
};

struct ScenarioResult {
  Scenario scenario;
  int nodeCount = 0;
  int edgeCount = 0;
  int trials = 0;
  int failedTrials = 0;  ///< budget exhausted before convergence
  /// Detected hardware cores on the machine that ran the scenario
  /// (recorded in reports; 1 flags core-count-dependent metrics as
  /// uninformative, e.g. model-check thread-scaling speedups).
  int cores = 0;
  /// Per-metric summaries over the converged trials only.
  std::map<std::string, Summary> metrics;
  /// Timing breakdown over ALL trials (runner-stamped wall clock, plus
  /// any future phase timings).  JSON reports emit it as a "timing"
  /// object; it never enters CSV rows or cached result payloads, so
  /// byte-identity of those artifacts is unaffected.
  std::map<std::string, Summary> timing;

  /// Summary for `name`; an empty (count == 0) Summary if absent.
  [[nodiscard]] Summary metric(const std::string& name) const;
};

/// The per-trial RNG seed: a splitmix64 mix of scenario seed and trial
/// index, so trial streams are decorrelated and independent of threading.
[[nodiscard]] std::uint64_t trialSeed(std::uint64_t scenarioSeed, int trial);

/// Executes a single trial of `s` on `g` (exposed for tests and for
/// callers that need raw per-trial data).
[[nodiscard]] TrialResult runTrial(const Graph& g, const Scenario& s,
                                   std::uint64_t seed);

class ExperimentRunner {
 public:
  /// threads == 0 picks std::thread::hardware_concurrency().
  explicit ExperimentRunner(int threads = 0);

  [[nodiscard]] int threads() const { return threads_; }

  /// Opt-in timing breakdown (exp_cli --timing): every trial additionally
  /// records its sim_guard_evals_total delta, and aggregation derives a
  /// guards-per-second rate into ScenarioResult::timing.  Default OFF —
  /// the timing map is JSON-only, and with the flag off reports stay
  /// byte-identical.  The counters are process-wide, so the per-trial
  /// deltas are only meaningful at --threads 1.
  void setTimingBreakdown(bool on) { timing_ = on; }

  /// Builds the scenario's topology and fans its trials over the pool.
  [[nodiscard]] ScenarioResult run(const Scenario& s) const;

  /// Same, but on a caller-provided graph (the topology spec is ignored);
  /// lets benches and tests run scenarios on ad-hoc graphs.
  [[nodiscard]] ScenarioResult runOnGraph(const Scenario& s,
                                          const Graph& g) const;

  /// Runs all scenarios, fanning the flattened (scenario, trial) job list
  /// over one worker pool — trials of different scenarios execute
  /// concurrently.  Result order follows scenario order and every trial
  /// keeps its trialSeed(scenario.seed, trial) stream, so the output is
  /// bit-identical to running the scenarios one after another.
  [[nodiscard]] std::vector<ScenarioResult> runAll(
      const std::vector<Scenario>& scenarios) const;

 private:
  int threads_;
  bool timing_ = false;
};

}  // namespace ssno::exp

#endif  // SSNO_EXP_RUNNER_HPP
