#include "exp/canon.hpp"

#include <charconv>
#include <map>
#include <sstream>
#include <stdexcept>

#include "exp/fmt.hpp"
#include "exp/scenario.hpp"

namespace ssno::exp {
namespace {

/// Full-consumption numeric parse; throws with the offending token.
template <typename T>
T parseNumber(const std::string& key, const std::string& value) {
  T out{};
  const char* first = value.data();
  const char* last = value.data() + value.size();
  const auto [ptr, ec] = std::from_chars(first, last, out);
  if (ec != std::errc{} || ptr != last)
    throw std::invalid_argument("canonical scenario: bad value in '" + key +
                                "=" + value + "'");
  return out;
}

void appendHex64(std::string& out, std::uint64_t v) {
  static constexpr char kHex[] = "0123456789abcdef";
  for (int shift = 60; shift >= 0; shift -= 4)
    out += kHex[(v >> shift) & 0xF];
}

}  // namespace

std::string Digest128::hex() const {
  std::string out;
  out.reserve(32);
  appendHex64(out, hi);
  appendHex64(out, lo);
  return out;
}

Digest128 fnv1a128(std::string_view data) {
  using u128 = unsigned __int128;
  // Reference FNV-1a 128-bit offset basis and prime (2^88 + 2^8 + 0x3b).
  u128 h = (u128{0x6c62272e07bb0142ull} << 64) | 0x62b821756295c58dull;
  const u128 prime = (u128{1} << 88) | 0x13b;
  for (const unsigned char c : data) {
    h ^= c;
    h *= prime;
  }
  return {static_cast<std::uint64_t>(h >> 64),
          static_cast<std::uint64_t>(h)};
}

std::string canonicalScenario(const Scenario& s) {
  // Fixed emission order; every field present; defaults written out.
  // Adding a field here REQUIRES bumping "canon=2" and the cache salt.
  // The fault plan is whitespace-free by grammar; an empty plan is the
  // "-" sentinel so the token is never empty.
  std::string out = "canon=2";
  out += " protocol=" + protocolKindName(s.protocol);
  out += " mc-target=" + mcTargetName(s.mcTarget);
  out += " daemon=" + daemonKindName(s.daemon);
  out += " topology=" + s.topology.name();
  out += " trials=" + std::to_string(s.trials);
  out += " seed=" + std::to_string(s.seed);
  out += " budget=" + std::to_string(s.budget);
  out += " rate=" + shortestDouble(s.faultRate);
  out += " k=" + std::to_string(s.faultK);
  out += " mc-threads=" + std::to_string(s.mcThreads);
  out += " fault-plan=" + (s.faultPlan.empty() ? "-" : s.faultPlan);
  out += " adversary=" + s.adversary;
  out += " lookahead=" + std::to_string(s.lookahead);
  return out;
}

Scenario parseCanonicalScenario(const std::string& text) {
  std::istringstream fields(text);
  std::string token;
  if (!(fields >> token) || token != "canon=2")
    throw std::invalid_argument(
        "canonical scenario: expected leading 'canon=2'");
  std::map<std::string, std::string> kv;
  while (fields >> token) {
    const auto eq = token.find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 == token.size())
      throw std::invalid_argument("canonical scenario: malformed token '" +
                                  token + "'");
    if (!kv.emplace(token.substr(0, eq), token.substr(eq + 1)).second)
      throw std::invalid_argument("canonical scenario: duplicate key '" +
                                  token.substr(0, eq) + "'");
  }
  static constexpr const char* kKeys[] = {
      "protocol", "mc-target", "daemon",     "topology",   "trials",
      "seed",     "budget",    "rate",       "k",          "mc-threads",
      "fault-plan", "adversary", "lookahead"};
  for (const char* key : kKeys)
    if (!kv.count(key))
      throw std::invalid_argument(std::string("canonical scenario: missing '") +
                                  key + "'");
  if (kv.size() != std::size(kKeys))
    throw std::invalid_argument("canonical scenario: unknown key present");

  Scenario s;
  s.protocol = parseProtocolKind(kv["protocol"]);
  s.mcTarget = parseMcTarget(kv["mc-target"]);
  s.daemon = parseDaemonKind(kv["daemon"]);
  s.topology = TopologySpec::parse(kv["topology"]);
  s.trials = parseNumber<int>("trials", kv["trials"]);
  s.seed = parseNumber<std::uint64_t>("seed", kv["seed"]);
  s.budget = parseNumber<StepCount>("budget", kv["budget"]);
  s.faultRate = parseNumber<double>("rate", kv["rate"]);
  s.faultK = parseNumber<int>("k", kv["k"]);
  s.mcThreads = parseNumber<int>("mc-threads", kv["mc-threads"]);
  s.faultPlan = kv["fault-plan"] == "-" ? std::string{} : kv["fault-plan"];
  s.adversary = kv["adversary"];
  s.lookahead = parseNumber<int>("lookahead", kv["lookahead"]);
  s.name = protocolKindName(s.protocol) +
           (s.protocol == ProtocolKind::kModelCheck
                ? ":" + mcTargetName(s.mcTarget)
                : std::string{}) +
           "/" + daemonKindName(s.daemon) + "/" + s.topology.name();
  return s;
}

Digest128 scenarioDigest(const Scenario& s, std::string_view salt) {
  std::string bytes(salt);
  bytes += '\n';
  bytes += canonicalScenario(s);
  return fnv1a128(bytes);
}

std::string resultPayload(const ScenarioResult& r) {
  std::string out;
  out += "nodes " + std::to_string(r.nodeCount) + "\n";
  out += "edges " + std::to_string(r.edgeCount) + "\n";
  out += "trials " + std::to_string(r.trials) + "\n";
  out += "failed " + std::to_string(r.failedTrials) + "\n";
  out += "cores " + std::to_string(r.cores) + "\n";
  for (const auto& [name, m] : r.metrics) {
    out += "metric " + name + " " + std::to_string(m.count) + " " +
           shortestDouble(m.min) + " " + shortestDouble(m.max) + " " +
           shortestDouble(m.mean) + " " + shortestDouble(m.stddev) + " " +
           shortestDouble(m.p50) + " " + shortestDouble(m.p95) + "\n";
  }
  return out;
}

ScenarioResult parseResultPayload(const std::string& payload) {
  std::istringstream in(payload);
  auto fail = [](const std::string& what) -> std::invalid_argument {
    return std::invalid_argument("result payload: " + what);
  };
  auto scalarLine = [&in, &fail](const char* key) -> std::string {
    std::string k, v;
    if (!(in >> k >> v) || k != key)
      throw fail(std::string("expected '") + key + "'");
    return v;
  };
  ScenarioResult r;
  r.nodeCount = parseNumber<int>("nodes", scalarLine("nodes"));
  r.edgeCount = parseNumber<int>("edges", scalarLine("edges"));
  r.trials = parseNumber<int>("trials", scalarLine("trials"));
  r.failedTrials = parseNumber<int>("failed", scalarLine("failed"));
  r.cores = parseNumber<int>("cores", scalarLine("cores"));
  std::string tag;
  while (in >> tag) {
    if (tag != "metric") throw fail("unexpected token '" + tag + "'");
    std::string name, count, mn, mx, mean, stddev, p50, p95;
    if (!(in >> name >> count >> mn >> mx >> mean >> stddev >> p50 >> p95))
      throw fail("truncated metric line");
    if (r.metrics.count(name)) throw fail("duplicate metric '" + name + "'");
    Summary m;
    m.count = parseNumber<int>("count", count);
    m.min = parseNumber<double>("min", mn);
    m.max = parseNumber<double>("max", mx);
    m.mean = parseNumber<double>("mean", mean);
    m.stddev = parseNumber<double>("stddev", stddev);
    m.p50 = parseNumber<double>("p50", p50);
    m.p95 = parseNumber<double>("p95", p95);
    r.metrics.emplace(name, m);
  }
  return r;
}

}  // namespace ssno::exp
