// Canonical scenario serialization and content-addressed result keys.
//
// canonicalScenario() renders every semantic field of a fully-resolved
// Scenario — protocol, daemon, topology spec, trials, seed, budget,
// fault rate, fault k, model-check target and threads — as one line of
// "key=value" tokens in a FIXED order with defaults written out
// explicitly.  Two consequences the result cache depends on:
//
//   * a field left at its default and a field set to that default
//     produce byte-identical text (defaults cannot change the key);
//   * the text round-trips: parseCanonicalScenario(canonicalScenario(s))
//     rebuilds a scenario whose canonical form (and therefore digest)
//     is identical, proved by tests/canon_test.cpp.
//
// The display name is a label, not semantics, and is excluded: two
// differently-named requests for the same work share one cache entry.
// The leading "canon=1" token versions the serialization itself —
// bump it (and the cache salt, see serve/cache.hpp) whenever a field
// is added, removed, or its meaning changes.
//
// resultPayload()/parseResultPayload() serialize the *result* half of a
// ScenarioResult (graph size, trial counts, cores, metric summaries) —
// everything except the Scenario, which the cache reattaches from the
// request so a hit under a different display name reports that name.
// Doubles go through shortestDouble (exact round-trip), so a payload
// parsed from the cache re-emits byte-identical CSV/JSON.
#ifndef SSNO_EXP_CANON_HPP
#define SSNO_EXP_CANON_HPP

#include <cstdint>
#include <string>
#include <string_view>

#include "exp/runner.hpp"

namespace ssno::exp {

/// 128-bit content digest (FNV-1a over the canonical bytes): wide
/// enough that distinct scenarios colliding is not a practical concern,
/// cheap enough to run on every cache probe.
struct Digest128 {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;

  /// 32 lowercase hex chars, hi word first.
  [[nodiscard]] std::string hex() const;

  friend bool operator==(const Digest128&, const Digest128&) = default;
};

/// FNV-1a with a 128-bit state (the reference offset/prime constants).
[[nodiscard]] Digest128 fnv1a128(std::string_view data);

/// The canonical one-line form described above (no trailing newline).
[[nodiscard]] std::string canonicalScenario(const Scenario& s);

/// Strict inverse of canonicalScenario(): every field required exactly
/// once, full-consumption numeric parses, unknown keys rejected; throws
/// std::invalid_argument.  The display name is rebuilt in the standard
/// "protocol[:target]/daemon/topology" form.
[[nodiscard]] Scenario parseCanonicalScenario(const std::string& text);

/// Content key for (salt, scenario): the digest of the salt, a newline,
/// and the canonical scenario text.
[[nodiscard]] Digest128 scenarioDigest(const Scenario& s,
                                       std::string_view salt);

/// Serializes the result fields of `r` (everything except r.scenario).
[[nodiscard]] std::string resultPayload(const ScenarioResult& r);

/// Strict inverse of resultPayload(); the returned result's `scenario`
/// is default-constructed (callers reattach their own).  Throws
/// std::invalid_argument on any malformed or trailing input.
[[nodiscard]] ScenarioResult parseResultPayload(const std::string& payload);

}  // namespace ssno::exp

#endif  // SSNO_EXP_CANON_HPP
