// Tiny shared formatting helpers for the exp subsystem.
#ifndef SSNO_EXP_FMT_HPP
#define SSNO_EXP_FMT_HPP

#include <charconv>
#include <string>
#include <system_error>

namespace ssno::exp {

/// Shortest decimal rendering that parses back to the identical double;
/// keeps spec names and CSV/JSON output byte-stable and round-trippable.
[[nodiscard]] inline std::string shortestDouble(double v) {
  char buf[32];
  const auto [end, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  return ec == std::errc{} ? std::string(buf, end) : "0";
}

}  // namespace ssno::exp

#endif  // SSNO_EXP_FMT_HPP
