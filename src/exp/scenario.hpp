// Scenario registry: names → runnable scenarios.
//
// Two kinds of names resolve:
//  * dynamic triples  "protocol/daemon/topology", e.g.
//    "stno/distributed/torus:4x4" or "dftno/round-robin/chordring:16:2,5" —
//    parsed on the fly (protocol and daemon by name, topology by the
//    TopologySpec grammar);
//  * presets — curated sweeps reproducing the paper experiments
//    (dftno-scaling, stno-height, stno-star-control, stno-scaling, churn,
//    daemon-sweep), each expanding to a vector of scenarios.
//
// resolve() accepts either and returns the scenario list ready for an
// ExperimentRunner.
#ifndef SSNO_EXP_SCENARIO_HPP
#define SSNO_EXP_SCENARIO_HPP

#include <string>
#include <vector>

#include "exp/runner.hpp"

namespace ssno::exp {

/// Inverse of protocolKindName(); throws std::invalid_argument.
[[nodiscard]] ProtocolKind parseProtocolKind(const std::string& name);

/// Inverse of daemonKindName(); throws std::invalid_argument.
[[nodiscard]] DaemonKind parseDaemonKind(const std::string& name);

/// Parses a "protocol/daemon/topology" triple; throws on malformed input.
[[nodiscard]] Scenario parseScenario(const std::string& name);

/// Names of the curated preset sweeps.
[[nodiscard]] std::vector<std::string> presetNames();

/// Expands a preset to its scenario list; throws on unknown names.
[[nodiscard]] std::vector<Scenario> makePreset(const std::string& name);

/// Preset name → its scenarios; otherwise a single parsed triple.
[[nodiscard]] std::vector<Scenario> resolve(const std::string& name);

}  // namespace ssno::exp

#endif  // SSNO_EXP_SCENARIO_HPP
