// Scenario registry: names → runnable scenarios.
//
// Two kinds of names resolve:
//  * dynamic triples  "protocol/daemon/topology", e.g.
//    "stno/distributed/torus:4x4" or "dftno/round-robin/chordring:16:2,5" —
//    parsed on the fly (protocol and daemon by name, topology by the
//    TopologySpec grammar).  The model-check kind takes its verification
//    target as a suffix: "model-check:dftc/central/path:3";
//  * presets — curated sweeps reproducing the paper experiments
//    (dftno-scaling, stno-height, stno-star-control, stno-scaling, churn,
//    daemon-sweep), each expanding to a vector of scenarios.
//
// resolve() accepts either and returns the scenario list ready for an
// ExperimentRunner.
//
// Scenario files (exp_cli --scenarios) hold one scenario per line so
// that sweeps can be version-controlled:
//
//   # comment lines and blank lines are skipped
//   protocol daemon topology [key=value ...]
//   dftno round-robin ring:64 trials=5 seed=7
//   dftno-churn round-robin grid:3x4 rate=0.002 budget=40000
//   model-check:dftc central path:3 mc-threads=4
//
// Recognized keys: trials, seed, budget, rate, k (faultK), mc-threads,
// fault-plan (resil::FaultPlan grammar, whitespace-free), adversary
// ("greedy" | "lookahead"), lookahead (rollout depth).
#ifndef SSNO_EXP_SCENARIO_HPP
#define SSNO_EXP_SCENARIO_HPP

#include <iosfwd>
#include <string>
#include <vector>

#include "exp/runner.hpp"

namespace ssno::exp {

/// Inverse of protocolKindName(); throws std::invalid_argument.
[[nodiscard]] ProtocolKind parseProtocolKind(const std::string& name);

/// Inverse of daemonKindName(); throws std::invalid_argument.
[[nodiscard]] DaemonKind parseDaemonKind(const std::string& name);

/// Inverse of mcTargetName(); throws std::invalid_argument.
[[nodiscard]] McTarget parseMcTarget(const std::string& name);

/// Parses a "protocol/daemon/topology" triple; throws on malformed input.
[[nodiscard]] Scenario parseScenario(const std::string& name);

/// Names of the curated preset sweeps.
[[nodiscard]] std::vector<std::string> presetNames();

/// Expands a preset to its scenario list; throws on unknown names.
[[nodiscard]] std::vector<Scenario> makePreset(const std::string& name);

/// Preset name → its scenarios; otherwise a single parsed triple.
[[nodiscard]] std::vector<Scenario> resolve(const std::string& name);

/// Keeps only the scenarios named `only` (exp_cli `run --only`, serve
/// submit "only").  Throws std::invalid_argument listing every valid
/// name when nothing matches, so a typo'd preset row is self-diagnosing.
[[nodiscard]] std::vector<Scenario> filterOnly(std::vector<Scenario> scenarios,
                                               const std::string& only);

/// Parses a scenario file (see the grammar above); throws
/// std::invalid_argument with the line number on malformed input.
[[nodiscard]] std::vector<Scenario> loadScenarios(std::istream& in);

/// Opens and parses `path`; throws std::runtime_error when unreadable.
[[nodiscard]] std::vector<Scenario> loadScenarioFile(const std::string& path);

}  // namespace ssno::exp

#endif  // SSNO_EXP_SCENARIO_HPP
