#include "resil/fault_plan.hpp"

#include <algorithm>
#include <cctype>
#include <stdexcept>
#include <string>

namespace ssno::resil {
namespace {

std::string stripSpace(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s)
    if (!std::isspace(static_cast<unsigned char>(c))) out.push_back(c);
  return out;
}

[[noreturn]] void fail(std::size_t item, const std::string& what) {
  throw std::invalid_argument("fault plan item " + std::to_string(item) +
                              ": " + what);
}

long long parseInt(std::size_t item, const std::string& text,
                   const std::string& what) {
  if (text.empty()) fail(item, what + " is empty");
  std::size_t used = 0;
  long long value = 0;
  try {
    value = std::stoll(text, &used);
  } catch (const std::exception&) {
    fail(item, what + " '" + text + "' is not an integer");
  }
  if (used != text.size())
    fail(item, what + " '" + text + "' has trailing characters");
  if (value < 0) fail(item, what + " must be >= 0, got " + text);
  return value;
}

/// Splits "key=value" after a known prefix; returns the value text.
std::string expectKeyValue(std::size_t item, const std::string& text,
                           const std::string& key) {
  if (text.rfind(key + "=", 0) != 0)
    fail(item, "expected '" + key + "=<int>', got '" + text + "'");
  return text.substr(key.size() + 1);
}

FaultEvent parseEvent(std::size_t item, const std::string& text) {
  const std::size_t atPos = text.find('@');
  if (atPos == std::string::npos)
    fail(item, "missing '@step=' / '@round=' trigger in '" + text + "'");
  const std::string spec = text.substr(0, atPos);
  const std::string trig = text.substr(atPos + 1);

  FaultEvent ev;
  if (spec == "scramble") {
    ev.kind = FaultEvent::Kind::kScramble;
  } else if (spec.rfind("burst:", 0) == 0) {
    ev.kind = FaultEvent::Kind::kBurst;
    ev.k = static_cast<int>(
        parseInt(item, expectKeyValue(item, spec.substr(6), "k"), "burst k"));
  } else if (spec.rfind("crash:", 0) == 0) {
    ev.kind = FaultEvent::Kind::kCrash;
    ev.p = static_cast<NodeId>(
        parseInt(item, expectKeyValue(item, spec.substr(6), "p"), "crash p"));
  } else {
    fail(item, "unknown fault '" + spec +
                   "' (expected burst:k=<int>, crash:p=<int>, or scramble)");
  }

  if (trig.rfind("step=", 0) == 0) {
    ev.trigger = FaultEvent::Trigger::kStep;
    ev.at = static_cast<StepCount>(parseInt(item, trig.substr(5), "step"));
  } else if (trig.rfind("round=", 0) == 0) {
    ev.trigger = FaultEvent::Trigger::kRound;
    ev.at = static_cast<StepCount>(parseInt(item, trig.substr(6), "round"));
  } else {
    fail(item, "unknown trigger '" + trig +
                   "' (expected step=<int> or round=<int>)");
  }
  return ev;
}

}  // namespace

FaultPlan FaultPlan::parse(const std::string& text) {
  // Tokenize on ';' first, then strip whitespace per item so both
  // "a; b" and "a;b" parse; wholly-blank items (trailing ';') are
  // ignored.  Item numbers in errors are 1-based over non-blank items.
  std::vector<std::string> items;
  std::string current;
  for (const char c : text) {
    if (c == ';') {
      items.push_back(current);
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  items.push_back(current);

  FaultPlan plan;
  int repeatCount = 1;
  long long repeatPeriod = -1;  // -1: derive from max trigger
  bool sawRepeat = false;
  std::size_t itemNo = 0;
  for (const std::string& rawItem : items) {
    const std::string item = stripSpace(rawItem);
    if (item.empty()) continue;
    ++itemNo;
    if (sawRepeat) fail(itemNo, "'repeat' must be the last item");
    if (item.rfind("repeat:", 0) == 0) {
      sawRepeat = true;
      std::string body = item.substr(7);
      const std::size_t atPos = body.find('@');
      if (atPos != std::string::npos) {
        repeatPeriod = parseInt(
            itemNo, expectKeyValue(itemNo, body.substr(atPos + 1), "every"),
            "repeat period");
        body = body.substr(0, atPos);
      }
      repeatCount =
          static_cast<int>(parseInt(itemNo, body, "repeat count"));
      if (repeatCount < 1) fail(itemNo, "repeat count must be >= 1");
      continue;
    }
    plan.events_.push_back(parseEvent(itemNo, item));
  }

  if (sawRepeat && plan.events_.empty())
    fail(1, "'repeat' needs at least one preceding event");
  if (repeatCount > 1) {
    if (repeatPeriod < 0) {
      StepCount maxAt = 0;
      for (const FaultEvent& ev : plan.events_)
        maxAt = std::max(maxAt, ev.at);
      repeatPeriod = static_cast<long long>(maxAt) + 1;
    }
    const std::size_t base = plan.events_.size();
    plan.events_.reserve(base * static_cast<std::size_t>(repeatCount));
    for (int copy = 1; copy < repeatCount; ++copy)
      for (std::size_t i = 0; i < base; ++i) {
        FaultEvent ev = plan.events_[i];
        ev.at += static_cast<StepCount>(copy) *
                 static_cast<StepCount>(repeatPeriod);
        plan.events_.push_back(ev);
      }
  }
  return plan;
}

std::string FaultPlan::render() const {
  std::string out;
  for (const FaultEvent& ev : events_) {
    if (!out.empty()) out.push_back(';');
    switch (ev.kind) {
      case FaultEvent::Kind::kBurst:
        out += "burst:k=" + std::to_string(ev.k);
        break;
      case FaultEvent::Kind::kCrash:
        out += "crash:p=" + std::to_string(ev.p);
        break;
      case FaultEvent::Kind::kScramble:
        out += "scramble";
        break;
    }
    out += (ev.trigger == FaultEvent::Trigger::kStep ? "@step=" : "@round=");
    out += std::to_string(ev.at);
  }
  return out;
}

void applyEvent(const FaultEvent& event, Protocol& protocol, Rng& rng) {
  FaultInjector injector(protocol);
  switch (event.kind) {
    case FaultEvent::Kind::kBurst:
      injector.corruptK(event.k, rng);  // validates k against n
      break;
    case FaultEvent::Kind::kCrash:
      if (event.p < 0 || event.p >= protocol.graph().nodeCount())
        throw std::invalid_argument(
            "fault plan: crash target p=" + std::to_string(event.p) +
            " out of range for n=" +
            std::to_string(protocol.graph().nodeCount()));
      injector.crashReset(event.p);
      break;
    case FaultEvent::Kind::kScramble:
      injector.scrambleAll(rng);
      break;
  }
}

}  // namespace ssno::resil
