// resil/search_daemon — adversarial daemons that HUNT for worst-case
// schedules instead of sampling random ones.
//
// SearchingDaemon is a central-style daemon (one move per step) that
// serves, at every step, the enabled move whose execution maximizes
// Protocol::potentialHint() — "stay as far from quiescence as the
// guarded commands allow".  Two scoring modes:
//
//  * greedy (lookahead = 0): tentatively execute each candidate, read
//    the potential, undo by restoring the actor's raw state (statements
//    write only the actor's own variables, so a single-node restore is
//    a bit-exact undo);
//  * bounded lookahead (lookahead = k >= 1): snapshot the whole
//    configuration through the protocol's StateArena columns (raw
//    vectors when no arenas are registered), roll each candidate out k
//    further inner-greedy moves, score the final potential, restore.
//
// The search is deterministic and consumes NO randomness: ties break
// toward the first candidate in node-major order, so the same seed
// (which only drives fault injection and initial scrambling) reproduces
// the same schedule bit-identically, and the Simulator's debug
// cross-check (shadow clone runs legacySelect first, then the real
// daemon runs selectInto; both selections and RNG states must match)
// holds because scoring mutations are perfectly undone.
//
// Fairness safeguard: DFTNO is only guaranteed to stabilize under a
// weakly fair daemon, so a pure greedy adversary could starve it
// forever and every episode would be a meaningless budget-exhaustion.
// The daemon tracks per-MOVE ages — (node, action) granularity —
// counting enabled-selections since the move last executed; once an
// age reaches the fairness bound that move executes (most starved
// first, node-major first on ties).  Node-level ages are not enough:
// the greedy adversary keeps every node busy with token moves while
// the continuously-enabled EdgeLabel corrections never run, a livelock
// that per-node bookkeeping calls "fair".  The age also survives
// enabledness flicker (briefly neutralizing a victim through a
// neighbor's move cannot reset its counter), so the override dominates
// continuously-enabled time: maximally slow within weak fairness, but
// always convergent.
//
// Every served move is appended to schedule(); feed that to a
// ReplayDaemon to re-drive the identical computation (the certification
// path: a worst-case report ships its schedule, and replaying it must
// reproduce the exact move count).
#ifndef SSNO_RESIL_SEARCH_DAEMON_HPP
#define SSNO_RESIL_SEARCH_DAEMON_HPP

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/daemon.hpp"
#include "core/protocol.hpp"
#include "core/state_arena.hpp"
#include "core/types.hpp"

namespace ssno::resil {

class SearchingDaemon final : public Daemon {
 public:
  /// `lookahead` = extra inner-greedy moves rolled out per candidate
  /// (0 = pure greedy).  `fairnessBound` = enabled-selections a move
  /// may wait unexecuted before it is force-served; 0 picks the
  /// default 16n.
  explicit SearchingDaemon(Protocol& protocol, int lookahead = 0,
                           int fairnessBound = 0);

  void selectInto(const EnabledView& enabled, Rng& rng,
                  std::vector<Move>& out) override;
  void legacySelect(std::span<const Move> enabled, Rng& rng,
                    std::vector<Move>& out) override;
  [[nodiscard]] std::unique_ptr<Daemon> clone() const override {
    return std::make_unique<SearchingDaemon>(*this);
  }
  [[nodiscard]] std::string name() const override;

  /// The moves served so far, in order (the worst-case schedule).
  [[nodiscard]] const std::vector<Move>& schedule() const {
    return schedule_;
  }
  void clearSchedule() { schedule_.clear(); }

 private:
  void choose(std::span<const Move> enabled, std::vector<Move>& out);
  [[nodiscard]] double scoreGreedy(const Move& m);
  [[nodiscard]] double scoreLookahead(const Move& m);
  void saveConfiguration();
  void restoreConfiguration();

  Protocol* protocol_;
  int lookahead_;
  int fairnessBound_;
  std::vector<Move> schedule_;

  // Fairness ages, indexed node*actionCount+action: selections at
  // which the move was enabled since it last executed (persisting
  // across enabledness flicker).
  std::vector<StepCount> age_;

  // Reused buffers.
  std::vector<Move> viewMoves_;   // selectInto's materialized candidates
  std::vector<Move> rollout_;     // inner-rollout enabled moves
  bool arenasCollected_ = false;
  std::vector<StateArena*> arenas_;
  std::vector<StateArena::Scratch> scratch_;
  std::vector<NodeId> allNodes_;  // identity list for arena snapshots
  std::vector<int> savedConfig_;  // raw fallback snapshot
};

/// Serves a prerecorded schedule move by move; the certification
/// replayer.  Throws std::runtime_error when the schedule runs out or
/// a scheduled move is not enabled (the recorded computation and the
/// replayed one have diverged — the report was not reproducible).
/// Consumes no randomness.
class ReplayDaemon final : public Daemon {
 public:
  explicit ReplayDaemon(std::vector<Move> schedule)
      : schedule_(std::move(schedule)) {}

  void selectInto(const EnabledView& enabled, Rng& rng,
                  std::vector<Move>& out) override;
  void legacySelect(std::span<const Move> enabled, Rng& rng,
                    std::vector<Move>& out) override;
  [[nodiscard]] std::unique_ptr<Daemon> clone() const override {
    return std::make_unique<ReplayDaemon>(*this);
  }
  [[nodiscard]] std::string name() const override { return "replay"; }

  /// Moves served so far (== the cursor into the schedule).
  [[nodiscard]] std::size_t served() const { return cursor_; }

 private:
  std::vector<Move> schedule_;
  std::size_t cursor_ = 0;
};

}  // namespace ssno::resil

#endif  // SSNO_RESIL_SEARCH_DAEMON_HPP
