#include "resil/search_daemon.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "core/assert.hpp"
#include "obs/metrics.hpp"

namespace ssno::resil {

namespace {
const obs::Histogram kSearchNs =
    obs::Registry::global().histogram("resil_search_ns");
const obs::Counter kScoredMoves =
    obs::Registry::global().counter("resil_scored_moves_total");
const obs::Counter kRolloutMoves =
    obs::Registry::global().counter("resil_rollout_moves_total");
}  // namespace

SearchingDaemon::SearchingDaemon(Protocol& protocol, int lookahead,
                                 int fairnessBound)
    : protocol_(&protocol),
      lookahead_(lookahead < 0 ? 0 : lookahead),
      fairnessBound_(fairnessBound) {
  // Default bound 16n: the adversary's damage scales with how long it
  // may starve a move, and 16n measures ~3.4x the random-daemon move
  // count on the DFTNO ring presets — past the 2x certification floor
  // with margin, while still converging in O(bound * corrections)
  // moves, far inside any realistic budget.
  if (fairnessBound_ <= 0)
    fairnessBound_ = 16 * protocol.graph().nodeCount();
  if (fairnessBound_ < 1) fairnessBound_ = 1;
}

std::string SearchingDaemon::name() const {
  if (lookahead_ == 0) return "search-greedy";
  return "search-lookahead:" + std::to_string(lookahead_);
}

void SearchingDaemon::selectInto(const EnabledView& enabled, Rng& /*rng*/,
                                 std::vector<Move>& out) {
  viewMoves_.clear();
  enabled.appendMoves(viewMoves_);
  choose(viewMoves_, out);
}

void SearchingDaemon::legacySelect(std::span<const Move> enabled,
                                   Rng& /*rng*/, std::vector<Move>& out) {
  choose(enabled, out);
}

void SearchingDaemon::choose(std::span<const Move> enabled,
                             std::vector<Move>& out) {
  SSNO_EXPECTS(!enabled.empty());
  const obs::ScopedTimer searchTimer(kSearchNs);
  kScoredMoves.inc(enabled.size());
  const auto actions = static_cast<std::size_t>(protocol_->actionCount());
  const auto slots =
      static_cast<std::size_t>(protocol_->graph().nodeCount()) * actions;
  if (age_.size() != slots) age_.assign(slots, 0);
  const auto slot = [actions](const Move& m) {
    return static_cast<std::size_t>(m.node) * actions +
           static_cast<std::size_t>(m.action);
  };

  // Age pass: every enabled MOVE has been waiting one more selection to
  // be executed.  Ages are per (node, action), not per node: serving a
  // node through one action must not launder the starvation of another
  // (DFTNO's adversarial livelock rides exactly that — the greedy
  // daemon keeps every node busy with token moves while the
  // continuously-enabled EdgeLabel corrections never run).  The age
  // also deliberately survives enabledness flicker (it only resets when
  // the move executes), so briefly neutralizing a victim through a
  // neighbor's move cannot reset its counter.
  for (const Move& m : enabled) ++age_[slot(m)];

  // Fairness override: if some enabled move has waited fairnessBound_
  // selections, it executes NOW (most starved first; node-major first
  // on ties) — any scheduler that keeps postponing it stops being
  // weakly fair, since these ages dominate continuously-enabled time.
  Move forced{kNoNode, -1};
  StepCount forcedAge = static_cast<StepCount>(fairnessBound_) - 1;
  for (const Move& m : enabled) {
    if (age_[slot(m)] > forcedAge) {
      forcedAge = age_[slot(m)];
      forced = m;
    }
  }

  Move best = forced;
  if (best.node == kNoNode) {
    if (lookahead_ > 0) saveConfiguration();
    double bestScore = 0.0;
    for (const Move& m : enabled) {
      const double s = lookahead_ > 0 ? scoreLookahead(m) : scoreGreedy(m);
      if (best.node == kNoNode || s > bestScore) {
        best = m;
        bestScore = s;
      }
    }
  }
  SSNO_ASSERT(best.node != kNoNode);

  age_[slot(best)] = 0;
  schedule_.push_back(best);
  out.clear();
  out.push_back(best);
}

double SearchingDaemon::scoreGreedy(const Move& m) {
  // Statements write only the actor's own variables, so restoring the
  // actor's raw vector is a bit-exact undo of the tentative execution.
  const std::vector<int> saved = protocol_->rawNode(m.node);
  protocol_->execute(m.node, m.action);
  const double score = protocol_->potentialHint();
  protocol_->setRawNode(m.node, saved);
  return score;
}

double SearchingDaemon::scoreLookahead(const Move& m) {
  // Precondition: saveConfiguration() ran since the last real mutation.
  protocol_->execute(m.node, m.action);
  for (int depth = 0; depth < lookahead_; ++depth) {
    rollout_ = protocol_->enabledMoves();
    if (rollout_.empty()) break;
    kRolloutMoves.inc(rollout_.size());
    Move inner{kNoNode, -1};
    double innerScore = 0.0;
    for (const Move& c : rollout_) {
      const double s = scoreGreedy(c);
      if (inner.node == kNoNode || s > innerScore) {
        inner = c;
        innerScore = s;
      }
    }
    protocol_->execute(inner.node, inner.action);
  }
  const double score = protocol_->potentialHint();
  restoreConfiguration();
  return score;
}

void SearchingDaemon::saveConfiguration() {
  if (!arenasCollected_) {
    arenas_.clear();
    protocol_->collectArenas(arenas_);
    scratch_.resize(arenas_.size());
    arenasCollected_ = true;
  }
  const auto n = static_cast<std::size_t>(protocol_->graph().nodeCount());
  if (allNodes_.size() != n) {
    allNodes_.resize(n);
    std::iota(allNodes_.begin(), allNodes_.end(), 0);
  }
  if (!arenas_.empty()) {
    for (std::size_t i = 0; i < arenas_.size(); ++i)
      arenas_[i]->snapshotNodes(allNodes_, scratch_[i]);
  } else {
    savedConfig_ = protocol_->rawConfiguration();
  }
}

void SearchingDaemon::restoreConfiguration() {
  if (!arenas_.empty()) {
    for (std::size_t i = 0; i < arenas_.size(); ++i)
      arenas_[i]->restoreNodes(allNodes_, scratch_[i]);
    // Arena restores bypass the mutation wrappers; re-dirty everything
    // the rollout may have touched (deduplicated by the dirty flags).
    for (const NodeId p : allNodes_) protocol_->noteExternalWrite(p);
  } else {
    protocol_->setRawConfiguration(savedConfig_);
  }
}

void ReplayDaemon::selectInto(const EnabledView& enabled, Rng& /*rng*/,
                              std::vector<Move>& out) {
  if (cursor_ >= schedule_.size())
    throw std::runtime_error("replay daemon: schedule exhausted at step " +
                             std::to_string(cursor_));
  const Move m = schedule_[cursor_];
  if (!enabled.enabled(m.node, m.action))
    throw std::runtime_error(
        "replay daemon: scheduled move (" + std::to_string(m.node) + "," +
        std::to_string(m.action) + ") not enabled at step " +
        std::to_string(cursor_) + " — replay diverged");
  ++cursor_;
  out.clear();
  out.push_back(m);
}

void ReplayDaemon::legacySelect(std::span<const Move> enabled, Rng& /*rng*/,
                                std::vector<Move>& out) {
  if (cursor_ >= schedule_.size())
    throw std::runtime_error("replay daemon: schedule exhausted at step " +
                             std::to_string(cursor_));
  const Move m = schedule_[cursor_];
  if (std::find(enabled.begin(), enabled.end(), m) == enabled.end())
    throw std::runtime_error(
        "replay daemon: scheduled move (" + std::to_string(m.node) + "," +
        std::to_string(m.action) + ") not enabled at step " +
        std::to_string(cursor_) + " — replay diverged");
  ++cursor_;
  out.clear();
  out.push_back(m);
}

}  // namespace ssno::resil
