#include "resil/campaign.hpp"

#include <algorithm>
#include <stdexcept>

#include "core/fault.hpp"
#include "core/scheduler.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace ssno::resil {

namespace {
const obs::Counter kEpisodes =
    obs::Registry::global().counter("resil_episodes_total");
const obs::Counter kInjections =
    obs::Registry::global().counter("resil_injections_total");
// Whole-step time inside an episode; together with resil_search_ns
// (fed by SearchingDaemon::choose) this splits a trial into
// search-the-adversary vs execute-the-protocol time.
const obs::Histogram kStepNs =
    obs::Registry::global().histogram("resil_step_ns");
}  // namespace

EpisodeResult runEpisode(Protocol& protocol, Daemon& daemon, Rng& rng,
                         const EpisodeOptions& options,
                         const std::function<bool()>& goal) {
  EpisodeResult r;
  if (options.scrambleFirst) protocol.randomize(rng);

  Simulator sim(protocol, daemon, rng);
  FaultImpactTracker tracker(protocol.graph().nodeCount());
  sim.setStatusObserver([&tracker](std::span<const NodeId> changed,
                                   bool fullInvalidate,
                                   const EnabledView& now) {
    tracker.onStatusChanges(changed, fullInvalidate, now);
  });

  const std::vector<FaultEvent>& events = options.plan.events();
  std::vector<char> fired(events.size(), 0);
  std::size_t firedCount = 0;
  const auto closeWindow = [&] {
    r.footprintMax = std::max(r.footprintMax, tracker.footprintCount());
  };
  const auto fire = [&](std::size_t i) {
    closeWindow();
    tracker.resetFootprint();
    applyEvent(events[i], protocol, rng);
    fired[i] = 1;
    ++firedCount;
    ++r.injections;
  };

  while (true) {
    // Fire every due event, in plan order (step triggers compare against
    // daemon steps taken, round triggers against completed rounds).
    for (std::size_t i = 0; i < events.size(); ++i) {
      if (fired[i]) continue;
      const bool due = events[i].trigger == FaultEvent::Trigger::kStep
                           ? r.steps >= events[i].at
                           : sim.roundsSoFar() >= events[i].at;
      if (due) fire(i);
    }
    if (firedCount == events.size() && goal()) {
      r.converged = true;
      break;
    }
    if (r.moves >= options.budget) break;
    const obs::ScopedTimer stepTimer(kStepNs);
    const std::vector<Move>& executed = sim.stepOnce();
    if (executed.empty()) {
      if (firedCount < events.size()) {
        // Terminal with events pending: force-fire the earliest pending
        // one so every plan completes (its trigger can never come due —
        // no further steps or rounds will happen).
        for (std::size_t i = 0; i < events.size(); ++i)
          if (!fired[i]) {
            fire(i);
            break;
          }
        continue;
      }
      break;  // terminal and the goal does not hold
    }
    ++r.steps;
    r.moves += static_cast<StepCount>(executed.size());
    r.schedule.insert(r.schedule.end(), executed.begin(), executed.end());
  }
  closeWindow();
  r.rounds = sim.roundsSoFar();
  kEpisodes.inc();
  kInjections.inc(static_cast<std::uint64_t>(r.injections));
  return r;
}

std::uint64_t campaignTrialSeed(std::uint64_t seed, int trial) {
  // splitmix64 over seed + trial index (never returns zero).
  std::uint64_t z =
      seed + 0x9E3779B97F4A7C15ULL * (static_cast<std::uint64_t>(trial) + 1);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  z ^= z >> 31;
  return z == 0 ? 0x9E3779B97F4A7C15ULL : z;
}

CampaignReport CampaignRunner::run(const CampaignOptions& options) const {
  CampaignReport report;
  report.trials = options.trials;
  std::vector<double> moves, rounds, footprint;
  moves.reserve(static_cast<std::size_t>(options.trials));
  rounds.reserve(static_cast<std::size_t>(options.trials));
  footprint.reserve(static_cast<std::size_t>(options.trials));
  for (int t = 0; t < options.trials; ++t) {
    const std::unique_ptr<Protocol> protocol = protocols_();
    const std::unique_ptr<Daemon> daemon = daemons_(*protocol);
    Rng rng(campaignTrialSeed(options.seed, t));
    const std::function<bool()> goal = goals_(*protocol);
    EpisodeOptions eo;
    eo.budget = options.budget;
    eo.plan = options.plan;
    EpisodeResult er;
    {
      obs::TraceSpan trialSpan("resil_trial");
      trialSpan.arg("trial", static_cast<std::uint64_t>(t));
      er = runEpisode(*protocol, *daemon, rng, eo, goal);
      trialSpan.arg("moves", static_cast<std::uint64_t>(er.moves));
      trialSpan.arg("injections", static_cast<std::uint64_t>(er.injections));
    }
    if (er.converged) ++report.converged;
    moves.push_back(static_cast<double>(er.moves));
    rounds.push_back(static_cast<double>(er.rounds));
    footprint.push_back(static_cast<double>(er.footprintMax));
    if (report.worstTrial < 0 || er.moves > report.worstMoves) {
      report.worstTrial = t;
      report.worstMoves = er.moves;
      report.worstSchedule = std::move(er.schedule);
    }
  }
  report.moves = summarize(std::move(moves));
  report.rounds = summarize(std::move(rounds));
  report.footprint = summarize(std::move(footprint));
  report.verdict = report.converged == report.trials ? "converged"
                                                     : "budget-exhausted";
  report.worstScheduleText = serializeSchedule(report.worstSchedule);
  return report;
}

std::string serializeSchedule(const std::vector<Move>& s) {
  std::string out;
  for (const Move& m : s) {
    if (!out.empty()) out.push_back(',');
    out += std::to_string(m.node);
    out.push_back(':');
    out += std::to_string(m.action);
  }
  return out;
}

std::vector<Move> parseSchedule(const std::string& text) {
  std::vector<Move> out;
  if (text.empty()) return out;
  std::size_t start = 0;
  while (start <= text.size()) {
    std::size_t end = text.find(',', start);
    if (end == std::string::npos) end = text.size();
    const std::string item = text.substr(start, end - start);
    const std::size_t colon = item.find(':');
    if (colon == std::string::npos || colon == 0 || colon + 1 == item.size())
      throw std::invalid_argument("parseSchedule: bad item '" + item + "'");
    try {
      out.push_back(Move{std::stoi(item.substr(0, colon)),
                         std::stoi(item.substr(colon + 1))});
    } catch (const std::invalid_argument&) {
      throw std::invalid_argument("parseSchedule: bad item '" + item + "'");
    } catch (const std::out_of_range&) {
      throw std::invalid_argument("parseSchedule: bad item '" + item + "'");
    }
    start = end + 1;
  }
  return out;
}

}  // namespace ssno::resil
