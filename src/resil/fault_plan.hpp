// resil/fault_plan — a small text grammar for scripted mid-run fault
// campaigns, driving core/fault.hpp's injectors through the Simulator.
//
// A plan is a ';'-separated list of items (whitespace around items and
// separators is ignored when parsing; the canonical rendering has none,
// so a plan embeds as a single whitespace-free token in scenario files
// and in the canonical scenario text):
//
//   plan    := item (';' item)* | ''          (empty plan: no events)
//   item    := event | repeat
//   event   := spec '@' trigger
//   spec    := 'burst:k=' INT                  corruptK(k) — k random victims
//            | 'crash:p=' INT                  crashReset(p) — all-zero state
//            | 'scramble'                      scrambleAll — every processor
//   trigger := 'step=' INT | 'round=' INT      daemon steps / async rounds
//   repeat  := 'repeat:' INT ['@every=' INT]   (at most one, last item only)
//
// 'repeat:R' replicates the event list R times total; copy i (0-based)
// shifts every trigger by i·period, where the period is '@every=P' when
// given and otherwise the largest trigger value in the plan plus one
// (so consecutive copies cannot collide).  parse() expands the repeat,
// so events() is always the flat fired-in-this-order list and render()
// emits the expanded canonical text — parse(render(p)) round-trips
// exactly (pinned by tests/resil_test.cpp and fault_plan_test golden
// text).  Parse errors carry the 1-based item number.
#ifndef SSNO_RESIL_FAULT_PLAN_HPP
#define SSNO_RESIL_FAULT_PLAN_HPP

#include <string>
#include <vector>

#include "core/fault.hpp"
#include "core/rng.hpp"
#include "core/types.hpp"

namespace ssno::resil {

struct FaultEvent {
  enum class Kind { kBurst, kCrash, kScramble };
  enum class Trigger { kStep, kRound };

  Kind kind = Kind::kScramble;
  Trigger trigger = Trigger::kStep;
  StepCount at = 0;  ///< fires once the step/round counter reaches this
  int k = 0;         ///< kBurst: number of victims
  NodeId p = 0;      ///< kCrash: the processor to reset

  friend bool operator==(const FaultEvent&, const FaultEvent&) = default;
};

class FaultPlan {
 public:
  FaultPlan() = default;

  /// Parses the grammar above; throws std::invalid_argument with the
  /// 1-based item number on malformed input ("fault plan item 3: ...").
  [[nodiscard]] static FaultPlan parse(const std::string& text);

  /// Canonical expanded text (no whitespace, no repeat item); the empty
  /// string for an empty plan.  parse(render()) round-trips exactly.
  [[nodiscard]] std::string render() const;

  /// The expanded events, in the order they fire when due together.
  [[nodiscard]] const std::vector<FaultEvent>& events() const {
    return events_;
  }
  [[nodiscard]] bool empty() const { return events_.empty(); }

  friend bool operator==(const FaultPlan&, const FaultPlan&) = default;

 private:
  std::vector<FaultEvent> events_;
};

/// Fires one event against the protocol (through a FaultInjector).
/// Burst victims and scramble states draw from `rng` (the same stream
/// as the episode, keeping a whole campaign replayable from one seed);
/// crash targets are fixed.  Throws std::invalid_argument when a
/// crash/burst target is out of range for the protocol's graph.
void applyEvent(const FaultEvent& event, Protocol& protocol, Rng& rng);

}  // namespace ssno::resil

#endif  // SSNO_RESIL_FAULT_PLAN_HPP
