// resil/campaign — resilience campaigns: drive a protocol from an
// arbitrary initial configuration under a (possibly adversarial) daemon
// while a FaultPlan injects mid-run faults, measure recovery cost and
// disturbance footprint, and certify the outcome.
//
// An *episode* is one run: scramble → step under the daemon, firing
// fault-plan events as their step/round triggers come due (each
// injection closes the previous disturbance-footprint window) → stop
// when the goal holds with every event fired (converged), the move
// budget is spent, or the protocol goes terminal.  The executed moves
// are recorded so a worst-case episode can be re-driven bit-identically
// by a ReplayDaemon (see search_daemon.hpp) — the certification story:
// a "this schedule takes M moves" claim ships the schedule.
//
// A *campaign* sweeps seeds: per trial a fresh protocol + trial RNG,
// one episode, then worst/avg/p95 aggregation over moves, rounds, and
// footprint.  The verdict is "converged" only when EVERY trial
// converged; otherwise "budget-exhausted" and the offending trial's
// schedule is serialized for replay.
#ifndef SSNO_RESIL_CAMPAIGN_HPP
#define SSNO_RESIL_CAMPAIGN_HPP

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/daemon.hpp"
#include "core/protocol.hpp"
#include "core/rng.hpp"
#include "obs/stats.hpp"
#include "core/types.hpp"
#include "resil/fault_plan.hpp"

namespace ssno::resil {

struct EpisodeOptions {
  StepCount budget = 1'000'000;  ///< move budget per episode
  FaultPlan plan;                ///< fired by step/round triggers
  bool scrambleFirst = true;     ///< arbitrary initial configuration
};

struct EpisodeResult {
  bool converged = false;   ///< goal held after every event fired
  StepCount moves = 0;      ///< individual actions executed
  StepCount steps = 0;      ///< daemon steps
  StepCount rounds = 0;     ///< asynchronous rounds
  int injections = 0;       ///< fault-plan events fired
  std::size_t footprintMax = 0;  ///< largest disturbance footprint
  /// Every executed move in order.  One entry per step under central-
  /// style daemons (the replayable case); multi-move steps flatten.
  std::vector<Move> schedule;
};

/// Runs one episode.  `goal` is checked before every step but only
/// counts once all plan events have fired (a fault scheduled later must
/// still get its chance to disturb the system).  If the protocol goes
/// terminal while events are pending, the earliest pending event is
/// force-fired so plans always complete.
EpisodeResult runEpisode(Protocol& protocol, Daemon& daemon, Rng& rng,
                         const EpisodeOptions& options,
                         const std::function<bool()>& goal);

struct CampaignOptions {
  int trials = 8;
  std::uint64_t seed = 1;
  StepCount budget = 1'000'000;
  FaultPlan plan;
};

struct CampaignReport {
  int trials = 0;
  int converged = 0;           ///< trials whose episode converged
  Summary moves;               ///< per-trial stabilization moves
  Summary rounds;              ///< per-trial rounds
  Summary footprint;           ///< per-trial max disturbance footprint
  std::string verdict;         ///< "converged" | "budget-exhausted"
  int worstTrial = -1;         ///< trial index with the most moves
  StepCount worstMoves = 0;
  std::vector<Move> worstSchedule;
  std::string worstScheduleText;  ///< serializeSchedule(worstSchedule)
};

class CampaignRunner {
 public:
  using ProtocolFactory = std::function<std::unique_ptr<Protocol>()>;
  /// Builds the daemon for one trial (a SearchingDaemon needs the
  /// protocol reference, hence the parameter).
  using DaemonFactory = std::function<std::unique_ptr<Daemon>(Protocol&)>;
  /// Builds the convergence predicate over the trial's protocol.
  using GoalFactory = std::function<std::function<bool()>(Protocol&)>;

  CampaignRunner(ProtocolFactory protocols, DaemonFactory daemons,
                 GoalFactory goals)
      : protocols_(std::move(protocols)),
        daemons_(std::move(daemons)),
        goals_(std::move(goals)) {}

  [[nodiscard]] CampaignReport run(const CampaignOptions& options) const;

 private:
  ProtocolFactory protocols_;
  DaemonFactory daemons_;
  GoalFactory goals_;
};

/// Derives trial t's RNG seed from the campaign seed (splitmix64 over
/// seed + t, never zero) — the same trial is reproducible in isolation.
[[nodiscard]] std::uint64_t campaignTrialSeed(std::uint64_t seed, int trial);

/// "node:action,node:action,..." — the replay wire format ("" for an
/// empty schedule).  parseSchedule inverts it; throws
/// std::invalid_argument on malformed text.
[[nodiscard]] std::string serializeSchedule(const std::vector<Move>& s);
[[nodiscard]] std::vector<Move> parseSchedule(const std::string& text);

}  // namespace ssno::resil

#endif  // SSNO_RESIL_CAMPAIGN_HPP
