// DFS spanning trees, for the paper's Chapter-5 observation:
//   "if the spanning tree maintained in STNO is a DFS tree of the graph,
//    then the naming could be similar for both algorithms, provided the
//    respective ordering at individual nodes is the same."
// With port order as the common ordering, STNO over the port-order DFS
// tree assigns exactly the DFS preorder numbers — i.e. DFTNO's names.
// (tests/equivalence_test.cpp and bench_ablation_dfstree verify this.)
#ifndef SSNO_SPTREE_DFS_TREE_HPP
#define SSNO_SPTREE_DFS_TREE_HPP

#include <vector>

#include "core/graph.hpp"
#include "core/types.hpp"
#include "dftc/dftc.hpp"

namespace ssno {

/// Reference: the DFS tree obtained by a centralized depth-first
/// traversal from the root that scans neighbors in port order.
[[nodiscard]] std::vector<NodeId> portOrderDfsTree(const Graph& g);

/// DFS preorder numbers (visit order) of the same traversal; this is the
/// name assignment DFTNO stabilizes to.
[[nodiscard]] std::vector<int> portOrderDfsPreorder(const Graph& g);

/// Extracts the DFS tree from a live token circulation: stabilizes the
/// given substrate (it is self-stabilizing, so this just runs it), then
/// records each processor's adopted parent over one clean round.
/// Demonstrates that the circulation itself yields the spanning tree a
/// DFS-tree STNO would need.
[[nodiscard]] std::vector<NodeId> dfsTreeFromCirculation(Dftc& dftc,
                                                         StepCount maxMoves);

}  // namespace ssno

#endif  // SSNO_SPTREE_DFS_TREE_HPP
