// Self-stabilizing DFS spanning tree via lexicographic path words, in
// the style of Collin-Dolev ("Self-stabilizing depth-first search",
// IPL 1994) — the second spanning-tree substrate family the paper's
// related work points at.
//
// Every non-root processor maintains the *path word* w_p: the sequence
// of local port numbers taken from the root to p, plus the parent port.
// The root's word is the empty sequence.  Candidate words arrive from
// neighbors as w_q ⊕ port_q(p); a processor corrects itself whenever its
// word or parent is not the lexicographically smallest candidate
// (shorter-prefix-first ordering), with words longer than N−1 treated
// as ⊤ (invalid).  The silent fixpoint assigns every processor the
// lex-minimal root path — whose union is exactly the **port-order DFS
// tree** (the "first DFS tree"): tested against the centralized
// reference and exhaustively model checked on small graphs.
//
// With this substrate, STNO over a DFS tree becomes fully
// self-stabilizing end to end, making Chapter 5's closing observation
// (DFS-tree STNO naming ≡ DFTNO naming) a theorem about two complete
// self-stabilizing stacks rather than an ablation with a fixed tree.
//
// Space: O(n·log Δ) bits per processor (the path word), versus the BFS
// tree's O(log n + log Δ) — the classic price of a DFS tree, and the
// reason the paper's DFTNO (token-based, O(log n) substrate overhead)
// is the cheaper route to DFS naming.
#ifndef SSNO_SPTREE_LEX_DFS_TREE_HPP
#define SSNO_SPTREE_LEX_DFS_TREE_HPP

#include <optional>
#include <string>
#include <vector>

#include "core/protocol.hpp"
#include "core/state_arena.hpp"
#include "sptree/tree_view.hpp"

namespace ssno {

class LexDfsTree final : public Protocol, public TreeView {
 public:
  static constexpr int kFix = 0;
  static constexpr int kActionCount = 1;

  explicit LexDfsTree(Graph graph);

  // ---- Protocol interface ----
  [[nodiscard]] int actionCount() const override { return kActionCount; }
  [[nodiscard]] std::string actionName(int action) const override;
  // Deliberately NOT overriding evaluateGuards: the guard compares
  // variable-length lexicographic candidate words held in paged
  // VarColumn rows, so there is no fixed-stride column layout to scan —
  // each comparison is a data-dependent word walk with early exit, and
  // a "batch" version would just re-run the scalar comparisons with no
  // shared loads to fuse.  The scalar default is the right path here.
  [[nodiscard]] bool enabled(NodeId p, int action) const override;
  [[nodiscard]] std::uint64_t localStateCount(NodeId p) const override;
  [[nodiscard]] std::uint64_t encodeNode(NodeId p) const override;
  [[nodiscard]] std::vector<int> rawNode(NodeId p) const override;
  [[nodiscard]] std::size_t rawNodeLength(NodeId) const override {
    return static_cast<std::size_t>(graph().nodeCount()) + 3;
  }
  [[nodiscard]] std::string dumpNode(NodeId p) const override;

  // ---- TreeView interface ----
  [[nodiscard]] NodeId parentOf(NodeId p) const override;
  [[nodiscard]] const Graph& treeGraph() const override { return graph(); }

  void collectArenas(std::vector<StateArena*>& out) override {
    out.push_back(&arena_);
  }

  // ---- Substrate-specific API ----
  /// ⊤ (no valid path known) is represented as an absent word.
  /// (Materializes a copy; the live word is a VarColumn row — use
  /// wordRow()/hasWord() on hot paths.)
  [[nodiscard]] std::optional<std::vector<Port>> word(NodeId p) const {
    if (!has_[p]) return std::nullopt;
    const std::span<const int> row = word_.row(p);
    return std::vector<Port>(row.begin(), row.end());
  }
  [[nodiscard]] bool hasWord(NodeId p) const { return has_[p] != 0; }
  [[nodiscard]] std::span<const int> wordRow(NodeId p) const {
    return word_.row(p);
  }

  /// L: silent, i.e. every word is the lex-min root path and every
  /// parent attains it (then parentOf is the port-order DFS tree).
  [[nodiscard]] bool isLegitimate() const;

  /// Per-node variable bits: word (≤ (N−1)·log Δmax) + parent port.
  [[nodiscard]] double stateBits(NodeId p) const;

 protected:
  // ---- Protocol mutation hooks ----
  void doExecute(NodeId p, int action) override;
  void doRandomizeNode(NodeId p, Rng& rng) override;
  void doDecodeNode(NodeId p, std::uint64_t code) override;
  void doSetRawNode(NodeId p, std::span<const int> values) override;

 private:
  /// A candidate word w_q ⊕ port_q(p), represented without
  /// materialization: the neighbor's word row plus one appended entry.
  /// valid == false is ⊤ (neighbor's word absent or result too long).
  struct Cand {
    bool valid = false;
    std::span<const int> prefix;  // the neighbor's word row
    int last = 0;                 // appended entry port_q(p)
    Port port = kNoPort;          // p's port the candidate arrives on
  };
  /// Lexicographic shorter-prefix-first order on candidates (⊤ largest).
  [[nodiscard]] static bool candLess(const Cand& a, const Cand& b);
  [[nodiscard]] Cand candidateVia(NodeId p, Port l) const;
  [[nodiscard]] Cand bestCandidate(NodeId p) const;
  /// Does p's current word equal the candidate?
  [[nodiscard]] bool wordEquals(NodeId p, const Cand& c) const;

  // Per node: the path word (has=0 is ⊤; entries in a paged VarColumn
  // pool — variable length up to N−1, so a fixed-stride column would
  // cost O(n²) ints) and the parent port.
  StateArena arena_;
  NodeColumn par_;
  NodeColumn has_;   // 1 iff the word is present (0 = ⊤)
  VarColumn word_;
  std::vector<int> scratch_;  // decode/randomize staging buffer
  int maxDegree_ = 0;
};

}  // namespace ssno

#endif  // SSNO_SPTREE_LEX_DFS_TREE_HPP
