// Self-stabilizing BFS spanning tree — the substrate assumed by STNO
// (standing in for the spanning-tree constructions of [1, 2, 8, 12]).
//
// The classic silent distance protocol: the root is fixed at distance 0
// (and stores nothing); every other processor p maintains
//   dist_p ∈ {1..N−1}   its believed hop distance to the root,
//   par_p  ∈ {0..Δp−1}  the port of its chosen parent,
// and runs the single correction action
//   Fix(p):  dist_p ≠ 1 + min_q distOf(q)  ∨  distOf(parent) ≠ min
//            -->  dist_p := min(1 + min_q distOf(q), N−1);
//                 par_p := first port attaining the min.
// With the domain bounded by N−1 and the root pinned at 0, fictitious
// distances rise monotonically until corrected, and the protocol is
// silent exactly when dist equals the true BFS distance everywhere and
// every parent attains the minimum — a spanning tree of shortest paths.
// Convergence holds under any (even unfair) daemon, which is what lets
// the paper run STNO with an unfair daemon.
#ifndef SSNO_SPTREE_BFS_TREE_HPP
#define SSNO_SPTREE_BFS_TREE_HPP

#include <string>
#include <vector>

#include "core/protocol.hpp"
#include "core/state_arena.hpp"
#include "sptree/tree_view.hpp"

namespace ssno {

class BfsTree final : public Protocol, public TreeView {
 public:
  static constexpr int kFix = 0;
  static constexpr int kActionCount = 1;

  explicit BfsTree(Graph graph);

  // ---- Protocol interface ----
  [[nodiscard]] int actionCount() const override { return kActionCount; }
  [[nodiscard]] std::string actionName(int action) const override;
  [[nodiscard]] bool enabled(NodeId p, int action) const override;
  /// Columnar kernel: one fused min-distance walk per node over the
  /// dist_ column (vs enabled()'s separate min + parent lookups through
  /// the virtual call).  Bit-identical to enabled() per Debug asserts.
  void evaluateGuards(std::span<const NodeId> nodes,
                      std::uint64_t* masks) const override;
  [[nodiscard]] std::uint64_t localStateCount(NodeId p) const override;
  [[nodiscard]] std::uint64_t encodeNode(NodeId p) const override;
  [[nodiscard]] std::vector<int> rawNode(NodeId p) const override;
  [[nodiscard]] std::string dumpNode(NodeId p) const override;
  void collectArenas(std::vector<StateArena*>& out) override {
    out.push_back(&arena_);
  }

  /// The root snapshots empty; overlay protocols split here.
  [[nodiscard]] std::size_t rawNodeLength(NodeId p) const override {
    return p == graph().root() ? 0 : 2;
  }

  // ---- TreeView interface ----
  [[nodiscard]] NodeId parentOf(NodeId p) const override;
  [[nodiscard]] const Graph& treeGraph() const override { return graph(); }

  // ---- Substrate-specific API ----
  [[nodiscard]] int distOf(NodeId p) const {
    return p == graph().root() ? 0 : dist_[p];
  }

  /// L_ST: dist equals the true BFS distance everywhere and every parent
  /// attains it (equivalently: no action enabled — the protocol is
  /// silent — and the parent pointers form a BFS spanning tree).
  [[nodiscard]] bool isLegitimate() const;

  /// Height of the current parent structure; -1 if not a spanning tree.
  [[nodiscard]] int currentHeight() const;

  /// Per-node variable bits: log N (dist) + log Δp (par).
  [[nodiscard]] double stateBits(NodeId p) const;

 protected:
  // ---- Protocol mutation hooks ----
  void doExecute(NodeId p, int action) override;
  void doRandomizeNode(NodeId p, Rng& rng) override;
  void doDecodeNode(NodeId p, std::uint64_t code) override;
  void doSetRawNode(NodeId p, std::span<const int> values) override;

 private:
  [[nodiscard]] int minNeighborDist(NodeId p) const;
  [[nodiscard]] Port firstMinPort(NodeId p) const;

  // SoA state columns (raw layout {dist, par}; root snapshots empty).
  StateArena arena_;
  NodeColumn dist_;  // root entry unused (kept 0)
  NodeColumn par_;   // port; root entry unused (kept 0)
};

}  // namespace ssno

#endif  // SSNO_SPTREE_BFS_TREE_HPP
