#include "sptree/lex_dfs_tree.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "core/assert.hpp"

namespace ssno {

LexDfsTree::LexDfsTree(Graph graph)
    : Protocol(std::move(graph)),
      arena_(this->graph()),
      par_(arena_.nodeColumn(0)),
      has_(arena_.nodeColumn(0)),
      word_(arena_.varColumn()) {
  SSNO_EXPECTS(this->graph().nodeCount() >= 2);
  SSNO_EXPECTS(this->graph().isConnected());
  maxDegree_ = this->graph().maxDegree();
  has_[this->graph().root()] = 1;  // the root's word is ε, permanently
}

std::string LexDfsTree::actionName(int action) const {
  SSNO_EXPECTS(action == kFix);
  return "LexFix";
}

bool LexDfsTree::candLess(const Cand& a, const Cand& b) {
  if (!a.valid) return false;  // ⊤ is never smaller
  if (!b.valid) return true;   // anything < ⊤
  const std::size_t lenA = a.prefix.size() + 1;
  const std::size_t lenB = b.prefix.size() + 1;
  const std::size_t common = std::min(lenA, lenB);
  for (std::size_t i = 0; i < common; ++i) {
    const int ai = i < a.prefix.size() ? a.prefix[i] : a.last;
    const int bi = i < b.prefix.size() ? b.prefix[i] : b.last;
    if (ai != bi) return ai < bi;
  }
  return lenA < lenB;
}

LexDfsTree::Cand LexDfsTree::candidateVia(NodeId p, Port l) const {
  const NodeId q = graph().neighborAt(p, l);
  Cand c;
  if (!has_[q]) return c;
  if (word_.length(q) + 1 > graph().nodeCount() - 1)
    return c;  // longer than any simple path: ⊤
  c.valid = true;
  c.prefix = word_.row(q);
  c.last = graph().portOf(q, p);
  c.port = l;
  return c;
}

LexDfsTree::Cand LexDfsTree::bestCandidate(NodeId p) const {
  Cand best;  // starts at ⊤
  for (Port l = 0; l < graph().degree(p); ++l) {
    const Cand cand = candidateVia(p, l);
    if (candLess(cand, best)) best = cand;
  }
  return best;
}

bool LexDfsTree::wordEquals(NodeId p, const Cand& c) const {
  if (!c.valid) return !has_[p];
  if (!has_[p]) return false;
  const std::span<const int> w = word_.row(p);
  if (w.size() != c.prefix.size() + 1) return false;
  if (w.back() != c.last) return false;
  return std::equal(c.prefix.begin(), c.prefix.end(), w.begin());
}

bool LexDfsTree::enabled(NodeId p, int action) const {
  if (action != kFix || p == graph().root()) return false;
  const Cand best = bestCandidate(p);
  if (!wordEquals(p, best)) return true;
  // Word already minimal; the recorded parent must attain it.
  return best.valid && par_[p] != best.port;
}

void LexDfsTree::doExecute(NodeId p, int action) {
  SSNO_EXPECTS(enabled(p, action));
  const Cand best = bestCandidate(p);
  if (best.valid) {
    // best.prefix aliases the word pool; stage through scratch_ because
    // setRow may relocate it.
    scratch_.assign(best.prefix.begin(), best.prefix.end());
    scratch_.push_back(best.last);
    has_[p] = 1;
    word_.setRow(p, scratch_);
  } else {
    has_[p] = 0;
    word_.setRow(p, {});  // absent words keep a canonical empty row
  }
  par_[p] = best.port == kNoPort ? 0 : best.port;
}

void LexDfsTree::doRandomizeNode(NodeId p, Rng& rng) {
  if (p == graph().root()) return;  // the root's word is hard-wired
  // Random word: random length 0..n−1 (or ⊤), random alphabet entries.
  const int n = graph().nodeCount();
  if (rng.chance(0.15)) {
    has_[p] = 0;
    word_.setRow(p, {});
  } else {
    const int len = rng.below(n);
    scratch_.resize(static_cast<std::size_t>(len));
    for (int& x : scratch_) x = rng.below(std::max(1, maxDegree_));
    has_[p] = 1;
    word_.setRow(p, scratch_);
  }
  par_[p] = rng.below(graph().degree(p));
}

std::uint64_t LexDfsTree::localStateCount(NodeId p) const {
  if (p == graph().root()) return 1;
  // Words of length 0..n−1 over the max-degree alphabet, plus ⊤, times
  // the parent port.  (Exhaustive checking is only feasible on tiny
  // graphs, as for the other protocols.)
  const std::uint64_t a = static_cast<std::uint64_t>(std::max(1, maxDegree_));
  std::uint64_t words = 1;  // ⊤
  std::uint64_t lenCount = 1;
  for (int k = 0; k < graph().nodeCount(); ++k) {
    words += lenCount;
    lenCount *= a;
  }
  return words * static_cast<std::uint64_t>(graph().degree(p));
}

std::uint64_t LexDfsTree::encodeNode(NodeId p) const {
  if (p == graph().root()) return 0;
  const std::uint64_t a = static_cast<std::uint64_t>(std::max(1, maxDegree_));
  // Word index: 0 = ⊤; otherwise 1 + Σ_{k<len} a^k + value-as-base-a.
  std::uint64_t widx = 0;
  if (has_[p]) {
    const std::span<const int> w = word_.row(p);
    widx = 1;
    std::uint64_t lenCount = 1;
    for (std::size_t k = 0; k < w.size(); ++k) {
      widx += lenCount;
      lenCount *= a;
    }
    std::uint64_t value = 0;
    for (int x : w) value = value * a + static_cast<std::uint64_t>(x);
    widx += value;  // offset within the length block
  }
  return widx * static_cast<std::uint64_t>(graph().degree(p)) +
         static_cast<std::uint64_t>(par_[p]);
}

void LexDfsTree::doDecodeNode(NodeId p, std::uint64_t code) {
  SSNO_EXPECTS(code < localStateCount(p));
  if (p == graph().root()) return;
  const std::uint64_t deg = static_cast<std::uint64_t>(graph().degree(p));
  par_[p] = static_cast<Port>(code % deg);
  std::uint64_t widx = code / deg;
  if (widx == 0) {
    has_[p] = 0;
    word_.setRow(p, {});
    return;
  }
  --widx;
  const std::uint64_t a = static_cast<std::uint64_t>(std::max(1, maxDegree_));
  std::uint64_t lenCount = 1;
  int len = 0;
  while (widx >= lenCount) {
    widx -= lenCount;
    lenCount *= a;
    ++len;
  }
  scratch_.resize(static_cast<std::size_t>(len));
  for (int k = len - 1; k >= 0; --k) {
    scratch_[static_cast<std::size_t>(k)] = static_cast<int>(widx % a);
    widx /= a;
  }
  has_[p] = 1;
  word_.setRow(p, scratch_);
}

std::vector<int> LexDfsTree::rawNode(NodeId p) const {
  // Layout: [par, hasWord, len, entries...] padded to fixed length n+3.
  const int n = graph().nodeCount();
  std::vector<int> out(static_cast<std::size_t>(n) + 3, 0);
  out[0] = par_[p];
  out[1] = has_[p] ? 1 : 0;
  if (has_[p]) {
    const std::span<const int> w = word_.row(p);
    out[2] = static_cast<int>(w.size());
    std::copy(w.begin(), w.end(), out.begin() + 3);
  }
  return out;
}

void LexDfsTree::doSetRawNode(NodeId p, std::span<const int> values) {
  SSNO_EXPECTS(values.size() ==
               static_cast<std::size_t>(graph().nodeCount()) + 3);
  if (p == graph().root()) return;  // hard-wired ε
  par_[p] = values[0];
  if (values[1] == 0) {
    has_[p] = 0;
    word_.setRow(p, {});
    return;
  }
  const auto len = static_cast<std::size_t>(values[2]);
  has_[p] = 1;
  word_.setRow(p, values.subspan(3, len));
}

std::string LexDfsTree::dumpNode(NodeId p) const {
  std::ostringstream out;
  out << "w=";
  if (!has_[p]) {
    out << "T";
  } else {
    out << '(';
    const std::span<const int> w = word_.row(p);
    for (std::size_t k = 0; k < w.size(); ++k) {
      if (k) out << ',';
      out << w[k];
    }
    out << ')';
  }
  if (p != graph().root())
    out << " par=" << graph().neighborAt(p, par_[p]);
  return out.str();
}

NodeId LexDfsTree::parentOf(NodeId p) const {
  if (p == graph().root()) return kNoNode;
  return graph().neighborAt(p, par_[p]);
}

bool LexDfsTree::isLegitimate() const {
  for (NodeId p = 0; p < graph().nodeCount(); ++p)
    if (enabled(p, kFix)) return false;
  return true;
}

double LexDfsTree::stateBits(NodeId p) const {
  if (p == graph().root()) return 0.0;
  const double logA = std::max(1.0, std::log2(std::max(2, maxDegree_)));
  return (graph().nodeCount() - 1) * logA +
         std::log2(std::max(2, graph().degree(p)));
}

}  // namespace ssno
