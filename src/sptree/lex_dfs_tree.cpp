#include "sptree/lex_dfs_tree.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "core/assert.hpp"

namespace ssno {

LexDfsTree::LexDfsTree(Graph graph)
    : Protocol(std::move(graph)),
      arena_(this->graph()),
      par_(arena_.nodeColumn(0)) {
  SSNO_EXPECTS(this->graph().nodeCount() >= 2);
  SSNO_EXPECTS(this->graph().isConnected());
  maxDegree_ = this->graph().maxDegree();
  const std::size_t n = static_cast<std::size_t>(this->graph().nodeCount());
  word_.assign(n, std::nullopt);
  word_[static_cast<std::size_t>(this->graph().root())] =
      std::vector<Port>{};  // the root's word is ε, permanently
}

std::string LexDfsTree::actionName(int action) const {
  SSNO_EXPECTS(action == kFix);
  return "LexFix";
}

bool LexDfsTree::lexLess(const std::optional<std::vector<Port>>& a,
                         const std::optional<std::vector<Port>>& b) {
  if (!a.has_value()) return false;  // ⊤ is never smaller
  if (!b.has_value()) return true;   // anything < ⊤
  return std::lexicographical_compare(a->begin(), a->end(), b->begin(),
                                      b->end());
}

std::optional<std::vector<Port>> LexDfsTree::candidateVia(NodeId p,
                                                          Port l) const {
  const NodeId q = graph().neighborAt(p, l);
  const auto& wq = word_[static_cast<std::size_t>(q)];
  if (!wq.has_value()) return std::nullopt;
  if (static_cast<int>(wq->size()) + 1 > graph().nodeCount() - 1)
    return std::nullopt;  // longer than any simple path: ⊤
  std::vector<Port> cand = *wq;
  cand.push_back(graph().portOf(q, p));
  return cand;
}

LexDfsTree::Best LexDfsTree::bestCandidate(NodeId p) const {
  Best best;  // starts at ⊤
  for (Port l = 0; l < graph().degree(p); ++l) {
    auto cand = candidateVia(p, l);
    if (lexLess(cand, best.word)) {
      best.word = std::move(cand);
      best.port = l;
    }
  }
  return best;
}

bool LexDfsTree::enabled(NodeId p, int action) const {
  if (action != kFix || p == graph().root()) return false;
  const Best best = bestCandidate(p);
  if (word_[static_cast<std::size_t>(p)] != best.word) return true;
  // Word already minimal; the recorded parent must attain it.
  return best.word.has_value() && par_[p] != best.port;
}

void LexDfsTree::doExecute(NodeId p, int action) {
  SSNO_EXPECTS(enabled(p, action));
  Best best = bestCandidate(p);
  word_[static_cast<std::size_t>(p)] = std::move(best.word);
  par_[p] =
      best.port == kNoPort ? 0 : best.port;
}

void LexDfsTree::doRandomizeNode(NodeId p, Rng& rng) {
  if (p == graph().root()) return;  // the root's word is hard-wired
  // Random word: random length 0..n−1 (or ⊤), random alphabet entries.
  const int n = graph().nodeCount();
  if (rng.chance(0.15)) {
    word_[static_cast<std::size_t>(p)] = std::nullopt;
  } else {
    const int len = rng.below(n);
    std::vector<Port> w(static_cast<std::size_t>(len));
    for (auto& x : w) x = rng.below(std::max(1, maxDegree_));
    word_[static_cast<std::size_t>(p)] = std::move(w);
  }
  par_[p] = rng.below(graph().degree(p));
}

std::uint64_t LexDfsTree::localStateCount(NodeId p) const {
  if (p == graph().root()) return 1;
  // Words of length 0..n−1 over the max-degree alphabet, plus ⊤, times
  // the parent port.  (Exhaustive checking is only feasible on tiny
  // graphs, as for the other protocols.)
  const std::uint64_t a = static_cast<std::uint64_t>(std::max(1, maxDegree_));
  std::uint64_t words = 1;  // ⊤
  std::uint64_t lenCount = 1;
  for (int k = 0; k < graph().nodeCount(); ++k) {
    words += lenCount;
    lenCount *= a;
  }
  return words * static_cast<std::uint64_t>(graph().degree(p));
}

std::uint64_t LexDfsTree::encodeNode(NodeId p) const {
  if (p == graph().root()) return 0;
  const std::uint64_t a = static_cast<std::uint64_t>(std::max(1, maxDegree_));
  // Word index: 0 = ⊤; otherwise 1 + Σ_{k<len} a^k + value-as-base-a.
  std::uint64_t widx = 0;
  const auto& w = word_[static_cast<std::size_t>(p)];
  if (w.has_value()) {
    widx = 1;
    std::uint64_t lenCount = 1;
    for (std::size_t k = 0; k < w->size(); ++k) {
      widx += lenCount;
      lenCount *= a;
    }
    std::uint64_t value = 0;
    for (Port x : *w) value = value * a + static_cast<std::uint64_t>(x);
    widx += value;  // offset within the length block
  }
  return widx * static_cast<std::uint64_t>(graph().degree(p)) +
         static_cast<std::uint64_t>(par_[p]);
}

void LexDfsTree::doDecodeNode(NodeId p, std::uint64_t code) {
  SSNO_EXPECTS(code < localStateCount(p));
  if (p == graph().root()) return;
  const std::uint64_t deg = static_cast<std::uint64_t>(graph().degree(p));
  par_[p] = static_cast<Port>(code % deg);
  std::uint64_t widx = code / deg;
  if (widx == 0) {
    word_[static_cast<std::size_t>(p)] = std::nullopt;
    return;
  }
  --widx;
  const std::uint64_t a = static_cast<std::uint64_t>(std::max(1, maxDegree_));
  std::uint64_t lenCount = 1;
  int len = 0;
  while (widx >= lenCount) {
    widx -= lenCount;
    lenCount *= a;
    ++len;
  }
  std::vector<Port> w(static_cast<std::size_t>(len));
  for (int k = len - 1; k >= 0; --k) {
    w[static_cast<std::size_t>(k)] = static_cast<Port>(widx % a);
    widx /= a;
  }
  word_[static_cast<std::size_t>(p)] = std::move(w);
}

std::vector<int> LexDfsTree::rawNode(NodeId p) const {
  // Layout: [par, hasWord, len, entries...] padded to fixed length n+2.
  const int n = graph().nodeCount();
  std::vector<int> out(static_cast<std::size_t>(n) + 3, 0);
  out[0] = par_[p];
  const auto& w = word_[static_cast<std::size_t>(p)];
  out[1] = w.has_value() ? 1 : 0;
  if (w.has_value()) {
    out[2] = static_cast<int>(w->size());
    for (std::size_t k = 0; k < w->size(); ++k) out[3 + k] = (*w)[k];
  }
  return out;
}

void LexDfsTree::doSetRawNode(NodeId p, const std::vector<int>& values) {
  SSNO_EXPECTS(values.size() ==
               static_cast<std::size_t>(graph().nodeCount()) + 3);
  if (p == graph().root()) return;  // hard-wired ε
  par_[p] = values[0];
  if (values[1] == 0) {
    word_[static_cast<std::size_t>(p)] = std::nullopt;
    return;
  }
  const int len = values[2];
  std::vector<Port> w(static_cast<std::size_t>(len));
  for (int k = 0; k < len; ++k) w[static_cast<std::size_t>(k)] = values[3 + static_cast<std::size_t>(k)];
  word_[static_cast<std::size_t>(p)] = std::move(w);
}

std::string LexDfsTree::dumpNode(NodeId p) const {
  std::ostringstream out;
  const auto& w = word_[static_cast<std::size_t>(p)];
  out << "w=";
  if (!w.has_value()) {
    out << "T";
  } else {
    out << '(';
    for (std::size_t k = 0; k < w->size(); ++k) {
      if (k) out << ',';
      out << (*w)[k];
    }
    out << ')';
  }
  if (p != graph().root())
    out << " par=" << graph().neighborAt(p, par_[p]);
  return out.str();
}

NodeId LexDfsTree::parentOf(NodeId p) const {
  if (p == graph().root()) return kNoNode;
  return graph().neighborAt(p, par_[p]);
}

bool LexDfsTree::isLegitimate() const {
  for (NodeId p = 0; p < graph().nodeCount(); ++p)
    if (enabled(p, kFix)) return false;
  return true;
}

double LexDfsTree::stateBits(NodeId p) const {
  if (p == graph().root()) return 0.0;
  const double logA = std::max(1.0, std::log2(std::max(2, maxDegree_)));
  return (graph().nodeCount() - 1) * logA +
         std::log2(std::max(2, graph().degree(p)));
}

}  // namespace ssno
