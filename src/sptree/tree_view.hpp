// TreeView — the rooted-spanning-tree interface STNO reads.
//
// The paper's STNO assumes "an underlying protocol maintains a spanning
// tree of the rooted network" exposing, at each processor, its ancestor
// A_p and descendant set D_p, and a role classification root / internal /
// leaf.  Both the self-stabilizing BFS tree (bfs_tree.hpp) and fixed
// trees (e.g. a DFS tree extracted from the token circulation) implement
// this interface.
#ifndef SSNO_SPTREE_TREE_VIEW_HPP
#define SSNO_SPTREE_TREE_VIEW_HPP

#include <vector>

#include "core/graph.hpp"
#include "core/types.hpp"

namespace ssno {

enum class TreeRole { kRoot, kInternal, kLeaf };

class TreeView {
 public:
  virtual ~TreeView() = default;

  /// A_p: the processor's current parent (kNoNode for the root).
  [[nodiscard]] virtual NodeId parentOf(NodeId p) const = 0;

  /// D_p: processors that currently designate p as their parent, in p's
  /// port order (this ordering makes STNO's Distribute deterministic).
  [[nodiscard]] std::vector<NodeId> childrenOf(NodeId p) const;

  [[nodiscard]] TreeRole roleOf(NodeId p) const;

  [[nodiscard]] virtual const Graph& treeGraph() const = 0;
};

/// An immutable spanning tree given by a parent vector (parent[root] ==
/// kNoNode).  Used for STNO-on-a-fixed-tree experiments and for model
/// checking the orientation layer with the substrate held legitimate.
class FixedTree final : public TreeView {
 public:
  FixedTree(const Graph& graph, std::vector<NodeId> parent);

  [[nodiscard]] NodeId parentOf(NodeId p) const override {
    return parent_[static_cast<std::size_t>(p)];
  }
  [[nodiscard]] const Graph& treeGraph() const override { return *graph_; }

  [[nodiscard]] const std::vector<NodeId>& parents() const { return parent_; }

 private:
  const Graph* graph_;
  std::vector<NodeId> parent_;
};

}  // namespace ssno

#endif  // SSNO_SPTREE_TREE_VIEW_HPP
