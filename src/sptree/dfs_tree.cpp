#include "sptree/dfs_tree.hpp"

#include "core/assert.hpp"
#include "core/daemon.hpp"
#include "core/scheduler.hpp"

namespace ssno {

namespace {

void dfsVisit(const Graph& g, NodeId p, std::vector<bool>& seen,
              std::vector<NodeId>& parent, std::vector<int>& order,
              int& next) {
  seen[static_cast<std::size_t>(p)] = true;
  order[static_cast<std::size_t>(p)] = next++;
  for (NodeId q : g.neighbors(p)) {
    if (!seen[static_cast<std::size_t>(q)]) {
      parent[static_cast<std::size_t>(q)] = p;
      dfsVisit(g, q, seen, parent, order, next);
    }
  }
}

}  // namespace

std::vector<NodeId> portOrderDfsTree(const Graph& g) {
  std::vector<bool> seen(static_cast<std::size_t>(g.nodeCount()), false);
  std::vector<NodeId> parent(static_cast<std::size_t>(g.nodeCount()), kNoNode);
  std::vector<int> order(static_cast<std::size_t>(g.nodeCount()), 0);
  int next = 0;
  dfsVisit(g, g.root(), seen, parent, order, next);
  SSNO_ENSURES(next == g.nodeCount());
  return parent;
}

std::vector<int> portOrderDfsPreorder(const Graph& g) {
  std::vector<bool> seen(static_cast<std::size_t>(g.nodeCount()), false);
  std::vector<NodeId> parent(static_cast<std::size_t>(g.nodeCount()), kNoNode);
  std::vector<int> order(static_cast<std::size_t>(g.nodeCount()), 0);
  int next = 0;
  dfsVisit(g, g.root(), seen, parent, order, next);
  return order;
}

std::vector<NodeId> dfsTreeFromCirculation(Dftc& dftc, StepCount maxMoves) {
  // Phase 1: let the substrate stabilize under a weakly fair daemon
  // (DFTNO's fairness assumption, Chapter 5).
  StepCount spent = 0;
  {
    RoundRobinDaemon daemon;
    Rng rng(0x5eed);
    Simulator sim(dftc, daemon, rng);
    const RunStats stats =
        sim.runUntil([&dftc] { return dftc.isLegitimate(); }, maxMoves);
    SSNO_EXPECTS(stats.converged);
    spent += stats.moves;
  }
  // Phase 2: record adopted parents over one clean round.
  std::vector<NodeId> parent(
      static_cast<std::size_t>(dftc.graph().nodeCount()), kNoNode);
  int roundStarts = 0;
  TokenHooks hooks;
  hooks.onRoundStart = [&roundStarts](NodeId) { ++roundStarts; };
  hooks.onForward = [&parent, &roundStarts](NodeId p, NodeId from) {
    if (roundStarts == 1) parent[static_cast<std::size_t>(p)] = from;
  };
  dftc.setHooks(std::move(hooks));
  while (roundStarts < 2) {
    const std::vector<Move> moves = dftc.enabledMoves();
    SSNO_ASSERT(moves.size() == 1);  // legitimate orbit is deterministic
    dftc.execute(moves.front().node, moves.front().action);
    SSNO_EXPECTS(++spent <= maxMoves);
  }
  dftc.setHooks(TokenHooks{});
  return parent;
}

}  // namespace ssno
