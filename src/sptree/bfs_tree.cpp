#include "sptree/bfs_tree.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "core/assert.hpp"
#include "core/graph_algo.hpp"

namespace ssno {

BfsTree::BfsTree(Graph graph)
    : Protocol(std::move(graph)),
      arena_(this->graph()),
      dist_(arena_.nodeColumn(1)),
      par_(arena_.nodeColumn(0)) {
  SSNO_EXPECTS(this->graph().nodeCount() >= 2);
  SSNO_EXPECTS(this->graph().isConnected());
  // A deterministic (still possibly illegitimate) initial state; tests
  // that need adversarial states call randomize().
}

std::string BfsTree::actionName(int action) const {
  SSNO_EXPECTS(action == kFix);
  return "TreeFix";
}

int BfsTree::minNeighborDist(NodeId p) const {
  int best = graph().nodeCount();  // above any stored value
  for (NodeId q : graph().neighbors(p)) best = std::min(best, distOf(q));
  return best;
}

Port BfsTree::firstMinPort(NodeId p) const {
  const int m = minNeighborDist(p);
  for (Port l = 0; l < graph().degree(p); ++l)
    if (distOf(graph().neighborAt(p, l)) == m) return l;
  SSNO_ASSERT(false);
  return kNoPort;
}

bool BfsTree::enabled(NodeId p, int action) const {
  if (action != kFix || p == graph().root()) return false;
  const int m = minNeighborDist(p);
  const int want = std::min(m + 1, graph().nodeCount() - 1);
  if (dist_[p] != want) return true;
  const NodeId parent =
      graph().neighborAt(p, par_[p]);
  return distOf(parent) != m;
}

void BfsTree::evaluateGuards(std::span<const NodeId> nodes,
                             std::uint64_t* masks) const {
  const NodeId root = graph().root();
  const int n = graph().nodeCount();
  const int* dist = dist_.data().data();
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const NodeId p = nodes[i];
    if (p == root) {
      masks[i] = 0;
      continue;
    }
    int m = n;  // above any stored value
    for (const NodeId q : graph().neighbors(p))
      m = std::min(m, q == root ? 0 : dist[q]);
    const int want = std::min(m + 1, n - 1);
    bool fix = dist[p] != want;
    if (!fix) {
      const NodeId parent = graph().neighborAt(p, par_[p]);
      fix = (parent == root ? 0 : dist[parent]) != m;
    }
    masks[i] = fix ? std::uint64_t{1} : std::uint64_t{0};
  }
}

void BfsTree::doExecute(NodeId p, int action) {
  SSNO_EXPECTS(enabled(p, action));
  const int m = minNeighborDist(p);
  dist_[p] =
      std::min(m + 1, graph().nodeCount() - 1);
  par_[p] = firstMinPort(p);
}

void BfsTree::doRandomizeNode(NodeId p, Rng& rng) {
  if (p == graph().root()) return;
  dist_[p] = rng.between(1, graph().nodeCount() - 1);
  par_[p] = rng.below(graph().degree(p));
}

std::vector<int> BfsTree::rawNode(NodeId p) const {
  if (p == graph().root()) return {};
  return {dist_[p],
          par_[p]};
}

void BfsTree::doSetRawNode(NodeId p, std::span<const int> values) {
  if (p == graph().root()) {
    SSNO_EXPECTS(values.empty());
    return;
  }
  SSNO_EXPECTS(values.size() == 2);
  dist_[p] = values[0];
  par_[p] = values[1];
}

std::uint64_t BfsTree::localStateCount(NodeId p) const {
  if (p == graph().root()) return 1;  // the root stores nothing
  // dist ∈ {1..N−1}, par ∈ {0..Δp−1}
  return static_cast<std::uint64_t>(graph().nodeCount() - 1) *
         static_cast<std::uint64_t>(graph().degree(p));
}

std::uint64_t BfsTree::encodeNode(NodeId p) const {
  if (p == graph().root()) return 0;
  const std::uint64_t dCode =
      static_cast<std::uint64_t>(dist_[p] - 1);
  const std::uint64_t parCode =
      static_cast<std::uint64_t>(par_[p]);
  return dCode + static_cast<std::uint64_t>(graph().nodeCount() - 1) * parCode;
}

void BfsTree::doDecodeNode(NodeId p, std::uint64_t code) {
  SSNO_EXPECTS(code < localStateCount(p));
  if (p == graph().root()) return;
  const std::uint64_t base = static_cast<std::uint64_t>(graph().nodeCount() - 1);
  dist_[p] = static_cast<int>(code % base) + 1;
  par_[p] = static_cast<int>(code / base);
}

std::string BfsTree::dumpNode(NodeId p) const {
  if (p == graph().root()) return "root(dist=0)";
  std::ostringstream out;
  out << "dist=" << dist_[p] << " par="
      << graph().neighborAt(p, par_[p]);
  return out.str();
}

NodeId BfsTree::parentOf(NodeId p) const {
  if (p == graph().root()) return kNoNode;
  return graph().neighborAt(p, par_[p]);
}

bool BfsTree::isLegitimate() const {
  for (NodeId p = 0; p < graph().nodeCount(); ++p)
    if (enabled(p, kFix)) return false;
  return true;
}

int BfsTree::currentHeight() const {
  std::vector<NodeId> parent(static_cast<std::size_t>(graph().nodeCount()));
  for (NodeId p = 0; p < graph().nodeCount(); ++p)
    parent[static_cast<std::size_t>(p)] = parentOf(p);
  return treeHeight(graph(), parent);
}

double BfsTree::stateBits(NodeId p) const {
  if (p == graph().root()) return 0.0;
  return std::log2(static_cast<double>(graph().nodeCount())) +
         std::log2(std::max(1.0, static_cast<double>(graph().degree(p))));
}

}  // namespace ssno
