#include "sptree/tree_view.hpp"

#include "core/assert.hpp"
#include "core/graph_algo.hpp"

namespace ssno {

std::vector<NodeId> TreeView::childrenOf(NodeId p) const {
  std::vector<NodeId> kids;
  const Graph& g = treeGraph();
  for (NodeId q : g.neighbors(p))
    if (q != g.root() && parentOf(q) == p) kids.push_back(q);
  return kids;
}

TreeRole TreeView::roleOf(NodeId p) const {
  const Graph& g = treeGraph();
  if (p == g.root()) return TreeRole::kRoot;
  // Allocation-free: probe for any child instead of materializing the
  // child list (roleOf sits on STNO's NodeLabel execution path).
  for (NodeId q : g.neighbors(p))
    if (q != g.root() && parentOf(q) == p) return TreeRole::kInternal;
  return TreeRole::kLeaf;
}

FixedTree::FixedTree(const Graph& graph, std::vector<NodeId> parent)
    : graph_(&graph), parent_(std::move(parent)) {
  SSNO_EXPECTS(isSpanningTree(graph, parent_));
}

}  // namespace ssno
