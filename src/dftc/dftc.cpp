#include "dftc/dftc.hpp"

#include <cmath>
#include <sstream>

#include "core/assert.hpp"

namespace ssno {

Dftc::Dftc(Graph graph)
    : Protocol(std::move(graph)),
      arena_(this->graph()),
      s_(arena_.nodeColumn(kIdle)),
      col_(arena_.nodeColumn(0)),
      d_(arena_.nodeColumn(0)),
      par_(arena_.nodeColumn(0)) {
  SSNO_EXPECTS(this->graph().nodeCount() >= 2);
  SSNO_EXPECTS(this->graph().isConnected());
}

std::string Dftc::actionName(int action) const {
  switch (action) {
    case kStart:
      return "Start";
    case kResume:
      return "Resume";
    case kForward:
      return "Forward";
    case kAdvance:
      return "Advance";
    case kStaleChild:
      return "StaleChild";
    case kError:
      return "Error";
    default:
      return "?";
  }
}

Port Dftc::firstUnvisitedPort(NodeId p) const {
  for (Port l = 0; l < graph().degree(p); ++l) {
    const NodeId q = graph().neighborAt(p, l);
    if (col_[q] != col_[p] && s_[q] == kIdle) return l;
  }
  return kNoPort;
}

Port Dftc::firstOfferingParentPort(NodeId p) const {
  // A neighbor at depth N−1 can never legitimately offer the token: its
  // chain would already contain all N processors, leaving nobody
  // unvisited.  Ignoring such offers is therefore free in clean rounds,
  // and essential for stabilization: the depth cap would otherwise let a
  // corrupt deep pointer be re-adopted over and over (a weakly-fair
  // livelock the model checker found on the diamond graph — the
  // adopting node reproduces d = min((N−1)+1, N−1) = N−1 and the same
  // corrupt configuration recurs).
  const int maxDepth = graph().nodeCount() - 1;
  for (Port l = 0; l < graph().degree(p); ++l) {
    const NodeId q = graph().neighborAt(p, l);
    if (s_[q] != kIdle && target(q) == p &&
        col_[q] != col_[p] && depth(q) < maxDepth)
      return l;
  }
  return kNoPort;
}

bool Dftc::validParent(NodeId p) const {
  SSNO_EXPECTS(p != graph().root());
  const Port pp = par_[p];
  if (pp < 0 || pp >= graph().degree(p)) return false;
  const NodeId w = graph().neighborAt(p, pp);
  return s_[w] != kIdle && target(w) == p &&
         depth(w) == depth(p) - 1 && col_[w] == col_[p];
}

bool Dftc::enabled(NodeId p, int action) const {
  const bool isRoot = (p == graph().root());
  switch (action) {
    case kStart: {
      // Round over: idle root, every neighbor already carries our color.
      if (!isRoot || s_[p] != kIdle) return false;
      for (NodeId q : graph().neighbors(p))
        if (col_[q] != col_[p]) return false;
      return true;
    }
    case kResume: {
      // Error escape: idle root facing an unvisited-looking neighbor
      // while its own Start guard is blocked by mixed colors.
      if (!isRoot || s_[p] != kIdle) return false;
      if (enabled(p, kStart)) return false;
      return firstUnvisitedPort(p) != kNoPort;
    }
    case kForward: {
      if (isRoot || s_[p] != kIdle) return false;
      return firstOfferingParentPort(p) != kNoPort;
    }
    case kAdvance: {
      if (s_[p] == kIdle) return false;
      if (!isRoot && !validParent(p)) return false;
      const NodeId x = target(p);
      return s_[x] == kIdle && col_[x] == col_[p];
    }
    case kStaleChild: {
      // p waits on a pointer-holding target that never adopted p (or on
      // the root, which adopts nobody): the wait would never resolve.
      if (s_[p] == kIdle) return false;
      if (!isRoot && !validParent(p)) return false;
      const NodeId x = target(p);
      if (s_[x] == kIdle) return false;
      if (x == graph().root()) return true;
      return graph().neighborAt(x, par_[x]) != p;
    }
    case kError: {
      if (isRoot || s_[p] == kIdle) return false;
      return !validParent(p);
    }
    default:
      return false;
  }
}

void Dftc::doExecute(NodeId p, int action) {
  SSNO_EXPECTS(enabled(p, action));
  switch (action) {
    case kStart: {
      col_[p] ^= 1;
      // All neighbors are now differently colored; in a corrupt state
      // they might all hold pointers, in which case the root stays idle
      // until they unravel (the color flip still made progress).
      const Port l = firstUnvisitedPort(p);
      s_[p] = l == kNoPort ? kIdle : l;
      if (hooks_.onRoundStart) hooks_.onRoundStart(p);
      break;
    }
    case kResume: {
      s_[p] = firstUnvisitedPort(p);
      break;
    }
    case kForward: {
      const Port fromPort = firstOfferingParentPort(p);
      const NodeId parent = graph().neighborAt(p, fromPort);
      par_[p] = fromPort;
      col_[p] = col_[parent];
      const int cap = graph().nodeCount() - 1;
      d_[p] = std::min(depth(parent) + 1, cap);
      const Port next = firstUnvisitedPort(p);
      s_[p] = next == kNoPort ? kIdle : next;
      if (hooks_.onForward) hooks_.onForward(p, parent);
      break;
    }
    case kAdvance: {
      const NodeId finishedChild = target(p);
      const Port next = firstUnvisitedPort(p);
      s_[p] = next == kNoPort ? kIdle : next;
      if (hooks_.onBacktrack) hooks_.onBacktrack(p, finishedChild);
      break;
    }
    case kStaleChild: {
      // Advance past the stale target; firstUnvisitedPort skips pointer-
      // holding neighbors, so the same target cannot be re-selected.
      const Port next = firstUnvisitedPort(p);
      s_[p] = next == kNoPort ? kIdle : next;
      break;
    }
    case kError: {
      s_[p] = kIdle;
      break;
    }
    default:
      SSNO_ASSERT(false);
  }
}

bool Dftc::holdsToken(NodeId p) const {
  for (int a = 0; a < kActionCount; ++a)
    if (enabled(p, a)) return true;
  return false;
}

void Dftc::doRandomizeNode(NodeId p, Rng& rng) {
  // Variable-wise draws (localStateCount may exceed int range on large
  // high-degree graphs).
  s_[p] = rng.below(graph().degree(p) + 1) - 1;
  col_[p] = rng.below(2);
  if (p == graph().root()) return;
  d_[p] = rng.below(graph().nodeCount());
  par_[p] = rng.below(graph().degree(p));
}

std::vector<int> Dftc::rawNode(NodeId p) const { return arena_.rawNode(p); }

void Dftc::doSetRawNode(NodeId p, std::span<const int> values) {
  arena_.setRawNode(p, values);
  // The root's depth/parent are semantically fixed; keep the stored
  // representation canonical so raw-configuration identity is exact.
  if (p == graph().root()) {
    d_[p] = 0;
    par_[p] = 0;
  }
}

std::uint64_t Dftc::localStateCount(NodeId p) const {
  const std::uint64_t deg = static_cast<std::uint64_t>(graph().degree(p));
  const std::uint64_t n = static_cast<std::uint64_t>(graph().nodeCount());
  if (p == graph().root()) return (deg + 1) * 2;  // s, col
  return (deg + 1) * 2 * n * deg;                 // s, col, d, par
}

std::uint64_t Dftc::encodeNode(NodeId p) const {
  const std::uint64_t deg = static_cast<std::uint64_t>(graph().degree(p));
  const std::uint64_t sCode = static_cast<std::uint64_t>(s_[p] + 1);
  const std::uint64_t colCode = static_cast<std::uint64_t>(col_[p]);
  if (p == graph().root()) return sCode + (deg + 1) * colCode;
  const std::uint64_t n = static_cast<std::uint64_t>(graph().nodeCount());
  const std::uint64_t dCode = static_cast<std::uint64_t>(d_[p]);
  const std::uint64_t parCode = static_cast<std::uint64_t>(par_[p]);
  return sCode + (deg + 1) * (colCode + 2 * (dCode + n * parCode));
}

void Dftc::doDecodeNode(NodeId p, std::uint64_t code) {
  SSNO_EXPECTS(code < localStateCount(p));
  const std::uint64_t deg = static_cast<std::uint64_t>(graph().degree(p));
  s_[p] = static_cast<int>(code % (deg + 1)) - 1;
  code /= (deg + 1);
  col_[p] = static_cast<int>(code % 2);
  code /= 2;
  if (p == graph().root()) {
    d_[p] = 0;
    par_[p] = 0;
    return;
  }
  const std::uint64_t n = static_cast<std::uint64_t>(graph().nodeCount());
  d_[p] = static_cast<int>(code % n);
  code /= n;
  par_[p] = static_cast<int>(code);
}

std::string Dftc::dumpNode(NodeId p) const {
  std::ostringstream out;
  out << "S=";
  if (s_[p] == kIdle)
    out << 'C';
  else
    out << "->" << target(p);
  out << " col=" << col_[p];
  if (p != graph().root())
    out << " d=" << d_[p] << " par=" << graph().neighborAt(p, par_[p]);
  return out.str();
}

void Dftc::resetClean() {
  s_.fill(kIdle);
  col_.fill(0);
  d_.fill(0);
  par_.fill(0);
  dirtyAll();
}

void Dftc::buildOrbitIfNeeded() {
  if (orbit_.has_value()) return;
  // Walk the deterministic legitimate cycle from the clean boundary,
  // with hooks suppressed and the observable state restored afterwards.
  const std::vector<int> saved = rawConfiguration();
  TokenHooks savedHooks = std::move(hooks_);
  hooks_ = TokenHooks{};
  resetClean();
  orbit_.emplace();
  while (true) {
    std::vector<int> code = rawConfiguration();
    if (!orbit_->insert(std::move(code)).second) break;  // cycle closed
    const std::vector<Move> moves = enabledMoves();
    // The legitimate execution is deterministic: exactly one enabled move.
    SSNO_ASSERT(moves.size() == 1);
    execute(moves.front().node, moves.front().action);
  }
  hooks_ = std::move(savedHooks);
  setRawConfiguration(saved);
}

bool Dftc::isLegitimate() {
  buildOrbitIfNeeded();
  return orbit_->contains(rawConfiguration());
}

double Dftc::stateBits(NodeId p) const {
  const double deg = graph().degree(p);
  const double n = graph().nodeCount();
  double bits = std::log2(deg + 1) + 1;  // S + col
  if (p != graph().root()) bits += std::log2(n) + std::log2(std::max(deg, 1.0));
  return bits;
}

}  // namespace ssno
