#include "dftc/dftc.hpp"

#include <cmath>
#include <sstream>

#include "core/assert.hpp"

namespace ssno {

Dftc::Dftc(Graph graph)
    : Protocol(std::move(graph)),
      arena_(this->graph()),
      s_(arena_.nodeColumn(kIdle)),
      col_(arena_.nodeColumn(0)),
      d_(arena_.nodeColumn(0)),
      par_(arena_.nodeColumn(0)) {
  SSNO_EXPECTS(this->graph().nodeCount() >= 2);
  SSNO_EXPECTS(this->graph().isConnected());
}

std::string Dftc::actionName(int action) const {
  switch (action) {
    case kStart:
      return "Start";
    case kResume:
      return "Resume";
    case kForward:
      return "Forward";
    case kAdvance:
      return "Advance";
    case kStaleChild:
      return "StaleChild";
    case kError:
      return "Error";
    default:
      return "?";
  }
}

Port Dftc::firstUnvisitedPort(NodeId p) const {
  return firstUnvisitedPortWithColor(p, col_[p]);
}

Port Dftc::firstUnvisitedPortWithColor(NodeId p, int ownCol) const {
  for (Port l = 0; l < graph().degree(p); ++l) {
    const NodeId q = graph().neighborAt(p, l);
    if (col_[q] != ownCol && s_[q] == kIdle) return l;
  }
  return kNoPort;
}

Port Dftc::firstOfferingParentPort(NodeId p) const {
  // A neighbor at depth N−1 can never legitimately offer the token: its
  // chain would already contain all N processors, leaving nobody
  // unvisited.  Ignoring such offers is therefore free in clean rounds,
  // and essential for stabilization: the depth cap would otherwise let a
  // corrupt deep pointer be re-adopted over and over (a weakly-fair
  // livelock the model checker found on the diamond graph — the
  // adopting node reproduces d = min((N−1)+1, N−1) = N−1 and the same
  // corrupt configuration recurs).
  const int maxDepth = graph().nodeCount() - 1;
  for (Port l = 0; l < graph().degree(p); ++l) {
    const NodeId q = graph().neighborAt(p, l);
    if (s_[q] != kIdle && target(q) == p &&
        col_[q] != col_[p] && depth(q) < maxDepth)
      return l;
  }
  return kNoPort;
}

bool Dftc::validParent(NodeId p) const {
  SSNO_EXPECTS(p != graph().root());
  const Port pp = par_[p];
  if (pp < 0 || pp >= graph().degree(p)) return false;
  const NodeId w = graph().neighborAt(p, pp);
  return s_[w] != kIdle && target(w) == p &&
         depth(w) == depth(p) - 1 && col_[w] == col_[p];
}

bool Dftc::enabled(NodeId p, int action) const {
  const bool isRoot = (p == graph().root());
  switch (action) {
    case kStart: {
      // Round over: idle root, every neighbor already carries our color.
      if (!isRoot || s_[p] != kIdle) return false;
      for (NodeId q : graph().neighbors(p))
        if (col_[q] != col_[p]) return false;
      return true;
    }
    case kResume: {
      // Error escape: idle root facing an unvisited-looking neighbor
      // while its own Start guard is blocked by mixed colors.
      if (!isRoot || s_[p] != kIdle) return false;
      if (enabled(p, kStart)) return false;
      return firstUnvisitedPort(p) != kNoPort;
    }
    case kForward: {
      if (isRoot || s_[p] != kIdle) return false;
      return firstOfferingParentPort(p) != kNoPort;
    }
    case kAdvance: {
      if (s_[p] == kIdle) return false;
      if (!isRoot && !validParent(p)) return false;
      const NodeId x = target(p);
      return s_[x] == kIdle && col_[x] == col_[p];
    }
    case kStaleChild: {
      // p waits on a pointer-holding target that never adopted p (or on
      // the root, which adopts nobody): the wait would never resolve.
      if (s_[p] == kIdle) return false;
      if (!isRoot && !validParent(p)) return false;
      const NodeId x = target(p);
      if (s_[x] == kIdle) return false;
      if (x == graph().root()) return true;
      return graph().neighborAt(x, par_[x]) != p;
    }
    case kError: {
      if (isRoot || s_[p] == kIdle) return false;
      return !validParent(p);
    }
    default:
      return false;
  }
}

void Dftc::evaluateGuards(std::span<const NodeId> nodes,
                          std::uint64_t* masks) const {
  const NodeId root = graph().root();
  const int maxDepth = graph().nodeCount() - 1;
  // Whole-configuration batches — the dense-refresh / full-rescan path —
  // precompute one token-offer byte per node in a single sequential
  // sweep: bit c of offers_[x] says some neighbor q offers x the token
  // (q points at x, q's depth is below the cap) with col_q != c.  The
  // Forward guard of an idle node then reads one byte instead of
  // walking its neighborhood.  The batch contract (node-sorted,
  // deduplicated) makes size == n the identity list, so every offer
  // source is scanned exactly once.
  const auto n = static_cast<std::size_t>(graph().nodeCount());
  const bool offersPass = nodes.size() == n;
  if (offersPass) {
    offers_.assign(n, 0);
    const int* s = s_.data().data();
    const int* col = col_.data().data();
    const int* d = d_.data().data();
    for (std::size_t q = 0; q < n; ++q) {
      const int sq = s[q];
      if (sq == kIdle) continue;
      const int dq = q == static_cast<std::size_t>(root) ? 0 : d[q];
      if (dq >= maxDepth) continue;
      const NodeId x = graph().neighborAt(static_cast<NodeId>(q),
                                          static_cast<Port>(sq));
      // Bit c records an offer valid for a receiver of color c, i.e.
      // col_q != c; out-of-range colors (transient faults) offer both.
      offers_[static_cast<std::size_t>(x)] |= static_cast<std::uint8_t>(
          (col[q] != 0 ? 1u : 0u) | (col[q] != 1 ? 2u : 0u));
    }
  }
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const NodeId p = nodes[i];
    const int sp = s_[p];
    const int cp = col_[p];
    std::uint64_t mask = 0;
    if (sp == kIdle) {
      if (p == root) {
        // Start and Resume share one neighborhood walk: Start ⇔ all
        // neighbors carry our color; Resume ⇔ ¬Start ∧ some unvisited-
        // looking (differently colored, idle) neighbor exists.
        bool allSame = true;
        bool anyUnvisited = false;
        for (const NodeId q : graph().neighbors(p)) {
          if (col_[q] != cp) {
            allSame = false;
            if (s_[q] == kIdle) anyUnvisited = true;
          }
        }
        if (allSame)
          mask = std::uint64_t{1} << kStart;
        else if (anyUnvisited)
          mask = std::uint64_t{1} << kResume;
      } else if (offersPass && (cp == 0 || cp == 1)) {
        // Forward ⇔ the precomputed offer byte has our color's bit
        // (out-of-range own colors keep the exact walk below).
        if (offers_[static_cast<std::size_t>(p)] & (1u << cp))
          mask = std::uint64_t{1} << kForward;
      } else {
        // Forward ⇔ some neighbor offers the token (condition order
        // matches firstOfferingParentPort exactly).
        for (const NodeId q : graph().neighbors(p)) {
          if (s_[q] != kIdle && target(q) == p && col_[q] != cp &&
              depth(q) < maxDepth) {
            mask = std::uint64_t{1} << kForward;
            break;
          }
        }
      }
    } else {
      // Pointer-holding nodes are O(1): exactly one of Advance /
      // StaleChild / Error can be enabled, discriminated by the parent
      // link and the target's state.
      if (p != root && !validParent(p)) {
        mask = std::uint64_t{1} << kError;
      } else {
        const NodeId x = target(p);
        if (s_[x] == kIdle) {
          if (col_[x] == cp) mask = std::uint64_t{1} << kAdvance;
        } else if (x == root || graph().neighborAt(x, par_[x]) != p) {
          mask = std::uint64_t{1} << kStaleChild;
        }
      }
    }
    masks[i] = mask;
  }
}

void Dftc::doExecute(NodeId p, int action) {
  SSNO_EXPECTS(enabled(p, action));
  switch (action) {
    case kStart: {
      col_[p] ^= 1;
      // All neighbors are now differently colored; in a corrupt state
      // they might all hold pointers, in which case the root stays idle
      // until they unravel (the color flip still made progress).
      const Port l = firstUnvisitedPort(p);
      s_[p] = l == kNoPort ? kIdle : l;
      if (hooks_.onRoundStart) hooks_.onRoundStart(p);
      break;
    }
    case kResume: {
      s_[p] = firstUnvisitedPort(p);
      break;
    }
    case kForward: {
      const Port fromPort = firstOfferingParentPort(p);
      const NodeId parent = graph().neighborAt(p, fromPort);
      par_[p] = fromPort;
      col_[p] = col_[parent];
      const int cap = graph().nodeCount() - 1;
      d_[p] = std::min(depth(parent) + 1, cap);
      const Port next = firstUnvisitedPort(p);
      s_[p] = next == kNoPort ? kIdle : next;
      if (hooks_.onForward) hooks_.onForward(p, parent);
      break;
    }
    case kAdvance: {
      const NodeId finishedChild = target(p);
      const Port next = firstUnvisitedPort(p);
      s_[p] = next == kNoPort ? kIdle : next;
      if (hooks_.onBacktrack) hooks_.onBacktrack(p, finishedChild);
      break;
    }
    case kStaleChild: {
      // Advance past the stale target; firstUnvisitedPort skips pointer-
      // holding neighbors, so the same target cannot be re-selected.
      const Port next = firstUnvisitedPort(p);
      s_[p] = next == kNoPort ? kIdle : next;
      break;
    }
    case kError: {
      s_[p] = kIdle;
      break;
    }
    default:
      SSNO_ASSERT(false);
  }
}

Dftc::SimOutcome Dftc::computeSimultaneous(NodeId p, int action) const {
  SimOutcome o;
  o.s = s_[p];
  o.col = col_[p];
  o.d = d_[p];
  o.par = par_[p];
  switch (action) {
    case kStart: {
      o.col = col_[p] ^ 1;
      const Port l = firstUnvisitedPortWithColor(p, o.col);
      o.s = l == kNoPort ? kIdle : l;
      o.event = SimOutcome::Event::kRoundStart;
      break;
    }
    case kResume: {
      o.s = firstUnvisitedPort(p);
      break;
    }
    case kForward: {
      const Port fromPort = firstOfferingParentPort(p);
      const NodeId parent = graph().neighborAt(p, fromPort);
      o.par = fromPort;
      o.col = col_[parent];
      const int cap = graph().nodeCount() - 1;
      o.d = std::min(depth(parent) + 1, cap);
      const Port next = firstUnvisitedPortWithColor(p, o.col);
      o.s = next == kNoPort ? kIdle : next;
      o.event = SimOutcome::Event::kForward;
      o.peer = parent;
      break;
    }
    case kAdvance: {
      o.peer = target(p);
      const Port next = firstUnvisitedPort(p);
      o.s = next == kNoPort ? kIdle : next;
      o.event = SimOutcome::Event::kBacktrack;
      break;
    }
    case kStaleChild: {
      const Port next = firstUnvisitedPort(p);
      o.s = next == kNoPort ? kIdle : next;
      break;
    }
    case kError: {
      o.s = kIdle;
      break;
    }
    default:
      SSNO_ASSERT(false);
  }
  return o;
}

bool Dftc::doExecuteSimultaneous(std::span<const Move> moves) {
  if (hooks_.onRoundStart || hooks_.onForward || hooks_.onBacktrack)
    return false;
  simScratch_.clear();
  simScratch_.reserve(moves.size());
  for (const Move& m : moves) {
    // Per-move enabledness is the caller's precondition; re-deriving it
    // here is a full scalar guard evaluation per move — Debug-only.
    SSNO_DBG_ASSERT(enabled(m.node, m.action));
    simScratch_.push_back(computeSimultaneous(m.node, m.action));
  }
  for (std::size_t i = 0; i < moves.size(); ++i)
    commitSimultaneous(moves[i].node, simScratch_[i]);
  return true;
}

bool Dftc::holdsToken(NodeId p) const {
  for (int a = 0; a < kActionCount; ++a)
    if (enabled(p, a)) return true;
  return false;
}

void Dftc::doRandomizeNode(NodeId p, Rng& rng) {
  // Variable-wise draws (localStateCount may exceed int range on large
  // high-degree graphs).
  s_[p] = rng.below(graph().degree(p) + 1) - 1;
  col_[p] = rng.below(2);
  if (p == graph().root()) return;
  d_[p] = rng.below(graph().nodeCount());
  par_[p] = rng.below(graph().degree(p));
}

std::vector<int> Dftc::rawNode(NodeId p) const { return arena_.rawNode(p); }

void Dftc::doSetRawNode(NodeId p, std::span<const int> values) {
  arena_.setRawNode(p, values);
  // The root's depth/parent are semantically fixed; keep the stored
  // representation canonical so raw-configuration identity is exact.
  if (p == graph().root()) {
    d_[p] = 0;
    par_[p] = 0;
  }
}

std::uint64_t Dftc::localStateCount(NodeId p) const {
  const std::uint64_t deg = static_cast<std::uint64_t>(graph().degree(p));
  const std::uint64_t n = static_cast<std::uint64_t>(graph().nodeCount());
  if (p == graph().root()) return (deg + 1) * 2;  // s, col
  return (deg + 1) * 2 * n * deg;                 // s, col, d, par
}

std::uint64_t Dftc::encodeNode(NodeId p) const {
  const std::uint64_t deg = static_cast<std::uint64_t>(graph().degree(p));
  const std::uint64_t sCode = static_cast<std::uint64_t>(s_[p] + 1);
  const std::uint64_t colCode = static_cast<std::uint64_t>(col_[p]);
  if (p == graph().root()) return sCode + (deg + 1) * colCode;
  const std::uint64_t n = static_cast<std::uint64_t>(graph().nodeCount());
  const std::uint64_t dCode = static_cast<std::uint64_t>(d_[p]);
  const std::uint64_t parCode = static_cast<std::uint64_t>(par_[p]);
  return sCode + (deg + 1) * (colCode + 2 * (dCode + n * parCode));
}

void Dftc::doDecodeNode(NodeId p, std::uint64_t code) {
  SSNO_EXPECTS(code < localStateCount(p));
  const std::uint64_t deg = static_cast<std::uint64_t>(graph().degree(p));
  s_[p] = static_cast<int>(code % (deg + 1)) - 1;
  code /= (deg + 1);
  col_[p] = static_cast<int>(code % 2);
  code /= 2;
  if (p == graph().root()) {
    d_[p] = 0;
    par_[p] = 0;
    return;
  }
  const std::uint64_t n = static_cast<std::uint64_t>(graph().nodeCount());
  d_[p] = static_cast<int>(code % n);
  code /= n;
  par_[p] = static_cast<int>(code);
}

std::string Dftc::dumpNode(NodeId p) const {
  std::ostringstream out;
  out << "S=";
  if (s_[p] == kIdle)
    out << 'C';
  else
    out << "->" << target(p);
  out << " col=" << col_[p];
  if (p != graph().root())
    out << " d=" << d_[p] << " par=" << graph().neighborAt(p, par_[p]);
  return out.str();
}

void Dftc::resetClean() {
  s_.fill(kIdle);
  col_.fill(0);
  d_.fill(0);
  par_.fill(0);
  dirtyAll();
}

void Dftc::buildOrbitIfNeeded() {
  if (orbit_.has_value()) return;
  // Walk the deterministic legitimate cycle from the clean boundary,
  // with hooks suppressed and the observable state restored afterwards.
  const std::vector<int> saved = rawConfiguration();
  TokenHooks savedHooks = std::move(hooks_);
  hooks_ = TokenHooks{};
  resetClean();
  orbit_.emplace();
  while (true) {
    std::vector<int> code = rawConfiguration();
    if (!orbit_->insert(std::move(code)).second) break;  // cycle closed
    const std::vector<Move> moves = enabledMoves();
    // The legitimate execution is deterministic: exactly one enabled move.
    SSNO_ASSERT(moves.size() == 1);
    execute(moves.front().node, moves.front().action);
  }
  hooks_ = std::move(savedHooks);
  setRawConfiguration(saved);
}

bool Dftc::isLegitimate() {
  buildOrbitIfNeeded();
  return orbit_->contains(rawConfiguration());
}

double Dftc::stateBits(NodeId p) const {
  const double deg = graph().degree(p);
  const double n = graph().nodeCount();
  double bits = std::log2(deg + 1) + 1;  // S + col
  if (p != graph().root()) bits += std::log2(n) + std::log2(std::max(deg, 1.0));
  return bits;
}

}  // namespace ssno
