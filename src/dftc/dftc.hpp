// Self-stabilizing depth-first token circulation on arbitrary rooted
// networks — the substrate assumed by the paper's DFTNO protocol
// (standing in for Datta-Johnen-Petit-Villain, SIROCCO'98 [10]).
//
// A single token perpetually traverses the network in deterministic
// depth-first (port) order, rooted at r.  One traversal = one *round*;
// in a legitimate round every processor receives the token exactly once
// (`Forward`), and the token returns to each processor once per incident
// tree edge (`Advance`, the paper's Backtrack).
//
// Per-processor variables (all written only by their owner):
//   S   ∈ {C} ∪ {0..Δp−1}  idle, or pointer to the port being explored
//   col ∈ {0,1}            round parity; "visited this round" ⇔ col equals
//                          the color the root chose at round start
//   d   ∈ {0..N−1}         depth on the token chain (root implicitly 0)
//   par ∈ {0..Δp−1}        port of the adopted parent (non-root only)
//
// Legitimate behaviour (clean round, color b_old everywhere):
//   Start    (root) flips col_r to b_new and points at its first port.
//   Forward  (p)    an unvisited processor pointed at by a differently
//                   colored neighbor adopts it as parent (smallest such
//                   port), takes color/depth from it, and points at its
//                   first unvisited neighbor — or stays C if none
//                   (the token immediately bounces back).
//   Advance  (p)    when p's current child is idle again with p's color
//                   (finished), p points at its next unvisited neighbor,
//                   or retracts to C (backtracks) if none remain.
// When the root retracts and sees no unvisited neighbor, the round is
// over; all colors equal b_new, which is exactly Start's guard for the
// next round.  The color flip doubles as the cleaning wave, so no
// separate "done" state is needed.
//
// Stabilization.  Arbitrary initial states may contain orphan pointer
// chains, pointer cycles, and aliased colors.  Three mechanisms repair
// them:
//   * Error(p): a non-root p whose adopted parent is not pointing at p
//     with depth d_p−1 and p's color retracts to C.  Depth consistency
//     strictly increases along valid parent links, so a pointer cycle
//     cannot be consistently deep — some member is always in Error — and
//     every maximal valid chain is anchored at the root (only the root
//     may sit at depth 0).  Since the root has a single pointer, the
//     valid chain is unique; all bogus structure unravels.
//   * A processor pointed at by a stale pointer simply looks visited (or
//     gets legitimately adopted); its pointer owner advances past it.
//   * Color aliasing at worst causes processors to be skipped during the
//     first complete round; that round still uniformizes all colors, so
//     every subsequent round is perfect.
//   * Resume(root): an idle root that still sees an unvisited-looking
//     neighbor re-extends the chain without flipping its color.  In a
//     clean execution the root only retracts once the whole network is
//     visited, so Resume is never enabled legitimately; it exists to
//     escape corrupt all-idle configurations with mixed colors, which
//     would otherwise deadlock (Start requires uniformly colored
//     neighbors).
//   * StaleChild(p): a processor pointing at a neighbor that holds a
//     pointer but never adopted p as its parent (or at the root, which
//     adopts nobody) advances past it.  Without this rule, corrupt
//     mutual-point configurations (p→x and x→p with consistent colors)
//     deadlock.  To keep the rule from re-selecting the same stale
//     target, the "first unvisited neighbor" choice skips neighbors that
//     currently hold pointers — harmless in clean rounds, where an
//     unvisited neighbor is always idle.
//
// Like the substrate it stands in for ([10]; see Chapter 5 of the
// paper), stabilization is guaranteed under a *weakly fair* daemon: a
// node whose correction action stays enabled must eventually be served.
// The model checker verifies exactly this (Fairness::kWeaklyFair): no
// illegitimate configuration is terminal, and no illegitimate cycle is
// weakly-fair-feasible.
// The composed system is verified mechanically: exhaustive model checking
// on small graphs (tests/dftc_modelcheck_test.cpp) and Monte-Carlo stress
// on larger ones.
//
// The set of legitimate configurations L_TC is the *orbit* of the clean
// round-boundary configuration (all S=C, uniform color): the legitimate
// execution is deterministic (exactly one substrate action enabled), so
// the orbit is a finite cycle computed once and membership is a hash
// lookup.
#ifndef SSNO_DFTC_DFTC_HPP
#define SSNO_DFTC_DFTC_HPP

#include <functional>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "core/graph.hpp"
#include "core/protocol.hpp"
#include "core/state_arena.hpp"
#include "core/types.hpp"

namespace ssno {

/// Observer hooks by which an overlay protocol (DFTNO) attaches its macros
/// atomically to substrate actions, as in the paper's composition.
struct TokenHooks {
  /// Root generated a fresh token (action Start).
  std::function<void(NodeId root)> onRoundStart;
  /// p received the token for the first time this round from `parent`.
  std::function<void(NodeId p, NodeId parent)> onForward;
  /// The token returned to p from its finished child `child`.
  std::function<void(NodeId p, NodeId child)> onBacktrack;
};

class Dftc final : public Protocol {
 public:
  enum Action : int {
    kStart = 0,
    kResume = 1,
    kForward = 2,
    kAdvance = 3,
    kStaleChild = 4,
    kError = 5,
  };
  static constexpr int kActionCount = 6;

  explicit Dftc(Graph graph);

  // ---- Protocol interface ----
  [[nodiscard]] int actionCount() const override { return kActionCount; }
  [[nodiscard]] std::string actionName(int action) const override;
  [[nodiscard]] bool enabled(NodeId p, int action) const override;
  /// Fused columnar kernel: one neighborhood walk per idle node, O(1)
  /// for pointer-holding nodes — vs up to six virtual enabled() calls
  /// each re-walking the neighborhood.  Bit-identical to the scalar
  /// guards (asserted per batch in Debug by EnabledCache).
  void evaluateGuards(std::span<const NodeId> nodes,
                      std::uint64_t* masks) const override;
  [[nodiscard]] std::uint64_t localStateCount(NodeId p) const override;
  [[nodiscard]] std::uint64_t encodeNode(NodeId p) const override;
  [[nodiscard]] std::vector<int> rawNode(NodeId p) const override;
  [[nodiscard]] std::string dumpNode(NodeId p) const override;
  void collectArenas(std::vector<StateArena*>& out) override {
    out.push_back(&arena_);
  }

  /// Overlay protocols split their raw vectors at this boundary.
  [[nodiscard]] std::size_t rawNodeLength(NodeId p) const override {
    return arena_.rawLength(p);
  }

  // ---- Substrate-specific API ----
  void setHooks(TokenHooks hooks) { hooks_ = std::move(hooks); }

  /// Any substrate action enabled at p — the paper's Token(p) predicate
  /// (p currently holds, or is about to act on, the token).
  [[nodiscard]] bool holdsToken(NodeId p) const;

  /// L_TC: current configuration lies on the legitimate orbit.
  /// (Non-const only because orbit computation temporarily walks the
  /// protocol through the clean cycle; the observable state is restored.)
  [[nodiscard]] bool isLegitimate();

  /// Resets to the clean round boundary: all S=C, col=0, d=0, par=0.
  void resetClean();

  /// Raw variable access (used by tests and by DFTNO's parent queries).
  [[nodiscard]] bool isIdle(NodeId p) const { return s_[p] == kIdle; }
  [[nodiscard]] Port pointer(NodeId p) const {
    return s_[p] == kIdle ? kNoPort : s_[p];
  }
  [[nodiscard]] int color(NodeId p) const { return col_[p]; }
  [[nodiscard]] int depth(NodeId p) const {
    return p == graph().root() ? 0 : d_[p];
  }
  [[nodiscard]] Port parentPort(NodeId p) const { return par_[p]; }

  /// Number of variable bits per processor (space-complexity reporting):
  /// S: log(Δp+1), col: 1, d: log N, par: log Δp  (non-root).
  [[nodiscard]] double stateBits(NodeId p) const;

  /// ---- Batched simultaneous execution (two-phase compute/commit) -----
  /// Post-state of one substrate move evaluated against the CURRENT
  /// (pre-step) configuration, plus the hook event the move would fire,
  /// so an overlay protocol (DFTNO) can inline its macro against the
  /// same pre-step state.  computeSimultaneous performs no writes;
  /// commitSimultaneous installs the outcome without firing hooks or
  /// dirtying (the batch driver records writers).
  struct SimOutcome {
    enum class Event { kNone, kRoundStart, kForward, kBacktrack };
    int s = -1;
    int col = 0;
    int d = 0;
    int par = 0;
    Event event = Event::kNone;
    NodeId peer = kNoNode;  ///< onForward's parent / onBacktrack's child
  };
  [[nodiscard]] SimOutcome computeSimultaneous(NodeId p, int action) const;
  // Inline: called once per move inside the dense-step commit loops.
  void commitSimultaneous(NodeId p, const SimOutcome& o) {
    s_[p] = o.s;
    col_[p] = o.col;
    d_[p] = o.d;
    par_[p] = o.par;
  }
  /// Error's simultaneous outcome in full: s := idle, everything else
  /// unchanged (same write discipline as commitSimultaneous — the batch
  /// driver records writers, no hooks, no dirtying).
  void commitIdle(NodeId p) { s_[p] = kIdle; }

 protected:
  // ---- Protocol mutation hooks ----
  void doExecute(NodeId p, int action) override;
  /// Batched synchronous step, Jacobi-style: phase 1 computes every
  /// move's outcome against the untouched pre-step state, phase 2
  /// commits.  Declines (false) when external hooks are installed: a
  /// hook firing after commits would read post-step state.  (DFTNO
  /// batches its own overlay instead of delegating here.)
  bool doExecuteSimultaneous(std::span<const Move> moves) override;
  void doRandomizeNode(NodeId p, Rng& rng) override;
  void doDecodeNode(NodeId p, std::uint64_t code) override;
  void doSetRawNode(NodeId p, std::span<const int> values) override;

 private:
  static constexpr int kIdle = -1;

  [[nodiscard]] NodeId target(NodeId p) const {
    return graph().neighborAt(p, s_[p]);
  }
  /// First port of p whose neighbor looks unvisited: differently colored
  /// AND idle (a pointer-holding neighbor is skipped so that corrective
  /// advances cannot re-select a stale target; in clean rounds unvisited
  /// neighbors are always idle).
  [[nodiscard]] Port firstUnvisitedPort(NodeId p) const;
  /// firstUnvisitedPort against an explicit own color — the pre-step
  /// form used by computeSimultaneous, where kStart/kForward compare
  /// neighbors against the color p WILL have without writing it first.
  [[nodiscard]] Port firstUnvisitedPortWithColor(NodeId p, int ownCol) const;
  /// Smallest port of a neighbor that points at p with a different color.
  [[nodiscard]] Port firstOfferingParentPort(NodeId p) const;
  [[nodiscard]] bool validParent(NodeId p) const;

  void buildOrbitIfNeeded();

  // SoA state columns (registration order == raw layout {s, col, d, par}).
  StateArena arena_;
  NodeColumn s_;     // kIdle or port
  NodeColumn col_;   // 0/1
  NodeColumn d_;     // 0..N-1 (root entry unused, kept 0)
  NodeColumn par_;   // port (root entry unused, kept 0)
  TokenHooks hooks_;
  std::vector<SimOutcome> simScratch_;  // reused phase-1 buffer
  // Whole-configuration evaluateGuards scratch: per-node token-offer
  // bytes (see the offers pass in evaluateGuards).  Mutable because the
  // evaluator is const; reused across calls, no steady-state allocation.
  mutable std::vector<std::uint8_t> offers_;
  // Exact raw configurations of the legitimate orbit (computed once).
  std::optional<std::set<std::vector<int>>> orbit_;
};

}  // namespace ssno

#endif  // SSNO_DFTC_DFTC_HPP
