// io/fault — deterministic fault injection for the durable-I/O layer.
//
// Every durable-state writer in the tree (serve/cache record writes,
// serve/scheduler checkpoint appends, mc/spill run files) routes its
// filesystem mutations through the io::File / io::atomicReplace wrappers
// in io/file.hpp.  Each wrapped operation consults the process-wide
// FaultSchedule installed here before touching the real filesystem, so
// a test, the chaos harness, or an `--io-faults` flag can make any
// write fail, tear, or crash the process at an exact, reproducible
// point — the crash-consistency analogue of the protocol-level
// adversarial daemons in src/resil.
//
// Schedule grammar (semicolon-separated directives):
//
//   <fault>@<op>                fire on EVERY matching call
//   <fault>@<op>:<n>            fire once, on the Nth matching call
//   <fault>@<op>:p=<prob>       fire per matching call with probability p
//   <fault>:p=<prob>            fire on ANY op with probability p
//   ...@<op>:...:path=<substr>  restrict to paths containing <substr>
//   seed=<n>                    seed for the probabilistic draws
//
//   faults: enospc eio eintr short torn crash
//   ops:    open write fsync rename mkdir close
//
// Examples: "enospc@write:7; torn@rename:2; eintr:p=0.1; crash@fsync:3"
//           "enospc@write:path=.rec"  (only cache records hit ENOSPC)
//
// Fault semantics (applied by the io/file.hpp wrappers):
//   enospc/eio  the call fails with that errno; nothing happens on disk
//   eintr       the call fails with EINTR (write loops must retry)
//   short       write: only half the buffer is written, the short count
//               is returned (success — callers must loop); other ops
//               behave like eio
//   torn        write: half the buffer reaches the fd, then the call
//               FAILS with ENOSPC — a torn record is now on disk;
//               rename: the source file is truncated to half before the
//               real rename (models data blocks lost to a crash after
//               an un-fsynced rename was committed); other ops like eio
//   crash       write: half the buffer reaches the fd, then the process
//               _exit(kCrashExitCode)s on the spot (no destructors, no
//               flush — a real crash); other ops crash before acting
//
// Nth-call counters are per rule and count MATCHING calls (after op and
// path filters), so "crash@fsync:3" is the third fsync issued by any
// routed writer.  Rules are evaluated in directive order; the first one
// that fires wins.  Matching and counter advance are serialized under
// one mutex, so single-threaded writers get bit-reproducible schedules.
#ifndef SSNO_IO_FAULT_HPP
#define SSNO_IO_FAULT_HPP

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace ssno::io {

enum class Op { kOpen, kWrite, kFsync, kRename, kMkdir, kClose };
inline constexpr int kOpCount = 6;

enum class Fault { kNone, kEnospc, kEio, kEintr, kShort, kTorn, kCrash };

/// Exit code used by an injected crash (distinct from common signals'
/// 128+N codes only by convention; harnesses match on it exactly).
inline constexpr int kCrashExitCode = 86;

[[nodiscard]] std::string_view opName(Op op);
[[nodiscard]] std::string_view faultName(Fault f);

/// What the wrapper must do for one operation.
struct Decision {
  Fault fault = Fault::kNone;
};

class FaultSchedule {
 public:
  FaultSchedule() = default;

  /// Parses the grammar above; throws std::invalid_argument naming the
  /// offending directive (1-based) and what was wrong with it.
  static FaultSchedule parse(std::string_view spec);

  /// Decision for the next call of `op` on `path`; advances matching
  /// rules' counters and the probabilistic stream.  Not thread-safe on
  /// its own — the process-wide installer serializes calls.
  Decision decide(Op op, std::string_view path);

  [[nodiscard]] bool empty() const { return rules_.empty(); }
  [[nodiscard]] std::string render() const;  ///< parseable round-trip

 private:
  struct Rule {
    Fault fault = Fault::kNone;
    std::optional<Op> op;       // nullopt = any op
    std::uint64_t nth = 0;      // 1-based one-shot; 0 = not count-based
    double p = -1.0;            // per-call probability; < 0 = not used
    std::string pathSub;        // "" = any path
    std::uint64_t matched = 0;  // matching calls seen so far
    bool fired = false;         // one-shot latch for nth rules
  };
  std::vector<Rule> rules_;
  std::uint64_t seed_ = 0x53534e4f696f31ULL;  // "SSNOio1"
  std::uint64_t rngState_ = 0;
  bool rngInit_ = false;

  double nextUniform();
};

/// Installs `sched` process-wide (replacing any previous schedule); the
/// io/file.hpp wrappers consult it under an internal mutex.  An empty
/// schedule (or clearFaultSchedule) restores direct passthrough.
void installFaultSchedule(FaultSchedule sched);
void clearFaultSchedule();
[[nodiscard]] bool faultInjectionActive();

/// One decision for an op about to run on `path`; passthrough (kNone)
/// when no schedule is installed.  Increments the io_<op>_total counter
/// always and io_faults_injected_total when a fault fires.
Decision consultFaults(Op op, std::string_view path);

}  // namespace ssno::io

#endif  // SSNO_IO_FAULT_HPP
