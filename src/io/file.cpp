#include "io/file.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>

#include "io/fault.hpp"

namespace ssno::io {
namespace {

namespace fs = std::filesystem;

/// CRC-32 lookup table (reflected 0xEDB88320), built once.
const std::array<std::uint32_t, 256>& crcTable() {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k)
        c = (c & 1u) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
      t[i] = c;
    }
    return t;
  }();
  return table;
}

std::uint32_t crcUpdate(std::uint32_t state, const void* data, std::size_t n) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  const auto& table = crcTable();
  for (std::size_t i = 0; i < n; ++i)
    state = table[(state ^ bytes[i]) & 0xFFu] ^ (state >> 8);
  return state;
}

/// Applies an injected fault to a pending write of `n` bytes on `fd`.
/// Returns the value the raw ::write would have returned (with errno
/// set on -1); may _exit for crash faults.
ssize_t applyWriteFault(Fault fault, int fd, const void* data, std::size_t n) {
  const std::size_t half = n / 2;
  switch (fault) {
    case Fault::kEnospc:
      errno = ENOSPC;
      return -1;
    case Fault::kEio:
      errno = EIO;
      return -1;
    case Fault::kEintr:
      errno = EINTR;
      return -1;
    case Fault::kShort:
      if (half == 0) return static_cast<ssize_t>(n == 0 ? 0 : ::write(fd, data, n));
      return ::write(fd, data, half);
    case Fault::kTorn:
      // Half the bytes land, then the device "fills": a torn record is
      // now on disk and the caller sees a hard failure.
      if (half > 0) (void)::write(fd, data, half);
      errno = ENOSPC;
      return -1;
    case Fault::kCrash:
      if (half > 0) (void)::write(fd, data, half);
      ::_exit(kCrashExitCode);
    case Fault::kNone:
      break;
  }
  return static_cast<ssize_t>(n);  // unreachable for kNone (handled by caller)
}

/// Non-write ops: map the injected fault to an errno (or crash).
/// Returns 0 when no fault fires, else the errno to report.
int applyPlainFault(Fault fault) {
  switch (fault) {
    case Fault::kNone:
      return 0;
    case Fault::kEintr:
      return EINTR;
    case Fault::kEnospc:
      return ENOSPC;
    case Fault::kCrash:
      ::_exit(kCrashExitCode);
    case Fault::kEio:
    case Fault::kShort:
    case Fault::kTorn:
      return EIO;
  }
  return EIO;
}

/// fsync through the fault schedule, EINTR-retried.
bool syncFd(int fd, const std::string& path, int& errnoOut) {
  for (;;) {
    const Decision d = consultFaults(Op::kFsync, path);
    if (d.fault != Fault::kNone) {
      const int e = applyPlainFault(d.fault);
      if (e == EINTR) continue;  // injected EINTR: retry loop absorbs it
      errnoOut = e;
      return false;
    }
    if (::fsync(fd) == 0) return true;
    if (errno == EINTR) continue;
    errnoOut = errno;
    return false;
  }
}

bool closeFd(int fd, const std::string& path, int& errnoOut) {
  const Decision d = consultFaults(Op::kClose, path);
  // The fd is released regardless of any injected error — mirroring
  // POSIX close(), which leaves the fd unusable even on failure.
  const int real = ::close(fd);
  const int injected = applyPlainFault(d.fault);
  if (injected != 0 && injected != EINTR) {
    errnoOut = injected;
    return false;
  }
  if (real != 0 && errno != EINTR) {
    errnoOut = errno;
    return false;
  }
  return true;
}

}  // namespace

std::uint32_t crc32(std::string_view data) {
  return crcUpdate(0xFFFFFFFFu, data.data(), data.size()) ^ 0xFFFFFFFFu;
}

void Crc32::update(const void* data, std::size_t n) {
  state_ = crcUpdate(state_, data, n);
}

File::~File() {
  if (fd_ >= 0) (void)close();
}

File::File(File&& other) noexcept
    : fd_(other.fd_), path_(std::move(other.path_)), errno_(other.errno_) {
  other.fd_ = -1;
}

File& File::operator=(File&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) (void)close();
    fd_ = other.fd_;
    path_ = std::move(other.path_);
    errno_ = other.errno_;
    other.fd_ = -1;
  }
  return *this;
}

File File::openWith(const std::string& path, int flags) {
  File f(-1, path);
  const Decision d = consultFaults(Op::kOpen, path);
  const int injected = applyPlainFault(d.fault);
  if (injected != 0 && injected != EINTR) {
    f.errno_ = injected;
    return f;
  }
  for (;;) {
    const int fd = ::open(path.c_str(), flags, 0644);
    if (fd >= 0) {
      f.fd_ = fd;
      return f;
    }
    if (errno == EINTR) continue;
    f.errno_ = errno;
    return f;
  }
}

File File::createTrunc(const std::string& path) {
  return openWith(path, O_WRONLY | O_CREAT | O_TRUNC);
}

File File::openAppend(const std::string& path) {
  return openWith(path, O_WRONLY | O_CREAT | O_APPEND);
}

bool File::writeAll(std::string_view data) {
  return writeAll(data.data(), data.size());
}

bool File::writeAll(const void* data, std::size_t n) {
  if (fd_ < 0) {
    if (errno_ == 0) errno_ = EBADF;
    return false;
  }
  const auto* cursor = static_cast<const unsigned char*>(data);
  std::size_t left = n;
  while (left > 0) {
    const Decision d = consultFaults(Op::kWrite, path_);
    ssize_t wrote;
    if (d.fault != Fault::kNone) {
      wrote = applyWriteFault(d.fault, fd_, cursor, left);
    } else {
      wrote = ::write(fd_, cursor, left);
    }
    if (wrote < 0) {
      if (errno == EINTR) continue;
      errno_ = errno;
      return false;
    }
    cursor += wrote;
    left -= static_cast<std::size_t>(wrote);
  }
  return true;
}

bool File::sync() {
  if (fd_ < 0) {
    if (errno_ == 0) errno_ = EBADF;
    return false;
  }
  return syncFd(fd_, path_, errno_);
}

bool File::close() {
  if (fd_ < 0) return true;
  const int fd = fd_;
  fd_ = -1;
  return closeFd(fd, path_, errno_);
}

std::string File::error() const {
  return errno_ == 0 ? std::string() : std::string(std::strerror(errno_));
}

bool atomicReplace(const std::string& temp, const std::string& finalPath,
                   int* errnoOut) {
  const auto fail = [&](int e) {
    if (errnoOut) *errnoOut = e;
    return false;
  };
  const Decision d = consultFaults(Op::kRename, finalPath);
  if (d.fault == Fault::kCrash) ::_exit(kCrashExitCode);
  if (d.fault == Fault::kTorn) {
    // Model a crash right after an un-fsynced rename: the directory
    // entry moved but half the data blocks never hit the platter.
    std::error_code ec;
    const auto size = fs::file_size(temp, ec);
    if (!ec) fs::resize_file(temp, size / 2, ec);
  } else if (d.fault != Fault::kNone) {
    return fail(applyPlainFault(d.fault));
  }
  if (::rename(temp.c_str(), finalPath.c_str()) != 0) return fail(errno);

  // Durability of the rename itself: fsync the parent directory.
  const std::string dir = fs::path(finalPath).parent_path().string();
  if (dir.empty()) return true;
  const int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dfd < 0) return fail(errno);
  int e = 0;
  const bool synced = syncFd(dfd, dir, e);
  ::close(dfd);
  return synced ? true : fail(e);
}

bool createDirectories(const std::string& dir, std::error_code& ec) {
  const Decision d = consultFaults(Op::kMkdir, dir);
  const int injected = applyPlainFault(d.fault);
  if (injected != 0 && injected != EINTR) {
    ec = std::error_code(injected, std::generic_category());
    return false;
  }
  fs::create_directories(dir, ec);
  return !ec;
}

bool writeFileDurable(const std::string& finalPath,
                      const std::string& tempSuffix, std::string_view data) {
  const std::string temp = finalPath + tempSuffix;
  bool ok = false;
  {
    File f = File::createTrunc(temp);
    ok = f.valid() && f.writeAll(data) && f.sync() && f.close();
  }
  if (ok) ok = atomicReplace(temp, finalPath);
  if (!ok) {
    std::error_code ec;
    fs::remove(temp, ec);
  }
  return ok;
}

}  // namespace ssno::io
