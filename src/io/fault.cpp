#include "io/fault.hpp"

#include <mutex>
#include <stdexcept>

#include "obs/metrics.hpp"

namespace ssno::io {
namespace {

const obs::Counter kOpCounters[kOpCount] = {
    obs::Registry::global().counter("io_open_total"),
    obs::Registry::global().counter("io_write_total"),
    obs::Registry::global().counter("io_fsync_total"),
    obs::Registry::global().counter("io_rename_total"),
    obs::Registry::global().counter("io_mkdir_total"),
    obs::Registry::global().counter("io_close_total"),
};
const obs::Counter kFaultsInjected =
    obs::Registry::global().counter("io_faults_injected_total");

constexpr std::string_view kOpNames[kOpCount] = {"open",   "write", "fsync",
                                                 "rename", "mkdir", "close"};

std::mutex gMutex;
FaultSchedule gSchedule;        // guarded by gMutex
bool gActive = false;           // guarded by gMutex

[[noreturn]] void failDirective(std::size_t item, const std::string& what) {
  throw std::invalid_argument("io-faults directive " + std::to_string(item) +
                              ": " + what);
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t'))
    s.remove_prefix(1);
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t'))
    s.remove_suffix(1);
  return s;
}

std::optional<Fault> faultFromName(std::string_view name) {
  if (name == "enospc") return Fault::kEnospc;
  if (name == "eio") return Fault::kEio;
  if (name == "eintr") return Fault::kEintr;
  if (name == "short") return Fault::kShort;
  if (name == "torn") return Fault::kTorn;
  if (name == "crash") return Fault::kCrash;
  return std::nullopt;
}

std::optional<Op> opFromName(std::string_view name) {
  for (int i = 0; i < kOpCount; ++i)
    if (kOpNames[i] == name) return static_cast<Op>(i);
  return std::nullopt;
}

double parseProb(std::string_view text, std::size_t item) {
  double p = -1.0;
  std::size_t used = 0;
  try {
    p = std::stod(std::string(text), &used);
  } catch (const std::exception&) {
    failDirective(item, "bad probability '" + std::string(text) + "'");
  }
  if (used != text.size() || p < 0.0 || p > 1.0)
    failDirective(item, "probability must be in [0, 1], got '" +
                            std::string(text) + "'");
  return p;
}

std::uint64_t parseCount(std::string_view text, std::size_t item) {
  unsigned long long n = 0;
  std::size_t used = 0;
  try {
    n = std::stoull(std::string(text), &used);
  } catch (const std::exception&) {
    failDirective(item, "bad call index '" + std::string(text) + "'");
  }
  if (used != text.size() || n == 0)
    failDirective(item, "call index must be a positive integer, got '" +
                            std::string(text) + "'");
  return n;
}

/// SplitMix64 step — deterministic, seedable, no <random> state size.
std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace

std::string_view opName(Op op) { return kOpNames[static_cast<int>(op)]; }

std::string_view faultName(Fault f) {
  switch (f) {
    case Fault::kNone: return "none";
    case Fault::kEnospc: return "enospc";
    case Fault::kEio: return "eio";
    case Fault::kEintr: return "eintr";
    case Fault::kShort: return "short";
    case Fault::kTorn: return "torn";
    case Fault::kCrash: return "crash";
  }
  return "none";
}

FaultSchedule FaultSchedule::parse(std::string_view spec) {
  FaultSchedule out;
  std::size_t item = 0;
  std::size_t at = 0;
  while (at <= spec.size()) {
    const std::size_t semi = spec.find(';', at);
    std::string_view directive = trim(
        spec.substr(at, semi == std::string_view::npos ? semi : semi - at));
    at = semi == std::string_view::npos ? spec.size() + 1 : semi + 1;
    if (directive.empty()) continue;
    ++item;

    if (directive.rfind("seed=", 0) == 0) {
      out.seed_ = parseCount(directive.substr(5), item);
      continue;
    }

    Rule rule;
    // Split off the fault name (up to '@' or ':').
    const std::size_t nameEnd = directive.find_first_of("@:");
    const std::string_view name = directive.substr(0, nameEnd);
    const auto fault = faultFromName(name);
    if (!fault)
      failDirective(item, "unknown fault '" + std::string(name) +
                              "' (want enospc|eio|eintr|short|torn|crash)");
    rule.fault = *fault;

    std::string_view rest =
        nameEnd == std::string_view::npos ? "" : directive.substr(nameEnd);
    if (!rest.empty() && rest.front() == '@') {
      rest.remove_prefix(1);
      const std::size_t opEnd = rest.find(':');
      const std::string_view op = rest.substr(0, opEnd);
      const auto parsed = opFromName(op);
      if (!parsed)
        failDirective(item, "unknown op '" + std::string(op) +
                                "' (want open|write|fsync|rename|mkdir|close)");
      rule.op = parsed;
      rest = opEnd == std::string_view::npos ? "" : rest.substr(opEnd);
    }
    // Remaining ":"-separated triggers: N | p=<prob> | path=<substr>.
    while (!rest.empty()) {
      rest.remove_prefix(1);  // ':'
      std::size_t end = rest.find(':');
      // "path=" may legitimately contain ':' — it consumes the rest.
      if (rest.rfind("path=", 0) == 0) end = std::string_view::npos;
      const std::string_view trig = rest.substr(0, end);
      if (trig.rfind("p=", 0) == 0) {
        rule.p = parseProb(trig.substr(2), item);
      } else if (trig.rfind("path=", 0) == 0) {
        rule.pathSub = std::string(trig.substr(5));
        if (rule.pathSub.empty())
          failDirective(item, "empty path= filter");
      } else {
        rule.nth = parseCount(trig, item);
      }
      rest = end == std::string_view::npos ? "" : rest.substr(end);
    }
    if (rule.nth != 0 && rule.p >= 0.0)
      failDirective(item, "give a call index or p=, not both");
    if (!rule.op && rule.p < 0.0 && rule.nth == 0)
      failDirective(item, "a fault without an op needs p= (\"" +
                              std::string(name) +
                              "\" alone would fire on every op)");
    out.rules_.push_back(std::move(rule));
  }
  return out;
}

double FaultSchedule::nextUniform() {
  if (!rngInit_) {
    rngState_ = seed_;
    rngInit_ = true;
  }
  // 53-bit mantissa scaling: uniform in [0, 1).
  return static_cast<double>(splitmix64(rngState_) >> 11) * 0x1.0p-53;
}

Decision FaultSchedule::decide(Op op, std::string_view path) {
  for (Rule& rule : rules_) {
    if (rule.op && *rule.op != op) continue;
    if (!rule.pathSub.empty() &&
        path.find(rule.pathSub) == std::string_view::npos)
      continue;
    ++rule.matched;
    if (rule.nth != 0) {
      if (rule.fired || rule.matched != rule.nth) continue;
      rule.fired = true;
      return {rule.fault};
    }
    if (rule.p >= 0.0) {
      if (nextUniform() >= rule.p) continue;
      return {rule.fault};
    }
    return {rule.fault};  // unconditional: every matching call
  }
  return {};
}

std::string FaultSchedule::render() const {
  std::string out;
  for (const Rule& rule : rules_) {
    if (!out.empty()) out += "; ";
    out += faultName(rule.fault);
    if (rule.op) out += "@" + std::string(opName(*rule.op));
    if (rule.nth != 0) out += ":" + std::to_string(rule.nth);
    if (rule.p >= 0.0) {
      out += ":p=" + std::to_string(rule.p);
    }
    if (!rule.pathSub.empty()) out += ":path=" + rule.pathSub;
  }
  return out;
}

void installFaultSchedule(FaultSchedule sched) {
  std::lock_guard<std::mutex> lk(gMutex);
  gActive = !sched.empty();
  gSchedule = std::move(sched);
}

void clearFaultSchedule() { installFaultSchedule(FaultSchedule{}); }

bool faultInjectionActive() {
  std::lock_guard<std::mutex> lk(gMutex);
  return gActive;
}

Decision consultFaults(Op op, std::string_view path) {
  kOpCounters[static_cast<int>(op)].inc();
  std::lock_guard<std::mutex> lk(gMutex);
  if (!gActive) return {};
  const Decision d = gSchedule.decide(op, path);
  if (d.fault != Fault::kNone) kFaultsInjected.inc();
  return d;
}

}  // namespace ssno::io
