// io/file — the durable-I/O primitives every durable-state writer uses.
//
// A thin fd-level layer (no stdio buffering: what writeAll reports
// written has reached the kernel) whose every mutation consults the
// fault schedule in io/fault.hpp, so the chaos harness can fail, tear,
// or crash any write at an exact call index.  The contract writers get:
//
//   File::createTrunc/openAppend  open through the schedule (op open)
//   File::writeAll                loops over short writes and EINTR
//                                 (op write, once per underlying call)
//   File::sync                    fsync, EINTR-retried (op fsync)
//   File::close                   close (op close); also run by ~File
//   atomicReplace(temp, final)    rename(temp, final) + fsync of the
//                                 parent directory (ops rename, open,
//                                 fsync, close), so the rename itself
//                                 is durable — callers must writeAll +
//                                 sync the temp file FIRST, making the
//                                 sequence crash-safe: after any crash
//                                 the final path holds either the old
//                                 bytes or the complete new bytes
//   createDirectories             fs::create_directories (op mkdir)
//
// Every operation is best-effort at this layer: failures return false
// (errno preserved in errnoValue()/error()) and the CALLER decides
// whether that is a counted degradation (serve/cache), a warning
// counter (scheduler checkpoint appends), or a named error (mc/spill).
//
// The CRC-32 used by record/run integrity headers lives here too so
// serve/cache and mc/spill share one implementation.
#ifndef SSNO_IO_FILE_HPP
#define SSNO_IO_FILE_HPP

#include <cstdint>
#include <string>
#include <string_view>
#include <system_error>

namespace ssno::io {

/// CRC-32 (IEEE 802.3, reflected 0xEDB88320).
[[nodiscard]] std::uint32_t crc32(std::string_view data);

/// Incremental CRC-32 over a byte stream (same polynomial/final xor as
/// crc32(); value() may be read at any point).
class Crc32 {
 public:
  void update(const void* data, std::size_t n);
  [[nodiscard]] std::uint32_t value() const { return state_ ^ 0xFFFFFFFFu; }

 private:
  std::uint32_t state_ = 0xFFFFFFFFu;
};

class File {
 public:
  File() = default;
  ~File();
  File(File&& other) noexcept;
  File& operator=(File&& other) noexcept;
  File(const File&) = delete;
  File& operator=(const File&) = delete;

  /// O_WRONLY|O_CREAT|O_TRUNC — a fresh temp file about to be filled.
  static File createTrunc(const std::string& path);
  /// O_WRONLY|O_CREAT|O_APPEND — checkpoint-style line appends.
  static File openAppend(const std::string& path);

  [[nodiscard]] bool valid() const { return fd_ >= 0; }
  [[nodiscard]] const std::string& path() const { return path_; }

  /// Writes all of `data`, looping over short writes and EINTR.  False
  /// on the first hard failure (some prefix may already be on disk —
  /// exactly the torn state readers must detect).
  bool writeAll(std::string_view data);
  bool writeAll(const void* data, std::size_t n);

  /// fsync, EINTR-retried.
  bool sync();

  /// Explicit close so callers can sequence it before a rename; false
  /// when close reports an error (the fd is released either way).
  bool close();

  [[nodiscard]] int errnoValue() const { return errno_; }
  /// strerror text of the last failure ("" when none).
  [[nodiscard]] std::string error() const;

 private:
  File(int fd, std::string path) : fd_(fd), path_(std::move(path)) {}
  static File openWith(const std::string& path, int flags);

  int fd_ = -1;
  std::string path_;
  int errno_ = 0;
};

/// Durable atomic replace: rename(temp, final), then open + fsync +
/// close the parent directory of `final` so the directory entry itself
/// survives a crash.  The temp file must already be written and synced.
/// False (errno in `ec`-style via errnoOut when non-null) on failure;
/// the temp file is left for the caller to clean up.
bool atomicReplace(const std::string& temp, const std::string& finalPath,
                   int* errnoOut = nullptr);

/// fs::create_directories routed through the fault schedule (op mkdir).
bool createDirectories(const std::string& dir, std::error_code& ec);

/// Convenience: createTrunc + writeAll + sync + close + atomicReplace.
/// The temp path is `finalPath` + tempSuffix.  On any failure the temp
/// file is removed (best effort) and false returned.
bool writeFileDurable(const std::string& finalPath,
                      const std::string& tempSuffix, std::string_view data);

}  // namespace ssno::io

#endif  // SSNO_IO_FILE_HPP
