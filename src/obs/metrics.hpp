#ifndef SSNO_OBS_METRICS_HPP
#define SSNO_OBS_METRICS_HPP

// Low-overhead metrics registry: named counters, gauges and log2-bucket
// histograms.  Hot-path writes go to per-thread slabs of relaxed atomics
// (no locks, no false sharing with readers); reads merge every slab by
// summation, which is associative and commutative, so a merged snapshot
// is bit-identical regardless of thread count or interleaving.
//
// Naming convention (see README "Observability"): snake_case,
// `<area>_<what>_total` for counters, `<area>_<what>` for gauges,
// `<area>_<what>_ns` (or another explicit unit) for histograms.  Areas
// in use: sim_, sync_, mc_, serve_, resil_, exp_.
//
// Cost model: `Counter::inc` on the hot path is one relaxed load of the
// global enabled flag, a POD thread-local slab lookup, and one relaxed
// fetch_add — a few ns.  Histogram::observe adds two more fetch_adds.
// ScopedTimer reads the steady clock twice; keep it off per-step paths.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace ssno::obs {

/// Global kill switch.  Disabled => every write is a single relaxed
/// load-and-return.  Enabled by default (the <2% overhead budget is for
/// the enabled-but-idle state; see BENCH_obs.json).
bool enabled();
void setEnabled(bool on);

class Registry;

/// Number of log2 histogram buckets.  Bucket 0 holds the value 0,
/// bucket b (1..63) holds values with bit_width b, i.e. [2^(b-1), 2^b).
inline constexpr int kHistogramBuckets = 64;

struct MetricSnapshot {
  enum class Kind { kCounter, kGauge, kHistogram };
  std::string name;
  Kind kind = Kind::kCounter;
  std::uint64_t value = 0;                // counter total
  std::int64_t gaugeValue = 0;            // gauge value
  std::vector<std::uint64_t> buckets;     // histogram per-bucket counts
  std::uint64_t count = 0;                // histogram observation count
  std::uint64_t sum = 0;                  // histogram sum of values
};

/// Cheap POD handle; copy freely.  Valid as long as its Registry lives
/// (handles on Registry::global() are valid forever).
class Counter {
 public:
  Counter() = default;
  void inc(std::uint64_t n = 1) const;

 private:
  friend class Registry;
  Counter(Registry* reg, std::uint32_t slot) : reg_(reg), slot_(slot) {}
  Registry* reg_ = nullptr;
  std::uint32_t slot_ = 0;
};

/// A single process-global cell (not sharded): gauges represent a
/// current level, which does not merge by summation.  Set/add are
/// relaxed atomics; intended for low-frequency updates (queue depth at
/// render time, load factor at a level barrier), not per-step paths.
class Gauge {
 public:
  Gauge() = default;
  void set(std::int64_t v) const;
  void add(std::int64_t d) const;
  std::int64_t value() const;

 private:
  friend class Registry;
  explicit Gauge(std::atomic<std::int64_t>* cell) : cell_(cell) {}
  std::atomic<std::int64_t>* cell_ = nullptr;
};

class Histogram {
 public:
  Histogram() = default;
  void observe(std::uint64_t v) const;

 private:
  friend class Registry;
  friend class ScopedTimer;
  Histogram(Registry* reg, std::uint32_t base) : reg_(reg), base_(base) {}
  Registry* reg_ = nullptr;
  std::uint32_t base_ = 0;
};

/// Feeds elapsed nanoseconds into a histogram on destruction.  Pays two
/// steady_clock reads when telemetry is enabled; reads no clock at all
/// when disabled.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram h);
  ~ScopedTimer();
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Histogram h_;
  std::chrono::steady_clock::time_point start_{};
  bool armed_ = false;
};

class Registry {
 public:
  /// The process-wide registry every engine instruments against.
  /// Never destroyed (function-local static), so handles and cached
  /// thread-local slab pointers stay valid for the process lifetime.
  static Registry& global();

  Registry();
  ~Registry();
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Idempotent: the same name always returns a handle onto the same
  /// metric.  Registering a name under two different kinds throws.
  Counter counter(std::string_view name);
  Gauge gauge(std::string_view name);
  Histogram histogram(std::string_view name);

  /// Deterministic merged view, sorted by name.  Safe to call while
  /// writers are active (relaxed reads; a racing increment lands in
  /// this snapshot or the next, never torn).
  std::vector<MetricSnapshot> snapshot() const;

  /// Prometheus text exposition built from snapshot().
  std::string renderPrometheus() const;

  /// Merged total for one counter (0 when never registered).
  std::uint64_t counterValue(std::string_view name) const;

  /// Zeroes every slab slot and gauge; keeps registrations and handles
  /// valid.  Test / bench-rep helper — callers must be quiesced.
  void reset();

  /// Per-thread slot array (opaque; defined in metrics.cpp).  Public
  /// only so the thread-local cache in metrics.cpp can name it.
  struct Slab;

 private:
  friend class Counter;
  friend class Histogram;
  struct Impl;
  Slab* slabForCurrentThread();
  std::unique_ptr<Impl> impl_;
};

/// Log2 bucket index for a histogram value (exposed for tests).
int histogramBucket(std::uint64_t v);

}  // namespace ssno::obs

#endif  // SSNO_OBS_METRICS_HPP
