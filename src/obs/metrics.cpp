#include "obs/metrics.hpp"

#include <algorithm>
#include <bit>
#include <stdexcept>

namespace ssno::obs {

namespace {

std::atomic<bool> g_enabled{true};

// Registries are identified by (address, serial): an address can be
// recycled after destruction, a serial cannot, so a stale thread-local
// cache entry can never alias a different live registry.
std::atomic<std::uint64_t> g_nextRegistrySerial{1};

}  // namespace

bool enabled() { return g_enabled.load(std::memory_order_relaxed); }
void setEnabled(bool on) { g_enabled.store(on, std::memory_order_relaxed); }

int histogramBucket(std::uint64_t v) {
  if (v == 0) return 0;
  const int b = std::bit_width(v);  // 1..64
  return b > kHistogramBuckets - 1 ? kHistogramBuckets - 1 : b;
}

// Fixed-geometry chunked slot array: slots are never moved once a chunk
// is allocated, so the owning thread writes lock-free while merge reads
// race benignly (a chunk pointer is published with release after its
// zero-initialization; slot updates are relaxed and land in this
// snapshot or the next).
struct Registry::Slab {
  static constexpr std::uint32_t kChunkSize = 1024;
  static constexpr std::uint32_t kMaxChunks = 256;
  std::atomic<std::atomic<std::uint64_t>*> chunks[kMaxChunks] = {};

  ~Slab() {
    for (auto& c : chunks) delete[] c.load(std::memory_order_relaxed);
  }

  void add(std::uint32_t slot, std::uint64_t n) {
    auto& cell = chunks[slot / kChunkSize];
    auto* chunk = cell.load(std::memory_order_relaxed);
    if (chunk == nullptr) {
      chunk = new std::atomic<std::uint64_t>[kChunkSize]();
      cell.store(chunk, std::memory_order_release);
    }
    chunk[slot % kChunkSize].fetch_add(n, std::memory_order_relaxed);
  }

  std::uint64_t read(std::uint32_t slot) const {
    const auto* chunk = chunks[slot / kChunkSize].load(std::memory_order_acquire);
    if (chunk == nullptr) return 0;
    return chunk[slot % kChunkSize].load(std::memory_order_relaxed);
  }

  void zero() {
    for (auto& cell : chunks) {
      auto* chunk = cell.load(std::memory_order_relaxed);
      if (chunk == nullptr) continue;
      for (std::uint32_t i = 0; i < kChunkSize; ++i)
        chunk[i].store(0, std::memory_order_relaxed);
    }
  }
};

namespace {

struct MetricDesc {
  std::string name;
  MetricSnapshot::Kind kind = MetricSnapshot::Kind::kCounter;
  // Slab slot base for counters (1 slot) and histograms (buckets +
  // count + sum); index into Impl::gauges for gauges.
  std::uint32_t base = 0;
};

constexpr std::uint32_t kHistogramSlots =
    static_cast<std::uint32_t>(kHistogramBuckets) + 2;
constexpr std::uint32_t kCountSlot = kHistogramBuckets;
constexpr std::uint32_t kSumSlot = kHistogramBuckets + 1;

}  // namespace

struct Registry::Impl {
  std::uint64_t serial = 0;
  mutable std::mutex mu;
  std::vector<MetricDesc> metrics;
  std::uint32_t nextSlot = 0;
  std::vector<std::unique_ptr<Slab>> slabs;
  std::vector<std::unique_ptr<std::atomic<std::int64_t>>> gauges;

  const MetricDesc& registerMetric(std::string_view name,
                                   MetricSnapshot::Kind kind,
                                   std::uint32_t slots) {
    std::lock_guard<std::mutex> lk(mu);
    for (const MetricDesc& m : metrics) {
      if (m.name == name) {
        if (m.kind != kind)
          throw std::logic_error("obs: metric '" + m.name +
                                 "' re-registered under a different kind");
        return m;
      }
    }
    MetricDesc d;
    d.name = std::string(name);
    d.kind = kind;
    if (kind == MetricSnapshot::Kind::kGauge) {
      d.base = static_cast<std::uint32_t>(gauges.size());
      gauges.push_back(std::make_unique<std::atomic<std::int64_t>>(0));
    } else {
      constexpr std::uint32_t kCapacity = Slab::kChunkSize * Slab::kMaxChunks;
      if (nextSlot + slots > kCapacity)
        throw std::logic_error("obs: registry slot capacity exhausted");
      d.base = nextSlot;
      nextSlot += slots;
    }
    metrics.push_back(std::move(d));
    return metrics.back();
  }

  std::uint64_t sumSlot(std::uint32_t slot) const {
    std::uint64_t total = 0;
    for (const auto& s : slabs) total += s->read(slot);
    return total;
  }
};

namespace {

// POD thread-local cache mapping (registry, serial) -> this thread's
// slab.  Trivially destructible on purpose: no TLS guard on the hot
// path, and no destructor ordering hazards at thread exit (slabs are
// owned by the registry, which outlives its writers).
struct TlsEntry {
  const void* reg;
  std::uint64_t serial;
  Registry::Slab* slab;
};
constexpr int kTlsEntries = 4;
thread_local TlsEntry g_tlsSlabs[kTlsEntries];

}  // namespace

Registry& Registry::global() {
  // Leaked on purpose: handles and thread-local slab pointers must stay
  // valid through static destruction of other translation units.
  static Registry* const g = new Registry();
  return *g;
}

Registry::Registry() : impl_(std::make_unique<Impl>()) {
  impl_->serial = g_nextRegistrySerial.fetch_add(1, std::memory_order_relaxed);
}

Registry::~Registry() = default;

Registry::Slab* Registry::slabForCurrentThread() {
  for (TlsEntry& e : g_tlsSlabs) {
    if (e.reg == this && e.serial == impl_->serial) return e.slab;
  }
  Slab* slab = nullptr;
  {
    std::lock_guard<std::mutex> lk(impl_->mu);
    impl_->slabs.push_back(std::make_unique<Slab>());
    slab = impl_->slabs.back().get();
  }
  for (TlsEntry& e : g_tlsSlabs) {
    if (e.reg == nullptr) {
      e = TlsEntry{this, impl_->serial, slab};
      return slab;
    }
  }
  g_tlsSlabs[0] = TlsEntry{this, impl_->serial, slab};
  return slab;
}

Counter Registry::counter(std::string_view name) {
  const MetricDesc& d =
      impl_->registerMetric(name, MetricSnapshot::Kind::kCounter, 1);
  return Counter(this, d.base);
}

Gauge Registry::gauge(std::string_view name) {
  const MetricDesc& d =
      impl_->registerMetric(name, MetricSnapshot::Kind::kGauge, 0);
  std::lock_guard<std::mutex> lk(impl_->mu);
  return Gauge(impl_->gauges[d.base].get());
}

Histogram Registry::histogram(std::string_view name) {
  const MetricDesc& d = impl_->registerMetric(
      name, MetricSnapshot::Kind::kHistogram, kHistogramSlots);
  return Histogram(this, d.base);
}

std::vector<MetricSnapshot> Registry::snapshot() const {
  std::lock_guard<std::mutex> lk(impl_->mu);
  std::vector<MetricSnapshot> out;
  out.reserve(impl_->metrics.size());
  for (const MetricDesc& m : impl_->metrics) {
    MetricSnapshot s;
    s.name = m.name;
    s.kind = m.kind;
    switch (m.kind) {
      case MetricSnapshot::Kind::kCounter:
        s.value = impl_->sumSlot(m.base);
        break;
      case MetricSnapshot::Kind::kGauge:
        s.gaugeValue =
            impl_->gauges[m.base]->load(std::memory_order_relaxed);
        break;
      case MetricSnapshot::Kind::kHistogram:
        s.buckets.resize(kHistogramBuckets);
        for (int b = 0; b < kHistogramBuckets; ++b)
          s.buckets[static_cast<std::size_t>(b)] =
              impl_->sumSlot(m.base + static_cast<std::uint32_t>(b));
        s.count = impl_->sumSlot(m.base + kCountSlot);
        s.sum = impl_->sumSlot(m.base + kSumSlot);
        break;
    }
    out.push_back(std::move(s));
  }
  std::sort(out.begin(), out.end(),
            [](const MetricSnapshot& a, const MetricSnapshot& b) {
              return a.name < b.name;
            });
  return out;
}

std::string Registry::renderPrometheus() const {
  std::string out;
  for (const MetricSnapshot& s : snapshot()) {
    switch (s.kind) {
      case MetricSnapshot::Kind::kCounter:
        out += "# TYPE " + s.name + " counter\n";
        out += s.name + " " + std::to_string(s.value) + "\n";
        break;
      case MetricSnapshot::Kind::kGauge:
        out += "# TYPE " + s.name + " gauge\n";
        out += s.name + " " + std::to_string(s.gaugeValue) + "\n";
        break;
      case MetricSnapshot::Kind::kHistogram: {
        out += "# TYPE " + s.name + " histogram\n";
        int top = kHistogramBuckets - 1;
        while (top > 0 && s.buckets[static_cast<std::size_t>(top)] == 0) --top;
        std::uint64_t cum = 0;
        for (int b = 0; b <= top; ++b) {
          cum += s.buckets[static_cast<std::size_t>(b)];
          // Bucket b holds values with bit_width b: inclusive upper
          // bound 2^b - 1 (bucket 0 holds only the value 0).
          const std::uint64_t le =
              b == 0 ? 0
                     : (b >= 64 ? ~0ull : (std::uint64_t{1} << b) - 1);
          out += s.name + "_bucket{le=\"" + std::to_string(le) + "\"} " +
                 std::to_string(cum) + "\n";
        }
        out += s.name + "_bucket{le=\"+Inf\"} " + std::to_string(s.count) +
               "\n";
        out += s.name + "_sum " + std::to_string(s.sum) + "\n";
        out += s.name + "_count " + std::to_string(s.count) + "\n";
        break;
      }
    }
  }
  return out;
}

std::uint64_t Registry::counterValue(std::string_view name) const {
  std::lock_guard<std::mutex> lk(impl_->mu);
  for (const MetricDesc& m : impl_->metrics) {
    if (m.name == name && m.kind == MetricSnapshot::Kind::kCounter)
      return impl_->sumSlot(m.base);
  }
  return 0;
}

void Registry::reset() {
  std::lock_guard<std::mutex> lk(impl_->mu);
  for (const auto& s : impl_->slabs) s->zero();
  for (const auto& g : impl_->gauges) g->store(0, std::memory_order_relaxed);
}

void Counter::inc(std::uint64_t n) const {
  if (reg_ == nullptr || !enabled()) return;
  reg_->slabForCurrentThread()->add(slot_, n);
}

void Gauge::set(std::int64_t v) const {
  if (cell_ == nullptr || !enabled()) return;
  cell_->store(v, std::memory_order_relaxed);
}

void Gauge::add(std::int64_t d) const {
  if (cell_ == nullptr || !enabled()) return;
  cell_->fetch_add(d, std::memory_order_relaxed);
}

std::int64_t Gauge::value() const {
  return cell_ == nullptr ? 0 : cell_->load(std::memory_order_relaxed);
}

void Histogram::observe(std::uint64_t v) const {
  if (reg_ == nullptr || !enabled()) return;
  Registry::Slab* slab = reg_->slabForCurrentThread();
  slab->add(base_ + static_cast<std::uint32_t>(histogramBucket(v)), 1);
  slab->add(base_ + kCountSlot, 1);
  slab->add(base_ + kSumSlot, v);
}

ScopedTimer::ScopedTimer(Histogram h) : h_(h) {
  if (h_.reg_ != nullptr && enabled()) {
    armed_ = true;
    start_ = std::chrono::steady_clock::now();
  }
}

ScopedTimer::~ScopedTimer() {
  if (!armed_) return;
  const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                      std::chrono::steady_clock::now() - start_)
                      .count();
  h_.observe(ns < 0 ? 0 : static_cast<std::uint64_t>(ns));
}

}  // namespace ssno::obs
