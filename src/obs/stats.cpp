#include "obs/stats.hpp"

#include <algorithm>
#include <cmath>

#include "core/assert.hpp"

namespace ssno {

Summary summarize(std::vector<double> samples) {
  Summary s;
  s.count = static_cast<int>(samples.size());
  if (samples.empty()) return s;
  std::sort(samples.begin(), samples.end());
  s.min = samples.front();
  s.max = samples.back();
  double sum = 0;
  for (double v : samples) sum += v;
  s.mean = sum / static_cast<double>(samples.size());
  double var = 0;
  for (double v : samples) var += (v - s.mean) * (v - s.mean);
  s.stddev = samples.size() > 1
                 ? std::sqrt(var / static_cast<double>(samples.size() - 1))
                 : 0.0;
  auto quantile = [&samples](double q) {
    const double pos = q * static_cast<double>(samples.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(pos);
    const std::size_t hi = std::min(lo + 1, samples.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    return samples[lo] * (1 - frac) + samples[hi] * frac;
  };
  s.p50 = quantile(0.50);
  s.p95 = quantile(0.95);
  return s;
}

LinearFit fitLinear(const std::vector<double>& x, const std::vector<double>& y) {
  SSNO_EXPECTS(x.size() == y.size() && x.size() >= 2);
  const double n = static_cast<double>(x.size());
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sx += x[i];
    sy += y[i];
    sxx += x[i] * x[i];
    sxy += x[i] * y[i];
  }
  LinearFit f;
  const double denom = n * sxx - sx * sx;
  if (denom == 0) {
    f.slope = 0;
    f.intercept = sy / n;
  } else {
    f.slope = (n * sxy - sx * sy) / denom;
    f.intercept = (sy - f.slope * sx) / n;
  }
  double ssRes = 0, ssTot = 0;
  const double meanY = sy / n;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double pred = f.slope * x[i] + f.intercept;
    ssRes += (y[i] - pred) * (y[i] - pred);
    ssTot += (y[i] - meanY) * (y[i] - meanY);
  }
  f.r2 = ssTot == 0 ? 1.0 : 1.0 - ssRes / ssTot;
  return f;
}

}  // namespace ssno
