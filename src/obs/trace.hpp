#ifndef SSNO_OBS_TRACE_HPP
#define SSNO_OBS_TRACE_HPP

// Phase tracer: scoped spans buffered per-thread and emitted as Chrome
// trace-event JSON ("X" complete events), loadable in Perfetto or
// chrome://tracing.  Tracing is a separate switch from the metrics
// enabled flag because a span costs two steady_clock reads — when
// tracing is off, constructing a TraceSpan is one relaxed load and
// nothing else, so spans may sit on per-step paths.
//
// Span names must be string literals (the tracer stores the pointer).
// Each span carries up to kMaxSpanArgs integer args (counter snapshots,
// sizes, depths) shown in the viewer's args pane.

#include <cstdint>
#include <string>

namespace ssno::obs {

inline constexpr int kMaxSpanArgs = 3;

bool tracingEnabled();

/// Clears any previous trace and starts buffering events.  Times are
/// relative to this call.
void startTracing();

/// Stops buffering; events stay available for traceJson()/writeTrace().
void stopTracing();

/// Drops all buffered events (implicit in startTracing()).
void clearTrace();

/// Merged Chrome trace JSON: {"traceEvents":[...]}.  Callable after
/// stopTracing(), or live (captures events published so far).
std::string traceJson();

/// Writes traceJson() to a file; returns false on IO failure.
bool writeTrace(const std::string& path);

/// Events dropped because a thread hit its buffer cap (per session).
std::uint64_t traceDroppedEvents();

class TraceSpan {
 public:
  /// `name` must outlive the tracing session — pass a string literal.
  explicit TraceSpan(const char* name);
  ~TraceSpan();
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// Attaches an integer arg (ignored past kMaxSpanArgs or when the
  /// span is unarmed).  `key` must be a string literal too.
  void arg(const char* key, std::uint64_t value);

 private:
  const char* name_ = nullptr;
  std::uint64_t t0_ = 0;
  int argc_ = 0;
  const char* argKeys_[kMaxSpanArgs] = {};
  std::uint64_t argVals_[kMaxSpanArgs] = {};
  bool armed_ = false;
};

/// Zero-duration instant event (viewer renders a vertical tick).
void traceInstant(const char* name);

}  // namespace ssno::obs

#endif  // SSNO_OBS_TRACE_HPP
