#include "obs/trace.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>
#include <mutex>
#include <vector>

namespace ssno::obs {

namespace {

std::uint64_t nowNs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

struct Event {
  const char* name = nullptr;
  std::uint64_t t0 = 0;  // ns since session start
  std::uint64_t t1 = 0;
  std::uint8_t kind = 0;  // 0 = span ("X"), 1 = instant ("i")
  std::uint8_t argc = 0;
  const char* argKeys[kMaxSpanArgs] = {};
  std::uint64_t argVals[kMaxSpanArgs] = {};
};

// Per-thread event buffer with fixed chunk geometry: the owning thread
// appends lock-free and publishes via a release store of `size`; the
// merge reader's acquire load of `size` makes every published event's
// payload visible.  Chunks are never reallocated within a session.
struct TraceBuf {
  static constexpr std::uint32_t kChunkSize = 4096;
  static constexpr std::uint32_t kMaxChunks = 256;  // ~1M events/thread
  std::atomic<Event*> chunks[kMaxChunks] = {};
  std::atomic<std::uint32_t> size{0};
  std::uint32_t tid = 0;

  ~TraceBuf() {
    for (auto& c : chunks) delete[] c.load(std::memory_order_relaxed);
  }

  bool push(const Event& e) {
    const std::uint32_t i = size.load(std::memory_order_relaxed);
    if (i >= kChunkSize * kMaxChunks) return false;
    auto& cell = chunks[i / kChunkSize];
    Event* chunk = cell.load(std::memory_order_relaxed);
    if (chunk == nullptr) {
      chunk = new Event[kChunkSize];
      cell.store(chunk, std::memory_order_release);
    }
    chunk[i % kChunkSize] = e;
    size.store(i + 1, std::memory_order_release);
    return true;
  }

  const Event& at(std::uint32_t i) const {
    return chunks[i / kChunkSize].load(std::memory_order_acquire)
        [i % kChunkSize];
  }
};

struct Tracer {
  std::atomic<bool> on{false};
  std::atomic<std::uint64_t> session{0};
  std::atomic<std::uint64_t> epochNs{0};
  std::atomic<std::uint64_t> dropped{0};
  std::mutex mu;
  std::vector<std::unique_ptr<TraceBuf>> bufs;
  std::uint32_t nextTid = 1;
};

Tracer& tracer() {
  static Tracer* const t = new Tracer();  // leaked: outlives TU teardown
  return *t;
}

// POD thread-local cache; the session check forces re-registration
// after every startTracing()/clearTrace() (which delete old buffers, so
// those calls must not race threads with spans in flight).
struct TlsBuf {
  std::uint64_t session;
  TraceBuf* buf;
};
thread_local TlsBuf g_tlsBuf;

TraceBuf* bufForCurrentThread() {
  Tracer& t = tracer();
  const std::uint64_t session = t.session.load(std::memory_order_acquire);
  if (g_tlsBuf.buf != nullptr && g_tlsBuf.session == session)
    return g_tlsBuf.buf;
  std::lock_guard<std::mutex> lk(t.mu);
  t.bufs.push_back(std::make_unique<TraceBuf>());
  TraceBuf* buf = t.bufs.back().get();
  buf->tid = t.nextTid++;
  g_tlsBuf = TlsBuf{session, buf};
  return buf;
}

void record(const Event& e) {
  if (!bufForCurrentThread()->push(e))
    tracer().dropped.fetch_add(1, std::memory_order_relaxed);
}

void appendJsonEvent(std::string& out, const Event& e, std::uint32_t tid,
                     bool& first) {
  if (!first) out += ",\n";
  first = false;
  char num[64];
  out += R"({"name":")";
  out += e.name;
  out += R"(","cat":"ssno","pid":1,"tid":)";
  out += std::to_string(tid);
  std::snprintf(num, sizeof num, R"(,"ts":%.3f)",
                static_cast<double>(e.t0) / 1000.0);
  out += num;
  if (e.kind == 0) {
    const std::uint64_t dur = e.t1 >= e.t0 ? e.t1 - e.t0 : 0;
    std::snprintf(num, sizeof num, R"(,"ph":"X","dur":%.3f)",
                  static_cast<double>(dur) / 1000.0);
    out += num;
  } else {
    out += R"(,"ph":"i","s":"t")";
  }
  if (e.argc > 0) {
    out += R"(,"args":{)";
    for (int a = 0; a < e.argc; ++a) {
      if (a > 0) out += ',';
      out += '"';
      out += e.argKeys[a];
      out += R"(":)";
      out += std::to_string(e.argVals[a]);
    }
    out += '}';
  }
  out += '}';
}

}  // namespace

bool tracingEnabled() {
  return tracer().on.load(std::memory_order_relaxed);
}

void startTracing() {
  Tracer& t = tracer();
  clearTrace();
  t.epochNs.store(nowNs(), std::memory_order_relaxed);
  t.on.store(true, std::memory_order_release);
}

void stopTracing() {
  tracer().on.store(false, std::memory_order_release);
}

void clearTrace() {
  Tracer& t = tracer();
  t.on.store(false, std::memory_order_release);
  std::lock_guard<std::mutex> lk(t.mu);
  t.bufs.clear();
  t.nextTid = 1;
  t.dropped.store(0, std::memory_order_relaxed);
  t.session.fetch_add(1, std::memory_order_release);
}

std::uint64_t traceDroppedEvents() {
  return tracer().dropped.load(std::memory_order_relaxed);
}

std::string traceJson() {
  Tracer& t = tracer();
  std::lock_guard<std::mutex> lk(t.mu);
  std::string out;
  out += "{\"traceEvents\":[\n";
  bool first = true;
  for (const auto& buf : t.bufs) {
    const std::uint32_t n = buf->size.load(std::memory_order_acquire);
    for (std::uint32_t i = 0; i < n; ++i)
      appendJsonEvent(out, buf->at(i), buf->tid, first);
  }
  out += "\n]}\n";
  return out;
}

bool writeTrace(const std::string& path) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  if (!f) return false;
  const std::string json = traceJson();
  f.write(json.data(), static_cast<std::streamsize>(json.size()));
  return static_cast<bool>(f);
}

TraceSpan::TraceSpan(const char* name) {
  if (!tracingEnabled()) return;
  armed_ = true;
  name_ = name;
  t0_ = nowNs() - tracer().epochNs.load(std::memory_order_relaxed);
}

void TraceSpan::arg(const char* key, std::uint64_t value) {
  if (!armed_ || argc_ >= kMaxSpanArgs) return;
  argKeys_[argc_] = key;
  argVals_[argc_] = value;
  ++argc_;
}

TraceSpan::~TraceSpan() {
  if (!armed_) return;
  Event e;
  e.name = name_;
  e.t0 = t0_;
  e.t1 = nowNs() - tracer().epochNs.load(std::memory_order_relaxed);
  e.kind = 0;
  e.argc = static_cast<std::uint8_t>(argc_);
  for (int a = 0; a < argc_; ++a) {
    e.argKeys[a] = argKeys_[a];
    e.argVals[a] = argVals_[a];
  }
  record(e);
}

void traceInstant(const char* name) {
  if (!tracingEnabled()) return;
  Event e;
  e.name = name;
  e.t0 = nowNs() - tracer().epochNs.load(std::memory_order_relaxed);
  e.t1 = e.t0;
  e.kind = 1;
  record(e);
}

}  // namespace ssno::obs
