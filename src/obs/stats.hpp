// Offline statistics helpers for the observability/bench layer: summary
// statistics over repeated runs and a least-squares linear fit used to
// check the paper's O(n) / O(h) scaling claims empirically.  Online
// (hot-path) accounting lives in obs/metrics.hpp; these helpers reduce
// the collected samples after a run.
#ifndef SSNO_OBS_STATS_HPP
#define SSNO_OBS_STATS_HPP

#include <vector>

namespace ssno {

struct Summary {
  double min = 0, max = 0, mean = 0, stddev = 0, p50 = 0, p95 = 0;
  int count = 0;
};

[[nodiscard]] Summary summarize(std::vector<double> samples);

struct LinearFit {
  double slope = 0;
  double intercept = 0;
  double r2 = 0;  ///< coefficient of determination
};

/// Ordinary least squares y ≈ slope·x + intercept.  Needs ≥ 2 points.
[[nodiscard]] LinearFit fitLinear(const std::vector<double>& x,
                                  const std::vector<double>& y);

}  // namespace ssno

#endif  // SSNO_OBS_STATS_HPP
