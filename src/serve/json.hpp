// serve/json — a minimal JSON value for the line-delimited protocol.
//
// Exactly what the serve protocol needs and nothing more: parse one
// request object per line, build one response object per line.  Objects
// preserve insertion order (responses render deterministically), lookup
// is linear (protocol objects have a handful of keys).  Numbers are
// doubles; every integer the protocol carries (job ids, trial counts,
// budgets) is well inside the 2^53 exact range.  parse() is strict —
// trailing bytes after the value are an error — and throws
// std::invalid_argument with a byte offset.  String escapes cover the
// JSON basics plus non-surrogate \uXXXX (encoded as UTF-8).  Container
// nesting is capped at 128 levels, so adversarial "[[[[..." input is a
// byte-offset error, never a stack overflow.
#ifndef SSNO_SERVE_JSON_HPP
#define SSNO_SERVE_JSON_HPP

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

namespace ssno::serve {

/// JSON-escapes `s` (no surrounding quotes).
[[nodiscard]] std::string jsonEscape(std::string_view s);

class JsonValue {
 public:
  using Array = std::vector<JsonValue>;
  using Object = std::vector<std::pair<std::string, JsonValue>>;

  JsonValue() = default;  // null
  JsonValue(bool b) : value_(b) {}
  JsonValue(double n) : value_(n) {}
  JsonValue(int n) : value_(static_cast<double>(n)) {}
  JsonValue(std::int64_t n) : value_(static_cast<double>(n)) {}
  JsonValue(std::uint64_t n) : value_(static_cast<double>(n)) {}
  JsonValue(std::string s) : value_(std::move(s)) {}
  JsonValue(const char* s) : value_(std::string(s)) {}
  JsonValue(Array a) : value_(std::move(a)) {}
  JsonValue(Object o) : value_(std::move(o)) {}

  [[nodiscard]] bool isNull() const {
    return std::holds_alternative<std::monostate>(value_);
  }
  [[nodiscard]] bool isBool() const {
    return std::holds_alternative<bool>(value_);
  }
  [[nodiscard]] bool isNumber() const {
    return std::holds_alternative<double>(value_);
  }
  [[nodiscard]] bool isString() const {
    return std::holds_alternative<std::string>(value_);
  }
  [[nodiscard]] bool isArray() const {
    return std::holds_alternative<Array>(value_);
  }
  [[nodiscard]] bool isObject() const {
    return std::holds_alternative<Object>(value_);
  }

  /// Checked accessors; throw std::invalid_argument on kind mismatch.
  [[nodiscard]] bool asBool() const;
  [[nodiscard]] double asNumber() const;
  /// asNumber(), additionally requiring an exact integer.
  [[nodiscard]] std::int64_t asInt() const;
  [[nodiscard]] const std::string& asString() const;
  [[nodiscard]] const Array& asArray() const;
  [[nodiscard]] const Object& asObject() const;

  /// Object member lookup; nullptr when absent or not an object.
  [[nodiscard]] const JsonValue* find(std::string_view key) const;

  /// Strict parse of exactly one JSON value spanning all of `text`.
  static JsonValue parse(std::string_view text);

  /// Compact single-line rendering (integral doubles print as
  /// integers, so ids and counts round-trip readably).
  [[nodiscard]] std::string dump() const;

 private:
  std::variant<std::monostate, bool, double, std::string, Array, Object>
      value_;
};

}  // namespace ssno::serve

#endif  // SSNO_SERVE_JSON_HPP
