#include "serve/scheduler.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "io/file.hpp"
#include "obs/metrics.hpp"

namespace ssno::serve {
namespace {

constexpr const char* kCheckpointMagic = "ssno-checkpoint v1";

// A partial final line (crash mid-append) skipped by resume().
const obs::Counter kCkptTruncatedLines =
    obs::Registry::global().counter("serve_ckpt_truncated_lines_total");
// done/complete appends that failed to reach disk.  Advisory lines:
// losing one costs a recompute on resume, never correctness — so the
// failure is counted, not thrown.
const obs::Counter kCkptAppendFailures =
    obs::Registry::global().counter("serve_ckpt_append_failures_total");

bool pathSafeName(const std::string& name) {
  if (name.empty() || name[0] == '.') return false;
  return std::all_of(name.begin(), name.end(), [](char c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
           (c >= '0' && c <= '9') || c == '-' || c == '_' || c == '.';
  });
}

}  // namespace

JobScheduler::JobScheduler(SchedulerOptions opt) : opt_(std::move(opt)) {
  if (opt_.workers <= 0)
    opt_.workers =
        static_cast<int>(std::max(1u, std::thread::hardware_concurrency()));
  if (opt_.trialThreads <= 0) opt_.trialThreads = 1;
  if (!opt_.checkpointDir.empty()) {
    std::error_code ec;
    io::createDirectories(opt_.checkpointDir, ec);
    if (ec || !std::filesystem::is_directory(opt_.checkpointDir))
      throw std::runtime_error("JobScheduler: cannot create checkpoint dir " +
                               opt_.checkpointDir);
  }
  workers_.reserve(static_cast<std::size_t>(opt_.workers));
  for (int w = 0; w < opt_.workers; ++w)
    workers_.emplace_back([this] { workerLoop(); });
}

JobScheduler::~JobScheduler() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& th : workers_) th.join();
}

std::string JobScheduler::checkpointPath(const std::string& name) const {
  if (opt_.checkpointDir.empty())
    throw std::invalid_argument("checkpoints are not configured");
  if (!pathSafeName(name))
    throw std::invalid_argument("bad checkpoint name '" + name + "'");
  return opt_.checkpointDir + "/" + name + ".ckpt";
}

void JobScheduler::appendCheckpoint(Job& job, const std::string& line) {
  if (job.checkpoint.empty()) return;
  io::File out = io::File::openAppend(checkpointPath(job.checkpoint));
  // One writeAll per line: a crash tears at most the line being
  // appended, which resume() skips.  fsync before close so "done" lines
  // survive a post-append power cut.
  if (!out.valid() || !out.writeAll(line + "\n") || !out.sync() ||
      !out.close())
    kCkptAppendFailures.inc();
}

std::uint64_t JobScheduler::submit(std::vector<exp::Scenario> sweep,
                                   int priority,
                                   const std::string& checkpoint) {
  if (sweep.empty())
    throw std::invalid_argument("submit: empty scenario list");
  for (const exp::Scenario& s : sweep) {
    if (s.trials <= 0)
      throw std::invalid_argument("submit: trials must be positive (" +
                                  s.name + ")");
    s.topology.validate();
  }
  // Resolve the path (and validate the name) before mutating any state.
  const std::string ckptPath =
      checkpoint.empty() ? std::string{} : checkpointPath(checkpoint);

  std::lock_guard<std::mutex> lk(mu_);
  const std::uint64_t id = nextJob_++;
  Job& job = jobs_[id];
  job.id = id;
  job.scenarios = std::move(sweep);
  job.results.resize(job.scenarios.size());
  job.checkpoint = checkpoint;
  ++submittedJobs_;
  submittedUnits_ += job.scenarios.size();

  if (!ckptPath.empty()) {
    // The unit list is the sweep's source of truth — written durably
    // (temp + fsync + atomic rename + dir fsync) so a crash during
    // submit leaves either no checkpoint or a complete unit list, never
    // a torn one.  Appended done/complete lines are advisory on top.
    std::string body = kCheckpointMagic;
    body += "\nname " + checkpoint + "\n";
    for (const exp::Scenario& s : job.scenarios)
      body += "unit\t" + s.name + "\t" + exp::canonicalScenario(s) + "\n";
    if (!io::writeFileDurable(ckptPath, ".tmp", body))
      throw std::runtime_error("cannot write checkpoint " + ckptPath);
  }

  for (int unit = 0; unit < static_cast<int>(job.scenarios.size()); ++unit) {
    const exp::Scenario& s =
        job.scenarios[static_cast<std::size_t>(unit)];
    const std::string canon = exp::canonicalScenario(s);
    const auto it = inflight_.find(canon);
    if (it != inflight_.end()) {
      it->second->subscribers.emplace_back(id, unit);
      ++dedupedUnits_;
      continue;
    }
    auto comp = std::make_shared<Computation>();
    comp->canon = canon;
    comp->scenario = s;
    comp->subscribers.emplace_back(id, unit);
    inflight_.emplace(canon, comp);
    queue_.push({priority, nextSeq_++, std::move(comp)});
  }
  cv_.notify_all();
  return id;
}

std::uint64_t JobScheduler::resume(const std::string& checkpoint,
                                   int priority) {
  const std::string path = checkpointPath(checkpoint);
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open checkpoint " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  std::string text = buf.str();
  // Crash-mid-append leaves a final line with no terminating '\n'.
  // That partial line is untrustworthy by construction (the append was
  // torn), so it is skipped — counted, never a parse failure that
  // would lose the whole sweep.  Everything before it is intact: the
  // unit list was written atomically and appends are one line each.
  if (!text.empty() && text.back() != '\n') {
    const auto lastNl = text.find_last_of('\n');
    text.resize(lastNl == std::string::npos ? 0 : lastNl + 1);
    kCkptTruncatedLines.inc();
  }
  std::istringstream lines(text);
  std::string line;
  if (!std::getline(lines, line) || line != kCheckpointMagic)
    throw std::runtime_error("checkpoint " + path + ": bad magic");
  std::vector<exp::Scenario> sweep;
  while (std::getline(lines, line)) {
    if (line.rfind("unit\t", 0) != 0) continue;  // name/done/complete lines
    const auto second = line.find('\t', 5);
    if (second == std::string::npos)
      throw std::runtime_error("checkpoint " + path + ": malformed unit line");
    try {
      exp::Scenario s =
          exp::parseCanonicalScenario(line.substr(second + 1));
      s.name = line.substr(5, second - 5);
      sweep.push_back(std::move(s));
    } catch (const std::invalid_argument& e) {
      throw std::runtime_error("checkpoint " + path + ": " + e.what());
    }
  }
  if (sweep.empty())
    throw std::runtime_error("checkpoint " + path + ": no units");
  return submit(std::move(sweep), priority, checkpoint);
}

void JobScheduler::deliver(const std::shared_ptr<Computation>& comp,
                           bool cached, bool failed, const std::string& error,
                           const exp::ScenarioResult& result) {
  for (const auto& [jobId, unit] : comp->subscribers) {
    const auto it = jobs_.find(jobId);
    if (it == jobs_.end() || it->second.cancelled) continue;
    Job& job = it->second;
    RowEvent ev;
    ev.job = jobId;
    ev.unit = unit;
    ev.scenario = job.scenarios[static_cast<std::size_t>(unit)];
    ev.cached = cached;
    ev.failed = failed;
    ev.error = error;
    if (!failed) {
      ev.result = result;
      ev.result.scenario = ev.scenario;  // the submitter's display name
      job.results[static_cast<std::size_t>(unit)] = ev.result;
      ++job.done;
      if (cached) ++job.cachedHits;
    } else {
      ++job.failed;
    }
    ++job.settled;
    if (!failed && opt_.cache != nullptr)
      appendCheckpoint(job, "done " + std::to_string(unit) + " " +
                                opt_.cache->keyHex(ev.scenario));
    if (job.settled == static_cast<int>(job.scenarios.size()))
      appendCheckpoint(job, "complete");
    job.log.push_back(std::move(ev));
  }
}

void JobScheduler::workerLoop() {
  std::unique_lock<std::mutex> lk(mu_);
  for (;;) {
    cv_.wait(lk, [this] { return stop_ || !queue_.empty(); });
    if (stop_) return;
    auto comp = queue_.top().comp;
    queue_.pop();
    // Drop subscribers whose jobs were cancelled while queued; when
    // none remain, the computation itself is dropped (lazy cancel).
    std::erase_if(comp->subscribers,
                  [this](const std::pair<std::uint64_t, int>& sub) {
                    const auto it = jobs_.find(sub.first);
                    return it == jobs_.end() || it->second.cancelled;
                  });
    if (comp->subscribers.empty()) {
      inflight_.erase(comp->canon);
      cv_.notify_all();
      continue;
    }
    ++busy_;
    lk.unlock();

    bool cached = false, failed = false;
    std::string error;
    exp::ScenarioResult result;
    bool computed = false;
    try {
      if (opt_.cache != nullptr) {
        if (auto hit = opt_.cache->fetchResult(comp->scenario)) {
          result = std::move(*hit);
          cached = true;
        }
      }
      if (!cached) {
        const exp::ExperimentRunner runner(opt_.trialThreads);
        result = runner.run(comp->scenario);
        computed = true;
        if (opt_.cache != nullptr) opt_.cache->storeResult(result);
      }
    } catch (const std::exception& e) {
      failed = true;
      error = e.what();
    }

    lk.lock();
    --busy_;
    if (computed) ++computed_;
    // Future submits of this scenario go through the cache (or, absent
    // one, recompute) rather than subscribing to a finished unit.
    inflight_.erase(comp->canon);
    deliver(comp, cached, failed, error, result);
    cv_.notify_all();
  }
}

JobStatus JobScheduler::status(std::uint64_t job) const {
  std::lock_guard<std::mutex> lk(mu_);
  JobStatus st;
  const auto it = jobs_.find(job);
  if (it == jobs_.end()) return st;
  const Job& j = it->second;
  st.exists = true;
  st.cancelled = j.cancelled;
  st.total = static_cast<int>(j.scenarios.size());
  st.done = j.done;
  st.failed = j.failed;
  st.cachedHits = j.cachedHits;
  st.complete = j.settled == st.total;
  return st;
}

bool JobScheduler::cancel(std::uint64_t job) {
  std::lock_guard<std::mutex> lk(mu_);
  const auto it = jobs_.find(job);
  if (it == jobs_.end() || it->second.cancelled) return false;
  Job& j = it->second;
  if (j.settled == static_cast<int>(j.scenarios.size())) return false;
  j.cancelled = true;
  cv_.notify_all();
  return true;
}

std::vector<std::optional<exp::ScenarioResult>> JobScheduler::wait(
    std::uint64_t job) {
  std::unique_lock<std::mutex> lk(mu_);
  const auto it = jobs_.find(job);
  if (it == jobs_.end()) throw std::invalid_argument("unknown job");
  Job& j = it->second;
  cv_.wait(lk, [&j] {
    return j.cancelled || j.settled == static_cast<int>(j.scenarios.size());
  });
  return j.results;
}

std::vector<RowEvent> JobScheduler::eventsSince(std::uint64_t job,
                                                std::size_t from) {
  std::unique_lock<std::mutex> lk(mu_);
  const auto it = jobs_.find(job);
  if (it == jobs_.end()) throw std::invalid_argument("unknown job");
  Job& j = it->second;
  cv_.wait(lk, [&j, from] {
    return j.log.size() > from || j.cancelled ||
           j.settled == static_cast<int>(j.scenarios.size());
  });
  return {j.log.begin() + static_cast<std::ptrdiff_t>(
                              std::min(from, j.log.size())),
          j.log.end()};
}

SchedulerStats JobScheduler::stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  SchedulerStats st;
  st.submittedJobs = submittedJobs_;
  st.submittedUnits = submittedUnits_;
  st.dedupedUnits = dedupedUnits_;
  st.computed = computed_;
  st.queueDepth = static_cast<int>(queue_.size());
  st.workers = opt_.workers;
  st.busyWorkers = busy_;
  return st;
}

}  // namespace ssno::serve
