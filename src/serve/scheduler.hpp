// serve/scheduler — job queue in front of a persistent worker pool.
//
// A *job* is a submitted sweep: an ordered list of scenarios (units).
// Units are deduplicated by canonical scenario text across ALL live
// jobs: submitting a scenario that is already queued or running
// attaches the new (job, unit) as a subscriber to the in-flight
// computation instead of enqueueing a second copy — one computation,
// every subscriber delivered the identical result.  Completed units go
// through the ResultCache (when configured), so re-submits after
// completion are O(lookup) rather than deduplicated in memory.
//
// Scheduling is by (priority desc, submission order) over computations;
// a deduplicated unit keeps the priority of its first submitter.
// cancel() marks the job: its queued-only units are dropped lazily
// (unless another live job subscribes to them), the currently running
// unit — workers cannot safely abandon a trial mid-flight — completes
// and is still cached, so the work is never wasted.
//
// Checkpoints make sweeps resumable across process death: a job
// submitted with a checkpoint name writes
//
//   <checkpointDir>/<name>.ckpt
//       ssno-checkpoint v1
//       name <name>
//       unit<TAB><display name><TAB><canonical scenario text>   (per unit)
//       done <unit index> <cache key>                (appended, flushed)
//       complete                                     (on job completion)
//
// resume() re-reads the unit lines and submits them as a fresh job with
// the original display names; units finished before the crash hit the
// cache and settle instantly, so a SIGKILLed million-trial sweep
// restarts where it stopped and its final report is byte-identical to
// an uninterrupted run (proved end to end by tests/serve_test.cpp and
// the CI serve-smoke job).  The `done` lines are a human-readable
// progress record; correctness rests on the cache alone.
#ifndef SSNO_SERVE_SCHEDULER_HPP
#define SSNO_SERVE_SCHEDULER_HPP

#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <queue>
#include <string>
#include <thread>
#include <vector>

#include "exp/runner.hpp"
#include "serve/cache.hpp"

namespace ssno::serve {

struct SchedulerOptions {
  int workers = 0;       ///< worker threads; 0 → hardware concurrency
  int trialThreads = 1;  ///< threads inside one unit's ExperimentRunner
                         ///< (results are thread-count independent; 1
                         ///< keeps total parallelism == workers)
  ResultCache* cache = nullptr;  ///< optional; not owned
  std::string checkpointDir;     ///< empty → checkpoints disabled
};

/// One settled unit, as appended to a job's event log in completion
/// order (the `result` verb streams these as workers finish).
struct RowEvent {
  std::uint64_t job = 0;
  int unit = 0;               ///< index into the job's submit order
  exp::Scenario scenario;     ///< the submitter's scenario (its name)
  bool cached = false;        ///< served from the result cache
  bool failed = false;        ///< threw instead of producing a result
  std::string error;          ///< failure text when failed
  exp::ScenarioResult result; ///< valid when !failed
};

struct JobStatus {
  bool exists = false;
  bool cancelled = false;
  bool complete = false;  ///< every unit settled (done or failed)
  int total = 0;
  int done = 0;    ///< settled successfully (cached counts toward done)
  int failed = 0;
  int cachedHits = 0;
};

struct SchedulerStats {
  std::uint64_t submittedJobs = 0;
  std::uint64_t submittedUnits = 0;
  std::uint64_t dedupedUnits = 0;  ///< attached to in-flight computations
  std::uint64_t computed = 0;      ///< units actually executed (not cached)
  int queueDepth = 0;              ///< computations waiting for a worker
  int workers = 0;
  int busyWorkers = 0;
};

class JobScheduler {
 public:
  explicit JobScheduler(SchedulerOptions opt);
  /// Drains nothing: stops after in-flight computations finish.
  ~JobScheduler();

  JobScheduler(const JobScheduler&) = delete;
  JobScheduler& operator=(const JobScheduler&) = delete;

  /// Validates every scenario (trials, topology domain) up front and
  /// throws std::invalid_argument before any work is enqueued.  With a
  /// non-empty `checkpoint` (requires checkpointDir), (re)writes the
  /// checkpoint file.  Returns the job id.
  std::uint64_t submit(std::vector<exp::Scenario> sweep, int priority = 0,
                       const std::string& checkpoint = "");

  /// Loads `<checkpointDir>/<name>.ckpt` and submits its units as a new
  /// job under the same checkpoint name; throws std::runtime_error when
  /// the file is missing or malformed.
  std::uint64_t resume(const std::string& checkpoint, int priority = 0);

  [[nodiscard]] JobStatus status(std::uint64_t job) const;

  /// True iff the job existed and was not already cancelled/complete.
  bool cancel(std::uint64_t job);

  /// Blocks until the job completes or is cancelled; results in unit
  /// order (nullopt for failed or cancelled-before-settling units).
  std::vector<std::optional<exp::ScenarioResult>> wait(std::uint64_t job);

  /// Event-log slice [from, log.size()) for `job`, blocking until it is
  /// non-empty, the job completes, or the job is cancelled.  Returns
  /// empty only at end of stream; unknown jobs throw.
  std::vector<RowEvent> eventsSince(std::uint64_t job, std::size_t from);

  [[nodiscard]] SchedulerStats stats() const;

  /// `<checkpointDir>/<name>.ckpt`; validates the name (path-safe).
  [[nodiscard]] std::string checkpointPath(const std::string& name) const;

 private:
  struct Job {
    std::uint64_t id = 0;
    bool cancelled = false;
    std::vector<exp::Scenario> scenarios;
    std::vector<std::optional<exp::ScenarioResult>> results;
    int settled = 0;
    int done = 0;
    int failed = 0;
    int cachedHits = 0;
    std::vector<RowEvent> log;
    std::string checkpoint;
  };

  /// A deduplicated work unit plus the (job, unit) pairs awaiting it.
  struct Computation {
    std::string canon;
    exp::Scenario scenario;
    std::vector<std::pair<std::uint64_t, int>> subscribers;
  };

  struct QueueEntry {
    int priority = 0;
    std::uint64_t seq = 0;
    std::shared_ptr<Computation> comp;
    bool operator<(const QueueEntry& other) const {
      if (priority != other.priority) return priority < other.priority;
      return seq > other.seq;  // FIFO within a priority band
    }
  };

  void workerLoop();
  void deliver(const std::shared_ptr<Computation>& comp, bool cached,
               bool failed, const std::string& error,
               const exp::ScenarioResult& result);
  void appendCheckpoint(Job& job, const std::string& line);

  SchedulerOptions opt_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::map<std::uint64_t, Job> jobs_;
  std::map<std::string, std::shared_ptr<Computation>> inflight_;
  std::priority_queue<QueueEntry> queue_;
  std::uint64_t nextJob_ = 1;
  std::uint64_t nextSeq_ = 0;
  std::uint64_t submittedJobs_ = 0, submittedUnits_ = 0, dedupedUnits_ = 0,
                computed_ = 0;
  int busy_ = 0;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace ssno::serve

#endif  // SSNO_SERVE_SCHEDULER_HPP
