#include "serve/cache.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <unistd.h>

#include "io/fault.hpp"
#include "io/file.hpp"
#include "obs/metrics.hpp"

namespace ssno::serve {
namespace {

namespace fs = std::filesystem;

// Mirrors of the cache's own atomics, incremented at the identical
// sites, so the `metrics` exposition always agrees with the `stats`
// verb / ResultCache::counters().
const obs::Counter kCacheHits =
    obs::Registry::global().counter("serve_cache_hits_total");
const obs::Counter kCacheMisses =
    obs::Registry::global().counter("serve_cache_misses_total");
const obs::Counter kCacheBad =
    obs::Registry::global().counter("serve_cache_bad_records_total");
const obs::Counter kCacheStores =
    obs::Registry::global().counter("serve_cache_stores_total");
const obs::Counter kCacheStoreFailures =
    obs::Registry::global().counter("serve_cache_store_failures_total");
const obs::Counter kCachePruned =
    obs::Registry::global().counter("serve_cache_pruned_total");

// 1 while the service is running without a working cache (store failed
// or startup fell back to cacheless); 0 once a store succeeds again.
const obs::Gauge kServeDegraded =
    obs::Registry::global().gauge("serve_degraded");

constexpr const char* kMagic = "ssno-result-cache v1";

std::string hex32(std::uint32_t v) {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out(8, '0');
  for (int i = 7; i >= 0; --i, v >>= 4) out[static_cast<std::size_t>(i)] = kHex[v & 0xF];
  return out;
}

/// "key value" line reader: true iff the line exists and starts with
/// `key` + space; leaves the value (rest of line) in *value.
bool headerLine(std::istream& in, const char* key, std::string* value) {
  std::string line;
  if (!std::getline(in, line)) return false;
  const std::string prefix = std::string(key) + " ";
  if (line.rfind(prefix, 0) != 0) return false;
  *value = line.substr(prefix.size());
  return true;
}

}  // namespace

std::uint32_t crc32(std::string_view data) { return io::crc32(data); }

ResultCache::ResultCache(std::string dir, std::string salt)
    : dir_(std::move(dir)), salt_(std::move(salt)) {
  std::error_code ec;
  io::createDirectories(dir_, ec);
  if (ec || !fs::is_directory(dir_))
    throw std::runtime_error("ResultCache: cannot create directory " + dir_);
}

std::string ResultCache::keyHex(const exp::Scenario& s) const {
  return exp::scenarioDigest(s, salt_).hex();
}

std::string ResultCache::recordPath(const std::string& key) const {
  return dir_ + "/" + key.substr(0, 2) + "/" + key + ".rec";
}

std::optional<std::string> ResultCache::readRecord(const exp::Scenario& s,
                                                   const std::string& key,
                                                   bool* bad) const {
  *bad = false;
  std::ifstream in(recordPath(key), std::ios::binary);
  if (!in) return std::nullopt;  // plain miss: no record yet
  // From here on every anomaly is a *bad* record, not a plain miss.
  *bad = true;
  std::string line, value;
  if (!std::getline(in, line) || line != kMagic) return std::nullopt;
  if (!headerLine(in, "salt", &value) || value != salt_) return std::nullopt;
  if (!headerLine(in, "key", &value) || value != key) return std::nullopt;
  if (!headerLine(in, "scenario", &value) ||
      value != exp::canonicalScenario(s))
    return std::nullopt;
  if (!headerLine(in, "bytes", &value)) return std::nullopt;
  std::size_t bytes = 0;
  try {
    std::size_t used = 0;
    bytes = std::stoull(value, &used);
    if (used != value.size()) return std::nullopt;
  } catch (const std::exception&) {
    return std::nullopt;
  }
  if (!headerLine(in, "crc32", &value)) return std::nullopt;
  std::string payload(bytes, '\0');
  in.read(payload.data(), static_cast<std::streamsize>(bytes));
  if (static_cast<std::size_t>(in.gcount()) != bytes) return std::nullopt;
  if (in.get() != std::ifstream::traits_type::eof()) return std::nullopt;
  if (hex32(crc32(payload)) != value) return std::nullopt;
  *bad = false;
  return payload;
}

std::optional<std::string> ResultCache::fetch(const exp::Scenario& s) {
  bool bad = false;
  auto payload = readRecord(s, keyHex(s), &bad);
  if (bad) {
    ++badRecords_;
    kCacheBad.inc();
  }
  if (payload) {
    ++hits_;
    kCacheHits.inc();
  } else {
    ++misses_;
    kCacheMisses.inc();
  }
  return payload;
}

std::optional<exp::ScenarioResult> ResultCache::fetchResult(
    const exp::Scenario& s) {
  bool bad = false;
  const auto payload = readRecord(s, keyHex(s), &bad);
  if (payload) {
    try {
      exp::ScenarioResult r = exp::parseResultPayload(*payload);
      r.scenario = s;
      ++hits_;
      kCacheHits.inc();
      return r;
    } catch (const std::invalid_argument&) {
      bad = true;  // structurally sound record, semantically unusable
    }
  }
  if (bad) {
    ++badRecords_;
    kCacheBad.inc();
  }
  ++misses_;
  kCacheMisses.inc();
  return std::nullopt;
}

bool ResultCache::store(const exp::Scenario& s, std::string_view payload) {
  const std::string key = keyHex(s);
  const std::string path = recordPath(key);
  const std::string temp =
      path + ".tmp." + std::to_string(::getpid()) + "." +
      std::to_string(tempSeq_.fetch_add(1));
  const auto failed = [&] {
    std::error_code rmEc;
    fs::remove(temp, rmEc);
    ++storeFailures_;
    kCacheStoreFailures.inc();
    kServeDegraded.set(1);
    return false;
  };
  std::error_code ec;
  io::createDirectories(fs::path(path).parent_path().string(), ec);
  std::string record = kMagic;
  record += "\nsalt " + salt_ + "\nkey " + key + "\nscenario " +
            exp::canonicalScenario(s) + "\nbytes " +
            std::to_string(payload.size()) + "\ncrc32 " +
            hex32(crc32(payload)) + "\n";
  record.append(payload.data(), payload.size());
  {
    // The full crash-consistency sequence: write, fsync the FILE, close,
    // rename, fsync the parent DIRECTORY — a crash at any point leaves
    // either no record or a complete one at the final path (anything
    // torn sits in a .tmp the reader never opens).
    io::File out = io::File::createTrunc(temp);
    if (!out.valid() || !out.writeAll(record) || !out.sync() || !out.close())
      return failed();
  }
  if (!io::atomicReplace(temp, path)) return failed();
  ++stores_;
  kCacheStores.inc();
  kServeDegraded.set(0);
  return true;
}

bool ResultCache::storeResult(const exp::ScenarioResult& r) {
  return store(r.scenario, exp::resultPayload(r));
}

ResultCache::PruneStats ResultCache::prune(std::uint64_t maxBytes) {
  // Gather every record file with its mtime and size; all filesystem
  // calls are non-throwing (error_code overloads) — a racing writer or
  // deleter costs at most one skipped file.
  struct Record {
    fs::path path;
    fs::file_time_type mtime;
    std::uint64_t bytes = 0;
  };
  std::vector<Record> records;
  std::uint64_t total = 0;
  std::error_code ec;
  for (fs::recursive_directory_iterator it(dir_, ec), end; !ec && it != end;
       it.increment(ec)) {
    if (!it->is_regular_file(ec) || it->path().extension() != ".rec")
      continue;
    Record r;
    r.path = it->path();
    r.mtime = fs::last_write_time(r.path, ec);
    if (ec) { ec.clear(); continue; }
    r.bytes = fs::file_size(r.path, ec);
    if (ec) { ec.clear(); continue; }
    total += r.bytes;
    records.push_back(std::move(r));
  }
  std::sort(records.begin(), records.end(),
            [](const Record& a, const Record& b) {
              return a.mtime != b.mtime ? a.mtime < b.mtime
                                        : a.path < b.path;
            });
  PruneStats stats;
  for (const Record& r : records) {
    if (total > maxBytes) {
      std::error_code rmEc;
      if (fs::remove(r.path, rmEc) && !rmEc) {
        total -= r.bytes;
        ++stats.removed;
        stats.bytesRemoved += r.bytes;
        continue;
      }
    }
    ++stats.kept;
    stats.bytesKept += r.bytes;
  }
  kCachePruned.inc(stats.removed);
  return stats;
}

ResultCache::Counters ResultCache::counters() const {
  Counters c;
  c.hits = hits_.load();
  c.misses = misses_.load();
  c.badRecords = badRecords_.load();
  c.stores = stores_.load();
  c.storeFailures = storeFailures_.load();
  return c;
}

std::vector<exp::ScenarioResult> runAllCached(
    const exp::ExperimentRunner& runner,
    const std::vector<exp::Scenario>& scenarios, ResultCache* cache) {
  if (cache == nullptr) return runner.runAll(scenarios);
  std::vector<std::optional<exp::ScenarioResult>> slots(scenarios.size());
  std::vector<exp::Scenario> missed;
  std::vector<std::size_t> missedAt;
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    slots[i] = cache->fetchResult(scenarios[i]);
    if (!slots[i]) {
      missed.push_back(scenarios[i]);
      missedAt.push_back(i);
    }
  }
  const std::vector<exp::ScenarioResult> fresh = runner.runAll(missed);
  for (std::size_t j = 0; j < fresh.size(); ++j) {
    cache->storeResult(fresh[j]);
    slots[missedAt[j]] = fresh[j];
  }
  std::vector<exp::ScenarioResult> out;
  out.reserve(slots.size());
  for (auto& slot : slots) out.push_back(std::move(*slot));
  return out;
}

}  // namespace ssno::serve
