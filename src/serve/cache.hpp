// serve/cache — persistent content-addressed experiment result store.
//
// Deterministic per-trial seeding makes every (scenario, seed, budget)
// result bit-reproducible, so caching is EXACT: the record stored for a
// key is byte-identical to what recomputing the scenario on the same
// machine would produce.  Keys are the 128-bit digest of the canonical
// scenario text (exp/canon.hpp) salted with a code-version string, so
// a semantics-affecting code change invalidates the whole store by
// changing every key rather than serving stale data.
//
// On-disk layout: one record file per key, fanned out by the first two
// hex chars to keep directories small —
//
//   <dir>/<k0k1>/<32-hex-key>.rec
//       ssno-result-cache v1
//       salt <salt>
//       key <32-hex>
//       scenario <canonical scenario text>
//       bytes <payload byte count>
//       crc32 <8-hex CRC of the payload>
//       <payload: exactly `bytes` bytes — a resultPayload() body>
//
// Readers treat ANY anomaly — missing file, bad magic, foreign salt,
// key mismatch, short payload, trailing bytes, CRC mismatch, payload
// that fails to parse — as a miss and never throw: a corrupt or
// truncated record costs a recompute, not an outage.  Writers never
// update in place: the record goes to a unique temp file in the final
// directory (written, fsynced, closed), is atomically renamed over the
// destination, and the parent directory is fsynced — so after a crash
// at ANY point the final path holds either nothing or a complete
// record, and concurrent writers of one key race benignly (either
// complete record wins; both are byte-identical by determinism).  All
// writes route through io/file.hpp, so the io/fault.hpp schedule can
// fail or crash any of them deterministically.
//
// WHEN TO BUMP kCacheSalt: any change that alters result bytes for an
// unchanged canonical scenario — trial semantics, RNG streams, metric
// sets or names, summary statistics, resultPayload()/canonical formats.
// Pure performance changes keep the salt.
#ifndef SSNO_SERVE_CACHE_HPP
#define SSNO_SERVE_CACHE_HPP

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "exp/canon.hpp"
#include "exp/runner.hpp"

namespace ssno::serve {

/// Code-version salt baked into every key (see header comment).
/// v2: canonical scenario format gained fault-plan/adversary/lookahead
/// (canon=2), so every v1 key would mismatch its stored scenario line.
inline constexpr std::string_view kCacheSalt = "ssno-serve-v2";

/// CRC-32 (IEEE 802.3, reflected 0xEDB88320) of `data`.
[[nodiscard]] std::uint32_t crc32(std::string_view data);

class ResultCache {
 public:
  /// Creates `dir` (and parents) if absent; throws std::runtime_error
  /// when the directory cannot be created.
  explicit ResultCache(std::string dir,
                       std::string salt = std::string(kCacheSalt));

  [[nodiscard]] const std::string& dir() const { return dir_; }
  [[nodiscard]] const std::string& salt() const { return salt_; }

  /// The key this cache derives for `s` (32 lowercase hex chars).
  [[nodiscard]] std::string keyHex(const exp::Scenario& s) const;

  /// Raw payload bytes for `s`, or nullopt on a miss (including any
  /// malformed record, which also counts toward badRecords).
  [[nodiscard]] std::optional<std::string> fetch(const exp::Scenario& s);

  /// fetch + parseResultPayload, with r.scenario reattached from `s`;
  /// an unparseable payload is a miss, never an exception.
  [[nodiscard]] std::optional<exp::ScenarioResult> fetchResult(
      const exp::Scenario& s);

  /// Best effort: returns false (and counts a storeFailure) instead of
  /// throwing when the filesystem misbehaves — an always-on service
  /// must survive a full disk with degraded caching, not crash.  A
  /// failure also raises the `serve_degraded` gauge; the next
  /// successful store clears it.
  bool store(const exp::Scenario& s, std::string_view payload);
  bool storeResult(const exp::ScenarioResult& r);

  struct Counters {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t badRecords = 0;   ///< corrupt/foreign records seen
    std::uint64_t stores = 0;
    std::uint64_t storeFailures = 0;
  };
  [[nodiscard]] Counters counters() const;

  struct PruneStats {
    std::uint64_t removed = 0;       ///< record files deleted
    std::uint64_t kept = 0;          ///< record files remaining
    std::uint64_t bytesRemoved = 0;
    std::uint64_t bytesKept = 0;
  };
  /// LRU prune: deletes the oldest record files (by mtime — readers
  /// don't touch mtime, so this is write-recency LRU) until the total
  /// record bytes fit in `maxBytes`.  Best effort like store(): files
  /// that vanish or resist deletion are skipped, never thrown on.
  /// Non-record files in the tree are left alone.
  PruneStats prune(std::uint64_t maxBytes);

 private:
  [[nodiscard]] std::string recordPath(const std::string& key) const;
  /// nullopt on miss; sets *bad when a file existed but was unusable.
  [[nodiscard]] std::optional<std::string> readRecord(
      const exp::Scenario& s, const std::string& key, bool* bad) const;

  std::string dir_;
  std::string salt_;
  std::atomic<std::uint64_t> hits_{0}, misses_{0}, badRecords_{0},
      stores_{0}, storeFailures_{0};
  std::atomic<std::uint64_t> tempSeq_{0};
};

/// Runs `scenarios` like ExperimentRunner::runAll but answers from
/// `cache` where possible: hits are parsed records, misses run through
/// runner.runAll (keeping its cross-scenario trial parallelism) and are
/// stored back.  Result order matches `scenarios`; cache == nullptr
/// degrades to plain runAll.  exp_cli `--cache-dir` is this function.
[[nodiscard]] std::vector<exp::ScenarioResult> runAllCached(
    const exp::ExperimentRunner& runner,
    const std::vector<exp::Scenario>& scenarios, ResultCache* cache);

}  // namespace ssno::serve

#endif  // SSNO_SERVE_CACHE_HPP
