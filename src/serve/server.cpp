#include "serve/server.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <istream>
#include <mutex>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <streambuf>
#include <thread>
#include <vector>

#include "exp/report.hpp"
#include "exp/scenario.hpp"
#include "obs/metrics.hpp"
#include "serve/json.hpp"

namespace ssno::serve {
namespace {

const obs::Counter kRequests =
    obs::Registry::global().counter("serve_requests_total");
const obs::Counter kErrors =
    obs::Registry::global().counter("serve_errors_total");

/// Per-verb latency histogram (ns), covering dispatch through the last
/// byte written (so `result` includes streaming time).
obs::Histogram verbHistogram(const std::string& v) {
  obs::Registry& reg = obs::Registry::global();
  static const obs::Histogram submit = reg.histogram("serve_verb_submit_ns");
  static const obs::Histogram status = reg.histogram("serve_verb_status_ns");
  static const obs::Histogram result = reg.histogram("serve_verb_result_ns");
  static const obs::Histogram stats = reg.histogram("serve_verb_stats_ns");
  static const obs::Histogram metrics = reg.histogram("serve_verb_metrics_ns");
  static const obs::Histogram other = reg.histogram("serve_verb_other_ns");
  if (v == "submit" || v == "resume") return submit;
  if (v == "status" || v == "cancel") return status;
  if (v == "result") return result;
  if (v == "stats" || v == "prune") return stats;
  if (v == "metrics") return metrics;
  return other;
}

void emitLine(std::ostream& out, const JsonValue::Object& fields) {
  out << JsonValue(fields).dump() << "\n" << std::flush;
}

JsonValue::Object errorObject(const std::string& what) {
  return {{"ok", false}, {"error", what}};
}

/// Applies exp_cli's override semantics (including the preset rate
/// relabel) so a served sweep and a CLI sweep stay name-compatible.
void applyOverrides(const JsonValue& req, std::vector<exp::Scenario>* out) {
  const JsonValue* trials = req.find("trials");
  const JsonValue* seed = req.find("seed");
  const JsonValue* budget = req.find("budget");
  const JsonValue* rate = req.find("rate");
  for (exp::Scenario& s : *out) {
    if (trials) s.trials = static_cast<int>(trials->asInt());
    if (seed) s.seed = static_cast<std::uint64_t>(seed->asInt());
    if (budget) s.budget = budget->asInt();
    if (rate) {
      s.faultRate = rate->asNumber();
      if (const auto tag = s.name.rfind("/rate="); tag != std::string::npos) {
        std::ostringstream label;
        label << s.name.substr(0, tag) << "/rate=" << rate->asNumber();
        s.name = label.str();
      }
    }
  }
}

/// Minimal bidirectional streambuf over a connected socket fd.
/// Reads retry on EINTR; with a receive timeout on the fd (see
/// acceptLoop), EAGAIN wakes the read up periodically to re-check the
/// server's shutdown flag, so an idle client connection cannot park a
/// session thread forever.
class FdStreamBuf : public std::streambuf {
 public:
  explicit FdStreamBuf(int fd, const std::atomic<bool>* stop = nullptr)
      : fd_(fd), stop_(stop) {
    setg(in_, in_, in_);
  }

 protected:
  int_type underflow() override {
    for (;;) {
      const ssize_t n = ::read(fd_, in_, sizeof in_);
      if (n > 0) {
        setg(in_, in_, in_ + n);
        return traits_type::to_int_type(*gptr());
      }
      if (n == 0) return traits_type::eof();
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        if (stop_ != nullptr && stop_->load()) return traits_type::eof();
        continue;  // receive timeout tick: shutdown not requested, wait on
      }
      return traits_type::eof();
    }
  }

  std::streamsize xsputn(const char* s, std::streamsize n) override {
    std::streamsize sent = 0;
    while (sent < n) {
      const ssize_t w = ::write(fd_, s + sent,
                                static_cast<std::size_t>(n - sent));
      if (w <= 0) return sent;
      sent += w;
    }
    return sent;
  }

  int_type overflow(int_type ch) override {
    if (ch == traits_type::eof()) return ch;
    const char c = traits_type::to_char_type(ch);
    return xsputn(&c, 1) == 1 ? ch : traits_type::eof();
  }

 private:
  int fd_;
  const std::atomic<bool>* stop_;
  char in_[4096];
};

}  // namespace

ExpServer::ExpServer(SchedulerOptions options)
    : scheduler_(options), cache_(options.cache) {}

void ExpServer::handleLine(const std::string& line, std::ostream& out) {
  kRequests.inc();
  JsonValue req;
  try {
    req = JsonValue::parse(line);
    const JsonValue* verb = req.find("verb");
    if (verb == nullptr)
      throw std::invalid_argument("request needs a \"verb\"");
    const std::string& v = verb->asString();
    const obs::ScopedTimer verbTimer(verbHistogram(v));

    if (v == "submit" || v == "resume") {
      const int priority =
          req.find("priority")
              ? static_cast<int>(req.find("priority")->asInt())
              : 0;
      std::uint64_t job = 0;
      std::size_t units = 0;
      if (v == "resume") {
        const JsonValue* ckpt = req.find("checkpoint");
        if (ckpt == nullptr)
          throw std::invalid_argument("resume needs a \"checkpoint\"");
        job = scheduler_.resume(ckpt->asString(), priority);
        units = static_cast<std::size_t>(scheduler_.status(job).total);
      } else {
        const JsonValue* target = req.find("target");
        const JsonValue* lines = req.find("scenarios");
        if ((target == nullptr) == (lines == nullptr))
          throw std::invalid_argument(
              "submit needs exactly one of \"target\" or \"scenarios\"");
        std::vector<exp::Scenario> scenarios;
        if (target != nullptr) {
          scenarios = exp::resolve(target->asString());
        } else {
          std::string joined;
          for (const JsonValue& item : lines->asArray())
            joined += item.asString() + "\n";
          std::istringstream stream(joined);
          scenarios = exp::loadScenarios(stream);
        }
        applyOverrides(req, &scenarios);
        if (const JsonValue* only = req.find("only"))
          scenarios = exp::filterOnly(std::move(scenarios), only->asString());
        const JsonValue* ckpt = req.find("checkpoint");
        units = scenarios.size();
        job = scheduler_.submit(std::move(scenarios), priority,
                                ckpt ? ckpt->asString() : std::string{});
      }
      emitLine(out, {{"ok", true},
                     {"job", job},
                     {"units", static_cast<std::uint64_t>(units)}});
      return;
    }

    if (v == "status" || v == "cancel" || v == "result") {
      const JsonValue* jobField = req.find("job");
      if (jobField == nullptr)
        throw std::invalid_argument(v + " needs a \"job\"");
      const auto job = static_cast<std::uint64_t>(jobField->asInt());
      if (v == "cancel") {
        const bool cancelled = scheduler_.cancel(job);
        emitLine(out,
                 {{"ok", true}, {"job", job}, {"cancelled", cancelled}});
        return;
      }
      JobStatus st = scheduler_.status(job);
      if (!st.exists) throw std::invalid_argument("unknown job");
      if (v == "status") {
        const char* state = st.cancelled    ? "cancelled"
                            : st.complete   ? "complete"
                            : st.done + st.failed > 0 ? "running"
                                            : "queued";
        emitLine(out, {{"ok", true},
                       {"job", job},
                       {"state", state},
                       {"total", st.total},
                       {"done", st.done},
                       {"failed", st.failed},
                       {"cached_hits", st.cachedHits}});
        return;
      }
      // result: stream rows in completion order until end of stream.
      std::size_t cursor = 0;
      for (;;) {
        const std::vector<RowEvent> events =
            scheduler_.eventsSince(job, cursor);
        if (events.empty()) break;
        cursor += events.size();
        for (const RowEvent& ev : events) {
          JsonValue::Object row = {{"ok", true},
                                   {"job", job},
                                   {"unit", ev.unit},
                                   {"scenario", ev.scenario.name},
                                   {"cached", ev.cached},
                                   {"failed", ev.failed}};
          if (ev.failed)
            row.emplace_back("error", ev.error);
          else
            row.emplace_back("csv", exp::csvRows(ev.result));
          emitLine(out, row);
        }
      }
      st = scheduler_.status(job);
      emitLine(out, {{"ok", true},
                     {"job", job},
                     {"complete", st.complete},
                     {"total", st.total},
                     {"done", st.done},
                     {"failed", st.failed},
                     {"cancelled", st.cancelled}});
      return;
    }

    if (v == "stats") {
      const SchedulerStats ss = scheduler_.stats();
      ResultCache::Counters cc;
      if (cache_ != nullptr) cc = cache_->counters();
      emitLine(out, {{"ok", true},
                     {"cache", cache_ != nullptr},
                     {"hits", cc.hits},
                     {"misses", cc.misses},
                     {"bad_records", cc.badRecords},
                     {"stores", cc.stores},
                     {"jobs", ss.submittedJobs},
                     {"units", ss.submittedUnits},
                     {"deduped_units", ss.dedupedUnits},
                     {"computed", ss.computed},
                     {"queue_depth", ss.queueDepth},
                     {"workers", ss.workers},
                     {"busy_workers", ss.busyWorkers}});
      return;
    }

    if (v == "prune") {
      if (cache_ == nullptr)
        throw std::invalid_argument("prune needs a cache (--cache-dir)");
      const JsonValue* maxBytes = req.find("max_bytes");
      if (maxBytes == nullptr)
        throw std::invalid_argument("prune needs \"max_bytes\"");
      const long long budget = maxBytes->asInt();
      if (budget < 0)
        throw std::invalid_argument("max_bytes must be >= 0");
      const ResultCache::PruneStats ps =
          cache_->prune(static_cast<std::uint64_t>(budget));
      emitLine(out, {{"ok", true},
                     {"removed", ps.removed},
                     {"kept", ps.kept},
                     {"bytes_removed", ps.bytesRemoved},
                     {"bytes_kept", ps.bytesKept}});
      return;
    }

    if (v == "metrics") {
      // Level-style gauges are sampled here, at render time, so the
      // worker pool pays nothing for them between metrics requests.
      const SchedulerStats ss = scheduler_.stats();
      obs::Registry& reg = obs::Registry::global();
      reg.gauge("serve_queue_depth")
          .set(static_cast<std::int64_t>(ss.queueDepth));
      reg.gauge("serve_workers").set(static_cast<std::int64_t>(ss.workers));
      reg.gauge("serve_busy_workers")
          .set(static_cast<std::int64_t>(ss.busyWorkers));
      emitLine(out, {{"ok", true}, {"metrics", reg.renderPrometheus()}});
      return;
    }

    if (v == "shutdown") {
      requestShutdown();
      emitLine(out, {{"ok", true}, {"shutdown", true}});
      return;
    }

    throw std::invalid_argument("unknown verb '" + v + "'");
  } catch (const std::exception& e) {
    kErrors.inc();
    emitLine(out, errorObject(e.what()));
  }
}

void ExpServer::serveStream(std::istream& in, std::ostream& out) {
  std::string line;
  while (!shutdownRequested() && std::getline(in, line)) {
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    handleLine(line, out);
  }
}

int ExpServer::listenUnix(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() + 1 > sizeof(addr.sun_path))
    throw std::runtime_error("socket path too long: " + path);
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);

  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) throw std::runtime_error("socket(): " + std::string(strerror(errno)));
  ::unlink(path.c_str());
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0) {
    const std::string err = strerror(errno);
    ::close(fd);
    throw std::runtime_error("bind(" + path + "): " + err);
  }
  if (::listen(fd, 16) < 0) {
    const std::string err = strerror(errno);
    ::close(fd);
    throw std::runtime_error("listen(" + path + "): " + err);
  }
  return fd;
}

void ExpServer::acceptLoop(int fd) {
  std::mutex mu;
  std::vector<int> sessionFds;
  std::vector<std::thread> sessions;
  while (!shutdownRequested()) {
    pollfd pfd{fd, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, /*timeout ms=*/200);
    if (ready <= 0) continue;  // timeout or EINTR: re-check shutdown
    const int conn = ::accept(fd, nullptr, nullptr);
    if (conn < 0) continue;  // EINTR/ECONNABORTED etc.: keep accepting
    // Receive timeout so a silent client's session thread wakes up
    // periodically to notice a shutdown request (see FdStreamBuf).
    timeval timeout{};
    timeout.tv_usec = 500 * 1000;
    (void)::setsockopt(conn, SOL_SOCKET, SO_RCVTIMEO, &timeout,
                       sizeof(timeout));
    {
      std::lock_guard<std::mutex> lk(mu);
      sessionFds.push_back(conn);
    }
    sessions.emplace_back([this, conn] {
      // Session isolation: an exception escaping a thread body would
      // std::terminate the whole service.  handleLine already answers
      // per-request errors; this guards everything else (stream-layer
      // failures, bad_alloc during a burst) so one broken connection
      // costs only that session.
      try {
        FdStreamBuf buf(conn, &shutdown_);
        std::istream in(&buf);
        std::ostream out(&buf);
        serveStream(in, out);
      } catch (...) {
      }
    });
  }
  // Unblock any session still parked in read() so the joins finish.
  {
    std::lock_guard<std::mutex> lk(mu);
    for (const int conn : sessionFds) ::shutdown(conn, SHUT_RDWR);
  }
  for (std::thread& th : sessions) th.join();
  {
    std::lock_guard<std::mutex> lk(mu);
    for (const int conn : sessionFds) ::close(conn);
  }
  ::close(fd);
}

}  // namespace ssno::serve
