#include "serve/json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <stdexcept>

#include "exp/fmt.hpp"

namespace ssno::serve {
namespace {

[[noreturn]] void fail(std::size_t at, const std::string& what) {
  throw std::invalid_argument("json: " + what + " at byte " +
                              std::to_string(at));
}

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue parseDocument() {
    JsonValue v = parseValue();
    skipWs();
    if (pos_ != text_.size()) fail(pos_, "trailing bytes after value");
    return v;
  }

 private:
  void skipWs() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail(pos_, "unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(pos_, std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consumeWord(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  // Bounds recursion so adversarial input like "[[[[..." fails with a
  // byte-offset error instead of overflowing the stack (UB).  128 is
  // far beyond any protocol message (depth <= 3) and well inside the
  // default stack even with this parser's frame sizes.
  static constexpr std::size_t kMaxDepth = 128;

  JsonValue parseValue() {
    skipWs();
    const char c = peek();
    if (c == '{' || c == '[') {
      if (depth_ >= kMaxDepth) fail(pos_, "nesting too deep");
      ++depth_;
      JsonValue v = c == '{' ? parseObject() : parseArray();
      --depth_;
      return v;
    }
    if (c == '"') return JsonValue(parseString());
    if (consumeWord("true")) return JsonValue(true);
    if (consumeWord("false")) return JsonValue(false);
    if (consumeWord("null")) return JsonValue();
    return parseNumber();
  }

  JsonValue parseObject() {
    expect('{');
    JsonValue::Object members;
    skipWs();
    if (peek() == '}') {
      ++pos_;
      return JsonValue(std::move(members));
    }
    for (;;) {
      skipWs();
      std::string key = parseString();
      skipWs();
      expect(':');
      members.emplace_back(std::move(key), parseValue());
      skipWs();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return JsonValue(std::move(members));
    }
  }

  JsonValue parseArray() {
    expect('[');
    JsonValue::Array items;
    skipWs();
    if (peek() == ']') {
      ++pos_;
      return JsonValue(std::move(items));
    }
    for (;;) {
      items.push_back(parseValue());
      skipWs();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return JsonValue(std::move(items));
    }
  }

  std::string parseString() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail(pos_, "unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20)
        fail(pos_ - 1, "raw control character in string");
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail(pos_, "unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': out += parseUnicodeEscape(); break;
        default: fail(pos_ - 1, "bad escape");
      }
    }
  }

  std::string parseUnicodeEscape() {
    if (pos_ + 4 > text_.size()) fail(pos_, "truncated \\u escape");
    unsigned code = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      code <<= 4;
      if (c >= '0' && c <= '9') code |= static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f') code |= static_cast<unsigned>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') code |= static_cast<unsigned>(c - 'A' + 10);
      else fail(pos_ - 1, "bad \\u digit");
    }
    if (code >= 0xD800 && code <= 0xDFFF)
      fail(pos_, "surrogate \\u escapes are not supported");
    std::string out;
    if (code < 0x80) {
      out += static_cast<char>(code);
    } else if (code < 0x800) {
      out += static_cast<char>(0xC0 | (code >> 6));
      out += static_cast<char>(0x80 | (code & 0x3F));
    } else {
      out += static_cast<char>(0xE0 | (code >> 12));
      out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (code & 0x3F));
    }
    return out;
  }

  JsonValue parseNumber() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-'))
      ++pos_;
    double out = 0;
    const auto [ptr, ec] =
        std::from_chars(text_.data() + start, text_.data() + pos_, out);
    if (ec != std::errc{} || ptr != text_.data() + pos_ || pos_ == start)
      fail(start, "bad number");
    return JsonValue(out);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::size_t depth_ = 0;  // open containers; capped at kMaxDepth
};

}  // namespace

std::string jsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          static constexpr char kHex[] = "0123456789abcdef";
          out += "\\u00";
          out += kHex[(static_cast<unsigned char>(c) >> 4) & 0xF];
          out += kHex[static_cast<unsigned char>(c) & 0xF];
        } else {
          out += c;
        }
    }
  }
  return out;
}

bool JsonValue::asBool() const {
  if (!isBool()) throw std::invalid_argument("json: expected a bool");
  return std::get<bool>(value_);
}

double JsonValue::asNumber() const {
  if (!isNumber()) throw std::invalid_argument("json: expected a number");
  return std::get<double>(value_);
}

std::int64_t JsonValue::asInt() const {
  const double v = asNumber();
  if (std::floor(v) != v || std::abs(v) > 9007199254740992.0)
    throw std::invalid_argument("json: expected an integer");
  return static_cast<std::int64_t>(v);
}

const std::string& JsonValue::asString() const {
  if (!isString()) throw std::invalid_argument("json: expected a string");
  return std::get<std::string>(value_);
}

const JsonValue::Array& JsonValue::asArray() const {
  if (!isArray()) throw std::invalid_argument("json: expected an array");
  return std::get<Array>(value_);
}

const JsonValue::Object& JsonValue::asObject() const {
  if (!isObject()) throw std::invalid_argument("json: expected an object");
  return std::get<Object>(value_);
}

const JsonValue* JsonValue::find(std::string_view key) const {
  if (!isObject()) return nullptr;
  for (const auto& [k, v] : std::get<Object>(value_))
    if (k == key) return &v;
  return nullptr;
}

JsonValue JsonValue::parse(std::string_view text) {
  return Parser(text).parseDocument();
}

std::string JsonValue::dump() const {
  if (isNull()) return "null";
  if (isBool()) return asBool() ? "true" : "false";
  if (isNumber()) {
    const double v = asNumber();
    if (std::floor(v) == v && std::abs(v) <= 9007199254740992.0)
      return std::to_string(static_cast<std::int64_t>(v));
    return exp::shortestDouble(v);
  }
  if (isString()) return "\"" + jsonEscape(asString()) + "\"";
  if (isArray()) {
    std::string out = "[";
    bool first = true;
    for (const JsonValue& v : asArray()) {
      if (!first) out += ",";
      first = false;
      out += v.dump();
    }
    return out + "]";
  }
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : asObject()) {
    if (!first) out += ",";
    first = false;
    out += "\"" + jsonEscape(k) + "\":" + v.dump();
  }
  return out + "}";
}

}  // namespace ssno::serve
