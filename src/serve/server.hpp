// serve/server — the always-on experiment service front end.
//
// A session is line-delimited JSON: one request object per line, one or
// more response objects per line out (every response line carries
// "ok").  Verbs:
//
//   {"verb":"submit", "target":"<preset-or-triple>"
//                   | "scenarios":["<scenario-file line>", ...],
//    "trials":N, "seed":S, "budget":B, "rate":R,     (optional overrides)
//    "only":"<scenario-name>", "priority":P,
//    "checkpoint":"<name>"}
//       → {"ok":true,"job":J,"units":K}
//   {"verb":"resume","checkpoint":"<name>" [,"priority":P]}
//       → {"ok":true,"job":J,"units":K}      (from the checkpoint file)
//   {"verb":"status","job":J}
//       → {"ok":true,"job":J,"state":"queued|running|complete|cancelled",
//          "total":K,"done":D,"failed":F,"cached_hits":H}
//   {"verb":"result","job":J}
//       → streams, as workers finish (completion order, "unit" is the
//         submit-order index):
//         {"ok":true,"job":J,"unit":U,"scenario":"<name>","cached":B,
//          "failed":false,"csv":"<this scenario's CSV rows>"}
//         ... then one final
//         {"ok":true,"job":J,"complete":true,"total":K,"done":D,
//          "failed":F,"cancelled":B}
//   {"verb":"cancel","job":J}    → {"ok":true,"job":J,"cancelled":B}
//   {"verb":"stats"}             → cache + scheduler counters
//   {"verb":"metrics"}
//       → {"ok":true,"metrics":"<Prometheus text exposition>"}; the
//         text is built from the process-wide obs::Registry (serve_*
//         request/latency/cache series plus every instrumented engine)
//         with queue-depth/worker gauges sampled at render time
//   {"verb":"prune","max_bytes":N}
//       → {"ok":true,"removed":R,"kept":K,"bytes_removed":BR,
//          "bytes_kept":BK}      (LRU-prunes the result cache to N
//                                 bytes; error when no cache is wired)
//   {"verb":"shutdown"}          → {"ok":true}; ends the session and,
//                                  in socket mode, stops the server
//
// Anything malformed answers {"ok":false,"error":"..."} and the session
// continues — a bad request must never take the service down.  The
// "csv" rows reassemble (header + rows sorted by unit) into a byte-
// identical `exp_cli --csv` file; tools/serve_smoke.py does exactly
// that and CI asserts the equality.
//
// Transports: serveStream() runs one session over any istream/ostream
// pair (the exp_serve --pipe mode and the unit tests), listenUnix() +
// acceptLoop() serve a local AF_UNIX socket with one thread per
// connection (the exp_serve --socket mode).
#ifndef SSNO_SERVE_SERVER_HPP
#define SSNO_SERVE_SERVER_HPP

#include <atomic>
#include <iosfwd>
#include <string>

#include "serve/cache.hpp"
#include "serve/scheduler.hpp"

namespace ssno::serve {

class ExpServer {
 public:
  /// `cache` may be null (service still works, nothing is memoized);
  /// not owned.  Scheduler options take the same cache.
  explicit ExpServer(SchedulerOptions options);

  JobScheduler& scheduler() { return scheduler_; }
  [[nodiscard]] ResultCache* cache() const { return cache_; }

  /// Serves one session until EOF or a shutdown verb.
  void serveStream(std::istream& in, std::ostream& out);

  /// Binds and listens on an AF_UNIX socket at `path` (an existing
  /// socket file is replaced).  Returns the listening fd; throws
  /// std::runtime_error on socket errors.
  int listenUnix(const std::string& path);

  /// Accepts connections on `fd` (one session thread each) until a
  /// shutdown verb arrives or requestShutdown() is called; joins all
  /// session threads before returning and closes `fd`.
  void acceptLoop(int fd);

  void requestShutdown() { shutdown_.store(true); }
  [[nodiscard]] bool shutdownRequested() const { return shutdown_.load(); }

 private:
  /// Dispatches one request line; response lines go to `out`.
  void handleLine(const std::string& line, std::ostream& out);

  JobScheduler scheduler_;
  ResultCache* cache_;
  std::atomic<bool> shutdown_{false};
};

}  // namespace ssno::serve

#endif  // SSNO_SERVE_SERVER_HPP
