#include "orientation/baseline.hpp"

#include <sstream>

#include "core/assert.hpp"
#include "sptree/dfs_tree.hpp"

namespace ssno {

InitBasedOrientation::InitBasedOrientation(Graph graph)
    : Protocol(std::move(graph)),
      arena_(this->graph()),
      done_(arena_.nodeColumn(0)),
      numbered_(arena_.nodeColumn(0)),
      eta_(arena_.nodeColumn(0)),
      pi_(arena_.portColumn(0)) {
  preorder_ = portOrderDfsPreorder(this->graph());
  const std::size_t n = static_cast<std::size_t>(this->graph().nodeCount());
  successor_.assign(n, kNoNode);
  std::vector<NodeId> byIndex(n, kNoNode);
  for (NodeId p = 0; p < this->graph().nodeCount(); ++p)
    byIndex[static_cast<std::size_t>(preorder_[idx(p)])] = p;
  for (NodeId p = 0; p < this->graph().nodeCount(); ++p) {
    const std::size_t next = static_cast<std::size_t>(preorder_[idx(p)]) + 1;
    if (next < n) successor_[idx(p)] = byIndex[next];
  }
}

std::string InitBasedOrientation::actionName(int action) const {
  return action == kNumber ? "Number" : "Label";
}

bool InitBasedOrientation::enabled(NodeId p, int action) const {
  // The initialization wave: processors number themselves in DFS
  // preorder (the wave order is fixed by the topology), then label once
  // all neighbors are numbered.  A `done` processor NEVER acts again —
  // that is the whole point of this baseline.
  if (done_[p]) return false;
  if (action == kNumber) {
    if (numbered_[p]) return false;
    if (p == graph().root()) return true;
    // Wave: my preorder predecessor is already numbered.
    for (NodeId q = 0; q < graph().nodeCount(); ++q)
      if (preorder_[static_cast<std::size_t>(q)] ==
          preorder_[static_cast<std::size_t>(p)] - 1)
        return numbered_[q] != 0;
    return false;
  }
  if (!numbered_[p]) return false;
  for (NodeId q : graph().neighbors(p))
    if (!numbered_[q]) return false;
  return true;
}

void InitBasedOrientation::doExecute(NodeId p, int action) {
  SSNO_EXPECTS(enabled(p, action));
  if (action == kNumber) {
    eta_[p] = preorder_[static_cast<std::size_t>(p)];
    numbered_[p] = 1;
    return;
  }
  for (Port l = 0; l < graph().degree(p); ++l) {
    const NodeId q = graph().neighborAt(p, l);
    pi_.at(p, l) =
        chordalDistance(eta_[p], eta_[q], modulus());
  }
  done_[p] = 1;
}

void InitBasedOrientation::doRandomizeNode(NodeId p, Rng& rng) {
  done_[p] = rng.below(2);
  numbered_[p] = rng.below(2);
  eta_[p] = rng.below(modulus());
  for (auto& v : pi_.row(p)) v = rng.below(modulus());
}

std::uint64_t InitBasedOrientation::localStateCount(NodeId p) const {
  const std::uint64_t nn = static_cast<std::uint64_t>(modulus());
  std::uint64_t count = 4 * nn;  // done, numbered, eta
  for (Port l = 0; l < graph().degree(p); ++l) count *= nn;
  return count;
}

std::uint64_t InitBasedOrientation::encodeNode(NodeId p) const {
  const std::uint64_t nn = static_cast<std::uint64_t>(modulus());
  std::uint64_t code = static_cast<std::uint64_t>(done_[p]);
  code = code * 2 + static_cast<std::uint64_t>(numbered_[p]);
  code = code * nn + static_cast<std::uint64_t>(eta_[p]);
  for (int v : pi_.row(p)) code = code * nn + static_cast<std::uint64_t>(v);
  return code;
}

void InitBasedOrientation::doDecodeNode(NodeId p, std::uint64_t code) {
  SSNO_EXPECTS(code < localStateCount(p));
  const std::uint64_t nn = static_cast<std::uint64_t>(modulus());
  for (Port l = graph().degree(p) - 1; l >= 0; --l) {
    pi_.at(p, l) = static_cast<int>(code % nn);
    code /= nn;
  }
  eta_[p] = static_cast<int>(code % nn);
  code /= nn;
  numbered_[p] = static_cast<int>(code % 2);
  code /= 2;
  done_[p] = static_cast<int>(code);
}

std::vector<int> InitBasedOrientation::rawNode(NodeId p) const {
  return arena_.rawNode(p);
}

std::size_t InitBasedOrientation::rawNodeLength(NodeId p) const {
  return arena_.rawLength(p);
}

void InitBasedOrientation::doSetRawNode(NodeId p,
                                        std::span<const int> values) {
  arena_.setRawNode(p, values);
}

std::string InitBasedOrientation::dumpNode(NodeId p) const {
  std::ostringstream out;
  out << "done=" << done_[p] << " num=" << numbered_[p]
      << " eta=" << eta_[p];
  return out.str();
}

Orientation InitBasedOrientation::orientation() const {
  Orientation o;
  o.graph = &graph();
  o.modulus = modulus();
  o.name = eta_.data();
  o.label = pi_.data();
  return o;
}

void InitBasedOrientation::initializeAll() {
  done_.fill(0);
  numbered_.fill(0);
  eta_.fill(0);
  pi_.fill(0);
  dirtyAll();
}

void InitBasedOrientation::dirtyAfterWrite(NodeId p) {
  dirtyNeighborhood(p);
  if (successor_[idx(p)] != kNoNode) dirtyNode(successor_[idx(p)]);
}

bool InitBasedOrientation::isCorrect() const {
  for (int d : done_.data())
    if (!d) return false;
  return satisfiesSpec(orientation());
}

}  // namespace ssno
