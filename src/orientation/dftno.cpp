#include "orientation/dftno.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <sstream>

#include "core/assert.hpp"
#include "orientation/chordal_kernel.hpp"

namespace ssno {

Dftno::Dftno(Graph graph, EdgeLabelGuard guard)
    : Protocol(graph),
      dftc_(graph),
      guard_(guard),
      arena_(this->graph()),
      eta_(arena_.nodeColumn(0)),
      max_(arena_.nodeColumn(0)),
      pi_(arena_.portColumn(0)) {
  installHooks();
}

void Dftno::installHooks() {
  TokenHooks hooks;
  // Nodelabel at the root happens when it generates the token.
  hooks.onRoundStart = [this](NodeId r) {
    eta_[r] = 0;
    max_[r] = 0;
  };
  // Nodelabel at a non-root: next free name, after consulting the parent.
  hooks.onForward = [this](NodeId p, NodeId parent) {
    eta_[p] = (max_[parent] + 1) % modulus();
    max_[p] = eta_[p];
  };
  // UpdateMax: the backtracked token carries the child's maximum.
  hooks.onBacktrack = [this](NodeId p, NodeId child) {
    max_[p] = max_[child];
  };
  dftc_.setHooks(std::move(hooks));
}

std::string Dftno::actionName(int action) const {
  if (action < Dftc::kActionCount) return dftc_.actionName(action);
  return "EdgeLabel";
}

bool Dftno::invalidEdgeLabel(NodeId p) const {
  for (Port l = 0; l < graph().degree(p); ++l)
    if (pi_.at(p, l) !=
        chordal(p, graph().neighborAt(p, l)))
      return true;
  return false;
}

bool Dftno::enabled(NodeId p, int action) const {
  if (action < Dftc::kActionCount) return dftc_.enabled(p, action);
  if (action != kEdgeLabel) return false;
  // Paper: ¬Forward(p) ∧ ¬Backtrack(p) ∧ InvalidEdgelabel(p) — only a
  // processor not currently involved with the token corrects its labels.
  // The default kContinuous guard drops the token conjunct so the action
  // stays continuously enabled (see EdgeLabelGuard).
  if (guard_ == EdgeLabelGuard::kPaperFaithful && dftc_.holdsToken(p))
    return false;
  return invalidEdgeLabel(p);
}

void Dftno::evaluateGuards(std::span<const NodeId> nodes,
                           std::uint64_t* masks) const {
  dftc_.evaluateGuards(nodes, masks);  // substrate bits 0..5
  const int n = modulus();
  const int* eta = eta_.data().data();
  const int* pi = pi_.data().data();
  const Graph& g = graph();
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const NodeId p = nodes[i];
    // ¬Token(p) ⇔ no substrate action enabled ⇔ masks[i] == 0 here.
    if (guard_ == EdgeLabelGuard::kPaperFaithful && masks[i] != 0) continue;
    if (chordalRowMismatch(pi + g.portBase(p), g.neighbors(p).data(), eta,
                           eta[p], g.degree(p), n))
      masks[i] |= std::uint64_t{1} << kEdgeLabel;
  }
}

void Dftno::doExecute(NodeId p, int action) {
  SSNO_EXPECTS(enabled(p, action));
  if (action < Dftc::kActionCount) {
    dftc_.execute(p, action);  // hooks apply Nodelabel/UpdateMax atomically
    return;
  }
  for (Port l = 0; l < graph().degree(p); ++l)
    pi_.at(p, l) =
        chordal(p, graph().neighborAt(p, l));
}

bool Dftno::doExecuteSimultaneous(std::span<const Move> moves) {
  // Phase 1: every outcome — substrate post-state and the composed
  // Nodelabel/UpdateMax macro values — is computed against the
  // untouched pre-step configuration.  Two moves commit early, inside
  // phase 1, because doing so cannot be observed by any other move's
  // compute:
  //   * EdgeLabel writes only π, and no phase-1 computation reads π
  //     (the corrected rows derive from η alone, substrate outcomes
  //     from {s, col, d, par, η, Max}), so the corrected row goes
  //     straight into the live column;
  //   * Error's entire outcome is s := idle with everything else
  //     unchanged, recorded as a one-store commit for phase 2 without
  //     the generic SimOutcome round-trip.
  simSteps_.clear();
  simSteps_.reserve(moves.size());
  const int n = modulus();
  for (const Move& m : moves) {
    // Enabledness is the caller's precondition (see Dftc note) —
    // re-deriving it per move is Debug-only.
    SSNO_DBG_ASSERT(enabled(m.node, m.action));
    const NodeId p = m.node;
    SimStep step;
    if (m.action == Dftc::kError) {
      step.substrate = SimStep::kIdleOnly;
    } else if (m.action < Dftc::kActionCount) {
      step.substrate = SimStep::kSubstrate;
      step.eta = eta_[p];
      step.max = max_[p];
      const Dftc::SimOutcome sub = dftc_.computeSimultaneous(p, m.action);
      step.s = sub.s;
      step.col = sub.col;
      step.d = sub.d;
      step.par = sub.par;
      switch (sub.event) {
        case Dftc::SimOutcome::Event::kRoundStart:
          step.eta = 0;
          step.max = 0;
          break;
        case Dftc::SimOutcome::Event::kForward:
          step.eta = (max_[sub.peer] + 1) % n;
          step.max = step.eta;
          break;
        case Dftc::SimOutcome::Event::kBacktrack:
          step.max = max_[sub.peer];
          break;
        case Dftc::SimOutcome::Event::kNone:
          break;
      }
    } else {
      auto row = pi_.row(p);
      chordalRowFill(row.data(), graph().neighbors(p).data(),
                     eta_.data().data(), eta_[p], graph().degree(p), n);
      step.substrate = SimStep::kCommitted;
    }
    simSteps_.push_back(step);
  }
  // Phase 2: commit.
  for (std::size_t i = 0; i < moves.size(); ++i) {
    const NodeId p = moves[i].node;
    const SimStep& step = simSteps_[i];
    if (step.substrate == SimStep::kSubstrate) {
      dftc_.commitSimultaneous(
          p, Dftc::SimOutcome{step.s, step.col, step.d, step.par});
      eta_[p] = step.eta;
      max_[p] = step.max;
    } else if (step.substrate == SimStep::kIdleOnly) {
      dftc_.commitIdle(p);
    }
  }
  return true;
}

void Dftno::doRandomizeNode(NodeId p, Rng& rng) {
  dftc_.randomizeNode(p, rng);
  eta_[p] = rng.below(modulus());
  max_[p] = rng.below(modulus());
  for (auto& v : pi_.row(p)) v = rng.below(modulus());
}

std::uint64_t Dftno::localStateCount(NodeId p) const {
  const std::uint64_t nn = static_cast<std::uint64_t>(modulus());
  std::uint64_t overlay = nn * nn;  // η, Max
  for (Port l = 0; l < graph().degree(p); ++l) overlay *= nn;  // π entries
  return dftc_.localStateCount(p) * overlay;
}

std::uint64_t Dftno::encodeNode(NodeId p) const {
  const std::uint64_t nn = static_cast<std::uint64_t>(modulus());
  std::uint64_t overlay = static_cast<std::uint64_t>(eta_[p]);
  overlay = overlay * nn + static_cast<std::uint64_t>(max_[p]);
  for (Port l = 0; l < graph().degree(p); ++l)
    overlay =
        overlay * nn +
        static_cast<std::uint64_t>(pi_.at(p, l));
  return dftc_.encodeNode(p) + dftc_.localStateCount(p) * overlay;
}

void Dftno::doDecodeNode(NodeId p, std::uint64_t code) {
  SSNO_EXPECTS(code < localStateCount(p));
  const std::uint64_t base = dftc_.localStateCount(p);
  dftc_.decodeNode(p, code % base);
  std::uint64_t overlay = code / base;
  const std::uint64_t nn = static_cast<std::uint64_t>(modulus());
  for (Port l = graph().degree(p) - 1; l >= 0; --l) {
    pi_.at(p, l) = static_cast<int>(overlay % nn);
    overlay /= nn;
  }
  max_[p] = static_cast<int>(overlay % nn);
  overlay /= nn;
  eta_[p] = static_cast<int>(overlay);
}

std::string Dftno::dumpNode(NodeId p) const {
  std::ostringstream out;
  out << dftc_.dumpNode(p) << " eta=" << eta_[p] << " max=" << max_[p]
      << " pi=[";
  for (Port l = 0; l < graph().degree(p); ++l) {
    if (l) out << ' ';
    out << pi_.at(p, l);
  }
  out << ']';
  return out.str();
}

Orientation Dftno::orientation() const {
  Orientation o;
  o.graph = &graph();
  o.modulus = modulus();
  o.name = eta_.data();
  o.label = pi_.data();
  return o;
}

bool Dftno::satisfiesSpecNow() const {
  const Orientation o = orientation();
  return satisfiesSpec(o);
}

std::vector<int> Dftno::rawNode(NodeId p) const {
  std::vector<int> out = dftc_.rawNode(p);
  out.push_back(eta_[p]);
  out.push_back(max_[p]);
  out.insert(out.end(), pi_.row(p).begin(), pi_.row(p).end());
  return out;
}

void Dftno::doSetRawNode(NodeId p, std::span<const int> values) {
  const std::size_t subLen = dftc_.rawNodeLength(p);
  SSNO_EXPECTS(values.size() ==
               subLen + 2 + static_cast<std::size_t>(graph().degree(p)));
  dftc_.setRawNode(p, values.subspan(0, subLen));
  eta_[p] = values[subLen];
  max_[p] = values[subLen + 1];
  for (Port l = 0; l < graph().degree(p); ++l)
    pi_.at(p, l) =
        values[subLen + 2 + static_cast<std::size_t>(l)];
}

void Dftno::buildOrbitIfNeeded() {
  if (orbit_.has_value()) return;
  const std::vector<int> saved = rawConfiguration();
  // Bootstrap from a clean substrate boundary with a zeroed overlay and
  // run a deterministic fair schedule (edge-label corrections first, then
  // the unique token move) until a configuration repeats; the repeating
  // suffix is the steady-state orbit.
  dftc_.resetClean();
  eta_.fill(0);
  max_.fill(0);
  pi_.fill(0);
  std::map<std::vector<int>, int> seen;
  std::vector<std::vector<int>> sequence;
  while (true) {
    std::vector<int> code = rawConfiguration();
    const auto [it, inserted] =
        seen.try_emplace(code, static_cast<int>(sequence.size()));
    if (!inserted) {
      orbit_.emplace();
      for (std::size_t i = static_cast<std::size_t>(it->second);
           i < sequence.size(); ++i)
        orbit_->insert(std::move(sequence[i]));
      break;
    }
    sequence.push_back(std::move(code));
    const std::vector<Move> moves = enabledMoves();
    SSNO_ASSERT(!moves.empty());
    const Move* pick = &moves.front();
    for (const Move& m : moves) {
      if (m.action == kEdgeLabel) {
        pick = &m;
        break;
      }
    }
    execute(pick->node, pick->action);
  }
  setRawConfiguration(saved);
}

bool Dftno::isLegitimate() {
  buildOrbitIfNeeded();
  return orbit_->contains(rawConfiguration());
}

double Dftno::stateBits(NodeId p) const {
  return dftc_.stateBits(p) + orientationBits(p);
}

double Dftno::orientationBits(NodeId p) const {
  const double logN = std::log2(static_cast<double>(modulus()));
  return (2.0 + graph().degree(p)) * logN;  // η + Max + Δp π-entries
}

}  // namespace ssno
