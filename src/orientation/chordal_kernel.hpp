// Columnar chordal-row kernels shared by the orientation protocols'
// batch guard evaluators (Dftno, Stno).
//
// The SP2 edge-label guard asks, per node p, whether any incident port
// label disagrees with the chordal distance of the endpoint names:
//     ∃ l: π_p[l] ≠ (η_p − η_{q_l}) mod N.
// In the SoA layout both π_p and p's adjacency are contiguous CSR rows
// and η is one flat NodeColumn, so the check is a straight row scan
// with one gather — the densest per-port work in the orientation
// guards.  The portable loop autovectorizes everywhere; under AVX2
// (-march=native via SSNO_NATIVE_ARCH, or any -mavx2 build) an explicit
// 8-lane gather path handles the common case of in-range names and
// drops to the exact scalar loop for out-of-range names (arbitrary
// transient faults can put anything in η via setRawNode, and the batch
// kernels must stay bit-identical to the scalar guards there too).
#ifndef SSNO_ORIENTATION_CHORDAL_KERNEL_HPP
#define SSNO_ORIENTATION_CHORDAL_KERNEL_HPP

#include "core/types.hpp"
#include "orientation/chordal.hpp"

#if defined(__AVX2__)
#include <immintrin.h>
#endif

namespace ssno {

/// Exact reference loop: true iff some port label in pi[0..deg) differs
/// from the chordal distance (etaP − eta[adj[l]]) mod modulus.
[[nodiscard]] inline bool chordalRowMismatchScalar(const int* pi,
                                                   const NodeId* adj,
                                                   const int* eta, int etaP,
                                                   int deg, int modulus) {
  for (int l = 0; l < deg; ++l)
    if (pi[l] != chordalDistance(etaP, eta[adj[l]], modulus)) return true;
  return false;
}

/// Same predicate, with an 8-lane AVX2 gather fast path when available.
[[nodiscard]] inline bool chordalRowMismatch(const int* pi, const NodeId* adj,
                                             const int* eta, int etaP,
                                             int deg, int modulus) {
#if defined(__AVX2__)
  // The vector lanes replace the % with one conditional add, which is
  // only exact when every name involved is already in [0, modulus):
  // then etaP − eta[q] ∈ (−N, N).  Lanes that gather an out-of-range
  // name (possible under arbitrary transient faults) send the row tail
  // to the exact scalar loop instead.
  if (deg >= 8 && etaP >= 0 && etaP < modulus) {
    // (AVX2 8-lane gather path; small-degree rows use the no-division
    // scalar fast path below.)
    const __m256i vEtaP = _mm256_set1_epi32(etaP);
    const __m256i vN = _mm256_set1_epi32(modulus);
    const __m256i vNm1 = _mm256_set1_epi32(modulus - 1);
    const __m256i vZero = _mm256_setzero_si256();
    int l = 0;
    for (; l + 8 <= deg; l += 8) {
      const __m256i idx =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(adj + l));
      const __m256i e = _mm256_i32gather_epi32(eta, idx, 4);
      const __m256i outOfRange = _mm256_or_si256(
          _mm256_cmpgt_epi32(vZero, e), _mm256_cmpgt_epi32(e, vNm1));
      if (_mm256_movemask_epi8(outOfRange) != 0)
        return chordalRowMismatchScalar(pi + l, adj + l, eta, etaP, deg - l,
                                        modulus);
      __m256i d = _mm256_sub_epi32(vEtaP, e);
      d = _mm256_add_epi32(d,
                           _mm256_and_si256(_mm256_cmpgt_epi32(vZero, d), vN));
      const __m256i row =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(pi + l));
      if (_mm256_movemask_epi8(_mm256_cmpeq_epi32(row, d)) != -1) return true;
    }
    return chordalRowMismatchScalar(pi + l, adj + l, eta, etaP, deg - l,
                                    modulus);
  }
#endif
  // No-division scalar fast path: chordalDistance's % is an integer
  // division on a runtime modulus (~25 cycles) — for in-range names
  // etaP − eta[q] ∈ (−N, N), so one conditional add is exact.  Rows
  // with out-of-range names (arbitrary transient faults) fall back to
  // the exact reference loop, like the vector path above.
  if (etaP >= 0 && etaP < modulus) {
    for (int l = 0; l < deg; ++l) {
      const int e = eta[adj[l]];
      if (e < 0 || e >= modulus)
        return chordalRowMismatchScalar(pi + l, adj + l, eta, etaP, deg - l,
                                        modulus);
      int d = etaP - e;
      if (d < 0) d += modulus;
      if (pi[l] != d) return true;
    }
    return false;
  }
  return chordalRowMismatchScalar(pi, adj, eta, etaP, deg, modulus);
}

/// Writes the induced chordal row: pi[l] = (etaP − eta[adj[l]]) mod
/// modulus for every port (the SP2 correction statement's RHS).
inline void chordalRowFill(int* pi, const NodeId* adj, const int* eta,
                           int etaP, int deg, int modulus) {
  // Same no-division fast path as chordalRowMismatch: exact whenever
  // both names are in range, which is the steady state (the protocol
  // only ever writes in-range names; out-of-range comes from faults).
  if (etaP >= 0 && etaP < modulus) {
    int l = 0;
    for (; l < deg; ++l) {
      const int e = eta[adj[l]];
      if (e < 0 || e >= modulus) break;
      int d = etaP - e;
      if (d < 0) d += modulus;
      pi[l] = d;
    }
    for (; l < deg; ++l)
      pi[l] = chordalDistance(etaP, eta[adj[l]], modulus);
    return;
  }
  for (int l = 0; l < deg; ++l)
    pi[l] = chordalDistance(etaP, eta[adj[l]], modulus);
}

}  // namespace ssno

#endif  // SSNO_ORIENTATION_CHORDAL_KERNEL_HPP
