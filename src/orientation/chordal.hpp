// Chordal sense of direction (paper §2.2) and the network-orientation
// specification SP_NO (paper §2.3).
//
// A *labeling* assigns, at every node, labels to that node's incident
// edges.  An *orientation* is a labeling for which every node p also has
// a unique name η_p ∈ {0..N−1} and the edge from p to q is labeled
// (η_p − η_q) mod N at p — the chordal labeling induced by the cyclic
// ordering ψ of the names.  SP_NO:
//   SP1: every node has a unique name η_p ∈ {0..N−1};
//   SP2: ∀p, ∀l ∈ E_{p,q}: π_p[l] = (η_p − η_q) mod N.
//
// This module provides the label arithmetic, the specification checkers,
// and the classic labeling-quality predicates from §1.3 (local
// orientation, edge symmetry, local symmetric orientation).
#ifndef SSNO_ORIENTATION_CHORDAL_HPP
#define SSNO_ORIENTATION_CHORDAL_HPP

#include <string>
#include <vector>

#include "core/graph.hpp"
#include "core/types.hpp"

namespace ssno {

/// A snapshot of node names and per-port edge labels over a graph.
/// `modulus` is N, the (upper bound on the) number of processors that all
/// nodes are assumed to know (§2.2).
///
/// SoA layout: `label` is one flat array over the graph's CSR port
/// slots — π_p[l] lives at graph->portBase(p) + l — matching the
/// protocols' own PortColumn storage, so snapshotting an orientation is
/// two flat copies and consumers (routing, SoD coding, the spec
/// checkers) walk contiguous memory.
struct Orientation {
  const Graph* graph = nullptr;
  std::vector<int> name;   ///< η_p, one per node
  std::vector<int> label;  ///< π_p[l], flat CSR port-slot layout
  int modulus = 0;

  [[nodiscard]] int nameOf(NodeId p) const {
    return name[static_cast<std::size_t>(p)];
  }
  [[nodiscard]] int labelAt(NodeId p, Port l) const {
    return label[graph->portBase(p) + static_cast<std::size_t>(l)];
  }
  [[nodiscard]] int& labelAt(NodeId p, Port l) {
    return label[graph->portBase(p) + static_cast<std::size_t>(l)];
  }
};

/// (a − b) mod m, always in 0..m−1.
[[nodiscard]] constexpr int chordalDistance(int a, int b, int m) {
  const int d = (a - b) % m;
  return d < 0 ? d + m : d;
}

/// SP1: names are a set of distinct values within 0..N−1.
[[nodiscard]] bool satisfiesSP1(const Orientation& o);

/// SP2: every edge label equals the chordal distance of the endpoint names.
[[nodiscard]] bool satisfiesSP2(const Orientation& o);

/// The full specification SP_NO = SP1 ∧ SP2.
[[nodiscard]] bool satisfiesSpec(const Orientation& o);

/// Local orientation: at each node, the labeling is injective.
[[nodiscard]] bool isLocallyOriented(const Orientation& o);

/// Edge symmetry for chordal labelings: for edge (p,q),
/// π_p + π_q ≡ 0 (mod N) — each side is the inverse of the other.
[[nodiscard]] bool hasEdgeSymmetry(const Orientation& o);

/// Locally symmetric orientation = local orientation ∧ edge symmetry.
[[nodiscard]] bool isLocallySymmetric(const Orientation& o);

/// The canonical chordal labeling induced by a name assignment: fills in
/// π from η (the "ground truth" the protocols must converge to).
[[nodiscard]] Orientation inducedChordalOrientation(const Graph& g,
                                                    std::vector<int> names,
                                                    int modulus);

/// The successor function ψ of the cyclic ordering: the node named
/// (η_p + 1) mod N.  Requires SP1.  Used by tests to validate §2.2's
/// δ(p,q) = smallest k with ψ^k(p) = q against the edge labels.
[[nodiscard]] NodeId psiSuccessor(const Orientation& o, NodeId p);

/// δ(p,q): chordal distance between two nodes' names.
[[nodiscard]] int deltaDistance(const Orientation& o, NodeId p, NodeId q);

/// Human-readable table of names and labels (used by examples/benches).
[[nodiscard]] std::string renderOrientation(const Orientation& o);

}  // namespace ssno

#endif  // SSNO_ORIENTATION_CHORDAL_HPP
