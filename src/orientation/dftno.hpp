// DFTNO — network orientation using depth-first token passing
// (the paper's Algorithm 3.1.1, Chapter 3).
//
// Layered on the Dftc substrate.  The circulating token acts as a counter:
//   Nodelabel_p  = { η_p := 0; Max_p := 0                     if p = root
//                    η_p := Max_{A_p} + 1; Max_p := η_p       otherwise }
//   UpdateMax_p  = { Max_p := Max_{D_p} }
//   Edgelabel_p  = { ∀l ∈ E_{p,q} with π_p[l] ≠ (η_p − η_q) mod N ::
//                    π_p[l] := (η_p − η_q) mod N }
// composed with the substrate as:
//   Forward(p)   --> Nodelabel_p                (token arrives first time)
//   Backtrack(p) --> UpdateMax_p                (token returns from child)
//   ¬Token(p) ∧ InvalidEdgelabel(p) --> Edgelabel_p
//
// The macros run in the same atomic step as the substrate action, so the
// composed protocol's action set is the substrate's five actions plus the
// EdgeLabel correction.  Stabilizes in O(n) steps after L_TC holds: the
// next full round renames every node with its DFS preorder index (which is
// the same every round — the traversal is deterministic), after which the
// edge labels are corrected locally and never change again.
//
// Space: η, Max (log N bits each) + π (Δp·log N) + substrate O(log N)
// = O(Δ·log N) per node, the paper's bound.
#ifndef SSNO_ORIENTATION_DFTNO_HPP
#define SSNO_ORIENTATION_DFTNO_HPP

#include <optional>
#include <set>
#include <string>
#include <vector>

#include "core/protocol.hpp"
#include "core/state_arena.hpp"
#include "dftc/dftc.hpp"
#include "orientation/chordal.hpp"

namespace ssno {

/// Guard used for the EdgeLabel correction action.
///
/// The paper's guard is ¬Token(p) ∧ InvalidEdgelabel(p).  The ¬Token
/// conjunct disables the action for a moment every round (whenever the
/// token visits p), so it is never *continuously* enabled — under the
/// paper's own weakly fair daemon the daemon may serve only token moves
/// forever and the labeling never completes.  This liveness gap was
/// found mechanically by the model checker (see DESIGN.md erratum 4):
/// the paper-faithful guard converges only under strong fairness.
/// kContinuous drops the conjunct; the action then stays enabled until
/// served and weak fairness suffices.  Both variants are verified in
/// tests/dftc_modelcheck_test.cpp.
enum class EdgeLabelGuard {
  kContinuous,     ///< InvalidEdgelabel(p)                 (default, fixed)
  kPaperFaithful,  ///< ¬Token(p) ∧ InvalidEdgelabel(p)     (needs strong fairness)
};

class Dftno final : public Protocol {
 public:
  /// Action ids 0..5 are the substrate's (Dftc::Action); 6 is EdgeLabel.
  static constexpr int kEdgeLabel = Dftc::kActionCount;
  static constexpr int kActionCount = Dftc::kActionCount + 1;

  explicit Dftno(Graph graph,
                 EdgeLabelGuard guard = EdgeLabelGuard::kContinuous);

  // ---- Protocol interface ----
  [[nodiscard]] int actionCount() const override { return kActionCount; }
  [[nodiscard]] std::string actionName(int action) const override;
  [[nodiscard]] bool enabled(NodeId p, int action) const override;
  /// Columnar kernel: substrate bits via Dftc's fused walk, EdgeLabel
  /// via a contiguous chordal-row scan (π row + CSR adjacency row + η
  /// gather — AVX2 under SSNO_NATIVE_ARCH).  ¬Token(p) for the paper-
  /// faithful guard is read off the substrate mask instead of six more
  /// guard evaluations.
  void evaluateGuards(std::span<const NodeId> nodes,
                      std::uint64_t* masks) const override;
  [[nodiscard]] std::uint64_t localStateCount(NodeId p) const override;
  [[nodiscard]] std::uint64_t encodeNode(NodeId p) const override;
  [[nodiscard]] std::vector<int> rawNode(NodeId p) const override;
  [[nodiscard]] std::size_t rawNodeLength(NodeId p) const override {
    return dftc_.rawNodeLength(p) + 2 +
           static_cast<std::size_t>(graph().degree(p));
  }
  [[nodiscard]] std::string dumpNode(NodeId p) const override;
  void collectArenas(std::vector<StateArena*>& out) override {
    dftc_.collectArenas(out);
    out.push_back(&arena_);
  }

  // ---- Orientation API ----
  /// The modulus N every node knows (here: the exact node count).
  [[nodiscard]] int modulus() const { return graph().nodeCount(); }

  [[nodiscard]] int name(NodeId p) const { return eta_[p]; }
  [[nodiscard]] int maxSeen(NodeId p) const { return max_[p]; }
  [[nodiscard]] int edgeLabel(NodeId p, Port l) const {
    return pi_.at(p, l);
  }

  /// Snapshot of the current names/labels for the chordal checkers.
  [[nodiscard]] Orientation orientation() const;

  /// SP_NO = SP1 ∧ SP2 on the current names/labels (paper §2.3).
  [[nodiscard]] bool satisfiesSpecNow() const;

  /// L_NO: the configuration lies on the steady-state orbit of the
  /// composed system — the token circulates legitimately AND the names
  /// are the canonical DFS preorder with chordal labels and round-
  /// consistent Max values.
  ///
  /// Note a subtlety the paper glosses over: its predicate
  /// "L_TC ∧ SP1 ∧ SP2" is NOT closed — any non-canonical permutation
  /// satisfies SP1/SP2, but the next token round re-labels nodes with
  /// their preorder numbers and transiently breaks SP1 along the way
  /// (found mechanically by the model checker; see DESIGN.md).  The
  /// steady-state orbit is the largest closed legitimate set, and
  /// SP1 ∧ SP2 hold everywhere on it (asserted by the tests).
  [[nodiscard]] bool isLegitimate();
  /// L_TC alone (substrate stabilized).
  [[nodiscard]] bool substrateLegitimate() { return dftc_.isLegitimate(); }

  /// Direct access to the substrate (tests, benches, DFS-tree adapter).
  [[nodiscard]] Dftc& substrate() { return dftc_; }
  [[nodiscard]] const Dftc& substrate() const { return dftc_; }

  /// Per-node variable bits including the substrate (space reporting).
  [[nodiscard]] double stateBits(NodeId p) const;
  /// Bits of the orientation layer only (η + Max + π).
  [[nodiscard]] double orientationBits(NodeId p) const;

 protected:
  // ---- Protocol mutation hooks ----
  void doExecute(NodeId p, int action) override;
  /// Batched synchronous step: phase 1 computes substrate outcomes
  /// (Dftc::computeSimultaneous) and inlines the Nodelabel/UpdateMax
  /// macros against pre-step η/Max (plus fresh π rows for EdgeLabel
  /// moves), phase 2 commits — the whole dense step without the
  /// engine's per-move snapshot/rollback schedule.
  bool doExecuteSimultaneous(std::span<const Move> moves) override;
  void doRandomizeNode(NodeId p, Rng& rng) override;
  void doDecodeNode(NodeId p, std::uint64_t code) override;
  void doSetRawNode(NodeId p, std::span<const int> values) override;

 private:
  [[nodiscard]] int chordal(NodeId p, NodeId q) const {
    return chordalDistance(eta_[p], eta_[q], modulus());
  }
  [[nodiscard]] bool invalidEdgeLabel(NodeId p) const;
  void installHooks();
  void buildOrbitIfNeeded();

  Dftc dftc_;
  EdgeLabelGuard guard_;
  // SoA overlay columns (raw layout: substrate ++ {η, Max, π row}).
  StateArena arena_;
  NodeColumn eta_;   // η_p ∈ 0..N−1
  NodeColumn max_;   // Max_p ∈ 0..N−1
  PortColumn pi_;    // π_p[l] ∈ 0..N−1
  // Reused phase-1 buffer for doExecuteSimultaneous.  A dense step
  // buffers one SimStep per move, so the layout is kept to 32 bytes —
  // only the committed values, not the whole SimOutcome (its event/peer
  // fields are consumed during phase 1 when the macro values compose).
  struct SimStep {
    enum Kind : std::uint32_t {
      kCommitted = 0,  // already applied in phase 1 (EdgeLabel π rows)
      kSubstrate = 1,  // generic substrate commit below
      kIdleOnly = 2,   // Error: the whole outcome is s := idle
    };
    std::int32_t s = 0;      // substrate commit values (substrate moves)
    std::int32_t col = 0;
    std::int32_t d = 0;
    std::int32_t par = 0;
    std::int32_t eta = 0;
    std::int32_t max = 0;
    std::uint32_t substrate = kCommitted;
  };
  std::vector<SimStep> simSteps_;
  // Exact raw configurations of the composed steady-state orbit.
  std::optional<std::set<std::vector<int>>> orbit_;
};

}  // namespace ssno

#endif  // SSNO_ORIENTATION_DFTNO_HPP
