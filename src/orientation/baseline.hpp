// Non-self-stabilizing baseline: orientation by explicit initialization.
//
// The paper's §1.2 motivates self-stabilization against the classical
// alternative — initialize correctly once and hope: "No startup or
// initialization procedures are necessary since the system converges to
// legal state from any arbitrary state."  This baseline is that
// alternative, made concrete so the benches can quantify the difference:
// a one-shot distributed wave protocol that computes the same canonical
// DFS-preorder chordal orientation as DFTNO, but whose actions only fire
// when the per-node `done` flag is clear.  After any transient fault
// that corrupts a `done` processor, NOTHING is enabled there — the
// corruption is permanent until an external operator resets the system.
//
// (The wave itself is a standard non-stabilizing DFS numbering: each
// processor is numbered by its parent wave message; here realized in the
// same guarded-command model with an explicit visited flag.)
#ifndef SSNO_ORIENTATION_BASELINE_HPP
#define SSNO_ORIENTATION_BASELINE_HPP

#include <string>
#include <vector>

#include "core/protocol.hpp"
#include "core/state_arena.hpp"
#include "orientation/chordal.hpp"

namespace ssno {

class InitBasedOrientation final : public Protocol {
 public:
  enum Action : int { kNumber = 0, kLabel = 1 };
  static constexpr int kActionCount = 2;

  explicit InitBasedOrientation(Graph graph);

  // ---- Protocol interface ----
  [[nodiscard]] int actionCount() const override { return kActionCount; }
  [[nodiscard]] std::string actionName(int action) const override;
  [[nodiscard]] bool enabled(NodeId p, int action) const override;
  /// The Number guard reads a non-neighbor (the preorder predecessor's
  /// `numbered` flag), so simultaneous steps must use full snapshots.
  [[nodiscard]] bool guardsAreNeighborhoodLocal() const override {
    return false;
  }
  [[nodiscard]] std::uint64_t localStateCount(NodeId p) const override;
  [[nodiscard]] std::uint64_t encodeNode(NodeId p) const override;
  [[nodiscard]] std::vector<int> rawNode(NodeId p) const override;
  [[nodiscard]] std::size_t rawNodeLength(NodeId p) const override;
  [[nodiscard]] std::string dumpNode(NodeId p) const override;
  void collectArenas(std::vector<StateArena*>& out) override {
    out.push_back(&arena_);
  }

  // ---- Orientation API ----
  [[nodiscard]] int modulus() const { return graph().nodeCount(); }
  [[nodiscard]] int name(NodeId p) const { return eta_[p]; }
  [[nodiscard]] Orientation orientation() const;

  /// The operator's reset button: the explicit initialization procedure
  /// self-stabilizing protocols do not need.
  void initializeAll();

  /// Correct result reached (and, absent faults, kept).
  [[nodiscard]] bool isCorrect() const;

 protected:
  // ---- Protocol mutation hooks ----
  void doExecute(NodeId p, int action) override;
  void doRandomizeNode(NodeId p, Rng& rng) override;
  void doDecodeNode(NodeId p, std::uint64_t code) override;
  void doSetRawNode(NodeId p, std::span<const int> values) override;

  /// The Number guard at p reads the `numbered` flag of p's preorder
  /// predecessor, which is generally NOT a neighbor (the wave order is a
  /// global DFS preorder), so a write at p must additionally dirty p's
  /// preorder successor.
  void dirtyAfterWrite(NodeId p) override;

 private:
  [[nodiscard]] static std::size_t idx(NodeId p) {
    return static_cast<std::size_t>(p);
  }

  // The wave order, fixed by the topology (cached DFS preorder).
  std::vector<int> preorder_;
  // successor_[p]: the node whose preorder index is preorder_[p]+1
  // (kNoNode for the last node) — the extra guard dependency above.
  std::vector<NodeId> successor_;
  // SoA state columns (raw layout {done, numbered, η, π row}).
  StateArena arena_;
  // done: this processor finished both phases and will never act again.
  NodeColumn done_;
  NodeColumn numbered_;
  NodeColumn eta_;
  PortColumn pi_;
};

}  // namespace ssno

#endif  // SSNO_ORIENTATION_BASELINE_HPP
