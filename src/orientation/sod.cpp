#include "orientation/sod.hpp"

#include <map>

#include "core/assert.hpp"

namespace ssno {

std::optional<int> walkCode(const Orientation& o, NodeId from,
                            const std::vector<Port>& ports) {
  const Graph& g = *o.graph;
  NodeId cur = from;
  int code = 0;
  for (Port l : ports) {
    if (l < 0 || l >= g.degree(cur)) return std::nullopt;
    code = (code + o.labelAt(cur, l)) % o.modulus;
    cur = g.neighborAt(cur, l);
  }
  return code;
}

std::optional<NodeId> walkEnd(const Graph& g, NodeId from,
                              const std::vector<Port>& ports) {
  NodeId cur = from;
  for (Port l : ports) {
    if (l < 0 || l >= g.degree(cur)) return std::nullopt;
    cur = g.neighborAt(cur, l);
  }
  return cur;
}

int nameFromCode(const Orientation& o, NodeId p, int code) {
  return chordalDistance(o.nameOf(p), code, o.modulus);
}

int translateCode(const Orientation& o, NodeId p, Port l, int code) {
  const Graph& g = *o.graph;
  const NodeId q = g.neighborAt(p, l);
  const Port back = g.portOf(q, p);
  SSNO_ASSERT(back != kNoPort);
  // η_q − η_t = (η_q − η_p) + (η_p − η_t) = π_q[back] + code.
  return (o.labelAt(q, back) + code) % o.modulus;
}

bool hasConsistentCoding(const Orientation& o, int maxLen) {
  const Graph& g = *o.graph;
  // BFS over walks from each origin; for each origin, a code must map to
  // exactly one endpoint and vice versa.
  for (NodeId origin = 0; origin < g.nodeCount(); ++origin) {
    std::map<int, NodeId> codeToEnd;
    std::map<NodeId, int> endToCode;
    // Frontier of (node, code) pairs reached by some walk.
    std::vector<std::pair<NodeId, int>> frontier{{origin, 0}};
    std::map<std::pair<NodeId, int>, bool> seen{{{origin, 0}, true}};
    for (int depth = 0; depth <= maxLen; ++depth) {
      std::vector<std::pair<NodeId, int>> next;
      for (const auto& [node, code] : frontier) {
        // Check the bijection between codes and endpoints.
        if (const auto it = codeToEnd.find(code); it != codeToEnd.end()) {
          if (it->second != node) return false;
        } else {
          codeToEnd.emplace(code, node);
        }
        if (const auto it = endToCode.find(node); it != endToCode.end()) {
          if (it->second != code) return false;
        } else {
          endToCode.emplace(node, code);
        }
        if (depth == maxLen) continue;
        for (Port l = 0; l < g.degree(node); ++l) {
          const NodeId to = g.neighborAt(node, l);
          const int c2 = (code + o.labelAt(node, l)) % o.modulus;
          if (!seen[{to, c2}]) {
            seen[{to, c2}] = true;
            next.emplace_back(to, c2);
          }
        }
      }
      frontier = std::move(next);
    }
  }
  return true;
}

bool hasConsistentTranslation(const Orientation& o) {
  const Graph& g = *o.graph;
  for (NodeId p = 0; p < g.nodeCount(); ++p) {
    for (Port l = 0; l < g.degree(p); ++l) {
      const NodeId q = g.neighborAt(p, l);
      for (NodeId t = 0; t < g.nodeCount(); ++t) {
        const int codeAtP = chordalDistance(o.nameOf(p), o.nameOf(t),
                                            o.modulus);
        const int codeAtQ = chordalDistance(o.nameOf(q), o.nameOf(t),
                                            o.modulus);
        if (translateCode(o, p, l, codeAtP) != codeAtQ) return false;
      }
    }
  }
  return true;
}

}  // namespace ssno
