#include "orientation/chordal.hpp"

#include <algorithm>
#include <set>
#include <sstream>

#include "core/assert.hpp"

namespace ssno {

bool satisfiesSP1(const Orientation& o) {
  SSNO_EXPECTS(o.graph != nullptr);
  const int n = o.graph->nodeCount();
  if (static_cast<int>(o.name.size()) != n) return false;
  std::set<int> seen;
  for (int v : o.name) {
    if (v < 0 || v >= o.modulus) return false;
    if (!seen.insert(v).second) return false;
  }
  return true;
}

bool satisfiesSP2(const Orientation& o) {
  SSNO_EXPECTS(o.graph != nullptr);
  const Graph& g = *o.graph;
  if (o.label.size() != g.portSlotCount()) return false;
  for (NodeId p = 0; p < g.nodeCount(); ++p) {
    for (Port l = 0; l < g.degree(p); ++l) {
      const NodeId q = g.neighborAt(p, l);
      if (o.labelAt(p, l) !=
          chordalDistance(o.nameOf(p), o.nameOf(q), o.modulus))
        return false;
    }
  }
  return true;
}

bool satisfiesSpec(const Orientation& o) {
  return satisfiesSP1(o) && satisfiesSP2(o);
}

bool isLocallyOriented(const Orientation& o) {
  const Graph& g = *o.graph;
  for (NodeId p = 0; p < g.nodeCount(); ++p) {
    std::set<int> labels;
    for (Port l = 0; l < g.degree(p); ++l)
      if (!labels.insert(o.labelAt(p, l)).second) return false;
  }
  return true;
}

bool hasEdgeSymmetry(const Orientation& o) {
  const Graph& g = *o.graph;
  for (NodeId p = 0; p < g.nodeCount(); ++p) {
    for (Port l = 0; l < g.degree(p); ++l) {
      const NodeId q = g.neighborAt(p, l);
      const Port back = g.portOf(q, p);
      SSNO_ASSERT(back != kNoPort);
      if ((o.labelAt(p, l) + o.labelAt(q, back)) % o.modulus != 0)
        return false;
    }
  }
  return true;
}

bool isLocallySymmetric(const Orientation& o) {
  return isLocallyOriented(o) && hasEdgeSymmetry(o);
}

Orientation inducedChordalOrientation(const Graph& g, std::vector<int> names,
                                      int modulus) {
  SSNO_EXPECTS(static_cast<int>(names.size()) == g.nodeCount());
  Orientation o;
  o.graph = &g;
  o.modulus = modulus;
  o.name = std::move(names);
  o.label.assign(g.portSlotCount(), 0);
  for (NodeId p = 0; p < g.nodeCount(); ++p) {
    for (Port l = 0; l < g.degree(p); ++l) {
      const NodeId q = g.neighborAt(p, l);
      o.labelAt(p, l) = chordalDistance(o.nameOf(p), o.nameOf(q), modulus);
    }
  }
  return o;
}

NodeId psiSuccessor(const Orientation& o, NodeId p) {
  SSNO_EXPECTS(satisfiesSP1(o));
  const int want = (o.nameOf(p) + 1) % o.modulus;
  for (NodeId q = 0; q < o.graph->nodeCount(); ++q)
    if (o.nameOf(q) == want) return q;
  return kNoNode;  // name `want` unused (modulus > node count)
}

int deltaDistance(const Orientation& o, NodeId p, NodeId q) {
  return chordalDistance(o.nameOf(q), o.nameOf(p), o.modulus);
}

std::string renderOrientation(const Orientation& o) {
  std::ostringstream out;
  const Graph& g = *o.graph;
  for (NodeId p = 0; p < g.nodeCount(); ++p) {
    out << "node " << p << (p == g.root() ? " (root)" : "")
        << "  eta=" << o.nameOf(p) << "  labels:";
    for (Port l = 0; l < g.degree(p); ++l)
      out << "  ->" << g.neighborAt(p, l) << ':' << o.labelAt(p, l);
    out << '\n';
  }
  return out.str();
}

}  // namespace ssno
