// STNO — network orientation using a spanning tree protocol
// (the paper's Algorithm 4.1.2, Chapter 4).
//
// Layered on a rooted spanning tree (self-stabilizing BFS tree, or any
// fixed tree such as a DFS tree for the Chapter-5 ablation).  Subtree
// weights flow bottom-up; the root then hands out non-overlapping name
// intervals top-down; finally every node labels all incident edges (tree
// and non-tree) with the chordal distance of the endpoint names.
//
// Macros (paper, with port-order children):
//   CalcWeight_p = { Weight_p := 1 + Σ_{q∈D_p} Weight_q }
//   Distribute_p = { given := η_p;
//                    ∀q ∈ D_p: Start_p[q] := given + 1;
//                              given := given + Weight_q }
//   Edgelabel_p  = { ∀l ∈ E_{p,q}: π_p[l] := (η_p − η_q) mod N }
//
// Actions (collapsing the paper's role-split IN/IE/IW, RN/RE/RW,
// LN/LE/LW tables into three role-aware actions; roles are read from the
// tree substrate as in the paper):
//   NodeLabel(p): InvalidNodelabel(p) --> η_p := Start_{A_p}[p] (root: 0);
//                                         Distribute_p; Edgelabel_p
//   EdgeLabel(p): ¬InvalidNodelabel(p) ∧ InvalidEdgelabel(p)
//                                     --> Edgelabel_p
//   Weight(p)   : InvalidWeight(p)    --> CalcWeight_p  (leaf: := 1)
//
// Paper errata applied (see DESIGN.md):
//  1. InvalidNodelabel(p) additionally flags a Start_p array inconsistent
//     with Distribute's computation; without this, corrupt Start arrays
//     at correctly-named nodes are a stable SP1 violation.
//  2. InvalidWeight / InvalidEdgelabel use the intended Σ / ∃ forms.
//  3. Interval arithmetic is taken mod N so corrupt values stay in domain.
//
// The protocol is silent: the unique terminal configuration (for a fixed
// legitimate tree) has correct weights, the canonical preorder-interval
// names, and chordal edge labels — SP1 ∧ SP2 hold there (proved by the
// tests, mechanically model-checked on small instances).  Stabilizes in
// O(h) rounds after the tree does; works under an unfair daemon.
#ifndef SSNO_ORIENTATION_STNO_HPP
#define SSNO_ORIENTATION_STNO_HPP

#include <memory>
#include <string>
#include <vector>

#include "core/protocol.hpp"
#include "core/state_arena.hpp"
#include "orientation/chordal.hpp"
#include "sptree/bfs_tree.hpp"
#include "sptree/tree_view.hpp"

namespace ssno {

class Stno final : public Protocol {
 public:
  enum Action : int {
    kTreeFix = 0,   ///< substrate action (disabled in fixed-tree mode)
    kNodeLabel = 1,
    kEdgeLabel = 2,
    kWeight = 3,
  };
  static constexpr int kActionCount = 4;

  /// STNO over the self-stabilizing BFS spanning tree substrate.
  explicit Stno(Graph graph);

  /// STNO over a fixed spanning tree (parent[root] == kNoNode); used for
  /// the DFS-tree ablation and for model checking the orientation layer.
  Stno(Graph graph, std::vector<NodeId> fixedParents);

  // ---- Protocol interface ----
  [[nodiscard]] int actionCount() const override { return kActionCount; }
  [[nodiscard]] std::string actionName(int action) const override;
  [[nodiscard]] bool enabled(NodeId p, int action) const override;
  /// Columnar kernel: the tree bit via BfsTree's batch kernel, then one
  /// fused child walk per node shared by the Weight sum and the Start-
  /// row consistency check, and the SP2 row via the shared chordal-row
  /// scan — vs four virtual enabled() calls each re-walking children.
  void evaluateGuards(std::span<const NodeId> nodes,
                      std::uint64_t* masks) const override;
  [[nodiscard]] std::uint64_t localStateCount(NodeId p) const override;
  [[nodiscard]] std::uint64_t encodeNode(NodeId p) const override;
  [[nodiscard]] std::vector<int> rawNode(NodeId p) const override;
  [[nodiscard]] std::size_t rawNodeLength(NodeId p) const override {
    return (bfs_ ? bfs_->rawNodeLength(p) : 0) + 2 +
           2 * static_cast<std::size_t>(graph().degree(p));
  }
  [[nodiscard]] std::string dumpNode(NodeId p) const override;
  void collectArenas(std::vector<StateArena*>& out) override {
    if (bfs_) bfs_->collectArenas(out);
    out.push_back(&arena_);
  }

  // ---- Orientation API ----
  [[nodiscard]] int modulus() const { return graph().nodeCount(); }
  [[nodiscard]] int name(NodeId p) const { return eta_[p]; }
  [[nodiscard]] int weight(NodeId p) const { return weight_[p]; }
  [[nodiscard]] int startAt(NodeId p, Port l) const {
    return start_.at(p, l);
  }
  [[nodiscard]] int edgeLabel(NodeId p, Port l) const {
    return pi_.at(p, l);
  }
  [[nodiscard]] Orientation orientation() const;

  /// The tree the orientation layer currently reads.
  [[nodiscard]] const TreeView& tree() const { return *view_; }
  [[nodiscard]] bool usesFixedTree() const { return bfs_ == nullptr; }

  /// L_ST: substrate stabilized (always true in fixed-tree mode).
  [[nodiscard]] bool substrateLegitimate() const;

  /// L_NO: substrate legitimate and the orientation layer silent (the
  /// terminal configuration is unique and satisfies SP1 ∧ SP2).
  [[nodiscard]] bool isLegitimate() const;

  /// Per-node variable bits including the tree substrate.
  [[nodiscard]] double stateBits(NodeId p) const;
  /// Orientation layer only: Weight + η + Start (Δp) + π (Δp).
  [[nodiscard]] double orientationBits(NodeId p) const;
  /// Tree substrate only (the extra O(Δ·log N) of Chapter 5's comparison
  /// is the *children* knowledge; our BFS tree stores parent+dist).
  [[nodiscard]] double substrateBits(NodeId p) const;

 protected:
  // ---- Protocol mutation hooks ----
  void doExecute(NodeId p, int action) override;
  void doRandomizeNode(NodeId p, Rng& rng) override;
  void doDecodeNode(NodeId p, std::uint64_t code) override;
  void doSetRawNode(NodeId p, std::span<const int> values) override;

 private:
  /// Allocation-free child test used by the hot guard paths.
  [[nodiscard]] bool isChild(NodeId p, NodeId q) const;
  [[nodiscard]] int expectedWeight(NodeId p) const;
  /// Start_{A_p}[p]: the parent's Start entry for p (kNoPort-safe).
  [[nodiscard]] int startFromParent(NodeId p) const;
  [[nodiscard]] bool startInconsistent(NodeId p) const;
  [[nodiscard]] bool invalidNodeLabel(NodeId p) const;
  [[nodiscard]] bool invalidEdgeLabel(NodeId p) const;
  void applyDistribute(NodeId p);
  void applyEdgeLabels(NodeId p);

  std::unique_ptr<BfsTree> bfs_;        // null in fixed-tree mode
  std::unique_ptr<FixedTree> fixed_;    // null in substrate mode
  TreeView* view_ = nullptr;

  // SoA overlay columns (raw layout: substrate ++ {W, η, Start row, π row}).
  StateArena arena_;
  NodeColumn weight_;  // 1..N
  NodeColumn eta_;     // 0..N−1
  PortColumn start_;   // per port, 0..N−1
  PortColumn pi_;      // per port, 0..N−1
};

}  // namespace ssno

#endif  // SSNO_ORIENTATION_STNO_HPP
