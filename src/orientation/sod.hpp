// Sense of Direction (SoD) on top of the chordal orientation — the
// paper's Chapter-5 outlook:
//
//   "An important property of SoD is that it allows processors to refer
//    to the other processors by locally unique names, which are derived
//    from the shortest path between the processors and can be
//    translated from one processor to the other."
//
// Following the Flocchini-Mans-Santoro formalization the paper cites
// [14], a labeling λ has a sense of direction when there is a *coding
// function* c mapping the label sequence of any walk to a value that
// identifies the endpoint consistently: two walks from p reach the same
// node iff their codes are equal.  For the chordal labeling the coding
// function is simply the label sum mod N:
//
//     c(l_1 .. l_k) = (Σ l_i) mod N  =  (η_p − η_q) mod N
//
// because each hop contributes (η_u − η_v).  The *decoding* (translation)
// function shifts a code across one hop: what p calls x, its neighbor
// behind port l calls x ⊖ π_p[l]... precisely:
//     translate(code-at-p, hop label λ at q toward p) = code + λ
// so references can be handed along a path without global knowledge.
//
// This module implements the coding/decoding pair, walk-code evaluation,
// and checkers for the two defining consistency properties; the tests
// sweep them over arbitrary graphs, which is exactly the "self-
// stabilizing SoD" artifact the paper points to as future work: the
// protocols of Chapters 3/4 stabilize the labels, and these functions
// are then a correct SoD for free.
#ifndef SSNO_ORIENTATION_SOD_HPP
#define SSNO_ORIENTATION_SOD_HPP

#include <optional>
#include <vector>

#include "core/graph.hpp"
#include "orientation/chordal.hpp"

namespace ssno {

/// Code of a walk starting at `from`, given as a sequence of ports
/// (each port taken at the node the walk has reached).  Returns
/// std::nullopt if a port is out of range at some step.
/// For a chordal orientation the code equals (η_from − η_end) mod N.
[[nodiscard]] std::optional<int> walkCode(const Orientation& o, NodeId from,
                                          const std::vector<Port>& ports);

/// The node a walk reaches (for test oracles).
[[nodiscard]] std::optional<NodeId> walkEnd(const Graph& g, NodeId from,
                                            const std::vector<Port>& ports);

/// The name of the node a code refers to, from p's point of view:
/// code = (η_p − η_target) mod N  ⇒  η_target = (η_p − code) mod N.
[[nodiscard]] int nameFromCode(const Orientation& o, NodeId p, int code);

/// Translation across one hop: p refers to some target with `code`;
/// the neighbor q behind p's port l refers to the same target with the
/// returned code.  (q's code = (η_q − η_t) = code − π_p[l] seen from q's
/// side, i.e. code + π_q[l'] where l' is q's port back to p.)
[[nodiscard]] int translateCode(const Orientation& o, NodeId p, Port l,
                                int code);

/// Consistency property 1 (coding): for every pair of walks with the
/// same origin, codes agree iff endpoints agree.  Exhaustive over all
/// walks up to `maxLen` hops from every node (exponential — use small
/// maxLen / graphs).
[[nodiscard]] bool hasConsistentCoding(const Orientation& o, int maxLen);

/// Consistency property 2 (translation): for every edge (p,q) and every
/// target t, translating p's code for t across the edge yields q's code
/// for t.
[[nodiscard]] bool hasConsistentTranslation(const Orientation& o);

}  // namespace ssno

#endif  // SSNO_ORIENTATION_SOD_HPP
