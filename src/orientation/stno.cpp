#include "orientation/stno.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "core/assert.hpp"
#include "orientation/chordal_kernel.hpp"

namespace ssno {

Stno::Stno(Graph graph)
    : Protocol(graph),
      arena_(this->graph()),
      weight_(arena_.nodeColumn(1)),
      eta_(arena_.nodeColumn(0)),
      start_(arena_.portColumn(0)),
      pi_(arena_.portColumn(0)) {
  bfs_ = std::make_unique<BfsTree>(this->graph());
  view_ = bfs_.get();
}

Stno::Stno(Graph graph, std::vector<NodeId> fixedParents)
    : Protocol(graph),
      arena_(this->graph()),
      weight_(arena_.nodeColumn(1)),
      eta_(arena_.nodeColumn(0)),
      start_(arena_.portColumn(0)),
      pi_(arena_.portColumn(0)) {
  fixed_ = std::make_unique<FixedTree>(this->graph(), std::move(fixedParents));
  view_ = fixed_.get();
}

std::string Stno::actionName(int action) const {
  switch (action) {
    case kTreeFix:
      return "TreeFix";
    case kNodeLabel:
      return "NodeLabel";
    case kEdgeLabel:
      return "EdgeLabel";
    case kWeight:
      return "Weight";
    default:
      return "?";
  }
}

bool Stno::isChild(NodeId p, NodeId q) const {
  return q != graph().root() && view_->parentOf(q) == p;
}

int Stno::expectedWeight(NodeId p) const {
  int sum = 1;  // the node itself
  for (NodeId q : graph().neighbors(p))
    if (isChild(p, q)) sum += weight_[q];
  return std::min(sum, graph().nodeCount());
}

int Stno::startFromParent(NodeId p) const {
  const NodeId a = view_->parentOf(p);
  SSNO_EXPECTS(a != kNoNode);
  const Port l = graph().portOf(a, p);
  SSNO_ASSERT(l != kNoPort);
  return start_.at(a, l);
}

bool Stno::startInconsistent(NodeId p) const {
  // Erratum fix 1: validate p's own Start entries against Distribute's
  // computation from η_p and the children's Weight variables.
  int given = eta_[p];
  for (Port l = 0; l < graph().degree(p); ++l) {
    const NodeId q = graph().neighborAt(p, l);
    if (!isChild(p, q)) continue;
    const int expected = (given + 1) % modulus();
    if (start_.at(p, l) != expected) return true;
    given = (given + weight_[q]) % modulus();
  }
  return false;
}

bool Stno::invalidNodeLabel(NodeId p) const {
  if (p == graph().root()) return eta_[p] != 0 || startInconsistent(p);
  bool leaf = true;
  for (NodeId q : graph().neighbors(p)) {
    if (isChild(p, q)) {
      leaf = false;
      break;
    }
  }
  if (leaf) return eta_[p] != startFromParent(p);
  return eta_[p] != startFromParent(p) || startInconsistent(p);
}

bool Stno::invalidEdgeLabel(NodeId p) const {
  for (Port l = 0; l < graph().degree(p); ++l) {
    const NodeId q = graph().neighborAt(p, l);
    if (pi_.at(p, l) !=
        chordalDistance(eta_[p], eta_[q], modulus()))
      return true;
  }
  return false;
}

void Stno::evaluateGuards(std::span<const NodeId> nodes,
                          std::uint64_t* masks) const {
  if (bfs_) {
    // BfsTree::kFix and kTreeFix are both bit 0, so the substrate's
    // batch kernel writes the tree bit directly into our masks.
    bfs_->evaluateGuards(nodes, masks);
  } else {
    for (std::size_t i = 0; i < nodes.size(); ++i) masks[i] = 0;
  }
  const int n = modulus();
  const int* eta = eta_.data().data();
  const int* weight = weight_.data().data();
  const int* start = start_.data().data();
  const int* pi = pi_.data().data();
  const Graph& g = graph();
  const NodeId root = g.root();
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const NodeId p = nodes[i];
    const auto nbrs = g.neighbors(p);
    const std::size_t base = g.portBase(p);
    // One fused child walk: CalcWeight's Σ and the Start-row
    // consistency check (erratum fix 1) share the iteration.
    int given = eta[p];
    int sum = 1;  // the node itself
    bool startBad = false;
    for (std::size_t l = 0; l < nbrs.size(); ++l) {
      const NodeId q = nbrs[l];
      if (!isChild(p, q)) continue;
      if (!startBad) {
        if (start[base + l] != (given + 1) % n)
          startBad = true;
        else
          given = (given + weight[q]) % n;
      }
      sum += weight[q];
    }
    // For a leaf startBad is vacuously false, so the non-root leaf and
    // interior forms of InvalidNodelabel collapse into one expression.
    const bool invalidNode =
        p == root ? (eta[p] != 0 || startBad)
                  : (eta[p] != startFromParent(p) || startBad);
    std::uint64_t mask = masks[i] & 1;  // substrate TreeFix bit
    if (invalidNode) {
      mask |= std::uint64_t{1} << kNodeLabel;
    } else if (chordalRowMismatch(pi + base, nbrs.data(), eta, eta[p],
                                  static_cast<int>(nbrs.size()), n)) {
      mask |= std::uint64_t{1} << kEdgeLabel;
    }
    if (weight[p] != std::min(sum, g.nodeCount()))
      mask |= std::uint64_t{1} << kWeight;
    masks[i] = mask;
  }
}

bool Stno::enabled(NodeId p, int action) const {
  switch (action) {
    case kTreeFix:
      return bfs_ != nullptr && bfs_->enabled(p, BfsTree::kFix);
    case kNodeLabel:
      return invalidNodeLabel(p);
    case kEdgeLabel:
      return !invalidNodeLabel(p) && invalidEdgeLabel(p);
    case kWeight:
      return weight_[p] != expectedWeight(p);
    default:
      return false;
  }
}

void Stno::applyDistribute(NodeId p) {
  int given = eta_[p];
  for (Port l = 0; l < graph().degree(p); ++l) {
    const NodeId q = graph().neighborAt(p, l);
    if (!isChild(p, q)) continue;
    start_.at(p, l) = (given + 1) % modulus();
    given = (given + weight_[q]) % modulus();
  }
}

void Stno::applyEdgeLabels(NodeId p) {
  for (Port l = 0; l < graph().degree(p); ++l) {
    const NodeId q = graph().neighborAt(p, l);
    pi_.at(p, l) =
        chordalDistance(eta_[p], eta_[q], modulus());
  }
}

void Stno::doExecute(NodeId p, int action) {
  SSNO_EXPECTS(enabled(p, action));
  switch (action) {
    case kTreeFix:
      bfs_->execute(p, BfsTree::kFix);
      break;
    case kNodeLabel:
      eta_[p] = view_->roleOf(p) == TreeRole::kRoot
                         ? 0
                         : startFromParent(p);
      applyDistribute(p);   // no-op for leaves (no children)
      applyEdgeLabels(p);
      break;
    case kEdgeLabel:
      applyEdgeLabels(p);
      break;
    case kWeight:
      weight_[p] = expectedWeight(p);
      break;
    default:
      SSNO_ASSERT(false);
  }
}

void Stno::doRandomizeNode(NodeId p, Rng& rng) {
  if (bfs_ != nullptr) bfs_->randomizeNode(p, rng);
  weight_[p] = rng.between(1, graph().nodeCount());
  eta_[p] = rng.below(modulus());
  for (auto& v : start_.row(p)) v = rng.below(modulus());
  for (auto& v : pi_.row(p)) v = rng.below(modulus());
}

std::vector<int> Stno::rawNode(NodeId p) const {
  std::vector<int> out = bfs_ ? bfs_->rawNode(p) : std::vector<int>{};
  out.push_back(weight_[p]);
  out.push_back(eta_[p]);
  out.insert(out.end(), start_.row(p).begin(), start_.row(p).end());
  out.insert(out.end(), pi_.row(p).begin(), pi_.row(p).end());
  return out;
}

void Stno::doSetRawNode(NodeId p, std::span<const int> values) {
  const std::size_t subLen = bfs_ ? bfs_->rawNodeLength(p) : 0;
  const std::size_t deg = static_cast<std::size_t>(graph().degree(p));
  SSNO_EXPECTS(values.size() == subLen + 2 + 2 * deg);
  if (bfs_) bfs_->setRawNode(p, values.subspan(0, subLen));
  weight_[p] = values[subLen];
  eta_[p] = values[subLen + 1];
  for (std::size_t l = 0; l < deg; ++l) {
    start_.at(p, static_cast<Port>(l)) = values[subLen + 2 + l];
    pi_.at(p, static_cast<Port>(l)) = values[subLen + 2 + deg + l];
  }
}

std::uint64_t Stno::localStateCount(NodeId p) const {
  const std::uint64_t nn = static_cast<std::uint64_t>(modulus());
  std::uint64_t overlay = nn * nn;  // Weight, η
  for (Port l = 0; l < graph().degree(p); ++l) overlay *= nn * nn;  // Start, π
  const std::uint64_t base = bfs_ ? bfs_->localStateCount(p) : 1;
  return base * overlay;
}

std::uint64_t Stno::encodeNode(NodeId p) const {
  const std::uint64_t nn = static_cast<std::uint64_t>(modulus());
  std::uint64_t overlay = static_cast<std::uint64_t>(weight_[p] - 1);
  overlay = overlay * nn + static_cast<std::uint64_t>(eta_[p]);
  for (Port l = 0; l < graph().degree(p); ++l) {
    overlay = overlay * nn +
              static_cast<std::uint64_t>(
                  start_.at(p, l));
    overlay =
        overlay * nn +
        static_cast<std::uint64_t>(pi_.at(p, l));
  }
  const std::uint64_t base = bfs_ ? bfs_->localStateCount(p) : 1;
  const std::uint64_t sub = bfs_ ? bfs_->encodeNode(p) : 0;
  return sub + base * overlay;
}

void Stno::doDecodeNode(NodeId p, std::uint64_t code) {
  SSNO_EXPECTS(code < localStateCount(p));
  const std::uint64_t base = bfs_ ? bfs_->localStateCount(p) : 1;
  if (bfs_ != nullptr) bfs_->decodeNode(p, code % base);
  std::uint64_t overlay = code / base;
  const std::uint64_t nn = static_cast<std::uint64_t>(modulus());
  for (Port l = graph().degree(p) - 1; l >= 0; --l) {
    pi_.at(p, l) = static_cast<int>(overlay % nn);
    overlay /= nn;
    start_.at(p, l) =
        static_cast<int>(overlay % nn);
    overlay /= nn;
  }
  eta_[p] = static_cast<int>(overlay % nn);
  overlay /= nn;
  weight_[p] = static_cast<int>(overlay) + 1;
}

std::string Stno::dumpNode(NodeId p) const {
  std::ostringstream out;
  if (bfs_ != nullptr) out << bfs_->dumpNode(p) << ' ';
  out << "W=" << weight_[p] << " eta=" << eta_[p] << " start=[";
  for (Port l = 0; l < graph().degree(p); ++l) {
    if (l) out << ' ';
    out << start_.at(p, l);
  }
  out << "] pi=[";
  for (Port l = 0; l < graph().degree(p); ++l) {
    if (l) out << ' ';
    out << pi_.at(p, l);
  }
  out << ']';
  return out.str();
}

Orientation Stno::orientation() const {
  Orientation o;
  o.graph = &graph();
  o.modulus = modulus();
  o.name = eta_.data();
  o.label = pi_.data();
  return o;
}

bool Stno::substrateLegitimate() const {
  return bfs_ == nullptr || bfs_->isLegitimate();
}

bool Stno::isLegitimate() const {
  if (!substrateLegitimate()) return false;
  for (NodeId p = 0; p < graph().nodeCount(); ++p)
    for (int a = kNodeLabel; a <= kWeight; ++a)
      if (enabled(p, a)) return false;
  return true;
}

double Stno::stateBits(NodeId p) const {
  return substrateBits(p) + orientationBits(p);
}

double Stno::orientationBits(NodeId p) const {
  const double logN = std::log2(static_cast<double>(modulus()));
  // Weight + η + Δp Start entries + Δp π entries.
  return (2.0 + 2.0 * graph().degree(p)) * logN;
}

double Stno::substrateBits(NodeId p) const {
  return bfs_ ? bfs_->stateBits(p) : 0.0;
}

}  // namespace ssno
