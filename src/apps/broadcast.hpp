// Broadcast / traversal with and without a sense of direction
// (paper §1.4: Santoro [21] showed an orientation decreases message
// complexity; Chapter 5: SoD lets processors refer to others by locally
// unique names).
//
// With a chordal orientation a traversal token can carry the set of
// *names* already visited; a processor can tell which neighbors are new
// by deriving their names from its edge labels, so the token walks a DFS
// tree using exactly 2(n−1) messages.  Without an orientation the
// traversal must probe every incident edge: 2m messages (m = |E|).
// The gap 2m vs 2(n−1) is the quantitative version of the paper's
// motivation, reproduced by bench_routing.
#ifndef SSNO_APPS_BROADCAST_HPP
#define SSNO_APPS_BROADCAST_HPP

#include <vector>

#include "core/graph.hpp"
#include "orientation/chordal.hpp"

namespace ssno {

struct TraversalResult {
  int messages = 0;
  std::vector<NodeId> visitOrder;  ///< first-visit order, starts at source
  [[nodiscard]] bool coveredAll(const Graph& g) const {
    return static_cast<int>(visitOrder.size()) == g.nodeCount();
  }
};

/// Token traversal exploiting the orientation: the token carries visited
/// *names*; each processor forwards it to its first (port-order) neighbor
/// whose derived name is unvisited, else returns it to the sender.
/// Message count: one per token transfer — exactly 2(n−1).
[[nodiscard]] TraversalResult traverseWithOrientation(const Orientation& o,
                                                      NodeId source);

/// Baseline token traversal without orientation: neighbors cannot be
/// recognized, so the token must be offered over every incident edge and
/// bounced back from already-visited processors: 2m messages.
[[nodiscard]] TraversalResult traverseWithoutOrientation(const Graph& g,
                                                         NodeId source);

}  // namespace ssno

#endif  // SSNO_APPS_BROADCAST_HPP
