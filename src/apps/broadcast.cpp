#include "apps/broadcast.hpp"

#include <set>

#include "core/assert.hpp"
#include "core/bitwords.hpp"
#include "apps/routing.hpp"

namespace ssno {

TraversalResult traverseWithOrientation(const Orientation& o, NodeId source) {
  const Graph& g = *o.graph;
  TraversalResult res;
  std::set<int> visitedNames{o.nameOf(source)};
  res.visitOrder.push_back(source);

  // Explicit DFS; the token only crosses an edge when the far side's
  // *name* (derived from the edge label) is known to be unvisited, so it
  // walks exactly the DFS tree: 2(n−1) messages.
  std::vector<NodeId> stack{source};
  while (!stack.empty()) {
    const NodeId p = stack.back();
    Port nextPort = kNoPort;
    for (Port l = 0; l < g.degree(p); ++l) {
      if (!visitedNames.contains(neighborNameViaLabel(o, p, l))) {
        nextPort = l;
        break;
      }
    }
    if (nextPort == kNoPort) {
      stack.pop_back();
      if (!stack.empty()) ++res.messages;  // token returns to parent
      continue;
    }
    const NodeId q = g.neighborAt(p, nextPort);
    ++res.messages;  // token moves to a fresh processor
    visitedNames.insert(o.nameOf(q));
    res.visitOrder.push_back(q);
    stack.push_back(q);
  }
  return res;
}

TraversalResult traverseWithoutOrientation(const Graph& g, NodeId source) {
  // Classic depth-first token traversal in an unoriented network (cf.
  // Tel, "Introduction to Distributed Algorithms"): neighbors cannot be
  // recognized, so the token is sent over every incident edge; already-
  // visited receivers bounce it back and both sides mark the port as
  // used.  Every edge is crossed exactly twice: 2m messages.
  TraversalResult res;
  std::vector<bool> visited(static_cast<std::size_t>(g.nodeCount()), false);
  // Used ports as one flat bitset over the CSR port slots (SoA): no
  // per-node allocations, and the "first unused port" scan is word-level.
  bits::WordBitset usedPort(g.portSlotCount());

  auto markEdge = [&g, &usedPort](NodeId a, Port fromA) {
    usedPort.set(g.portBase(a) + static_cast<std::size_t>(fromA));
    const NodeId b = g.neighborAt(a, fromA);
    const Port back = g.portOf(b, a);
    usedPort.set(g.portBase(b) + static_cast<std::size_t>(back));
  };

  visited[static_cast<std::size_t>(source)] = true;
  res.visitOrder.push_back(source);
  std::vector<NodeId> stack{source};
  while (!stack.empty()) {
    const NodeId p = stack.back();
    Port nextPort = kNoPort;
    for (Port l = 0; l < g.degree(p); ++l) {
      if (!usedPort.test(g.portBase(p) + static_cast<std::size_t>(l))) {
        nextPort = l;
        break;
      }
    }
    if (nextPort == kNoPort) {
      // All incident edges used: hand the token back to the parent.
      stack.pop_back();
      if (!stack.empty()) ++res.messages;
      continue;
    }
    const NodeId q = g.neighborAt(p, nextPort);
    markEdge(p, nextPort);
    ++res.messages;  // token offered over the edge
    if (visited[static_cast<std::size_t>(q)]) {
      ++res.messages;  // bounced straight back
      continue;
    }
    visited[static_cast<std::size_t>(q)] = true;
    res.visitOrder.push_back(q);
    stack.push_back(q);
  }
  return res;
}

}  // namespace ssno
