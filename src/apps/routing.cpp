#include "apps/routing.hpp"

#include <algorithm>
#include <deque>

#include "core/assert.hpp"
#include "core/bitwords.hpp"
#include "core/graph_algo.hpp"

namespace ssno {

int neighborNameViaLabel(const Orientation& o, NodeId p, Port l) {
  // π_p[l] = (η_p − η_q) mod N  ⇒  η_q = (η_p − π_p[l]) mod N.
  return chordalDistance(o.nameOf(p), o.labelAt(p, l), o.modulus);
}

RouteResult routeGreedyChordal(const Orientation& o, NodeId src,
                               int targetName) {
  return routeGreedyWithDetours(o, src, targetName, 0);
}

RouteResult routeGreedyWithDetours(const Orientation& o, NodeId src,
                                   int targetName, int maxDetours) {
  const Graph& g = *o.graph;
  RouteResult r;
  r.path.push_back(src);
  NodeId cur = src;
  int detoursLeft = maxDetours;
  // Nodes already used for a non-improving hop (flat bitset: the route
  // loop runs O(n²) times in evaluateRouting, so no tree allocations).
  bits::WordBitset detoured(static_cast<std::size_t>(g.nodeCount()));
  while (o.nameOf(cur) != targetName) {
    const int here = chordalDistance(targetName, o.nameOf(cur), o.modulus);
    // Cyclic distance still to cover; pick the port minimizing it.
    Port bestPort = kNoPort;
    int bestDist = here;
    for (Port l = 0; l < g.degree(cur); ++l) {
      const int nbName = neighborNameViaLabel(o, cur, l);
      const int d = chordalDistance(targetName, nbName, o.modulus);
      if (d < bestDist) {
        bestDist = d;
        bestPort = l;
      }
    }
    if (bestPort == kNoPort) {
      // Greedy dead end: optionally spend a detour on the smallest-label
      // port (deterministic), at most once per node.
      if (detoursLeft <= 0 || detoured.test(static_cast<std::size_t>(cur))) return r;
      detoured.set(static_cast<std::size_t>(cur));
      --detoursLeft;
      int bestLabel = o.modulus;
      for (Port l = 0; l < g.degree(cur); ++l) {
        if (o.labelAt(cur, l) < bestLabel) {
          bestLabel = o.labelAt(cur, l);
          bestPort = l;
        }
      }
    }
    cur = g.neighborAt(cur, bestPort);
    r.path.push_back(cur);
    ++r.hops;
  }
  r.delivered = true;
  return r;
}

int floodMessages(const Graph& g, NodeId src) {
  // Synchronous flood: a processor that receives the query for the first
  // time forwards it on every other port; an anonymous, unoriented
  // network cannot tell which neighbors were already reached, so every
  // forward is a real message.  src sends on all ports.
  std::vector<int> dist = bfsDistances(g, src);
  int messages = g.degree(src);
  for (NodeId p = 0; p < g.nodeCount(); ++p) {
    if (p == src || dist[static_cast<std::size_t>(p)] < 0) continue;
    messages += g.degree(p) - 1;  // forwards to all but the receive port
  }
  return messages;
}

RoutingStats evaluateRouting(const Orientation& o, int maxDetours) {
  const Graph& g = *o.graph;
  RoutingStats st;
  double stretchSum = 0, hopsSum = 0;
  for (NodeId s = 0; s < g.nodeCount(); ++s) {
    const std::vector<int> dist = bfsDistances(g, s);
    for (NodeId t = 0; t < g.nodeCount(); ++t) {
      if (s == t) continue;
      ++st.pairs;
      const RouteResult r =
          routeGreedyWithDetours(o, s, o.nameOf(t), maxDetours);
      if (!r.delivered) continue;
      ++st.delivered;
      const int sp = dist[static_cast<std::size_t>(t)];
      SSNO_ASSERT(sp > 0);
      const double stretch = static_cast<double>(r.hops) / sp;
      stretchSum += stretch;
      hopsSum += r.hops;
      st.maxStretch = std::max(st.maxStretch, stretch);
    }
  }
  if (st.delivered > 0) {
    st.meanStretch = stretchSum / st.delivered;
    st.meanHops = hopsSum / st.delivered;
  }
  return st;
}

}  // namespace ssno
