// Chordal-sense-of-direction routing (paper §1.3/§1.4 motivation:
// Santoro [21] — an orientation decreases the message complexity of
// important computations; edge labels "can be used in many applications,
// such as routing and traversal").
//
// With a chordal orientation every processor knows, for each incident
// port l, the *name* of the neighbor behind it: η_q = (η_p − π_p[l]) mod
// N.  Greedy chordal routing repeatedly forwards to the neighbor whose
// name is cyclically closest to the destination name, strictly
// decreasing the remaining chordal distance.  On rings with canonical
// names this is exactly shortest-path routing; on arbitrary graphs it is
// a heuristic whose success/stretch the benches measure against true
// shortest paths.
#ifndef SSNO_APPS_ROUTING_HPP
#define SSNO_APPS_ROUTING_HPP

#include <optional>
#include <vector>

#include "core/graph.hpp"
#include "orientation/chordal.hpp"

namespace ssno {

struct RouteResult {
  bool delivered = false;
  std::vector<NodeId> path;  ///< src..dst inclusive when delivered
  int hops = 0;

  /// Messages used: one per hop.
  [[nodiscard]] int messages() const { return hops; }
};

/// The name of the neighbor behind port l, derived purely from local
/// knowledge (η_p and π_p[l]).
[[nodiscard]] int neighborNameViaLabel(const Orientation& o, NodeId p, Port l);

/// Greedy chordal routing from `src` to the node *named* `targetName`.
/// Forwards along the port minimizing the cyclic distance to the target,
/// but only while that distance strictly decreases (guaranteeing
/// termination without a TTL).
[[nodiscard]] RouteResult routeGreedyChordal(const Orientation& o, NodeId src,
                                             int targetName);

/// Same, but with a deterministic tie-breaking "detour" allowance: up to
/// `maxDetours` non-improving hops (smallest-label port not yet used from
/// that node) are permitted, which rescues greedy dead ends on sparse
/// graphs.  Still terminates: at most maxDetours non-improving hops.
[[nodiscard]] RouteResult routeGreedyWithDetours(const Orientation& o,
                                                 NodeId src, int targetName,
                                                 int maxDetours);

/// Baseline: messages needed to reach `dst` by flooding in a network
/// WITHOUT an orientation (every processor forwards the query on every
/// other port; duplicate deliveries are counted, as an anonymous network
/// cannot suppress them locally).  Returns total messages sent until the
/// flood has fully propagated.
[[nodiscard]] int floodMessages(const Graph& g, NodeId src);

/// Aggregate routing quality over all (src, dst) pairs.
struct RoutingStats {
  int pairs = 0;
  int delivered = 0;
  double meanStretch = 0;  ///< hops / shortest-path, over delivered pairs
  double maxStretch = 0;
  double meanHops = 0;
};

[[nodiscard]] RoutingStats evaluateRouting(const Orientation& o,
                                           int maxDetours);

}  // namespace ssno

#endif  // SSNO_APPS_ROUTING_HPP
