// Tests for the self-stabilizing lexicographic DFS spanning tree:
// silent fixpoint = port-order DFS tree, convergence from arbitrary
// states (exhaustively on small graphs), and the end-to-end pipeline
// STNO-over-LexDfsTree ≡ DFTNO with both layers self-stabilizing.
#include "sptree/lex_dfs_tree.hpp"

#include <gtest/gtest.h>

#include "core/checker.hpp"
#include "core/daemon.hpp"
#include "core/graph.hpp"
#include "core/graph_algo.hpp"
#include "core/scheduler.hpp"
#include "orientation/dftno.hpp"
#include "orientation/stno.hpp"
#include "sptree/dfs_tree.hpp"

namespace ssno {
namespace {

std::vector<NodeId> stabilizedParents(const Graph& g, std::uint64_t seed) {
  LexDfsTree tree(g);
  Rng rng(seed);
  tree.randomize(rng);
  RoundRobinDaemon daemon;
  Simulator sim(tree, daemon, rng);
  const RunStats stats = sim.runToQuiescence(10'000'000);
  EXPECT_TRUE(stats.terminal);
  EXPECT_TRUE(tree.isLegitimate());
  std::vector<NodeId> parents(static_cast<std::size_t>(g.nodeCount()));
  for (NodeId p = 0; p < g.nodeCount(); ++p)
    parents[static_cast<std::size_t>(p)] = tree.parentOf(p);
  return parents;
}

TEST(LexDfsTree, SilentFixpointIsPortOrderDfsTree) {
  Rng topo(1);
  for (const Graph& g :
       {Graph::ring(6), Graph::figure311(), Graph::figure221(),
        Graph::grid(3, 3), Graph::complete(5), Graph::lollipop(4, 3),
        Graph::randomConnected(10, 0.3, topo),
        Graph::randomConnected(12, 0.2, topo)}) {
    const auto parents = stabilizedParents(g, 7);
    EXPECT_EQ(parents, portOrderDfsTree(g)) << "n=" << g.nodeCount();
    EXPECT_TRUE(isSpanningTree(g, parents));
  }
}

TEST(LexDfsTree, WordsAreTreePathPorts) {
  const Graph g = Graph::figure311();
  LexDfsTree tree(g);
  Rng rng(2);
  tree.randomize(rng);
  RoundRobinDaemon daemon;
  Simulator sim(tree, daemon, rng);
  (void)sim.runToQuiescence(1'000'000);
  // Node c (=3) is reached root -(port0)-> b -(port1)-> d -(port1)-> c.
  const auto& w = tree.word(3);
  ASSERT_TRUE(w.has_value());
  EXPECT_EQ(*w, (std::vector<Port>{0, 1, 1}));
  EXPECT_EQ(tree.word(0), std::vector<Port>{});  // root: ε
}

TEST(LexDfsTree, ConvergesUnderEveryDaemon) {
  Rng topo(3);
  const Graph g = Graph::randomConnected(9, 0.3, topo);
  for (DaemonKind kind :
       {DaemonKind::kCentral, DaemonKind::kDistributed,
        DaemonKind::kSynchronous, DaemonKind::kRoundRobin,
        DaemonKind::kAdversarial}) {
    LexDfsTree tree(g);
    Rng rng(4);
    for (int trial = 0; trial < 10; ++trial) {
      tree.randomize(rng);
      auto daemon = makeDaemon(kind);
      Simulator sim(tree, *daemon, rng);
      const RunStats stats = sim.runToQuiescence(10'000'000);
      EXPECT_TRUE(stats.terminal) << daemon->name();
      EXPECT_TRUE(tree.isLegitimate());
    }
  }
}

TEST(LexDfsTreeExhaustive, StrictConvergenceOnSmallGraphs) {
  for (auto g : {Graph::path(3), Graph::ring(3), Graph::path(4),
                 Graph::star(4),
                 Graph(4, {{0, 1}, {1, 2}, {2, 0}, {2, 3}})}) {
    LexDfsTree tree(g);
    ModelChecker mc(tree, [&tree] { return tree.isLegitimate(); });
    const CheckResult res = mc.verifyFullSpace(1u << 24, Fairness::kNone);
    EXPECT_TRUE(res.ok) << "n=" << g.nodeCount() << ": " << res.failure;
  }
}

TEST(LexDfsTree, CodecRoundTrips) {
  const Graph g = Graph::figure311();
  LexDfsTree tree(g);
  for (NodeId p = 0; p < g.nodeCount(); ++p) {
    for (std::uint64_t c = 0; c < tree.localStateCount(p); ++c) {
      tree.decodeNode(p, c);
      EXPECT_EQ(tree.encodeNode(p), c) << "node " << p << " code " << c;
    }
  }
}

TEST(LexDfsTree, RawRoundTrips) {
  const Graph g = Graph::grid(2, 3);
  LexDfsTree a(g), b(g);
  Rng rng(5);
  for (int t = 0; t < 50; ++t) {
    a.randomize(rng);
    b.setRawConfiguration(a.rawConfiguration());
    EXPECT_EQ(b.rawConfiguration(), a.rawConfiguration());
  }
}

TEST(LexDfsTree, EndToEndStnoOverLexTreeMatchesDftno) {
  // The Chapter-5 observation with BOTH layers self-stabilizing:
  // stabilize the lex DFS tree from an arbitrary state, extract it, run
  // STNO over it, and compare with DFTNO's orientation.
  Rng topo(6);
  for (const Graph& g : {Graph::grid(3, 3), Graph::figure221(),
                         Graph::randomConnected(10, 0.3, topo)}) {
    const auto parents = stabilizedParents(g, 8);
    Stno stno(g, parents);
    Rng rng(9);
    stno.randomize(rng);
    AdversarialDaemon daemon;
    Simulator sim(stno, daemon, rng);
    ASSERT_TRUE(sim.runToQuiescence(20'000'000).terminal);

    Dftno dftno(g);
    Rng rng2(10);
    dftno.randomize(rng2);
    RoundRobinDaemon d2;
    Simulator sim2(dftno, d2, rng2);
    ASSERT_TRUE(
        sim2.runUntil([&dftno] { return dftno.isLegitimate(); }, 40'000'000)
            .converged);
    EXPECT_EQ(stno.orientation().name, dftno.orientation().name);
    EXPECT_EQ(stno.orientation().label, dftno.orientation().label);
  }
}

TEST(LexDfsTree, SpaceIsLinearInN) {
  // The DFS-tree substrate costs Θ(n·log Δ) bits — the classic price
  // that makes the paper's token-based DFTNO (O(log n) substrate) the
  // cheaper route to DFS naming (compare bench_space).
  const Graph small = Graph::ring(8);
  const Graph big = Graph::ring(32);
  LexDfsTree a(small), b(big);
  EXPECT_GT(b.stateBits(1), 3.0 * a.stateBits(1));
}

}  // namespace
}  // namespace ssno
