// Equivalence suite for the incremental enabled-move cache: every
// protocol × {central, distributed, fair} daemon × several topologies,
// run twice from the same seed — once with the incremental EnabledCache
// (the default) and once with a forced naive full rescan — must produce
// bit-identical move sequences, step/round counts, and final raw
// configurations.  Because daemons draw from the RNG based on the
// enabled set they are handed, any discrepancy in the incremental set
// (content OR order) diverges the runs immediately; fault injection
// mid-run additionally exercises the dirty paths of randomizeNode and
// decodeNode.
#include "core/enabled_cache.hpp"

#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "core/daemon.hpp"
#include "core/fault.hpp"
#include "core/graph.hpp"
#include "core/scheduler.hpp"
#include "dftc/dftc.hpp"
#include "orientation/baseline.hpp"
#include "orientation/dftno.hpp"
#include "orientation/stno.hpp"
#include "sptree/bfs_tree.hpp"
#include "sptree/dfs_tree.hpp"
#include "sptree/lex_dfs_tree.hpp"

namespace ssno {
namespace {

struct ProtocolCase {
  std::string name;
  std::function<std::unique_ptr<Protocol>(const Graph&)> make;
};

std::vector<ProtocolCase> protocolCases() {
  return {
      {"dftc", [](const Graph& g) { return std::make_unique<Dftc>(g); }},
      {"bfs-tree",
       [](const Graph& g) { return std::make_unique<BfsTree>(g); }},
      {"lex-dfs-tree",
       [](const Graph& g) { return std::make_unique<LexDfsTree>(g); }},
      {"dftno", [](const Graph& g) { return std::make_unique<Dftno>(g); }},
      {"stno", [](const Graph& g) { return std::make_unique<Stno>(g); }},
      {"stno-fixed-tree",
       [](const Graph& g) {
         return std::make_unique<Stno>(g, portOrderDfsTree(g));
       }},
      {"baseline",
       [](const Graph& g) {
         return std::make_unique<InitBasedOrientation>(g);
       }},
  };
}

struct TopologyCase {
  std::string name;
  Graph g;
};

std::vector<TopologyCase> topologyCases() {
  Rng topo(0xCA5E);
  std::vector<TopologyCase> out;
  out.push_back({"ring(9)", Graph::ring(9)});
  out.push_back({"grid(3x4)", Graph::grid(3, 4)});
  out.push_back({"complete(6)", Graph::complete(6)});
  out.push_back({"star(8)", Graph::star(8)});
  out.push_back({"random(10)", Graph::randomConnected(10, 0.3, topo)});
  return out;
}

struct RunLog {
  std::vector<Move> moves;
  RunStats phase1;
  RunStats phase2;
  std::vector<int> finalConfig;
};

enum class SimMode {
  kBitmask,       // incremental cache + EnabledView selection (default)
  kLegacyVector,  // incremental cache + materialized-vector selection
  kNaive,         // full rescan + materialized-vector selection
};

/// One deterministic scenario: scramble, run, inject 2 faults, run again.
RunLog runLogged(Protocol& protocol, Daemon& daemon, SimMode mode,
                 std::uint64_t seed, StepCount budget) {
  Rng rng(seed);
  protocol.randomize(rng);
  Simulator sim(protocol, daemon, rng);
  if (mode == SimMode::kNaive) sim.setNaiveEnabledScan(true);
  if (mode == SimMode::kLegacyVector) sim.setLegacyVectorSelect(true);
  RunLog log;
  sim.setMoveObserver([&log](const Move& m) { log.moves.push_back(m); });
  log.phase1 = sim.runToQuiescence(budget);
  FaultInjector(protocol).corruptK(2, rng);
  log.phase2 = sim.runToQuiescence(budget);
  log.finalConfig = protocol.rawConfiguration();
  return log;
}

class EnabledCacheEquivalence
    : public ::testing::TestWithParam<DaemonKind> {};

TEST_P(EnabledCacheEquivalence, BitmaskMatchesLegacyVectorAndNaiveRescan) {
  const DaemonKind daemonKind = GetParam();
  constexpr StepCount kBudget = 1'500;  // non-silent protocols never stop
  for (const TopologyCase& topo : topologyCases()) {
    for (const ProtocolCase& proto : protocolCases()) {
      SCOPED_TRACE(proto.name + " × " + daemonKindName(daemonKind) + " × " +
                   topo.name);
      const std::uint64_t seed = 0xD1147 + topo.g.nodeCount();

      auto bitmaskProto = proto.make(topo.g);
      auto bitmaskDaemon = makeDaemon(daemonKind);
      const RunLog bitmask = runLogged(*bitmaskProto, *bitmaskDaemon,
                                       SimMode::kBitmask, seed, kBudget);

      auto legacyProto = proto.make(topo.g);
      auto legacyDaemon = makeDaemon(daemonKind);
      const RunLog legacy = runLogged(*legacyProto, *legacyDaemon,
                                      SimMode::kLegacyVector, seed, kBudget);

      auto rescanned = proto.make(topo.g);
      auto naiveDaemon = makeDaemon(daemonKind);
      const RunLog naive =
          runLogged(*rescanned, *naiveDaemon, SimMode::kNaive, seed, kBudget);

      // Bitmask selection over the EnabledView ≡ legacy selection over
      // the materialized vector (same incremental cache)...
      EXPECT_EQ(bitmask.moves, legacy.moves);
      EXPECT_EQ(bitmask.finalConfig, legacy.finalConfig);
      // ...≡ the naive full-rescan pipeline, move for move.
      EXPECT_EQ(bitmask.moves, naive.moves);
      EXPECT_EQ(bitmask.phase1.moves, naive.phase1.moves);
      EXPECT_EQ(bitmask.phase1.steps, naive.phase1.steps);
      EXPECT_EQ(bitmask.phase1.rounds, naive.phase1.rounds);
      EXPECT_EQ(bitmask.phase1.terminal, naive.phase1.terminal);
      EXPECT_EQ(bitmask.phase2.moves, naive.phase2.moves);
      EXPECT_EQ(bitmask.phase2.rounds, naive.phase2.rounds);
      EXPECT_EQ(bitmask.finalConfig, naive.finalConfig);
      EXPECT_EQ(legacy.phase1.rounds, naive.phase1.rounds);
      EXPECT_EQ(legacy.phase2.rounds, naive.phase2.rounds);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Daemons, EnabledCacheEquivalence,
                         ::testing::Values(DaemonKind::kCentral,
                                           DaemonKind::kDistributed,
                                           DaemonKind::kRoundRobin,
                                           DaemonKind::kAdversarial),
                         [](const auto& info) {
                           std::string name = daemonKindName(info.param);
                           for (char& c : name)
                             if (c == '-') c = '_';
                           return name;
                         });

// The synchronous daemon drives executeSimultaneously (the neighborhood-
// limited snapshot/restore path); cover it against the naive rescan too.
TEST(EnabledCacheEquivalence, SynchronousSimultaneousStepsMatch) {
  for (const TopologyCase& topo : topologyCases()) {
    for (const ProtocolCase& proto : protocolCases()) {
      SCOPED_TRACE(proto.name + " × synchronous × " + topo.name);
      auto incremental = proto.make(topo.g);
      SynchronousDaemon d1;
      const RunLog inc =
          runLogged(*incremental, d1, SimMode::kBitmask, 0xAB, 1'500);
      auto legacyProto = proto.make(topo.g);
      SynchronousDaemon d2;
      const RunLog legacy =
          runLogged(*legacyProto, d2, SimMode::kLegacyVector, 0xAB, 1'500);
      auto rescanned = proto.make(topo.g);
      SynchronousDaemon d3;
      const RunLog naive =
          runLogged(*rescanned, d3, SimMode::kNaive, 0xAB, 1'500);
      EXPECT_EQ(inc.moves, legacy.moves);
      EXPECT_EQ(inc.moves, naive.moves);
      EXPECT_EQ(inc.finalConfig, naive.finalConfig);
      EXPECT_EQ(inc.phase2.rounds, naive.phase2.rounds);
    }
  }
}

// Direct unit coverage of the EnabledView: counts, membership, k-th
// selection (the central daemon's Fenwick descend), and the cyclic
// successor (the round-robin draw) against the materialized vector, on
// hundreds of randomized DFTNO configurations.
TEST(EnabledView, CountsMembershipKthAndCyclicSuccessorMatchVector) {
  Rng topoRng(0x71E4);
  const Graph g = Graph::randomConnected(40, 0.15, topoRng);
  Dftno proto(g);
  Rng rng(0xFEED);
  proto.randomize(rng);
  EnabledCache cache(proto);
  for (int step = 0; step < 300; ++step) {
    const EnabledView& view = cache.refreshView();
    std::vector<Move> vec;
    view.appendMoves(vec);
    ASSERT_EQ(static_cast<int>(vec.size()), view.moveCount());
    std::set<NodeId> nodes;
    for (const Move& m : vec) nodes.insert(m.node);
    EXPECT_EQ(static_cast<int>(nodes.size()), view.enabledNodeCount());
    for (NodeId p = 0; p < g.nodeCount(); ++p)
      EXPECT_EQ(view.anyEnabled(p), nodes.contains(p));
    for (std::size_t k = 0; k < vec.size(); ++k)
      EXPECT_EQ(view.kthMove(static_cast<int>(k)), vec[k]) << "k=" << k;
    // Cyclic successor from every vector position, plus the sentinel.
    EXPECT_EQ(view.nextPairAfter(Move{-1, 1 << 20}), vec.front());
    for (std::size_t i = 0; i < vec.size(); ++i)
      EXPECT_EQ(view.nextPairAfter(vec[i]), vec[(i + 1) % vec.size()]);
    if (vec.empty()) break;
    proto.execute(vec.front().node, vec.front().action);
  }
}

// Direct cache unit test: after a single move, only the dirty region is
// re-evaluated, yet the refreshed set equals a fresh full scan.
TEST(EnabledCache, RefreshTracksSingleMoves) {
  const Graph g = Graph::ring(16);
  Dftc dftc(g);
  dftc.resetClean();
  EnabledCache cache(dftc);
  for (int step = 0; step < 200; ++step) {
    const std::vector<Move>& cached = cache.refresh();
    EXPECT_EQ(cached, dftc.enabledMoves());
    ASSERT_FALSE(cached.empty());  // the token never stops
    dftc.execute(cached.front().node, cached.front().action);
  }
}

TEST(EnabledCache, PicksUpExternalWrites) {
  const Graph g = Graph::grid(3, 3);
  Stno stno(g);
  Rng rng(7);
  stno.randomize(rng);
  EnabledCache cache(stno);
  (void)cache.refresh();
  // External single-node writes (fault injection style) must dirty their
  // neighborhood and be reflected by the next refresh.
  for (NodeId p = 0; p < g.nodeCount(); ++p) {
    stno.randomizeNode(p, rng);
    EXPECT_EQ(cache.refresh(), stno.enabledMoves());
  }
  // Whole-configuration restore marks everything dirty.
  const std::vector<int> snapshot = stno.rawConfiguration();
  stno.randomize(rng);
  (void)cache.refresh();
  stno.setRawConfiguration(snapshot);
  EXPECT_EQ(cache.refresh(), stno.enabledMoves());
}

}  // namespace
}  // namespace ssno
