// Unit tests for the centralized verification algorithms.
#include "core/graph_algo.hpp"

#include <gtest/gtest.h>

#include "core/graph.hpp"

namespace ssno {
namespace {

TEST(BfsDistances, Path) {
  const Graph g = Graph::path(5);
  const auto d = bfsDistances(g, 0);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(d[static_cast<std::size_t>(i)], i);
}

TEST(BfsDistances, Ring) {
  const Graph g = Graph::ring(6);
  const auto d = bfsDistances(g, 0);
  EXPECT_EQ(d[3], 3);
  EXPECT_EQ(d[5], 1);
}

TEST(Eccentricity, Star) {
  const Graph g = Graph::star(7);
  EXPECT_EQ(eccentricity(g, 0), 1);
  EXPECT_EQ(eccentricity(g, 1), 2);
}

TEST(Diameter, KnownValues) {
  EXPECT_EQ(diameter(Graph::path(6)), 5);
  EXPECT_EQ(diameter(Graph::ring(8)), 4);
  EXPECT_EQ(diameter(Graph::complete(5)), 1);
  EXPECT_EQ(diameter(Graph::hypercube(4)), 4);
}

TEST(ShortestPath, EndpointsAndLength) {
  const Graph g = Graph::grid(3, 3);
  const auto path = shortestPath(g, 0, 8);
  ASSERT_FALSE(path.empty());
  EXPECT_EQ(path.front(), 0);
  EXPECT_EQ(path.back(), 8);
  EXPECT_EQ(static_cast<int>(path.size()) - 1, 4);
  for (std::size_t i = 0; i + 1 < path.size(); ++i)
    EXPECT_TRUE(g.adjacent(path[i], path[i + 1]));
}

TEST(ShortestPath, TrivialSrcEqualsDst) {
  const Graph g = Graph::path(3);
  const auto path = shortestPath(g, 1, 1);
  ASSERT_EQ(path.size(), 1u);
  EXPECT_EQ(path[0], 1);
}

TEST(IsSpanningTree, AcceptsValidTree) {
  const Graph g = Graph::ring(4);
  // Parents 1<-0, 2<-1, 3<-0 form a spanning tree of the ring.
  EXPECT_TRUE(isSpanningTree(g, {kNoNode, 0, 1, 0}));
}

TEST(IsSpanningTree, RejectsCycle) {
  const Graph g = Graph::ring(4);
  EXPECT_FALSE(isSpanningTree(g, {kNoNode, 2, 1, 2}));  // 1<->2 cycle
}

TEST(IsSpanningTree, RejectsNonNeighborParent) {
  const Graph g = Graph::path(4);
  EXPECT_FALSE(isSpanningTree(g, {kNoNode, 0, 0, 2}));  // 2's parent is 0
}

TEST(IsSpanningTree, RejectsParentOnRoot) {
  const Graph g = Graph::path(3);
  EXPECT_FALSE(isSpanningTree(g, {1, 0, 1}));
}

TEST(TreeHeight, PathAndStar) {
  const Graph path = Graph::path(5);
  EXPECT_EQ(treeHeight(path, {kNoNode, 0, 1, 2, 3}), 4);
  const Graph star = Graph::star(5);
  EXPECT_EQ(treeHeight(star, {kNoNode, 0, 0, 0, 0}), 1);
}

TEST(TreeHeight, InvalidTreeGivesMinusOne) {
  const Graph g = Graph::ring(4);
  EXPECT_EQ(treeHeight(g, {kNoNode, 2, 1, 2}), -1);
}

TEST(ToDot, ContainsNodesAndEdges) {
  const Graph g = Graph::path(3);
  const std::string dot = toDot(g, {"r", "x", "y"});
  EXPECT_NE(dot.find("n0 -- n1"), std::string::npos);
  EXPECT_NE(dot.find("n1 -- n2"), std::string::npos);
  EXPECT_NE(dot.find("doublecircle"), std::string::npos);
  EXPECT_NE(dot.find("label=\"x\""), std::string::npos);
}

}  // namespace
}  // namespace ssno
