// Tests for the model checker itself, on toy protocols with known
// verdicts: a correct self-stabilizing protocol passes; protocols with a
// planted livelock (illegitimate cycle) or deadlock (illegitimate
// terminal) are caught with a counterexample.
#include "core/checker.hpp"

#include <gtest/gtest.h>

#include "core/graph.hpp"
#include "toy_protocols.hpp"

namespace ssno {
namespace {

TEST(FullSpace, AcceptsSelfStabilizingToy) {
  ZeroProtocol proto(Graph::path(3), 3);
  ModelChecker mc(proto, [&proto] { return proto.allZero(); });
  const CheckResult res = mc.verifyFullSpace(1'000'000);
  EXPECT_TRUE(res.ok) << res.failure;
  EXPECT_EQ(res.configsExplored, 27u);  // 3^3 configurations
}

TEST(FullSpace, DetectsIllegitimateCycle) {
  OscillateProtocol proto(Graph::path(2));
  ModelChecker mc(proto, [&proto] { return proto.allZero(); });
  const CheckResult res = mc.verifyFullSpace(1'000'000);
  EXPECT_FALSE(res.ok);
  EXPECT_NE(res.failure.find("cycle"), std::string::npos) << res.failure;
}

TEST(FullSpace, DetectsIllegitimateDeadlock) {
  StuckProtocol proto(Graph::path(2));
  ModelChecker mc(proto, [&proto] { return proto.allZero(); });
  const CheckResult res = mc.verifyFullSpace(1'000'000);
  EXPECT_FALSE(res.ok);
  EXPECT_NE(res.failure.find("terminal"), std::string::npos) << res.failure;
}

TEST(FullSpace, RefusesOversizedSpace) {
  ZeroProtocol proto(Graph::path(3), 100);  // 10^6 configurations
  ModelChecker mc(proto, [&proto] { return proto.allZero(); });
  const CheckResult res = mc.verifyFullSpace(1000);
  EXPECT_FALSE(res.ok);
  EXPECT_NE(res.failure.find("too large"), std::string::npos);
}

// Closure violation: declare (1,1) legitimate even though node 0's move
// leads to the illegitimate (0,1).  The all-zero terminal is also kept
// legitimate so the deadlock check cannot mask the closure defect.
TEST(FullSpace, DetectsClosureViolation) {
  ZeroProtocol proto(Graph::path(2), 2);
  ModelChecker mc(proto, [&proto] {
    return proto.value(0) == 1 ||
           (proto.value(0) == 0 && proto.value(1) == 0);
  });
  const CheckResult res = mc.verifyFullSpace(1'000'000);
  EXPECT_FALSE(res.ok);
  EXPECT_NE(res.failure.find("closure"), std::string::npos) << res.failure;
}

TEST(Reachable, ExploresOnlySeededRegion) {
  ZeroProtocol proto(Graph::path(3), 3);
  ModelChecker mc(proto, [&proto] { return proto.allZero(); });
  // Seed one specific configuration; only its downward cone is explored.
  proto.setValue(0, 2);
  proto.setValue(1, 1);
  proto.setValue(2, 0);
  const CheckResult res = mc.verifyReachable({proto.encodeConfiguration()},
                                             1'000'000);
  EXPECT_TRUE(res.ok) << res.failure;
  EXPECT_LT(res.configsExplored, 27u);
  EXPECT_GE(res.configsExplored, 4u);  // at least the 2x2 sub-lattice
}

TEST(Reachable, DetectsCycleFromSeeds) {
  OscillateProtocol proto(Graph::path(2));
  ModelChecker mc(proto, [&proto] { return proto.allZero(); });
  proto.decodeConfiguration({1, 0});
  const CheckResult res =
      mc.verifyReachable({proto.encodeConfiguration()}, 1'000'000);
  EXPECT_FALSE(res.ok);
  EXPECT_NE(res.failure.find("cycle"), std::string::npos) << res.failure;
}

TEST(MonteCarlo, PassesOnSelfStabilizingToy) {
  ZeroProtocol proto(Graph::ring(6), 4);
  ModelChecker mc(proto, [&proto] { return proto.allZero(); });
  DistributedDaemon daemon;
  Rng rng(5);
  const CheckResult res = mc.monteCarlo(daemon, rng, 50, 10'000, 100);
  EXPECT_TRUE(res.ok) << res.failure;
}

TEST(MonteCarlo, FailsOnLivelockedToy) {
  OscillateProtocol proto(Graph::path(2));
  ModelChecker mc(proto, [&proto] { return proto.allZero(); });
  CentralDaemon daemon;
  Rng rng(6);
  const CheckResult res = mc.monteCarlo(daemon, rng, 5, 1000, 10);
  EXPECT_FALSE(res.ok);
}

}  // namespace
}  // namespace ssno
