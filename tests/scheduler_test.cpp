// Unit tests for the Simulator: cost accounting, termination detection,
// shared-memory semantics of simultaneous moves, move observers.
#include "core/scheduler.hpp"

#include <gtest/gtest.h>

#include "core/graph.hpp"
#include "toy_protocols.hpp"

namespace ssno {
namespace {

TEST(Simulator, RunsToQuiescenceAndCountsMoves) {
  ZeroProtocol proto(Graph::path(4), 3);
  CentralDaemon daemon;
  Rng rng(1);
  Simulator sim(proto, daemon, rng);
  const RunStats stats = sim.runToQuiescence(1000);
  EXPECT_TRUE(stats.terminal);
  EXPECT_TRUE(proto.allZero());
  EXPECT_EQ(stats.moves, 4);  // each node zeroes itself exactly once
  EXPECT_EQ(stats.steps, 4);  // central daemon: one move per step
}

TEST(Simulator, GoalPredicateStopsRun) {
  ZeroProtocol proto(Graph::path(4), 3);
  CentralDaemon daemon;
  Rng rng(2);
  Simulator sim(proto, daemon, rng);
  const RunStats stats =
      sim.runUntil([&proto] { return proto.value(0) == 0; }, 1000);
  EXPECT_TRUE(stats.converged);
}

TEST(Simulator, BudgetExhaustionReported) {
  OscillateProtocol proto(Graph::path(2));
  CentralDaemon daemon;
  Rng rng(3);
  Simulator sim(proto, daemon, rng);
  const RunStats stats = sim.runToQuiescence(10);
  EXPECT_FALSE(stats.terminal);
  EXPECT_FALSE(stats.converged);
  EXPECT_EQ(stats.moves, 10);
}

TEST(Simulator, SynchronousStepExecutesAllEnabled) {
  ZeroProtocol proto(Graph::path(5), 3);
  SynchronousDaemon daemon;
  Rng rng(4);
  Simulator sim(proto, daemon, rng);
  const RunStats stats = sim.runToQuiescence(1000);
  EXPECT_TRUE(stats.terminal);
  EXPECT_EQ(stats.moves, 5);
  EXPECT_EQ(stats.steps, 1);  // all five in one synchronous step
}

TEST(Simulator, SynchronousRoundIsOneRound) {
  ZeroProtocol proto(Graph::path(5), 3);
  SynchronousDaemon daemon;
  Rng rng(5);
  Simulator sim(proto, daemon, rng);
  const RunStats stats = sim.runToQuiescence(1000);
  EXPECT_EQ(stats.rounds, 1);
}

TEST(Simulator, MoveObserverSeesEveryMove) {
  ZeroProtocol proto(Graph::path(3), 3);
  RoundRobinDaemon daemon;
  Rng rng(6);
  Simulator sim(proto, daemon, rng);
  int observed = 0;
  sim.setMoveObserver([&observed](const Move&) { ++observed; });
  const RunStats stats = sim.runToQuiescence(1000);
  EXPECT_EQ(observed, stats.moves);
}

TEST(Simulator, StepOnceReturnsEmptyWhenTerminal) {
  ZeroProtocol proto(Graph::path(2), 3);
  CentralDaemon daemon;
  Rng rng(7);
  Simulator sim(proto, daemon, rng);
  (void)sim.runToQuiescence(100);
  EXPECT_TRUE(sim.stepOnce().empty());
}

// A protocol whose statement reads a neighbor: p copies its right
// neighbor's value.  Under correct shared-memory semantics, when both
// nodes act in the same synchronous step, both right-hand sides must be
// evaluated against the pre-step configuration.
class CopyRightProtocol final : public Protocol {
 public:
  explicit CopyRightProtocol(Graph g) : Protocol(std::move(g)) {
    v_ = {1, 2, 3};
  }
  [[nodiscard]] int actionCount() const override { return 1; }
  [[nodiscard]] std::string actionName(int) const override { return "Copy"; }
  [[nodiscard]] bool enabled(NodeId p, int a) const override {
    return a == 0 && p + 1 < graph().nodeCount() &&
           v_[static_cast<std::size_t>(p)] !=
               v_[static_cast<std::size_t>(p + 1)];
  }
  void doExecute(NodeId p, int) override {
    v_[static_cast<std::size_t>(p)] = v_[static_cast<std::size_t>(p + 1)];
  }
  void doRandomizeNode(NodeId, Rng&) override {}
  [[nodiscard]] std::uint64_t localStateCount(NodeId) const override {
    return 4;
  }
  [[nodiscard]] std::uint64_t encodeNode(NodeId p) const override {
    return static_cast<std::uint64_t>(v_[static_cast<std::size_t>(p)]);
  }
  void doDecodeNode(NodeId p, std::uint64_t code) override {
    v_[static_cast<std::size_t>(p)] = static_cast<int>(code);
  }
  [[nodiscard]] std::vector<int> rawNode(NodeId p) const override {
    return {v_[static_cast<std::size_t>(p)]};
  }
  void doSetRawNode(NodeId p, std::span<const int> values) override {
    v_[static_cast<std::size_t>(p)] = values[0];
  }
  [[nodiscard]] std::string dumpNode(NodeId p) const override {
    return std::to_string(v_[static_cast<std::size_t>(p)]);
  }
  [[nodiscard]] int value(NodeId p) const {
    return v_[static_cast<std::size_t>(p)];
  }

 private:
  std::vector<int> v_;
};

TEST(Simulator, SimultaneousMovesReadPreStepState) {
  CopyRightProtocol proto(Graph::path(3));
  SynchronousDaemon daemon;
  Rng rng(8);
  Simulator sim(proto, daemon, rng);
  // Both node 0 and node 1 are enabled; a synchronous step must give
  // v = (2, 3, 3): node 0 copies the OLD v_1 = 2, not the new 3.
  const auto executed = sim.stepOnce();
  EXPECT_EQ(executed.size(), 2u);
  EXPECT_EQ(proto.value(0), 2);
  EXPECT_EQ(proto.value(1), 3);
  EXPECT_EQ(proto.value(2), 3);
}

TEST(Simulator, RoundCountMatchesDiffusionDepth) {
  // CopyRight on a path: values propagate leftward one hop per round
  // under the synchronous daemon.
  CopyRightProtocol proto(Graph::path(3));
  SynchronousDaemon daemon;
  Rng rng(9);
  Simulator sim(proto, daemon, rng);
  const RunStats stats = sim.runToQuiescence(100);
  EXPECT_TRUE(stats.terminal);
  EXPECT_EQ(proto.value(0), 3);
  EXPECT_EQ(stats.rounds, 2);
}

}  // namespace
}  // namespace ssno
