// White-box tests for the token-circulation correction rules: each
// stabilization mechanism (Error, Resume, StaleChild, pointer-skipping)
// is driven directly from a hand-built corrupt configuration, pinning
// the counterexamples that shaped the design (see dftc.hpp header).
//
// Raw layout per node: {S (−1=idle, else port), col, d, par}.
#include "dftc/dftc.hpp"

#include <gtest/gtest.h>

#include "core/graph.hpp"

namespace ssno {
namespace {

TEST(DftcWhitebox, OrphanPointerTriggersError) {
  // Node 2 on a 5-ring points at node 3 but nobody points at node 2
  // with the right depth/color: Error must be the only action there.
  Dftc dftc(Graph::ring(5));
  dftc.resetClean();
  // node 2's ports: 0 -> node 1, 1 -> node 3.
  dftc.setRawNode(2, {1, 0, 2, 0});
  EXPECT_TRUE(dftc.enabled(2, Dftc::kError));
  EXPECT_FALSE(dftc.enabled(2, Dftc::kAdvance));
  EXPECT_FALSE(dftc.enabled(2, Dftc::kStaleChild));
  dftc.execute(2, Dftc::kError);
  EXPECT_TRUE(dftc.isIdle(2));
}

TEST(DftcWhitebox, DepthInconsistentParentTriggersError) {
  // Chain root->1->2 but node 2's depth is wrong (3 instead of 2).
  Dftc dftc(Graph::path(4));
  dftc.resetClean();
  dftc.setRawNode(0, {0, 1, 0, 0});      // root points at 1, col flipped
  dftc.setRawNode(1, {1, 1, 1, 0});      // node1 -> node2, d=1, par=root
  dftc.setRawNode(2, {1, 1, 3, 0});      // node2 -> node3, d=3 (wrong)
  EXPECT_TRUE(dftc.enabled(2, Dftc::kError));
  // Node 1 is validly parented and waits for its child (no action).
  EXPECT_FALSE(dftc.enabled(1, Dftc::kError));
}

TEST(DftcWhitebox, ColorInconsistentParentTriggersError) {
  Dftc dftc(Graph::path(3));
  dftc.resetClean();
  dftc.setRawNode(0, {0, 1, 0, 0});  // root col 1 points at node1
  dftc.setRawNode(1, {1, 0, 1, 0});  // node1 col 0 (≠ parent) with pointer
  EXPECT_TRUE(dftc.enabled(1, Dftc::kError));
}

TEST(DftcWhitebox, MixedColorsAllIdleResumesAtRoot) {
  // The deadlock that motivated Resume: everything idle, colors mixed.
  Dftc dftc(Graph::path(3));
  dftc.resetClean();
  dftc.setRawNode(1, {-1, 1, 0, 0});  // middle node colored differently
  EXPECT_FALSE(dftc.enabled(0, Dftc::kStart));
  EXPECT_TRUE(dftc.enabled(0, Dftc::kResume));
  dftc.execute(0, Dftc::kResume);
  EXPECT_EQ(dftc.pointer(0), 0);  // extends toward the unvisited node
  EXPECT_EQ(dftc.color(0), 0);    // without flipping the round color
}

TEST(DftcWhitebox, MutualPointWithRootResolvedByStaleChild) {
  // The deadlock that motivated StaleChild (found by the model checker
  // on path-2): root -> leaf and leaf -> root with consistent colors.
  Dftc dftc(Graph::path(2));
  dftc.setRawNode(0, {0, 0, 0, 0});
  dftc.setRawNode(1, {0, 0, 1, 0});
  // The leaf is validly parented but waits on the root, which never
  // adopts anyone: StaleChild must fire.
  EXPECT_TRUE(dftc.enabled(1, Dftc::kStaleChild));
  dftc.execute(1, Dftc::kStaleChild);
  EXPECT_TRUE(dftc.isIdle(1));
  // Now the root can advance past its finished "child" and restart.
  EXPECT_TRUE(dftc.enabled(0, Dftc::kAdvance));
}

TEST(DftcWhitebox, StaleChildWhenTargetAdoptedAnotherParent) {
  // Triangle: root points at node 2, but node 2's par designates node 1.
  Dftc dftc(Graph::ring(3));
  dftc.resetClean();
  // root ports: 0 -> node1, 1 -> node2.  node2 ports: 0 -> node1? ring(3)
  // adjacency of node 2: edges (1,2) then (2,0): port0 -> 1, port1 -> 0.
  dftc.setRawNode(0, {1, 1, 0, 0});  // root col 1 -> node2
  dftc.setRawNode(1, {1, 1, 1, 0});  // node1 col 1 -> node2
  // node2 holds a pointer adopted from node1 (par port 0 -> node 1).
  dftc.setRawNode(2, {1, 1, 2, 0});
  // node2's par port 0 at node2 leads to node 1, not the root: the root
  // waits on a child that never acknowledged it.
  EXPECT_TRUE(dftc.enabled(0, Dftc::kStaleChild));
}

TEST(DftcWhitebox, PointerHoldingNeighborIsNotReSelected) {
  // firstUnvisitedPort must skip pointer-holding neighbors: on a star,
  // the hub with a stale differently-colored but pointer-holding leaf
  // advances past it rather than re-targeting it.
  Dftc dftc(Graph::star(4));
  dftc.resetClean();
  dftc.setRawNode(0, {0, 1, 0, 0});   // hub -> leaf1 (port 0)
  dftc.setRawNode(1, {-1, 1, 1, 0});  // leaf1 finished (same color)
  dftc.setRawNode(2, {0, 0, 3, 0});   // leaf2: unvisited color BUT holds a
                                      // (bogus) pointer back to the hub
  dftc.setRawNode(3, {-1, 1, 1, 0});  // leaf3 finished
  ASSERT_TRUE(dftc.enabled(0, Dftc::kAdvance));
  dftc.execute(0, Dftc::kAdvance);
  // leaf2 was skipped: with every other leaf finished the hub retracts.
  EXPECT_TRUE(dftc.isIdle(0));
}

TEST(DftcWhitebox, DepthCappedOfferIsIgnored) {
  // The diamond-graph livelock (model-checker counterexample): a corrupt
  // pointer-holder at depth N−1 offers the token; adopting it would
  // reproduce d = min((N−1)+1, N−1) = N−1 and the corrupt configuration
  // recurs under a weakly fair schedule.  Forward must ignore the offer.
  // Diamond: edges 0-1, 0-2, 1-2, 1-3, 2-3.
  Dftc dftc(Graph(4, {{0, 1}, {0, 2}, {1, 2}, {1, 3}, {2, 3}}));
  dftc.resetClean();
  // node 3 (ports: 0 -> node1, 1 -> node2) points at node 1 with d=3.
  dftc.setRawNode(3, {0, 0, 3, 1});
  dftc.setRawNode(1, {-1, 1, 1, 0});  // node 1 idle, differently colored
  EXPECT_FALSE(dftc.enabled(1, Dftc::kForward))
      << "offer from a depth-capped neighbor must not be adoptable";
  // A root offer (depth 0) IS adoptable in the same situation.
  dftc.setRawNode(0, {0, 0, 0, 0});  // root points at node 1, col 0 != 1
  EXPECT_TRUE(dftc.enabled(1, Dftc::kForward));
}

TEST(DftcWhitebox, RootStartAfterUniformColors) {
  Dftc dftc(Graph::ring(4));
  dftc.resetClean();
  EXPECT_TRUE(dftc.enabled(0, Dftc::kStart));
  dftc.execute(0, Dftc::kStart);
  EXPECT_EQ(dftc.color(0), 1);
  EXPECT_EQ(dftc.pointer(0), 0);
  EXPECT_FALSE(dftc.enabled(0, Dftc::kStart));
}

TEST(DftcWhitebox, AtMostOneSubstrateActionPerNode) {
  // The action guards are mutually exclusive (this is what makes
  // processor-level and action-level fairness coincide for the
  // substrate).  Fuzz over random configurations.
  Dftc dftc(Graph::figure311());
  Rng rng(0xFEED);
  for (int t = 0; t < 2000; ++t) {
    dftc.randomize(rng);
    for (NodeId p = 0; p < dftc.graph().nodeCount(); ++p) {
      int enabled = 0;
      for (int a = 0; a < Dftc::kActionCount; ++a)
        enabled += dftc.enabled(p, a) ? 1 : 0;
      EXPECT_LE(enabled, 1) << "node " << p << ": " << dftc.dumpNode(p);
    }
  }
}

TEST(DftcWhitebox, RootRawStateIsCanonicalized) {
  Dftc dftc(Graph::path(3));
  dftc.setRawNode(0, {-1, 0, 7, 9});  // junk depth/par on the root
  const auto raw = dftc.rawNode(0);
  EXPECT_EQ(raw[2], 0);
  EXPECT_EQ(raw[3], 0);
}

}  // namespace
}  // namespace ssno
