// Unit tests for the rooted-network Graph and its topology builders.
#include "core/graph.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "core/rng.hpp"

namespace ssno {
namespace {

TEST(Graph, BasicConstruction) {
  const Graph g(3, {{0, 1}, {1, 2}});
  EXPECT_EQ(g.nodeCount(), 3);
  EXPECT_EQ(g.edgeCount(), 2);
  EXPECT_EQ(g.root(), 0);
  EXPECT_TRUE(g.adjacent(0, 1));
  EXPECT_TRUE(g.adjacent(1, 0));
  EXPECT_FALSE(g.adjacent(0, 2));
  EXPECT_TRUE(g.isConnected());
}

TEST(Graph, PortNumberingFollowsInsertionOrder) {
  const Graph g(4, {{0, 2}, {0, 1}, {0, 3}});
  EXPECT_EQ(g.neighborAt(0, 0), 2);
  EXPECT_EQ(g.neighborAt(0, 1), 1);
  EXPECT_EQ(g.neighborAt(0, 2), 3);
  EXPECT_EQ(g.portOf(0, 1), 1);
  EXPECT_EQ(g.portOf(1, 0), 0);
  EXPECT_EQ(g.portOf(1, 2), kNoPort);
}

TEST(Graph, RejectsSelfLoop) {
  EXPECT_THROW(Graph(2, {{0, 0}}), std::invalid_argument);
}

TEST(Graph, RejectsDuplicateEdge) {
  EXPECT_THROW(Graph(2, {{0, 1}, {1, 0}}), std::invalid_argument);
}

TEST(Graph, RejectsOutOfRangeEndpoint) {
  EXPECT_THROW(Graph(2, {{0, 2}}), std::invalid_argument);
}

TEST(Graph, RejectsBadRoot) {
  EXPECT_THROW(Graph(2, {{0, 1}}, 5), std::invalid_argument);
}

TEST(Graph, DisconnectedDetected) {
  const Graph g(4, {{0, 1}, {2, 3}});
  EXPECT_FALSE(g.isConnected());
}

// The CSR + port-table representation must agree everywhere with the
// reference nested-adjacency construction (ports in edge insertion
// order) that Graph used before the flat layout.
TEST(Graph, CsrMatchesReferenceAdjacency) {
  Rng rng(0xC5A);
  for (int trial = 0; trial < 20; ++trial) {
    const int n = 2 + rng.below(40);
    // Random simple edge list (dedup via set), plus a spanning path so
    // degrees stay non-trivial.
    std::set<std::pair<NodeId, NodeId>> seen;
    std::vector<std::pair<NodeId, NodeId>> edges;
    for (int i = 0; i + 1 < n; ++i) {
      edges.emplace_back(i, i + 1);
      seen.insert({i, i + 1});
    }
    for (int tries = 0; tries < 3 * n; ++tries) {
      const NodeId u = rng.below(n);
      const NodeId v = rng.below(n);
      if (u == v) continue;
      const auto [lo, hi] = std::minmax(u, v);
      if (!seen.insert({lo, hi}).second) continue;
      edges.emplace_back(u, v);
    }
    const Graph g(n, edges);

    // Reference: nested adjacency in insertion order.
    std::vector<std::vector<NodeId>> ref(static_cast<std::size_t>(n));
    for (const auto& [u, v] : edges) {
      ref[static_cast<std::size_t>(u)].push_back(v);
      ref[static_cast<std::size_t>(v)].push_back(u);
    }

    ASSERT_EQ(g.edgeCount(), static_cast<int>(edges.size()));
    int maxDeg = 0;
    for (NodeId p = 0; p < n; ++p) {
      const auto& nbrs = ref[static_cast<std::size_t>(p)];
      maxDeg = std::max(maxDeg, static_cast<int>(nbrs.size()));
      ASSERT_EQ(g.degree(p), static_cast<int>(nbrs.size()));
      const auto span = g.neighbors(p);
      ASSERT_EQ(span.size(), nbrs.size());
      for (Port l = 0; l < g.degree(p); ++l) {
        EXPECT_EQ(g.neighborAt(p, l), nbrs[static_cast<std::size_t>(l)]);
        EXPECT_EQ(span[static_cast<std::size_t>(l)],
                  nbrs[static_cast<std::size_t>(l)]);
      }
      // portOf: O(1) table vs reference linear scan, for every q.
      for (NodeId q = 0; q < n; ++q) {
        Port expected = kNoPort;
        for (std::size_t i = 0; i < nbrs.size(); ++i)
          if (nbrs[i] == q) {
            expected = static_cast<Port>(i);
            break;
          }
        EXPECT_EQ(g.portOf(p, q), expected);
        EXPECT_EQ(g.adjacent(p, q), expected != kNoPort);
      }
    }
    EXPECT_EQ(g.maxDegree(), maxDeg);
  }
}

TEST(GraphBuilders, Ring) {
  const Graph g = Graph::ring(5);
  EXPECT_EQ(g.nodeCount(), 5);
  EXPECT_EQ(g.edgeCount(), 5);
  EXPECT_TRUE(g.isConnected());
  for (NodeId p = 0; p < 5; ++p) EXPECT_EQ(g.degree(p), 2);
}

TEST(GraphBuilders, Path) {
  const Graph g = Graph::path(4);
  EXPECT_EQ(g.edgeCount(), 3);
  EXPECT_EQ(g.degree(0), 1);
  EXPECT_EQ(g.degree(1), 2);
  EXPECT_EQ(g.degree(3), 1);
}

TEST(GraphBuilders, Star) {
  const Graph g = Graph::star(6);
  EXPECT_EQ(g.degree(0), 5);
  for (NodeId p = 1; p < 6; ++p) EXPECT_EQ(g.degree(p), 1);
  EXPECT_EQ(g.maxDegree(), 5);
}

TEST(GraphBuilders, Complete) {
  const Graph g = Graph::complete(5);
  EXPECT_EQ(g.edgeCount(), 10);
  for (NodeId p = 0; p < 5; ++p) EXPECT_EQ(g.degree(p), 4);
}

TEST(GraphBuilders, Grid) {
  const Graph g = Graph::grid(3, 4);
  EXPECT_EQ(g.nodeCount(), 12);
  EXPECT_EQ(g.edgeCount(), 3 * 3 + 2 * 4);  // horizontal + vertical
  EXPECT_TRUE(g.isConnected());
}

TEST(GraphBuilders, Torus) {
  const Graph g = Graph::torus(3, 3);
  EXPECT_EQ(g.nodeCount(), 9);
  EXPECT_EQ(g.edgeCount(), 18);
  for (NodeId p = 0; p < 9; ++p) EXPECT_EQ(g.degree(p), 4);
}

TEST(GraphBuilders, Hypercube) {
  const Graph g = Graph::hypercube(3);
  EXPECT_EQ(g.nodeCount(), 8);
  EXPECT_EQ(g.edgeCount(), 12);
  for (NodeId p = 0; p < 8; ++p) EXPECT_EQ(g.degree(p), 3);
}

TEST(GraphBuilders, Lollipop) {
  const Graph g = Graph::lollipop(4, 3);
  EXPECT_EQ(g.nodeCount(), 7);
  EXPECT_EQ(g.edgeCount(), 6 + 3);
  EXPECT_TRUE(g.isConnected());
  EXPECT_EQ(g.degree(6), 1);  // tail end
}

TEST(GraphBuilders, KAryTree) {
  const Graph g = Graph::kAryTree(7, 2);  // complete binary tree
  EXPECT_EQ(g.edgeCount(), 6);
  EXPECT_EQ(g.degree(0), 2);
  EXPECT_EQ(g.degree(1), 3);
  EXPECT_EQ(g.degree(3), 1);
}

TEST(GraphBuilders, Caterpillar) {
  const Graph g = Graph::caterpillar(3, 2);
  EXPECT_EQ(g.nodeCount(), 9);
  EXPECT_EQ(g.edgeCount(), 8);
  EXPECT_TRUE(g.isConnected());
}

TEST(GraphBuilders, RandomTreeIsSpanningTree) {
  Rng rng(42);
  for (int n : {1, 2, 3, 10, 50}) {
    const Graph g = Graph::randomTree(n, rng);
    EXPECT_EQ(g.nodeCount(), n);
    EXPECT_EQ(g.edgeCount(), n - 1);
    EXPECT_TRUE(g.isConnected());
  }
}

TEST(GraphBuilders, RandomConnectedIsConnected) {
  Rng rng(7);
  for (int trial = 0; trial < 20; ++trial) {
    const Graph g = Graph::randomConnected(20, 0.1, rng);
    EXPECT_TRUE(g.isConnected());
    EXPECT_GE(g.edgeCount(), 19);
  }
}

TEST(GraphBuilders, Figure311MatchesPaperTrace) {
  // r=0, a=1, b=2, c=3, d=4; DFS in port order must visit r,b,d,c then a.
  const Graph g = Graph::figure311();
  EXPECT_EQ(g.nodeCount(), 5);
  EXPECT_EQ(g.neighborAt(0, 0), 2);  // the root explores b before a
  EXPECT_EQ(g.neighborAt(0, 1), 1);
  EXPECT_TRUE(g.adjacent(2, 4));
  EXPECT_TRUE(g.adjacent(4, 3));
  EXPECT_TRUE(g.isConnected());
}

TEST(GraphBuilders, Figure221HasChord) {
  const Graph g = Graph::figure221();
  EXPECT_EQ(g.nodeCount(), 5);
  EXPECT_EQ(g.edgeCount(), 6);
  EXPECT_TRUE(g.adjacent(0, 2));
}

}  // namespace
}  // namespace ssno
