// Parallel-vs-sequential equivalence: every protocol × tiny topology is
// verified by BOTH the sequential ModelChecker (incremental and naive
// expansion) and the src/mc ParallelChecker, and must produce the same
// verdict; the parallel engine's full result — verdict, failure text,
// counterexample trace, state and frontier counts — must be
// bit-identical for 1 and N exploration threads.
#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/checker.hpp"
#include "core/graph.hpp"
#include "dftc/dftc.hpp"
#include "mc/explorer.hpp"
#include "orientation/dftno.hpp"
#include "toy_protocols.hpp"

namespace ssno {
namespace {

struct Case {
  std::string name;
  mc::ParallelChecker::Factory factory;
  mc::ParallelChecker::Legit legit;
  Fairness fairness = Fairness::kNone;
  /// Expected failure kind substring; empty = must pass.
  std::string expectKind;
};

std::vector<Case> equivalenceCases() {
  std::vector<Case> cases;
  cases.push_back(
      {"zero/path:3",
       [] { return std::make_unique<ZeroProtocol>(Graph::path(3), 3); },
       [](Protocol& p) { return static_cast<ZeroProtocol&>(p).allZero(); },
       Fairness::kNone,
       ""});
  cases.push_back(
      {"oscillate/path:2",
       [] { return std::make_unique<OscillateProtocol>(Graph::path(2)); },
       [](Protocol& p) {
         return static_cast<OscillateProtocol&>(p).allZero();
       },
       Fairness::kNone,
       "cycle"});
  cases.push_back(
      {"stuck/path:2",
       [] { return std::make_unique<StuckProtocol>(Graph::path(2)); },
       [](Protocol& p) { return static_cast<StuckProtocol&>(p).allZero(); },
       Fairness::kNone,
       "terminal"});
  for (const auto& [label, graph] :
       {std::pair<const char*, Graph>{"dftc/path:2", Graph::path(2)},
        {"dftc/path:3", Graph::path(3)},
        {"dftc/ring:3", Graph::ring(3)}}) {
    cases.push_back(
        {label,
         [graph] { return std::make_unique<Dftc>(graph); },
         [](Protocol& p) { return static_cast<Dftc&>(p).isLegitimate(); },
         Fairness::kWeaklyFair,
         ""});
  }
  cases.push_back(
      {"dftno/path:2",
       [] { return std::make_unique<Dftno>(Graph::path(2)); },
       [](Protocol& p) { return static_cast<Dftno&>(p).isLegitimate(); },
       Fairness::kWeaklyFair,
       ""});
  // Erratum 4: the paper-faithful edge-label guard diverges under weak
  // fairness — the parallel engine must agree on the failure too.
  cases.push_back(
      {"dftno-paper-guard/path:2",
       [] {
         return std::make_unique<Dftno>(Graph::path(2),
                                        EdgeLabelGuard::kPaperFaithful);
       },
       [](Protocol& p) { return static_cast<Dftno&>(p).isLegitimate(); },
       Fairness::kWeaklyFair,
       "fair-feasible cycle"});
  return cases;
}

CheckResult sequentialVerdict(const Case& c, bool naive) {
  const std::unique_ptr<Protocol> protocol = c.factory();
  Protocol& ref = *protocol;
  ModelChecker checker(ref, [&c, &ref] { return c.legit(ref); });
  checker.setNaiveExpansion(naive);
  return checker.verifyFullSpace(1u << 22, c.fairness);
}

mc::Result parallelVerdict(const Case& c, int threads) {
  mc::ParallelChecker pc(c.factory, c.legit);
  mc::Options opt;
  opt.threads = threads;
  opt.fairness = c.fairness;
  return pc.checkFullSpace(opt);
}

TEST(McEquivalence, VerdictsMatchSequentialOnFullSpace) {
  for (const Case& c : equivalenceCases()) {
    const CheckResult incremental = sequentialVerdict(c, /*naive=*/false);
    const CheckResult naive = sequentialVerdict(c, /*naive=*/true);
    const mc::Result parallel = parallelVerdict(c, 2);
    EXPECT_EQ(incremental.ok, naive.ok) << c.name;
    EXPECT_EQ(incremental.failure, naive.failure) << c.name;
    EXPECT_EQ(incremental.ok, parallel.ok)
        << c.name << ": seq='" << incremental.failure << "' mc='"
        << parallel.failure << "'";
    if (c.expectKind.empty()) {
      EXPECT_TRUE(parallel.ok) << c.name << ": " << parallel.failure;
    } else {
      EXPECT_NE(parallel.failure.find(c.expectKind), std::string::npos)
          << c.name << ": " << parallel.failure;
      EXPECT_NE(incremental.failure.find(c.expectKind), std::string::npos)
          << c.name << ": " << incremental.failure;
    }
    // Both explore the same space exhaustively (pass cases).
    if (parallel.ok) {
      EXPECT_EQ(parallel.statesExplored, incremental.configsExplored)
          << c.name;
    }
  }
}

TEST(McEquivalence, ParallelResultsBitIdenticalAcrossThreadCounts) {
  for (const Case& c : equivalenceCases()) {
    const mc::Result one = parallelVerdict(c, 1);
    for (int threads : {2, 8}) {
      const mc::Result many = parallelVerdict(c, threads);
      EXPECT_EQ(one.ok, many.ok) << c.name;
      EXPECT_EQ(one.failure, many.failure) << c.name << " @" << threads;
      EXPECT_EQ(one.trace, many.trace) << c.name << " @" << threads;
      EXPECT_EQ(one.statesExplored, many.statesExplored) << c.name;
      EXPECT_EQ(one.transitions, many.transitions) << c.name;
      EXPECT_EQ(one.peakFrontier, many.peakFrontier) << c.name;
      EXPECT_EQ(one.depthReached, many.depthReached) << c.name;
    }
  }
}

TEST(McEquivalence, ReachableVerdictsMatchAndTracesAreThreadFree) {
  // Reachable mode: the 1-fault recovery cone of the clean dftc
  // configuration on a ring (per-seed single-node corruptions).
  const Graph g = Graph::ring(4);
  Dftc clean(g);
  clean.resetClean();
  const std::vector<std::uint64_t> base = clean.encodeConfiguration();
  std::vector<std::vector<std::uint64_t>> seeds;
  for (NodeId p = 0; p < g.nodeCount(); ++p) {
    for (std::uint64_t code = 0; code < clean.localStateCount(p); ++code) {
      std::vector<std::uint64_t> seed = base;
      seed[static_cast<std::size_t>(p)] = code;
      seeds.push_back(std::move(seed));
    }
  }

  Dftc seq(g);
  ModelChecker checker(seq, [&seq] { return seq.isLegitimate(); });
  const CheckResult seqRes =
      checker.verifyReachable(seeds, 1u << 22, Fairness::kWeaklyFair);

  auto factory = [&g] { return std::make_unique<Dftc>(g); };
  auto legit = [](Protocol& p) {
    return static_cast<Dftc&>(p).isLegitimate();
  };
  mc::ParallelChecker pc(factory, legit);
  mc::Options opt;
  opt.fairness = Fairness::kWeaklyFair;
  opt.threads = 1;
  const mc::Result one = pc.checkReachable(seeds, opt);
  EXPECT_EQ(seqRes.ok, one.ok)
      << "seq='" << seqRes.failure << "' mc='" << one.failure << "'";
  EXPECT_TRUE(one.ok) << one.failure;
  EXPECT_EQ(one.statesExplored, seqRes.configsExplored);

  opt.threads = 8;
  const mc::Result many = pc.checkReachable(seeds, opt);
  EXPECT_EQ(one.ok, many.ok);
  EXPECT_EQ(one.failure, many.failure);
  EXPECT_EQ(one.trace, many.trace);
  EXPECT_EQ(one.statesExplored, many.statesExplored);
  EXPECT_EQ(one.peakFrontier, many.peakFrontier);
}

}  // namespace
}  // namespace ssno
