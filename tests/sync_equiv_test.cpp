// Simultaneous-step equivalence suite (the columnar engine's contract):
// the columnar pipeline, the legacy per-node-vector pipeline, and the
// naive full-rescan pipeline must produce bit-identical runs — final
// raw configurations, move/step/round accounting, RNG engine state, and
// EnabledCache contents — across protocols × daemons × topologies.
// Also unit-tests the engine against a brute-force shared-memory
// reference executor and the batched StateArena snapshot/restore ops.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/daemon.hpp"
#include "core/enabled_cache.hpp"
#include "core/rng.hpp"
#include "core/scheduler.hpp"
#include "core/state_arena.hpp"
#include "core/sync_engine.hpp"
#include "dftc/dftc.hpp"
#include "orientation/baseline.hpp"
#include "orientation/dftno.hpp"
#include "orientation/stno.hpp"
#include "sptree/bfs_tree.hpp"
#include "sptree/lex_dfs_tree.hpp"

namespace ssno {
namespace {

enum class Proto { kDftc, kDftno, kStno, kBfsTree, kLexDfsTree };

std::unique_ptr<Protocol> makeProto(Proto kind, const Graph& g) {
  switch (kind) {
    case Proto::kDftc: return std::make_unique<Dftc>(g);
    case Proto::kDftno: return std::make_unique<Dftno>(g);
    case Proto::kStno: return std::make_unique<Stno>(g);
    case Proto::kBfsTree: return std::make_unique<BfsTree>(g);
    case Proto::kLexDfsTree: return std::make_unique<LexDfsTree>(g);
  }
  return nullptr;
}

std::vector<Graph> topologies() {
  Rng rng(99);
  std::vector<Graph> out;
  out.push_back(Graph::ring(12));
  out.push_back(Graph::grid(3, 4));
  out.push_back(Graph::star(9));
  out.push_back(Graph::complete(6));
  out.push_back(Graph::randomConnected(14, 0.3, rng));
  return out;
}

struct RunRecord {
  std::vector<int> config;
  StepCount moves = 0;
  StepCount steps = 0;
  StepCount rounds = 0;
  std::vector<Move> enabled;  // EnabledCache contents at the end
  Rng rng{0};
};

/// Runs `maxMoves` moves from the scrambled start in one pipeline mode.
RunRecord runPipeline(Proto kind, const Graph& g, DaemonKind daemonKind,
                      std::uint64_t seed, StepCount maxMoves, int mode) {
  const std::unique_ptr<Protocol> proto = makeProto(kind, g);
  Rng rng(seed);
  proto->randomize(rng);
  const std::unique_ptr<Daemon> daemon = makeDaemon(daemonKind);
  Simulator sim(*proto, *daemon, rng);
  if (mode == 1) sim.setLegacySimultaneous(true);
  if (mode == 2) sim.setNaiveEnabledScan(true);
  RunRecord rec;
  const RunStats stats = sim.runToQuiescence(maxMoves);
  rec.config = proto->rawConfiguration();
  rec.moves = stats.moves;
  rec.steps = stats.steps;
  rec.rounds = stats.rounds;
  rec.enabled = proto->enabledMoves();
  rec.rng = rng;
  return rec;
}

TEST(SyncEquivalence, ColumnarLegacyNaiveBitIdentical) {
  const std::vector<Graph> graphs = topologies();
  for (Proto kind : {Proto::kDftc, Proto::kDftno, Proto::kStno,
                     Proto::kBfsTree, Proto::kLexDfsTree}) {
    for (DaemonKind daemon :
         {DaemonKind::kSynchronous, DaemonKind::kDistributed}) {
      for (std::size_t t = 0; t < graphs.size(); ++t) {
        for (std::uint64_t seed : {7ull, 1234ull}) {
          RunRecord columnar =
              runPipeline(kind, graphs[t], daemon, seed, 400, 0);
          RunRecord legacy =
              runPipeline(kind, graphs[t], daemon, seed, 400, 1);
          RunRecord naive =
              runPipeline(kind, graphs[t], daemon, seed, 400, 2);
          const std::string ctx = "proto=" + std::to_string(int(kind)) +
                                  " daemon=" + daemonKindName(daemon) +
                                  " topo=" + std::to_string(t) +
                                  " seed=" + std::to_string(seed);
          EXPECT_EQ(columnar.config, legacy.config) << ctx;
          EXPECT_EQ(columnar.config, naive.config) << ctx;
          EXPECT_EQ(columnar.moves, legacy.moves) << ctx;
          EXPECT_EQ(columnar.steps, legacy.steps) << ctx;
          EXPECT_EQ(columnar.rounds, legacy.rounds) << ctx;
          EXPECT_EQ(columnar.rounds, naive.rounds) << ctx;
          EXPECT_EQ(columnar.enabled, legacy.enabled) << ctx;
          EXPECT_EQ(columnar.enabled, naive.enabled) << ctx;
          EXPECT_TRUE(columnar.rng.engine() == legacy.rng.engine()) << ctx;
          EXPECT_TRUE(columnar.rng.engine() == naive.rng.engine()) << ctx;
        }
      }
    }
  }
}

/// The non-neighborhood-local fallback: InitBasedOrientation's Number
/// guard reads a non-neighbor, so simultaneous steps take the
/// full-configuration path (columnar, since baseline opts in).
TEST(SyncEquivalence, FullSnapshotFallbackBitIdentical) {
  const Graph g = Graph::grid(3, 4);
  for (std::uint64_t seed : {3ull, 77ull}) {
    std::vector<RunRecord> recs;
    for (int mode = 0; mode < 3; ++mode) {
      const std::unique_ptr<Protocol> proto =
          std::make_unique<InitBasedOrientation>(g);
      Rng rng(seed);
      proto->randomize(rng);
      const std::unique_ptr<Daemon> daemon =
          makeDaemon(DaemonKind::kSynchronous);
      Simulator sim(*proto, *daemon, rng);
      if (mode == 1) sim.setLegacySimultaneous(true);
      if (mode == 2) sim.setNaiveEnabledScan(true);
      RunRecord rec;
      const RunStats stats = sim.runToQuiescence(300);
      rec.config = proto->rawConfiguration();
      rec.moves = stats.moves;
      rec.rounds = stats.rounds;
      rec.enabled = proto->enabledMoves();
      rec.rng = rng;
      recs.push_back(std::move(rec));
    }
    EXPECT_EQ(recs[0].config, recs[1].config);
    EXPECT_EQ(recs[0].config, recs[2].config);
    EXPECT_EQ(recs[0].moves, recs[1].moves);
    EXPECT_EQ(recs[0].rounds, recs[1].rounds);
    EXPECT_EQ(recs[0].enabled, recs[1].enabled);
    EXPECT_TRUE(recs[0].rng.engine() == recs[1].rng.engine());
  }
}

/// Brute-force shared-memory reference: every move executes from the
/// full pre-step configuration; post states are composed at the end.
std::vector<int> bruteForceStep(Protocol& proto,
                                const std::vector<Move>& moves) {
  const std::vector<int> pre = proto.rawConfiguration();
  std::vector<std::vector<int>> post;
  for (const Move& m : moves) {
    proto.setRawConfiguration(pre);
    proto.execute(m.node, m.action);
    post.push_back(proto.rawNode(m.node));
  }
  proto.setRawConfiguration(pre);
  for (std::size_t i = 0; i < moves.size(); ++i)
    proto.setRawNode(moves[i].node, post[i]);
  return proto.rawConfiguration();
}

TEST(SimultaneousEngine, MatchesBruteForceAndUndoRestores) {
  const Graph g = Graph::grid(3, 4);
  for (Proto kind : {Proto::kDftc, Proto::kDftno, Proto::kLexDfsTree}) {
    const std::unique_ptr<Protocol> proto = makeProto(kind, g);
    const std::unique_ptr<Protocol> ref = makeProto(kind, g);
    SimultaneousEngine engine(*proto);
    EXPECT_TRUE(engine.columnar());
    Rng rng(42);
    for (int round = 0; round < 30; ++round) {
      {
        Rng r2(1000 + round);
        proto->randomize(r2);
      }
      {
        Rng r2(1000 + round);
        ref->randomize(r2);
      }
      ASSERT_EQ(proto->rawConfiguration(), ref->rawConfiguration());
      // A random simultaneous selection: one enabled action for a
      // random subset of enabled processors (node-ascending).
      std::vector<Move> sel;
      for (NodeId p = 0; p < g.nodeCount(); ++p) {
        std::vector<int> actions;
        for (int a = 0; a < proto->actionCount(); ++a)
          if (proto->enabled(p, a)) actions.push_back(a);
        if (actions.empty() || rng.chance(0.3)) continue;
        sel.push_back(
            {p, actions[static_cast<std::size_t>(
                    rng.below(static_cast<int>(actions.size())))]});
      }
      if (sel.empty()) continue;
      const std::vector<int> before = proto->rawConfiguration();
      engine.execute(sel);
      const std::vector<int> after = proto->rawConfiguration();
      EXPECT_EQ(after, bruteForceStep(*ref, sel));
      engine.undo();
      EXPECT_EQ(proto->rawConfiguration(), before);
      // After undo, the protocol must also report the pre-step enabled
      // relation (dirtying propagated through the undo restores).
      EnabledCache cache(*proto);
      EXPECT_EQ(cache.refresh(), proto->enabledMoves());
    }
  }
}

TEST(StateArena, BatchSnapshotRestoreRoundTrip) {
  const Graph g = Graph::grid(3, 3);
  StateArena arena(g);
  NodeColumn a = arena.nodeColumn(1);
  PortColumn b = arena.portColumn(2);
  VarColumn c = arena.varColumn();
  Rng rng(5);
  auto scramble = [&] {
    for (NodeId p = 0; p < g.nodeCount(); ++p) {
      a[p] = rng.below(100);
      for (Port l = 0; l < g.degree(p); ++l) b.at(p, l) = rng.below(100);
      std::vector<int> row(static_cast<std::size_t>(rng.below(6)));
      for (int& x : row) x = rng.below(50);
      c.setRow(p, row);
    }
  };
  scramble();
  const std::vector<NodeId> nodes = {1, 3, 4, 7};
  auto snapshotOf = [&](NodeId p) { return arena.rawNode(p); };
  std::vector<std::vector<int>> want;
  for (NodeId p : nodes) want.push_back(snapshotOf(p));

  StateArena::Scratch scratch;
  arena.snapshotNodes(nodes, scratch);
  scramble();  // clobber everything
  arena.restoreNodes(nodes, scratch);
  for (std::size_t j = 0; j < nodes.size(); ++j)
    EXPECT_EQ(snapshotOf(nodes[j]), want[j]) << "node " << nodes[j];

  // Single-node restore: clobber one listed node, restore just it.
  std::vector<int> other = arena.rawNode(nodes[2]);
  scramble();
  arena.restoreNode(2, nodes[2], scratch);
  EXPECT_EQ(snapshotOf(nodes[2]), want[2]);
}

TEST(VarColumn, GrowShrinkCompactAndAliasing) {
  const Graph g = Graph::ring(4);
  StateArena arena(g);
  VarColumn col = arena.varColumn();
  // Grow rows repeatedly to force relocations and compactions.
  Rng rng(11);
  std::vector<std::vector<int>> shadow(4);
  for (int round = 0; round < 500; ++round) {
    const NodeId p = rng.below(4);
    std::vector<int> row(static_cast<std::size_t>(rng.below(40)));
    for (int& x : row) x = rng.below(1000);
    col.setRow(p, row);
    shadow[static_cast<std::size_t>(p)] = row;
    for (NodeId q = 0; q < 4; ++q) {
      const auto have = col.row(q);
      const auto& want = shadow[static_cast<std::size_t>(q)];
      ASSERT_EQ(std::vector<int>(have.begin(), have.end()), want);
    }
  }
  // Aliasing: set a row from another row's span (plus growth).
  col.setRow(0, std::vector<int>{1, 2, 3});
  std::vector<int> fromRow(col.row(0).begin(), col.row(0).end());
  col.setRow(1, col.row(0));  // may relocate while reading the pool
  EXPECT_EQ(std::vector<int>(col.row(1).begin(), col.row(1).end()), fromRow);
}

}  // namespace
}  // namespace ssno
