// Unit tests for the shared bitmask utilities (core/bitwords.hpp):
// word-level select, the WordBitset skip-scan, and the flat multi-word
// mask arenas the fairness analysis uses.
#include "core/bitwords.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "core/rng.hpp"

namespace ssno {
namespace {

TEST(BitWords, SelectBitPicksKthSetBit) {
  const std::uint64_t w = 0b1011'0101;
  EXPECT_EQ(bits::selectBit(w, 0), 0);
  EXPECT_EQ(bits::selectBit(w, 1), 2);
  EXPECT_EQ(bits::selectBit(w, 2), 4);
  EXPECT_EQ(bits::selectBit(w, 3), 5);
  EXPECT_EQ(bits::selectBit(w, 4), 7);
  EXPECT_EQ(bits::selectBit(~std::uint64_t{0}, 63), 63);
}

TEST(BitWords, BitsAboveMasksStrictlyHigherPositions) {
  EXPECT_EQ(bits::bitsAbove(63), 0u);
  EXPECT_EQ(bits::bitsAbove(0), ~std::uint64_t{0} << 1);
  for (int b = 0; b < 64; ++b) {
    const std::uint64_t m = bits::bitsAbove(b);
    for (int i = 0; i < 64; ++i)
      EXPECT_EQ((m >> i) & 1, static_cast<std::uint64_t>(i > b ? 1 : 0));
  }
}

TEST(WordBitset, SetClearTestAndCountAcrossWordBoundaries) {
  bits::WordBitset bs(200);
  const std::vector<std::size_t> positions{0, 1, 63, 64, 65, 127, 128, 199};
  for (std::size_t p : positions) bs.set(p);
  EXPECT_EQ(bs.count(), positions.size());
  for (std::size_t p : positions) EXPECT_TRUE(bs.test(p));
  EXPECT_FALSE(bs.test(2));
  EXPECT_FALSE(bs.test(126));
  bs.clear(64);
  EXPECT_FALSE(bs.test(64));
  EXPECT_EQ(bs.count(), positions.size() - 1);
}

TEST(WordBitset, FindFirstAndNextSkipZeroRuns) {
  bits::WordBitset bs(1000);
  EXPECT_EQ(bs.findFirst(), -1);
  bs.set(130);
  bs.set(131);
  bs.set(999);
  EXPECT_EQ(bs.findFirst(), 130);
  EXPECT_EQ(bs.findNext(130), 131);
  EXPECT_EQ(bs.findNext(131), 999);
  EXPECT_EQ(bs.findNext(999), -1);
  EXPECT_EQ(bs.findFrom(500), 999);
}

TEST(WordBitset, MatchesReferenceUnderRandomOperations) {
  bits::WordBitset bs(300);
  std::set<std::size_t> ref;
  Rng rng(0xB175);
  for (int step = 0; step < 2000; ++step) {
    const auto i = static_cast<std::size_t>(rng.below(300));
    if (rng.chance(0.5)) {
      bs.set(i);
      ref.insert(i);
    } else {
      bs.clear(i);
      ref.erase(i);
    }
    EXPECT_EQ(bs.count(), ref.size());
  }
  // Full iteration via findFirst/findNext equals the reference set.
  std::set<std::size_t> walked;
  for (long i = bs.findFirst(); i >= 0;
       i = bs.findNext(static_cast<std::size_t>(i)))
    walked.insert(static_cast<std::size_t>(i));
  EXPECT_EQ(walked, ref);
}

TEST(MaskArena, MultiWordSetTestAndAggregates) {
  // 3 masks of 100 bits each -> 2 words per mask.
  const std::size_t words = bits::wordsFor(100);
  ASSERT_EQ(words, 2u);
  std::vector<std::uint64_t> arena(3 * words, 0);
  bits::maskSet(arena.data() + 0 * words, 5);
  bits::maskSet(arena.data() + 0 * words, 70);
  bits::maskSet(arena.data() + 1 * words, 70);
  bits::maskSet(arena.data() + 2 * words, 99);
  EXPECT_TRUE(bits::maskTest(arena.data() + 0 * words, 70));
  EXPECT_FALSE(bits::maskTest(arena.data() + 1 * words, 5));

  // AND-accumulate: only bit 70 survives masks 0 and 1.
  std::vector<std::uint64_t> all(words, ~0ULL);
  bits::maskAndInto(all.data(), arena.data() + 0 * words, words);
  bits::maskAndInto(all.data(), arena.data() + 1 * words, words);
  EXPECT_TRUE(bits::maskTest(all.data(), 70));
  EXPECT_FALSE(bits::maskTest(all.data(), 5));

  // OR-accumulate: union of all three masks.
  std::vector<std::uint64_t> any(words, 0);
  for (int i = 0; i < 3; ++i)
    bits::maskOrInto(any.data(), arena.data() + i * static_cast<long>(words),
                     words);
  EXPECT_TRUE(bits::maskTest(any.data(), 5));
  EXPECT_TRUE(bits::maskTest(any.data(), 70));
  EXPECT_TRUE(bits::maskTest(any.data(), 99));

  // Subset relation across the word boundary.
  EXPECT_TRUE(bits::maskSubsetOf(all.data(), any.data(), words));
  EXPECT_FALSE(bits::maskSubsetOf(any.data(), all.data(), words));
}

}  // namespace
}  // namespace ssno
