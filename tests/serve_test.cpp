// The experiment service end to end (serve/scheduler + serve/server):
// in-flight deduplication, cancel → checkpoint-resume with a byte-
// identical final report, the line-delimited JSON protocol, and the
// cold-miss/warm-hit determinism proof for the model-check and
// scheduler presets — the served bytes equal what a direct exp_cli run
// produces, even for wall-clock metrics, because both flow through one
// content-addressed cache.
#include "serve/server.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "exp/canon.hpp"
#include "exp/report.hpp"
#include "exp/scenario.hpp"
#include "obs/metrics.hpp"
#include "serve/json.hpp"

namespace ssno::serve {
namespace {

namespace fs = std::filesystem;

std::string freshDir(const std::string& leaf) {
  const fs::path dir = fs::path(::testing::TempDir()) / ("ssno-" + leaf);
  fs::remove_all(dir);
  return dir.string();
}

exp::Scenario dftcRing(int n, const std::string& name = "") {
  exp::Scenario s =
      exp::parseScenario("dftc/central/ring:" + std::to_string(n));
  s.trials = 2;
  if (!name.empty()) s.name = name;
  return s;
}

/// One pipe session: feed `requests`, return the parsed response lines.
std::vector<JsonValue> session(ExpServer& server,
                               const std::vector<std::string>& requests) {
  std::stringstream in, out;
  for (const std::string& r : requests) in << r << "\n";
  server.serveStream(in, out);
  std::vector<JsonValue> lines;
  std::string line;
  while (std::getline(out, line))
    if (!line.empty()) lines.push_back(JsonValue::parse(line));
  return lines;
}

/// Reassembles an exp_cli-identical CSV from `result` row lines:
/// header + per-unit rows in submit order.
std::string reassembleCsv(const std::vector<JsonValue>& lines) {
  std::vector<std::pair<std::int64_t, std::string>> rows;
  for (const JsonValue& line : lines)
    if (const JsonValue* csv = line.find("csv"))
      rows.emplace_back(line.find("unit")->asInt(), csv->asString());
  std::sort(rows.begin(), rows.end());
  std::string out = exp::csvHeader() + "\n";
  for (const auto& [unit, csv] : rows) out += csv;
  return out;
}

TEST(Scheduler, DuplicateUnitsShareOneComputation) {
  SchedulerOptions opt;
  opt.workers = 1;
  JobScheduler sched(opt);
  const exp::Scenario a = dftcRing(32);
  const exp::Scenario b = dftcRing(32, "alias for the same work");
  const std::uint64_t job = sched.submit({a, b});
  const auto results = sched.wait(job);
  ASSERT_EQ(results.size(), 2u);
  ASSERT_TRUE(results[0].has_value());
  ASSERT_TRUE(results[1].has_value());
  // One computation, delivered to both units under their own names.
  EXPECT_EQ(exp::resultPayload(*results[0]),
            exp::resultPayload(*results[1]));
  EXPECT_EQ(results[1]->scenario.name, "alias for the same work");
  const SchedulerStats st = sched.stats();
  EXPECT_EQ(st.submittedUnits, 2u);
  EXPECT_EQ(st.dedupedUnits, 1u);
  EXPECT_EQ(st.computed, 1u);
}

TEST(Scheduler, ConcurrentIdenticalJobsComputeOnce) {
  SchedulerOptions opt;
  opt.workers = 1;  // the filler unit pins the only worker
  JobScheduler sched(opt);
  const exp::Scenario filler = dftcRing(128);
  const exp::Scenario target = dftcRing(48);
  const std::uint64_t jobA = sched.submit({filler, target});
  const std::uint64_t jobB = sched.submit({dftcRing(48, "second client")});
  const auto resultsA = sched.wait(jobA);
  const auto resultsB = sched.wait(jobB);
  ASSERT_TRUE(resultsA[1].has_value());
  ASSERT_TRUE(resultsB[0].has_value());
  EXPECT_EQ(exp::resultPayload(*resultsA[1]),
            exp::resultPayload(*resultsB[0]));
  const SchedulerStats st = sched.stats();
  EXPECT_EQ(st.dedupedUnits, 1u);  // jobB attached to jobA's queued unit
  EXPECT_EQ(st.computed, 2u);      // filler + target, never target twice
}

TEST(Scheduler, CancelledSweepResumesByteIdentical) {
  const std::string dir = freshDir("sched-resume");
  std::vector<exp::Scenario> sweep;
  for (const int n : {24, 32, 40, 48, 56}) sweep.push_back(dftcRing(n));
  const exp::ExperimentRunner runner(1);
  const std::string csvDirect = exp::toCsv(runner.runAll(sweep));

  {
    ResultCache cache(dir + "/cache");
    SchedulerOptions opt;
    opt.workers = 1;
    opt.cache = &cache;
    opt.checkpointDir = dir + "/ckpt";
    JobScheduler sched(opt);
    const std::uint64_t job = sched.submit(sweep, 0, "sweep");
    // Let at least one unit settle (and land in the cache), then kill
    // the sweep mid-flight.
    (void)sched.eventsSince(job, 0);
    EXPECT_TRUE(sched.cancel(job));
    EXPECT_FALSE(sched.status(job).complete);
  }  // scheduler torn down with queued units never run

  ResultCache cache(dir + "/cache");
  SchedulerOptions opt;
  opt.workers = 1;
  opt.cache = &cache;
  opt.checkpointDir = dir + "/ckpt";
  JobScheduler sched(opt);
  const std::uint64_t job = sched.resume("sweep");
  const auto results = sched.wait(job);
  ASSERT_EQ(results.size(), sweep.size());
  std::vector<exp::ScenarioResult> flat;
  for (const auto& r : results) {
    ASSERT_TRUE(r.has_value());
    flat.push_back(*r);
  }
  EXPECT_EQ(exp::toCsv(flat), csvDirect);
  // The pre-cancel work was not wasted: it came back from the cache.
  EXPECT_GE(sched.status(job).cachedHits, 1);
}

TEST(Server, ProtocolHandlesGoodAndBadRequestsInOneSession) {
  SchedulerOptions opt;
  opt.workers = 1;
  ExpServer server(opt);
  const auto lines = session(
      server,
      {"this is not json",
       R"({"noverb":1})",
       R"({"verb":"frobnicate"})",
       R"({"verb":"status","job":999})",
       R"({"verb":"submit","target":"dftc/central/ring:24","trials":2})",
       R"({"verb":"submit","scenarios":["dftc central ring:24 trials=2",)"
       R"("dftc central ring:32 trials=2"],"only":"dftc/central/ring:32"})",
       R"({"verb":"result","job":2})",
       R"({"verb":"status","job":1})",
       R"({"verb":"stats"})"});
  ASSERT_EQ(lines.size(), 10u);  // result emits its row + a summary line
  EXPECT_FALSE(lines[0].find("ok")->asBool());  // parse error
  EXPECT_FALSE(lines[1].find("ok")->asBool());  // missing verb
  EXPECT_FALSE(lines[2].find("ok")->asBool());  // unknown verb
  EXPECT_FALSE(lines[3].find("ok")->asBool());  // unknown job
  EXPECT_TRUE(lines[4].find("ok")->asBool());
  EXPECT_EQ(lines[4].find("job")->asInt(), 1);
  EXPECT_TRUE(lines[5].find("ok")->asBool());
  EXPECT_EQ(lines[5].find("units")->asInt(), 1);  // "only" filtered
  // result: one row + the final summary line.
  EXPECT_EQ(lines[6].find("scenario")->asString(), "dftc/central/ring:32");
  EXPECT_FALSE(lines[6].find("failed")->asBool());
  EXPECT_TRUE(lines[7].find("complete")->asBool());
  EXPECT_TRUE(lines[8].find("ok")->asBool());  // status of job 1
  EXPECT_EQ(lines[9].find("computed")->asInt(), 2);
}

TEST(Server, SubmitRejectsUnknownOnlyNameListingCandidates) {
  SchedulerOptions opt;
  opt.workers = 1;
  ExpServer server(opt);
  const auto lines = session(
      server, {R"({"verb":"submit","target":"dftc/central/ring:24",)"
               R"("only":"typo-name"})"});
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_FALSE(lines[0].find("ok")->asBool());
  const std::string error = lines[0].find("error")->asString();
  EXPECT_NE(error.find("typo-name"), std::string::npos) << error;
  EXPECT_NE(error.find("dftc/central/ring:24"), std::string::npos) << error;
}

TEST(Server, KilledServerResumesFromCheckpointByteIdentical) {
  const std::string dir = freshDir("srv-resume");
  const std::vector<std::string> sweepLines = {
      "dftc central ring:24 trials=2", "dftc central ring:32 trials=2",
      "dftc central ring:40 trials=2"};
  std::string joined;
  for (const std::string& l : sweepLines) joined += l + "\n";
  std::istringstream sweepStream(joined);
  const exp::ExperimentRunner runner(1);
  const std::string csvDirect =
      exp::toCsv(runner.runAll(exp::loadScenarios(sweepStream)));

  {
    ResultCache cache(dir + "/cache");
    SchedulerOptions opt;
    opt.workers = 1;
    opt.cache = &cache;
    opt.checkpointDir = dir + "/ckpt";
    ExpServer server(opt);
    const auto lines = session(
        server,
        {R"({"verb":"submit","scenarios":["dftc central ring:24 trials=2",)"
         R"("dftc central ring:32 trials=2","dftc central ring:40 )"
         R"(trials=2"],"checkpoint":"sweep"})"});
    ASSERT_TRUE(lines[0].find("ok")->asBool());
  }  // server dies without the client ever reading results

  ResultCache cache(dir + "/cache");
  SchedulerOptions opt;
  opt.workers = 1;
  opt.cache = &cache;
  opt.checkpointDir = dir + "/ckpt";
  ExpServer server(opt);
  const auto lines =
      session(server, {R"({"verb":"resume","checkpoint":"sweep"})",
                       R"({"verb":"result","job":1})"});
  ASSERT_GE(lines.size(), 2u);
  EXPECT_TRUE(lines[0].find("ok")->asBool());
  EXPECT_EQ(lines[0].find("units")->asInt(), 3);
  EXPECT_TRUE(lines.back().find("complete")->asBool());
  EXPECT_EQ(reassembleCsv(lines), csvDirect);
}

TEST(Server, TruncatedCheckpointTailResumesByteIdentical) {
  // A crash mid-append leaves a final line with no '\n'.  resume()
  // must skip it (counted), keep every intact line, and produce the
  // same final report as an uninterrupted run.
  const std::string dir = freshDir("srv-torn-tail");
  std::istringstream sweepStream(
      "dftc central ring:24 trials=2\ndftc central ring:32 trials=2\n");
  const exp::ExperimentRunner runner(1);
  const std::string csvDirect =
      exp::toCsv(runner.runAll(exp::loadScenarios(sweepStream)));

  {
    ResultCache cache(dir + "/cache");
    SchedulerOptions opt;
    opt.workers = 1;
    opt.cache = &cache;
    opt.checkpointDir = dir + "/ckpt";
    ExpServer server(opt);
    const auto lines = session(
        server,
        {R"({"verb":"submit","scenarios":["dftc central ring:24 trials=2",)"
         R"("dftc central ring:32 trials=2"],"checkpoint":"sweep"})"});
    ASSERT_TRUE(lines[0].find("ok")->asBool());
  }
  // Tear the tail: a half-written "done" line with no newline.
  {
    std::ofstream tear(dir + "/ckpt/sweep.ckpt",
                       std::ios::app | std::ios::binary);
    tear << "done 1 0123456";  // no '\n' — torn mid-append
  }

  const std::uint64_t skippedBefore = obs::Registry::global().counterValue(
      "serve_ckpt_truncated_lines_total");
  ResultCache cache(dir + "/cache");
  SchedulerOptions opt;
  opt.workers = 1;
  opt.cache = &cache;
  opt.checkpointDir = dir + "/ckpt";
  ExpServer server(opt);
  const auto lines =
      session(server, {R"({"verb":"resume","checkpoint":"sweep"})",
                       R"({"verb":"result","job":1})"});
  EXPECT_TRUE(lines[0].find("ok")->asBool());
  EXPECT_EQ(lines[0].find("units")->asInt(), 2);
  EXPECT_TRUE(lines.back().find("complete")->asBool());
  EXPECT_EQ(reassembleCsv(lines), csvDirect);
  EXPECT_EQ(obs::Registry::global().counterValue(
                "serve_ckpt_truncated_lines_total"),
            skippedBefore + 1);
}

/// The acceptance proof: a preset scenario computed cold through the
/// cache by the direct path (what `exp_cli --cache-dir` runs), then
/// served warm by the service, is byte-identical — including wall-clock
/// throughput metrics, which only determinism-via-cache can guarantee.
void proveColdWarmIdentity(const std::string& preset, int trials,
                           StepCount budget) {
  const std::string dir = freshDir("e2e-" + preset);
  std::vector<exp::Scenario> sweep = exp::makePreset(preset);
  const std::string only = sweep.front().name;
  sweep = exp::filterOnly(std::move(sweep), only);
  for (exp::Scenario& s : sweep) {
    s.trials = trials;
    if (budget > 0) s.budget = budget;
  }

  ResultCache cache(dir);
  const exp::ExperimentRunner runner(1);
  const std::string csvDirect =
      exp::toCsv(runAllCached(runner, sweep, &cache));
  ASSERT_EQ(cache.counters().stores, 1u);  // cold miss, computed, stored

  SchedulerOptions opt;
  opt.workers = 1;
  opt.cache = &cache;
  ExpServer server(opt);
  std::string submit = R"({"verb":"submit","target":")" + preset +
                       R"(","only":")" + only + R"(","trials":)" +
                       std::to_string(trials);
  if (budget > 0) submit += ",\"budget\":" + std::to_string(budget);
  submit += "}";
  const auto lines =
      session(server, {submit, R"({"verb":"result","job":1})"});
  ASSERT_GE(lines.size(), 3u);
  EXPECT_TRUE(lines[1].find("cached")->asBool());  // warm hit, no recompute
  EXPECT_EQ(reassembleCsv(lines), csvDirect);
}

TEST(Server, PruneVerbEvictsOldRecordsAndReportsCounts) {
  const std::string dir = freshDir("srv-prune");
  ResultCache cache(dir);
  // Two records with distinct mtimes so the LRU order is fixed.
  exp::Scenario oldRec = dftcRing(24);
  exp::Scenario newRec = dftcRing(32);
  ASSERT_TRUE(cache.store(oldRec, "old payload"));
  ASSERT_TRUE(cache.store(newRec, "new payload"));
  const fs::path oldPath =
      fs::path(dir) / cache.keyHex(oldRec).substr(0, 2) /
      (cache.keyHex(oldRec) + ".rec");
  const fs::path newPath =
      fs::path(dir) / cache.keyHex(newRec).substr(0, 2) /
      (cache.keyHex(newRec) + ".rec");
  fs::last_write_time(oldPath, fs::last_write_time(oldPath) -
                                   std::chrono::seconds(10));
  // A budget that fits the newer record alone must evict only the older.
  const auto budget = fs::file_size(newPath) + 8;

  SchedulerOptions opt;
  opt.workers = 1;
  opt.cache = &cache;
  ExpServer server(opt);
  const auto lines = session(
      server, {R"({"verb":"prune"})",                 // missing budget
               R"({"verb":"prune","max_bytes":-5})",  // negative budget
               R"({"verb":"prune","max_bytes":)" + std::to_string(budget) +
                   "}"});
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_FALSE(lines[0].find("ok")->asBool());
  EXPECT_FALSE(lines[1].find("ok")->asBool());
  EXPECT_TRUE(lines[2].find("ok")->asBool());
  EXPECT_EQ(lines[2].find("removed")->asInt(), 1);
  EXPECT_EQ(lines[2].find("kept")->asInt(), 1);
  EXPECT_GT(lines[2].find("bytes_removed")->asInt(), 0);
  EXPECT_GT(lines[2].find("bytes_kept")->asInt(), 0);
  EXPECT_FALSE(fs::exists(oldPath));  // the older record was the victim
  EXPECT_TRUE(fs::exists(newPath));
}

/// "name value" lookup in a Prometheus text exposition (exact-name
/// match; skips # comments, _bucket/_sum/_count series unless asked
/// for explicitly).
std::uint64_t promValue(const std::string& text, const std::string& name) {
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind(name + " ", 0) == 0)
      return std::stoull(line.substr(name.size() + 1));
  }
  ADD_FAILURE() << "metric '" << name << "' not in exposition";
  return 0;
}

TEST(Server, MetricsVerbMatchesCacheCountersAndSurvivesBadRequests) {
  const std::string dir = freshDir("srv-metrics");
  ResultCache cache(dir);
  SchedulerOptions opt;
  opt.workers = 1;
  opt.cache = &cache;
  ExpServer server(opt);

  // The process-wide registry accumulates across tests in this binary,
  // so assert on deltas, not absolute values.
  obs::Registry& reg = obs::Registry::global();
  const std::uint64_t requests0 = reg.counterValue("serve_requests_total");
  const std::uint64_t hits0 = reg.counterValue("serve_cache_hits_total");
  const std::uint64_t misses0 = reg.counterValue("serve_cache_misses_total");

  const auto lines = session(
      server,
      {R"({"verb":"submit","target":"dftc/central/ring:16","trials":2})",
       R"({"verb":"result","job":1})",  // cold: one miss, one store
       R"({"verb":"submit","target":"dftc/central/ring:16","trials":2})",
       R"({"verb":"result","job":2})",  // warm: one hit
       "definitely not json",           // malformed: ok:false, no crash
       R"({"verb":"metrics"})"});       // still answered after the error
  ASSERT_EQ(lines.size(), 8u);  // 2×(submit+row+summary) + err + metrics
  EXPECT_FALSE(lines[6].find("ok")->asBool());
  const JsonValue& last = lines.back();
  ASSERT_TRUE(last.find("ok")->asBool());
  const std::string text = last.find("metrics")->asString();

  // Parseable exposition with the serve series present and counting.
  EXPECT_NE(text.find("# TYPE serve_requests_total counter"),
            std::string::npos);
  EXPECT_EQ(promValue(text, "serve_requests_total") - requests0, 6u);

  // The cache series must agree exactly with the cache's own counters
  // (they are incremented at the identical sites).
  const ResultCache::Counters c = cache.counters();
  EXPECT_EQ(promValue(text, "serve_cache_hits_total") - hits0, c.hits);
  EXPECT_EQ(promValue(text, "serve_cache_misses_total") - misses0, c.misses);
  EXPECT_GT(c.hits, 0u);
  EXPECT_GT(c.misses, 0u);

  // Per-verb latency histograms exist for the verbs this session used.
  EXPECT_NE(text.find("# TYPE serve_verb_submit_ns histogram"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE serve_verb_metrics_ns histogram"),
            std::string::npos);
}

TEST(Server, PruneWithoutACacheIsAnErrorNotACrash) {
  SchedulerOptions opt;
  opt.workers = 1;
  ExpServer server(opt);  // no cache wired
  const auto lines =
      session(server, {R"({"verb":"prune","max_bytes":1000})"});
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_FALSE(lines[0].find("ok")->asBool());
  const std::string error = lines[0].find("error")->asString();
  EXPECT_NE(error.find("cache"), std::string::npos) << error;
}

TEST(Server, ModelCheckPresetColdThenWarmIsByteIdentical) {
  proveColdWarmIdentity("model-check", /*trials=*/1, /*budget=*/0);
}

TEST(Server, SchedulerPresetColdThenWarmIsByteIdentical) {
  proveColdWarmIdentity("scheduler", /*trials=*/1, /*budget=*/2000);
}

}  // namespace
}  // namespace ssno::serve
