// White-box tests for STNO's guards and macros on hand-built
// configurations (fixed legitimate trees so the substrate is inert).
//
// Raw layout per node (fixed-tree mode): {W, eta, start[0..Δ), pi[0..Δ)}.
#include "orientation/stno.hpp"

#include <gtest/gtest.h>

#include "core/graph.hpp"

namespace ssno {
namespace {

// Path 0-1-2 with the natural tree (parents 0 <- 1 <- 2).
Stno makePath3() { return Stno(Graph::path(3), {kNoNode, 0, 1}); }

TEST(StnoWhitebox, LeafWeightGuard) {
  Stno stno = makePath3();
  // Node 2 (leaf): weight must be 1.
  stno.setRawNode(2, {3, 2, 0, 0});
  EXPECT_TRUE(stno.enabled(2, Stno::kWeight));
  stno.execute(2, Stno::kWeight);
  EXPECT_EQ(stno.weight(2), 1);
  EXPECT_FALSE(stno.enabled(2, Stno::kWeight));
}

TEST(StnoWhitebox, InternalWeightSumsChildren) {
  Stno stno = makePath3();
  stno.setRawNode(2, {1, 2, 0, 0});
  stno.setRawNode(1, {1, 1, 0, 2, 0, 0});  // wrong W=1; should be 1+1=2
  EXPECT_TRUE(stno.enabled(1, Stno::kWeight));
  stno.execute(1, Stno::kWeight);
  EXPECT_EQ(stno.weight(1), 2);
}

TEST(StnoWhitebox, WeightCapsAtN) {
  Stno stno = makePath3();
  stno.setRawNode(2, {3, 2, 0, 0});  // corrupt leaf claims weight 3
  stno.setRawNode(1, {1, 1, 0, 2, 0, 0});
  stno.execute(1, Stno::kWeight);    // 1 + 3 = 4 > N=3 -> capped
  EXPECT_EQ(stno.weight(1), 3);
}

TEST(StnoWhitebox, RootNameGuardFiresOnNonZeroEta) {
  Stno stno = makePath3();
  auto raw = stno.rawNode(0);
  raw[1] = 2;  // eta_root must be 0
  stno.setRawNode(0, raw);
  EXPECT_TRUE(stno.enabled(0, Stno::kNodeLabel));
  stno.execute(0, Stno::kNodeLabel);
  EXPECT_EQ(stno.name(0), 0);
}

TEST(StnoWhitebox, RootNameGuardFiresOnCorruptStart) {
  // The erratum guard: eta correct but Start entry wrong.
  Stno stno = makePath3();
  stno.setRawNode(2, {1, 2, 0, 0});
  stno.setRawNode(1, {2, 1, 0, 2, 0, 0});
  stno.setRawNode(0, {3, 0, 2, 0});  // Start_0[child 1] = 2, expected 1
  EXPECT_TRUE(stno.enabled(0, Stno::kNodeLabel));
  stno.execute(0, Stno::kNodeLabel);
  EXPECT_EQ(stno.startAt(0, 0), 1);
}

TEST(StnoWhitebox, NodeLabelAdoptsParentStartAndDistributes) {
  Stno stno = makePath3();
  stno.setRawNode(2, {1, 0, 0, 0});        // leaf: wrong name 0
  stno.setRawNode(1, {2, 0, 0, 0, 0, 0});  // internal: wrong name 0
  stno.setRawNode(0, {3, 0, 1, 0});        // root correct: Start[1] = 1
  ASSERT_TRUE(stno.enabled(1, Stno::kNodeLabel));
  stno.execute(1, Stno::kNodeLabel);
  EXPECT_EQ(stno.name(1), 1);              // adopted Start_0[1]
  // Distribute: child 2 (at port 1 of node 1) gets eta+1 = 2.
  EXPECT_EQ(stno.startAt(1, 1), 2);
  // Leaf guard now enabled; leaf takes its name without distributing.
  ASSERT_TRUE(stno.enabled(2, Stno::kNodeLabel));
  stno.execute(2, Stno::kNodeLabel);
  EXPECT_EQ(stno.name(2), 2);
}

TEST(StnoWhitebox, EdgeLabelGuardSubordinateToNodeLabel) {
  // The paper's IE guard requires ¬InvalidNodelabel: a node with both a
  // wrong name and wrong labels must fix the name (which also relabels).
  Stno stno = makePath3();
  stno.setRawNode(1, {2, 2, 0, 2, 1, 1});  // wrong eta AND wrong pi
  EXPECT_TRUE(stno.enabled(1, Stno::kNodeLabel));
  EXPECT_FALSE(stno.enabled(1, Stno::kEdgeLabel));
}

TEST(StnoWhitebox, EdgeLabelFixesAllPorts) {
  Stno stno = makePath3();
  // Make everything consistent except node 1's labels.
  stno.setRawNode(0, {3, 0, 1, 1});
  stno.setRawNode(1, {2, 1, 0, 2, 0, 0});
  stno.setRawNode(2, {1, 2, 0, 1});
  ASSERT_FALSE(stno.enabled(1, Stno::kNodeLabel));
  ASSERT_TRUE(stno.enabled(1, Stno::kEdgeLabel));
  stno.execute(1, Stno::kEdgeLabel);
  EXPECT_EQ(stno.edgeLabel(1, 0), 1);  // (1-0) mod 3 toward root
  EXPECT_EQ(stno.edgeLabel(1, 1), 2);  // (1-2) mod 3 toward leaf
  EXPECT_FALSE(stno.enabled(1, Stno::kEdgeLabel));
}

TEST(StnoWhitebox, TreeFixDisabledInFixedTreeMode) {
  Stno stno = makePath3();
  for (NodeId p = 0; p < 3; ++p)
    EXPECT_FALSE(stno.enabled(p, Stno::kTreeFix));
}

TEST(StnoWhitebox, NonTreeNeighborGetsLabelButNoStart) {
  // Triangle with tree edges 0-1, 0-2: the 1-2 edge is non-tree; both
  // endpoints label it, neither treats the other as a child.
  Stno stno(Graph::ring(3), {kNoNode, 0, 0});
  Rng rng(1);
  stno.randomize(rng);
  // Drive to silence by executing enabled overlay actions directly.
  for (int i = 0; i < 1000; ++i) {
    const auto moves = stno.enabledMoves();
    if (moves.empty()) break;
    stno.execute(moves.front().node, moves.front().action);
  }
  ASSERT_TRUE(stno.isLegitimate());
  // Weights: both children are leaves of the root.
  EXPECT_EQ(stno.weight(1), 1);
  EXPECT_EQ(stno.weight(2), 1);
  EXPECT_EQ(stno.weight(0), 3);
  // Names 0,1,2 and the non-tree edge labeled consistently.
  const Graph& g = stno.graph();
  const Port p12 = g.portOf(1, 2);
  const Port p21 = g.portOf(2, 1);
  EXPECT_EQ(stno.edgeLabel(1, p12),
            chordalDistance(stno.name(1), stno.name(2), 3));
  EXPECT_EQ((stno.edgeLabel(1, p12) + stno.edgeLabel(2, p21)) % 3, 0);
}

}  // namespace
}  // namespace ssno
