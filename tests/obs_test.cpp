// The telemetry layer (src/obs): merged metric snapshots must be
// bit-identical across runs and thread counts (merge is by summation,
// which is associative/commutative), disabled telemetry must be a
// no-op, and the phase tracer must emit structurally valid Chrome
// trace-event JSON (the same format exp_cli --trace-out writes and
// Perfetto loads).
#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "obs/trace.hpp"
#include "serve/json.hpp"

namespace ssno::obs {
namespace {

/// Runs `totalOps` counter increments and histogram observations,
/// partitioned over `threads` workers, on a fresh registry; returns the
/// merged snapshot.  The op sequence depends only on the op index, so
/// every thread count performs the identical multiset of writes.
std::vector<MetricSnapshot> hammer(int threads, int totalOps) {
  Registry reg;
  const Counter ops = reg.counter("test_ops_total");
  const Counter evens = reg.counter("test_evens_total");
  const Histogram sizes = reg.histogram("test_sizes");
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(threads));
  for (int w = 0; w < threads; ++w) {
    pool.emplace_back([&, w] {
      for (int i = w; i < totalOps; i += threads) {
        ops.inc();
        if (i % 2 == 0) evens.inc(2);
        sizes.observe(static_cast<std::uint64_t>(i % 1000));
      }
    });
  }
  for (std::thread& th : pool) th.join();
  return reg.snapshot();
}

void expectSnapshotsEqual(const std::vector<MetricSnapshot>& a,
                          const std::vector<MetricSnapshot>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].name, b[i].name);
    EXPECT_EQ(a[i].kind, b[i].kind);
    EXPECT_EQ(a[i].value, b[i].value) << a[i].name;
    EXPECT_EQ(a[i].gaugeValue, b[i].gaugeValue) << a[i].name;
    EXPECT_EQ(a[i].buckets, b[i].buckets) << a[i].name;
    EXPECT_EQ(a[i].count, b[i].count) << a[i].name;
    EXPECT_EQ(a[i].sum, b[i].sum) << a[i].name;
  }
}

TEST(Metrics, MergedSnapshotIsThreadCountIndependent) {
  constexpr int kOps = 20'000;
  const auto one = hammer(1, kOps);
  for (const int threads : {2, 4, 8})
    expectSnapshotsEqual(one, hammer(threads, kOps));
  // And across repeated runs at the same thread count.
  expectSnapshotsEqual(hammer(4, kOps), hammer(4, kOps));
}

TEST(Metrics, CounterAndHistogramTotals) {
  Registry reg;
  const Counter c = reg.counter("a_total");
  c.inc();
  c.inc(41);
  EXPECT_EQ(reg.counterValue("a_total"), 42u);
  EXPECT_EQ(reg.counterValue("never_registered"), 0u);

  const Histogram h = reg.histogram("lat_ns");
  h.observe(0);
  h.observe(1);
  h.observe(7);    // bit_width 3 -> bucket 3
  h.observe(8);    // bit_width 4 -> bucket 4
  const auto snap = reg.snapshot();
  ASSERT_EQ(snap.size(), 2u);  // sorted by name: a_total, lat_ns
  EXPECT_EQ(snap[0].name, "a_total");
  const MetricSnapshot& hs = snap[1];
  EXPECT_EQ(hs.name, "lat_ns");
  EXPECT_EQ(hs.count, 4u);
  EXPECT_EQ(hs.sum, 16u);
  EXPECT_EQ(hs.buckets[0], 1u);
  EXPECT_EQ(hs.buckets[1], 1u);
  EXPECT_EQ(hs.buckets[3], 1u);
  EXPECT_EQ(hs.buckets[4], 1u);
}

TEST(Metrics, HistogramBucketGeometry) {
  EXPECT_EQ(histogramBucket(0), 0);
  EXPECT_EQ(histogramBucket(1), 1);
  EXPECT_EQ(histogramBucket(2), 2);
  EXPECT_EQ(histogramBucket(3), 2);
  EXPECT_EQ(histogramBucket(4), 3);
  EXPECT_EQ(histogramBucket(1023), 10);
  EXPECT_EQ(histogramBucket(1024), 11);
  EXPECT_EQ(histogramBucket(~0ull), kHistogramBuckets - 1);
}

TEST(Metrics, RegistrationIsIdempotentAndKindChecked) {
  Registry reg;
  const Counter a = reg.counter("same");
  const Counter b = reg.counter("same");
  a.inc();
  b.inc();
  EXPECT_EQ(reg.counterValue("same"), 2u);
  EXPECT_THROW((void)reg.histogram("same"), std::logic_error);
  EXPECT_THROW((void)reg.gauge("same"), std::logic_error);
}

TEST(Metrics, DisabledWritesAreNoOps) {
  Registry reg;
  const Counter c = reg.counter("c_total");
  const Gauge g = reg.gauge("g");
  const Histogram h = reg.histogram("h_ns");
  ASSERT_TRUE(enabled());  // default-on
  setEnabled(false);
  c.inc(5);
  g.set(7);
  h.observe(9);
  {
    const ScopedTimer t(h);  // must not even read the clock
  }
  setEnabled(true);
  const auto snap = reg.snapshot();
  for (const MetricSnapshot& s : snap) {
    EXPECT_EQ(s.value, 0u) << s.name;
    EXPECT_EQ(s.gaugeValue, 0) << s.name;
    EXPECT_EQ(s.count, 0u) << s.name;
  }
  // Default-constructed (unregistered) handles are also inert.
  Counter{}.inc();
  Gauge{}.set(1);
  Histogram{}.observe(1);
}

TEST(Metrics, GaugeSetAddValue) {
  Registry reg;
  const Gauge g = reg.gauge("depth");
  g.set(10);
  g.add(-3);
  EXPECT_EQ(g.value(), 7);
  const auto snap = reg.snapshot();
  ASSERT_EQ(snap.size(), 1u);
  EXPECT_EQ(snap[0].kind, MetricSnapshot::Kind::kGauge);
  EXPECT_EQ(snap[0].gaugeValue, 7);
}

TEST(Metrics, ScopedTimerFeedsHistogram) {
  Registry reg;
  const Histogram h = reg.histogram("t_ns");
  { const ScopedTimer t(h); }
  { const ScopedTimer t(h); }
  const auto snap = reg.snapshot();
  ASSERT_EQ(snap.size(), 1u);
  EXPECT_EQ(snap[0].count, 2u);
}

TEST(Metrics, ResetZeroesValuesButKeepsHandles) {
  Registry reg;
  const Counter c = reg.counter("r_total");
  c.inc(9);
  reg.reset();
  EXPECT_EQ(reg.counterValue("r_total"), 0u);
  c.inc();
  EXPECT_EQ(reg.counterValue("r_total"), 1u);
}

TEST(Metrics, PrometheusExposition) {
  Registry reg;
  reg.counter("req_total").inc(3);
  reg.gauge("depth").set(-2);
  const Histogram h = reg.histogram("lat_ns");
  h.observe(0);
  h.observe(5);  // bucket 3, le = 7
  const std::string text = reg.renderPrometheus();
  EXPECT_NE(text.find("# TYPE req_total counter\nreq_total 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE depth gauge\ndepth -2\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE lat_ns histogram\n"), std::string::npos);
  EXPECT_NE(text.find("lat_ns_bucket{le=\"0\"} 1\n"), std::string::npos);
  EXPECT_NE(text.find("lat_ns_bucket{le=\"7\"} 2\n"), std::string::npos);
  EXPECT_NE(text.find("lat_ns_bucket{le=\"+Inf\"} 2\n"), std::string::npos);
  EXPECT_NE(text.find("lat_ns_sum 5\n"), std::string::npos);
  EXPECT_NE(text.find("lat_ns_count 2\n"), std::string::npos);
}

// ---------------------------------------------------------------- trace

/// Finds the single event named `name`; fails the test when absent.
const serve::JsonValue* findEvent(const serve::JsonValue& events,
                                  const std::string& name) {
  for (const serve::JsonValue& e : events.asArray()) {
    const serve::JsonValue* n = e.find("name");
    if (n != nullptr && n->asString() == name) return &e;
  }
  return nullptr;
}

TEST(Trace, GoldenChromeTraceStructure) {
  startTracing();
  {
    TraceSpan outer("outer_phase");
    outer.arg("items", 42);
    {
      TraceSpan inner("inner_phase");
      inner.arg("k", 7);
    }
    traceInstant("milestone");
  }
  stopTracing();

  const serve::JsonValue doc = serve::JsonValue::parse(traceJson());
  const serve::JsonValue* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_GE(events->asArray().size(), 3u);

  // Every event carries the Chrome trace-event schema fields.
  for (const serve::JsonValue& e : events->asArray()) {
    ASSERT_NE(e.find("name"), nullptr);
    ASSERT_NE(e.find("ph"), nullptr);
    ASSERT_NE(e.find("ts"), nullptr);
    ASSERT_NE(e.find("pid"), nullptr);
    ASSERT_NE(e.find("tid"), nullptr);
    EXPECT_EQ(e.find("cat")->asString(), "ssno");
    const std::string ph = e.find("ph")->asString();
    EXPECT_TRUE(ph == "X" || ph == "i") << ph;
    if (ph == "X") ASSERT_NE(e.find("dur"), nullptr);
  }

  const serve::JsonValue* outer = findEvent(*events, "outer_phase");
  const serve::JsonValue* inner = findEvent(*events, "inner_phase");
  const serve::JsonValue* mark = findEvent(*events, "milestone");
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  ASSERT_NE(mark, nullptr);

  // Nesting containment: the inner span's [ts, ts+dur] lies inside the
  // outer span's, and the instant falls inside the outer span too.
  const double oT0 = outer->find("ts")->asNumber();
  const double oT1 = oT0 + outer->find("dur")->asNumber();
  const double iT0 = inner->find("ts")->asNumber();
  const double iT1 = iT0 + inner->find("dur")->asNumber();
  EXPECT_GE(iT0, oT0);
  EXPECT_LE(iT1, oT1);
  const double mT = mark->find("ts")->asNumber();
  EXPECT_GE(mT, oT0);
  EXPECT_LE(mT, oT1);
  EXPECT_EQ(mark->find("ph")->asString(), "i");

  // Args survive the round trip.
  const serve::JsonValue* args = outer->find("args");
  ASSERT_NE(args, nullptr);
  EXPECT_EQ(args->find("items")->asNumber(), 42.0);
  EXPECT_EQ(inner->find("args")->find("k")->asNumber(), 7.0);

  clearTrace();
  EXPECT_EQ(serve::JsonValue::parse(traceJson())
                .find("traceEvents")
                ->asArray()
                .size(),
            0u);
}

TEST(Trace, SpansOutsideSessionAreFree) {
  ASSERT_FALSE(tracingEnabled());
  {
    TraceSpan s("never_recorded");
    s.arg("x", 1);
  }
  traceInstant("also_never");
  startTracing();
  stopTracing();
  const serve::JsonValue doc = serve::JsonValue::parse(traceJson());
  EXPECT_EQ(doc.find("traceEvents")->asArray().size(), 0u);
}

TEST(Trace, MultiThreadedSpansAllRecorded) {
  startTracing();
  constexpr int kThreads = 4;
  constexpr int kSpansPer = 50;
  std::vector<std::thread> pool;
  for (int w = 0; w < kThreads; ++w)
    pool.emplace_back([] {
      for (int i = 0; i < kSpansPer; ++i) TraceSpan span("worker_span");
    });
  for (std::thread& th : pool) th.join();
  stopTracing();
  const serve::JsonValue doc = serve::JsonValue::parse(traceJson());
  EXPECT_EQ(doc.find("traceEvents")->asArray().size(),
            static_cast<std::size_t>(kThreads * kSpansPer));
  EXPECT_EQ(traceDroppedEvents(), 0u);
  clearTrace();
}

}  // namespace
}  // namespace ssno::obs
