// Unit tests for the daemon implementations (paper §2.1.2 execution
// models): selection contracts, fairness, adversarial starvation.
#include "core/daemon.hpp"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "core/rng.hpp"

namespace ssno {
namespace {

std::vector<Move> threeNodesEnabled() {
  return {Move{0, 0}, Move{0, 1}, Move{1, 0}, Move{2, 0}};
}

void expectSubsetOnePerNode(const std::vector<Move>& selected,
                            const std::vector<Move>& enabled) {
  ASSERT_FALSE(selected.empty());
  std::set<NodeId> nodes;
  for (const Move& m : selected) {
    EXPECT_TRUE(nodes.insert(m.node).second) << "two moves for one node";
    bool found = false;
    for (const Move& e : enabled) found = found || (e == m);
    EXPECT_TRUE(found) << "selected move was not enabled";
  }
}

TEST(CentralDaemon, SelectsExactlyOne) {
  CentralDaemon d;
  Rng rng(1);
  for (int i = 0; i < 50; ++i) {
    const auto sel = d.select(threeNodesEnabled(), rng);
    EXPECT_EQ(sel.size(), 1u);
    expectSubsetOnePerNode(sel, threeNodesEnabled());
  }
}

TEST(CentralDaemon, EventuallySelectsEveryMove) {
  CentralDaemon d;
  Rng rng(2);
  std::set<std::pair<NodeId, int>> seen;
  for (int i = 0; i < 400; ++i)
    for (const Move& m : d.select(threeNodesEnabled(), rng))
      seen.insert({m.node, m.action});
  EXPECT_EQ(seen.size(), 4u);
}

TEST(DistributedDaemon, NonEmptySubsetOnePerNode) {
  DistributedDaemon d;
  Rng rng(3);
  for (int i = 0; i < 100; ++i)
    expectSubsetOnePerNode(d.select(threeNodesEnabled(), rng),
                           threeNodesEnabled());
}

TEST(DistributedDaemon, SometimesSelectsMultiple) {
  DistributedDaemon d;
  Rng rng(4);
  bool sawMulti = false;
  for (int i = 0; i < 100; ++i)
    sawMulti = sawMulti || d.select(threeNodesEnabled(), rng).size() > 1;
  EXPECT_TRUE(sawMulti);
}

TEST(SynchronousDaemon, SelectsEveryEnabledNode) {
  SynchronousDaemon d;
  Rng rng(5);
  const auto sel = d.select(threeNodesEnabled(), rng);
  EXPECT_EQ(sel.size(), 3u);  // nodes 0, 1, 2
  expectSubsetOnePerNode(sel, threeNodesEnabled());
}

TEST(RoundRobinDaemon, CyclesThroughActionPairs) {
  RoundRobinDaemon d;
  Rng rng(6);
  std::vector<std::pair<NodeId, int>> order;
  for (int i = 0; i < 8; ++i) {
    const Move m = d.select(threeNodesEnabled(), rng).front();
    order.emplace_back(m.node, m.action);
  }
  const std::vector<std::pair<NodeId, int>> want{
      {0, 0}, {0, 1}, {1, 0}, {2, 0}, {0, 0}, {0, 1}, {1, 0}, {2, 0}};
  EXPECT_EQ(order, want);
}

TEST(RoundRobinDaemon, IsWeaklyFairAtActionGranularity) {
  // Every continuously enabled (node, action) pair is served within one
  // sweep — in particular node 0's SECOND action is not starved by its
  // first one.
  RoundRobinDaemon d;
  Rng rng(7);
  std::map<std::pair<NodeId, int>, int> served;
  for (int i = 0; i < 32; ++i) {
    const Move m = d.select(threeNodesEnabled(), rng).front();
    served[{m.node, m.action}]++;
  }
  EXPECT_EQ((served[{0, 0}]), 8);
  EXPECT_EQ((served[{0, 1}]), 8);
  EXPECT_EQ((served[{1, 0}]), 8);
  EXPECT_EQ((served[{2, 0}]), 8);
}

TEST(RoundRobinDaemon, SkipsDisabledPairs) {
  RoundRobinDaemon d;
  Rng rng(8);
  (void)d.select(threeNodesEnabled(), rng);  // serves (0,0)
  // Now only node 2 is enabled: the rotation must jump to it.
  const Move m = d.select({Move{2, 0}}, rng).front();
  EXPECT_EQ(m.node, 2);
}

TEST(AdversarialDaemon, StarvesHighNodesWhileLowEnabled) {
  AdversarialDaemon d;
  Rng rng(8);
  for (int i = 0; i < 20; ++i) {
    const auto sel = d.select(threeNodesEnabled(), rng);
    ASSERT_EQ(sel.size(), 1u);
    EXPECT_EQ(sel.front().node, 0);  // node 2 never runs
    EXPECT_EQ(sel.front().action, 0);
  }
}

TEST(MakeDaemon, CoversAllKinds) {
  for (DaemonKind k :
       {DaemonKind::kCentral, DaemonKind::kDistributed,
        DaemonKind::kSynchronous, DaemonKind::kRoundRobin,
        DaemonKind::kAdversarial}) {
    const auto d = makeDaemon(k);
    ASSERT_NE(d, nullptr);
    EXPECT_EQ(d->name(), daemonKindName(k));
  }
}

}  // namespace
}  // namespace ssno
